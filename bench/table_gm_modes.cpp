// GM receive-mode and threshold table (paper §5):
//  - Polling / Blocking / Hybrid produce the same bandwidth; Blocking
//    costs 36 us latency vs 16 us for the others;
//  - the 16 kB Eager/Rendezvous default "is already optimal": we sweep
//    the MPICH-GM threshold to show 16 kB is at the knee.
#include "bench/common.h"

#include "gmsim/gm.h"
#include "mp/gm_mpi.h"

using namespace pp;
using namespace pp::bench;

namespace {

netpipe::RunResult run_gm(gm::RecvMode mode, const mp::GmMpiOptions* lib) {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  gm::GmConfig gc;
  gc.recv_mode = mode;
  gm::GmFabric fab(c, a, b, hw::presets::myrinet_pci64a(),
                   hw::presets::back_to_back(), gc);
  if (lib == nullptr) {
    mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
    return netpipe::run_netpipe(s, ta, tb, default_run_options());
  }
  mp::GmMpi la(fab.port_a(), 0, *lib), lb(fab.port_b(), 1, *lib);
  mp::LibraryTransport ta(la, 1), tb(lb, 0);
  return netpipe::run_netpipe(s, ta, tb, default_run_options());
}

}  // namespace

int main() {
  std::cout << "==== GM --gm-recv receive modes (raw GM) ====\n";
  struct ModeRow {
    const char* name;
    gm::RecvMode mode;
    double paper_lat;
  };
  const ModeRow modes[] = {{"Polling", gm::RecvMode::kPolling, 16},
                           {"Blocking", gm::RecvMode::kBlocking, 36},
                           {"Hybrid", gm::RecvMode::kHybrid, 16}};
  std::vector<netpipe::PaperCheck> checks;
  double mode_max[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const auto r = run_gm(modes[i].mode, nullptr);
    mode_max[i] = r.max_mbps;
    std::printf("  %-9s : %5.1f us, %4.0f Mbps\n", modes[i].name,
                r.latency_us, r.max_mbps);
    checks.push_back({std::string("latency us, ") + modes[i].name,
                      modes[i].paper_lat, r.latency_us, ""});
  }
  checks.push_back({"Blocking bandwidth == Polling (%)", 100,
                    100.0 * mode_max[1] / mode_max[0],
                    "'all produce approximately the same results'"});

  std::cout << "\n==== MPICH-GM eager/rendezvous threshold sweep ====\n";
  std::cout << "  (paper: 'the default ... of 16 kB is already optimal')\n";
  double best = 0;
  std::uint64_t best_thr = 0;
  for (std::uint64_t thr :
       {2ull << 10, 4ull << 10, 8ull << 10, 16ull << 10, 32ull << 10,
        64ull << 10}) {
    mp::GmMpiOptions o = mp::GmMpi::mpich_gm();
    o.eager_max = thr;
    const auto r = run_gm(gm::RecvMode::kPolling, &o);
    // Score the intermediate range the threshold governs.
    const double mid = r.mbps_at(12 << 10) + r.mbps_at(24 << 10) +
                       r.mbps_at(48 << 10);
    std::printf("  threshold %7s : mid-range score %7.0f, max %4.0f\n",
                netpipe::format_bytes(thr).c_str(), mid, r.max_mbps);
    if (mid > best) {
      best = mid;
      best_thr = thr;
    }
  }
  std::printf("  best mid-range threshold: %s\n",
              netpipe::format_bytes(best_thr).c_str());
  checks.push_back({"optimal threshold (kB)", 16,
                    static_cast<double>(best_thr >> 10),
                    "default should sit at the knee"});

  std::cout << "\npaper-vs-measured checks (GM modes):\n";
  print_paper_checks(std::cout, checks);
  return 0;
}
