// Figure 5: VIA — Giganet cLAN cards (hardware VIA, through an 8-port
// switch) and M-VIA over SysKonnect SK-9843 cards, between P4 PCs.
//
// Paper findings reproduced here:
//  - MVICH, MP_Lite and MPI/Pro all reach ~800 Mbps on the Giganet
//    hardware; MVICH and MP_Lite have ~10 us latencies while MPI/Pro's
//    progress thread costs it 42 us;
//  - the small dip at 16 kB is the RDMA threshold;
//  - M-VIA on the SysKonnect cards reaches ~425 Mbps at 42 us —
//    "approximately the same performance that raw TCP offers for this
//    hardware configuration".
//
// All six measurements (five figure curves plus the no-RPUT warning
// configuration) run as one parallel sweep (see bench/figures.h).
#include "bench/figures.h"

using namespace pp;
using namespace pp::bench;

int main(int argc, char** argv) {
  const auto sr = sweep::run_sweep(fig5_spec());
  const std::vector<Curve> curves = curves_of(sr, fig5_figure_curves());

  print_figure("Figure 5: Giganet cLAN and M-VIA over SysKonnect, P4 PCs",
               curves);
  print_sweep_stats(sr);

  const std::string dir =
      write_figure_dats(out_dir_from_args(argc, argv), "fig5", curves);
  std::cout << "curve data written to " << dir << "/\n";

  const auto& mv = find(curves, "MVICH Giganet");
  const auto& ml = find(curves, "MP_Lite Giganet");
  const auto& mo = find(curves, "MPI/Pro Giganet");
  const auto& mvia = find(curves, "MVICH M-VIA/sk");
  const auto& norput = sr.at("MVICH without RPUT");

  std::cout << "\npaper-vs-measured checks (Figure 5):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"MVICH Giganet max Mbps", 800, mv.max_mbps,
       "'around 8[00] Mbps' (OCR)"},
      {"MP_Lite Giganet max Mbps", 800, ml.max_mbps, ""},
      {"MPI/Pro Giganet max Mbps", 800, mo.max_mbps, ""},
      {"MVICH latency us", 10, mv.latency_us, "'latencies of 10 us'"},
      {"MP_Lite latency us", 10, ml.latency_us, ""},
      {"MPI/Pro latency us", 42, mo.latency_us,
       "'greater overhead at 42 us'"},
      {"M-VIA max Mbps", 425, mvia.max_mbps,
       "'reached a maximum of 425 Mbps'"},
      {"M-VIA latency us", 42, mvia.latency_us, "'with a 42 us latency'"},
      {"RDMA-threshold dip: 16k vs 12k (%)", 95,
       100.0 * mv.mbps_at(20 << 10) / mv.mbps_at(16 << 10),
       "'small dip at 16 kB is at the RDMA threshold'"},
      {"MVICH no-RPUT penalty (% of RPUT)", 75,
       100.0 * norput.max_mbps / mv.max_mbps,
       "'vital to configure ... RPUT_SUPPORT'"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
