// Figure 5: VIA — Giganet cLAN cards (hardware VIA, through an 8-port
// switch) and M-VIA over SysKonnect SK-9843 cards, between P4 PCs.
//
// Paper findings reproduced here:
//  - MVICH, MP_Lite and MPI/Pro all reach ~800 Mbps on the Giganet
//    hardware; MVICH and MP_Lite have ~10 us latencies while MPI/Pro's
//    progress thread costs it 42 us;
//  - the small dip at 16 kB is the RDMA threshold;
//  - M-VIA on the SysKonnect cards reaches ~425 Mbps at 42 us —
//    "approximately the same performance that raw TCP offers for this
//    hardware configuration".
#include "bench/common.h"

#include "mp/via_mpi.h"
#include "viasim/via.h"

using namespace pp;
using namespace pp::bench;

namespace {

Curve measure_via(const std::string& label, bool giganet,
                  const mp::ViaMpiOptions* lib) {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  via::ViaConfig vc;
  vc.personality = giganet ? via::ViaPersonality::giganet()
                           : via::ViaPersonality::mvia_sk98lin();
  const auto nic = giganet ? hw::presets::giganet_clan()
                           : hw::presets::syskonnect_mvia();
  const auto link =
      giganet ? hw::presets::switched() : hw::presets::back_to_back();
  via::ViaFabric fab(c, a, b, nic, link, vc);
  Curve out;
  out.label = label;
  if (lib == nullptr) {
    mp::ViaTransport ta(fab.end_a()), tb(fab.end_b());
    out.result = netpipe::run_netpipe(s, ta, tb, default_run_options());
  } else {
    mp::ViaMpi la(fab.end_a(), 0, *lib), lb(fab.end_b(), 1, *lib);
    mp::LibraryTransport ta(la, 1), tb(lb, 0);
    out.result = netpipe::run_netpipe(s, ta, tb, default_run_options());
  }
  return out;
}

}  // namespace

int main() {
  std::vector<Curve> curves;
  const auto mvich = mp::ViaMpi::mvich();
  const auto mplite = mp::ViaMpi::mplite_via();
  const auto mpipro = mp::ViaMpi::mpipro_via();
  curves.push_back(measure_via("MVICH Giganet", true, &mvich));
  curves.push_back(measure_via("MP_Lite Giganet", true, &mplite));
  curves.push_back(measure_via("MPI/Pro Giganet", true, &mpipro));
  curves.push_back(measure_via("MVICH M-VIA/sk", false, &mvich));
  curves.push_back(measure_via("MP_Lite M-VIA/sk", false, &mplite));

  print_figure("Figure 5: Giganet cLAN and M-VIA over SysKonnect, P4 PCs",
               curves);

  // The no-RPUT configuration the paper warns about.
  const auto no_rput = mp::ViaMpi::mvich(false);
  const Curve mvich_norput =
      measure_via("MVICH without RPUT", true, &no_rput);

  const auto& mv = find(curves, "MVICH Giganet");
  const auto& ml = find(curves, "MP_Lite Giganet");
  const auto& mo = find(curves, "MPI/Pro Giganet");
  const auto& mvia = find(curves, "MVICH M-VIA/sk");

  std::cout << "\npaper-vs-measured checks (Figure 5):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"MVICH Giganet max Mbps", 800, mv.max_mbps,
       "'around 8[00] Mbps' (OCR)"},
      {"MP_Lite Giganet max Mbps", 800, ml.max_mbps, ""},
      {"MPI/Pro Giganet max Mbps", 800, mo.max_mbps, ""},
      {"MVICH latency us", 10, mv.latency_us, "'latencies of 10 us'"},
      {"MP_Lite latency us", 10, ml.latency_us, ""},
      {"MPI/Pro latency us", 42, mo.latency_us,
       "'greater overhead at 42 us'"},
      {"M-VIA max Mbps", 425, mvia.max_mbps,
       "'reached a maximum of 425 Mbps'"},
      {"M-VIA latency us", 42, mvia.latency_us, "'with a 42 us latency'"},
      {"RDMA-threshold dip: 16k vs 12k (%)", 95,
       100.0 * mv.mbps_at(20 << 10) / mv.mbps_at(16 << 10),
       "'small dip at 16 kB is at the RDMA threshold'"},
      {"MVICH no-RPUT penalty (% of RPUT)", 75,
       100.0 * mvich_norput.result.max_mbps / mv.max_mbps,
       "'vital to configure ... RPUT_SUPPORT'"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
