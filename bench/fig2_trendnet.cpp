// Figure 2: message-passing performance across TrendNet TEG-PCITX copper
// Gigabit Ethernet cards between two Pentium-4 PCs.
//
// The cheap-NIC story: the card needs enormous socket buffers. Raw TCP at
// default buffers flattens near 290 Mbps and needs ~512 kB to double.
// Only the libraries with user-tunable socket buffers — MP_Lite
// (automatic) and MPICH (P4_SOCKBUFSIZE) — work well; LAM/MPI, MPI/Pro,
// PVM and TCGMSG are stuck at roughly 190-320 Mbps because their buffer
// sizes are fixed or hard-wired.
//
// The nine curves are one parallel sweep (see bench/figures.h).
#include "bench/figures.h"

using namespace pp;
using namespace pp::bench;

int main(int argc, char** argv) {
  const auto sr = sweep::run_sweep(fig2_spec());
  const std::vector<Curve> curves = curves_of(sr);

  print_figure("Figure 2: TrendNet TEG-PCITX copper GigE, two P4 PCs",
               curves);
  print_sweep_stats(sr);

  const std::string dir =
      write_figure_dats(out_dir_from_args(argc, argv), "fig2", curves);
  std::cout << "curve data written to " << dir << "/\n";

  const auto& tcp_r = find(curves, "raw TCP");
  const auto& tcp_def = find(curves, "raw TCP default");
  const auto& mpich = find(curves, "MPICH");
  const auto& mplite = find(curves, "MP_Lite");
  const auto& lam = find(curves, "LAM/MPI -O");
  const auto& mpipro = find(curves, "MPI/Pro");
  const auto& pvm = find(curves, "PVM");
  const auto& tcg = find(curves, "TCGMSG");
  const auto& tcg_big = find(curves, "TCGMSG 256k rebuild");

  std::cout << "\npaper-vs-measured checks (Figure 2):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"raw TCP max, tuned 512k buffers", 580, tcp_r.max_mbps,
       "OCR: both cards reach '55 Mbps'"},
      {"raw TCP at default buffers", 290, tcp_def.max_mbps,
       "OCR: 'flattens out at 29 Mbps'"},
      {"tuned/default raw TCP ratio", 2.0,
       tcp_r.max_mbps / tcp_def.max_mbps, "'doubling the raw throughput'"},
      {"MPICH tuned max", 375, mpich.max_mbps,
       "'only MP_Lite and MPICH worked well'"},
      {"MP_Lite max", 550, mplite.max_mbps, "tracks tuned raw TCP"},
      {"LAM/MPI stuck (Mbps)", 250, lam.max_mbps,
       "paper: 'many libraries reaching only 250-400'"},
      {"MPI/Pro stuck (Mbps)", 250, mpipro.max_mbps,
       "'flattening out at 250 Mbps'"},
      {"PVM stuck (Mbps)", 190, pvm.max_mbps, "'limited to only 190 Mbps'"},
      {"TCGMSG stuck (Mbps)", 250, tcg.max_mbps,
       "'performance is limited to 250 Mbps'"},
      {"TCGMSG after 256k recompile", 550, tcg_big.max_mbps,
       "'brought the performance up to raw TCP levels'"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
