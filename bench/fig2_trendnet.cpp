// Figure 2: message-passing performance across TrendNet TEG-PCITX copper
// Gigabit Ethernet cards between two Pentium-4 PCs.
//
// The cheap-NIC story: the card needs enormous socket buffers. Raw TCP at
// default buffers flattens near 290 Mbps and needs ~512 kB to double.
// Only the libraries with user-tunable socket buffers — MP_Lite
// (automatic) and MPICH (P4_SOCKBUFSIZE) — work well; LAM/MPI, MPI/Pro,
// PVM and TCGMSG are stuck at roughly 190-320 Mbps because their buffer
// sizes are fixed or hard-wired.
#include "bench/common.h"

#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"

using namespace pp;
using namespace pp::bench;

int main() {
  const auto host = hw::presets::pentium4_pc();
  const auto nic = hw::presets::trendnet_teg_pcitx();
  const auto sysctl = tcp::Sysctl::tuned();

  std::vector<Curve> curves;
  curves.push_back(measure_on_bed("raw TCP", host, nic, sysctl,
                                  [](mp::PairBed& bed) {
                                    return raw_tcp_pair(bed, 512 << 10);
                                  }));
  curves.push_back(measure_on_bed(
      "raw TCP default", host, nic, sysctl, [](mp::PairBed& bed) {
        return raw_tcp_pair(bed, 64 << 10, "raw TCP default");
      }));
  curves.push_back(measure_on_bed("MPICH", host, nic, sysctl,
                                  [](mp::PairBed& bed) {
                                    mp::MpichOptions o;
                                    o.p4_sockbufsize = 256 << 10;
                                    return hold_pair(
                                        mp::Mpich::create_pair(bed, o));
                                  }));
  curves.push_back(measure_on_bed("LAM/MPI -O", host, nic, sysctl,
                                  [](mp::PairBed& bed) {
                                    mp::LamOptions o;
                                    o.mode = mp::LamMode::kC2cO;
                                    return hold_pair(
                                        mp::Lam::create_pair(bed, o));
                                  }));
  curves.push_back(measure_on_bed("MPI/Pro", host, nic, sysctl,
                                  [](mp::PairBed& bed) {
                                    mp::MpiProOptions o;
                                    o.tcp_long = 128 << 10;
                                    return hold_pair(
                                        mp::MpiPro::create_pair(bed, o));
                                  }));
  curves.push_back(measure_on_bed("MP_Lite", host, nic, sysctl,
                                  [](mp::PairBed& bed) {
                                    return hold_pair(
                                        mp::MpLite::create_pair(bed));
                                  }));
  curves.push_back(measure_on_bed("PVM", host, nic, sysctl,
                                  [](mp::PairBed& bed) {
                                    mp::PvmOptions o;
                                    o.route = mp::PvmRoute::kDirect;
                                    o.encoding = mp::PvmEncoding::kInPlace;
                                    return hold_pair(
                                        mp::Pvm::create_pair(bed, o));
                                  }));
  curves.push_back(measure_on_bed("TCGMSG", host, nic, sysctl,
                                  [](mp::PairBed& bed) {
                                    return hold_pair(
                                        mp::Tcgmsg::create_pair(bed, {}));
                                  }));
  curves.push_back(measure_on_bed(
      "TCGMSG 256k rebuild", host, nic, sysctl, [](mp::PairBed& bed) {
        mp::TcgmsgOptions o;
        o.sr_sock_buf_size = 256 << 10;  // §7's recompile experiment
        return hold_pair(mp::Tcgmsg::create_pair(bed, o));
      }));

  print_figure("Figure 2: TrendNet TEG-PCITX copper GigE, two P4 PCs",
               curves);

  const auto& tcp_r = find(curves, "raw TCP");
  const auto& tcp_def = find(curves, "raw TCP default");
  const auto& mpich = find(curves, "MPICH");
  const auto& mplite = find(curves, "MP_Lite");
  const auto& lam = find(curves, "LAM/MPI -O");
  const auto& mpipro = find(curves, "MPI/Pro");
  const auto& pvm = find(curves, "PVM");
  const auto& tcg = find(curves, "TCGMSG");
  const auto& tcg_big = find(curves, "TCGMSG 256k rebuild");

  std::cout << "\npaper-vs-measured checks (Figure 2):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"raw TCP max, tuned 512k buffers", 580, tcp_r.max_mbps,
       "OCR: both cards reach '55 Mbps'"},
      {"raw TCP at default buffers", 290, tcp_def.max_mbps,
       "OCR: 'flattens out at 29 Mbps'"},
      {"tuned/default raw TCP ratio", 2.0,
       tcp_r.max_mbps / tcp_def.max_mbps, "'doubling the raw throughput'"},
      {"MPICH tuned max", 375, mpich.max_mbps,
       "'only MP_Lite and MPICH worked well'"},
      {"MP_Lite max", 550, mplite.max_mbps, "tracks tuned raw TCP"},
      {"LAM/MPI stuck (Mbps)", 250, lam.max_mbps,
       "paper: 'many libraries reaching only 250-400'"},
      {"MPI/Pro stuck (Mbps)", 250, mpipro.max_mbps,
       "'flattening out at 250 Mbps'"},
      {"PVM stuck (Mbps)", 190, pvm.max_mbps, "'limited to only 190 Mbps'"},
      {"TCGMSG stuck (Mbps)", 250, tcg.max_mbps,
       "'performance is limited to 250 Mbps'"},
      {"TCGMSG after 256k recompile", 550, tcg_big.max_mbps,
       "'brought the performance up to raw TCP levels'"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
