// Declarative sweep specs for the paper's five figures.
//
// Each figure is a sweep::SweepSpec whose jobs are fully self-contained:
// every job builds its own simulator, cluster and transports inside the
// closure (all configs captured by value), so the jobs can run on any
// thread in any order and still aggregate deterministically. The figure
// benches and the combined sweep_figures bench both build on these.
#pragma once

#include <optional>
#include <utility>

#include "bench/common.h"
#include "gmsim/gm.h"
#include "mp/gm_mpi.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"
#include "mp/via_mpi.h"
#include "sweep/sweep.h"
#include "viasim/via.h"

namespace pp::bench {

/// A job that measures NetPIPE over a transport pair on a fresh two-node
/// bed (the TCP-based libraries of Figures 1-3).
inline sweep::JobSpec bed_job(
    std::string label, hw::HostConfig host, hw::NicConfig nic,
    tcp::Sysctl sysctl, std::function<TransportPair(mp::PairBed&)> make,
    netpipe::RunOptions opts) {
  auto run = [host = std::move(host), nic = std::move(nic), sysctl,
              make = std::move(make), opts] {
    mp::PairBed bed(host, nic, sysctl);
    auto [ta, tb] = make(bed);
    return netpipe::run_netpipe(bed.sim, *ta, *tb, opts);
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

/// GM (Myrinet) measurement: raw GM port-to-port, or an MPI layered over
/// it when `lib` is set.
inline netpipe::RunResult measure_gm_result(
    gm::RecvMode mode, std::optional<mp::GmMpiOptions> lib,
    const netpipe::RunOptions& opts) {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  gm::GmConfig gc;
  gc.recv_mode = mode;
  gm::GmFabric fab(c, a, b, hw::presets::myrinet_pci64a(),
                   hw::presets::back_to_back(), gc);
  if (!lib) {
    mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
    return netpipe::run_netpipe(s, ta, tb, opts);
  }
  mp::GmMpi la(fab.port_a(), 0, *lib), lb(fab.port_b(), 1, *lib);
  mp::LibraryTransport ta(la, 1), tb(lb, 0);
  return netpipe::run_netpipe(s, ta, tb, opts);
}

inline netpipe::RunResult measure_ip_over_gm_result(
    const netpipe::RunOptions& opts) {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  auto link = c.connect(a, b, hw::presets::myrinet_ip_over_gm(),
                        hw::presets::back_to_back());
  tcp::TcpStack sa(a, tcp::Sysctl::tuned()), sb(b, tcp::Sysctl::tuned());
  auto [xa, xb] = tcp::connect(sa, sb, link);
  xa.set_send_buffer(512 << 10);
  xa.set_recv_buffer(512 << 10);
  xb.set_send_buffer(512 << 10);
  xb.set_recv_buffer(512 << 10);
  netpipe::TcpTransport ta(xa, "IP over GM"), tb(xb, "IP over GM");
  return netpipe::run_netpipe(s, ta, tb, opts);
}

/// VIA measurement: Giganet cLAN hardware or M-VIA over SysKonnect, raw
/// or under an MPI when `lib` is set.
inline netpipe::RunResult measure_via_result(
    bool giganet, std::optional<mp::ViaMpiOptions> lib,
    const netpipe::RunOptions& opts) {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  via::ViaConfig vc;
  vc.personality = giganet ? via::ViaPersonality::giganet()
                           : via::ViaPersonality::mvia_sk98lin();
  const auto nic = giganet ? hw::presets::giganet_clan()
                           : hw::presets::syskonnect_mvia();
  const auto link =
      giganet ? hw::presets::switched() : hw::presets::back_to_back();
  via::ViaFabric fab(c, a, b, nic, link, vc);
  if (!lib) {
    mp::ViaTransport ta(fab.end_a()), tb(fab.end_b());
    return netpipe::run_netpipe(s, ta, tb, opts);
  }
  mp::ViaMpi la(fab.end_a(), 0, *lib), lb(fab.end_b(), 1, *lib);
  mp::LibraryTransport ta(la, 1), tb(lb, 0);
  return netpipe::run_netpipe(s, ta, tb, opts);
}

inline sweep::SweepSpec fig1_spec(
    const netpipe::RunOptions& opts = default_run_options()) {
  const auto host = hw::presets::pentium4_pc();
  const auto nic = hw::presets::netgear_ga620();
  const auto sysctl = tcp::Sysctl::tuned();
  sweep::SweepSpec s;
  s.name = "fig1_netgear_ga620";
  s.jobs.push_back(bed_job(
      "raw TCP", host, nic, sysctl,
      [](mp::PairBed& bed) { return raw_tcp_pair(bed, 512 << 10); }, opts));
  s.jobs.push_back(bed_job("MPICH", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::MpichOptions o;
                             o.p4_sockbufsize = 256 << 10;  // tuned
                             return hold_pair(mp::Mpich::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("LAM/MPI -O", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::LamOptions o;
                             o.mode = mp::LamMode::kC2cO;
                             return hold_pair(mp::Lam::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("MPI/Pro", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::MpiProOptions o;
                             o.tcp_long = 128 << 10;  // tuned
                             return hold_pair(mp::MpiPro::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("MP_Lite", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             return hold_pair(mp::MpLite::create_pair(bed));
                           },
                           opts));
  s.jobs.push_back(bed_job("PVM", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::PvmOptions o;
                             o.route = mp::PvmRoute::kDirect;
                             o.encoding = mp::PvmEncoding::kInPlace;
                             return hold_pair(mp::Pvm::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("TCGMSG", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             return hold_pair(mp::Tcgmsg::create_pair(bed, {}));
                           },
                           opts));
  return s;
}

inline sweep::SweepSpec fig2_spec(
    const netpipe::RunOptions& opts = default_run_options()) {
  const auto host = hw::presets::pentium4_pc();
  const auto nic = hw::presets::trendnet_teg_pcitx();
  const auto sysctl = tcp::Sysctl::tuned();
  sweep::SweepSpec s;
  s.name = "fig2_trendnet";
  s.jobs.push_back(bed_job(
      "raw TCP", host, nic, sysctl,
      [](mp::PairBed& bed) { return raw_tcp_pair(bed, 512 << 10); }, opts));
  s.jobs.push_back(bed_job(
      "raw TCP default", host, nic, sysctl,
      [](mp::PairBed& bed) {
        return raw_tcp_pair(bed, 64 << 10, "raw TCP default");
      },
      opts));
  s.jobs.push_back(bed_job("MPICH", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::MpichOptions o;
                             o.p4_sockbufsize = 256 << 10;
                             return hold_pair(mp::Mpich::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("LAM/MPI -O", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::LamOptions o;
                             o.mode = mp::LamMode::kC2cO;
                             return hold_pair(mp::Lam::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("MPI/Pro", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::MpiProOptions o;
                             o.tcp_long = 128 << 10;
                             return hold_pair(mp::MpiPro::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("MP_Lite", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             return hold_pair(mp::MpLite::create_pair(bed));
                           },
                           opts));
  s.jobs.push_back(bed_job("PVM", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::PvmOptions o;
                             o.route = mp::PvmRoute::kDirect;
                             o.encoding = mp::PvmEncoding::kInPlace;
                             return hold_pair(mp::Pvm::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("TCGMSG", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             return hold_pair(mp::Tcgmsg::create_pair(bed, {}));
                           },
                           opts));
  s.jobs.push_back(bed_job(
      "TCGMSG 256k rebuild", host, nic, sysctl,
      [](mp::PairBed& bed) {
        mp::TcgmsgOptions o;
        o.sr_sock_buf_size = 256 << 10;  // §7's recompile experiment
        return hold_pair(mp::Tcgmsg::create_pair(bed, o));
      },
      opts));
  return s;
}

inline sweep::SweepSpec fig3_spec(
    const netpipe::RunOptions& opts = default_run_options()) {
  const auto host = hw::presets::compaq_ds20();
  const auto nic = hw::presets::syskonnect_sk9843(9000);
  const auto sysctl = tcp::Sysctl::tuned();
  sweep::SweepSpec s;
  s.name = "fig3_syskonnect_ds20";
  s.jobs.push_back(bed_job(
      "raw TCP", host, nic, sysctl,
      [](mp::PairBed& bed) { return raw_tcp_pair(bed, 512 << 10); }, opts));
  s.jobs.push_back(bed_job("MPICH", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::MpichOptions o;
                             o.p4_sockbufsize = 256 << 10;
                             return hold_pair(mp::Mpich::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("LAM/MPI -O", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::LamOptions o;
                             o.mode = mp::LamMode::kC2cO;
                             return hold_pair(mp::Lam::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("MP_Lite", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             return hold_pair(mp::MpLite::create_pair(bed));
                           },
                           opts));
  s.jobs.push_back(bed_job("PVM", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::PvmOptions o;
                             o.route = mp::PvmRoute::kDirect;
                             o.encoding = mp::PvmEncoding::kInPlace;
                             return hold_pair(mp::Pvm::create_pair(bed, o));
                           },
                           opts));
  s.jobs.push_back(bed_job("TCGMSG", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             return hold_pair(mp::Tcgmsg::create_pair(bed, {}));
                           },
                           opts));
  s.jobs.push_back(bed_job(
      "TCGMSG 128k rebuild", host, nic, sysctl,
      [](mp::PairBed& bed) {
        mp::TcgmsgOptions o;
        o.sr_sock_buf_size = 128 << 10;
        return hold_pair(mp::Tcgmsg::create_pair(bed, o));
      },
      opts));
  s.jobs.push_back(bed_job("MPI/Pro (model)", host, nic, sysctl,
                           [](mp::PairBed& bed) {
                             mp::MpiProOptions o;
                             o.tcp_long = 128 << 10;
                             return hold_pair(mp::MpiPro::create_pair(bed, o));
                           },
                           opts));
  return s;
}

/// Figure 4's sweep also carries the §5 receive-mode latency probes
/// ("raw GM blocking"/"raw GM hybrid"); the figure proper plots only the
/// first four curves — see fig4_figure_labels().
inline sweep::SweepSpec fig4_spec(
    const netpipe::RunOptions& opts = default_run_options()) {
  sweep::SweepSpec s;
  s.name = "fig4_myrinet";
  s.add("raw GM", [opts] {
    return measure_gm_result(gm::RecvMode::kPolling, std::nullopt, opts);
  });
  s.add("MPICH-GM", [opts] {
    return measure_gm_result(gm::RecvMode::kPolling, mp::GmMpi::mpich_gm(),
                             opts);
  });
  s.add("MPI/Pro-GM", [opts] {
    return measure_gm_result(gm::RecvMode::kPolling, mp::GmMpi::mpipro_gm(),
                             opts);
  });
  s.add("IP over GM", [opts] { return measure_ip_over_gm_result(opts); });
  s.add("raw GM blocking", [opts] {
    return measure_gm_result(gm::RecvMode::kBlocking, std::nullopt, opts);
  });
  s.add("raw GM hybrid", [opts] {
    return measure_gm_result(gm::RecvMode::kHybrid, std::nullopt, opts);
  });
  return s;
}

inline std::size_t fig4_figure_curves() { return 4; }

/// Figure 5's sweep also carries the no-RPUT configuration the paper
/// warns about; the figure proper plots the first five curves.
inline sweep::SweepSpec fig5_spec(
    const netpipe::RunOptions& opts = default_run_options()) {
  sweep::SweepSpec s;
  s.name = "fig5_via";
  s.add("MVICH Giganet", [opts] {
    return measure_via_result(true, mp::ViaMpi::mvich(), opts);
  });
  s.add("MP_Lite Giganet", [opts] {
    return measure_via_result(true, mp::ViaMpi::mplite_via(), opts);
  });
  s.add("MPI/Pro Giganet", [opts] {
    return measure_via_result(true, mp::ViaMpi::mpipro_via(), opts);
  });
  s.add("MVICH M-VIA/sk", [opts] {
    return measure_via_result(false, mp::ViaMpi::mvich(), opts);
  });
  s.add("MP_Lite M-VIA/sk", [opts] {
    return measure_via_result(false, mp::ViaMpi::mplite_via(), opts);
  });
  s.add("MVICH without RPUT", [opts] {
    return measure_via_result(true, mp::ViaMpi::mvich(false), opts);
  });
  return s;
}

inline std::size_t fig5_figure_curves() { return 5; }

inline std::vector<sweep::SweepSpec> all_figure_specs(
    const netpipe::RunOptions& opts = default_run_options()) {
  std::vector<sweep::SweepSpec> specs;
  specs.push_back(fig1_spec(opts));
  specs.push_back(fig2_spec(opts));
  specs.push_back(fig3_spec(opts));
  specs.push_back(fig4_spec(opts));
  specs.push_back(fig5_spec(opts));
  return specs;
}

/// Converts the first `limit` sweep results (all when limit == 0) into
/// the Curve list the reporting helpers consume. Throws if any job
/// failed.
inline std::vector<Curve> curves_of(const sweep::SweepResult& sr,
                                    std::size_t limit = 0) {
  const std::size_t n =
      limit == 0 ? sr.jobs.size() : std::min(limit, sr.jobs.size());
  std::vector<Curve> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Curve{sr.jobs[i].label, sr.at(sr.jobs[i].label)});
  }
  return out;
}

/// One-line sweep execution summary printed by every ported bench.
inline void print_sweep_stats(const sweep::SweepResult& sr) {
  std::printf(
      "sweep '%s': %zu jobs on %d threads, %.0f ms wall "
      "(serial estimate %.0f ms, %.2fx speedup)\n",
      sr.name.c_str(), sr.jobs.size(), sr.threads, sr.wall_ms, sr.serial_ms,
      sr.speedup());
}

}  // namespace pp::bench
