// Figure 3: 9000-byte-MTU jumbo frames across SysKonnect SK-9843 cards
// between two Compaq DS20s (64-bit PCI).
//
// The fast-environment story: raw TCP reaches ~900 Mbps at 48 us latency;
// MPICH and PVM still lose 25-30 % to their staging copies; LAM/MPI loses
// ~25 % to its non-tunable socket buffers; TCGMSG's hard-wired 32 kB
// buffer caps it around 600 Mbps until recompiled with 128 kB, after
// which it matches raw TCP (the §7 demonstration). MPI/Pro's Alpha port
// was too new for the paper to include; we measure our model anyway.
//
// The eight curves are one parallel sweep (see bench/figures.h).
#include "bench/figures.h"

using namespace pp;
using namespace pp::bench;

int main(int argc, char** argv) {
  const auto sr = sweep::run_sweep(fig3_spec());
  const std::vector<Curve> curves = curves_of(sr);

  print_figure(
      "Figure 3: SysKonnect SK-9843, 9000 B MTU, two Compaq DS20s", curves);
  print_sweep_stats(sr);

  const std::string dir =
      write_figure_dats(out_dir_from_args(argc, argv), "fig3", curves);
  std::cout << "curve data written to " << dir << "/\n";

  const auto& tcp_r = find(curves, "raw TCP");
  const auto& mpich = find(curves, "MPICH");
  const auto& lam = find(curves, "LAM/MPI -O");
  const auto& pvm = find(curves, "PVM");
  const auto& mplite = find(curves, "MP_Lite");
  const auto& tcg = find(curves, "TCGMSG");
  const auto& tcg_big = find(curves, "TCGMSG 128k rebuild");

  std::cout << "\npaper-vs-measured checks (Figure 3):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"raw TCP max Mbps", 900, tcp_r.max_mbps, "OCR: 'up to 9 Mbps'"},
      {"raw TCP latency us", 48, tcp_r.latency_us, "'a low 48 us latency'"},
      {"MPICH loss vs TCP (%)", 27,
       100.0 * (1.0 - mpich.max_mbps / tcp_r.max_mbps), "paper: 25-30 %"},
      {"PVM loss vs TCP (%)", 27,
       100.0 * (1.0 - pvm.max_mbps / tcp_r.max_mbps), "paper: 25-30 %"},
      {"LAM loss vs TCP (%)", 25,
       100.0 * (1.0 - lam.max_mbps / tcp_r.max_mbps),
       "'loses about 25 %'; our model gives less (see EXPERIMENTS.md)"},
      {"MP_Lite / raw TCP ratio (%)", 100,
       100.0 * mplite.max_mbps / tcp_r.max_mbps, "tracks raw TCP"},
      {"TCGMSG with 32k buffer", 600, tcg.max_mbps,
       "OCR: 'throughput tops out at [6]00 Mbps'"},
      {"TCGMSG after 128k recompile", 900, tcg_big.max_mbps,
       "'resulting in ... 900 Mbps, matching raw TCP'"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
