// Engineering micro-benchmarks of the simulator itself (google-benchmark):
// event-queue throughput, coroutine switch cost, TCP segment path cost.
// These bound how fast the reproduction can sweep parameter spaces.
#include <benchmark/benchmark.h>

#include "mp/testbed.h"
#include "simcore/event_queue.h"
#include "simcore/random.h"
#include "simcore/resource.h"
#include "simcore/simulator.h"
#include "simcore/sync.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"

namespace {

using namespace pp;

// range(1) selects the scheduler so the legacy heap and the calendar
// queue appear side by side in one report.
sim::SchedulerKind kind_of(const benchmark::State& state) {
  return state.range(1) == 0 ? sim::SchedulerKind::kLegacyHeap
                             : sim::SchedulerKind::kCalendar;
}

void BM_EventQueueThroughput(benchmark::State& state) {
  sim::ScopedScheduler guard(kind_of(state));
  for (auto _ : state) {
    sim::Simulator s;
    const int n = static_cast<int>(state.range(0));
    s.spawn(
        [](sim::Simulator& s, int n) -> sim::Task<void> {
          for (int i = 0; i < n; ++i) co_await s.delay(1);
        }(s, n),
        "spin");
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)
    ->ArgsProduct({{1000, 100000}, {0, 1}})
    ->ArgNames({"n", "calendar"});

void BM_RandomizedSchedule(benchmark::State& state) {
  // Uniformly random deadlines: the pattern where a binary heap pays
  // log(n) per op and the calendar queue stays O(1) per bucket.
  sim::ScopedScheduler guard(kind_of(state));
  for (auto _ : state) {
    sim::Simulator s;
    sim::SplitMix64 rng(42);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      s.call_at(static_cast<sim::SimTime>(rng.below(1u << 24)), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RandomizedSchedule)
    ->ArgsProduct({{100000}, {0, 1}})
    ->ArgNames({"n", "calendar"});

void BM_CoroutineCallChain(benchmark::State& state) {
  struct Helper {
    static sim::Task<int> leaf(sim::Simulator& s) {
      co_await s.delay(1);
      co_return 1;
    }
    static sim::Task<int> chain(sim::Simulator& s, int depth) {
      if (depth == 0) co_return co_await leaf(s);
      co_return co_await chain(s, depth - 1);
    }
  };
  for (auto _ : state) {
    sim::Simulator s;
    s.spawn(
        [](sim::Simulator& s, int d) -> sim::Task<void> {
          for (int i = 0; i < 100; ++i) {
            benchmark::DoNotOptimize(co_await Helper::chain(s, d));
          }
        }(s, static_cast<int>(state.range(0))),
        "chain");
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CoroutineCallChain)->Arg(1)->Arg(16);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    auto ping = std::make_shared<sim::Channel<int>>(s);
    auto pong = std::make_shared<sim::Channel<int>>(s);
    s.spawn(
        [](std::shared_ptr<sim::Channel<int>> out,
           std::shared_ptr<sim::Channel<int>> in) -> sim::Task<void> {
          for (int i = 0; i < 1000; ++i) {
            co_await out->push(i);
            (void)co_await in->pop();
          }
        }(ping, pong),
        "a");
    s.spawn(
        [](std::shared_ptr<sim::Channel<int>> in,
           std::shared_ptr<sim::Channel<int>> out) -> sim::Task<void> {
          for (int i = 0; i < 1000; ++i) {
            (void)co_await in->pop();
            co_await out->push(i);
          }
        }(ping, pong),
        "b");
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ChannelPingPong);

void BM_TcpBulkTransfer(benchmark::State& state) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    mp::PairBed bed(hw::presets::pentium4_pc(),
                    hw::presets::netgear_ga620(), tcp::Sysctl::tuned());
    auto [sa, sb] = bed.socket_pair("bench");
    sa.set_send_buffer(512 << 10);
    sb.set_recv_buffer(512 << 10);
    bed.sim.spawn(
        [](tcp::Socket s, std::uint64_t n) -> sim::Task<void> {
          co_await s.send(n);
        }(sa, bytes),
        "tx");
    bed.sim.spawn(
        [](tcp::Socket s, std::uint64_t n) -> sim::Task<void> {
          co_await s.recv_exact(n);
        }(sb, bytes),
        "rx");
    bed.sim.run();
    benchmark::DoNotOptimize(bed.sim.events_processed());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TcpBulkTransfer)->Arg(64 << 10)->Arg(1 << 20);

void BM_RateResourceTransfer(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::RateResource bus(s, "bus", sim::Rate::megabytes(100));
    s.spawn(
        [](sim::RateResource& r) -> sim::Task<void> {
          for (int i = 0; i < 1000; ++i) co_await r.transfer(1500);
        }(bus),
        "user");
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RateResourceTransfer);

}  // namespace

BENCHMARK_MAIN();
