// Simcore stress bench: the seed's implementations vs the optimized
// ones, across both overhaul axes at once.
//
// Each workload runs once per leg and reports events/second from
// Simulator::events_processed() against host wall clock. The legacy leg
// is the seed configuration (binary-heap scheduler + per-message heap
// packet descriptors); the modern leg is the shipped one (calendar
// queue + arena packet path). Results land in BENCH_simcore.json
// (schema pp.simcore/3) — the before/after record for the event-loop
// and packet-path overhauls, plus the shard_scaling section: one big
// 64-node relay-ring simulation run serially and split across
// conservative shards, with wall time per shard count, the host's CPU
// count (speedup is bounded by the cores actually present) and a
// checksum proving every shard count computed the same simulation.
// The per-leg workloads cover the hot regimes:
//
//   spin_chain     dense same-delta rescheduling (the common case);
//   timer_churn    randomized insert order across a wide time range
//                  (worst case for a heap, bucket-spread for the wheel);
//   callback_ring  many concurrent hot entities at staggered offsets;
//   packet_path    the NIC/PCI/IRQ pipe moving descriptor-carrying
//                  frames at wire rate (the arena's home turf);
//   tcp_transfer   the real protocol stack end to end, including the
//                  timer-wheel delack/RTO path and per-segment
//                  descriptors.
//
// Each leg is measured --reps times with the legs interleaved, and the
// minimum wall time per leg is reported: on a shared host the minimum is
// the least-preempted run, i.e. the closest observable to each leg's
// true cost.
//
// Usage: queue_stress [--out <path>] [--packet-path] [--reps <n>]
//   --out          output path (default BENCH_simcore.json)
//   --packet-path  run only the packet-carrying workloads (packet_path,
//                  tcp_transfer)
//   --reps         measurements per leg, best-of (default 5)
//   --shards       comma-separated shard counts for the shard_scaling
//                  section (default "1,2,4,8"; "0" skips the section)
//   --matrix       diagnostic: instead of the two shipped legs, time all
//                  four scheduler x packet-path combinations so a
//                  regression can be attributed to one axis (no JSON)
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "mp/testbed.h"
#include "simcore/event_queue.h"
#include "simcore/packet_arena.h"
#include "simcore/random.h"
#include "simcore/simulator.h"
#include "simcore/task.h"
#include "simhw/cluster.h"
#include "simhw/pipe.h"
#include "simhw/presets.h"
#include "simhw/relay_ring.h"
#include "tcpsim/socket.h"

namespace {

using namespace pp;

struct Measurement {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec() const {
    return wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms / 1e3)
                         : 0.0;
  }
};

template <typename Fn>
Measurement timed(Fn&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t events = body();
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.events = events;
  m.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  return m;
}

std::uint64_t spin_chain() {
  sim::Simulator s;
  s.spawn(
      [](sim::Simulator& s) -> sim::Task<void> {
        for (int i = 0; i < 2'000'000; ++i) co_await s.delay(1);
      }(s),
      "spin");
  s.run();
  return s.events_processed();
}

std::uint64_t timer_churn() {
  // Randomized deadlines over a wide range, inserted in waves so the
  // queue stays large — the access pattern protocol timeouts used to
  // impose on the global queue.
  sim::Simulator s;
  sim::SplitMix64 rng(1);
  constexpr int kWaves = 200;
  constexpr int kPerWave = 5000;
  for (int w = 0; w < kWaves; ++w) {
    const sim::SimTime base = static_cast<sim::SimTime>(w) * 40000;
    for (int i = 0; i < kPerWave; ++i) {
      s.call_at(base + static_cast<sim::SimTime>(rng.below(20'000'000)),
                [] {});
    }
    s.run_until(base);
  }
  s.run();
  return s.events_processed();
}

std::uint64_t callback_ring() {
  // 512 self-rescheduling entities at staggered offsets: the queue holds
  // a steady mid-size population with constant pop/push turnover.
  sim::Simulator s;
  struct Ring {
    sim::Simulator* sim;
    sim::SimTime period;
    int remaining;
    void fire() {
      if (--remaining <= 0) return;
      sim->call_after(period, [this] { fire(); });
    }
  };
  std::vector<Ring> rings;
  rings.reserve(512);
  for (int i = 0; i < 512; ++i) {
    rings.push_back(Ring{&s, static_cast<sim::SimTime>(97 + i % 61), 4000});
  }
  for (auto& r : rings) s.call_after(r.period, [&r] { r.fire(); });
  s.run();
  return s.events_processed();
}

std::uint64_t packet_path() {
  // 200k descriptor-carrying frames through the full DMA/wire/IRQ pipe,
  // paced just under the wire's frame service time so the pipeline stays
  // saturated without unbounded backlog. Every frame allocates (and
  // releases) one descriptor — the per-frame cost the arena removes.
  sim::Simulator s;
  hw::Cluster c(s);
  hw::Node& a = c.add_node(hw::presets::pentium4_pc());
  hw::Node& b = c.add_node(hw::presets::pentium4_pc());
  auto link = c.connect(a, b, hw::presets::netgear_ga620(),
                        hw::presets::back_to_back());
  constexpr int kFrames = 200'000;
  s.spawn(
      [](sim::Simulator& s, hw::PacketPipe& pipe) -> sim::Task<void> {
        for (int i = 0; i < kFrames; ++i) {
          hw::Packet p;
          p.dma_bytes = 1500;
          p.wire_bytes = 1538;
          p.desc =
              s.packet_arena().make<std::uint64_t>(static_cast<std::uint64_t>(i));
          pipe.inject(std::move(p));
          co_await s.delay(sim::microseconds(12.0));
        }
      }(s, link.forward),
      "source");
  s.spawn(
      [](hw::PacketPipe& pipe) -> sim::Task<void> {
        for (int i = 0; i < kFrames; ++i) (void)co_await pipe.delivered().pop();
      }(link.forward),
      "sink");
  s.run();
  return s.events_processed();
}

std::uint64_t tcp_transfer() {
  mp::PairBed bed(hw::presets::pentium4_pc(), hw::presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto [sa, sb] = bed.socket_pair("stress");
  sa.set_send_buffer(512 << 10);
  sb.set_recv_buffer(512 << 10);
  const std::uint64_t bytes = 64ull << 20;
  bed.sim.spawn(
      [](tcp::Socket s, std::uint64_t n) -> sim::Task<void> {
        co_await s.send(n);
      }(sa, bytes),
      "tx");
  bed.sim.spawn(
      [](tcp::Socket s, std::uint64_t n) -> sim::Task<void> {
        co_await s.recv_exact(n);
      }(sb, bytes),
      "rx");
  bed.sim.run();
  return bed.sim.events_processed();
}

struct Workload {
  const char* name;
  std::uint64_t (*run)();
  /// Queue-bound workloads spend their cycles in the scheduler itself;
  /// tcp_transfer is the end-to-end macro check, where the protocol
  /// model bounds the attainable speedup (Amdahl).
  bool queue_bound;
};

std::vector<int> parse_shard_list(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const int n = std::atoi(tok.c_str());
    if (n > 0) out.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// One big simulation — a 64-node token relay ring — partitioned over
/// `shards` conservative shards. Returns the wall time, the total
/// events processed across all shards, and the result checksum (which
/// must not depend on the shard count).
struct ShardRun {
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
};

ShardRun shard_scaling_run(int shards) {
  const auto t0 = std::chrono::steady_clock::now();
  hw::RelayRingOptions opt;  // 64 nodes (the default ring size)
  opt.tokens_per_node = 16;  // heavy enough that barrier overhead
  opt.hops = 64;             // amortizes: ~65k token hops per run
  opt.shards = shards;
  hw::RelayRing ring(opt);
  const hw::RelayRingResult r = ring.run();
  ShardRun out;
  for (int i = 0; i < ring.group().shards(); ++i) {
    out.events += ring.group().shard(i).events_processed();
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  out.checksum = r.checksum;
  return out;
}

void append_measurement(std::string& out, const char* key,
                        const Measurement& m) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"%s\": {\"wall_ms\": %.2f, \"events_per_sec\": %.0f}", key,
                m.wall_ms, m.events_per_sec());
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_simcore.json";
  bool packet_only = false;
  bool matrix = false;
  int reps = 5;
  std::string shard_csv = "1,2,4,8";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    if (arg == "--packet-path") packet_only = true;
    if (arg == "--matrix") matrix = true;
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (arg == "--shards" && i + 1 < argc) shard_csv = argv[++i];
  }
  if (reps < 1) reps = 1;
  const std::vector<int> shard_counts = parse_shard_list(shard_csv);

  const std::vector<Workload> all = {
      {"spin_chain", spin_chain, true},
      {"timer_churn", timer_churn, true},
      {"callback_ring", callback_ring, true},
      {"packet_path", packet_path, false},
      {"tcp_transfer", tcp_transfer, false},
  };
  std::vector<Workload> workloads;
  for (const auto& w : all) {
    if (!packet_only || !w.queue_bound) workloads.push_back(w);
  }

  if (matrix) {
    struct Cell {
      const char* label;
      sim::SchedulerKind sched;
      sim::PacketPathKind packets;
    };
    const Cell cells[] = {
        {"heap/heap ", sim::SchedulerKind::kLegacyHeap,
         sim::PacketPathKind::kLegacyHeap},
        {"heap/arena", sim::SchedulerKind::kLegacyHeap,
         sim::PacketPathKind::kArena},
        {"cal/heap  ", sim::SchedulerKind::kCalendar,
         sim::PacketPathKind::kLegacyHeap},
        {"cal/arena ", sim::SchedulerKind::kCalendar,
         sim::PacketPathKind::kArena},
    };
    for (const auto& w : workloads) {
      std::printf("%s:\n", w.name);
      for (const Cell& c : cells) {
        Measurement best;
        for (int rep = 0; rep < reps; ++rep) {
          sim::ScopedScheduler sched(c.sched);
          sim::ScopedPacketPath packets(c.packets);
          const Measurement m = timed(w.run);
          if (rep == 0 || m.wall_ms < best.wall_ms) best = m;
        }
        std::printf("  %s %8.1f ms  %9.0f ev/s\n", c.label, best.wall_ms,
                    best.events_per_sec());
      }
    }
    return 0;
  }

  std::string json =
      "{\n  \"schema\": \"pp.simcore/3\",\n"
      "  \"legs\": {\"legacy\": \"binary-heap scheduler + per-message heap "
      "packet descriptors (the seed)\", \"modern\": \"calendar queue + "
      "arena packet path\"},\n"
      "  \"workloads\": [";
  bool first = true;
  double geo_accum = 0.0;
  int geo_n = 0;
  double qb_accum = 0.0;
  int qb_n = 0;
  for (const auto& w : workloads) {
    Measurement legacy, modern;
    for (int rep = 0; rep < reps; ++rep) {
      Measurement l, m;
      {
        sim::ScopedScheduler sched(sim::SchedulerKind::kLegacyHeap);
        sim::ScopedPacketPath packets(sim::PacketPathKind::kLegacyHeap);
        l = timed(w.run);
      }
      {
        sim::ScopedScheduler sched(sim::SchedulerKind::kCalendar);
        sim::ScopedPacketPath packets(sim::PacketPathKind::kArena);
        m = timed(w.run);
      }
      if (rep == 0 || l.wall_ms < legacy.wall_ms) legacy = l;
      if (rep == 0 || m.wall_ms < modern.wall_ms) modern = m;
    }
    if (legacy.events != modern.events) {
      std::fprintf(stderr,
                   "FATAL: %s processed %llu events under the legacy leg "
                   "but %llu under the modern leg — the legs delivered "
                   "different simulations\n",
                   w.name, static_cast<unsigned long long>(legacy.events),
                   static_cast<unsigned long long>(modern.events));
      return 1;
    }
    const double speedup = legacy.wall_ms > 0.0 && modern.wall_ms > 0.0
                               ? legacy.wall_ms / modern.wall_ms
                               : 0.0;
    std::printf("%-14s %9llu events  legacy %8.0f ev/s  modern %8.0f "
                "ev/s  speedup %.2fx\n",
                w.name, static_cast<unsigned long long>(legacy.events),
                legacy.events_per_sec(), modern.events_per_sec(), speedup);
    geo_accum += std::log(speedup);
    ++geo_n;
    if (w.queue_bound) {
      qb_accum += std::log(speedup);
      ++qb_n;
    }

    if (!first) json += ",";
    first = false;
    json += "\n    {\"name\": \"";
    json += w.name;
    json += w.queue_bound ? "\", \"queue_bound\": true" :
                            "\", \"queue_bound\": false";
    json += ", \"events\": " + std::to_string(legacy.events) + ", ";
    append_measurement(json, "legacy", legacy);
    json += ", ";
    append_measurement(json, "modern", modern);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"speedup\": %.3f}", speedup);
    json += buf;
  }
  const double geomean = geo_n > 0 ? std::exp(geo_accum / geo_n) : 0.0;
  const double qb_geomean = qb_n > 0 ? std::exp(qb_accum / qb_n) : 0.0;
  json += "\n  ],";

  if (!shard_counts.empty()) {
    // One big simulation across conservative shards. Serial first: the
    // shards=1 wall time is the speedup baseline even when the caller's
    // list omits it.
    const unsigned host_cpus =
        std::max(std::thread::hardware_concurrency(), 1u);
    ShardRun serial;
    std::vector<ShardRun> runs(shard_counts.size());
    for (int rep = 0; rep < reps; ++rep) {
      const ShardRun s = shard_scaling_run(1);
      if (rep == 0 || s.wall_ms < serial.wall_ms) serial = s;
      for (std::size_t i = 0; i < shard_counts.size(); ++i) {
        const ShardRun r = shard_scaling_run(shard_counts[i]);
        if (rep == 0 || r.wall_ms < runs[i].wall_ms) runs[i] = r;
      }
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n  \"shard_scaling\": {\n"
                  "    \"workload\": \"relay_ring: 64 nodes, 16 tokens/node,"
                  " 64 hops, 4096-byte payloads\",\n"
                  "    \"host_cpus\": %u,\n"
                  "    \"checksum\": %llu,\n    \"runs\": [",
                  host_cpus,
                  static_cast<unsigned long long>(serial.checksum));
    json += buf;
    std::printf("shard_scaling (relay_ring64, host_cpus=%u):\n", host_cpus);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (runs[i].checksum != serial.checksum) {
        std::fprintf(stderr,
                     "FATAL: shards=%d produced checksum %llu but the "
                     "serial run produced %llu — sharding changed the "
                     "simulation\n",
                     shard_counts[i],
                     static_cast<unsigned long long>(runs[i].checksum),
                     static_cast<unsigned long long>(serial.checksum));
        return 1;
      }
      const double speedup =
          runs[i].wall_ms > 0.0 ? serial.wall_ms / runs[i].wall_ms : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "%s\n      {\"shards\": %d, \"wall_ms\": %.2f, "
                    "\"events\": %llu, \"speedup_vs_serial\": %.3f}",
                    i > 0 ? "," : "", shard_counts[i], runs[i].wall_ms,
                    static_cast<unsigned long long>(runs[i].events),
                    speedup);
      json += buf;
      std::printf("  shards=%-2d %8.1f ms  speedup %.2fx\n", shard_counts[i],
                  runs[i].wall_ms, speedup);
    }
    json += "\n    ]\n  },";
  }

  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\n  \"queue_bound_geomean_speedup\": %.3f,"
                "\n  \"geomean_speedup\": %.3f\n}\n",
                qb_geomean, geomean);
  json += buf;

  std::ofstream f(out_path);
  f << json;
  std::printf("queue-bound geomean %.2fx, overall %.2fx -> %s\n", qb_geomean,
              geomean, out_path.c_str());
  return 0;
}
