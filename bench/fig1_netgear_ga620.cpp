// Figure 1: message-passing performance across Netgear GA620 fiber
// Gigabit Ethernet cards between two Pentium-4 PCs.
//
// Paper findings reproduced here:
//  - raw TCP tops out around 550 Mbps with ~120 us latency under the 2.4
//    kernel;
//  - MP_Lite and TCGMSG lie on the raw TCP curve ("left off since they
//    fell nearly on top of the TCP curve");
//  - LAM/MPI -O and MPI/Pro come within a few percent, with a slight,
//    non-tunable dip at LAM's rendezvous threshold;
//  - MPICH and PVM lose 25-30 % for large messages (staging copies), and
//    MPICH shows a sharp dip at its 128 kB rendezvous cutoff.
//
// The seven curves are one parallel sweep (see bench/figures.h).
#include "bench/figures.h"

using namespace pp;
using namespace pp::bench;

int main(int argc, char** argv) {
  const auto sr = sweep::run_sweep(fig1_spec());
  const std::vector<Curve> curves = curves_of(sr);

  print_figure("Figure 1: Netgear GA620 fiber GigE, two P4 PCs", curves);
  print_sweep_stats(sr);

  const std::string dir =
      write_figure_dats(out_dir_from_args(argc, argv), "fig1", curves);
  std::cout << "curve data written to " << dir << "/\n";

  const auto& tcp_r = find(curves, "raw TCP");
  const auto& mpich = find(curves, "MPICH");
  const auto& pvm = find(curves, "PVM");
  const auto& mplite = find(curves, "MP_Lite");
  const auto& tcg = find(curves, "TCGMSG");
  const auto& mpipro = find(curves, "MPI/Pro");

  std::cout << "\npaper-vs-measured checks (Figure 1):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"raw TCP max Mbps", 550, tcp_r.max_mbps, "OCR: '55 Mbps'"},
      {"raw TCP latency us", 120, tcp_r.latency_us, "OCR: '12 us'"},
      {"MPICH large-msg loss vs TCP (%)", 27,
       100.0 * (1.0 - mpich.max_mbps / tcp_r.max_mbps), "paper: 25-30 %"},
      {"PVM large-msg loss vs TCP (%)", 27,
       100.0 * (1.0 - pvm.max_mbps / tcp_r.max_mbps), "paper: 25-30 %"},
      {"MP_Lite / raw TCP ratio (%)", 100,
       100.0 * mplite.max_mbps / tcp_r.max_mbps, "lies on the TCP curve"},
      {"TCGMSG / raw TCP ratio (%)", 100,
       100.0 * tcg.max_mbps / tcp_r.max_mbps, "lies on the TCP curve"},
      {"MPI/Pro / raw TCP ratio (%)", 95,
       100.0 * mpipro.max_mbps / tcp_r.max_mbps, "within 5 % of raw TCP"},
      {"MPICH dip: Mbps at 128k vs 96k", 100,
       100.0 * mpich.mbps_at(128 << 10) / mpich.mbps_at(96 << 10),
       "<100 means the rendezvous dip exists"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
