// "Identify where the inefficiencies lie" (paper §1): resource-time
// breakdown of a bulk raw-TCP transfer on each hardware configuration,
// naming the bottleneck the measurement implies.
#include "bench/common.h"

#include "netpipe/breakdown.h"

using namespace pp;
using namespace pp::bench;

namespace {

void breakdown_for(const std::string& title, const hw::HostConfig& host,
                   const hw::NicConfig& nic) {
  mp::PairBed bed(host, nic, tcp::Sysctl::tuned());
  auto [sa, sb] = bed.socket_pair("bd");
  sa.set_send_buffer(512 << 10);
  sa.set_recv_buffer(512 << 10);
  sb.set_send_buffer(512 << 10);
  sb.set_recv_buffer(512 << 10);
  netpipe::BreakdownProbe probe(bed.node_a, bed.node_b, bed.link.forward,
                                bed.link.backward);
  const std::uint64_t total = 16 << 20;
  bed.sim.spawn(
      [](tcp::Socket s, std::uint64_t n) -> sim::Task<void> {
        co_await s.send(n);
      }(sa, total),
      "tx");
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](tcp::Socket s, std::uint64_t n, sim::Simulator& sm,
         sim::SimTime& d) -> sim::Task<void> {
        co_await s.recv_exact(n);
        d = sm.now();
      }(sb, total, bed.sim, done),
      "rx");
  bed.sim.run();
  const double mbps =
      static_cast<double>(total) * 8.0 / sim::to_seconds(done) / 1e6;
  std::cout << "\n==== " << title << " — " << static_cast<int>(mbps)
            << " Mbps ====\n";
  netpipe::print_breakdown(std::cout, probe.finish());
}

}  // namespace

int main() {
  std::cout << "Bulk raw-TCP transfer, 16 MB, tuned buffers: where the "
               "time goes.\n";
  breakdown_for("Netgear GA620 / P4 (1500 MTU)", hw::presets::pentium4_pc(),
                hw::presets::netgear_ga620());
  breakdown_for("TrendNet / P4 (1500 MTU)", hw::presets::pentium4_pc(),
                hw::presets::trendnet_teg_pcitx());
  breakdown_for("SysKonnect jumbo / P4 (32-bit PCI)",
                hw::presets::pentium4_pc(),
                hw::presets::syskonnect_sk9843(9000));
  breakdown_for("SysKonnect jumbo / DS20 (64-bit PCI)",
                hw::presets::compaq_ds20(),
                hw::presets::syskonnect_sk9843(9000));
  std::cout
      << "\nExpected story (paper §1/§7): on 1500-MTU GigE the host CPU\n"
         "(per-packet protocol work + copies) saturates first; jumbo\n"
         "frames shift the bottleneck to the 32-bit PCI bus; only the\n"
         "64-bit DS20 gets the wire itself near saturation.\n";
  return 0;
}
