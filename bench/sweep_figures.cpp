// The whole paper as one parallel experiment sweep.
//
// Runs every curve of Figures 1-5 twice — once on a single thread, once
// on the full thread pool — verifies that the parallel run reproduces the
// serial RunResult curves bit for bit (the determinism contract of
// src/sweep + simcore), prints the wall-clock comparison, and writes the
// machine-readable BENCH_sweep.json report.
//
//   ./sweep_figures [--quick]      --quick caps messages at 256 kB
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/figures.h"
#include "sweep/json_report.h"

using namespace pp;
using namespace pp::bench;

namespace {

/// Bitwise curve comparison: every point's size and time, plus the
/// derived metrics, must agree exactly (NaN == NaN for latency).
bool identical(const netpipe::RunResult& a, const netpipe::RunResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].bytes != b.points[i].bytes ||
        a.points[i].elapsed != b.points[i].elapsed) {
      return false;
    }
  }
  const bool lat_equal =
      (!a.has_latency() && !b.has_latency()) || a.latency_us == b.latency_us;
  return lat_equal && a.max_mbps == b.max_mbps &&
         a.saturation_bytes == b.saturation_bytes &&
         a.half_performance_bytes == b.half_performance_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  netpipe::RunOptions opts = default_run_options();
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    opts.schedule.max_bytes = 256 << 10;
  }
  const auto specs = all_figure_specs(opts);

  std::size_t total_jobs = 0;
  for (const auto& s : specs) total_jobs += s.jobs.size();
  std::printf("running %zu figure jobs serially, then in parallel...\n",
              total_jobs);

  sweep::SweepOptions serial_opt;
  serial_opt.threads = 1;
  std::vector<sweep::SweepResult> serial, parallel;
  double serial_wall = 0, parallel_wall = 0;
  for (const auto& spec : specs) {
    serial.push_back(sweep::run_sweep(spec, serial_opt));
    serial_wall += serial.back().wall_ms;
  }
  for (const auto& spec : specs) {
    parallel.push_back(sweep::run_sweep(spec));
    parallel_wall += parallel.back().wall_ms;
  }

  int mismatches = 0;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    for (std::size_t j = 0; j < serial[s].jobs.size(); ++j) {
      const auto& sj = serial[s].jobs[j];
      const auto& pj = parallel[s].jobs[j];
      if (sj.label != pj.label || !sj.ok || !pj.ok ||
          !identical(sj.result, pj.result)) {
        std::printf("MISMATCH: %s / %s\n", specs[s].name.c_str(),
                    sj.label.c_str());
        ++mismatches;
      }
    }
  }

  std::printf("\n%-22s %8s %10s %10s %8s\n", "sweep", "jobs", "serial ms",
              "parallel", "speedup");
  for (std::size_t s = 0; s < specs.size(); ++s) {
    std::printf("%-22s %8zu %10.0f %10.0f %7.2fx\n",
                parallel[s].name.c_str(), parallel[s].jobs.size(),
                serial[s].wall_ms, parallel[s].wall_ms,
                parallel[s].wall_ms > 0
                    ? serial[s].wall_ms / parallel[s].wall_ms
                    : 0.0);
  }
  std::printf("%-22s %8zu %10.0f %10.0f %7.2fx  (%d threads)\n", "TOTAL",
              total_jobs, serial_wall, parallel_wall,
              parallel_wall > 0 ? serial_wall / parallel_wall : 0.0,
              parallel.front().threads);
  std::printf("determinism: parallel curves %s the serial curves\n",
              mismatches == 0 ? "bit-identical to" : "DIVERGE from");

  sweep::JsonReporter::write("BENCH_sweep.json", parallel);
  std::printf("wrote BENCH_sweep.json\n");
  return mismatches == 0 ? 0 : 1;
}
