// resilience: throughput-vs-loss-rate and crash-recovery curves.
//
// The paper measures lossless testbeds; this bench measures how each
// protocol stack degrades when the fabric is not clean. Three sweeps:
//
//   1. Every library across Bernoulli frame-loss rates: the TCP-based
//      libraries recover through retransmission (go-back-N rewinds, RTO
//      backoff), GM and VIA through their delivery watchdogs.
//   2. A 100% loss blackout per library with the give-up caps armed:
//      the stack must *decide* it cannot complete (status=failed,
//      throughput reported 0.0), never hang or emit NaN/inf.
//   3. Crash-recovery curves for the raw stacks: node 1 crashes 1 ms
//      into the run and reboots after {1, 5, 20, 50} ms (or never) —
//      throughput vs downtime shows what a reboot costs each protocol,
//      and the permanent column shows the give-up caps working.
//
// Jobs run under the sweep watchdog with keep_going, so a configuration
// that cannot converge degrades to a reported row instead of aborting
// the bench. Results land in BENCH_resilience.json (schema pp.sweep/6).
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/figures.h"
#include "faults/plan.h"
#include "gmsim/gm.h"
#include "mp/gm_mpi.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"
#include "mp/via_mpi.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"
#include "viasim/via.h"

using namespace pp;
using namespace pp::bench;

namespace {

const double kLossRates[] = {0.0, 0.001, 0.005, 0.01, 0.02, 0.05};

netpipe::RunOptions resilience_run_options() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 512 << 10;
  o.repeats = 1;
  o.warmup = 0;
  return o;
}

std::string job_label(const std::string& lib, double loss) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s @ %.3f", lib.c_str(), loss);
  return buf;
}

/// A TCP-family measurement on a fresh bed with `plan` injected into the
/// bed's cluster before any traffic flows.
sweep::JobSpec bed_fault_job(std::string label, hw::HostConfig host,
                             hw::NicConfig nic, tcp::Sysctl sysctl,
                             std::function<TransportPair(mp::PairBed&)> make,
                             faults::FaultPlan plan,
                             netpipe::RunOptions opts) {
  auto run = [host, nic, sysctl, make = std::move(make), plan, opts] {
    mp::PairBed bed(host, nic, sysctl);
    faults::apply(plan, bed.cluster);
    auto [ta, tb] = make(bed);
    return netpipe::run_netpipe(bed.sim, *ta, *tb, opts);
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

/// `max_attempts` > 0 arms the delivery-attempt cap so a dead peer ends
/// the run with a decision (status=failed) instead of retrying forever.
sweep::JobSpec gm_fault_job(std::string label, faults::FaultPlan plan,
                            netpipe::RunOptions opts,
                            std::uint32_t max_attempts = 0) {
  auto run = [plan, opts, max_attempts] {
    sim::Simulator s;
    hw::Cluster c(s);
    auto& a = c.add_node(hw::presets::pentium4_pc());
    auto& b = c.add_node(hw::presets::pentium4_pc());
    gm::GmConfig gc;
    // GM has no wire-level reliability of its own: under injected loss
    // the delivery watchdog is what completes the messages.
    if (!plan.empty()) gc.delivery_timeout = sim::microseconds(500.0);
    gc.max_delivery_attempts = max_attempts;
    gm::GmFabric fab(c, a, b, hw::presets::myrinet_pci64a(),
                     hw::presets::back_to_back(), gc);
    faults::apply(plan, c);
    mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
    return netpipe::run_netpipe(s, ta, tb, opts);
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

sweep::JobSpec via_fault_job(std::string label, faults::FaultPlan plan,
                             netpipe::RunOptions opts,
                             std::uint32_t max_attempts = 0) {
  auto run = [plan, opts, max_attempts] {
    sim::Simulator s;
    hw::Cluster c(s);
    auto& a = c.add_node(hw::presets::pentium4_pc());
    auto& b = c.add_node(hw::presets::pentium4_pc());
    via::ViaConfig vc;
    if (!plan.empty()) vc.delivery_timeout = sim::microseconds(500.0);
    vc.max_delivery_attempts = max_attempts;
    via::ViaFabric fab(c, a, b, hw::presets::giganet_clan(),
                       hw::presets::switched(), vc);
    faults::apply(plan, c);
    mp::ViaTransport ta(fab.end_a()), tb(fab.end_b());
    return netpipe::run_netpipe(s, ta, tb, opts);
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

/// Give-up caps for runs whose plan can kill a node for good: without
/// them a permanently dead peer means retrying forever (a hang), with
/// them it means status=failed — the outcome the blackout and
/// permanent-crash rows assert.
tcp::Sysctl armed_sysctl() {
  tcp::Sysctl s = tcp::Sysctl::tuned();
  s.rto_give_up = 6;
  // The failure detector must outlast the longest reboot in the crash
  // sweep (50 ms): 5 missed probes at 20 ms declare the peer dead at
  // ~120 ms, so every restarting node comes back inside the horizon and
  // only the permanent column fails.
  s.keepalive_interval = sim::milliseconds(20.0);
  return s;
}

/// One 512 kB ping-pong, no warmup: the whole run is the one transfer
/// the crash interrupts, so its throughput *is* the recovery curve
/// (the standard schedule's peak would shrug off a 1 ms crash).
netpipe::RunOptions crash_run_options() {
  netpipe::RunOptions o;
  o.schedule.min_bytes = 512 << 10;
  o.schedule.max_bytes = 512 << 10;
  o.schedule.perturbation = 0;
  o.repeats = 1;
  o.warmup = 0;
  return o;
}

/// Node 1 loses power 1 ms into the run; `downtime` 0 = never reboots.
faults::FaultPlan crash_plan(sim::SimTime downtime, std::uint64_t seed) {
  faults::HostCrashConfig cc;
  cc.at = sim::milliseconds(1.0);
  if (downtime > 0) {
    cc.downtime = downtime;
  } else {
    cc.mode = faults::HostCrashConfig::Mode::kPermanent;
  }
  faults::FaultPlan plan;
  plan.seed = seed;
  plan.add_crash(1, cc);
  return plan;
}

struct LibRow {
  std::string name;
  /// `armed` selects the give-up-cap configuration (blackout/crash
  /// rows); loss-curve rows run the plain tuned stack.
  std::function<sweep::JobSpec(faults::FaultPlan plan, bool armed,
                               std::string label, netpipe::RunOptions opts)>
      job;
};

/// Throughput cell for recovery tables: failed rows print 0.0 (the
/// stack decided it cannot complete — that *is* its throughput), other
/// non-ok rows print their status.
void print_mbps_cell(const sweep::JobResult& jr) {
  if (jr.ok) {
    std::printf(" %11.1f", jr.result.max_mbps);
  } else if (jr.status == sweep::JobStatus::kFailed) {
    std::printf(" %11.1f", 0.0);
  } else {
    std::printf(" %11s", sweep::to_string(jr.status));
  }
}

}  // namespace

int main() {
  const auto opts = resilience_run_options();
  const auto host = hw::presets::pentium4_pc();
  const auto nic = hw::presets::netgear_ga620();
  const auto sysctl = tcp::Sysctl::tuned();

  auto tcp_row = [&](const std::string& name,
                     std::function<TransportPair(mp::PairBed&)> make) {
    return LibRow{name, [=](faults::FaultPlan plan, bool armed,
                            std::string label, netpipe::RunOptions ro) {
                    return bed_fault_job(std::move(label), host, nic,
                                         armed ? armed_sysctl() : sysctl,
                                         make, std::move(plan), ro);
                  }};
  };

  std::vector<LibRow> rows;
  rows.push_back(tcp_row("raw TCP", [](mp::PairBed& bed) {
    return raw_tcp_pair(bed, 512 << 10);
  }));
  rows.push_back(tcp_row("MPICH", [](mp::PairBed& bed) {
    mp::MpichOptions o;
    o.p4_sockbufsize = 256 << 10;
    return hold_pair(mp::Mpich::create_pair(bed, o));
  }));
  rows.push_back(tcp_row("LAM/MPI -O", [](mp::PairBed& bed) {
    mp::LamOptions o;
    o.mode = mp::LamMode::kC2cO;
    return hold_pair(mp::Lam::create_pair(bed, o));
  }));
  rows.push_back(tcp_row("MP_Lite", [](mp::PairBed& bed) {
    return hold_pair(mp::MpLite::create_pair(bed));
  }));
  rows.push_back(tcp_row("PVM", [](mp::PairBed& bed) {
    mp::PvmOptions o;
    o.route = mp::PvmRoute::kDirect;
    o.encoding = mp::PvmEncoding::kInPlace;
    return hold_pair(mp::Pvm::create_pair(bed, o));
  }));
  rows.push_back(tcp_row("TCGMSG", [](mp::PairBed& bed) {
    return hold_pair(mp::Tcgmsg::create_pair(bed, {}));
  }));
  rows.push_back(
      LibRow{"raw GM", [&](faults::FaultPlan plan, bool armed,
                           std::string label, netpipe::RunOptions ro) {
               return gm_fault_job(std::move(label), std::move(plan), ro,
                                   armed ? 10u : 0u);
             }});
  rows.push_back(
      LibRow{"raw VIA", [&](faults::FaultPlan plan, bool armed,
                            std::string label, netpipe::RunOptions ro) {
               return via_fault_job(std::move(label), std::move(plan), ro,
                                    armed ? 10u : 0u);
             }});

  sweep::SweepSpec spec;
  spec.name = "resilience";
  std::uint64_t seed = 1;
  for (const auto& row : rows) {
    for (double loss : kLossRates) {
      spec.jobs.push_back(row.job(faults::uniform_loss_plan(loss, seed++),
                                  /*armed=*/false, job_label(row.name, loss),
                                  opts));
    }
  }

  sweep::SweepOptions sopt;
  sopt.keep_going = true;
  sopt.limits.sim_deadline = sim::seconds(120.0);
  sopt.limits.event_budget = 1'000'000'000ull;
  const sweep::SweepResult sr = run_sweep(spec, sopt);
  print_sweep_stats(sr);

  std::printf("\nthroughput (Mbps at 512 kB ping-pong) vs frame-loss rate\n");
  std::printf("%-14s", "library");
  for (double loss : kLossRates) std::printf(" %9.3f", loss);
  std::printf("\n");
  std::size_t j = 0;
  for (const auto& row : rows) {
    std::printf("%-14s", row.name.c_str());
    for (std::size_t i = 0; i < std::size(kLossRates); ++i, ++j) {
      const sweep::JobResult& jr = sr.jobs[j];
      if (jr.ok) {
        std::printf(" %9.0f", jr.result.max_mbps);
      } else {
        std::printf(" %9s", sweep::to_string(jr.status));
      }
    }
    std::printf("\n");
  }

  std::printf("\nrecovery activity (retransmits+delivery retries at the"
              " highest loss rate):\n");
  j = 0;
  for (const auto& row : rows) {
    const sweep::JobResult& jr = sr.jobs[j + std::size(kLossRates) - 1];
    j += std::size(kLossRates);
    if (!jr.ok) continue;
    const netpipe::ProtocolCounters& c = jr.result.counters;
    std::printf("  %-14s wire_drops %8llu  retransmits %8llu"
                "  delivery_failures %6llu\n",
                row.name.c_str(),
                static_cast<unsigned long long>(c.wire_drops),
                static_cast<unsigned long long>(c.retransmits),
                static_cast<unsigned long long>(c.delivery_failures));
  }

  // ---- Blackout: 100% loss with the give-up caps armed ---------------------
  sweep::SweepSpec blackout;
  blackout.name = "resilience-blackout";
  for (const auto& row : rows) {
    blackout.jobs.push_back(row.job(faults::uniform_loss_plan(1.0, seed++),
                                    /*armed=*/true,
                                    row.name + " @ blackout", opts));
  }
  const sweep::SweepResult bl = run_sweep(blackout, sopt);
  std::printf("\n100%% loss blackout (armed give-up caps: must fail by"
              " decision, 0.0 Mbps)\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-14s %-8s", rows[i].name.c_str(),
                sweep::to_string(bl.jobs[i].status));
    print_mbps_cell(bl.jobs[i]);
    std::printf("\n");
  }

  // ---- Crash-recovery curves: throughput vs reboot downtime ----------------
  const struct {
    const char* name;
    sim::SimTime downtime;  // 0 = permanent
  } kDowntimes[] = {{"1ms", sim::milliseconds(1.0)},
                    {"5ms", sim::milliseconds(5.0)},
                    {"20ms", sim::milliseconds(20.0)},
                    {"50ms", sim::milliseconds(50.0)},
                    {"permanent", 0}};
  const char* kCrashRows[] = {"raw TCP", "raw GM", "raw VIA"};
  sweep::SweepSpec crash;
  crash.name = "resilience-crash";
  for (const char* name : kCrashRows) {
    for (const auto& row : rows) {
      if (row.name != name) continue;
      for (const auto& d : kDowntimes) {
        crash.jobs.push_back(row.job(crash_plan(d.downtime, seed++),
                                     /*armed=*/true,
                                     row.name + " crash down=" + d.name,
                                     crash_run_options()));
      }
    }
  }
  const sweep::SweepResult cr = run_sweep(crash, sopt);
  std::printf("\nthroughput (Mbps at 512 kB ping-pong) vs crash downtime"
              " (node 1 dies at 1 ms)\n%-14s", "library");
  for (const auto& d : kDowntimes) std::printf(" %11s", d.name);
  std::printf("\n");
  j = 0;
  for (const char* name : kCrashRows) {
    std::printf("%-14s", name);
    for (std::size_t i = 0; i < std::size(kDowntimes); ++i, ++j) {
      print_mbps_cell(cr.jobs[j]);
    }
    std::printf("\n");
  }

  sweep::JsonReporter::write("BENCH_resilience.json", {sr, bl, cr});
  std::printf("\nwrote BENCH_resilience.json\n");
  return 0;
}
