// resilience: throughput-vs-loss-rate curves per library.
//
// The paper measures lossless testbeds; this bench measures how each
// protocol stack degrades when the fabric is not clean. Every library
// is swept across Bernoulli frame-loss rates injected by a FaultPlan:
// the TCP-based libraries recover through retransmission (go-back-N
// rewinds, RTO backoff), GM and VIA through their delivery watchdogs.
// Jobs run under the sweep watchdog with keep_going, so a configuration
// that cannot converge degrades to a reported row instead of aborting
// the bench. Results land in BENCH_resilience.json (schema pp.sweep/4).
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/figures.h"
#include "faults/plan.h"
#include "gmsim/gm.h"
#include "mp/gm_mpi.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"
#include "mp/via_mpi.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"
#include "viasim/via.h"

using namespace pp;
using namespace pp::bench;

namespace {

const double kLossRates[] = {0.0, 0.001, 0.005, 0.01, 0.02, 0.05};

netpipe::RunOptions resilience_run_options() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 512 << 10;
  o.repeats = 1;
  o.warmup = 0;
  return o;
}

std::string job_label(const std::string& lib, double loss) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s @ %.3f", lib.c_str(), loss);
  return buf;
}

/// A TCP-family measurement on a fresh bed with `plan` injected into the
/// bed's cluster before any traffic flows.
sweep::JobSpec bed_fault_job(std::string label, hw::HostConfig host,
                             hw::NicConfig nic, tcp::Sysctl sysctl,
                             std::function<TransportPair(mp::PairBed&)> make,
                             faults::FaultPlan plan,
                             netpipe::RunOptions opts) {
  auto run = [host, nic, sysctl, make = std::move(make), plan, opts] {
    mp::PairBed bed(host, nic, sysctl);
    faults::apply(plan, bed.cluster);
    auto [ta, tb] = make(bed);
    return netpipe::run_netpipe(bed.sim, *ta, *tb, opts);
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

sweep::JobSpec gm_fault_job(std::string label, faults::FaultPlan plan,
                            netpipe::RunOptions opts) {
  auto run = [plan, opts] {
    sim::Simulator s;
    hw::Cluster c(s);
    auto& a = c.add_node(hw::presets::pentium4_pc());
    auto& b = c.add_node(hw::presets::pentium4_pc());
    gm::GmConfig gc;
    // GM has no wire-level reliability of its own: under injected loss
    // the delivery watchdog is what completes the messages.
    if (!plan.empty()) gc.delivery_timeout = sim::microseconds(500.0);
    gm::GmFabric fab(c, a, b, hw::presets::myrinet_pci64a(),
                     hw::presets::back_to_back(), gc);
    faults::apply(plan, c);
    mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
    return netpipe::run_netpipe(s, ta, tb, opts);
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

sweep::JobSpec via_fault_job(std::string label, faults::FaultPlan plan,
                             netpipe::RunOptions opts) {
  auto run = [plan, opts] {
    sim::Simulator s;
    hw::Cluster c(s);
    auto& a = c.add_node(hw::presets::pentium4_pc());
    auto& b = c.add_node(hw::presets::pentium4_pc());
    via::ViaConfig vc;
    if (!plan.empty()) vc.delivery_timeout = sim::microseconds(500.0);
    via::ViaFabric fab(c, a, b, hw::presets::giganet_clan(),
                       hw::presets::switched(), vc);
    faults::apply(plan, c);
    mp::ViaTransport ta(fab.end_a()), tb(fab.end_b());
    return netpipe::run_netpipe(s, ta, tb, opts);
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

struct LibRow {
  std::string name;
  std::function<sweep::JobSpec(double loss, std::uint64_t seed)> job;
};

}  // namespace

int main() {
  const auto opts = resilience_run_options();
  const auto host = hw::presets::pentium4_pc();
  const auto nic = hw::presets::netgear_ga620();
  const auto sysctl = tcp::Sysctl::tuned();

  auto tcp_row = [&](const std::string& name,
                     std::function<TransportPair(mp::PairBed&)> make) {
    return LibRow{name, [=](double loss, std::uint64_t seed) {
                    return bed_fault_job(
                        job_label(name, loss), host, nic, sysctl, make,
                        faults::uniform_loss_plan(loss, seed), opts);
                  }};
  };

  std::vector<LibRow> rows;
  rows.push_back(tcp_row("raw TCP", [](mp::PairBed& bed) {
    return raw_tcp_pair(bed, 512 << 10);
  }));
  rows.push_back(tcp_row("MPICH", [](mp::PairBed& bed) {
    mp::MpichOptions o;
    o.p4_sockbufsize = 256 << 10;
    return hold_pair(mp::Mpich::create_pair(bed, o));
  }));
  rows.push_back(tcp_row("LAM/MPI -O", [](mp::PairBed& bed) {
    mp::LamOptions o;
    o.mode = mp::LamMode::kC2cO;
    return hold_pair(mp::Lam::create_pair(bed, o));
  }));
  rows.push_back(tcp_row("MP_Lite", [](mp::PairBed& bed) {
    return hold_pair(mp::MpLite::create_pair(bed));
  }));
  rows.push_back(tcp_row("PVM", [](mp::PairBed& bed) {
    mp::PvmOptions o;
    o.route = mp::PvmRoute::kDirect;
    o.encoding = mp::PvmEncoding::kInPlace;
    return hold_pair(mp::Pvm::create_pair(bed, o));
  }));
  rows.push_back(tcp_row("TCGMSG", [](mp::PairBed& bed) {
    return hold_pair(mp::Tcgmsg::create_pair(bed, {}));
  }));
  rows.push_back(LibRow{"raw GM", [&](double loss, std::uint64_t seed) {
                          return gm_fault_job(
                              job_label("raw GM", loss),
                              faults::uniform_loss_plan(loss, seed), opts);
                        }});
  rows.push_back(LibRow{"raw VIA", [&](double loss, std::uint64_t seed) {
                          return via_fault_job(
                              job_label("raw VIA", loss),
                              faults::uniform_loss_plan(loss, seed), opts);
                        }});

  sweep::SweepSpec spec;
  spec.name = "resilience";
  std::uint64_t seed = 1;
  for (const auto& row : rows) {
    for (double loss : kLossRates) {
      spec.jobs.push_back(row.job(loss, seed++));
    }
  }

  sweep::SweepOptions sopt;
  sopt.keep_going = true;
  sopt.limits.sim_deadline = sim::seconds(120.0);
  sopt.limits.event_budget = 1'000'000'000ull;
  const sweep::SweepResult sr = run_sweep(spec, sopt);
  print_sweep_stats(sr);

  std::printf("\nthroughput (Mbps at 512 kB ping-pong) vs frame-loss rate\n");
  std::printf("%-14s", "library");
  for (double loss : kLossRates) std::printf(" %9.3f", loss);
  std::printf("\n");
  std::size_t j = 0;
  for (const auto& row : rows) {
    std::printf("%-14s", row.name.c_str());
    for (std::size_t i = 0; i < std::size(kLossRates); ++i, ++j) {
      const sweep::JobResult& jr = sr.jobs[j];
      if (jr.ok) {
        std::printf(" %9.0f", jr.result.max_mbps);
      } else {
        std::printf(" %9s", sweep::to_string(jr.status));
      }
    }
    std::printf("\n");
  }

  std::printf("\nrecovery activity (retransmits+delivery retries at the"
              " highest loss rate):\n");
  j = 0;
  for (const auto& row : rows) {
    const sweep::JobResult& jr = sr.jobs[j + std::size(kLossRates) - 1];
    j += std::size(kLossRates);
    if (!jr.ok) continue;
    const netpipe::ProtocolCounters& c = jr.result.counters;
    std::printf("  %-14s wire_drops %8llu  retransmits %8llu"
                "  delivery_failures %6llu\n",
                row.name.c_str(),
                static_cast<unsigned long long>(c.wire_drops),
                static_cast<unsigned long long>(c.retransmits),
                static_cast<unsigned long long>(c.delivery_failures));
  }

  sweep::JsonReporter::write("BENCH_resilience.json", {sr});
  std::printf("\nwrote BENCH_resilience.json\n");
  return 0;
}
