// Tuning-effect table: every "before -> after" tuning delta the paper
// quotes in §4, each reproduced as a parameter sweep.
//
//  1. raw TCP vs socket buffer size on the TrendNet cards (290 -> ~580);
//  2. MPICH's P4_SOCKBUFSIZE (the paper's "vital" 5-fold improvement —
//     our model reproduces the direction with a smaller ratio; see
//     EXPERIMENTS.md);
//  3. LAM/MPI run modes: lamd relay vs c2c vs c2c -O;
//  4. PVM's optimization ladder: pvmd route -> direct route -> direct +
//     PvmDataInPlace (90 -> 330 -> 415 in the paper);
//  5. TCGMSG's SR_SOCK_BUF_SIZE recompile on the DS20s (600 -> 900);
//  6. MPI/Pro's tcp_long rendezvous threshold (dip removal);
//  7. MVICH's via_long / RDMA threshold on Giganet (§6.1: "setting
//     via_long to 64 kB gets rid of a dip").
//
// Each section runs as one parallel sweep (src/sweep); the printed rows
// stay in parameter order because run_sweep aggregates in spec order.
#include "bench/figures.h"

using namespace pp;
using namespace pp::bench;

int main() {
  const auto p4 = hw::presets::pentium4_pc();
  const auto trendnet = hw::presets::trendnet_teg_pcitx();
  const auto ga620 = hw::presets::netgear_ga620();
  const auto sysctl = tcp::Sysctl::tuned();
  const auto opts = default_run_options();
  double total_wall_ms = 0, total_serial_ms = 0;
  const auto track = [&](const sweep::SweepResult& sr) {
    total_wall_ms += sr.wall_ms;
    total_serial_ms += sr.serial_ms;
  };

  std::cout << "==== 1. raw TCP vs socket buffer size, TrendNet ====\n";
  std::cout << "  (paper: default buffers flatten at 290 Mbps; 512 kB "
               "doubles it)\n";
  {
    sweep::SweepSpec spec;
    spec.name = "tuning.tcp_buffers";
    for (std::uint32_t buf :
         {16u << 10, 32u << 10, 64u << 10, 128u << 10, 256u << 10,
          512u << 10, 1u << 20}) {
      spec.jobs.push_back(bed_job(
          netpipe::format_bytes(buf), p4, trendnet, sysctl,
          [buf](mp::PairBed& bed) { return raw_tcp_pair(bed, buf); }, opts));
    }
    const auto sr = sweep::run_sweep(spec);
    track(sr);
    for (const auto& j : sr.jobs) {
      std::printf("  buffers %7s : %6.0f Mbps\n", j.label.c_str(),
                  j.result.max_mbps);
    }
  }

  std::cout << "\n==== 2. MPICH P4_SOCKBUFSIZE sweep, TrendNet ====\n";
  std::cout << "  (paper: 32 kB default -> 256 kB is 'vital', ~5x; our "
               "window model reproduces ~2-3x)\n";
  double mpich_default = 0, mpich_tuned = 0;
  {
    sweep::SweepSpec spec;
    spec.name = "tuning.mpich_p4_sockbufsize";
    for (std::uint32_t buf : {32u << 10, 64u << 10, 128u << 10, 256u << 10}) {
      spec.jobs.push_back(bed_job(netpipe::format_bytes(buf), p4, trendnet,
                                  sysctl,
                                  [buf](mp::PairBed& bed) {
                                    mp::MpichOptions o;
                                    o.p4_sockbufsize = buf;
                                    return hold_pair(
                                        mp::Mpich::create_pair(bed, o));
                                  },
                                  opts));
    }
    const auto sr = sweep::run_sweep(spec);
    track(sr);
    mpich_default = sr.jobs.front().result.max_mbps;
    mpich_tuned = sr.jobs.back().result.max_mbps;
    for (const auto& j : sr.jobs) {
      std::printf("  P4_SOCKBUFSIZE %7s : %6.0f Mbps\n", j.label.c_str(),
                  j.result.max_mbps);
    }
  }

  std::cout << "\n==== 3. LAM/MPI run modes, Netgear GA620 ====\n";
  std::cout << "  (paper: lamd 260 Mbps / 245 us; no -O tops at 350; -O "
               "near raw TCP)\n";
  double lam_modes[3] = {0, 0, 0};
  {
    sweep::SweepSpec spec;
    spec.name = "tuning.lam_modes";
    for (auto mode :
         {mp::LamMode::kLamd, mp::LamMode::kC2c, mp::LamMode::kC2cO}) {
      spec.jobs.push_back(bed_job("mode" + std::to_string(spec.jobs.size()),
                                  p4, ga620, sysctl,
                                  [mode](mp::PairBed& bed) {
                                    mp::LamOptions o;
                                    o.mode = mode;
                                    return hold_pair(
                                        mp::Lam::create_pair(bed, o));
                                  },
                                  opts));
    }
    const auto sr = sweep::run_sweep(spec);
    track(sr);
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
      lam_modes[i] = sr.jobs[i].result.max_mbps;
      std::printf("  %-12s : %6.0f Mbps, %6.1f us\n",
                  sr.jobs[i].result.transport.c_str(),
                  sr.jobs[i].result.max_mbps, sr.jobs[i].result.latency_us);
    }
  }

  std::cout << "\n==== 4. PVM optimization ladder, Netgear GA620 ====\n";
  std::cout << "  (paper: pvmd ~90 -> direct 330 -> + PvmDataInPlace 415)\n";
  double pvm_ladder[3] = {0, 0, 0};
  {
    mp::PvmOptions daemon_route;  // defaults: daemon + XDR
    mp::PvmOptions direct;
    direct.route = mp::PvmRoute::kDirect;
    mp::PvmOptions inplace;
    inplace.route = mp::PvmRoute::kDirect;
    inplace.encoding = mp::PvmEncoding::kInPlace;
    const std::pair<const char*, mp::PvmOptions> steps[] = {
        {"pvmd route (default)", daemon_route},
        {"PvmRouteDirect", direct},
        {"direct + PvmDataInPlace", inplace}};
    sweep::SweepSpec spec;
    spec.name = "tuning.pvm_ladder";
    for (const auto& st : steps) {
      const mp::PvmOptions opt = st.second;
      spec.jobs.push_back(bed_job(st.first, p4, ga620, sysctl,
                                  [opt](mp::PairBed& bed) {
                                    return hold_pair(
                                        mp::Pvm::create_pair(bed, opt));
                                  },
                                  opts));
    }
    const auto sr = sweep::run_sweep(spec);
    track(sr);
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
      pvm_ladder[i] = sr.jobs[i].result.max_mbps;
      std::printf("  %-26s : %6.0f Mbps\n", sr.jobs[i].label.c_str(),
                  sr.jobs[i].result.max_mbps);
    }
  }

  std::cout << "\n==== 5. TCGMSG SR_SOCK_BUF_SIZE recompile, DS20 jumbo "
               "====\n";
  std::cout << "  (paper: 32 kB tops at ~600; 128 kB reaches 900, matching "
               "raw TCP)\n";
  double tcg_small = 0, tcg_big = 0;
  {
    sweep::SweepSpec spec;
    spec.name = "tuning.tcgmsg_recompile";
    for (std::uint32_t buf : {32u << 10, 128u << 10}) {
      spec.jobs.push_back(bed_job(netpipe::format_bytes(buf),
                                  hw::presets::compaq_ds20(),
                                  hw::presets::syskonnect_sk9843(9000), sysctl,
                                  [buf](mp::PairBed& bed) {
                                    mp::TcgmsgOptions o;
                                    o.sr_sock_buf_size = buf;
                                    return hold_pair(
                                        mp::Tcgmsg::create_pair(bed, o));
                                  },
                                  opts));
    }
    const auto sr = sweep::run_sweep(spec);
    track(sr);
    tcg_small = sr.jobs.front().result.max_mbps;
    tcg_big = sr.jobs.back().result.max_mbps;
    for (const auto& j : sr.jobs) {
      std::printf("  SR_SOCK_BUF_SIZE %7s : %6.0f Mbps\n", j.label.c_str(),
                  j.result.max_mbps);
    }
  }

  std::cout << "\n==== 6. MPI/Pro tcp_long rendezvous threshold, GA620 "
               "====\n";
  std::cout << "  (paper: raising 32 kB -> 128 kB 'removes much of a dip' "
               "at the threshold)\n";
  double dip[2] = {0, 0};
  {
    sweep::SweepSpec spec;
    spec.name = "tuning.mpipro_tcp_long";
    for (std::uint64_t thr : {32ull << 10, 128ull << 10}) {
      spec.jobs.push_back(bed_job(netpipe::format_bytes(thr), p4, ga620,
                                  sysctl,
                                  [thr](mp::PairBed& bed) {
                                    mp::MpiProOptions o;
                                    o.tcp_long = thr;
                                    return hold_pair(
                                        mp::MpiPro::create_pair(bed, o));
                                  },
                                  opts));
    }
    const auto sr = sweep::run_sweep(spec);
    track(sr);
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
      // Depth of the dip right at the old threshold region.
      const double at_40k = sr.jobs[i].result.mbps_at(40 << 10);
      const double at_28k = sr.jobs[i].result.mbps_at(28 << 10);
      dip[i] = at_40k / at_28k;
      std::printf("  tcp_long %7s : 28k %6.0f Mbps -> 40k %6.0f Mbps\n",
                  sr.jobs[i].label.c_str(), at_28k, at_40k);
    }
  }

  std::cout << "\n==== 7. MVICH via_long (RDMA threshold), Giganet "
               "====\n";
  std::cout << "  (paper: the dip sits at the threshold; raising via_long "
               "moves/removes it)\n";
  double via_dip[2] = {0, 0};
  {
    sweep::SweepSpec spec;
    spec.name = "tuning.mvich_via_long";
    for (std::uint64_t thr : {16ull << 10, 64ull << 10}) {
      spec.add(netpipe::format_bytes(thr), [thr, p4, opts] {
        sim::Simulator s;
        hw::Cluster c(s);
        auto& a = c.add_node(p4);
        auto& b = c.add_node(p4);
        via::ViaConfig vc;
        vc.rdma_threshold = thr;
        via::ViaFabric fab(c, a, b, hw::presets::giganet_clan(),
                           hw::presets::switched(), vc);
        const auto lo = mp::ViaMpi::mvich();
        mp::ViaMpi la(fab.end_a(), 0, lo), lb(fab.end_b(), 1, lo);
        mp::LibraryTransport ta(la, 1), tb(lb, 0);
        return netpipe::run_netpipe(s, ta, tb, opts);
      });
    }
    const auto sr = sweep::run_sweep(spec);
    track(sr);
    for (std::size_t i = 0; i < sr.jobs.size(); ++i) {
      // Depth of the dip just above the 16 kB point.
      const double above = sr.jobs[i].result.mbps_at(20 << 10);
      const double below = sr.jobs[i].result.mbps_at(16 << 10);
      via_dip[i] = above / below;
      std::printf("  via_long %7s : 16k %6.0f Mbps -> 20k %6.0f Mbps, "
                  "max %4.0f\n",
                  sr.jobs[i].label.c_str(), below, above,
                  sr.jobs[i].result.max_mbps);
    }
  }

  std::printf("\nsweeps: %.0f ms wall total (serial estimate %.0f ms, "
              "%.2fx speedup)\n",
              total_wall_ms, total_serial_ms,
              total_wall_ms > 0 ? total_serial_ms / total_wall_ms : 0.0);

  std::cout << "\npaper-vs-measured checks (tuning table):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"MPICH tuned/default ratio (TrendNet)", 5.0,
       mpich_tuned / std::max(mpich_default, 1.0),
       "'a 5-fold increase'; our model gives the direction, smaller ratio"},
      {"LAM lamd Mbps", 260, lam_modes[0], "OCR: '26 Mbps'"},
      {"LAM no-O Mbps", 350, lam_modes[1], "'tops out at 35[0]'"},
      {"PVM pvmd Mbps", 90, pvm_ladder[0], "'around 9[0] Mbps'"},
      {"PVM direct Mbps", 330, pvm_ladder[1], "'4-fold increase to 33[0]'"},
      {"PVM in-place Mbps", 415, pvm_ladder[2], "'increasing ... to 415'"},
      {"TCGMSG 32k on DS20", 600, tcg_small, "OCR digit lost"},
      {"TCGMSG 128k on DS20", 900, tcg_big, "'matching raw TCP'"},
      {"MPI/Pro dip removal (40k/28k, tuned)", 1.0, dip[1],
       "with tcp_long=128k there is no dip above 28k"},
      {"MVICH dip at 16k removed by via_long=64k", 1.0, via_dip[1],
       "paper: 'setting via_long to 64 kB gets rid of a dip'"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
