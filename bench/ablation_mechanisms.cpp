// Mechanism ablation: how much of MPICH's deficit does each modelled
// mechanism explain? (DESIGN.md §6: the library differences must *emerge*
// from mechanisms; this bench quantifies each one's contribution.)
//
// Also validates the paper's two layering claims:
//  - §4.4: an MPICH built on the MP_Lite channel device passes MP_Lite's
//    raw-TCP-grade performance through to full MPICH;
//  - §4.6: TCGMSG over MPICH costs nothing vs MPICH alone in NetPIPE.
#include "bench/common.h"

#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/tcgmsg.h"

using namespace pp;
using namespace pp::bench;

namespace {

Curve mpich_variant(const std::string& label, mp::MpichOptions opt,
                    const hw::NicConfig& nic) {
  return measure_on_bed(label, hw::presets::pentium4_pc(), nic,
                        tcp::Sysctl::tuned(), [&](mp::PairBed& bed) {
                          return hold_pair(mp::Mpich::create_pair(bed, opt));
                        });
}

}  // namespace

int main() {
  const auto nic = hw::presets::netgear_ga620();

  std::vector<Curve> curves;
  curves.push_back(measure_on_bed(
      "raw TCP", hw::presets::pentium4_pc(), nic, tcp::Sysctl::tuned(),
      [](mp::PairBed& bed) { return raw_tcp_pair(bed, 512 << 10); }));

  mp::MpichOptions stock;
  stock.p4_sockbufsize = 256 << 10;
  curves.push_back(mpich_variant("MPICH (stock, tuned)", stock, nic));

  mp::MpichOptions no_rndv = stock;
  no_rndv.rendezvous_cutoff = UINT64_MAX;
  curves.push_back(mpich_variant("MPICH - rendezvous", no_rndv, nic));

  mp::MpichOptions small_buf = stock;
  small_buf.p4_sockbufsize = 32 << 10;
  curves.push_back(mpich_variant("MPICH w/ default 32k buf", small_buf,
                                 nic));

  mp::MpichOptions mplite_chan = stock;
  mplite_chan.channel = mp::MpichChannel::kMpLiteChannel;
  curves.push_back(mpich_variant("MPICH-MP_Lite channel", mplite_chan,
                                 nic));

  // TCGMSG over MPICH vs MPICH alone.
  curves.push_back(measure_on_bed(
      "TCGMSG-MPICH", hw::presets::pentium4_pc(), nic, tcp::Sysctl::tuned(),
      [&](mp::PairBed& bed) -> TransportPair {
        auto pair = mp::Mpich::create_pair(bed, stock);
        struct Held final : netpipe::Transport {
          std::shared_ptr<std::pair<std::unique_ptr<mp::Mpich>,
                                    std::unique_ptr<mp::Mpich>>>
              keep;
          std::unique_ptr<mp::TcgmsgOverMpi> lib;
          std::unique_ptr<mp::LibraryTransport> t;
          sim::Task<void> send(std::uint64_t b) override {
            return t->send(b);
          }
          sim::Task<void> recv(std::uint64_t b) override {
            return t->recv(b);
          }
          hw::Node& node() { return t->node(); }
          std::string name() const override { return "TCGMSG-MPICH"; }
        };
        auto shared = std::make_shared<decltype(pair)>(std::move(pair));
        auto make_end = [&](mp::Mpich& inner, int peer) {
          auto h = std::make_unique<Held>();
          h->keep = shared;
          h->lib = std::make_unique<mp::TcgmsgOverMpi>(inner);
          h->t = std::make_unique<mp::LibraryTransport>(*h->lib, peer);
          return h;
        };
        return {make_end(*shared->first, 1), make_end(*shared->second, 0)};
      }));

  print_figure("Mechanism ablation of the MPICH model (Netgear GA620)",
               curves);

  const auto& tcp_r = find(curves, "raw TCP");
  const auto& stock_r = find(curves, "MPICH (stock, tuned)");
  const auto& no_rndv_r = find(curves, "MPICH - rendezvous");
  const auto& mplite_r = find(curves, "MPICH-MP_Lite channel");
  const auto& tcg_r = find(curves, "TCGMSG-MPICH");

  std::cout << "\nablation checks:\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"staging copy explains the max-rate loss (%)", 25,
       100.0 * (1.0 - stock_r.max_mbps / tcp_r.max_mbps),
       "removing rendezvous must NOT change the peak"},
      {"peak unchanged without rendezvous (%)", 100,
       100.0 * no_rndv_r.max_mbps / stock_r.max_mbps,
       "the dip is local to the cutoff"},
      {"dip removed without rendezvous", 1.0,
       no_rndv_r.mbps_at(128 << 10) / no_rndv_r.mbps_at(96 << 10),
       ">= 1 means no dip"},
      {"MP_Lite channel restores raw TCP (%)", 100,
       100.0 * mplite_r.max_mbps / tcp_r.max_mbps,
       "paper §4.4's preliminary MPICH-MP_Lite result"},
      {"TCGMSG-MPICH == MPICH (%)", 100,
       100.0 * tcg_r.max_mbps / stock_r.max_mbps,
       "paper §4.6: 'no performance lost'"},
  };
  netpipe::print_paper_checks(std::cout, checks);
  return 0;
}
