// Shared machinery for the figure/table reproduction benches.
//
// Each bench binary builds the paper's hardware configuration, runs the
// NetPIPE reproduction over every library the figure shows, prints the
// numeric comparison plus an ASCII rendition of the figure, and finally a
// paper-vs-measured check table. Values marked "OCR" in the notes are
// digits reconstructed from the garbled source text (see DESIGN.md §1).
#pragma once

#include <cctype>
#include <filesystem>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mp/adapters.h"
#include "mp/testbed.h"
#include "netpipe/modules.h"
#include "netpipe/report.h"
#include "netpipe/runner.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"

namespace pp::bench {

inline netpipe::RunOptions default_run_options() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 8ull << 20;
  o.repeats = 3;
  o.warmup = 1;
  return o;
}

/// Keeps a library pair alive for the duration of a measurement while
/// exposing one endpoint as a NetPIPE transport.
class HeldTransport final : public netpipe::Transport {
 public:
  HeldTransport(std::shared_ptr<void> keepalive, mp::Library& lib, int peer)
      : keep_(std::move(keepalive)), t_(lib, peer) {}

  sim::Task<void> send(std::uint64_t b) override { return t_.send(b); }
  sim::Task<void> recv(std::uint64_t b) override { return t_.recv(b); }
  hw::Node& node() { return t_.node(); }
  std::string name() const override { return t_.name(); }
  netpipe::ProtocolCounters counters() const override {
    return t_.counters();
  }

 private:
  std::shared_ptr<void> keep_;
  mp::LibraryTransport t_;
};

using TransportPair = std::pair<std::unique_ptr<netpipe::Transport>,
                                std::unique_ptr<netpipe::Transport>>;

/// Wraps a create_pair() result into a transport pair with shared
/// ownership of the libraries.
template <typename PairT>
TransportPair hold_pair(PairT pair) {
  auto shared = std::make_shared<PairT>(std::move(pair));
  auto ta = std::make_unique<HeldTransport>(shared, *shared->first, 1);
  auto tb = std::make_unique<HeldTransport>(shared, *shared->second, 0);
  return {std::move(ta), std::move(tb)};
}

/// Raw TCP with explicitly tuned socket buffers on both ends.
inline TransportPair raw_tcp_pair(mp::PairBed& bed, std::uint32_t buf_bytes,
                                  const std::string& label = "raw TCP") {
  auto [sa, sb] = bed.socket_pair("rawtcp");
  sa.set_send_buffer(buf_bytes);
  sa.set_recv_buffer(buf_bytes);
  sb.set_send_buffer(buf_bytes);
  sb.set_recv_buffer(buf_bytes);
  return {std::make_unique<netpipe::TcpTransport>(sa, label),
          std::make_unique<netpipe::TcpTransport>(sb, label)};
}

/// One measured curve in a figure.
struct Curve {
  std::string label;
  netpipe::RunResult result;
};

/// Runs NetPIPE over a transport pair built on a fresh two-node bed.
inline Curve measure_on_bed(
    const std::string& label, const hw::HostConfig& host,
    const hw::NicConfig& nic, const tcp::Sysctl& sysctl,
    const std::function<TransportPair(mp::PairBed&)>& make,
    const netpipe::RunOptions& opts = default_run_options()) {
  mp::PairBed bed(host, nic, sysctl);
  auto [ta, tb] = make(bed);
  Curve c;
  c.label = label;
  c.result = netpipe::run_netpipe(bed.sim, *ta, *tb, opts);
  return c;
}

/// Prints a whole figure: header, comparison table at the canonical
/// sizes, ASCII chart, and per-curve summaries.
inline void print_figure(const std::string& title,
                         const std::vector<Curve>& curves) {
  std::cout << "\n==== " << title << " ====\n\n";
  std::vector<netpipe::Series> series;
  series.reserve(curves.size());
  for (const auto& c : curves) series.push_back({c.label, &c.result});
  const std::vector<std::uint64_t> sizes = {64,        1024,      8192,
                                            65536,     262144,    1048576,
                                            8ull << 20};
  netpipe::print_comparison(std::cout, series, sizes);
  std::cout << "\n" << netpipe::ascii_chart(series) << "\n";
  std::cout << "latency / peak summary:\n";
  for (const auto& c : curves) {
    std::printf("  %-24s %7.1f us %8.0f Mbps (90%% at %s)\n", c.label.c_str(),
                c.result.latency_us, c.result.max_mbps,
                netpipe::format_bytes(c.result.saturation_bytes).c_str());
  }
}

/// Finds a curve by label (must exist).
inline const netpipe::RunResult& find(const std::vector<Curve>& curves,
                                      const std::string& label) {
  for (const auto& c : curves) {
    if (c.label == label) return c.result;
  }
  std::cerr << "no curve labelled " << label << "\n";
  std::abort();
}

/// Where a bench drops its .dat curve files: `--out-dir <dir>` or
/// `--out-dir=<dir>`, defaulting to build/figures/ so running a bench
/// from the source root never litters the checkout with data files.
inline std::string out_dir_from_args(int argc, char** argv,
                                     std::string fallback = "build/figures") {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out-dir" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--out-dir=", 0) == 0) {
      return arg.substr(std::string("--out-dir=").size());
    }
  }
  return fallback;
}

/// Curve label -> filename fragment: lowercase, every non-alphanumeric
/// run collapsed to one '_', trimmed. Unique per label where the old
/// first-3-letters scheme collided (MPICH vs MPI/Pro). The golden
/// regression data under data/golden/ is named with the same slugs.
inline std::string label_slug(const std::string& label) {
  std::string out;
  for (char ch : label) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

/// Writes every curve of a figure as `<dir>/<prefix>_<slug>.dat`,
/// creating the directory as needed. Returns the directory used.
inline std::string write_figure_dats(const std::string& dir,
                                     const std::string& prefix,
                                     const std::vector<Curve>& curves) {
  std::filesystem::create_directories(dir);
  for (const auto& c : curves) {
    const auto path =
        std::filesystem::path(dir) / (prefix + "_" + label_slug(c.label) +
                                      ".dat");
    netpipe::write_dat(path.string(), c.result);
  }
  return dir;
}

}  // namespace pp::bench
