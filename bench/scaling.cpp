// scaling: collective latency vs node count on the switch fabric, plus
// the incast hotspot.
//
// The paper measures two-node protocol curves; this bench asks what the
// same stacks cost once a fat-tree sits between the endpoints. Three
// sweeps, all over src/simhw/fabric:
//
//   1. Barrier latency vs node count {8..1024} for the O(N) token ring
//      and the O(log N) dissemination algorithm.
//   2. 16 kB allreduce latency vs node count for the bandwidth-optimal
//      ring and recursive doubling.
//   3. The incast hotspot: N-1 senders blast one receiver through the
//      shared egress port, under cut-through and store-and-forward, to
//      quantify output-queue contention (peak backlog, sojourn time).
//
// Every collective job repeats the operation and reports the repeat
// distribution (one DataPoint per iteration, bytes = node count), in
// the spirit of Hunold & Carpen-Amarie's MPI benchmarking guidance:
// a single number hides the warm-up and steady-state split. latency_us
// carries the median iteration.
//
// `--smoke` restricts to the 8/16-node points (and a 16-host incast) so
// the bench doubles as a tier-1 ctest entry; the full run writes the
// complete BENCH_scaling.json (schema pp.sweep/6).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench/figures.h"
#include "mp/collectives.h"
#include "mp/fabric_lib.h"
#include "netpipe/runner.h"
#include "simhw/presets.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"

using namespace pp;
using namespace pp::bench;

namespace {

struct Algo {
  const char* name;
  std::function<sim::Task<void>(mp::RingComm)> op;
};

std::string job_label(const char* algo, int nodes) {
  return std::string(algo) + " N=" + std::to_string(nodes);
}

/// Repeats `op` on every rank of an N-node fat-tree; iteration latency
/// is last-rank-out minus first-rank-in (collectives self-synchronize,
/// so iterations cannot skew by more than one operation).
netpipe::RunResult collective_job(const char* algo, int nodes, int repeats,
                                  std::function<sim::Task<void>(mp::RingComm)> op) {
  mp::FabricWorldOptions opt;
  opt.shards = 1;  // jobs already run one-per-worker-thread
  opt.host = hw::presets::pentium4_pc();
  mp::FabricWorld world(nodes, opt);
  const auto reps = static_cast<std::size_t>(repeats);
  std::vector<sim::SimTime> first_in(reps,
                                     std::numeric_limits<sim::SimTime>::max());
  std::vector<sim::SimTime> last_out(reps, 0);
  for (int r = 0; r < nodes; ++r) {
    world.spawn(
        r,
        [](mp::FabricWorld& w, int rank, int iters,
           const std::function<sim::Task<void>(mp::RingComm)>& body,
           std::vector<sim::SimTime>& in,
           std::vector<sim::SimTime>& out) -> sim::Task<void> {
          sim::Simulator& sm = w.simulator(rank);
          const mp::RingComm comm = w.comm(rank);
          for (int i = 0; i < iters; ++i) {
            const auto it = static_cast<std::size_t>(i);
            in[it] = std::min(in[it], sm.now());
            co_await body(comm);
            out[it] = std::max(out[it], sm.now());
          }
        }(world, r, repeats, op, first_in, last_out),
        "rank" + std::to_string(r));
  }
  world.run();

  netpipe::RunResult res;
  res.transport = algo;
  std::vector<sim::SimTime> lat(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    lat[i] = last_out[i] - first_in[i];
    res.points.push_back(netpipe::DataPoint{
        static_cast<std::uint64_t>(nodes), lat[i]});
  }
  std::sort(lat.begin(), lat.end());
  res.latency_us = sim::to_microseconds(lat[reps / 2]);
  for (int r = 0; r < nodes; ++r) {
    res.counters += world.lib(r).protocol_counters();
  }
  return res;
}

/// N-1 senders each fire `frames` MTU-sized frames at host 0 with 1 us
/// inter-departure time — far above the shared egress port's drain rate,
/// so the hotspot is the access link into the receiver.
netpipe::RunResult incast_job(const char* mode, hw::fabric::ForwardingMode fm,
                              int hosts, int frames) {
  sim::Simulator sim;
  hw::Cluster cluster(sim);
  for (int h = 0; h < hosts; ++h) {
    cluster.add_node(hw::presets::pentium4_pc());
  }
  hw::fabric::FabricConfig cfg;
  cfg.sw.mode = fm;
  hw::fabric::Fabric fab(cluster, cfg,
                         hw::fabric::FatTreeShape::fit(hosts));
  const std::uint32_t bytes = cfg.mtu;
  sim::SimTime start = 0;
  std::vector<sim::SimTime> sojourns;
  for (int s = 1; s < hosts; ++s) {
    sim.spawn(
        [](sim::Simulator& sm, hw::fabric::Fabric& f, int src, int n,
           std::uint32_t b) -> sim::Task<void> {
          for (int i = 0; i < n; ++i) {
            hw::Packet p;
            p.wire_bytes = b;
            p.dma_bytes = b;
            f.port(src).inject(0, std::move(p),
                               static_cast<std::uint16_t>(src));
            co_await sm.delay(sim::microseconds(1));
          }
        }(sim, fab, s, frames, bytes),
        "incast" + std::to_string(s));
  }
  sim.spawn_daemon(
      [](sim::Simulator& sm, hw::fabric::Fabric& f, sim::SimTime t0,
         std::vector<sim::SimTime>& out) -> sim::Task<void> {
        for (;;) {
          hw::fabric::FabricFrame got = co_await f.port(0).delivered().pop();
          got.pkt.desc.reset();
          out.push_back(sm.now() - t0);
        }
      }(sim, fab, start, sojourns),
      "sink");
  sim.run();

  const hw::fabric::Fabric::Totals t = fab.totals();
  netpipe::RunResult res;
  res.transport = mode;
  sim::SimTime total = 0;
  sim::SimTime last = 0;
  for (sim::SimTime s : sojourns) {
    total += s;
    last = std::max(last, s);
    res.points.push_back(netpipe::DataPoint{bytes, s});
  }
  if (!sojourns.empty()) {
    res.latency_us =
        sim::to_microseconds(total / static_cast<sim::SimTime>(
                                         sojourns.size()));
    // Drain rate of the shared egress over the whole burst.
    res.max_mbps = static_cast<double>(sojourns.size()) * bytes * 8.0 /
                   sim::to_seconds(last) / 1e6;
  }
  res.counters.wire_drops = t.dropped;
  res.counters.relay_fragments = t.switched;

  // Peak backlog on the hot access link (edge switch -> host 0).
  const hw::fabric::Topology& topo = fab.topology();
  std::size_t peak = 0;
  for (const auto& e : topo.out(topo.out(0)[0].to)) {
    if (e.to == 0) peak = fab.link(e.link).peak_backlog();
  }
  std::printf("  incast %-18s N=%-4d delivered %6llu  dropped %4llu"
              "  hot-port peak backlog %3zu frames  mean sojourn %8.1f us\n",
              mode, hosts, static_cast<unsigned long long>(t.delivered),
              static_cast<unsigned long long>(t.dropped), peak,
              res.latency_us);
  return res;
}

void print_latency_table(const char* what, const sweep::SweepResult& sr,
                         const std::vector<int>& nodes, int algos) {
  std::printf("\n%s latency (us, median of repeats) vs node count\n", what);
  std::printf("%-16s", "algorithm");
  for (int n : nodes) std::printf(" %9d", n);
  std::printf("\n");
  for (int a = 0; a < algos; ++a) {
    const std::size_t base = static_cast<std::size_t>(a) * nodes.size();
    std::printf("%-16s", sr.jobs[base].result.transport.c_str());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const sweep::JobResult& jr = sr.jobs[base + i];
      if (jr.ok) {
        std::printf(" %9.1f", jr.result.latency_us);
      } else {
        std::printf(" %9s", sweep::to_string(jr.status));
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<int> nodes =
      smoke ? std::vector<int>{8, 16} : std::vector<int>{8, 16, 64, 256, 1024};
  const int incast_hosts = smoke ? 16 : 64;
  const std::uint64_t allreduce_bytes = 16 << 10;

  auto repeats_for = [smoke](int n) { return smoke || n >= 256 ? 3 : 5; };

  const std::vector<Algo> barriers = {
      {"ring", [](mp::RingComm c) { return mp::ring_barrier(c); }},
      {"dissemination",
       [](mp::RingComm c) { return mp::dissemination_barrier(c); }},
  };
  const std::vector<Algo> allreduces = {
      {"ring", [=](mp::RingComm c) {
         return mp::ring_allreduce(c, allreduce_bytes);
       }},
      {"doubling", [=](mp::RingComm c) {
         return mp::doubling_allreduce(c, allreduce_bytes);
       }},
  };

  auto make_sweep = [&](const char* name, const std::vector<Algo>& algos) {
    sweep::SweepSpec spec;
    spec.name = name;
    for (const Algo& a : algos) {
      for (int n : nodes) {
        spec.jobs.push_back(sweep::JobSpec{
            job_label(a.name, n), [&a, n, reps = repeats_for(n)] {
              return collective_job(a.name, n, reps, a.op);
            }});
      }
    }
    return spec;
  };

  sweep::SweepOptions sopt;
  sopt.keep_going = true;
  sopt.limits.sim_deadline = sim::seconds(300.0);
  sopt.limits.event_budget = 4'000'000'000ull;

  const sweep::SweepResult barrier_sr =
      run_sweep(make_sweep("scaling-barrier", barriers), sopt);
  print_sweep_stats(barrier_sr);
  print_latency_table("barrier", barrier_sr, nodes,
                      static_cast<int>(barriers.size()));

  const sweep::SweepResult allreduce_sr =
      run_sweep(make_sweep("scaling-allreduce", allreduces), sopt);
  print_sweep_stats(allreduce_sr);
  print_latency_table("16 kB allreduce", allreduce_sr, nodes,
                      static_cast<int>(allreduces.size()));

  std::printf("\nincast hotspot: %d senders -> host 0\n", incast_hosts - 1);
  sweep::SweepSpec incast;
  incast.name = "scaling-incast";
  const int frames = smoke ? 20 : 40;
  // Sequential on purpose: incast_job prints its own summary line.
  std::vector<sweep::JobResult> incast_jobs;
  for (const auto& [label, fm] :
       {std::pair{"cut-through", hw::fabric::ForwardingMode::kCutThrough},
        std::pair{"store-and-forward",
                  hw::fabric::ForwardingMode::kStoreAndForward}}) {
    incast.jobs.push_back(sweep::JobSpec{
        job_label(label, incast_hosts), [=] {
          return incast_job(label, fm, incast_hosts, frames);
        }});
  }
  sweep::SweepOptions serial = sopt;
  serial.threads = 1;
  const sweep::SweepResult incast_sr = run_sweep(incast, serial);

  sweep::JsonReporter::write("BENCH_scaling.json",
                             {barrier_sr, allreduce_sr, incast_sr});
  std::printf("\nwrote BENCH_scaling.json\n");
  return 0;
}
