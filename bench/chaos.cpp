// chaos: randomized fault-plan sweep across every protocol scenario.
//
// Hundreds of seeded random plans (crashes, loss, bursts, flaps, NIC
// trouble) run against raw TCP, MPICH, GM and VIA, under both shard
// counts {1, 2} and both packet-descriptor paths — the matrix the
// recovery machinery must survive. Every run is classified
// (clean | recovered | degraded | failed | hung | error) and the
// verdicts land in BENCH_chaos.json (schema pp.sweep/6). `hung` and
// `error` verdicts are bugs by definition: the bench exits nonzero when
// it finds any, and the failing plan is printed as pp.faultplan/1 text
// ready for tools/minimize_plan.
//
// With --audit every job also runs under the delivery oracle
// (audit/audit.h): message conservation, integrity, FIFO and epoch
// fencing are checked end to end, any violation upgrades the verdict to
// `error`, and each job's accounting lands in the JSON's per-job
// "audit" block. The oracle is observe-only, so audited verdicts match
// unaudited ones unless a violation was found.
//
//   chaos [--plans N] [--out FILE] [--audit]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "chaos/chaos.h"
#include "faults/plan_io.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"

using namespace pp;

int main(int argc, char** argv) {
  int plans = 250;
  std::string out = "BENCH_chaos.json";
  bool audit_on = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plans") == 0 && i + 1 < argc) {
      plans = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      audit_on = true;
    } else {
      std::fprintf(stderr, "usage: %s [--plans N] [--out FILE] [--audit]\n",
                   argv[0]);
      return 2;
    }
  }

  // Warm the per-scenario baselines before fanning out (classification
  // compares against them; computing them inside worker threads would
  // serialize on the once-flags anyway).
  for (chaos::Scenario sc : chaos::kScenarios) chaos::baseline_mbps(sc);

  const struct {
    const char* name;
    int shards;
    sim::PacketPathKind path;
  } kMatrix[] = {
      {"chaos shards=1 arena", 1, sim::PacketPathKind::kArena},
      {"chaos shards=2 arena", 2, sim::PacketPathKind::kArena},
      {"chaos shards=1 heap", 1, sim::PacketPathKind::kLegacyHeap},
      {"chaos shards=2 heap", 2, sim::PacketPathKind::kLegacyHeap},
  };

  std::vector<sweep::SweepResult> results;
  std::map<std::string, int> histogram;
  std::uint64_t violations_total = 0;
  int bad = 0;
  for (const auto& cell : kMatrix) {
    sweep::SweepSpec spec;
    spec.name = cell.name;
    std::vector<faults::FaultPlan> specs_plans;
    std::vector<std::shared_ptr<audit::Summary>> sinks;
    for (int p = 0; p < plans; ++p) {
      const auto seed = static_cast<std::uint64_t>(p + 1);
      const faults::FaultPlan plan = chaos::random_plan(seed);
      for (chaos::Scenario sc : chaos::kScenarios) {
        char label[64];
        std::snprintf(label, sizeof(label), "%s seed=%llu",
                      chaos::to_string(sc),
                      static_cast<unsigned long long>(seed));
        std::shared_ptr<audit::Summary> sink;
        if (audit_on) sink = std::make_shared<audit::Summary>();
        spec.jobs.push_back(chaos::scenario_job(sc, label, plan, sink));
        specs_plans.push_back(plan);
        sinks.push_back(std::move(sink));
      }
    }

    sweep::SweepOptions opt = chaos::chaos_sweep_options();
    opt.shards = cell.shards;
    opt.packet_path = cell.path;
    sweep::SweepResult sr = run_sweep(spec, opt);

    for (std::size_t j = 0; j < sr.jobs.size(); ++j) {
      const auto sc = chaos::kScenarios[j % std::size(chaos::kScenarios)];
      const audit::Summary* aud = audit_on ? sinks[j].get() : nullptr;
      const chaos::Verdict v =
          chaos::classify(sr.jobs[j], chaos::baseline_mbps(sc), aud);
      sr.jobs[j].verdict = chaos::to_string(v);
      if (aud != nullptr) {
        sr.jobs[j].audit = sinks[j];
        violations_total += aud->violations;
      }
      histogram[sr.jobs[j].verdict] += 1;
      if (!chaos::acceptable(v)) {
        ++bad;
        std::printf("\nBAD RUN (%s): %s verdict=%s error=%s\n"
                    "fault plan:\n%s",
                    cell.name, sr.jobs[j].label.c_str(), chaos::to_string(v),
                    sr.jobs[j].error.c_str(),
                    faults::to_text(specs_plans[j]).c_str());
        if (aud != nullptr && aud->has_violations()) {
          std::printf("%s", audit::report_text(*aud).c_str());
        }
      }
    }
    std::printf("%-22s %4zu runs, %6.1f ms wall (%.1fx)\n", cell.name,
                sr.jobs.size(), sr.wall_ms, sr.speedup());
    results.push_back(std::move(sr));
  }

  std::printf("\nverdicts over %d plans x %zu scenarios x %zu matrix cells:\n",
              plans, std::size(chaos::kScenarios), std::size(kMatrix));
  for (const auto& [verdict, count] : histogram) {
    std::printf("  %-10s %6d\n", verdict.c_str(), count);
  }
  if (audit_on) {
    std::printf("audit: %llu violation(s) across all runs\n",
                static_cast<unsigned long long>(violations_total));
  }

  sweep::JsonReporter::write(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  if (bad > 0) {
    std::printf("%d hung/error run(s): shrink with tools/minimize_plan\n",
                bad);
    return 1;
  }
  return 0;
}
