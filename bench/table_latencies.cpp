// Latency summary table: the small-message latencies quoted throughout
// the paper's §4-§6, one row per (layer, hardware) combination.
#include "bench/common.h"

#include "gmsim/gm.h"
#include "mp/gm_mpi.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"
#include "mp/via_mpi.h"
#include "viasim/via.h"

using namespace pp;
using namespace pp::bench;

namespace {

netpipe::RunOptions latency_opts() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 256;  // only the small-message region matters
  o.repeats = 5;
  return o;
}

double tcp_latency(const hw::HostConfig& host, const hw::NicConfig& nic,
                   const std::function<TransportPair(mp::PairBed&)>& make) {
  mp::PairBed bed(host, nic, tcp::Sysctl::tuned());
  auto [ta, tb] = make(bed);
  return netpipe::run_netpipe(bed.sim, *ta, *tb, latency_opts()).latency_us;
}

}  // namespace

int main() {
  const auto p4 = hw::presets::pentium4_pc();
  const auto ds20 = hw::presets::compaq_ds20();

  struct Row {
    const char* what;
    double paper;
    double measured;
    const char* note;
  };
  std::vector<Row> rows;

  rows.push_back({"raw TCP, Netgear GA620 / P4", 120,
                  tcp_latency(p4, hw::presets::netgear_ga620(),
                              [](mp::PairBed& b) {
                                return raw_tcp_pair(b, 512 << 10);
                              }),
                  "OCR '12 us'; 'latencies are poor under 2.4'"});
  rows.push_back({"raw TCP, TrendNet / P4", 65,
                  tcp_latency(p4, hw::presets::trendnet_teg_pcitx(),
                              [](mp::PairBed& b) {
                                return raw_tcp_pair(b, 512 << 10);
                              }),
                  "OCR: second GigE latency digit lost"});
  rows.push_back({"raw TCP, SysKonnect jumbo / DS20", 48,
                  tcp_latency(ds20, hw::presets::syskonnect_sk9843(9000),
                              [](mp::PairBed& b) {
                                return raw_tcp_pair(b, 512 << 10);
                              }),
                  "'a low 48 us latency'"});
  rows.push_back({"LAM/MPI lamd route, GA620 / P4", 245,
                  tcp_latency(p4, hw::presets::netgear_ga620(),
                              [](mp::PairBed& b) {
                                mp::LamOptions o;
                                o.mode = mp::LamMode::kLamd;
                                return hold_pair(mp::Lam::create_pair(b, o));
                              }),
                  "'doubling the latency to 245 us'"});

  {  // GM rows
    for (auto [mode, paper, label] :
         {std::tuple{gm::RecvMode::kPolling, 16.0, "raw GM, Polling"},
          std::tuple{gm::RecvMode::kBlocking, 36.0, "raw GM, Blocking"},
          std::tuple{gm::RecvMode::kHybrid, 16.0, "raw GM, Hybrid"}}) {
      sim::Simulator s;
      hw::Cluster c(s);
      auto& a = c.add_node(p4);
      auto& b = c.add_node(p4);
      gm::GmConfig gc;
      gc.recv_mode = mode;
      gm::GmFabric fab(c, a, b, hw::presets::myrinet_pci64a(),
                       hw::presets::back_to_back(), gc);
      mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
      const auto r = netpipe::run_netpipe(s, ta, tb, latency_opts());
      rows.push_back({label, paper, r.latency_us, ""});
    }
  }
  {  // IP over GM
    rows.push_back({"IP over GM / P4", 48,
                    tcp_latency(p4, hw::presets::myrinet_ip_over_gm(),
                                [](mp::PairBed& b) {
                                  return raw_tcp_pair(b, 512 << 10);
                                }),
                    "'IP-GM has a latency of 48 us'"});
  }
  {  // VIA rows
    auto via_lat = [&](bool giganet, const mp::ViaMpiOptions& lib) {
      sim::Simulator s;
      hw::Cluster c(s);
      auto& a = c.add_node(p4);
      auto& b = c.add_node(p4);
      via::ViaConfig vc;
      vc.personality = giganet ? via::ViaPersonality::giganet()
                               : via::ViaPersonality::mvia_sk98lin();
      via::ViaFabric fab(
          c, a, b,
          giganet ? hw::presets::giganet_clan()
                  : hw::presets::syskonnect_mvia(),
          giganet ? hw::presets::switched() : hw::presets::back_to_back(),
          vc);
      mp::ViaMpi la(fab.end_a(), 0, lib), lb(fab.end_b(), 1, lib);
      mp::LibraryTransport ta(la, 1), tb(lb, 0);
      return netpipe::run_netpipe(s, ta, tb, latency_opts()).latency_us;
    };
    rows.push_back({"MVICH, Giganet cLAN", 10,
                    via_lat(true, mp::ViaMpi::mvich()), ""});
    rows.push_back({"MP_Lite, Giganet cLAN", 10,
                    via_lat(true, mp::ViaMpi::mplite_via()), ""});
    rows.push_back({"MPI/Pro, Giganet cLAN", 42,
                    via_lat(true, mp::ViaMpi::mpipro_via()),
                    "progress-thread handoff"});
    rows.push_back({"MVICH, M-VIA on SysKonnect", 42,
                    via_lat(false, mp::ViaMpi::mvich()), ""});
  }

  std::cout << "\n==== Latency summary (one-way, small messages) ====\n\n";
  std::vector<netpipe::PaperCheck> checks;
  checks.reserve(rows.size());
  for (const auto& r : rows) {
    checks.push_back({r.what, r.paper, r.measured, r.note});
  }
  print_paper_checks(std::cout, checks);
  return 0;
}
