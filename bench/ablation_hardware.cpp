// Hardware-parameter ablations: the design choices DESIGN.md calls out,
// each swept in isolation on the two-node raw-TCP configuration.
//
//  1. Receive-path stall (busy_irq_delay) x socket buffer size: maps the
//     window-limited region that separates the TrendNet from the good
//     cards — the engine behind the paper's central tuning story.
//  2. Host copy bandwidth vs the cost of one extra staging copy: the
//     "memory bus saturation" narrative (§1) quantified.
//  3. NIC DMA-engine efficiency (pci_efficiency): why jumbo-frame cards
//     are PCI-bound on 32-bit hosts.
//  4. Degraded cable (frame loss) vs throughput: the retransmission
//     machinery under fault injection.
#include "bench/common.h"

#include "mp/mpich.h"

using namespace pp;
using namespace pp::bench;

namespace {

double raw_tcp_mbps(const hw::HostConfig& host, const hw::NicConfig& nic,
                    std::uint32_t buf, double loss = 0.0) {
  mp::PairBed bed(host, nic, tcp::Sysctl::tuned());
  if (loss > 0.0) bed.link.forward.set_loss(loss, 17);
  auto [ta, tb] = raw_tcp_pair(bed, buf);
  netpipe::RunOptions o = default_run_options();
  o.schedule.min_bytes = 64 << 10;  // only the bulk region matters here
  o.repeats = 2;
  return netpipe::run_netpipe(bed.sim, *ta, *tb, o).max_mbps;
}

}  // namespace

int main() {
  const auto host = hw::presets::pentium4_pc();

  std::cout << "==== 1. receive-path stall x socket buffers (raw TCP, "
               "Mbps) ====\n";
  std::printf("%12s |", "stall(us)");
  for (std::uint32_t buf : {32u << 10, 64u << 10, 256u << 10, 1u << 20}) {
    std::printf(" %8s", netpipe::format_bytes(buf).c_str());
  }
  std::printf("\n");
  for (double stall_us : {10.0, 100.0, 300.0, 900.0, 2700.0}) {
    hw::NicConfig nic = hw::presets::trendnet_teg_pcitx();
    nic.busy_irq_delay = sim::microseconds(stall_us);
    std::printf("%12.0f |", stall_us);
    for (std::uint32_t buf : {32u << 10, 64u << 10, 256u << 10, 1u << 20}) {
      std::printf(" %8.0f", raw_tcp_mbps(host, nic, buf));
    }
    std::printf("\n");
  }
  std::cout << "  (reading: the stall only matters when the buffer is "
               "smaller than stall x rate)\n";

  std::cout << "\n==== 2. copy bandwidth vs staging-copy cost (GA620) "
               "====\n";
  std::printf("%14s | %10s %12s %8s\n", "copy MB/s", "raw TCP",
              "MPICH(stage)", "loss %");
  for (double copy_mbs : {120.0, 200.0, 320.0, 640.0, 1280.0}) {
    hw::HostConfig h = host;
    h.copy_bandwidth = sim::Rate::megabytes(copy_mbs);
    const double raw = raw_tcp_mbps(h, hw::presets::netgear_ga620(),
                                    512 << 10);
    mp::PairBed bed(h, hw::presets::netgear_ga620(), tcp::Sysctl::tuned());
    mp::MpichOptions mo;
    mo.p4_sockbufsize = 256 << 10;
    auto [ta, tb] = hold_pair(mp::Mpich::create_pair(bed, mo));
    netpipe::RunOptions o = default_run_options();
    o.schedule.min_bytes = 64 << 10;
    o.repeats = 2;
    const double mpich =
        netpipe::run_netpipe(bed.sim, *ta, *tb, o).max_mbps;
    std::printf("%14.0f | %10.0f %12.0f %8.1f\n", copy_mbs, raw, mpich,
                100.0 * (1.0 - mpich / raw));
  }
  std::cout << "  (reading: the slower the memory, the more one staging "
               "copy costs — the paper's P4/PC133 sat near 25-30 %)\n";

  std::cout << "\n==== 3. NIC DMA efficiency (SysKonnect jumbo on the "
               "32-bit P4) ====\n";
  for (double eff : {0.4, 0.55, 0.68, 0.85, 1.0}) {
    hw::NicConfig nic = hw::presets::syskonnect_sk9843(9000);
    nic.pci_efficiency = eff;
    std::printf("  efficiency %.2f : %6.0f Mbps\n", eff,
                raw_tcp_mbps(host, nic, 512 << 10));
  }
  std::cout << "  (reading: jumbo GigE is PCI-bound on 32/33 PCI; the "
               "DMA engine sets the ceiling)\n";

  std::cout << "\n==== 4. degraded cable: frame loss vs throughput "
               "(GA620, 512k buffers) ====\n";
  for (double loss : {0.0, 0.001, 0.005, 0.02, 0.05}) {
    std::printf("  loss %5.1f%% : %6.0f Mbps\n", 100.0 * loss,
                raw_tcp_mbps(host, hw::presets::netgear_ga620(), 512 << 10,
                             loss));
  }
  std::cout << "  (go-back-N + fast retransmit keep the stream alive but "
               "pay dearly, as a 2002 admin with a bad cable would see)\n";
  return 0;
}
