// Figure 4: message-passing performance across Myrinet PCI64A-2 cards
// between two Pentium-4 PCs.
//
// Paper findings reproduced here:
//  - raw GM reaches ~800 Mbps with a 16 us latency (Polling mode);
//  - Blocking receive mode costs 36 us; Hybrid equals Polling;
//  - MPICH-GM and MPI/Pro-GM are nearly identical and lose only a few
//    percent in the intermediate range (eager-buffer copies);
//  - IP over GM has a 48 us latency and otherwise offers GigE-TCP-grade
//    performance — custom hardware wasted by a kernel protocol stack.
//
// All six measurements (four figure curves plus the §5 receive-mode
// probes) run as one parallel sweep (see bench/figures.h).
#include "bench/figures.h"

using namespace pp;
using namespace pp::bench;

int main(int argc, char** argv) {
  const auto sr = sweep::run_sweep(fig4_spec());
  const std::vector<Curve> curves = curves_of(sr, fig4_figure_curves());

  print_figure("Figure 4: Myrinet PCI64A-2, two P4 PCs", curves);
  print_sweep_stats(sr);

  const std::string dir =
      write_figure_dats(out_dir_from_args(argc, argv), "fig4", curves);
  std::cout << "curve data written to " << dir << "/\n";

  const auto& raw = find(curves, "raw GM");
  const auto& mpich_r = find(curves, "MPICH-GM");
  const auto& mpipro_r = find(curves, "MPI/Pro-GM");
  const auto& ipog = find(curves, "IP over GM");
  const auto& blocking = sr.at("raw GM blocking");
  const auto& hybrid = sr.at("raw GM hybrid");

  std::cout << "\npaper-vs-measured checks (Figure 4):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"raw GM max Mbps", 800, raw.max_mbps, "OCR: 'maximum of 8 Mbps'"},
      {"raw GM latency us (Polling)", 16, raw.latency_us, ""},
      {"raw GM latency us (Blocking)", 36, blocking.latency_us, ""},
      {"Hybrid == Polling latency", raw.latency_us, hybrid.latency_us,
       "'same results as the Polling mode'"},
      {"MPICH-GM / raw GM at 64k (%)", 96,
       100.0 * mpich_r.mbps_at(64 << 10) / raw.mbps_at(64 << 10),
       "'losing only a few percent ... intermediate range'"},
      {"MPI/Pro-GM / MPICH-GM max (%)", 100,
       100.0 * mpipro_r.max_mbps / mpich_r.max_mbps, "'nearly identical'"},
      {"IP-GM latency us", 48, ipog.latency_us, ""},
      {"IP-GM max (GigE-TCP grade)", 550, ipog.max_mbps,
       "'otherwise offers similar performance' to TCP/GigE"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
