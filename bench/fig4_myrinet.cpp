// Figure 4: message-passing performance across Myrinet PCI64A-2 cards
// between two Pentium-4 PCs.
//
// Paper findings reproduced here:
//  - raw GM reaches ~800 Mbps with a 16 us latency (Polling mode);
//  - Blocking receive mode costs 36 us; Hybrid equals Polling;
//  - MPICH-GM and MPI/Pro-GM are nearly identical and lose only a few
//    percent in the intermediate range (eager-buffer copies);
//  - IP over GM has a 48 us latency and otherwise offers GigE-TCP-grade
//    performance — custom hardware wasted by a kernel protocol stack.
#include "bench/common.h"

#include "gmsim/gm.h"
#include "mp/gm_mpi.h"

using namespace pp;
using namespace pp::bench;

namespace {

Curve measure_gm(const std::string& label, gm::RecvMode mode,
                 const mp::GmMpiOptions* lib) {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  gm::GmConfig gc;
  gc.recv_mode = mode;
  gm::GmFabric fab(c, a, b, hw::presets::myrinet_pci64a(),
                   hw::presets::back_to_back(), gc);
  Curve out;
  out.label = label;
  if (lib == nullptr) {
    mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
    out.result = netpipe::run_netpipe(s, ta, tb, default_run_options());
  } else {
    mp::GmMpi la(fab.port_a(), 0, *lib), lb(fab.port_b(), 1, *lib);
    mp::LibraryTransport ta(la, 1), tb(lb, 0);
    out.result = netpipe::run_netpipe(s, ta, tb, default_run_options());
  }
  return out;
}

Curve measure_ip_over_gm() {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  auto link = c.connect(a, b, hw::presets::myrinet_ip_over_gm(),
                        hw::presets::back_to_back());
  tcp::TcpStack sa(a, tcp::Sysctl::tuned()), sb(b, tcp::Sysctl::tuned());
  auto [xa, xb] = tcp::connect(sa, sb, link);
  xa.set_send_buffer(512 << 10);
  xa.set_recv_buffer(512 << 10);
  xb.set_send_buffer(512 << 10);
  xb.set_recv_buffer(512 << 10);
  netpipe::TcpTransport ta(xa, "IP over GM"), tb(xb, "IP over GM");
  Curve out;
  out.label = "IP over GM";
  out.result = netpipe::run_netpipe(s, ta, tb, default_run_options());
  return out;
}

}  // namespace

int main() {
  std::vector<Curve> curves;
  curves.push_back(measure_gm("raw GM", gm::RecvMode::kPolling, nullptr));
  const auto mpich = mp::GmMpi::mpich_gm();
  curves.push_back(measure_gm("MPICH-GM", gm::RecvMode::kPolling, &mpich));
  const auto mpipro = mp::GmMpi::mpipro_gm();
  curves.push_back(
      measure_gm("MPI/Pro-GM", gm::RecvMode::kPolling, &mpipro));
  curves.push_back(measure_ip_over_gm());

  print_figure("Figure 4: Myrinet PCI64A-2, two P4 PCs", curves);

  // Receive-mode latency comparison (quoted in §5).
  const Curve blocking =
      measure_gm("raw GM blocking", gm::RecvMode::kBlocking, nullptr);
  const Curve hybrid =
      measure_gm("raw GM hybrid", gm::RecvMode::kHybrid, nullptr);

  const auto& raw = find(curves, "raw GM");
  const auto& mpich_r = find(curves, "MPICH-GM");
  const auto& mpipro_r = find(curves, "MPI/Pro-GM");
  const auto& ipog = find(curves, "IP over GM");

  std::cout << "\npaper-vs-measured checks (Figure 4):\n";
  std::vector<netpipe::PaperCheck> checks = {
      {"raw GM max Mbps", 800, raw.max_mbps, "OCR: 'maximum of 8 Mbps'"},
      {"raw GM latency us (Polling)", 16, raw.latency_us, ""},
      {"raw GM latency us (Blocking)", 36, blocking.result.latency_us, ""},
      {"Hybrid == Polling latency", raw.latency_us,
       hybrid.result.latency_us, "'same results as the Polling mode'"},
      {"MPICH-GM / raw GM at 64k (%)", 96,
       100.0 * mpich_r.mbps_at(64 << 10) / raw.mbps_at(64 << 10),
       "'losing only a few percent ... intermediate range'"},
      {"MPI/Pro-GM / MPICH-GM max (%)", 100,
       100.0 * mpipro_r.max_mbps / mpich_r.max_mbps, "'nearly identical'"},
      {"IP-GM latency us", 48, ipog.latency_us, ""},
      {"IP-GM max (GigE-TCP grade)", 550, ipog.max_mbps,
       "'otherwise offers similar performance' to TCP/GigE"},
  };
  print_paper_checks(std::cout, checks);
  return 0;
}
