// Timeline tracing: run a short ping-pong + bulk transfer and dump every
// resource's busy spans as Chrome trace-event JSON. Load the file in
// chrome://tracing or https://ui.perfetto.dev to *see* where the paper's
// time goes: protocol work and copies on the CPUs, DMA on the PCI bus,
// frames on the wire, and the interrupt-mitigation gaps between them.
//
//   ./trace_timeline [out.json]
#include <cstdio>
#include <string>

#include "mp/testbed.h"
#include "simcore/tracing.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"

using namespace pp;

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "timeline.json";

  mp::PairBed bed(hw::presets::pentium4_pc(), hw::presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  sim::TraceRecorder tracer;
  bed.sim.set_tracer(&tracer);

  auto [sa, sb] = bed.socket_pair("trace");
  sa.set_send_buffer(256 << 10);
  sa.set_recv_buffer(256 << 10);
  sb.set_send_buffer(256 << 10);
  sb.set_recv_buffer(256 << 10);

  bed.sim.spawn(
      [](tcp::Socket s, sim::TraceRecorder& t) -> sim::Task<void> {
        // One small ping-pong, then a 256 kB bulk send.
        t.record_instant("app", "ping", s.node().simulator().now());
        co_await s.send(64);
        co_await s.recv_exact(64);
        t.record_instant("app", "bulk start", s.node().simulator().now());
        co_await s.send(256 << 10);
      }(sa, tracer),
      "app-a");
  bed.sim.spawn(
      [](tcp::Socket s) -> sim::Task<void> {
        co_await s.recv_exact(64);
        co_await s.send(64);
        co_await s.recv_exact(256 << 10);
      }(sb),
      "app-b");
  bed.sim.run();

  tracer.write_chrome_json(out);
  std::printf("wrote %zu spans and %zu markers to %s\n",
              tracer.span_count(), tracer.instant_count(), out.c_str());
  std::printf("open chrome://tracing (or ui.perfetto.dev) and load it.\n");
  return 0;
}
