// A small "real application": an iterative halo exchange with overlapped
// computation, run over several library models.
//
// The paper's §7 closes with exactly this caveat: NetPIPE measures idle
// nodes, so "a message-passing library like MPI/Pro that has a message
// progress thread, or MP_Lite that is SIGIO interrupt driven, will keep
// data flowing more readily" inside real applications. This example makes
// that visible: while a rank is busy computing, an on-call library
// (MPICH) leaves arriving data stuck behind its socket buffer, whereas
// the independent-progress libraries keep draining the wire.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mp/collectives.h"
#include "mp/fabric_lib.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/testbed.h"
#include "simhw/presets.h"

using namespace pp;

namespace {

constexpr int kIterations = 20;
constexpr std::uint64_t kHaloBytes = 256 << 10;  // > the socket buffers
constexpr sim::SimTime kComputeTime = sim::milliseconds(2.0);

sim::Task<void> worker(mp::Library& lib, int peer, sim::SimTime& finished) {
  for (int it = 0; it < kIterations; ++it) {
    // Start the halo exchange, then compute while it is in flight.
    mp::Request rs = lib.isend(peer, kHaloBytes, 7);
    mp::Request rr = lib.irecv(peer, kHaloBytes, 7);
    co_await lib.node().cpu_cost(kComputeTime);
    co_await rs.wait();
    co_await rr.wait();
    // A tiny "allreduce" on the result (two ranks: exchange + combine).
    co_await lib.isend(peer, 8, 9).wait();
    co_await lib.recv(peer, 8, 9);
  }
  finished = std::max(finished, lib.node().simulator().now());
}

template <typename MakePair>
double run_app(const std::string& label, MakePair make) {
  mp::PairBed bed(hw::presets::pentium4_pc(), hw::presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto pair = make(bed);
  // Take the last rank's completion time; the simulation itself runs a
  // little longer while retransmission timers idle out.
  sim::SimTime finished = 0;
  bed.sim.spawn(worker(*pair.first, 1, finished), "rank0");
  bed.sim.spawn(worker(*pair.second, 0, finished), "rank1");
  bed.sim.run();
  const double ms = sim::to_seconds(finished) * 1e3;
  std::printf("  %-22s %8.2f ms for %d iterations\n", label.c_str(), ms,
              kIterations);
  return ms;
}

/// The same overlapped halo exchange at fabric scale: every rank trades
/// halos with both ring neighbours through the fat-tree, computes while
/// the wire is busy, then joins a dissemination barrier (the 2-rank
/// "allreduce" above generalized to N). The point survives the switch
/// fabric: communication cost is set by the library and the shared
/// links, not by the number of cables.
sim::Task<void> fabric_worker(mp::FabricWorld& world, int rank,
                              std::uint64_t halo, sim::SimTime& finished) {
  mp::Library& lib = world.lib(rank);
  const int n = world.size();
  const int left = (rank - 1 + n) % n;
  const int right = (rank + 1) % n;
  for (int it = 0; it < kIterations; ++it) {
    mp::Request sr = lib.isend(right, halo, 7);
    mp::Request sl = lib.isend(left, halo, 8);
    mp::Request rl = lib.irecv(left, halo, 7);
    mp::Request rr = lib.irecv(right, halo, 8);
    co_await lib.node().cpu_cost(kComputeTime);
    co_await sr.wait();
    co_await sl.wait();
    co_await rl.wait();
    co_await rr.wait();
    co_await mp::dissemination_barrier(world.comm(rank));
  }
  finished = std::max(finished, lib.node().simulator().now());
}

double run_fabric(int ranks, std::uint64_t halo) {
  mp::FabricWorldOptions opt;
  opt.host = hw::presets::pentium4_pc();
  mp::FabricWorld world(ranks, opt);
  sim::SimTime finished = 0;
  for (int r = 0; r < ranks; ++r) {
    world.spawn(r, fabric_worker(world, r, halo, finished),
                "rank" + std::to_string(r));
  }
  world.run();
  const double ms = sim::to_seconds(finished) * 1e3;
  std::printf("  %3d ranks on a fat-tree   %8.2f ms for %d iterations\n",
              ranks, ms, kIterations);
  return ms;
}

}  // namespace

int main() {
  std::puts("halo exchange (256 kB halos, 2 ms compute per iteration):");
  const double mpich = run_app("MPICH (tuned)", [](mp::PairBed& bed) {
    mp::MpichOptions o;
    o.p4_sockbufsize = 64 << 10;
    return mp::Mpich::create_pair(bed, o);
  });
  const double lam = run_app("LAM/MPI -O", [](mp::PairBed& bed) {
    mp::LamOptions o;
    o.mode = mp::LamMode::kC2cO;
    return mp::Lam::create_pair(bed, o);
  });
  const double mpipro = run_app("MPI/Pro", [](mp::PairBed& bed) {
    mp::MpiProOptions o;
    o.tcp_long = 512 << 10;  // keep the halo eager so progress matters
    return mp::MpiPro::create_pair(bed, o);
  });
  const double mplite = run_app("MP_Lite", [](mp::PairBed& bed) {
    return mp::MpLite::create_pair(bed);
  });

  std::printf(
      "\nindependent-progress advantage: MP_Lite %.0f%%, MPI/Pro %.0f%% "
      "faster than MPICH\n",
      100.0 * (mpich - mplite) / mpich, 100.0 * (mpich - mpipro) / mpich);
  std::printf("(LAM/MPI -O, on-call progress like MPICH: %.2f ms)\n", lam);

  std::puts("\nscale-out on the switch fabric (64 kB halos, dissemination"
            " barrier per iteration):");
  const double f16 = run_fabric(16, 64 << 10);
  const double f64 = run_fabric(64, 64 << 10);
  std::printf("16 -> 64 ranks costs only %.1f%% more — the fat-tree has"
              " full bisection\nbandwidth, so neighbour halos never share"
              " a link and the barrier adds just\nlog2 rounds: near-ideal"
              " weak scaling, unlike the incast results in\n"
              "bench/scaling where everyone targets one port.\n",
              100.0 * (f64 - f16) / f16);
  return 0;
}
