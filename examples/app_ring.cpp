// A small "real application": an iterative halo exchange with overlapped
// computation, run over several library models.
//
// The paper's §7 closes with exactly this caveat: NetPIPE measures idle
// nodes, so "a message-passing library like MPI/Pro that has a message
// progress thread, or MP_Lite that is SIGIO interrupt driven, will keep
// data flowing more readily" inside real applications. This example makes
// that visible: while a rank is busy computing, an on-call library
// (MPICH) leaves arriving data stuck behind its socket buffer, whereas
// the independent-progress libraries keep draining the wire.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/testbed.h"
#include "simhw/presets.h"

using namespace pp;

namespace {

constexpr int kIterations = 20;
constexpr std::uint64_t kHaloBytes = 256 << 10;  // > the socket buffers
constexpr sim::SimTime kComputeTime = sim::milliseconds(2.0);

sim::Task<void> worker(mp::Library& lib, int peer, sim::SimTime& finished) {
  for (int it = 0; it < kIterations; ++it) {
    // Start the halo exchange, then compute while it is in flight.
    mp::Request rs = lib.isend(peer, kHaloBytes, 7);
    mp::Request rr = lib.irecv(peer, kHaloBytes, 7);
    co_await lib.node().cpu_cost(kComputeTime);
    co_await rs.wait();
    co_await rr.wait();
    // A tiny "allreduce" on the result (two ranks: exchange + combine).
    co_await lib.isend(peer, 8, 9).wait();
    co_await lib.recv(peer, 8, 9);
  }
  finished = std::max(finished, lib.node().simulator().now());
}

template <typename MakePair>
double run_app(const std::string& label, MakePair make) {
  mp::PairBed bed(hw::presets::pentium4_pc(), hw::presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto pair = make(bed);
  // Take the last rank's completion time; the simulation itself runs a
  // little longer while retransmission timers idle out.
  sim::SimTime finished = 0;
  bed.sim.spawn(worker(*pair.first, 1, finished), "rank0");
  bed.sim.spawn(worker(*pair.second, 0, finished), "rank1");
  bed.sim.run();
  const double ms = sim::to_seconds(finished) * 1e3;
  std::printf("  %-22s %8.2f ms for %d iterations\n", label.c_str(), ms,
              kIterations);
  return ms;
}

}  // namespace

int main() {
  std::puts("halo exchange (256 kB halos, 2 ms compute per iteration):");
  const double mpich = run_app("MPICH (tuned)", [](mp::PairBed& bed) {
    mp::MpichOptions o;
    o.p4_sockbufsize = 64 << 10;
    return mp::Mpich::create_pair(bed, o);
  });
  const double lam = run_app("LAM/MPI -O", [](mp::PairBed& bed) {
    mp::LamOptions o;
    o.mode = mp::LamMode::kC2cO;
    return mp::Lam::create_pair(bed, o);
  });
  const double mpipro = run_app("MPI/Pro", [](mp::PairBed& bed) {
    mp::MpiProOptions o;
    o.tcp_long = 512 << 10;  // keep the halo eager so progress matters
    return mp::MpiPro::create_pair(bed, o);
  });
  const double mplite = run_app("MP_Lite", [](mp::PairBed& bed) {
    return mp::MpLite::create_pair(bed);
  });

  std::printf(
      "\nindependent-progress advantage: MP_Lite %.0f%%, MPI/Pro %.0f%% "
      "faster than MPICH\n",
      100.0 * (mpich - mplite) / mpich, 100.0 * (mpich - mpipro) / mpich);
  std::printf("(LAM/MPI -O, on-call progress like MPICH: %.2f ms)\n", lam);
  return 0;
}
