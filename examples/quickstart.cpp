// Quickstart: build a two-node GigE cluster, run the NetPIPE
// reproduction over raw TCP, and print the classic three-column listing.
//
//   ./quickstart [nic]    nic: ga620 | trendnet | sk9843 | sk9843-jumbo
#include <iostream>
#include <string>

#include "mp/testbed.h"
#include "netpipe/modules.h"
#include "netpipe/report.h"
#include "netpipe/runner.h"
#include "simhw/presets.h"

using namespace pp;

int main(int argc, char** argv) {
  // 1. Pick the NIC model (see simhw/presets.h for the full catalogue).
  const std::string nic_name = argc > 1 ? argv[1] : "ga620";
  hw::NicConfig nic = hw::presets::netgear_ga620();
  if (nic_name == "trendnet") nic = hw::presets::trendnet_teg_pcitx();
  if (nic_name == "sk9843") nic = hw::presets::syskonnect_sk9843(1500);
  if (nic_name == "sk9843-jumbo") nic = hw::presets::syskonnect_sk9843(9000);

  // 2. Two Pentium-4 nodes, back to back, with tuned sysctl caps — the
  //    paper's baseline configuration.
  mp::PairBed bed(hw::presets::pentium4_pc(), nic, tcp::Sysctl::tuned());

  // 3. One TCP connection with 512 kB socket buffers on both ends.
  auto [sa, sb] = bed.socket_pair("quickstart");
  sa.set_send_buffer(512 << 10);
  sa.set_recv_buffer(512 << 10);
  sb.set_send_buffer(512 << 10);
  sb.set_recv_buffer(512 << 10);

  // 4. Run NetPIPE and print the measurement.
  netpipe::TcpTransport ta(sa), tb(sb);
  netpipe::RunOptions opts;
  opts.schedule.max_bytes = 4 << 20;
  const netpipe::RunResult result = netpipe::run_netpipe(bed.sim, ta, tb,
                                                         opts);
  netpipe::print_run(std::cout, result);
  return 0;
}
