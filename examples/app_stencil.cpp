// A 1-D-decomposed Jacobi stencil over the MPI facade: the canonical
// cluster application of the paper's era (its intro names "the ability
// of applications to scale" as the point of all this tuning).
//
// Each iteration: exchange halos with both neighbours (Sendrecv),
// "compute" the local block, and allreduce an 8-byte residual. The run
// reports the communication fraction per configuration — the number the
// paper's tuning work ultimately moves.
//
//   ./app_stencil [ranks] [interior-cells-per-rank]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mp/fabric_lib.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/world.h"
#include "mpi/mpi.h"
#include "simhw/presets.h"

using namespace pp;

namespace {

constexpr int kIterations = 25;
constexpr std::uint64_t kHaloCells = 16384;  // doubles per halo face

sim::Task<void> stencil_rank(mpi::Comm comm, std::uint64_t cells,
                             sim::SimTime& finished,
                             sim::SimTime& compute_time) {
  using mpi::Datatype;
  const int left = (comm.rank() - 1 + comm.size()) % comm.size();
  const int right = (comm.rank() + 1) % comm.size();
  for (int it = 0; it < kIterations; ++it) {
    // Halo exchange in both directions (periodic boundary).
    co_await comm.sendrecv(kHaloCells, Datatype::kDouble, right, kHaloCells,
                           left, 1);
    co_await comm.sendrecv(kHaloCells, Datatype::kDouble, left, kHaloCells,
                           right, 2);
    // Local relaxation sweep: one arithmetic pass over the block.
    const sim::SimTime work =
        comm.node().staging_copy_time(cells * 8) * 3;
    compute_time += work;
    co_await comm.node().cpu_cost(work);
    // Global residual.
    co_await comm.allreduce(1, Datatype::kDouble);
  }
  finished = std::max(finished, comm.node().simulator().now());
}

template <typename L, typename... Args>
void run_case(const char* label, int ranks, std::uint64_t cells,
              Args&&... args) {
  mp::MeshWorld world(ranks, hw::presets::pentium4_pc(),
                      hw::presets::netgear_ga620(), tcp::Sysctl::tuned());
  auto libs = world.template build<L>(args...);
  std::vector<mp::Library*> members;
  for (auto& l : libs) members.push_back(l.get());
  auto comms = mpi::Comm::world(members);
  sim::SimTime finished = 0;
  sim::SimTime compute = 0;
  for (auto& c : comms) {
    world.sim.spawn(stencil_rank(c, cells, finished, compute),
                    "rank" + std::to_string(c.rank()));
  }
  world.sim.run();
  const double total_ms = sim::to_seconds(finished) * 1e3;
  const double compute_ms =
      sim::to_seconds(compute) * 1e3 / ranks;  // per-rank average
  std::printf("  %-10s %2d ranks: %7.1f ms total, %5.1f ms compute, "
              "%4.0f%% communication\n",
              label, ranks, total_ms, compute_ms,
              100.0 * (total_ms - compute_ms) / total_ms);
}

/// The same stencil over the switch fabric: mpi::Comm doesn't care that
/// the ranks now reach each other through a fat-tree instead of a
/// point-to-point mesh, so the only change is the world builder.
void run_fabric_case(int ranks, std::uint64_t cells) {
  mp::FabricWorldOptions opt;
  opt.host = hw::presets::pentium4_pc();
  mp::FabricWorld world(ranks, opt);
  std::vector<mp::Library*> members;
  for (int r = 0; r < ranks; ++r) members.push_back(&world.lib(r));
  auto comms = mpi::Comm::world(members);
  sim::SimTime finished = 0;
  sim::SimTime compute = 0;
  for (auto& c : comms) {
    world.spawn(c.rank(), stencil_rank(c, cells, finished, compute),
                "rank" + std::to_string(c.rank()));
  }
  world.run();
  const double total_ms = sim::to_seconds(finished) * 1e3;
  const double compute_ms = sim::to_seconds(compute) * 1e3 / ranks;
  std::printf("  %-10s %2d ranks: %7.1f ms total, %5.1f ms compute, "
              "%4.0f%% communication\n",
              "fat-tree", ranks, total_ms, compute_ms,
              100.0 * (total_ms - compute_ms) / total_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t cells =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 65536;
  std::printf("Jacobi stencil, %d iterations, %llu cells/rank, 16k-cell "
              "halos, GA620 GigE:\n",
              kIterations, static_cast<unsigned long long>(cells));
  for (int n : {2, ranks}) {
    run_case<mp::MpLite>("MP_Lite", n, cells);
    mp::MpichOptions opt;
    opt.p4_sockbufsize = 256 << 10;
    run_case<mp::Mpich>("MPICH", n, cells, opt);
  }
  std::puts("\nsame stencil through the switch fabric:");
  for (int n : {16, 64}) run_fabric_case(n, cells);
  std::puts("\nreading: the communication share grows with ranks (the\n"
            "allreduce costs log2(N) latencies) and with the library's\n"
            "per-byte overhead — MPICH's staging copies show up directly\n"
            "in application time, which is the paper's closing argument\n"
            "for tuning the message-passing layer.");
  return 0;
}
