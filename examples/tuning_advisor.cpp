// Tuning advisor: automates §7's advice to library developers.
//
// For a chosen library/NIC pair it sweeps the socket buffer size and (if
// the library has one) the rendezvous threshold, then prints the settings
// a user should pick and the improvement over the defaults.
//
//   ./tuning_advisor [library] [nic]
//       library: mpich | tcgmsg | mpipro | tcp
//       nic:     ga620 | trendnet | sk9843 | sk9843-jumbo
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/tcgmsg.h"

using namespace pp;
using namespace pp::bench;

namespace {

struct Sweep {
  std::uint64_t value = 0;
  double max_mbps = 0;
  double dip_ratio = 1.0;  // min(curve)/neighbour around thresholds
};

double score(const netpipe::RunResult& r) { return r.max_mbps; }

}  // namespace

int main(int argc, char** argv) {
  const std::string lib = argc > 1 ? argv[1] : "mpich";
  const std::string nic_name = argc > 2 ? argv[2] : "trendnet";

  hw::HostConfig host = hw::presets::pentium4_pc();
  hw::NicConfig nic = hw::presets::trendnet_teg_pcitx();
  if (nic_name == "ga620") nic = hw::presets::netgear_ga620();
  if (nic_name == "sk9843") nic = hw::presets::syskonnect_sk9843(1500);
  if (nic_name == "sk9843-jumbo") {
    nic = hw::presets::syskonnect_sk9843(9000);
    host = hw::presets::compaq_ds20();
  }
  const tcp::Sysctl sysctl = tcp::Sysctl::tuned();

  std::printf("tuning %s on %s/%s\n\n", lib.c_str(), nic.name.c_str(),
              host.name.c_str());

  const std::vector<std::uint32_t> buffers = {32u << 10,  64u << 10,
                                              128u << 10, 256u << 10,
                                              512u << 10, 1u << 20};
  std::vector<Sweep> sweep;
  double default_mbps = 0;

  auto run_with_buffer = [&](std::uint32_t buf) -> double {
    if (lib == "mpich") {
      const Curve c = measure_on_bed(
          "m", host, nic, sysctl, [&](mp::PairBed& bed) {
            mp::MpichOptions o;
            o.p4_sockbufsize = buf;
            return hold_pair(mp::Mpich::create_pair(bed, o));
          });
      return score(c.result);
    }
    if (lib == "tcgmsg") {
      const Curve c = measure_on_bed(
          "t", host, nic, sysctl, [&](mp::PairBed& bed) {
            mp::TcgmsgOptions o;
            o.sr_sock_buf_size = buf;
            return hold_pair(mp::Tcgmsg::create_pair(bed, o));
          });
      return score(c.result);
    }
    const Curve c = measure_on_bed(
        "tcp", host, nic, sysctl,
        [&](mp::PairBed& bed) { return raw_tcp_pair(bed, buf); });
    return score(c.result);
  };

  if (lib == "mpipro") {
    std::puts("MPI/Pro's socket buffers are not user tunable; sweeping the");
    std::puts("tcp_long rendezvous threshold instead.\n");
    double best = 0;
    std::uint64_t best_thr = 0;
    for (std::uint64_t thr :
         {16ull << 10, 32ull << 10, 64ull << 10, 128ull << 10,
          256ull << 10}) {
      const Curve c = measure_on_bed(
          "p", host, nic, sysctl, [&](mp::PairBed& bed) {
            mp::MpiProOptions o;
            o.tcp_long = thr;
            return hold_pair(mp::MpiPro::create_pair(bed, o));
          });
      // Penalize the dip just above the threshold.
      const double above = c.result.mbps_at(thr + thr / 4);
      const double below = c.result.mbps_at(thr - thr / 4);
      const double dip = below > 0 ? above / below : 1.0;
      std::printf("  tcp_long %7s : max %6.0f Mbps, dip ratio %.2f\n",
                  netpipe::format_bytes(thr).c_str(), c.result.max_mbps,
                  dip);
      const double s = c.result.max_mbps * std::min(dip, 1.0);
      if (s > best) {
        best = s;
        best_thr = thr;
      }
      if (thr == 32ull << 10) default_mbps = c.result.max_mbps;
    }
    std::printf("\nrecommended: tcp_long = %s\n",
                netpipe::format_bytes(best_thr).c_str());
    return 0;
  }

  for (std::uint32_t buf : buffers) {
    Sweep s;
    s.value = buf;
    s.max_mbps = run_with_buffer(buf);
    sweep.push_back(s);
    std::printf("  buffers %7s : %6.0f Mbps\n",
                netpipe::format_bytes(buf).c_str(), s.max_mbps);
    if (buf == buffers.front()) default_mbps = s.max_mbps;
  }

  // Recommend the smallest buffer within 3 % of the best (memory costs
  // real RAM: "each node opens 2 socket buffers for each machine").
  double best = 0;
  for (const auto& s : sweep) best = std::max(best, s.max_mbps);
  for (const auto& s : sweep) {
    if (s.max_mbps >= 0.97 * best) {
      std::printf("\nrecommended buffer size: %s (%.0f Mbps, %.1fx over "
                  "the %s default)\n",
                  netpipe::format_bytes(s.value).c_str(), s.max_mbps,
                  s.max_mbps / std::max(default_mbps, 1.0),
                  netpipe::format_bytes(buffers.front()).c_str());
      if (lib == "tcgmsg") {
        std::puts("apply by rebuilding with -DSR_SOCK_BUF_SIZE=<bytes> "
                  "(sndrcvP.h)");
      } else if (lib == "mpich") {
        std::puts("apply with: export P4_SOCKBUFSIZE=<bytes>");
      } else {
        std::puts("apply with setsockopt(SO_SNDBUF/SO_RCVBUF) and raise "
                  "net.core.{r,w}mem_max in /etc/sysctl.conf");
      }
      break;
    }
  }
  return 0;
}
