// Tuning advisor: automates §7's advice to library developers.
//
// For a chosen library/NIC pair it sweeps the socket buffer size and (if
// the library has one) the rendezvous threshold — all candidate settings
// measured as one parallel sweep (src/sweep) — then prints the settings
// a user should pick and the improvement over the defaults.
//
//   ./tuning_advisor [library] [nic]
//       library: mpich | tcgmsg | mpipro | tcp
//       nic:     ga620 | trendnet | sk9843 | sk9843-jumbo
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/tcgmsg.h"
#include "sweep/sweep.h"

using namespace pp;
using namespace pp::bench;

namespace {

/// A buffer-size (or threshold) measurement job on a fresh two-node bed.
sweep::JobSpec advisor_job(std::string label, hw::HostConfig host,
                           hw::NicConfig nic, tcp::Sysctl sysctl,
                           std::function<TransportPair(mp::PairBed&)> make) {
  auto run = [host, nic, sysctl, make = std::move(make)] {
    mp::PairBed bed(host, nic, sysctl);
    auto [ta, tb] = make(bed);
    return netpipe::run_netpipe(bed.sim, *ta, *tb, default_run_options());
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

/// The advisor's scores assume clean curves. If any measurement saw
/// frames dropped on the wire (fault injection, a lossy model), its
/// throughput includes retransmission stalls and the recommendation is
/// suspect — say so rather than silently recommending from bad data.
void warn_if_lossy(const sweep::SweepResult& sr) {
  std::uint64_t drops = 0;
  for (const auto& j : sr.jobs) {
    if (j.ok) drops += j.result.counters.wire_drops;
  }
  if (drops == 0) return;
  std::printf("\nWARNING: %llu frames were dropped on the wire during "
              "these measurements;\nthe curves include retransmission "
              "stalls and the recommendation below may\nnot hold on a "
              "clean network.\n",
              static_cast<unsigned long long>(drops));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string lib = argc > 1 ? argv[1] : "mpich";
  const std::string nic_name = argc > 2 ? argv[2] : "trendnet";

  hw::HostConfig host = hw::presets::pentium4_pc();
  hw::NicConfig nic = hw::presets::trendnet_teg_pcitx();
  if (nic_name == "ga620") nic = hw::presets::netgear_ga620();
  if (nic_name == "sk9843") nic = hw::presets::syskonnect_sk9843(1500);
  if (nic_name == "sk9843-jumbo") {
    nic = hw::presets::syskonnect_sk9843(9000);
    host = hw::presets::compaq_ds20();
  }
  const tcp::Sysctl sysctl = tcp::Sysctl::tuned();

  std::printf("tuning %s on %s/%s\n\n", lib.c_str(), nic.name.c_str(),
              host.name.c_str());

  if (lib == "mpipro") {
    std::puts("MPI/Pro's socket buffers are not user tunable; sweeping the");
    std::puts("tcp_long rendezvous threshold instead.\n");
    const std::vector<std::uint64_t> thresholds = {
        16ull << 10, 32ull << 10, 64ull << 10, 128ull << 10, 256ull << 10};
    sweep::SweepSpec spec;
    spec.name = "advisor.mpipro_tcp_long";
    for (std::uint64_t thr : thresholds) {
      spec.jobs.push_back(advisor_job(netpipe::format_bytes(thr), host, nic,
                                      sysctl, [thr](mp::PairBed& bed) {
                                        mp::MpiProOptions o;
                                        o.tcp_long = thr;
                                        return hold_pair(
                                            mp::MpiPro::create_pair(bed, o));
                                      }));
    }
    const auto sr = sweep::run_sweep(spec);
    warn_if_lossy(sr);
    double best = 0;
    std::uint64_t best_thr = 0;
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      const std::uint64_t thr = thresholds[i];
      const auto& r = sr.jobs[i].result;
      // Penalize the dip just above the threshold.
      const double above = r.mbps_at(thr + thr / 4);
      const double below = r.mbps_at(thr - thr / 4);
      const double dip = below > 0 ? above / below : 1.0;
      std::printf("  tcp_long %7s : max %6.0f Mbps, dip ratio %.2f\n",
                  sr.jobs[i].label.c_str(), r.max_mbps, dip);
      const double score = r.max_mbps * std::min(dip, 1.0);
      if (score > best) {
        best = score;
        best_thr = thr;
      }
    }
    std::printf("\nrecommended: tcp_long = %s\n",
                netpipe::format_bytes(best_thr).c_str());
    return 0;
  }

  const std::vector<std::uint32_t> buffers = {32u << 10,  64u << 10,
                                              128u << 10, 256u << 10,
                                              512u << 10, 1u << 20};
  sweep::SweepSpec spec;
  spec.name = "advisor." + lib + "_buffers";
  for (std::uint32_t buf : buffers) {
    auto make = [lib, buf](mp::PairBed& bed) -> TransportPair {
      if (lib == "mpich") {
        mp::MpichOptions o;
        o.p4_sockbufsize = buf;
        return hold_pair(mp::Mpich::create_pair(bed, o));
      }
      if (lib == "tcgmsg") {
        mp::TcgmsgOptions o;
        o.sr_sock_buf_size = buf;
        return hold_pair(mp::Tcgmsg::create_pair(bed, o));
      }
      return raw_tcp_pair(bed, buf);
    };
    spec.jobs.push_back(advisor_job(netpipe::format_bytes(buf), host, nic,
                                    sysctl, std::move(make)));
  }
  const auto sr = sweep::run_sweep(spec);
  warn_if_lossy(sr);

  double best = 0;
  double default_mbps = sr.jobs.front().result.max_mbps;
  for (const auto& j : sr.jobs) {
    std::printf("  buffers %7s : %6.0f Mbps\n", j.label.c_str(),
                j.result.max_mbps);
    best = std::max(best, j.result.max_mbps);
  }

  // Recommend the smallest buffer within 3 % of the best (memory costs
  // real RAM: "each node opens 2 socket buffers for each machine").
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const double mbps = sr.jobs[i].result.max_mbps;
    if (mbps >= 0.97 * best) {
      std::printf("\nrecommended buffer size: %s (%.0f Mbps, %.1fx over "
                  "the %s default)\n",
                  netpipe::format_bytes(buffers[i]).c_str(), mbps,
                  mbps / std::max(default_mbps, 1.0),
                  netpipe::format_bytes(buffers.front()).c_str());
      if (lib == "tcgmsg") {
        std::puts("apply by rebuilding with -DSR_SOCK_BUF_SIZE=<bytes> "
                  "(sndrcvP.h)");
      } else if (lib == "mpich") {
        std::puts("apply with: export P4_SOCKBUFSIZE=<bytes>");
      } else {
        std::puts("apply with setsockopt(SO_SNDBUF/SO_RCVBUF) and raise "
                  "net.core.{r,w}mem_max in /etc/sysctl.conf");
      }
      break;
    }
  }
  return 0;
}
