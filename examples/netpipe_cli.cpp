// netpipe_cli: the NetPIPE tool itself, reproduced — pick a module (a
// library or raw layer) and a hardware configuration, get the classic
// listing, exactly like running the 2002 utility on the 2002 testbed.
//
//   ./netpipe_cli [module] [options]
//
//   modules: tcp mpich mpich-mplite lam lam-c2c lamd mpipro mplite pvm
//            pvm-direct pvm-inplace tcgmsg gm gm-blocking mpich-gm
//            mpipro-gm ipgm via mvich mvich-norput mplite-via mpipro-via
//            mvia shmem
//   options:
//     -H host     p4 | ds20                       (default p4)
//     -N nic      ga620 | trendnet | ga622 | sk9843 | sk9843-jumbo | fe
//                 (TCP modules only; default ga620)
//     -b bytes    socket buffer size for raw tcp  (default 524288)
//     -u bytes    largest message                 (default 8388608)
//     -P n        perturbation delta              (default 3)
//     -r n        timed repeats per point         (default 3)
//     -s          streaming mode instead of ping-pong
//     -o file     also write a gnuplot-ready .dat file
//     -q          quiet: summary line only
//     -g          also print the fitted LogGP parameters
//     --trace f   record every protocol event (TCP segments/ACKs/
//                 retransmits, window counters, doorbells, rendezvous
//                 phases, relay hops) and write Chrome trace-event JSON
//                 to f — load in Perfetto or chrome://tracing
//     --shards n  run under ambient shard count n (the same knob as
//                 SweepOptions::shards). A 2-node NetPIPE pair shares
//                 protocol state and a possibly-zero-latency link, so
//                 it is co-located on one shard — the listing must be
//                 bit-identical for every n, which this flag lets you
//                 demonstrate from the command line.
//     --loss p            inject Bernoulli frame loss with probability p
//     --burst-loss p      inject Gilbert-Elliott burst loss (p = chance
//                         per frame of entering a loss burst)
//     --flap P:D          every P us of simulated time the link goes
//                         down for D us (all frames in the window drop)
//     --crash AT:DOWN     crash the second node AT us into the run; it
//                         reboots DOWN us later under a new power epoch
//                         and the protocols re-establish their sessions.
//                         DOWN = 0 means a permanent crash: the
//                         survivor's give-up caps end the run with
//                         "connection failed" instead of hanging
//     --fault-plan f      load a pp.faultplan/1 file (as written by the
//                         chaos sweep or tools/minimize_plan) as the
//                         base plan; later fault flags add to it
//     --fault-seed n      seed for the fault plan (default 1)
//     --audit             attach the delivery oracle (audit/audit.h):
//                         every message is checked for intact,
//                         exactly-once, FIFO delivery and end-of-run
//                         conservation; the accounting summary is
//                         printed and any violation exits nonzero
//
//   Exit status: 0 success; 1 the protocol stack decided it cannot
//   complete (ConnectionFailed / delivery-attempt caps — the `failed`
//   chaos verdict); 2 usage error; 3 an unexpected error ended the run
//   (budget/deadlock — the `hung`/`error` verdicts); 4 the run finished
//   but the delivery oracle found violations.
//
//   Fault flags compose into one FaultPlan applied to the run's link.
//   GM and VIA runs automatically enable their delivery watchdogs when a
//   plan is present (lost fragments otherwise wedge the endpoint), and
//   plans containing a crash rule arm the give-up caps (TCP rto_give_up
//   + keepalive, GM/VIA delivery-attempt limit) so a permanently dead
//   peer yields a clean failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include <optional>
#include <stdexcept>

#include "audit/audit.h"
#include "bench/common.h"
#include "faults/plan.h"
#include "faults/plan_io.h"
#include "netpipe/loggp.h"
#include "simcore/shard.h"
#include "simcore/tracing.h"
#include "shmemsim/shmem.h"
#include "gmsim/gm.h"
#include "mp/gm_mpi.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"
#include "mp/via_mpi.h"
#include "viasim/via.h"

using namespace pp;
using namespace pp::bench;

namespace {

struct CliOptions {
  std::string module = "tcp";
  std::string host = "p4";
  std::string nic = "ga620";
  std::uint32_t buffer = 512 << 10;
  netpipe::RunOptions run;
  std::string dat_file;
  std::string trace_file;
  bool quiet = false;
  bool loggp = false;
  /// Ambient shard count installed around the run (0 = leave untouched).
  int shards = 0;
  /// Attached to each family's simulator when --trace is given.
  sim::TraceRecorder* tracer = nullptr;
  /// Attached to each family's simulator when --audit is given.
  audit::Auditor* auditor = nullptr;
  bool audit = false;
  /// Built from --loss / --burst-loss / --flap; empty = clean run.
  faults::FaultPlan plan;
  faults::LinkFaultConfig link_faults;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [module] [-H host] [-N nic] [-b bytes]"
                       " [-u bytes] [-P n] [-r n] [-s] [-o file] [-q]"
                       " [--shards n] [--trace file] [--loss p]"
                       " [--burst-loss p] [--flap P:D] [--crash AT:DOWN]"
                       " [--fault-plan file] [--fault-seed n] [--audit]\n",
               argv0);
  std::exit(2);
}

hw::HostConfig host_for(const CliOptions& o) {
  if (o.host == "ds20") return hw::presets::compaq_ds20();
  if (o.host == "p4") return hw::presets::pentium4_pc();
  std::fprintf(stderr, "unknown host '%s'\n", o.host.c_str());
  std::exit(2);
}

hw::NicConfig nic_for(const CliOptions& o) {
  if (o.nic == "ga620") return hw::presets::netgear_ga620();
  if (o.nic == "trendnet") return hw::presets::trendnet_teg_pcitx();
  if (o.nic == "ga622") return hw::presets::netgear_ga622();
  if (o.nic == "sk9843") return hw::presets::syskonnect_sk9843(1500);
  if (o.nic == "sk9843-jumbo") return hw::presets::syskonnect_sk9843(9000);
  if (o.nic == "fe") return hw::presets::fast_ethernet();
  std::fprintf(stderr, "unknown nic '%s'\n", o.nic.c_str());
  std::exit(2);
}

bool plan_has_crash(const faults::FaultPlan& p) {
  for (const auto& r : p.crashes) {
    if (r.cfg.any()) return true;
  }
  return false;
}

netpipe::RunResult run_tcp_family(const CliOptions& o) {
  const auto host = host_for(o);
  tcp::Sysctl sysctl = tcp::Sysctl::tuned();
  if (plan_has_crash(o.plan)) {
    // A permanently dead peer must end the run, not hang it: cap the
    // RTO retries and probe idle connections (a blocked receiver has
    // nothing in flight, so no RTO will ever fire for it).
    sysctl.rto_give_up = 6;
    sysctl.keepalive_interval = sim::milliseconds(5.0);
  }
  hw::NicConfig nic = nic_for(o);
  if (o.module == "ipgm") nic = hw::presets::myrinet_ip_over_gm();
  mp::PairBed bed(host, nic, sysctl);
  bed.sim.set_tracer(o.tracer);
  if (o.auditor) bed.sim.set_auditor(o.auditor);
  faults::apply(o.plan, bed.cluster);

  auto run = [&](TransportPair pair) {
    return netpipe::run_netpipe(bed.sim, *pair.first, *pair.second, o.run);
  };
  const std::string m = o.module;
  if (m == "tcp" || m == "ipgm") return run(raw_tcp_pair(bed, o.buffer));
  if (m == "mpich" || m == "mpich-mplite") {
    mp::MpichOptions mo;
    mo.p4_sockbufsize = o.buffer;
    if (m == "mpich-mplite") mo.channel = mp::MpichChannel::kMpLiteChannel;
    return run(hold_pair(mp::Mpich::create_pair(bed, mo)));
  }
  if (m == "lam" || m == "lam-c2c" || m == "lamd") {
    mp::LamOptions lo;
    lo.mode = m == "lam" ? mp::LamMode::kC2cO
              : m == "lam-c2c" ? mp::LamMode::kC2c
                               : mp::LamMode::kLamd;
    return run(hold_pair(mp::Lam::create_pair(bed, lo)));
  }
  if (m == "mpipro") {
    mp::MpiProOptions po;
    po.tcp_long = 128 << 10;
    return run(hold_pair(mp::MpiPro::create_pair(bed, po)));
  }
  if (m == "mplite") return run(hold_pair(mp::MpLite::create_pair(bed)));
  if (m == "pvm" || m == "pvm-direct" || m == "pvm-inplace") {
    mp::PvmOptions po;
    if (m != "pvm") po.route = mp::PvmRoute::kDirect;
    if (m == "pvm-inplace") po.encoding = mp::PvmEncoding::kInPlace;
    return run(hold_pair(mp::Pvm::create_pair(bed, po)));
  }
  if (m == "tcgmsg") {
    mp::TcgmsgOptions to;
    if (o.buffer != 512u << 10) to.sr_sock_buf_size = o.buffer;
    return run(hold_pair(mp::Tcgmsg::create_pair(bed, to)));
  }
  std::fprintf(stderr, "unknown module '%s'\n", m.c_str());
  std::exit(2);
}

netpipe::RunResult run_gm_family(const CliOptions& o) {
  sim::Simulator s;
  s.set_tracer(o.tracer);
  if (o.auditor) s.set_auditor(o.auditor);
  hw::Cluster c(s);
  auto& a = c.add_node(host_for(o));
  auto& b = c.add_node(host_for(o));
  gm::GmConfig gc;
  if (o.module == "gm-blocking") gc.recv_mode = gm::RecvMode::kBlocking;
  // Under fault injection GM needs its delivery watchdog: a lost
  // fragment never completes otherwise.
  if (!o.plan.empty()) gc.delivery_timeout = sim::microseconds(500.0);
  if (plan_has_crash(o.plan)) gc.max_delivery_attempts = 10;
  gm::GmFabric fab(c, a, b, hw::presets::myrinet_pci64a(),
                   hw::presets::back_to_back(), gc);
  faults::apply(o.plan, c);
  if (o.module == "mpich-gm" || o.module == "mpipro-gm") {
    const auto lo = o.module == "mpich-gm" ? mp::GmMpi::mpich_gm()
                                           : mp::GmMpi::mpipro_gm();
    mp::GmMpi la(fab.port_a(), 0, lo), lb(fab.port_b(), 1, lo);
    mp::LibraryTransport ta(la, 1), tb(lb, 0);
    return netpipe::run_netpipe(s, ta, tb, o.run);
  }
  mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
  return netpipe::run_netpipe(s, ta, tb, o.run);
}

netpipe::RunResult run_via_family(const CliOptions& o) {
  sim::Simulator s;
  s.set_tracer(o.tracer);
  if (o.auditor) s.set_auditor(o.auditor);
  hw::Cluster c(s);
  auto& a = c.add_node(host_for(o));
  auto& b = c.add_node(host_for(o));
  const bool mvia = o.module == "mvia";
  via::ViaConfig vc;
  vc.personality = mvia ? via::ViaPersonality::mvia_sk98lin()
                        : via::ViaPersonality::giganet();
  if (!o.plan.empty()) vc.delivery_timeout = sim::microseconds(500.0);
  if (plan_has_crash(o.plan)) vc.max_delivery_attempts = 10;
  via::ViaFabric fab(
      c, a, b,
      mvia ? hw::presets::syskonnect_mvia() : hw::presets::giganet_clan(),
      mvia ? hw::presets::back_to_back() : hw::presets::switched(), vc);
  faults::apply(o.plan, c);
  mp::ViaMpiOptions lo = mp::ViaMpi::mvich();
  if (o.module == "mvich-norput") lo = mp::ViaMpi::mvich(false);
  if (o.module == "mplite-via") lo = mp::ViaMpi::mplite_via();
  if (o.module == "mpipro-via") lo = mp::ViaMpi::mpipro_via();
  if (o.module == "via") {
    mp::ViaTransport ta(fab.end_a()), tb(fab.end_b());
    return netpipe::run_netpipe(s, ta, tb, o.run);
  }
  mp::ViaMpi la(fab.end_a(), 0, lo), lb(fab.end_b(), 1, lo);
  mp::LibraryTransport ta(la, 1), tb(lb, 0);
  return netpipe::run_netpipe(s, ta, tb, o.run);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions o;
  o.run = default_run_options();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "-H") {
      o.host = next();
    } else if (arg == "-N") {
      o.nic = next();
    } else if (arg == "-b") {
      o.buffer = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "-u") {
      o.run.schedule.max_bytes = std::strtoull(next(), nullptr, 0);
    } else if (arg == "-P") {
      o.run.schedule.perturbation =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "-r") {
      o.run.repeats = std::atoi(next());
    } else if (arg == "-s") {
      o.run.streaming = true;
    } else if (arg == "-o") {
      o.dat_file = next();
    } else if (arg == "--shards") {
      o.shards = std::atoi(next());
      if (o.shards < 1) usage(argv[0]);
    } else if (arg == "--trace") {
      o.trace_file = next();
    } else if (arg == "--loss") {
      o.link_faults.loss = std::strtod(next(), nullptr);
    } else if (arg == "--burst-loss") {
      o.link_faults.ge_good_to_bad = std::strtod(next(), nullptr);
    } else if (arg == "--flap") {
      const char* v = next();
      char* colon = nullptr;
      const double period = std::strtod(v, &colon);
      if (colon == nullptr || *colon != ':') usage(argv[0]);
      const double down = std::strtod(colon + 1, nullptr);
      o.link_faults.flap_period = sim::microseconds(period);
      o.link_faults.flap_down = sim::microseconds(down);
    } else if (arg == "--crash") {
      const char* v = next();
      char* colon = nullptr;
      const double at = std::strtod(v, &colon);
      if (colon == nullptr || *colon != ':' || at <= 0) usage(argv[0]);
      const double down = std::strtod(colon + 1, nullptr);
      faults::HostCrashConfig cc;
      cc.at = sim::microseconds(at);
      if (down > 0) {
        cc.downtime = sim::microseconds(down);
      } else {
        cc.mode = faults::HostCrashConfig::Mode::kPermanent;
      }
      o.plan.add_crash(1, cc);
    } else if (arg == "--fault-plan") {
      // The file becomes the base plan; flags parsed later add to it.
      const char* path = next();
      try {
        o.plan = faults::read_file(path);
      } catch (const std::runtime_error& e) {
        std::fprintf(stderr, "--fault-plan %s: %s\n", path, e.what());
        std::exit(1);
      }
    } else if (arg == "--fault-seed") {
      o.plan.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--audit") {
      o.audit = true;
    } else if (arg == "-q") {
      o.quiet = true;
    } else if (arg == "-g") {
      o.loggp = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] != '-') {
      o.module = arg;
    } else {
      usage(argv[0]);
    }
  }

  if (o.link_faults.any()) o.plan.add_link("", o.link_faults);

  sim::TraceRecorder recorder;
  if (!o.trace_file.empty()) o.tracer = &recorder;

  // Same semantics as SweepOptions::shards: install the ambient shard
  // count around the whole run. The 2-node pair stays co-located, so
  // the listing is identical for every value — that invariance is the
  // point of exposing the knob here.
  std::optional<sim::ScopedShards> shard_guard;
  if (o.shards > 0) shard_guard.emplace(o.shards);

  audit::Auditor auditor(o.plan.seed + 1);
  if (o.audit) {
    o.auditor = &auditor;
    if (!o.plan.empty()) auditor.set_fault_plan(faults::to_text(o.plan));
  }

  // Closes the oracle's ledger on an exception exit and prints what it
  // found; the outcome decides how outstanding messages are judged.
  auto audit_failure = [&](audit::RunOutcome outcome) {
    if (!o.auditor) return;
    const audit::Summary& s = o.auditor->finalize(outcome);
    std::fprintf(stderr,
                 "audit: outcome=%s injected=%llu delivered=%llu "
                 "failed_by_decision=%llu violations=%llu\n",
                 audit::to_string(s.outcome),
                 static_cast<unsigned long long>(s.injected),
                 static_cast<unsigned long long>(s.delivered),
                 static_cast<unsigned long long>(s.failed_by_decision),
                 static_cast<unsigned long long>(s.violations));
    if (s.has_violations()) {
      std::fprintf(stderr, "%s", audit::report_text(s).c_str());
    }
  };

  netpipe::RunResult result;
  try {
    if (o.module == "shmem") {
      sim::Simulator s;
      s.set_tracer(o.tracer);
      shmem::SmpConfig sc;
      if (o.host == "ds20") sc.copy_bandwidth = sim::Rate::megabytes(320);
      shmem::ShmemPair pair(s, sc);
      shmem::ShmemTransport ta(pair.pe0()), tb(pair.pe1());
      result = netpipe::run_netpipe(s, ta, tb, o.run);
    } else if (o.module == "gm" || o.module == "gm-blocking" ||
               o.module == "mpich-gm" || o.module == "mpipro-gm") {
      result = run_gm_family(o);
    } else if (o.module == "via" || o.module == "mvich" ||
               o.module == "mvich-norput" || o.module == "mplite-via" ||
               o.module == "mpipro-via" || o.module == "mvia") {
      result = run_via_family(o);
    } else {
      result = run_tcp_family(o);
    }
  } catch (const sim::ProtocolFailure& e) {
    // The stack decided it cannot complete (give-up caps under a
    // permanent crash): the right outcome for the run, not a crash of
    // the tool — but still a nonzero exit, like a `failed` chaos verdict.
    std::fprintf(stderr, "%s: run failed: %s\n", o.module.c_str(), e.what());
    audit_failure(audit::RunOutcome::kFailed);
    return 1;
  } catch (const std::exception& e) {
    // Budget blowout, deadlock or any other escape: the `hung`/`error`
    // verdicts of the chaos tier. Always a bug, always nonzero.
    std::fprintf(stderr, "%s: run error: %s\n", o.module.c_str(), e.what());
    audit_failure(audit::RunOutcome::kAborted);
    return 3;
  }

  if (o.quiet) {
    char lat[32];
    if (result.has_latency()) {
      std::snprintf(lat, sizeof(lat), "%.1f us", result.latency_us);
    } else {
      std::snprintf(lat, sizeof(lat), "n/a (streaming)");
    }
    std::printf("%s: latency %s, max %.0f Mbps, n1/2 %s, 90%% at %s\n",
                result.transport.c_str(), lat, result.max_mbps,
                netpipe::format_bytes(result.half_performance_bytes).c_str(),
                netpipe::format_bytes(result.saturation_bytes).c_str());
  } else {
    netpipe::print_run(std::cout, result);
  }
  if (o.loggp) {
    netpipe::print_loggp(std::cout, result.transport,
                         netpipe::fit_loggp(result));
  }
  if (!o.dat_file.empty()) netpipe::write_dat(o.dat_file, result);
  if (!o.trace_file.empty()) {
    recorder.write_chrome_json(o.trace_file);
    if (!o.quiet) {
      std::printf("trace: %zu spans, %zu instants, %zu counter samples -> %s\n",
                  recorder.span_count(), recorder.instant_count(),
                  recorder.counter_count(), o.trace_file.c_str());
    }
  }
  if (o.auditor && result.audit) {
    const audit::Summary& s = *result.audit;
    std::printf("audit: %llu stream(s), %llu message(s) (%llu bytes) "
                "injected, %llu delivered, %llu violation(s)\n",
                static_cast<unsigned long long>(s.streams),
                static_cast<unsigned long long>(s.injected),
                static_cast<unsigned long long>(s.injected_bytes),
                static_cast<unsigned long long>(s.delivered),
                static_cast<unsigned long long>(s.violations));
    if (s.has_violations()) {
      std::fprintf(stderr, "%s", audit::report_text(s).c_str());
      return 4;
    }
  }
  return 0;
}
