// Figure-1-style comparison of every message-passing library on a chosen
// NIC, with the paper's tuning applied (or not).
//
//   ./compare_libraries [nic] [--untuned]
//       nic: ga620 | trendnet | sk9843-jumbo
//       --untuned: library defaults (the "before optimization" picture
//                  the paper says "would show drastically different
//                  results")
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"

using namespace pp;
using namespace pp::bench;

int main(int argc, char** argv) {
  std::string nic_name = "ga620";
  bool tuned = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--untuned") == 0) {
      tuned = false;
    } else {
      nic_name = argv[i];
    }
  }
  hw::HostConfig host = hw::presets::pentium4_pc();
  hw::NicConfig nic = hw::presets::netgear_ga620();
  if (nic_name == "trendnet") nic = hw::presets::trendnet_teg_pcitx();
  if (nic_name == "sk9843-jumbo") {
    nic = hw::presets::syskonnect_sk9843(9000);
    host = hw::presets::compaq_ds20();
  }
  const tcp::Sysctl sysctl = tuned ? tcp::Sysctl::tuned() : tcp::Sysctl{};

  std::vector<Curve> curves;
  curves.push_back(measure_on_bed(
      "raw TCP", host, nic, sysctl, [&](mp::PairBed& bed) {
        return raw_tcp_pair(bed, tuned ? 512 << 10 : 64 << 10);
      }));
  curves.push_back(measure_on_bed(
      "MPICH", host, nic, sysctl, [&](mp::PairBed& bed) {
        mp::MpichOptions o;
        if (tuned) o.p4_sockbufsize = 256 << 10;
        return hold_pair(mp::Mpich::create_pair(bed, o));
      }));
  curves.push_back(measure_on_bed(
      "LAM/MPI", host, nic, sysctl, [&](mp::PairBed& bed) {
        mp::LamOptions o;
        o.mode = tuned ? mp::LamMode::kC2cO : mp::LamMode::kC2c;
        return hold_pair(mp::Lam::create_pair(bed, o));
      }));
  curves.push_back(measure_on_bed(
      "MPI/Pro", host, nic, sysctl, [&](mp::PairBed& bed) {
        mp::MpiProOptions o;
        if (tuned) o.tcp_long = 128 << 10;
        return hold_pair(mp::MpiPro::create_pair(bed, o));
      }));
  curves.push_back(measure_on_bed(
      "MP_Lite", host, nic, sysctl, [&](mp::PairBed& bed) {
        return hold_pair(mp::MpLite::create_pair(bed));
      }));
  curves.push_back(measure_on_bed(
      "PVM", host, nic, sysctl, [&](mp::PairBed& bed) {
        mp::PvmOptions o;
        if (tuned) {
          o.route = mp::PvmRoute::kDirect;
          o.encoding = mp::PvmEncoding::kInPlace;
        }  // default: pvmd route with XDR packing
        return hold_pair(mp::Pvm::create_pair(bed, o));
      }));
  curves.push_back(measure_on_bed(
      "TCGMSG", host, nic, sysctl, [&](mp::PairBed& bed) {
        return hold_pair(mp::Tcgmsg::create_pair(bed, {}));
      }));

  print_figure(std::string("Library comparison on ") + nic_name +
                   (tuned ? " (tuned)" : " (library defaults)"),
               curves);
  if (!tuned) {
    std::cout << "\nThe paper, §8: 'A graph of the performance before "
                 "optimization would show drastically different results.'\n";
  }
  return 0;
}
