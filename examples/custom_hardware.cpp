// Custom hardware: define a hypothetical host and NIC from scratch and
// see what each message-passing library would deliver on it — the
// "evaluate a new GigE card before buying a rack of them" workflow the
// paper's §7 warns is necessary ("Great care must be taken in evaluating
// these new GigE cards").
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/tcgmsg.h"

using namespace pp;
using namespace pp::bench;

int main() {
  // A hypothetical next-generation node: faster memory, 64-bit PCI.
  hw::HostConfig host;
  host.name = "nextgen";
  host.copy_bandwidth = sim::Rate::megabytes(800);
  host.cached_copy_bandwidth = sim::Rate::megabytes(3000);
  host.pci_raw = sim::Rate::megabytes(528);  // 64-bit 66 MHz
  host.pci_width_bits = 64;
  host.pci_dma_setup = sim::microseconds(0.3);
  host.syscall_cost = sim::microseconds(0.5);
  host.wakeup_cost = sim::microseconds(1.5);
  host.proto_tx_cost = sim::microseconds(1.5);
  host.proto_rx_cost = sim::microseconds(2.0);

  // A speculative cheap 10x NIC with mediocre interrupt behaviour — the
  // "new wave" pattern the paper identified with the TrendNet cards.
  hw::NicConfig nic;
  nic.name = "hypothetical-10g";
  nic.link_rate = sim::Rate::gigabits(10.0);
  nic.mtu = 9000;
  nic.max_mtu = 9000;
  nic.pci64_capable = true;
  nic.pci_efficiency = 0.7;
  nic.driver_tx_cost = sim::microseconds(1.5);
  nic.driver_rx_cost = sim::microseconds(3.0);
  nic.sparse_irq_delay = sim::microseconds(15.0);
  nic.busy_irq_delay = sim::microseconds(500.0);  // cheap-card stalls

  const tcp::Sysctl sysctl = tcp::Sysctl::tuned(16 << 20);

  std::vector<Curve> curves;
  curves.push_back(measure_on_bed(
      "raw TCP 4M buf", host, nic, sysctl,
      [](mp::PairBed& bed) { return raw_tcp_pair(bed, 4 << 20); }));
  curves.push_back(measure_on_bed(
      "raw TCP 64k buf", host, nic, sysctl, [](mp::PairBed& bed) {
        return raw_tcp_pair(bed, 64 << 10, "raw TCP 64k buf");
      }));
  curves.push_back(measure_on_bed(
      "MPICH (defaults)", host, nic, sysctl, [](mp::PairBed& bed) {
        return hold_pair(mp::Mpich::create_pair(bed, {}));
      }));
  curves.push_back(measure_on_bed(
      "MP_Lite", host, nic, sysctl, [](mp::PairBed& bed) {
        return hold_pair(mp::MpLite::create_pair(bed));
      }));
  curves.push_back(measure_on_bed(
      "TCGMSG (32k hardwired)", host, nic, sysctl, [](mp::PairBed& bed) {
        return hold_pair(mp::Tcgmsg::create_pair(bed, {}));
      }));

  print_figure("Hypothetical 10 GigE card on a next-gen node", curves);

  std::cout
      << "\nReading: with ~0.5 ms receive-path stalls, even a 10 Gb link\n"
         "is socket-buffer-bound — default 64 kB buffers and TCGMSG's\n"
         "hard-wired 32 kB waste almost all of the extra wire speed,\n"
         "exactly the pattern the paper found on the 2002 TrendNet cards.\n";
  return 0;
}
