// Collectives on rings of growing size: the paper's introduction frames
// the communication rate as "the main limiting factor ... [for] the
// ability of applications to scale to large numbers of processors"; this
// example quantifies it for broadcast/allreduce over two libraries.
//
//   ./collectives_scaling [bytes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "mp/collectives.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/world.h"
#include "simhw/presets.h"

using namespace pp;

namespace {

template <typename L, typename... Args>
std::pair<double, double> ring_times_ms(int n, std::uint64_t bytes,
                                        Args&&... args) {
  auto run = [&](bool bcast) {
    mp::RingWorld world(n, hw::presets::pentium4_pc(),
                        hw::presets::netgear_ga620(), tcp::Sysctl::tuned());
    auto libs = world.template build<L>(args...);
    // Measure the last rank's completion, not the end of the simulation
    // (retransmission timers idle out ~40 ms after the traffic stops).
    sim::SimTime finished = 0;
    for (int i = 0; i < n; ++i) {
      mp::RingComm comm{libs[static_cast<std::size_t>(i)].get(), i, n};
      world.sim.spawn(
          [](mp::RingComm c, bool bcast, std::uint64_t b, sim::Simulator& s,
             sim::SimTime& fin) -> sim::Task<void> {
            if (bcast) {
              co_await mp::ring_broadcast(c, 0, b);
            } else {
              co_await mp::ring_allreduce(c, b);
            }
            fin = std::max(fin, s.now());
          }(comm, bcast, bytes, world.sim, finished),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    return sim::to_seconds(finished) * 1e3;
  };
  return {run(true), run(false)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t bytes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (4u << 20);
  std::printf("ring collectives of %llu bytes on P4/GA620 nodes\n",
              static_cast<unsigned long long>(bytes));
  std::printf("%6s | %12s %12s | %12s %12s\n", "ranks", "MP_Lite bcast",
              "allreduce", "MPICH bcast", "allreduce");
  for (int n : {2, 3, 4, 6, 8}) {
    const auto lite = ring_times_ms<mp::MpLite>(n, bytes);
    mp::MpichOptions opt;
    opt.p4_sockbufsize = 256 << 10;
    const auto mpich = ring_times_ms<mp::Mpich>(n, bytes, opt);
    std::printf("%6d | %9.1f ms %9.1f ms | %9.1f ms %9.1f ms\n", n,
                lite.first, lite.second, mpich.first, mpich.second);
  }
  std::puts(
      "\nreading: the pipelined broadcast stays near the point-to-point\n"
      "time as ranks grow; the ring allreduce approaches 2x one transfer\n"
      "of the vector. MPICH pays its staging-copy tax on every hop, so\n"
      "the gap to MP_Lite widens with the ring — the paper's per-link\n"
      "losses compound at application scale.");
  return 0;
}
