// minimize_plan: shrinks a failing fault plan to a 1-minimal reproducer.
//
// Feed it a pp.faultplan/1 file that makes a chaos scenario fail (the
// chaos sweep writes these for every bad run) and it ddmin-minimizes the
// rule list while the failure verdict reproduces, then writes the
// minimal plan — ready for `netpipe_cli --fault-plan`.
//
//   minimize_plan --scenario tcp --plan failing.plan [--out minimal.plan]
//                 [--target-verdict failed|hung|error|degraded]
//                 [--shards N] [--audit]
//
// Without --target-verdict the target is whatever verdict the input plan
// produces (it must be a bad one: failed, hung, error or degraded).
// --verdict is accepted as a synonym. Targeting `error` (or passing
// --audit) runs every probe under the delivery oracle (audit/audit.h),
// so plans whose only symptom is an oracle violation — corruption,
// duplication, unaccounted messages — minimize exactly like hangs.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "audit/audit.h"
#include "chaos/chaos.h"
#include "faults/minimize.h"
#include "faults/plan_io.h"

using namespace pp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario <tcp|mpich|gm|via> --plan <file>\n"
               "          [--out <file>] [--target-verdict <name>]\n"
               "          [--shards N] [--audit]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name, plan_path, out_path, verdict_name;
  int shards = 1;
  bool audit_on = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--scenario" && has_value) {
      scenario_name = argv[++i];
    } else if (arg == "--plan" && has_value) {
      plan_path = argv[++i];
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if ((arg == "--verdict" || arg == "--target-verdict") &&
               has_value) {
      verdict_name = argv[++i];
    } else if (arg == "--shards" && has_value) {
      shards = std::atoi(argv[++i]);
    } else if (arg == "--audit") {
      audit_on = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (scenario_name.empty() || plan_path.empty()) return usage(argv[0]);

  chaos::Scenario sc;
  if (!chaos::scenario_from_string(scenario_name, sc)) {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario_name.c_str());
    return 2;
  }
  if (out_path.empty()) out_path = plan_path + ".min";

  faults::FaultPlan plan;
  try {
    plan = faults::read_file(plan_path);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "--plan %s: %s\n", plan_path.c_str(), e.what());
    return 2;
  }
  // An `error` target implies the oracle: without it, a run whose only
  // defect is an audit violation classifies clean/recovered and the
  // ddmin oracle would never reproduce.
  if (verdict_name == "error") audit_on = true;
  const auto probe = [&](const faults::FaultPlan& p) {
    return audit_on ? chaos::run_verdict_audited(sc, p, shards)
                    : chaos::run_verdict(sc, p, shards);
  };
  const chaos::Verdict got = probe(plan);
  std::printf("input plan: %zu rule(s), verdict %s%s\n",
              plan.links.size() + plan.nics.size() + plan.hosts.size() +
                  plan.crashes.size(),
              chaos::to_string(got), audit_on ? " (audited)" : "");
  if (verdict_name.empty()) {
    if (got == chaos::Verdict::kClean || got == chaos::Verdict::kRecovered) {
      std::fprintf(stderr,
                   "nothing to minimize: the plan does not make the "
                   "scenario fail (verdict %s)\n",
                   chaos::to_string(got));
      return 1;
    }
    verdict_name = chaos::to_string(got);
  }

  const faults::Oracle oracle = [&](const faults::FaultPlan& candidate) {
    return verdict_name == chaos::to_string(probe(candidate));
  };

  faults::MinimizeResult r;
  try {
    r = faults::minimize(plan, oracle);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr,
                 "nothing to minimize: the plan's verdict is %s, not the "
                 "target '%s'\n",
                 chaos::to_string(got), verdict_name.c_str());
    return 1;
  }
  std::printf("minimized %zu -> %zu rule(s) in %d probe(s)\n",
              r.initial_rules, r.final_rules, r.probes);
  faults::write_file(out_path, r.plan);
  std::printf("wrote %s:\n%s", out_path.c_str(),
              faults::to_text(r.plan).c_str());
  return 0;
}
