// minimize_plan: shrinks a failing fault plan to a 1-minimal reproducer.
//
// Feed it a pp.faultplan/1 file that makes a chaos scenario fail (the
// chaos sweep writes these for every bad run) and it ddmin-minimizes the
// rule list while the failure verdict reproduces, then writes the
// minimal plan — ready for `netpipe_cli --fault-plan`.
//
//   minimize_plan --scenario tcp --plan failing.plan [--out minimal.plan]
//                 [--verdict failed|hung|error|degraded] [--shards N]
//
// Without --verdict the target is whatever verdict the input plan
// produces (it must be a bad one: failed, hung, error or degraded).
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "chaos/chaos.h"
#include "faults/minimize.h"
#include "faults/plan_io.h"

using namespace pp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario <tcp|mpich|gm|via> --plan <file>\n"
               "          [--out <file>] [--verdict <name>] [--shards N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name, plan_path, out_path, verdict_name;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--scenario" && has_value) {
      scenario_name = argv[++i];
    } else if (arg == "--plan" && has_value) {
      plan_path = argv[++i];
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg == "--verdict" && has_value) {
      verdict_name = argv[++i];
    } else if (arg == "--shards" && has_value) {
      shards = std::atoi(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (scenario_name.empty() || plan_path.empty()) return usage(argv[0]);

  chaos::Scenario sc;
  if (!chaos::scenario_from_string(scenario_name, sc)) {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario_name.c_str());
    return 2;
  }
  if (out_path.empty()) out_path = plan_path + ".min";

  faults::FaultPlan plan;
  try {
    plan = faults::read_file(plan_path);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "--plan %s: %s\n", plan_path.c_str(), e.what());
    return 2;
  }
  const chaos::Verdict got = chaos::run_verdict(sc, plan, shards);
  std::printf("input plan: %zu rule(s), verdict %s\n",
              plan.links.size() + plan.nics.size() + plan.hosts.size() +
                  plan.crashes.size(),
              chaos::to_string(got));
  if (verdict_name.empty()) {
    if (got == chaos::Verdict::kClean || got == chaos::Verdict::kRecovered) {
      std::fprintf(stderr,
                   "nothing to minimize: the plan does not make the "
                   "scenario fail (verdict %s)\n",
                   chaos::to_string(got));
      return 1;
    }
    verdict_name = chaos::to_string(got);
  }

  const faults::Oracle oracle = [&](const faults::FaultPlan& candidate) {
    return verdict_name ==
           chaos::to_string(chaos::run_verdict(sc, candidate, shards));
  };

  const faults::MinimizeResult r = faults::minimize(plan, oracle);
  std::printf("minimized %zu -> %zu rule(s) in %d probe(s)\n",
              r.initial_rules, r.final_rules, r.probes);
  faults::write_file(out_path, r.plan);
  std::printf("wrote %s:\n%s", out_path.c_str(),
              faults::to_text(r.plan).c_str());
  return 0;
}
