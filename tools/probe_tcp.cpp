// Calibration probe: raw TCP throughput/latency per NIC and buffer size.
#include <cstdio>
#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"
using namespace pp;
namespace presets = hw::presets;

double bulk(const hw::HostConfig& host, const hw::NicConfig& nic, std::uint32_t buf, std::uint64_t total) {
  sim::Simulator s; hw::Cluster c(s);
  auto& a = c.add_node(host); auto& b = c.add_node(host);
  auto link = c.connect(a, b, nic, presets::back_to_back());
  tcp::TcpStack sa(a, tcp::Sysctl::tuned()), sb(b, tcp::Sysctl::tuned());
  auto [xa, xb] = tcp::connect(sa, sb, link);
  xa.set_send_buffer(buf); xb.set_recv_buffer(buf);
  s.spawn([](tcp::Socket x, std::uint64_t t) -> sim::Task<void> { co_await x.send(t); }(xa, total), "tx");
  sim::SimTime done = 0;
  s.spawn([](tcp::Socket x, std::uint64_t t, sim::Simulator& s, sim::SimTime& d) -> sim::Task<void> {
    co_await x.recv_exact(t); d = s.now(); }(xb, total, s, done), "rx");
  s.run();
  return double(total) * 8.0 / sim::to_seconds(done) / 1e6;
}

double latency_us(const hw::HostConfig& host, const hw::NicConfig& nic) {
  sim::Simulator s; hw::Cluster c(s);
  auto& a = c.add_node(host); auto& b = c.add_node(host);
  auto link = c.connect(a, b, nic, presets::back_to_back());
  tcp::TcpStack sa(a, tcp::Sysctl::tuned()), sb(b, tcp::Sysctl::tuned());
  auto [xa, xb] = tcp::connect(sa, sb, link);
  static constexpr int reps = 20;
  sim::SimTime done = 0;
  s.spawn([](tcp::Socket x, sim::Simulator& sm, sim::SimTime& d) -> sim::Task<void> {
    for (int i = 0; i < reps; ++i) { co_await x.send(64); co_await x.recv_exact(64); }
    d = sm.now(); }(xa, s, done), "a");
  s.spawn([](tcp::Socket x) -> sim::Task<void> {
    for (int i = 0; i < reps; ++i) { co_await x.recv_exact(64); co_await x.send(64); } }(xb), "b");
  s.run();
  // Measure at completion: the retransmission timer idles out afterwards.
  return sim::to_microseconds(done) / (2.0 * reps);
}
int main() {
  struct Case { const char* name; hw::HostConfig h; hw::NicConfig n; };
  Case cases[] = {
    {"ga620/p4", presets::pentium4_pc(), presets::netgear_ga620()},
    {"trendnet/p4", presets::pentium4_pc(), presets::trendnet_teg_pcitx()},
    {"sk9843-1500/p4", presets::pentium4_pc(), presets::syskonnect_sk9843(1500)},
    {"sk9843-9000/p4", presets::pentium4_pc(), presets::syskonnect_sk9843(9000)},
    {"sk9843-9000/ds20", presets::compaq_ds20(), presets::syskonnect_sk9843(9000)},
  };
  std::printf("%-18s %9s | Mbps @ buf: 16k 32k 64k 128k 256k 512k 1M\n", "config", "lat(us)");
  for (auto& cse : cases) {
    std::printf("%-18s %9.1f |", cse.name, latency_us(cse.h, cse.n));
    for (std::uint32_t buf : {16u<<10, 32u<<10, 64u<<10, 128u<<10, 256u<<10, 512u<<10, 1u<<20})
      std::printf(" %6.0f", bulk(cse.h, cse.n, buf, 8<<20));
    std::printf("\n");
  }
  return 0;
}
