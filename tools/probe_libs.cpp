// Calibration probe: all message-passing libraries on one NIC (fig-1 style).
#include <cstdio>
#include <iostream>
#include "mp/adapters.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"
#include "mp/testbed.h"
#include "netpipe/modules.h"
#include "netpipe/report.h"
#include "netpipe/runner.h"
using namespace pp;
namespace presets = hw::presets;

netpipe::RunOptions fast_opts() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 8 << 20;
  o.repeats = 2; o.warmup = 1;
  return o;
}

template <typename MakeTransports>
netpipe::RunResult measure(const hw::HostConfig& host, const hw::NicConfig& nic, MakeTransports make) {
  mp::PairBed bed(host, nic, tcp::Sysctl::tuned());
  auto [ta, tb] = make(bed);
  return netpipe::run_netpipe(bed.sim, *ta, *tb, fast_opts());
}

int main(int argc, char** argv) {
  auto host = presets::pentium4_pc();
  auto nic = presets::netgear_ga620();
  if (argc > 1 && std::string(argv[1]) == "trendnet") nic = presets::trendnet_teg_pcitx();
  if (argc > 1 && std::string(argv[1]) == "ds20") { host = presets::compaq_ds20(); nic = presets::syskonnect_sk9843(9000); }

  struct Row { std::string name; netpipe::RunResult r; };
  std::vector<Row> rows;
  using TPtr = std::unique_ptr<netpipe::Transport>;

  // raw TCP (tuned 512 kB)
  rows.push_back({"raw TCP", measure(host, nic, [](mp::PairBed& bed) {
    auto [sa, sb] = bed.socket_pair("raw");
    sa.set_send_buffer(512<<10); sa.set_recv_buffer(512<<10);
    sb.set_send_buffer(512<<10); sb.set_recv_buffer(512<<10);
    return std::pair<TPtr,TPtr>{std::make_unique<netpipe::TcpTransport>(sa), std::make_unique<netpipe::TcpTransport>(sb)};
  })});

  auto lib_pair = [](auto pair_holder) {
    // keep libraries alive via shared ownership inside the transports
    struct Holder : netpipe::Transport {
      std::shared_ptr<void> keep; std::unique_ptr<mp::LibraryTransport> t;
      Holder(std::shared_ptr<void> k, mp::Library& l) : keep(std::move(k)), t(std::make_unique<mp::LibraryTransport>(l, l.rank() == 0 ? 1 : 0)) {}
      sim::Task<void> send(std::uint64_t b) override { return t->send(b); }
      sim::Task<void> recv(std::uint64_t b) override { return t->recv(b); }
      hw::Node& node() { return t->node(); }
      std::string name() const override { return t->name(); }
    };
    auto shared = std::make_shared<decltype(pair_holder)>(std::move(pair_holder));
    return std::pair<TPtr,TPtr>{std::make_unique<Holder>(shared, *shared->first), std::make_unique<Holder>(shared, *shared->second)};
  };

  rows.push_back({"MPICH tuned 256k", measure(host, nic, [&](mp::PairBed& bed) {
    mp::MpichOptions o; o.p4_sockbufsize = 256<<10;
    return lib_pair(mp::Mpich::create_pair(bed, o)); })});
  rows.push_back({"MPICH default 32k", measure(host, nic, [&](mp::PairBed& bed) {
    return lib_pair(mp::Mpich::create_pair(bed, {})); })});
  rows.push_back({"LAM -O", measure(host, nic, [&](mp::PairBed& bed) {
    mp::LamOptions o; o.mode = mp::LamMode::kC2cO;
    return lib_pair(mp::Lam::create_pair(bed, o)); })});
  rows.push_back({"LAM c2c", measure(host, nic, [&](mp::PairBed& bed) {
    mp::LamOptions o; o.mode = mp::LamMode::kC2c;
    return lib_pair(mp::Lam::create_pair(bed, o)); })});
  rows.push_back({"LAM lamd", measure(host, nic, [&](mp::PairBed& bed) {
    mp::LamOptions o; o.mode = mp::LamMode::kLamd;
    return lib_pair(mp::Lam::create_pair(bed, o)); })});
  rows.push_back({"MPI/Pro tuned", measure(host, nic, [&](mp::PairBed& bed) {
    mp::MpiProOptions o; o.tcp_long = 128<<10;
    return lib_pair(mp::MpiPro::create_pair(bed, o)); })});
  rows.push_back({"MP_Lite", measure(host, nic, [&](mp::PairBed& bed) {
    return lib_pair(mp::MpLite::create_pair(bed)); })});
  rows.push_back({"PVM direct inplace", measure(host, nic, [&](mp::PairBed& bed) {
    mp::PvmOptions o; o.route = mp::PvmRoute::kDirect; o.encoding = mp::PvmEncoding::kInPlace;
    return lib_pair(mp::Pvm::create_pair(bed, o)); })});
  rows.push_back({"PVM direct default", measure(host, nic, [&](mp::PairBed& bed) {
    mp::PvmOptions o; o.route = mp::PvmRoute::kDirect;
    return lib_pair(mp::Pvm::create_pair(bed, o)); })});
  rows.push_back({"PVM pvmd", measure(host, nic, [&](mp::PairBed& bed) {
    return lib_pair(mp::Pvm::create_pair(bed, {})); })});
  rows.push_back({"TCGMSG", measure(host, nic, [&](mp::PairBed& bed) {
    return lib_pair(mp::Tcgmsg::create_pair(bed, {})); })});
  rows.push_back({"TCGMSG 256k", measure(host, nic, [&](mp::PairBed& bed) {
    mp::TcgmsgOptions o; o.sr_sock_buf_size = 256<<10;
    return lib_pair(mp::Tcgmsg::create_pair(bed, o)); })});

  std::printf("%-20s %9s %9s %9s | Mbps@ 64k 128k 256k 1M 8M\n", "library", "lat(us)", "max", "sat");
  for (auto& row : rows) {
    std::printf("%-20s %9.1f %9.0f %9s |", row.name.c_str(), row.r.latency_us, row.r.max_mbps,
                netpipe::format_bytes(row.r.saturation_bytes).c_str());
    for (std::uint64_t s : {64ull<<10, 128ull<<10, 256ull<<10, 1ull<<20, 8ull<<20})
      std::printf(" %6.0f", row.r.mbps_at(s));
    std::printf("\n");
  }
  return 0;
}
