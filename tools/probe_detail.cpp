// Detailed single-run probe: utilization + ack accounting.
#include <cstdio>
#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"
using namespace pp;
namespace presets = hw::presets;
int main(int argc, char** argv) {
  std::uint32_t buf = argc > 1 ? std::atoi(argv[1]) : 65536;
  sim::Simulator s; hw::Cluster c(s);
  auto host = presets::pentium4_pc();
  auto nic = presets::netgear_ga620();
  auto& a = c.add_node(host); auto& b = c.add_node(host);
  auto link = c.connect(a, b, nic, presets::back_to_back());
  tcp::TcpStack sa(a, tcp::Sysctl::tuned()), sb(b, tcp::Sysctl::tuned());
  auto [xa, xb] = tcp::connect(sa, sb, link);
  xa.set_send_buffer(buf); xb.set_recv_buffer(buf);
  const std::uint64_t total = 8 << 20;
  s.spawn([](tcp::Socket x, std::uint64_t t) -> sim::Task<void> { co_await x.send(t); }(xa, total), "tx");
  sim::SimTime done = 0;
  s.spawn([](tcp::Socket x, std::uint64_t t, sim::Simulator& sm, sim::SimTime& d) -> sim::Task<void> {
    co_await x.recv_exact(t); d = sm.now(); }(xb, total, s, done), "rx");
  s.run();
  double secs = sim::to_seconds(done);
  std::printf("buf=%u thr=%.0f Mbps time=%.3f ms\n", buf, total*8.0/secs/1e6, secs*1e3);
  std::printf("sender cpu util=%.2f pci util=%.2f | recv cpu util=%.2f pci util=%.2f\n",
    a.cpu().utilization(), a.pci().utilization(), b.cpu().utilization(), b.pci().utilization());
  std::printf("fwd wire util=%.2f busy=%.3fms | segs=%llu acks_by_rx=%llu\n",
    link.forward.wire().utilization(), sim::to_seconds(link.forward.wire().stats().busy)*1e3,
    (unsigned long long)xa.stats().data_segments_sent, (unsigned long long)xb.stats().acks_sent);
  std::printf("sender cpu waited=%.3fms busy=%.3fms ops=%llu\n",
    sim::to_seconds(a.cpu().stats().waited)*1e3, sim::to_seconds(a.cpu().stats().busy)*1e3,
    (unsigned long long)a.cpu().stats().operations);
  std::printf("recv cpu waited=%.3fms busy=%.3fms ops=%llu\n",
    sim::to_seconds(b.cpu().stats().waited)*1e3, sim::to_seconds(b.cpu().stats().busy)*1e3,
    (unsigned long long)b.cpu().stats().operations);
  return 0;
}
