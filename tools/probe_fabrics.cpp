// Calibration probe for Figure 4 (Myrinet/GM) and Figure 5 (VIA).
#include <cstdio>
#include "gmsim/gm.h"
#include "mp/adapters.h"
#include "mp/gm_mpi.h"
#include "mp/via_mpi.h"
#include "netpipe/modules.h"
#include "netpipe/report.h"
#include "netpipe/runner.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"
#include "viasim/via.h"
using namespace pp;
namespace presets = hw::presets;

netpipe::RunOptions opts() { netpipe::RunOptions o; o.repeats = 2; return o; }

void print_row(const char* name, const netpipe::RunResult& r) {
  std::printf("%-18s %8.1f %8.0f |", name, r.latency_us, r.max_mbps);
  for (std::uint64_t s : {4ull<<10, 16ull<<10, 64ull<<10, 1ull<<20, 8ull<<20})
    std::printf(" %6.0f", r.mbps_at(s));
  std::printf("\n");
}

int main() {
  std::printf("%-18s %8s %8s | Mbps@ 4k 16k 64k 1M 8M\n", "transport", "lat(us)", "max");
  // raw GM + MPICH-GM + MPI/Pro-GM, per recv mode
  for (auto mode : {gm::RecvMode::kPolling, gm::RecvMode::kBlocking, gm::RecvMode::kHybrid}) {
    sim::Simulator s; hw::Cluster c(s);
    auto& a = c.add_node(presets::pentium4_pc());
    auto& b = c.add_node(presets::pentium4_pc());
    gm::GmConfig gc; gc.recv_mode = mode;
    gm::GmFabric fab(c, a, b, presets::myrinet_pci64a(), presets::back_to_back(), gc);
    mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
    auto r = netpipe::run_netpipe(s, ta, tb, opts());
    const char* mn = mode == gm::RecvMode::kPolling ? "raw GM polling" : mode == gm::RecvMode::kBlocking ? "raw GM blocking" : "raw GM hybrid";
    print_row(mn, r);
  }
  {
    sim::Simulator s; hw::Cluster c(s);
    auto& a = c.add_node(presets::pentium4_pc());
    auto& b = c.add_node(presets::pentium4_pc());
    gm::GmFabric fab(c, a, b, presets::myrinet_pci64a(), presets::back_to_back(), {});
    mp::GmMpi la(fab.port_a(), 0, mp::GmMpi::mpich_gm());
    mp::GmMpi lb(fab.port_b(), 1, mp::GmMpi::mpich_gm());
    mp::LibraryTransport ta(la, 1), tb(lb, 0);
    print_row("MPICH-GM", netpipe::run_netpipe(s, ta, tb, opts()));
  }
  {
    sim::Simulator s; hw::Cluster c(s);
    auto& a = c.add_node(presets::pentium4_pc());
    auto& b = c.add_node(presets::pentium4_pc());
    gm::GmFabric fab(c, a, b, presets::myrinet_pci64a(), presets::back_to_back(), {});
    mp::GmMpi la(fab.port_a(), 0, mp::GmMpi::mpipro_gm());
    mp::GmMpi lb(fab.port_b(), 1, mp::GmMpi::mpipro_gm());
    mp::LibraryTransport ta(la, 1), tb(lb, 0);
    print_row("MPI/Pro-GM", netpipe::run_netpipe(s, ta, tb, opts()));
  }
  // IP over GM (raw TCP over the myrinet ip path)
  {
    sim::Simulator s; hw::Cluster c(s);
    auto& a = c.add_node(presets::pentium4_pc());
    auto& b = c.add_node(presets::pentium4_pc());
    auto link = c.connect(a, b, presets::myrinet_ip_over_gm(), presets::back_to_back());
    tcp::TcpStack sa(a, tcp::Sysctl::tuned()), sb(b, tcp::Sysctl::tuned());
    auto [xa, xb] = tcp::connect(sa, sb, link);
    xa.set_send_buffer(512<<10); xa.set_recv_buffer(512<<10);
    xb.set_send_buffer(512<<10); xb.set_recv_buffer(512<<10);
    netpipe::TcpTransport ta(xa, "IP-GM"), tb(xb, "IP-GM");
    print_row("IP over GM", netpipe::run_netpipe(s, ta, tb, opts()));
  }
  // VIA: Giganet raw + MVICH + MP_Lite + MPI/Pro, then M-VIA
  auto via_run = [&](const char* label, bool giganet, mp::ViaMpiOptions const* lib) {
    sim::Simulator s; hw::Cluster c(s);
    auto& a = c.add_node(presets::pentium4_pc());
    auto& b = c.add_node(presets::pentium4_pc());
    via::ViaConfig vc;
    vc.personality = giganet ? via::ViaPersonality::giganet() : via::ViaPersonality::mvia_sk98lin();
    auto nic = giganet ? presets::giganet_clan() : presets::syskonnect_mvia();
    auto link_cfg = giganet ? presets::switched() : presets::back_to_back();
    via::ViaFabric fab(c, a, b, nic, link_cfg, vc);
    if (!lib) {
      mp::ViaTransport ta(fab.end_a()), tb(fab.end_b());
      print_row(label, netpipe::run_netpipe(s, ta, tb, opts()));
    } else {
      mp::ViaMpi la(fab.end_a(), 0, *lib), lb(fab.end_b(), 1, *lib);
      mp::LibraryTransport ta(la, 1), tb(lb, 0);
      print_row(label, netpipe::run_netpipe(s, ta, tb, opts()));
    }
  };
  via_run("raw VIA clan", true, nullptr);
  auto mvich = mp::ViaMpi::mvich();
  via_run("MVICH clan", true, &mvich);
  auto mplite = mp::ViaMpi::mplite_via();
  via_run("MP_Lite clan", true, &mplite);
  auto mpipro = mp::ViaMpi::mpipro_via();
  via_run("MPI/Pro clan", true, &mpipro);
  via_run("M-VIA raw sk", false, nullptr);
  via_run("MVICH M-VIA", false, &mvich);
  via_run("MP_Lite M-VIA", false, &mplite);
  return 0;
}
