// Unit, integration and property tests for the simulated TCP stack.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"

namespace pp {
namespace {

namespace presets = hw::presets;

/// Two nodes joined by one NIC model, with a connected socket pair.
struct Pair {
  explicit Pair(const hw::HostConfig& host = presets::pentium4_pc(),
                const hw::NicConfig& nic = presets::netgear_ga620(),
                const tcp::Sysctl& sysctl = {})
      : cluster(sim),
        a(cluster.add_node(host)),
        b(cluster.add_node(host)),
        link(cluster.connect(a, b, nic, presets::back_to_back())),
        stack_a(a, sysctl),
        stack_b(b, sysctl) {
    auto [sa, sb] = tcp::connect(stack_a, stack_b, link);
    sock_a = sa;
    sock_b = sb;
  }

  sim::Simulator sim;
  hw::Cluster cluster;
  hw::Node& a;
  hw::Node& b;
  hw::Cluster::Duplex link;
  tcp::TcpStack stack_a;
  tcp::TcpStack stack_b;
  tcp::Socket sock_a;
  tcp::Socket sock_b;
};

TEST(TcpSocket, BytesConservedAndTokensOrdered) {
  Pair p;
  const std::vector<std::uint64_t> sizes = {1, 100, 1459, 1460, 1461, 60000};
  p.sim.spawn(
      [](Pair& f, const std::vector<std::uint64_t>& sz) -> sim::Task<void> {
        for (std::size_t i = 0; i < sz.size(); ++i) {
          co_await f.sock_a.send(sz[i], /*token=*/i + 1);
        }
      }(p, sizes),
      "sender");
  std::vector<std::uint64_t> tokens;
  p.sim.spawn(
      [](Pair& f, const std::vector<std::uint64_t>& sz,
         std::vector<std::uint64_t>& tok) -> sim::Task<void> {
        for (std::uint64_t s : sz) {
          co_await f.sock_b.recv_exact(s);
          for (std::uint64_t t : f.sock_b.take_tokens()) tok.push_back(t);
        }
      }(p, sizes, tokens),
      "receiver");
  p.sim.run();
  EXPECT_EQ(tokens, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
  std::uint64_t total = 0;
  for (auto s : sizes) total += s;
  EXPECT_EQ(p.sock_b.stats().bytes_received, total);
  EXPECT_EQ(p.sock_a.stats().bytes_sent, total);
}

TEST(TcpSocket, SmallMessageLatencyIsMicroseconds) {
  Pair p;
  sim::SimTime arrival = 0;
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> { co_await f.sock_a.send(64); }(p),
      "sender");
  p.sim.spawn(
      [](Pair& f, sim::SimTime& t) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(64);
        t = f.sim.now();
      }(p, arrival),
      "receiver");
  p.sim.run();
  // Netgear GA620 path: should be on the order of the paper's ~120 us.
  EXPECT_GT(arrival, sim::microseconds(50));
  EXPECT_LT(arrival, sim::microseconds(250));
}

TEST(TcpSocket, SendBlocksUntilReceiverDrains) {
  Pair p;
  sim::SimTime send_done = -1;
  sim::SimTime recv_start = sim::seconds(1);
  p.sim.spawn(
      [](Pair& f, sim::SimTime& done) -> sim::Task<void> {
        co_await f.sock_a.send(1 << 20);  // 1 MB >> 64 kB buffers
        done = f.sim.now();
      }(p, send_done),
      "sender");
  p.sim.spawn(
      [](Pair& f, sim::SimTime& start) -> sim::Task<void> {
        co_await f.sim.delay(sim::milliseconds(50));
        start = f.sim.now();
        co_await f.sock_b.recv_exact(1 << 20);
      }(p, recv_start),
      "receiver");
  p.sim.run();
  // The sender cannot finish before the receiver starts draining.
  EXPECT_GT(send_done, recv_start);
}

TEST(TcpSocket, SetBufferClampedBySysctl) {
  Pair p;  // default sysctl: 64 kB caps
  p.sock_a.set_send_buffer(4 * 1024 * 1024);
  EXPECT_EQ(p.sock_a.send_buffer(), 65536u);
  tcp::Sysctl tuned = tcp::Sysctl::tuned();
  Pair q(presets::pentium4_pc(), presets::netgear_ga620(), tuned);
  q.sock_a.set_send_buffer(512 * 1024);
  EXPECT_EQ(q.sock_a.send_buffer(), 512u * 1024);
}

TEST(TcpSocket, MssFollowsNicMtu) {
  Pair p(presets::compaq_ds20(), presets::syskonnect_sk9843(9000));
  EXPECT_EQ(p.sock_a.mss(), 9000u - 40u);
  Pair q;
  EXPECT_EQ(q.sock_a.mss(), 1460u);
}

TEST(TcpSocket, BidirectionalSimultaneousTraffic) {
  Pair p;
  const std::uint64_t n = 200000;
  auto pump = [](tcp::Socket out, tcp::Socket in,
                 std::uint64_t bytes) -> sim::Task<void> {
    // Full-duplex: both sides send and receive concurrently.
    out.node().simulator().spawn(
        [](tcp::Socket s, std::uint64_t b) -> sim::Task<void> {
          co_await s.send(b);
        }(out, bytes),
        "tx");
    co_await in.recv_exact(bytes);
  };
  p.sim.spawn(pump(p.sock_a, p.sock_a, n), "a");
  p.sim.spawn(pump(p.sock_b, p.sock_b, n), "b");
  p.sim.run();
  EXPECT_EQ(p.sock_a.stats().bytes_received, n);
  EXPECT_EQ(p.sock_b.stats().bytes_received, n);
}

TEST(TcpSocket, AcksRoughlyEveryOtherSegment) {
  Pair p;
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> { co_await f.sock_a.send(300000); }(p),
      "sender");
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> { co_await f.sock_b.recv_exact(300000); }(
          p),
      "receiver");
  p.sim.run();
  const auto& tx = p.sock_a.stats();
  const auto& rx = p.sock_b.stats();
  EXPECT_GE(rx.acks_sent, tx.data_segments_sent / 3);
  EXPECT_LE(rx.acks_sent, tx.data_segments_sent);
}

/// Measures one-directional bulk throughput in Mbps for a given buffer
/// size on a given NIC.
double bulk_mbps(const hw::HostConfig& host, const hw::NicConfig& nic,
                 std::uint32_t buf_bytes, std::uint64_t total = 8 << 20) {
  tcp::Sysctl sysctl = tcp::Sysctl::tuned();
  Pair p(host, nic, sysctl);
  p.sock_a.set_send_buffer(buf_bytes);
  p.sock_b.set_recv_buffer(buf_bytes);
  p.sim.spawn(
      [](Pair& f, std::uint64_t t) -> sim::Task<void> {
        co_await f.sock_a.send(t);
      }(p, total),
      "sender");
  sim::SimTime done = 0;
  p.sim.spawn(
      [](Pair& f, std::uint64_t t, sim::SimTime& d) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(t);
        d = f.sim.now();
      }(p, total, done),
      "receiver");
  p.sim.run();
  return static_cast<double>(total) * 8.0 / sim::to_seconds(done) / 1e6;
}

TEST(TcpThroughput, MonotoneInSocketBufferSize) {
  double prev = 0.0;
  for (std::uint32_t buf : {16u << 10, 32u << 10, 64u << 10, 128u << 10,
                            256u << 10, 512u << 10}) {
    const double mbps =
        bulk_mbps(presets::pentium4_pc(), presets::trendnet_teg_pcitx(), buf,
                  2 << 20);
    EXPECT_GE(mbps, prev * 0.98) << "buffer " << buf;
    prev = mbps;
  }
}

TEST(TcpThroughput, TrendnetIsBufferStarvedAtDefaults) {
  const double small = bulk_mbps(presets::pentium4_pc(),
                                 presets::trendnet_teg_pcitx(), 64 << 10);
  const double large = bulk_mbps(presets::pentium4_pc(),
                                 presets::trendnet_teg_pcitx(), 512 << 10);
  // The paper: 290 Mbps at defaults, roughly doubling with 512 kB buffers.
  EXPECT_LT(small, 0.65 * large);
}

TEST(TcpThroughput, JumboFramesBeatStandardMtuOnSysKonnect) {
  const double std_mtu = bulk_mbps(presets::pentium4_pc(),
                                   presets::syskonnect_sk9843(1500), 512 << 10);
  const double jumbo = bulk_mbps(presets::pentium4_pc(),
                                 presets::syskonnect_sk9843(9000), 512 << 10);
  EXPECT_GT(jumbo, std_mtu * 1.15);
}

TEST(TcpSocket, MultipleConnectionsShareOneLink) {
  Pair p;
  auto [c2a, c2b] = tcp::connect(p.stack_a, p.stack_b, p.link, "tcp2");
  std::uint64_t got1 = 0, got2 = 0;
  p.sim.spawn(
      [](Pair& f, tcp::Socket s2) -> sim::Task<void> {
        co_await f.sock_a.send(50000, 7);
        co_await s2.send(30000, 9);
      }(p, c2a),
      "sender");
  p.sim.spawn(
      [](Pair& f, std::uint64_t& g) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(50000);
        g = f.sock_b.take_tokens().at(0);
      }(p, got1),
      "recv1");
  p.sim.spawn(
      [](tcp::Socket s2, std::uint64_t& g) -> sim::Task<void> {
        co_await s2.recv_exact(30000);
        g = s2.take_tokens().at(0);
      }(c2b, got2),
      "recv2");
  p.sim.run();
  EXPECT_EQ(got1, 7u);
  EXPECT_EQ(got2, 9u);
}

TEST(TcpSocket, DeterministicReplay) {
  auto once = [] {
    Pair p;
    p.sim.spawn(
        [](Pair& f) -> sim::Task<void> { co_await f.sock_a.send(777777); }(p),
        "s");
    p.sim.spawn(
        [](Pair& f) -> sim::Task<void> {
          co_await f.sock_b.recv_exact(777777);
        }(p),
        "r");
    p.sim.run();
    return std::pair{p.sim.now(), p.sim.events_processed()};
  };
  EXPECT_EQ(once(), once());
}

// Property sweep: conservation holds for arbitrary message sizes around
// segment boundaries.
class TcpConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpConservation, ExactDelivery) {
  Pair p;
  const std::uint64_t n = GetParam();
  p.sim.spawn(
      [](Pair& f, std::uint64_t n) -> sim::Task<void> {
        co_await f.sock_a.send(n, 42);
      }(p, n),
      "s");
  p.sim.spawn(
      [](Pair& f, std::uint64_t n) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(n);
      }(p, n),
      "r");
  p.sim.run();
  EXPECT_EQ(p.sock_b.stats().bytes_received, n);
  EXPECT_EQ(p.sock_b.take_tokens(), std::vector<std::uint64_t>{42});
}

INSTANTIATE_TEST_SUITE_P(SegmentBoundaries, TcpConservation,
                         ::testing::Values(1, 2, 1459, 1460, 1461, 2919, 2920,
                                           2921, 65535, 65536, 65537, 131072,
                                           1 << 20));


// ---- Fault injection: lossy links and retransmission ----------------------

/// A pair with loss injected on the forward direction.
struct LossyPair : Pair {
  explicit LossyPair(double loss, std::uint64_t seed = 7)
      : Pair(hw::presets::pentium4_pc(), hw::presets::netgear_ga620(),
             tcp::Sysctl::tuned()) {
    link.forward.set_loss(loss, seed);
  }
};

TEST(TcpLoss, TransferCompletesAndConservesBytesUnderLoss) {
  LossyPair p(0.02);
  const std::uint64_t total = 1 << 20;
  p.sim.spawn(
      [](Pair& f, std::uint64_t t) -> sim::Task<void> {
        co_await f.sock_a.send(t, 42);
      }(p, total),
      "sender");
  p.sim.spawn(
      [](Pair& f, std::uint64_t t) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(t);
      }(p, total),
      "receiver");
  p.sim.run();
  EXPECT_EQ(p.sock_b.stats().bytes_received, total);
  EXPECT_EQ(p.sock_b.take_tokens(), std::vector<std::uint64_t>{42});
  EXPECT_GT(p.link.forward.packets_dropped(), 0u);
  EXPECT_GT(p.sock_a.stats().retransmits, 0u);
}

TEST(TcpLoss, TokensStayOrderedAcrossRetransmissions) {
  LossyPair p(0.05, 99);
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> {
        for (std::uint64_t i = 1; i <= 20; ++i) {
          co_await f.sock_a.send(20000, i);
        }
      }(p),
      "sender");
  std::vector<std::uint64_t> tokens;
  p.sim.spawn(
      [](Pair& f, std::vector<std::uint64_t>& tok) -> sim::Task<void> {
        for (int i = 0; i < 20; ++i) {
          co_await f.sock_b.recv_exact(20000);
          for (auto t : f.sock_b.take_tokens()) tok.push_back(t);
        }
      }(p, tokens),
      "receiver");
  p.sim.run();
  ASSERT_EQ(tokens.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(tokens[i], i + 1);
}

TEST(TcpLoss, ThroughputDegradesMonotonicallyWithLossRate) {
  auto mbps_at_loss = [](double loss) {
    LossyPair p(loss, 5);
    p.sock_a.set_send_buffer(256 << 10);
    p.sock_b.set_recv_buffer(256 << 10);
    const std::uint64_t total = 2 << 20;
    p.sim.spawn(
        [](Pair& f, std::uint64_t t) -> sim::Task<void> {
          co_await f.sock_a.send(t);
        }(p, total),
        "tx");
    sim::SimTime done = 0;
    p.sim.spawn(
        [](Pair& f, std::uint64_t t, sim::SimTime& d) -> sim::Task<void> {
          co_await f.sock_b.recv_exact(t);
          d = f.sim.now();
        }(p, total, done),
        "rx");
    p.sim.run();
    return static_cast<double>(total) * 8.0 / sim::to_seconds(done) / 1e6;
  };
  const double clean = mbps_at_loss(0.0);
  const double light = mbps_at_loss(0.005);
  const double heavy = mbps_at_loss(0.05);
  EXPECT_GT(clean, light);
  EXPECT_GT(light, heavy);
}

TEST(TcpLoss, FastRetransmitRecoversWithoutFullTimeout) {
  // With plenty of traffic behind a single loss, duplicate ACKs should
  // recover the stream well before the 40 ms RTO.
  LossyPair p(0.01, 3);
  p.sock_a.set_send_buffer(256 << 10);
  p.sock_b.set_recv_buffer(256 << 10);
  const std::uint64_t total = 4 << 20;
  p.sim.spawn(
      [](Pair& f, std::uint64_t t) -> sim::Task<void> {
        co_await f.sock_a.send(t);
      }(p, total),
      "tx");
  p.sim.spawn(
      [](Pair& f, std::uint64_t t) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(t);
      }(p, total),
      "rx");
  p.sim.run();
  EXPECT_GT(p.sock_a.stats().fast_retransmits, 0u);
  EXPECT_GT(p.sock_b.stats().out_of_order_dropped, 0u);
}

TEST(TcpLoss, LosslessLinkNeverRetransmits) {
  Pair p;
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> { co_await f.sock_a.send(4 << 20); }(p),
      "tx");
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(4 << 20);
      }(p),
      "rx");
  p.sim.run();
  EXPECT_EQ(p.sock_a.stats().retransmits, 0u);
  EXPECT_EQ(p.sock_a.stats().fast_retransmits, 0u);
  EXPECT_EQ(p.sock_b.stats().out_of_order_dropped, 0u);
}

TEST(TcpLoss, DeterministicUnderLoss) {
  auto once = [] {
    LossyPair p(0.02, 11);
    p.sim.spawn(
        [](Pair& f) -> sim::Task<void> { co_await f.sock_a.send(500000); }(p),
        "tx");
    p.sim.spawn(
        [](Pair& f) -> sim::Task<void> {
          co_await f.sock_b.recv_exact(500000);
        }(p),
        "rx");
    p.sim.run();
    return std::pair{p.sim.now(), p.sock_a.stats().retransmits};
  };
  EXPECT_EQ(once(), once());
}


// ---- Congestion control ----------------------------------------------------

TEST(TcpCongestion, SlowStartMakesTheFirstTransferSlower) {
  // Two identical 256 kB transfers on one connection: the first carries
  // the slow-start penalty, the second runs on a grown cwnd.
  Pair p(presets::pentium4_pc(), presets::netgear_ga620(),
         tcp::Sysctl::tuned());
  p.sock_a.set_send_buffer(512 << 10);
  p.sock_b.set_recv_buffer(512 << 10);
  std::vector<sim::SimTime> durations;
  p.sim.spawn(
      [](Pair& f, std::vector<sim::SimTime>& out) -> sim::Task<void> {
        for (int i = 0; i < 2; ++i) {
          const sim::SimTime t0 = f.sim.now();
          co_await f.sock_a.send(256 << 10);
          co_await f.sock_a.recv_exact(4);  // app-level ack
          out.push_back(f.sim.now() - t0);
        }
      }(p, durations),
      "tx");
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> {
        for (int i = 0; i < 2; ++i) {
          co_await f.sock_b.recv_exact(256 << 10);
          co_await f.sock_b.send(4);
        }
      }(p),
      "rx");
  p.sim.run();
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_GT(durations[0], durations[1] + sim::microseconds(200));
}

TEST(TcpCongestion, DisablingRestoresPureFlowControl) {
  tcp::Sysctl no_cc = tcp::Sysctl::tuned();
  no_cc.congestion_control = false;
  Pair p(presets::pentium4_pc(), presets::netgear_ga620(), no_cc);
  p.sock_a.set_send_buffer(512 << 10);
  p.sock_b.set_recv_buffer(512 << 10);
  std::vector<sim::SimTime> durations;
  p.sim.spawn(
      [](Pair& f, std::vector<sim::SimTime>& out) -> sim::Task<void> {
        for (int i = 0; i < 2; ++i) {
          const sim::SimTime t0 = f.sim.now();
          co_await f.sock_a.send(256 << 10);
          co_await f.sock_a.recv_exact(4);
          out.push_back(f.sim.now() - t0);
        }
      }(p, durations),
      "tx");
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> {
        for (int i = 0; i < 2; ++i) {
          co_await f.sock_b.recv_exact(256 << 10);
          co_await f.sock_b.send(4);
        }
      }(p),
      "rx");
  p.sim.run();
  // Without slow start the two transfers cost (almost) the same.
  EXPECT_LT(durations[0], durations[1] + sim::microseconds(150));
}

TEST(TcpCongestion, LossShrinksThroughputMoreWithCcThanWithout) {
  auto mbps = [](bool cc, double loss) {
    tcp::Sysctl sysctl = tcp::Sysctl::tuned();
    sysctl.congestion_control = cc;
    Pair p(presets::pentium4_pc(), presets::netgear_ga620(), sysctl);
    p.link.forward.set_loss(loss, 23);
    p.sock_a.set_send_buffer(512 << 10);
    p.sock_b.set_recv_buffer(512 << 10);
    const std::uint64_t total = 4 << 20;
    p.sim.spawn(
        [](Pair& f, std::uint64_t t) -> sim::Task<void> {
          co_await f.sock_a.send(t);
        }(p, total),
        "tx");
    sim::SimTime done = 0;
    p.sim.spawn(
        [](Pair& f, std::uint64_t t, sim::SimTime& d) -> sim::Task<void> {
          co_await f.sock_b.recv_exact(t);
          d = f.sim.now();
        }(p, total, done),
        "rx");
    p.sim.run();
    return static_cast<double>(total) * 8.0 / sim::to_seconds(done) / 1e6;
  };
  // With a go-back-N sender, every loss costs a whole flight: shrinking
  // the flight via multiplicative decrease *saves* goodput under loss —
  // the original congestion-collapse lesson, visible in miniature.
  EXPECT_GT(mbps(true, 0.01), 2.0 * mbps(false, 0.01));
  // And without loss the two behave the same at steady state.
  EXPECT_NEAR(mbps(true, 0.0) / mbps(false, 0.0), 1.0, 0.05);
}


// ---- Cross-NIC property sweeps ---------------------------------------------

struct NicCase {
  const char* name;
  hw::NicConfig nic;
};

class PerNicProperties : public ::testing::TestWithParam<NicCase> {};

TEST_P(PerNicProperties, BulkThroughputWithinPhysicalBounds) {
  const auto& nic = GetParam().nic;
  const double mbps =
      bulk_mbps(presets::pentium4_pc(), nic, 512 << 10, 4 << 20);
  EXPECT_GT(mbps, 10.0);
  EXPECT_LT(mbps, nic.link_rate.mbps());  // can't beat the wire
}

TEST_P(PerNicProperties, ThroughputMonotoneInBufferSize) {
  const auto& nic = GetParam().nic;
  double prev = 0.0;
  for (std::uint32_t buf : {32u << 10, 128u << 10, 512u << 10}) {
    const double mbps = bulk_mbps(presets::pentium4_pc(), nic, buf, 2 << 20);
    EXPECT_GE(mbps, prev * 0.97) << GetParam().name << " buf " << buf;
    prev = mbps;
  }
}

TEST_P(PerNicProperties, ConservationAndOrderHold) {
  Pair p(presets::pentium4_pc(), GetParam().nic, tcp::Sysctl::tuned());
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> {
        for (std::uint64_t i = 1; i <= 5; ++i) {
          co_await f.sock_a.send(50000, i);
        }
      }(p),
      "tx");
  std::vector<std::uint64_t> tokens;
  p.sim.spawn(
      [](Pair& f, std::vector<std::uint64_t>& tok) -> sim::Task<void> {
        for (int i = 0; i < 5; ++i) {
          co_await f.sock_b.recv_exact(50000);
          for (auto t : f.sock_b.take_tokens()) tok.push_back(t);
        }
      }(p, tokens),
      "rx");
  p.sim.run();
  EXPECT_EQ(tokens, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST_P(PerNicProperties, LatencyBelowThroughputSaturationTime) {
  Pair p(presets::pentium4_pc(), GetParam().nic, tcp::Sysctl::tuned());
  sim::SimTime done = 0;
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> { co_await f.sock_a.send(64); }(p),
      "tx");
  p.sim.spawn(
      [](Pair& f, sim::SimTime& d) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(64);
        d = f.sim.now();
      }(p, done),
      "rx");
  p.sim.run();
  EXPECT_GT(done, sim::microseconds(5));
  EXPECT_LT(done, sim::milliseconds(1));
}

// ---- Teardown: timer callbacks must not outlive their endpoints -----------

TEST(TcpTeardown, PendingTimersAfterConnectionTeardownAreHarmless) {
  sim::Simulator sim;
  hw::Cluster cluster(sim);
  hw::Node& a = cluster.add_node(presets::pentium4_pc());
  hw::Node& b = cluster.add_node(presets::pentium4_pc());
  hw::Cluster::Duplex link =
      cluster.connect(a, b, presets::netgear_ga620(), presets::back_to_back());
  {
    tcp::TcpStack stack_a(a, tcp::Sysctl::tuned());
    tcp::TcpStack stack_b(b, tcp::Sysctl::tuned());
    auto [sa, sb] = tcp::connect(stack_a, stack_b, link);
    bool sent = false, received = false;
    sim.spawn(
        [](tcp::Socket& s, bool& done) -> sim::Task<void> {
          co_await s.send(1);
          done = true;
        }(sa, sent),
        "sender");
    sim.spawn(
        [](tcp::Socket& s, bool& done) -> sim::Task<void> {
          co_await s.recv_exact(1);
          done = true;
        }(sb, received),
        "receiver");
    // Stop after the transfer but while the sender's RTO watchdog
    // (default 40 ms) and the receiver's delayed-ACK flush (300 us) are
    // still queued.
    const bool events_remain = sim.run_until(sim::microseconds(250));
    ASSERT_TRUE(sent);
    ASSERT_TRUE(received);
    ASSERT_TRUE(events_remain);
  }
  // Sockets and stacks — the endpoints' owners — are gone; draining the
  // queue now fires the orphaned timer callbacks. They must detect the
  // teardown through their liveness guards instead of dereferencing the
  // freed endpoints (ASan reports heap-use-after-free here without the
  // guards).
  sim.run();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    AllNics, PerNicProperties,
    ::testing::Values(NicCase{"ga620", presets::netgear_ga620()},
                      NicCase{"trendnet", presets::trendnet_teg_pcitx()},
                      NicCase{"ga622", presets::netgear_ga622()},
                      NicCase{"sk9843", presets::syskonnect_sk9843(1500)},
                      NicCase{"sk9843j", presets::syskonnect_sk9843(9000)},
                      NicCase{"ipgm", presets::myrinet_ip_over_gm()},
                      NicCase{"fe100", presets::fast_ethernet()}),
    [](const ::testing::TestParamInfo<NicCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace pp
