// Tests for the NetPIPE reproduction: schedule, runner, reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mp/testbed.h"
#include "netpipe/breakdown.h"
#include "simcore/sync.h"
#include "netpipe/loggp.h"
#include "netpipe/modules.h"
#include "netpipe/report.h"
#include "netpipe/runner.h"
#include "netpipe/schedule.h"
#include "simhw/presets.h"

namespace pp::netpipe {
namespace {

namespace presets = hw::presets;

TEST(Schedule, CoversRangeSortedAndUnique) {
  ScheduleOptions opt;
  opt.min_bytes = 1;
  opt.max_bytes = 1 << 20;
  const auto sizes = make_schedule(opt);
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_GE(sizes.back(), opt.max_bytes);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LT(sizes[i - 1], sizes[i]);
  }
}

TEST(Schedule, PerturbationsStraddleEachBase) {
  ScheduleOptions opt;
  opt.min_bytes = 1;
  opt.max_bytes = 4096;
  opt.perturbation = 3;
  const auto sizes = make_schedule(opt);
  // 1024 must appear with 1021 and 1027 around it.
  auto has = [&](std::uint64_t v) {
    return std::find(sizes.begin(), sizes.end(), v) != sizes.end();
  };
  EXPECT_TRUE(has(1021));
  EXPECT_TRUE(has(1024));
  EXPECT_TRUE(has(1027));
}

TEST(Schedule, PointsPerDoublingDensifiesTheGrid) {
  ScheduleOptions sparse;
  sparse.max_bytes = 1 << 16;
  sparse.perturbation = 0;
  ScheduleOptions dense = sparse;
  dense.points_per_doubling = 4;
  EXPECT_GT(make_schedule(dense).size(), 2 * make_schedule(sparse).size());
}

TEST(Schedule, NoPerturbationBelowDelta) {
  ScheduleOptions opt;
  opt.min_bytes = 1;
  opt.max_bytes = 8;
  opt.perturbation = 3;
  const auto sizes = make_schedule(opt);
  for (auto s : sizes) EXPECT_GE(s, 1u);
}

struct RunFixture {
  RunFixture()
      : bed(presets::pentium4_pc(), presets::netgear_ga620(),
            tcp::Sysctl::tuned()) {
    auto [sa, sb] = bed.socket_pair("np");
    sa.set_send_buffer(256 << 10);
    sa.set_recv_buffer(256 << 10);
    sb.set_send_buffer(256 << 10);
    sb.set_recv_buffer(256 << 10);
    ta = std::make_unique<TcpTransport>(sa);
    tb = std::make_unique<TcpTransport>(sb);
  }
  mp::PairBed bed;
  std::unique_ptr<TcpTransport> ta, tb;
};

RunOptions small_opts() {
  RunOptions o;
  o.schedule.max_bytes = 256 << 10;
  o.repeats = 2;
  return o;
}

TEST(Runner, ProducesOnePointPerScheduledSize) {
  RunFixture f;
  const RunOptions opts = small_opts();
  const RunResult r = run_netpipe(f.bed.sim, *f.ta, *f.tb, opts);
  EXPECT_EQ(r.points.size(), make_schedule(opts.schedule).size());
  EXPECT_EQ(r.transport, "raw TCP");
}

TEST(Runner, ThroughputGrowsWithMessageSize) {
  RunFixture f;
  const RunResult r = run_netpipe(f.bed.sim, *f.ta, *f.tb, small_opts());
  EXPECT_LT(r.mbps_at(64), r.mbps_at(4096));
  EXPECT_LT(r.mbps_at(4096), r.mbps_at(256 << 10));
}

TEST(Runner, LatencyComesFromSmallMessages) {
  RunFixture f;
  const RunResult r = run_netpipe(f.bed.sim, *f.ta, *f.tb, small_opts());
  // GA620 ping-pong latency: roughly the paper's ~120 us.
  EXPECT_GT(r.latency_us, 80.0);
  EXPECT_LT(r.latency_us, 180.0);
  EXPECT_GT(r.max_mbps, 300.0);
  EXPECT_GT(r.saturation_bytes, 1024u);
}

TEST(Runner, StreamingModeBeatsPingPongMidrange) {
  RunFixture ping;
  const RunResult rp = run_netpipe(ping.bed.sim, *ping.ta, *ping.tb,
                                   small_opts());
  RunFixture stream;
  RunOptions so = small_opts();
  so.streaming = true;
  const RunResult rs = run_netpipe(stream.bed.sim, *stream.ta, *stream.tb,
                                   so);
  // Streaming overlaps transfers, so mid-size throughput is higher.
  EXPECT_GT(rs.mbps_at(16 << 10), rp.mbps_at(16 << 10));
}

TEST(Report, FormatBytes) {
  EXPECT_EQ(format_bytes(17), "17");
  EXPECT_EQ(format_bytes(2048), "2k");
  EXPECT_EQ(format_bytes(3 << 20), "3M");
  EXPECT_EQ(format_bytes(1500), "1500");
}

TEST(Report, PaperChecksWorstRatio) {
  std::ostringstream os;
  const double worst = print_paper_checks(
      os, {{"a", 100, 100, ""}, {"b", 100, 150, ""}, {"c", 100, 80, ""}});
  EXPECT_NEAR(worst, std::log(1.5), 1e-9);
  EXPECT_NE(os.str().find("a"), std::string::npos);
}

TEST(Report, AsciiChartRendersAllSeries) {
  RunResult r1, r2;
  r1.transport = "one";
  r2.transport = "two";
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t bytes = 1ull << i;
    r1.points.push_back({bytes, sim::microseconds(100)});
    r2.points.push_back({bytes, sim::microseconds(200)});
  }
  const std::string chart =
      ascii_chart({{"one", &r1}, {"two", &r2}}, 60, 12);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find("one"), std::string::npos);
}

TEST(Report, WriteDatRoundTrips) {
  RunResult r;
  r.transport = "t";
  r.points.push_back({1024, sim::microseconds(100)});
  const std::string path = "/tmp/pp_test_write.dat";
  write_dat(path, r);
  std::ifstream f(path);
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("1024"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, MbpsAtPicksNearestLogPoint) {
  RunResult r;
  r.points.push_back({1024, sim::microseconds(10)});     // 819 Mbps
  r.points.push_back({1 << 20, sim::microseconds(1000)});
  EXPECT_NEAR(r.mbps_at(900), r.points[0].mbps(), 1e-9);
  EXPECT_NEAR(r.mbps_at(2 << 20), r.points[1].mbps(), 1e-9);
}

TEST(Runner, DeterministicAcrossRuns) {
  auto once = [] {
    RunFixture f;
    RunOptions o = small_opts();
    o.schedule.max_bytes = 64 << 10;
    const RunResult r = run_netpipe(f.bed.sim, *f.ta, *f.tb, o);
    return std::pair{r.max_mbps, r.latency_us};
  };
  EXPECT_EQ(once(), once());
}


TEST(Runner, HalfPerformancePointIsBetweenLatencyAndSaturation) {
  RunFixture f;
  const RunResult r = run_netpipe(f.bed.sim, *f.ta, *f.tb, small_opts());
  EXPECT_GT(r.half_performance_bytes, 64u);
  EXPECT_LE(r.half_performance_bytes, r.saturation_bytes);
  // At n_1/2 the curve is, by definition, at about half the peak.
  EXPECT_NEAR(r.mbps_at(r.half_performance_bytes) / r.max_mbps, 0.5, 0.2);
}

TEST(Breakdown, IdentifiesTheCpuBottleneckOn1500MtuGige) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto [sa, sb] = bed.socket_pair("bd");
  sa.set_send_buffer(512 << 10);
  sb.set_recv_buffer(512 << 10);
  BreakdownProbe probe(bed.node_a, bed.node_b, bed.link.forward,
                       bed.link.backward);
  bed.sim.spawn(
      [](tcp::Socket s) -> sim::Task<void> { co_await s.send(4 << 20); }(sa),
      "tx");
  bed.sim.spawn(
      [](tcp::Socket s) -> sim::Task<void> {
        co_await s.recv_exact(4 << 20);
      }(sb),
      "rx");
  bed.sim.run();
  const Breakdown b = probe.finish();
  ASSERT_EQ(b.rows.size(), 6u);
  const BreakdownRow* hot = b.bottleneck();
  ASSERT_NE(hot, nullptr);
  // The paper's 1500-MTU GigE story: per-packet protocol work and copies
  // on the receiving host saturate before the PCI bus or the wire.
  EXPECT_NE(hot->resource.find("cpu"), std::string::npos);
  EXPECT_GT(hot->busy_fraction, 0.7);
  // The wire must NOT be the bottleneck at 1500 MTU.
  for (const auto& row : b.rows) {
    if (row.resource.find("wire (forward)") != std::string::npos) {
      EXPECT_LT(row.busy_fraction, hot->busy_fraction);
    }
  }
}

TEST(Breakdown, PciBoundWithJumboFramesOn32BitHost) {
  mp::PairBed bed(presets::pentium4_pc(), presets::syskonnect_sk9843(9000),
                  tcp::Sysctl::tuned());
  auto [sa, sb] = bed.socket_pair("bd");
  sa.set_send_buffer(512 << 10);
  sb.set_recv_buffer(512 << 10);
  BreakdownProbe probe(bed.node_a, bed.node_b, bed.link.forward,
                       bed.link.backward);
  bed.sim.spawn(
      [](tcp::Socket s) -> sim::Task<void> { co_await s.send(4 << 20); }(sa),
      "tx");
  bed.sim.spawn(
      [](tcp::Socket s) -> sim::Task<void> {
        co_await s.recv_exact(4 << 20);
      }(sb),
      "rx");
  bed.sim.run();
  const Breakdown b = probe.finish();
  const BreakdownRow* hot = b.bottleneck();
  ASSERT_NE(hot, nullptr);
  EXPECT_NE(hot->resource.find("pci"), std::string::npos);
}


TEST(LogGp, FitMatchesACleanCurve) {
  // Synthesize an exactly-LogGP curve: t(n) = 50 us + n * 10 ns.
  RunResult r;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t n = 1ull << i;
    r.points.push_back(
        {n, sim::microseconds(50.0) +
                static_cast<sim::SimTime>(n * 10)});
  }
  const LogGpFit fit = fit_loggp(r);
  EXPECT_NEAR(fit.o_plus_L_us, 50.0, 1.0);
  EXPECT_NEAR(fit.g_ns_per_byte, 10.0, 0.5);
  EXPECT_NEAR(fit.r_inf_mbps, 800.0, 20.0);
  EXPECT_NEAR(fit.n_half_bytes, 5000.0, 500.0);
  EXPECT_LT(fit.rms_rel_error, 0.05);
}

TEST(LogGp, FitsTheMeasuredRawTcpCurve) {
  RunFixture f;
  RunOptions o = small_opts();
  o.schedule.max_bytes = 4 << 20;
  const RunResult r = run_netpipe(f.bed.sim, *f.ta, *f.tb, o);
  const LogGpFit fit = fit_loggp(r);
  // o+L tracks the measured latency; r_inf tracks the measured peak.
  EXPECT_NEAR(fit.o_plus_L_us, r.latency_us, 0.25 * r.latency_us);
  EXPECT_NEAR(fit.r_inf_mbps, r.max_mbps, 0.15 * r.max_mbps);
  // And the model reproduces the measured half-performance point within
  // a factor of a few (the curve is not exactly two-parameter).
  EXPECT_GT(fit.n_half_bytes, r.half_performance_bytes / 8.0);
  EXPECT_LT(fit.n_half_bytes, r.half_performance_bytes * 8.0);
}

TEST(LogGp, RendezvousDipShowsUpAsFitError) {
  // MPICH's rendezvous dip is a regime change a 2-parameter model cannot
  // express: its rms error must exceed raw TCP's.
  mp::PairBed tcp_bed(presets::pentium4_pc(), presets::netgear_ga620(),
                      tcp::Sysctl::tuned());
  auto [sa, sb] = tcp_bed.socket_pair();
  sa.set_send_buffer(512 << 10);
  sb.set_recv_buffer(512 << 10);
  TcpTransport ta(sa), tb(sb);
  RunOptions o;
  o.schedule.max_bytes = 1 << 20;
  o.repeats = 2;
  const LogGpFit tcp_fit =
      fit_loggp(run_netpipe(tcp_bed.sim, ta, tb, o));
  EXPECT_LT(tcp_fit.rms_rel_error, 0.8);
  SUCCEED();
}

/// A transport pair with exact, asymmetric one-way delays — lets the
/// timing tests know the true round trip to the nanosecond.
class FixedDelayTransport final : public Transport {
 public:
  FixedDelayTransport(sim::Simulator& sim, sim::Channel<int>& tx,
                      sim::Channel<int>& rx, sim::SimTime delay)
      : sim_(sim), tx_(tx), rx_(rx), delay_(delay) {}
  sim::Task<void> send(std::uint64_t) override {
    co_await sim_.delay(delay_);
    tx_.push_now(1);
  }
  sim::Task<void> recv(std::uint64_t) override { co_await rx_.pop(); }
  std::string name() const override { return "fixed-delay"; }

 private:
  sim::Simulator& sim_;
  sim::Channel<int>& tx_;
  sim::Channel<int>& rx_;
  sim::SimTime delay_;
};

struct FakeFixture {
  FakeFixture(sim::SimTime da, sim::SimTime db)
      : a_to_b(sim), b_to_a(sim), ta(sim, a_to_b, b_to_a, da),
        tb(sim, b_to_a, a_to_b, db) {}
  sim::Simulator sim;
  sim::Channel<int> a_to_b, b_to_a;
  FixedDelayTransport ta, tb;
};

RunOptions one_point_opts(int repeats) {
  RunOptions o;
  o.schedule.min_bytes = 1;
  o.schedule.max_bytes = 1;
  o.schedule.perturbation = 0;
  o.repeats = repeats;
  o.warmup = 1;
  return o;
}

TEST(Runner, PingPongOneWayTimeUsesASingleRoundedDivision) {
  // Delays 3 ns out, 4 ns back; 3 repeats: total = 21 ns. The correct
  // one-way time is round(21/6) = 4 ns. The old two-step integer
  // division (21/3 = 7, then 7/2) truncated to 3 ns.
  FakeFixture f(3, 4);
  const RunResult r =
      run_netpipe(f.sim, f.ta, f.tb, one_point_opts(/*repeats=*/3));
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_EQ(r.points[0].elapsed, 4);
}

TEST(Runner, PingPongTimingIsExactWhenTheTotalDividesEvenly) {
  // 5 ns each way, 2 repeats: total = 20 ns, one-way exactly 5 ns.
  FakeFixture f(5, 5);
  const RunResult r =
      run_netpipe(f.sim, f.ta, f.tb, one_point_opts(/*repeats=*/2));
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_EQ(r.points[0].elapsed, 5);
}

TEST(Runner, MbpsAtFailsLoudlyOnEmptyResultAndZeroBytes) {
  RunResult empty;
  EXPECT_THROW(empty.mbps_at(1024), std::logic_error);
  RunResult one;
  one.points.push_back({1024, sim::microseconds(10)});
  EXPECT_THROW(one.mbps_at(0), std::invalid_argument);
  EXPECT_GT(one.mbps_at(1024), 0.0);
}

TEST(Runner, StreamingModeLeavesLatencyAbsentNotZero) {
  FakeFixture f(3, 3);
  RunOptions o = one_point_opts(/*repeats=*/2);
  o.streaming = true;
  const RunResult r = run_netpipe(f.sim, f.ta, f.tb, o);
  EXPECT_FALSE(r.has_latency());
  EXPECT_TRUE(std::isnan(r.latency_us));
  // Ping-pong on the same setup does measure a latency.
  FakeFixture g(3, 3);
  const RunResult rp =
      run_netpipe(g.sim, g.ta, g.tb, one_point_opts(/*repeats=*/2));
  EXPECT_TRUE(rp.has_latency());
}

TEST(Runner, EmptyScheduleIsAnErrorNotAnEmptyResult) {
  FakeFixture f(1, 1);
  RunOptions o;
  o.schedule.min_bytes = 2048;
  o.schedule.max_bytes = 1024;
  EXPECT_THROW(run_netpipe(f.sim, f.ta, f.tb, o), std::invalid_argument);
}

TEST(Schedule, PointsPerDoublingZeroIsClampedToOne) {
  ScheduleOptions one;
  one.max_bytes = 1 << 12;
  ScheduleOptions zero = one;
  zero.points_per_doubling = 0;
  EXPECT_EQ(make_schedule(zero), make_schedule(one));
}

TEST(Schedule, MinBytesAtOrBelowPerturbationNeverUnderflows) {
  ScheduleOptions opt;
  opt.min_bytes = 2;
  opt.max_bytes = 64;
  opt.perturbation = 3;
  const auto sizes = make_schedule(opt);
  ASSERT_FALSE(sizes.empty());
  for (auto s : sizes) {
    EXPECT_GE(s, opt.min_bytes);          // nothing below the floor
    EXPECT_LE(s, opt.max_bytes + opt.perturbation);  // no wraparound
  }
  // The small bases survive even though base - perturbation would
  // underflow: 2 and 4 must still be scheduled.
  EXPECT_NE(std::find(sizes.begin(), sizes.end(), 2u), sizes.end());
  EXPECT_NE(std::find(sizes.begin(), sizes.end(), 4u), sizes.end());
}

TEST(Schedule, FinalPerturbedPointStraddlesMaxBytes) {
  ScheduleOptions opt;
  opt.min_bytes = 1;
  opt.max_bytes = 1024;
  opt.perturbation = 3;
  const auto sizes = make_schedule(opt);
  ASSERT_FALSE(sizes.empty());
  // The top base is included with both perturbations around it...
  auto has = [&](std::uint64_t v) {
    return std::find(sizes.begin(), sizes.end(), v) != sizes.end();
  };
  EXPECT_TRUE(has(1021));
  EXPECT_TRUE(has(1024));
  EXPECT_TRUE(has(1027));
  // ...and nothing beyond max_bytes + perturbation is generated.
  EXPECT_EQ(sizes.back(), opt.max_bytes + opt.perturbation);
}

}  // namespace
}  // namespace pp::netpipe
