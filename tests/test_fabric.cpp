// Switch-fabric property suite: routing reachability on random
// fat-tree shapes, the cut-through vs store-and-forward latency
// invariant, incast backlog conservation at switch output ports, loss
// accounting, and the headline determinism contract — a 64-node fabric
// collective run is bit-identical across shard counts {1,2,8}, both
// event schedulers, and both packet paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mp/collectives.h"
#include "mp/fabric_lib.h"
#include "simcore/event_queue.h"
#include "simcore/packet_arena.h"
#include "simcore/random.h"
#include "simcore/shard.h"
#include "simcore/simulator.h"
#include "simhw/fabric/fabric.h"
#include "simhw/presets.h"

namespace pp {
namespace {

using hw::fabric::ClosShape;
using hw::fabric::Fabric;
using hw::fabric::FabricConfig;
using hw::fabric::FabricFrame;
using hw::fabric::FatTreeShape;
using hw::fabric::ForwardingMode;
using hw::fabric::Topology;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

hw::Packet make_frame(sim::Simulator& sim, std::uint64_t bytes) {
  hw::Packet p;
  p.wire_bytes = bytes;
  p.dma_bytes = bytes;
  p.desc = sim.packet_arena().make<std::uint64_t>(bytes);
  return p;
}

// ---------------------------------------------------------------------------
// Routing properties on randomized shapes
// ---------------------------------------------------------------------------

TEST(FabricTopology, RandomFatTreeShapesAllPairsReachableLoopFree) {
  sim::SplitMix64 rng(0xfab51c);
  for (int trial = 0; trial < 8; ++trial) {
    const int radix = 2 * static_cast<int>(2 + rng.below(3));  // 4, 6, 8
    const int capacity = radix * radix * radix / 4;
    const int hosts =
        2 + static_cast<int>(rng.below(static_cast<std::uint64_t>(capacity - 1)));
    sim::Simulator sim;
    hw::Cluster cluster(sim);
    for (int h = 0; h < hosts; ++h) cluster.add_node(hw::presets::pentium4_pc());
    Fabric fab(cluster, FabricConfig{}, FatTreeShape{radix});
    const Topology& topo = fab.topology();
    // Every ordered pair is reachable, and walking the ECMP pick chain
    // reaches the destination in exactly distance() hops with the
    // remaining distance strictly decreasing — i.e. routes are loop-
    // free (deadlock-free up/down routes) by construction.
    for (int s = 0; s < hosts; ++s) {
      for (int d = 0; d < hosts; ++d) {
        if (s == d) continue;
        const int dist = topo.distance(s, d);
        ASSERT_NE(dist, Topology::kUnreachable)
            << "radix " << radix << " hosts " << hosts << ": " << s
            << " cannot reach " << d;
        ASSERT_LE(dist, 6);  // three-level fat-tree worst case
        hw::fabric::VertexId v = s;
        int hops = 0;
        while (v != d) {
          const auto e = topo.pick(
              v, s, d, static_cast<std::uint32_t>(rng.below(7)));
          ASSERT_EQ(topo.distance(e.to, d), topo.distance(v, d) - 1);
          v = e.to;
          ASSERT_LE(++hops, dist);
        }
        ASSERT_EQ(hops, dist);
      }
    }
  }
}

TEST(FabricTopology, ClosReachableAndShallow) {
  sim::Simulator sim;
  hw::Cluster cluster(sim);
  const int hosts = 12;
  for (int h = 0; h < hosts; ++h) cluster.add_node(hw::presets::pentium4_pc());
  Fabric fab(cluster, FabricConfig{}, ClosShape::fit(hosts));
  const Topology& topo = fab.topology();
  for (int s = 0; s < hosts; ++s) {
    for (int d = 0; d < hosts; ++d) {
      if (s == d) continue;
      const int dist = topo.distance(s, d);
      ASSERT_NE(dist, Topology::kUnreachable);
      ASSERT_LE(dist, 4);  // host-leaf-spine-leaf-host
    }
  }
}

TEST(FabricTopology, EcmpPickIsDeterministicAndSpreadsFlows) {
  sim::Simulator sim;
  hw::Cluster cluster(sim);
  for (int h = 0; h < 16; ++h) cluster.add_node(hw::presets::pentium4_pc());
  Fabric fab(cluster, FabricConfig{}, FatTreeShape{4});
  const Topology& topo = fab.topology();
  // At host 0's edge switch, a cross-pod destination has two equal-cost
  // aggregation uplinks.
  const auto up = topo.out(0);
  ASSERT_EQ(up.size(), 1u);
  const hw::fabric::VertexId edge = up[0].to;
  ASSERT_EQ(topo.candidate_count(edge, 15), 2);
  std::vector<int> seen(2, 0);
  for (std::uint32_t flow = 0; flow < 64; ++flow) {
    const auto first = topo.pick(edge, 0, 15, flow);
    const auto second = topo.pick(edge, 0, 15, flow);
    EXPECT_EQ(first.link, second.link);  // pure function of (src,dst,flow)
    for (int k = 0; k < 2; ++k) {
      if (topo.candidate(edge, 15, k).link == first.link) ++seen[k];
    }
  }
  EXPECT_GT(seen[0], 8);  // both uplinks carry a healthy share
  EXPECT_GT(seen[1], 8);
}

// ---------------------------------------------------------------------------
// Forwarding-mode latency ordering
// ---------------------------------------------------------------------------

sim::SimTime idle_delivery_time(ForwardingMode mode, std::uint64_t bytes) {
  sim::Simulator sim;
  hw::Cluster cluster(sim);
  for (int h = 0; h < 16; ++h) cluster.add_node(hw::presets::pentium4_pc());
  FabricConfig cfg;
  cfg.sw.mode = mode;
  Fabric fab(cluster, cfg, FatTreeShape{4});
  sim::SimTime delivered = -1;
  sim.spawn(
      [](sim::Simulator& s, Fabric& f, std::uint64_t n,
         sim::SimTime& out) -> sim::Task<void> {
        // Host 0 -> host 15 crosses pods: edge, agg, core, agg, edge.
        f.port(0).inject(15, make_frame(s, n));
        FabricFrame got = co_await f.port(15).delivered().pop();
        got.pkt.desc.reset();
        out = s.now();
      }(sim, fab, bytes, delivered),
      "probe");
  sim.run();
  EXPECT_GE(delivered, 0);
  return delivered;
}

TEST(FabricForwarding, CutThroughSavesOneSerializationPerSwitchHop) {
  for (std::uint64_t bytes : {64ull, 1500ull, 4096ull}) {
    const sim::SimTime saf =
        idle_delivery_time(ForwardingMode::kStoreAndForward, bytes);
    const sim::SimTime ct =
        idle_delivery_time(ForwardingMode::kCutThrough, bytes);
    EXPECT_LE(ct, saf) << bytes << " bytes";
    // On an idle path the gap is exactly one serialization per switch
    // hop: 5 switches between cross-pod hosts in a k=4 fat-tree. All
    // links share one rate here, so ser_in == ser_out at every hop.
    FabricConfig cfg;
    const sim::SimTime ser =
        cfg.sw.port_rate.time_for(bytes + cfg.frame_overhead);
    EXPECT_EQ(saf - ct, 5 * ser) << bytes << " bytes";
  }
}

// ---------------------------------------------------------------------------
// Incast contention: backlog, conservation, drops
// ---------------------------------------------------------------------------

struct IncastResult {
  Fabric::Totals totals;
  std::size_t hot_peak = 0;
  std::uint64_t hot_in = 0;
  std::uint64_t hot_delivered = 0;
  std::uint64_t hot_dropped = 0;
  std::string violations;
};

IncastResult run_incast(std::uint32_t queue_frames, double loss,
                        int frames_per_sender) {
  sim::Simulator sim;
  hw::Cluster cluster(sim);
  const int hosts = 16;
  for (int h = 0; h < hosts; ++h) cluster.add_node(hw::presets::pentium4_pc());
  FabricConfig cfg;
  cfg.sw.queue_frames = queue_frames;
  Fabric fab(cluster, cfg, FatTreeShape{4});
  if (loss > 0) fab.set_loss(loss);
  for (int s = 1; s < hosts; ++s) {
    sim.spawn(
        [](sim::Simulator& sm, Fabric& f, int src,
           int frames) -> sim::Task<void> {
          for (int i = 0; i < frames; ++i) {
            f.port(src).inject(0, make_frame(sm, 1500),
                               static_cast<std::uint16_t>(src));
            co_await sm.delay(sim::microseconds(1));
          }
        }(sim, fab, s, frames_per_sender),
        "incast" + std::to_string(s));
  }
  // Drain whatever arrives so descriptors recycle promptly.
  sim.spawn_daemon(
      [](Fabric& f) -> sim::Task<void> {
        for (;;) {
          FabricFrame got = co_await f.port(0).delivered().pop();
          got.pkt.desc.reset();
        }
      }(fab),
      "sink");
  sim.run();
  IncastResult r;
  r.totals = fab.totals();
  r.violations = fab.conservation_violations(sim.now());
  // The hot port is the access link into host 0 (the only out-edge of
  // host 0's edge switch that leads to a host vertex).
  const Topology& topo = fab.topology();
  const auto host_uplink = topo.out(0);
  for (const auto& e : topo.out(host_uplink[0].to)) {
    if (e.to == 0) {
      const auto& hot = fab.link(e.link);
      r.hot_peak = hot.peak_backlog();
      r.hot_in = hot.frames_in();
      r.hot_delivered = hot.frames_delivered();
      r.hot_dropped = hot.frames_dropped();
    }
  }
  return r;
}

TEST(FabricIncast, LosslessBacklogIsConservedAndContended) {
  const IncastResult r = run_incast(/*queue_frames=*/0, /*loss=*/0.0,
                                    /*frames_per_sender=*/20);
  EXPECT_EQ(r.violations, "") << r.violations;
  EXPECT_EQ(r.totals.injected, 15u * 20u);
  EXPECT_EQ(r.totals.dropped, 0u);
  EXPECT_EQ(r.totals.delivered, r.totals.injected);
  // 15 senders share one egress: the output queue really backs up.
  EXPECT_GT(r.hot_peak, 4u);
  EXPECT_EQ(r.hot_in, r.hot_delivered);
}

TEST(FabricIncast, TailDropKeepsPerLinkConservation) {
  const IncastResult r = run_incast(/*queue_frames=*/8, /*loss=*/0.0,
                                    /*frames_per_sender=*/40);
  EXPECT_EQ(r.violations, "") << r.violations;
  EXPECT_GT(r.totals.dropped, 0u);
  EXPECT_EQ(r.totals.delivered + r.totals.dropped, r.totals.injected);
  EXPECT_LE(r.hot_peak, 8u + 1u);  // cap + the frame in serialization
  EXPECT_EQ(r.hot_in, r.hot_delivered);
  EXPECT_EQ(r.hot_in + r.hot_dropped,
            r.totals.injected - (r.totals.dropped - r.hot_dropped));
}

TEST(FabricIncast, BernoulliLossIsCountedAndReproducible) {
  const IncastResult a = run_incast(0, 0.1, 20);
  const IncastResult b = run_incast(0, 0.1, 20);
  EXPECT_GT(a.totals.dropped, 0u);
  EXPECT_EQ(a.totals.delivered + a.totals.dropped, a.totals.injected);
  EXPECT_EQ(a.totals.delivered, b.totals.delivered);  // seeded per link
  EXPECT_EQ(a.totals.dropped, b.totals.dropped);
  EXPECT_EQ(a.violations, "") << a.violations;
}

// ---------------------------------------------------------------------------
// Bit-identity across shards x schedulers x packet paths
// ---------------------------------------------------------------------------

std::uint64_t collective_run_checksum(int shards) {
  const int ranks = 64;
  mp::FabricWorldOptions opt;
  opt.shards = shards;
  opt.host = hw::presets::pentium4_pc();
  mp::FabricWorld world(ranks, opt);
  std::vector<sim::SimTime> done(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    world.spawn(
        r,
        [](mp::FabricWorld& w, int rank,
           sim::SimTime& out) -> sim::Task<void> {
          const mp::RingComm comm = w.comm(rank);
          co_await mp::dissemination_barrier(comm);
          co_await mp::tree_broadcast(comm, 3, 32 << 10);
          co_await mp::doubling_allreduce(comm, 4 << 10);
          co_await mp::ring_allgather(comm, 512);
          out = w.simulator(rank).now();
        }(world, r, done[static_cast<std::size_t>(r)]),
        "rank" + std::to_string(r));
  }
  world.run();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (sim::SimTime t : done) h = fnv1a(h, static_cast<std::uint64_t>(t));
  const Fabric::Totals totals = world.fabric().totals();
  h = fnv1a(h, totals.injected);
  h = fnv1a(h, totals.delivered);
  h = fnv1a(h, totals.switched);
  h = fnv1a(h, totals.dropped);
  for (std::size_t l = 0; l < world.fabric().link_count(); ++l) {
    const auto& link = world.fabric().link(static_cast<std::int32_t>(l));
    h = fnv1a(h, link.frames_in());
    h = fnv1a(h, link.bytes_in());
  }
  return h;
}

TEST(FabricDeterminism, BitIdenticalAcrossShardsSchedulersPacketPaths) {
  const std::uint64_t reference = collective_run_checksum(1);
  for (sim::SchedulerKind sched :
       {sim::SchedulerKind::kCalendar, sim::SchedulerKind::kLegacyHeap}) {
    sim::ScopedScheduler ss(sched);
    for (sim::PacketPathKind path :
         {sim::PacketPathKind::kArena, sim::PacketPathKind::kLegacyHeap}) {
      sim::ScopedPacketPath sp(path);
      for (int shards : {1, 2, 8}) {
        EXPECT_EQ(collective_run_checksum(shards), reference)
            << "shards=" << shards << " sched=" << static_cast<int>(sched)
            << " path=" << static_cast<int>(path);
      }
    }
  }
}

}  // namespace
}  // namespace pp
