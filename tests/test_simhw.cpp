// Unit and property tests for the hardware models.
#include <gtest/gtest.h>

#include <vector>

#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/coalescer.h"
#include "simhw/presets.h"

namespace pp::hw {
namespace {

namespace presets = pp::hw::presets;
using sim::microseconds;

NicConfig test_nic() {
  NicConfig n;
  n.sparse_irq_delay = microseconds(10);
  n.busy_irq_delay = microseconds(100);
  n.idle_gap = microseconds(50);
  n.busy_burst_threshold = 3;
  return n;
}

TEST(RxCoalescer, SparseTrafficGetsBaseLatency) {
  RxCoalescer c(test_nic());
  EXPECT_EQ(c.interrupt_time(microseconds(100)), microseconds(110));
  // Next arrival far away: still the sparse path.
  EXPECT_EQ(c.interrupt_time(microseconds(1000)), microseconds(1010));
}

TEST(RxCoalescer, ShortBurstStaysOnSparsePath) {
  RxCoalescer c(test_nic());
  // Three closely spaced frames: under the burst threshold of 3 dense
  // *successors*, all still sparse.
  EXPECT_EQ(c.interrupt_time(microseconds(100)), microseconds(110));
  EXPECT_EQ(c.interrupt_time(microseconds(101)), microseconds(111));
  EXPECT_EQ(c.interrupt_time(microseconds(102)), microseconds(112));
}

TEST(RxCoalescer, SustainedStreamEntersLoadedRegime) {
  RxCoalescer c(test_nic());
  sim::SimTime t = microseconds(100);
  sim::SimTime last = 0;
  for (int i = 0; i < 10; ++i) {
    last = c.interrupt_time(t);
    t += microseconds(2);
  }
  // After the burst threshold, delay is the busy value.
  EXPECT_EQ(last, t - microseconds(2) + microseconds(100));
}

TEST(RxCoalescer, IdleGapResetsTheRegime) {
  RxCoalescer c(test_nic());
  sim::SimTime t = microseconds(100);
  for (int i = 0; i < 10; ++i) {
    c.interrupt_time(t);
    t += microseconds(2);
  }
  // A long quiet period resets to the sparse path.
  const sim::SimTime quiet = t + microseconds(500);
  EXPECT_EQ(c.interrupt_time(quiet), quiet + microseconds(10));
}

TEST(RxCoalescer, DeliveryIsFifoAcrossRegimeChanges) {
  RxCoalescer c(test_nic());
  std::vector<sim::SimTime> fires;
  sim::SimTime t = 0;
  sim::SimTime gaps[] = {microseconds(60), microseconds(1),  microseconds(1),
                         microseconds(1),  microseconds(1),  microseconds(80),
                         microseconds(1),  microseconds(40), microseconds(1)};
  for (sim::SimTime g : gaps) {
    t += g;
    fires.push_back(c.interrupt_time(t));
  }
  for (std::size_t i = 1; i < fires.size(); ++i) {
    EXPECT_GE(fires[i], fires[i - 1]) << "at " << i;
  }
}

TEST(RxCoalescer, InjectedStallParticipatesInFifoClamp) {
  RxCoalescer c(test_nic());
  // A fault-injected stall folds into the interrupt time BEFORE the FIFO
  // clamp, so a later frame's unstalled interrupt cannot overtake it.
  const sim::SimTime stalled =
      c.interrupt_time(microseconds(100), microseconds(40));
  EXPECT_EQ(stalled, microseconds(150));  // arrival + sparse 10 + stall 40
  const sim::SimTime next = c.interrupt_time(microseconds(101));
  EXPECT_EQ(next, stalled);  // clamped up to the stalled predecessor
}

TEST(Node, StagingCopyUsesCachedRateForSmallBuffers) {
  sim::Simulator s;
  HostConfig h = presets::pentium4_pc();
  Node n(s, 0, h);
  const sim::SimTime small = n.staging_copy_time(16 << 10);
  const sim::SimTime large = n.staging_copy_time(1 << 20);
  // Per-byte, the small copy must be much cheaper.
  const double small_per_byte = static_cast<double>(small) / (16 << 10);
  const double large_per_byte = static_cast<double>(large) / (1 << 20);
  EXPECT_LT(small_per_byte * 3, large_per_byte);
}

TEST(PacketPipe, DeliversInOrderWithCorrectCount) {
  sim::Simulator s;
  Cluster c(s);
  Node& a = c.add_node(presets::pentium4_pc());
  Node& b = c.add_node(presets::pentium4_pc());
  auto link = c.connect(a, b, presets::netgear_ga620());
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.dma_bytes = 1000;
    p.wire_bytes = 1040;
    p.desc = s.packet_arena().make<int>(i);
    link.forward.inject(std::move(p));
  }
  s.spawn(
      [](PacketPipe& pipe, std::vector<int>& out) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i) {
          Packet p = co_await pipe.delivered().pop();
          out.push_back(*p.desc.get<int>());
        }
      }(link.forward, order),
      "sink");
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(link.forward.packets_delivered(), 10u);
}

TEST(PacketPipe, WireRateBoundsThroughput) {
  sim::Simulator s;
  Cluster c(s);
  Node& a = c.add_node(presets::pentium4_pc());
  Node& b = c.add_node(presets::pentium4_pc());
  NicConfig nic = presets::netgear_ga620();
  auto link = c.connect(a, b, nic);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    Packet p;
    p.dma_bytes = 1500;
    p.wire_bytes = 1538;
    link.forward.inject(std::move(p));
  }
  sim::SimTime done = 0;
  s.spawn(
      [](PacketPipe& pipe, int n, sim::Simulator& s,
         sim::SimTime& out) -> sim::Task<void> {
        for (int i = 0; i < n; ++i) (void)co_await pipe.delivered().pop();
        out = s.now();
      }(link.forward, n, s, done),
      "sink");
  s.run();
  const double mbps =
      n * 1500 * 8.0 / sim::to_seconds(done) / 1e6;
  EXPECT_LT(mbps, 1000.0);  // can't beat the wire
  EXPECT_GT(mbps, 300.0);   // but the pipeline must actually pipeline
}

TEST(PacketPipe, NarrowCardOnWideBusPaysWidthPenalty) {
  auto run = [](bool wide_card) {
    sim::Simulator s;
    Cluster c(s);
    HostConfig ds20 = presets::compaq_ds20();
    Node& a = c.add_node(ds20);
    Node& b = c.add_node(ds20);
    NicConfig nic =
        wide_card ? presets::netgear_ga622() : presets::trendnet_teg_pcitx();
    // Equalize everything except the width capability.
    NicConfig base = presets::trendnet_teg_pcitx();
    base.pci64_capable = wide_card;
    auto link = c.connect(a, b, base);
    for (int i = 0; i < 100; ++i) {
      Packet p;
      p.dma_bytes = 1500;
      p.wire_bytes = 1538;
      link.forward.inject(std::move(p));
    }
    sim::SimTime done = 0;
    s.spawn(
        [](PacketPipe& pipe, sim::Simulator& s,
           sim::SimTime& out) -> sim::Task<void> {
          for (int i = 0; i < 100; ++i) (void)co_await pipe.delivered().pop();
          out = s.now();
        }(link.forward, s, done),
        "sink");
    s.run();
    (void)nic;
    return done;
  };
  // A 32-bit card in the DS20's 64-bit slot should move data strictly
  // slower than the 64-bit-capable version of the same card.
  EXPECT_GT(run(false), run(true));
}

TEST(PacketPipe, OsBypassSkipsKernelProtocolCosts) {
  auto one_way = [](bool bypass) {
    sim::Simulator s;
    Cluster c(s);
    Node& a = c.add_node(presets::pentium4_pc());
    Node& b = c.add_node(presets::pentium4_pc());
    NicConfig nic = presets::netgear_ga620();
    nic.os_bypass = bypass;
    auto link = c.connect(a, b, nic);
    Packet p;
    p.dma_bytes = 100;
    p.wire_bytes = 138;
    link.forward.inject(std::move(p));
    sim::SimTime done = 0;
    s.spawn(
        [](PacketPipe& pipe, sim::Simulator& s,
           sim::SimTime& out) -> sim::Task<void> {
          (void)co_await pipe.delivered().pop();
          out = s.now();
        }(link.forward, s, done),
        "sink");
    s.run();
    return done;
  };
  const sim::SimTime with_kernel = one_way(false);
  const sim::SimTime bypassed = one_way(true);
  HostConfig h = presets::pentium4_pc();
  EXPECT_EQ(with_kernel - bypassed, h.proto_tx_cost + h.proto_rx_cost);
}

// Every preset must be internally consistent.
class PresetSanity : public ::testing::TestWithParam<NicConfig> {};

TEST_P(PresetSanity, ValidRanges) {
  const NicConfig& n = GetParam();
  EXPECT_GT(n.link_rate.bytes_per_second, 0.0);
  EXPECT_GE(n.max_mtu, n.mtu);
  EXPECT_GT(n.mtu, 100u);
  EXPECT_GT(n.pci_efficiency, 0.0);
  EXPECT_LE(n.pci_efficiency, 1.0);
  EXPECT_GE(n.busy_burst_threshold, 0);
  EXPECT_GE(n.sparse_irq_delay, 0);
  EXPECT_GE(n.busy_irq_delay, 0);
  EXPECT_FALSE(n.name.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllNics, PresetSanity,
    ::testing::Values(presets::netgear_ga620(), presets::trendnet_teg_pcitx(),
                      presets::netgear_ga622(),
                      presets::syskonnect_sk9843(1500),
                      presets::syskonnect_sk9843(9000),
                      presets::myrinet_pci64a(), presets::giganet_clan(),
                      presets::myrinet_ip_over_gm(),
                      presets::syskonnect_mvia(), presets::fast_ethernet()),
    [](const ::testing::TestParamInfo<NicConfig>& info) {
      std::string name = info.param.name + "_" +
                         std::to_string(info.param.mtu);
      for (char& ch : name) {
        if (ch == '-' || ch == '.') ch = '_';
      }
      return name;
    });

TEST(Cluster, NodesGetSequentialIds) {
  sim::Simulator s;
  Cluster c(s);
  Node& a = c.add_node(presets::pentium4_pc());
  Node& b = c.add_node(presets::compaq_ds20());
  EXPECT_EQ(a.id(), 0);
  EXPECT_EQ(b.id(), 1);
  EXPECT_EQ(c.node_count(), 2u);
  EXPECT_EQ(&c.node(1), &b);
}

}  // namespace
}  // namespace pp::hw
