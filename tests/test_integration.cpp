// Integration tests: miniature versions of every paper experiment with
// assertions on the qualitative findings (who wins, by roughly what
// factor, where the dips fall). These guard the reproduction itself.
#include <gtest/gtest.h>

#include "bench/common.h"
#include "gmsim/gm.h"
#include "mp/gm_mpi.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"
#include "mp/via_mpi.h"
#include "viasim/via.h"

namespace pp {
namespace {

using namespace pp::bench;
namespace presets = hw::presets;

netpipe::RunOptions quick() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 2 << 20;
  o.repeats = 1;
  o.warmup = 1;
  return o;
}

// ---- Figure 1 (Netgear GA620) --------------------------------------------

class Fig1 : public ::testing::Test {
 protected:
  static constexpr auto kBuf = 512u << 10;
  const hw::HostConfig host = presets::pentium4_pc();
  const hw::NicConfig nic = presets::netgear_ga620();
  const tcp::Sysctl sysctl = tcp::Sysctl::tuned();

  netpipe::RunResult tcp_run() {
    return measure_on_bed("tcp", host, nic, sysctl,
                          [](mp::PairBed& b) { return raw_tcp_pair(b, kBuf); },
                          quick())
        .result;
  }
};

TEST_F(Fig1, MpLiteTracksRawTcpWithinAFewPercent) {
  const auto tcp_r = tcp_run();
  const auto lite = measure_on_bed(
      "mplite", host, nic, sysctl,
      [](mp::PairBed& b) { return hold_pair(mp::MpLite::create_pair(b)); },
      quick());
  EXPECT_NEAR(lite.result.max_mbps / tcp_r.max_mbps, 1.0, 0.05);
}

TEST_F(Fig1, MpichLoses25To30PercentForLargeMessages) {
  const auto tcp_r = tcp_run();
  const auto mpich = measure_on_bed(
      "mpich", host, nic, sysctl,
      [](mp::PairBed& b) {
        mp::MpichOptions o;
        o.p4_sockbufsize = 256 << 10;
        return hold_pair(mp::Mpich::create_pair(b, o));
      },
      quick());
  const double loss = 1.0 - mpich.result.max_mbps / tcp_r.max_mbps;
  EXPECT_GT(loss, 0.15);
  EXPECT_LT(loss, 0.35);
}

TEST_F(Fig1, MpichShowsRendezvousDipAt128k) {
  const auto mpich = measure_on_bed(
      "mpich", host, nic, sysctl,
      [](mp::PairBed& b) {
        mp::MpichOptions o;
        o.p4_sockbufsize = 256 << 10;
        return hold_pair(mp::Mpich::create_pair(b, o));
      },
      quick());
  EXPECT_LT(mpich.result.mbps_at(128 << 10),
            0.97 * mpich.result.mbps_at(96 << 10));
}

TEST_F(Fig1, RaisingRendezvousCutoffRemovesTheDip) {
  const auto moved = measure_on_bed(
      "mpich", host, nic, sysctl,
      [](mp::PairBed& b) {
        mp::MpichOptions o;
        o.p4_sockbufsize = 256 << 10;
        o.rendezvous_cutoff = 1 << 20;  // the §3.1 source-code edit
        return hold_pair(mp::Mpich::create_pair(b, o));
      },
      quick());
  EXPECT_GE(moved.result.mbps_at(128 << 10),
            0.99 * moved.result.mbps_at(96 << 10));
}

TEST_F(Fig1, PvmInPlaceStaysBelowTcpByTheUnpackCopy) {
  const auto tcp_r = tcp_run();
  const auto pvm = measure_on_bed(
      "pvm", host, nic, sysctl,
      [](mp::PairBed& b) {
        mp::PvmOptions o;
        o.route = mp::PvmRoute::kDirect;
        o.encoding = mp::PvmEncoding::kInPlace;
        return hold_pair(mp::Pvm::create_pair(b, o));
      },
      quick());
  const double loss = 1.0 - pvm.result.max_mbps / tcp_r.max_mbps;
  EXPECT_GT(loss, 0.15);
  EXPECT_LT(loss, 0.35);
}

// ---- Figure 2 (TrendNet) --------------------------------------------------

TEST(Fig2, OnlyTunableLibrariesSurviveTheCheapCard) {
  const auto host = presets::pentium4_pc();
  const auto nic = presets::trendnet_teg_pcitx();
  const auto sysctl = tcp::Sysctl::tuned();
  const auto mplite = measure_on_bed(
      "mplite", host, nic, sysctl,
      [](mp::PairBed& b) { return hold_pair(mp::MpLite::create_pair(b)); },
      quick());
  const auto tcg = measure_on_bed(
      "tcgmsg", host, nic, sysctl,
      [](mp::PairBed& b) {
        return hold_pair(mp::Tcgmsg::create_pair(b, {}));
      },
      quick());
  const auto mpipro = measure_on_bed(
      "mpipro", host, nic, sysctl,
      [](mp::PairBed& b) {
        mp::MpiProOptions o;
        o.tcp_long = 128 << 10;
        return hold_pair(mp::MpiPro::create_pair(b, o));
      },
      quick());
  // MP_Lite (auto-max buffers) roughly doubles the stuck libraries.
  EXPECT_GT(mplite.result.max_mbps, 1.6 * tcg.result.max_mbps);
  EXPECT_GT(mplite.result.max_mbps, 1.5 * mpipro.result.max_mbps);
}

TEST(Fig2, MpichTuningRecoversThroughputOnTrendnet) {
  const auto host = presets::pentium4_pc();
  const auto nic = presets::trendnet_teg_pcitx();
  const auto sysctl = tcp::Sysctl::tuned();
  auto run_with = [&](std::uint32_t buf) {
    return measure_on_bed(
               "mpich", host, nic, sysctl,
               [&](mp::PairBed& b) {
                 mp::MpichOptions o;
                 o.p4_sockbufsize = buf;
                 return hold_pair(mp::Mpich::create_pair(b, o));
               },
               quick())
        .result.max_mbps;
  };
  // The paper's "vital" P4_SOCKBUFSIZE tuning, directionally.
  EXPECT_GT(run_with(256 << 10), 1.4 * run_with(32 << 10));
}

// ---- Figure 3 (SysKonnect jumbo on DS20) ----------------------------------

TEST(Fig3, TcgmsgRecompileRecoversRawTcp) {
  const auto host = presets::compaq_ds20();
  const auto nic = presets::syskonnect_sk9843(9000);
  const auto sysctl = tcp::Sysctl::tuned();
  const auto tcp_r = measure_on_bed(
      "tcp", host, nic, sysctl,
      [](mp::PairBed& b) { return raw_tcp_pair(b, 512 << 10); }, quick());
  auto run_with = [&](std::uint32_t buf) {
    return measure_on_bed(
               "tcgmsg", host, nic, sysctl,
               [&](mp::PairBed& b) {
                 mp::TcgmsgOptions o;
                 o.sr_sock_buf_size = buf;
                 return hold_pair(mp::Tcgmsg::create_pair(b, o));
               },
               quick())
        .result.max_mbps;
  };
  const double small = run_with(32 << 10);
  const double big = run_with(128 << 10);
  EXPECT_LT(small, 0.75 * tcp_r.result.max_mbps);   // capped by 32 kB
  EXPECT_GT(big, 0.95 * tcp_r.result.max_mbps);     // "matching raw TCP"
}

TEST(Fig3, JumboDs20BeatsGigePcByNearlyTwofold) {
  const auto ds20 = measure_on_bed(
      "tcp", presets::compaq_ds20(), presets::syskonnect_sk9843(9000),
      tcp::Sysctl::tuned(),
      [](mp::PairBed& b) { return raw_tcp_pair(b, 512 << 10); }, quick());
  const auto pc = measure_on_bed(
      "tcp", presets::pentium4_pc(), presets::netgear_ga620(),
      tcp::Sysctl::tuned(),
      [](mp::PairBed& b) { return raw_tcp_pair(b, 512 << 10); }, quick());
  EXPECT_GT(ds20.result.max_mbps, 1.6 * pc.result.max_mbps);
}

// ---- Figure 4 (Myrinet) ----------------------------------------------------

TEST(Fig4, GmBeatsGigeTcpInLatencyBySevenfold) {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(presets::pentium4_pc());
  auto& b = c.add_node(presets::pentium4_pc());
  gm::GmFabric fab(c, a, b, presets::myrinet_pci64a(),
                   presets::back_to_back(), {});
  mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
  netpipe::RunOptions o = quick();
  o.schedule.max_bytes = 1024;
  const auto gm_r = netpipe::run_netpipe(s, ta, tb, o);
  const auto tcp_r = measure_on_bed(
      "tcp", presets::pentium4_pc(), presets::netgear_ga620(),
      tcp::Sysctl::tuned(),
      [](mp::PairBed& bd) { return raw_tcp_pair(bd, 512 << 10); }, quick());
  EXPECT_LT(gm_r.latency_us * 5, tcp_r.result.latency_us);
  EXPECT_LT(gm_r.latency_us, 20.0);
}

TEST(Fig4, MpichGmWithinFewPercentOfRawGm) {
  auto run = [&](bool with_lib) {
    sim::Simulator s;
    hw::Cluster c(s);
    auto& a = c.add_node(presets::pentium4_pc());
    auto& b = c.add_node(presets::pentium4_pc());
    gm::GmFabric fab(c, a, b, presets::myrinet_pci64a(),
                     presets::back_to_back(), {});
    if (with_lib) {
      mp::GmMpi la(fab.port_a(), 0), lb(fab.port_b(), 1);
      mp::LibraryTransport ta(la, 1), tb(lb, 0);
      return netpipe::run_netpipe(s, ta, tb, quick()).max_mbps;
    }
    mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
    return netpipe::run_netpipe(s, ta, tb, quick()).max_mbps;
  };
  EXPECT_GT(run(true), 0.93 * run(false));
}

// ---- Figure 5 (VIA) --------------------------------------------------------

TEST(Fig5, GiganetLatencyOrderOfTenMicroseconds) {
  sim::Simulator s;
  hw::Cluster c(s);
  auto& a = c.add_node(presets::pentium4_pc());
  auto& b = c.add_node(presets::pentium4_pc());
  via::ViaFabric fab(c, a, b, presets::giganet_clan(), presets::switched(),
                     {});
  const auto opt = mp::ViaMpi::mvich();
  mp::ViaMpi la(fab.end_a(), 0, opt), lb(fab.end_b(), 1, opt);
  mp::LibraryTransport ta(la, 1), tb(lb, 0);
  netpipe::RunOptions o = quick();
  o.schedule.max_bytes = 1024;
  const auto r = netpipe::run_netpipe(s, ta, tb, o);
  EXPECT_GT(r.latency_us, 6.0);
  EXPECT_LT(r.latency_us, 14.0);
}

TEST(Fig5, MpiProProgressThreadCostsLatencyNotBandwidth) {
  auto run = [&](const mp::ViaMpiOptions& opt) {
    sim::Simulator s;
    hw::Cluster c(s);
    auto& a = c.add_node(presets::pentium4_pc());
    auto& b = c.add_node(presets::pentium4_pc());
    via::ViaFabric fab(c, a, b, presets::giganet_clan(),
                       presets::switched(), {});
    mp::ViaMpi la(fab.end_a(), 0, opt), lb(fab.end_b(), 1, opt);
    mp::LibraryTransport ta(la, 1), tb(lb, 0);
    return netpipe::run_netpipe(s, ta, tb, quick());
  };
  const auto mvich = run(mp::ViaMpi::mvich());
  const auto mpipro = run(mp::ViaMpi::mpipro_via());
  EXPECT_GT(mpipro.latency_us, mvich.latency_us + 15.0);
  EXPECT_NEAR(mpipro.max_mbps / mvich.max_mbps, 1.0, 0.03);
}

// ---- Cross-cutting ---------------------------------------------------------

TEST(CrossCutting, EverySubstrateIsDeterministic) {
  auto fig1_once = [] {
    return measure_on_bed(
               "tcp", presets::pentium4_pc(), presets::netgear_ga620(),
               tcp::Sysctl::tuned(),
               [](mp::PairBed& b) { return raw_tcp_pair(b, 256 << 10); },
               quick())
        .result.max_mbps;
  };
  EXPECT_EQ(fig1_once(), fig1_once());
}

}  // namespace
}  // namespace pp
