// Tests for the parallel experiment-sweep executor (src/sweep): the
// thread pool, deterministic spec-order aggregation, error handling, the
// JSON reporter, and the Simulator threading contract it relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "mp/testbed.h"
#include "netpipe/modules.h"
#include "netpipe/runner.h"
#include "simcore/random.h"
#include "simcore/shard.h"
#include "simhw/presets.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"

namespace pp::sweep {
namespace {

namespace presets = hw::presets;

netpipe::RunOptions tiny_opts() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 16 << 10;
  o.repeats = 2;
  return o;
}

/// A real (but small) NetPIPE measurement on a fresh raw-TCP bed.
netpipe::RunResult tiny_measurement(std::uint32_t buf) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto [sa, sb] = bed.socket_pair("sweep");
  sa.set_send_buffer(buf);
  sa.set_recv_buffer(buf);
  sb.set_send_buffer(buf);
  sb.set_recv_buffer(buf);
  netpipe::TcpTransport ta(sa), tb(sb);
  return netpipe::run_netpipe(bed.sim, ta, tb, tiny_opts());
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWaitsForRunningTasksNotJustTheQueue) {
  ThreadPool pool(2);
  std::atomic<bool> finished{false};
  pool.submit([&finished] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(finished.load());
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, ThrowingTaskSurfacesFromWaitIdleWithoutHangingThePool) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("job exploded"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  // Every other job still runs, in_flight_ drains to zero (no hang), and
  // the escaped exception is rethrown exactly once.
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("job exploded"), std::string::npos);
  }
  EXPECT_EQ(ran.load(), 20);
  // The error was consumed: the pool is reusable and idles cleanly.
  pool.submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPool, OnlyTheFirstEscapedExceptionIsKept) {
  ThreadPool pool(1);  // one worker => deterministic execution order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(Sweep, ResultsAggregateInSpecOrderRegardlessOfCompletion) {
  // Job 0 is the slowest; completion order is the reverse of spec order.
  SweepSpec spec;
  spec.name = "order";
  for (int i = 0; i < 4; ++i) {
    spec.jobs.push_back(JobSpec{
        "job" + std::to_string(i), [i] {
          std::this_thread::sleep_for(std::chrono::milliseconds(40 - 10 * i));
          netpipe::RunResult r;
          r.transport = "fake";
          r.max_mbps = 100.0 * (i + 1);
          r.points.push_back({1u, 1});
          return r;
        }});
  }
  SweepOptions opt;
  opt.threads = 4;
  const SweepResult sr = run_sweep(spec, opt);
  ASSERT_EQ(sr.jobs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sr.jobs[i].label, "job" + std::to_string(i));
    EXPECT_TRUE(sr.jobs[i].ok);
    EXPECT_DOUBLE_EQ(sr.jobs[i].result.max_mbps, 100.0 * (i + 1));
    EXPECT_GT(sr.jobs[i].wall_ms, 0.0);
  }
  EXPECT_GT(sr.wall_ms, 0.0);
  EXPECT_GE(sr.serial_ms, sr.wall_ms);
}

TEST(Sweep, ParallelRunIsBitIdenticalToSerial) {
  auto make_spec = [] {
    SweepSpec spec;
    spec.name = "determinism";
    for (std::uint32_t buf : {32u << 10, 64u << 10, 128u << 10}) {
      spec.jobs.push_back(
          JobSpec{std::to_string(buf), [buf] { return tiny_measurement(buf); }});
    }
    return spec;
  };
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const SweepResult a = run_sweep(make_spec(), serial);
  const SweepResult b = run_sweep(make_spec(), parallel);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const auto& ra = a.jobs[j].result;
    const auto& rb = b.jobs[j].result;
    ASSERT_EQ(ra.points.size(), rb.points.size());
    for (std::size_t i = 0; i < ra.points.size(); ++i) {
      EXPECT_EQ(ra.points[i].bytes, rb.points[i].bytes);
      EXPECT_EQ(ra.points[i].elapsed, rb.points[i].elapsed);
    }
    EXPECT_EQ(ra.max_mbps, rb.max_mbps);
    EXPECT_EQ(ra.latency_us, rb.latency_us);
    EXPECT_EQ(ra.saturation_bytes, rb.saturation_bytes);
  }
}

netpipe::RunResult ok_result() {
  netpipe::RunResult r;
  r.transport = "fake";
  r.points.push_back({1u, 1});
  r.max_mbps = 1.0;
  return r;
}

TEST(Sweep, FirstFailureInSpecOrderIsRethrown) {
  SweepSpec spec;
  spec.name = "errors";
  spec.jobs.push_back(JobSpec{"fine", [] { return ok_result(); }});
  spec.jobs.push_back(JobSpec{"boom", []() -> netpipe::RunResult {
                                throw std::runtime_error("deliberate");
                              }});
  EXPECT_THROW(run_sweep(spec), std::runtime_error);
}

TEST(Sweep, KeepGoingRecordsTheFailureAndFinishesTheRest) {
  SweepSpec spec;
  spec.name = "errors";
  spec.jobs.push_back(JobSpec{"boom", []() -> netpipe::RunResult {
                                throw std::runtime_error("deliberate");
                              }});
  spec.jobs.push_back(JobSpec{"fine", [] { return ok_result(); }});
  SweepOptions opt;
  opt.keep_going = true;
  const SweepResult sr = run_sweep(spec, opt);
  ASSERT_EQ(sr.jobs.size(), 2u);
  EXPECT_FALSE(sr.jobs[0].ok);
  EXPECT_NE(sr.jobs[0].error.find("deliberate"), std::string::npos);
  EXPECT_TRUE(sr.jobs[1].ok);
  // at() fails loudly for the broken curve, works for the good one.
  EXPECT_THROW(sr.at("boom"), std::runtime_error);
  EXPECT_NO_THROW(sr.at("fine"));
}

TEST(Sweep, AtThrowsForUnknownLabel) {
  SweepSpec spec;
  spec.name = "lookup";
  spec.jobs.push_back(JobSpec{"only", [] { return ok_result(); }});
  const SweepResult sr = run_sweep(spec);
  EXPECT_THROW(sr.at("missing"), std::out_of_range);
}

/// A synthetic budgeted job: processes exactly 800 events, and its
/// "measurement" is a pure function of the first draw from the RNG the
/// closure captured. The `mutable` capture is the point — it models the
/// per-run fault-plan/RNG state a real job factory might hold, which a
/// watchdog retry must re-derive from the original spec, never consume
/// further.
netpipe::RunResult draw_dependent_job(sim::SplitMix64& rng) {
  const std::uint64_t draw = rng.next();
  sim::Simulator s;  // adopts the ambient (sweep-installed) budgets
  for (int i = 0; i < 800; ++i) {
    s.call_at(sim::microseconds(i + 1), [] {});
  }
  s.run();
  netpipe::RunResult r;
  r.transport = "synthetic";
  r.max_mbps = static_cast<double>(draw % 100000);
  r.points.push_back({1u, 1});
  return r;
}

TEST(Sweep, WatchdogRetryIsBitIdenticalToACleanRunAtTheLargerBudget) {
  auto make_spec = [] {
    SweepSpec spec;
    spec.name = "retry";
    spec.jobs.push_back(JobSpec{
        "draw", [rng = sim::SplitMix64(99)]() mutable {
          return draw_dependent_job(rng);
        }});
    return spec;
  };

  // 500-event budget kills the 800-event job; the doubled 1000-event
  // retry completes.
  SweepOptions retried;
  retried.threads = 1;
  retried.keep_going = true;
  retried.limits.event_budget = 500;
  retried.watchdog_retries = 2;
  const SweepResult a = run_sweep(make_spec(), retried);
  ASSERT_TRUE(a.jobs[0].ok);
  EXPECT_EQ(a.jobs[0].status, JobStatus::kOk);
  EXPECT_EQ(a.jobs[0].retries, 1);
  EXPECT_TRUE(a.jobs[0].error.empty()) << a.jobs[0].error;

  // A clean first run at the budget the retry ended up with.
  SweepOptions clean;
  clean.threads = 1;
  clean.limits.event_budget = 1000;
  clean.watchdog_retries = 0;
  const SweepResult b = run_sweep(make_spec(), clean);
  ASSERT_TRUE(b.jobs[0].ok);
  EXPECT_EQ(b.jobs[0].retries, 0);

  // Bit-identical: the retry re-derived the closure's RNG state from
  // the spec instead of resuming the aborted attempt's mutated copy.
  EXPECT_DOUBLE_EQ(a.jobs[0].result.max_mbps, b.jobs[0].result.max_mbps);
}

TEST(Sweep, ShardsOptionInstallsTheAmbientShardCount) {
  SweepSpec spec;
  spec.name = "shards";
  spec.jobs.push_back(JobSpec{"probe", [] {
    netpipe::RunResult r;
    r.transport = "probe";
    r.max_mbps = static_cast<double>(sim::ambient_shards());
    r.points.push_back({1u, 1});
    return r;
  }});
  SweepOptions opt;
  opt.threads = 1;
  opt.shards = 3;
  const SweepResult sr = run_sweep(spec, opt);
  ASSERT_TRUE(sr.jobs[0].ok);
  EXPECT_DOUBLE_EQ(sr.jobs[0].result.max_mbps, 3.0);
  EXPECT_EQ(sr.shards, 3);
  // Outside the sweep the ambient value is untouched.
  EXPECT_EQ(sim::ambient_shards(), 0);
}

TEST(Json, ReportCarriesSchemaCurvesAndSpeedup) {
  SweepSpec spec;
  spec.name = "json";
  spec.jobs.push_back(JobSpec{"curve", [] { return tiny_measurement(64 << 10); }});
  const SweepResult sr = run_sweep(spec);
  const std::string j = JsonReporter::to_json({sr});
  EXPECT_NE(j.find("\"schema\":\"pp.sweep/6\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"json\""), std::string::npos);
  // pp.sweep/4: the sweep records the ambient shard count it installed.
  EXPECT_NE(j.find("\"shards\":0"), std::string::npos);
  EXPECT_NE(j.find("\"label\":\"curve\""), std::string::npos);
  // pp.sweep/3: per-job degraded-run reporting.
  EXPECT_NE(j.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(j.find("\"retries\":0"), std::string::npos);
  EXPECT_NE(j.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(j.find("\"max_mbps\""), std::string::npos);
  EXPECT_NE(j.find("\"speedup_vs_serial\""), std::string::npos);
  // A measured ping-pong run has a real latency, not null.
  EXPECT_EQ(j.find("\"latency_us\":null"), std::string::npos);
  // Per-job protocol counters; a real TCP run moved data.
  EXPECT_NE(j.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(j.find("\"data_segments\":"), std::string::npos);
  EXPECT_EQ(j.find("\"data_segments\":0"), std::string::npos);
  // pp.sweep/2 dropped the redundant top-level "threads" (it always
  // mirrored the per-sweep value); only the per-sweep key remains.
  const std::size_t sweeps_at = j.find("\"sweeps\"");
  ASSERT_NE(sweeps_at, std::string::npos);
  EXPECT_EQ(j.substr(0, sweeps_at).find("\"threads\""), std::string::npos);
  EXPECT_NE(j.find("\"threads\"", sweeps_at), std::string::npos);
}

TEST(Json, AbsentLatencySerializesAsNullNotZero) {
  SweepSpec spec;
  spec.name = "streaming";
  spec.jobs.push_back(JobSpec{"stream", [] {
                                netpipe::RunResult r;
                                r.transport = "fake";
                                r.points.push_back({1u, 1});
                                return r;  // latency_us left NaN
                              }});
  const SweepResult sr = run_sweep(spec);
  EXPECT_FALSE(sr.jobs[0].result.has_latency());
  const std::string j = JsonReporter::to_json({sr});
  EXPECT_NE(j.find("\"latency_us\":null"), std::string::npos);
  EXPECT_EQ(j.find("nan"), std::string::npos);
}

TEST(Json, FailedJobSerializesErrorNotCurve) {
  SweepSpec spec;
  spec.name = "failure";
  spec.jobs.push_back(JobSpec{"bad", []() -> netpipe::RunResult {
                                throw std::runtime_error("no \"curve\"");
                              }});
  SweepOptions opt;
  opt.keep_going = true;
  const std::string j = JsonReporter::to_json({run_sweep(spec, opt)});
  EXPECT_NE(j.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(j.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(j.find("\\\"curve\\\""), std::string::npos);  // escaped quotes
  EXPECT_EQ(j.find("\"points\""), std::string::npos);
  // pp.sweep/3: failed jobs still carry a (zeroed) counters object.
  EXPECT_NE(j.find("\"counters\":{"), std::string::npos);
}

TEST(Json, WriteProducesAParsableFileOnDisk) {
  SweepSpec spec;
  spec.name = "disk";
  spec.jobs.push_back(JobSpec{"j", [] { return ok_result(); }});
  const SweepResult sr = run_sweep(spec);
  const std::string path = "/tmp/pp_test_sweep.json";
  JsonReporter::write(path, {sr});
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all.front(), '{');
  EXPECT_EQ(all.back(), '\n');
  EXPECT_NE(all.find("pp.sweep/6"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Simulator, RejectsUseFromASecondThread) {
  sim::Simulator sim;
  sim.spawn([](sim::Simulator& s) -> sim::Task<void> {
    co_await s.delay(1);
  }(sim), "pin");
  sim.run();  // pins the instance to this thread
  std::atomic<bool> threw{false};
  std::thread other([&] {
    try {
      sim.run();
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  other.join();
  EXPECT_TRUE(threw.load());
}

TEST(Simulator, RejectsReentrantRunFromInsideTheLoop) {
  sim::Simulator sim;
  bool threw = false;
  sim.call_at(10, [&] {
    try {
      sim.run();
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(Simulator, EachJobOwnsItsInstance) {
  // The sweep contract: simulators constructed inside worker threads are
  // pinned there and never cross threads — N concurrent jobs are safe.
  SweepSpec spec;
  spec.name = "isolation";
  for (int i = 0; i < 8; ++i) {
    spec.jobs.push_back(JobSpec{
        "iso" + std::to_string(i), [] { return tiny_measurement(64 << 10); }});
  }
  SweepOptions opt;
  opt.threads = 4;
  const SweepResult sr = run_sweep(spec, opt);
  for (const auto& j : sr.jobs) EXPECT_TRUE(j.ok);
}

}  // namespace
}  // namespace pp::sweep
