// Unit and property tests for the discrete-event coroutine engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "simcore/event_queue.h"
#include "simcore/random.h"
#include "simcore/resource.h"
#include "simcore/simulator.h"
#include "simcore/small_fn.h"
#include "simcore/sync.h"
#include "simcore/timer_wheel.h"
#include "simcore/tracing.h"

namespace pp::sim {
namespace {

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
}

TEST(SimTime, Formatting) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(microseconds(12.5)), "12.500us");
  EXPECT_EQ(format_time(milliseconds(3.25)), "3.250ms");
  EXPECT_EQ(format_time(seconds(1.5)), "1.500000s");
}

TEST(Rate, Conversions) {
  const Rate gig = Rate::gigabits(1.0);
  EXPECT_DOUBLE_EQ(gig.mbps(), 1000.0);
  // 125 MB/s -> 1 byte takes 8 ns.
  EXPECT_EQ(gig.time_for(1), 8);
  EXPECT_EQ(gig.time_for(1'000'000), 8'000'000);
}

TEST(Simulator, DelayAdvancesClock) {
  Simulator sim;
  SimTime observed = -1;
  sim.spawn(
      [](Simulator& s, SimTime& out) -> Task<void> {
        co_await s.delay(microseconds(5));
        out = s.now();
      }(sim, observed),
      "delayer");
  sim.run();
  EXPECT_EQ(observed, microseconds(5));
}

TEST(Simulator, ZeroDelayYieldsToReadyEvents) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& s, std::vector<int>& ord, int id) -> Task<void> {
    ord.push_back(id);
    co_await s.delay(0);
    ord.push_back(id + 10);
  };
  sim.spawn(proc(sim, order, 1), "a");
  sim.spawn(proc(sim, order, 2), "b");
  sim.run();
  // Both first halves run before either second half: delay(0) yields.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12}));
}

TEST(Simulator, EventsAtSameTimeRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.spawn(
        [](Simulator& s, std::vector<int>& ord, int id) -> Task<void> {
          co_await s.delay(microseconds(1));
          ord.push_back(id);
        }(sim, order, i),
        std::string("p") + std::to_string(i));
  }
  sim.run();
  std::vector<int> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(Simulator, NestedTaskCallsPropagateValues) {
  Simulator sim;
  int result = 0;
  struct Helper {
    static Task<int> leaf(Simulator& s) {
      co_await s.delay(10);
      co_return 21;
    }
    static Task<int> middle(Simulator& s) {
      int a = co_await leaf(s);
      int b = co_await leaf(s);
      co_return a + b;
    }
  };
  sim.spawn(
      [](Simulator& s, int& out) -> Task<void> {
        out = co_await Helper::middle(s);
      }(sim, result),
      "root");
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(sim.now(), 20);
}

TEST(Simulator, ExceptionInProcessPropagatesFromRun) {
  Simulator sim;
  sim.spawn(
      [](Simulator& s) -> Task<void> {
        co_await s.delay(5);
        throw std::runtime_error("boom");
      }(sim),
      "thrower");
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, DeadlockDetectedAndNamed) {
  Simulator sim;
  auto trig = std::make_shared<Trigger>(sim);
  sim.spawn(
      [](std::shared_ptr<Trigger> t) -> Task<void> { co_await t->wait(); }(
          trig),
      "stuck-process");
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-process"), std::string::npos);
  }
}

TEST(Simulator, CompletionJoin) {
  Simulator sim;
  std::vector<int> order;
  auto worker = sim.spawn(
      [](Simulator& s, std::vector<int>& ord) -> Task<void> {
        co_await s.delay(microseconds(3));
        ord.push_back(1);
      }(sim, order),
      "worker");
  sim.spawn(
      [](std::shared_ptr<Completion> c, std::vector<int>& ord) -> Task<void> {
        co_await c->wait();
        ord.push_back(2);
      }(worker, order),
      "joiner");
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(worker->done());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ticks = 0;
  sim.spawn(
      [](Simulator& s, int& t) -> Task<void> {
        for (int i = 0; i < 10; ++i) {
          co_await s.delay(microseconds(10));
          ++t;
        }
      }(sim, ticks),
      "ticker");
  const bool more = sim.run_until(microseconds(35));
  EXPECT_TRUE(more);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.now(), microseconds(35));
  sim.run();
  EXPECT_EQ(ticks, 10);
}

TEST(Simulator, EventLimitGuardsRunaway) {
  Simulator sim;
  sim.set_event_limit(100);
  sim.spawn(
      [](Simulator& s) -> Task<void> {
        for (;;) co_await s.delay(1);
      }(sim),
      "runaway");
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Trigger, ReleasesAllWaitersAndStaysSet) {
  Simulator sim;
  auto trig = std::make_shared<Trigger>(sim);
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](std::shared_ptr<Trigger> t, int& r) -> Task<void> {
          co_await t->wait();
          ++r;
        }(trig, released),
        "waiter");
  }
  sim.spawn(
      [](Simulator& s, std::shared_ptr<Trigger> t) -> Task<void> {
        co_await s.delay(microseconds(1));
        t->set();
      }(sim, trig),
      "setter");
  sim.spawn(
      [](Simulator& s, std::shared_ptr<Trigger> t, int& r) -> Task<void> {
        co_await s.delay(microseconds(2));
        co_await t->wait();  // already set: must not block
        ++r;
      }(sim, trig, released),
      "late-waiter");
  sim.run();
  EXPECT_EQ(released, 4);
}

TEST(Signal, NotifyOneWakesInFifoOrder) {
  Simulator sim;
  auto sig = std::make_shared<Signal>(sim);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](std::shared_ptr<Signal> s, std::vector<int>& ord,
           int id) -> Task<void> {
          co_await s->wait();
          ord.push_back(id);
        }(sig, order, i),
        std::string("w") + std::to_string(i));
  }
  sim.spawn(
      [](Simulator& s, std::shared_ptr<Signal> sig) -> Task<void> {
        co_await s.delay(1);
        sig->notify_one();
        co_await s.delay(1);
        sig->notify_one();
        co_await s.delay(1);
        sig->notify_all();
      }(sim, sig),
      "notifier");
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ByteSemaphore, BulkAcquireIsFifoAndNotStarved) {
  Simulator sim;
  auto sem = std::make_shared<ByteSemaphore>(sim, 10);
  std::vector<std::string> order;
  // First a large request that cannot be satisfied yet...
  sim.spawn(
      [](std::shared_ptr<ByteSemaphore> s,
         std::vector<std::string>& ord) -> Task<void> {
        co_await s->acquire(50);
        ord.push_back("large");
      }(sem, order),
      "large");
  // ...then a small one that *would* fit but must queue behind it.
  sim.spawn(
      [](Simulator& s, std::shared_ptr<ByteSemaphore> sem,
         std::vector<std::string>& ord) -> Task<void> {
        co_await s.delay(1);
        co_await sem->acquire(5);
        ord.push_back("small");
      }(sim, sem, order),
      "small");
  sim.spawn(
      [](Simulator& s, std::shared_ptr<ByteSemaphore> sem) -> Task<void> {
        co_await s.delay(2);
        sem->release(45);  // now 55 available -> large(50) then small(5)
      }(sim, sem),
      "releaser");
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"large", "small"}));
  EXPECT_EQ(sem->available(), 0u);
}

TEST(ByteSemaphore, TryAcquireRespectsWaiters) {
  Simulator sim;
  ByteSemaphore sem(sim, 100);
  EXPECT_TRUE(sem.try_acquire(60));
  EXPECT_FALSE(sem.try_acquire(60));
  EXPECT_TRUE(sem.try_acquire(40));
  EXPECT_EQ(sem.available(), 0u);
  sem.release(10);
  EXPECT_EQ(sem.available(), 10u);
}

TEST(Channel, FifoDeliveryAcrossProcesses) {
  Simulator sim;
  auto ch = std::make_shared<Channel<int>>(sim);
  std::vector<int> got;
  sim.spawn(
      [](Simulator& s, std::shared_ptr<Channel<int>> c) -> Task<void> {
        for (int i = 0; i < 5; ++i) {
          co_await s.delay(microseconds(1));
          co_await c->push(i);
        }
      }(sim, ch),
      "producer");
  sim.spawn(
      [](std::shared_ptr<Channel<int>> c, std::vector<int>& out) -> Task<void> {
        for (int i = 0; i < 5; ++i) out.push_back(co_await c->pop());
      }(ch, got),
      "consumer");
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BoundedPushBlocksUntilPop) {
  Simulator sim;
  auto ch = std::make_shared<Channel<int>>(sim, 2);
  SimTime third_push_time = -1;
  sim.spawn(
      [](Simulator& s, std::shared_ptr<Channel<int>> c,
         SimTime& t3) -> Task<void> {
        co_await c->push(1);
        co_await c->push(2);
        co_await c->push(3);  // must wait for the consumer
        t3 = s.now();
      }(sim, ch, third_push_time),
      "producer");
  sim.spawn(
      [](Simulator& s, std::shared_ptr<Channel<int>> c) -> Task<void> {
        co_await s.delay(microseconds(7));
        (void)co_await c->pop();
        (void)co_await c->pop();
        (void)co_await c->pop();
      }(sim, ch),
      "consumer");
  sim.run();
  EXPECT_EQ(third_push_time, microseconds(7));
}

TEST(RateResource, ServiceTimeMatchesRate) {
  Simulator sim;
  RateResource wire(sim, "wire", Rate::gigabits(1.0), /*per_op=*/0);
  SimTime done = -1;
  sim.spawn(
      [](RateResource& r, SimTime& out, Simulator& s) -> Task<void> {
        co_await r.transfer(125'000);  // 1 ms at 1 Gb/s
        out = s.now();
      }(wire, done, sim),
      "xfer");
  sim.run();
  EXPECT_EQ(done, milliseconds(1));
  EXPECT_EQ(wire.stats().operations, 1u);
  EXPECT_EQ(wire.stats().bytes, 125'000u);
}

TEST(RateResource, FifoSerialization) {
  Simulator sim;
  RateResource bus(sim, "bus", Rate::megabytes(100), microseconds(1));
  std::vector<SimTime> finish;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(
        [](RateResource& r, std::vector<SimTime>& out,
           Simulator& s) -> Task<void> {
          co_await r.transfer(100'000);  // 1 ms each + 1 us per-op
          out.push_back(s.now());
        }(bus, finish, sim),
        "xfer" + std::to_string(i));
  }
  sim.run();
  ASSERT_EQ(finish.size(), 3u);
  const SimTime one = milliseconds(1) + microseconds(1);
  EXPECT_EQ(finish[0], one);
  EXPECT_EQ(finish[1], 2 * one);
  EXPECT_EQ(finish[2], 3 * one);
  EXPECT_EQ(bus.stats().waited, (one) + (2 * one));
}

TEST(RateResource, UtilizationAccountsIdleTime) {
  Simulator sim;
  RateResource bus(sim, "bus", Rate::megabytes(100));
  sim.spawn(
      [](Simulator& s, RateResource& r) -> Task<void> {
        co_await s.delay(milliseconds(1));
        co_await r.transfer(100'000);  // another 1 ms busy
      }(sim, bus),
      "xfer");
  sim.run();
  EXPECT_NEAR(bus.utilization(), 0.5, 1e-9);
}

TEST(SplitMix64, DeterministicAndSpread) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
  SplitMix64 r(7);
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) buckets[r.below(4)]++;
  for (int count : buckets) EXPECT_GT(count, 800);
}

// Property: the simulator is deterministic — identical programs produce
// identical event counts and finish times.
TEST(SimulatorProperty, DeterministicReplay) {
  auto run_once = []() {
    Simulator sim;
    auto ch = std::make_shared<Channel<int>>(sim, 3);
    for (int p = 0; p < 4; ++p) {
      sim.spawn(
          [](Simulator& s, std::shared_ptr<Channel<int>> c,
             int id) -> Task<void> {
            SplitMix64 rng(static_cast<std::uint64_t>(id));
            for (int i = 0; i < 20; ++i) {
              co_await s.delay(static_cast<SimTime>(rng.below(1000)));
              co_await c->push(id * 100 + i);
            }
          }(sim, ch, p),
          "prod" + std::to_string(p));
    }
    sim.spawn(
        [](std::shared_ptr<Channel<int>> c) -> Task<void> {
          for (int i = 0; i < 80; ++i) (void)co_await c->pop();
        }(ch),
        "consumer");
    sim.run();
    return std::pair{sim.events_processed(), sim.now()};
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
}


TEST(Tracing, RecordsResourceSpansAndSerializes) {
  Simulator sim;
  TraceRecorder tracer;
  sim.set_tracer(&tracer);
  RateResource bus(sim, "test.bus", Rate::megabytes(100), microseconds(1));
  sim.spawn(
      [](RateResource& r) -> Task<void> {
        co_await r.transfer(50000);
        co_await r.occupy(microseconds(5));
      }(bus),
      "user");
  sim.run();
  EXPECT_EQ(tracer.span_count(), 2u);
  tracer.record_instant("app", "marker \"x\"", microseconds(3));
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("test.bus"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Quotes in names must be escaped.
  EXPECT_NE(json.find("marker \\\"x\\\""), std::string::npos);
}

TEST(Tracing, NoTracerMeansNoOverheadPath) {
  Simulator sim;
  RateResource bus(sim, "bus", Rate::megabytes(100));
  sim.spawn(
      [](RateResource& r) -> Task<void> { co_await r.transfer(1000); }(bus),
      "user");
  sim.run();
  SUCCEED();  // merely exercises the tracer-absent branch
}


TEST(Channel, TryPopAndSizeSemantics) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_TRUE(ch.empty());
  EXPECT_FALSE(ch.try_pop().has_value());
  ch.push_now(7);
  ch.push_now(8);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.try_pop().value(), 7);
  EXPECT_EQ(ch.try_pop().value(), 8);
  EXPECT_FALSE(ch.try_pop().has_value());
}

TEST(ByteSemaphore, ResetReinitializesWhenIdle) {
  Simulator sim;
  ByteSemaphore sem(sim, 5);
  sem.take(3);
  EXPECT_EQ(sem.available(), 2u);
  sem.reset(100);
  EXPECT_EQ(sem.available(), 100u);
}

TEST(Trigger, ResetAllowsReuse) {
  Simulator sim;
  auto trig = std::make_shared<Trigger>(sim);
  int wakeups = 0;
  trig->set();
  EXPECT_TRUE(trig->is_set());
  trig->reset();
  EXPECT_FALSE(trig->is_set());
  sim.spawn(
      [](std::shared_ptr<Trigger> t, int& w) -> Task<void> {
        co_await t->wait();
        ++w;
      }(trig, wakeups),
      "waiter");
  sim.spawn(
      [](Simulator& s, std::shared_ptr<Trigger> t) -> Task<void> {
        co_await s.delay(1);
        t->set();
      }(sim, trig),
      "setter");
  sim.run();
  EXPECT_EQ(wakeups, 1);
}

TEST(RateResource, OccupyAndTransferShareTheFifo) {
  Simulator sim;
  RateResource bus(sim, "bus", Rate::megabytes(1));  // 1 us per byte
  std::vector<int> order;
  sim.spawn(
      [](RateResource& r, std::vector<int>& ord) -> Task<void> {
        co_await r.transfer(10);  // 10 us
        ord.push_back(1);
      }(bus, order),
      "xfer");
  sim.spawn(
      [](RateResource& r, std::vector<int>& ord) -> Task<void> {
        co_await r.occupy(microseconds(1));  // queued behind the transfer
        ord.push_back(2);
      }(bus, order),
      "work");
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), microseconds(11));
}

TEST(Simulator, CallAfterRunsCallbacksInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.call_after(microseconds(5), [&] { order.push_back(2); });
  sim.call_after(microseconds(1), [&] { order.push_back(1); });
  sim.call_after(microseconds(5), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), microseconds(5));
}

TEST(Simulator, DaemonsDoNotCountAsDeadlock) {
  Simulator sim;
  auto ch = std::make_shared<Channel<int>>(sim);
  sim.spawn_daemon(
      [](std::shared_ptr<Channel<int>> c) -> Task<void> {
        for (;;) (void)co_await c->pop();
      }(ch),
      "pump");
  sim.spawn(
      [](Simulator& s, std::shared_ptr<Channel<int>> c) -> Task<void> {
        co_await s.delay(1);
        co_await c->push(1);
      }(sim, ch),
      "producer");
  sim.run();  // must terminate despite the forever-waiting daemon
  SUCCEED();
}

// ---------------------------------------------------------------------
// SmallFn: the small-buffer-optimized callback slot of the event queue.

TEST(SmallFn, InlineCallableInvokesAndMoves) {
  int hits = 0;
  SmallFn f([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hits, 1);
  SmallFn g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  g();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, LargeCaptureFallsBackToHeap) {
  // A capture bigger than the inline buffer must still work (and its
  // destructor must run exactly once).
  auto counter = std::make_shared<int>(0);
  struct Big {
    std::shared_ptr<int> c;
    char pad[128];
  };
  Big big{counter, {}};
  {
    SmallFn f([big] { ++*big.c; });
    EXPECT_EQ(counter.use_count(), 3);  // local + big.c + f's copy
    f();
    SmallFn g(std::move(f));
    g();
  }
  EXPECT_EQ(*counter, 2);
  EXPECT_EQ(counter.use_count(), 2);  // callables destroyed, no leak
}

TEST(SmallFn, MoveOnlyCapturesSupported) {
  auto p = std::make_unique<int>(41);
  SmallFn f([q = std::move(p)]() { ++*q; });
  f();
  SmallFn g;
  EXPECT_FALSE(static_cast<bool>(g));
  g = std::move(f);
  g();
}

// ---------------------------------------------------------------------
// EventQueue: both schedulers must agree on strict (time, seq) order.

SchedulerKind both_kinds[] = {SchedulerKind::kCalendar,
                              SchedulerKind::kLegacyHeap};

TEST(EventQueue, OrderingPropertyHoldsUnderBothSchedulers) {
  // A randomized blast of call_at()s, including same-timestamp ties and
  // far-future outliers, must pop in exact (time, insertion) order
  // under either scheduler.
  for (SchedulerKind kind : both_kinds) {
    ScopedScheduler guard(kind);
    Simulator sim;
    SplitMix64 rng(2024);
    std::vector<std::pair<SimTime, int>> fired;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      // Mix dense near-term times (calendar buckets), exact ties, and
      // sparse far-tier times (beyond the wheel horizon).
      SimTime at = static_cast<SimTime>(rng.below(1 << 14));
      if (i % 7 == 0) at = 1000;                        // heavy tie pile
      if (i % 31 == 0) at += (1ll << 50);               // far tier
      sim.call_at(at, [&fired, at, i, &sim] {
        fired.emplace_back(at, i);
        EXPECT_EQ(sim.now(), at);
      });
    }
    sim.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(n)) << "kind";
    for (std::size_t i = 1; i < fired.size(); ++i) {
      const bool ordered =
          fired[i - 1].first < fired[i].first ||
          (fired[i - 1].first == fired[i].first &&
           fired[i - 1].second < fired[i].second);
      ASSERT_TRUE(ordered) << "inversion at " << i;
    }
  }
}

TEST(EventQueue, SameTimeCallbacksRunInInsertionOrder) {
  for (SchedulerKind kind : both_kinds) {
    ScopedScheduler guard(kind);
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
      sim.call_at(5, [&order, i] { order.push_back(i); });
    }
    sim.run();
    std::vector<int> expect(64);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
  }
}

TEST(EventQueue, CallbacksScheduledMidRunKeepOrder) {
  // Events scheduled from inside callbacks (including at the current
  // time) land after already-queued same-time events — under both
  // schedulers, which is what the differential harness relies on.
  for (SchedulerKind kind : both_kinds) {
    ScopedScheduler guard(kind);
    Simulator sim;
    std::vector<std::string> order;
    sim.call_at(10, [&] {
      order.push_back("a");
      sim.call_at(10, [&] { order.push_back("a-child"); });
      sim.call_at(12, [&] { order.push_back("late"); });
    });
    sim.call_at(10, [&] { order.push_back("b"); });
    sim.call_at(11, [&] { order.push_back("mid"); });
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a-child", "mid",
                                               "late"}));
  }
}

TEST(EventQueue, RunUntilThenFarFutureRebuilds) {
  // run_until() leaves the cursor mid-stream; scheduling both before
  // and after the calendar's current window afterwards must still pop
  // in order (exercises the wheel's rebuild/re-anchor path).
  for (SchedulerKind kind : both_kinds) {
    ScopedScheduler guard(kind);
    Simulator sim;
    std::vector<SimTime> fired;
    auto record = [&fired, &sim] { fired.push_back(sim.now()); };
    for (SimTime t : {100, 200, 300, 400}) sim.call_at(t, record);
    sim.run_until(250);
    EXPECT_EQ(fired, (std::vector<SimTime>{100, 200}));
    sim.call_at(260, record);
    sim.call_at(1ll << 52, record);  // far beyond the wheel horizon
    sim.call_at(350, record);
    sim.run();
    EXPECT_EQ(fired, (std::vector<SimTime>{100, 200, 260, 300, 350, 400,
                                           1ll << 52}));
  }
}

TEST(EventQueue, SchedulerKindIsObservable) {
  ScopedScheduler a(SchedulerKind::kLegacyHeap);
  Simulator s1;
  EXPECT_EQ(s1.scheduler(), SchedulerKind::kLegacyHeap);
  ScopedScheduler b(SchedulerKind::kCalendar);
  Simulator s2;
  EXPECT_EQ(s2.scheduler(), SchedulerKind::kCalendar);
}

// ---------------------------------------------------------------------
// TimerWheel: the intrusive cancel/restart timers the TCP stack uses.

TEST(TimerWheel, FiresAtExactDeadline) {
  Simulator sim;
  TimerWheel wheel(sim);
  Timer t;
  SimTime fired_at = -1;
  t.bind(wheel, [&] { fired_at = sim.now(); });
  t.arm(12345);
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(t.deadline(), 12345);
  sim.run();
  EXPECT_EQ(fired_at, 12345);  // exact, not quantized to a wheel tick
  EXPECT_FALSE(t.armed());
}

TEST(TimerWheel, CancelAndRestartDoNotFireStaleDeadlines) {
  Simulator sim;
  TimerWheel wheel(sim);
  Timer t;
  int fires = 0;
  SimTime fired_at = -1;
  t.bind(wheel, [&] {
    ++fires;
    fired_at = sim.now();
  });
  // Arm/cancel/re-arm churn: only the final deadline may fire.
  for (int i = 1; i <= 100; ++i) {
    t.arm(static_cast<SimTime>(i) * 1000);
    if (i < 100) t.cancel();
  }
  EXPECT_EQ(wheel.armed_count(), 1u);
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_at, 100000);
}

// Regression: arm(at) with `at` already in the past used to link the
// timer into a stale wheel bucket (breaking the "every armed deadline
// >= now" wake invariant), so the fire pass could walk right past it
// and the run would end with the timer still armed. A past deadline
// must clamp to now — same contract as arm_after's negative-delay
// clamp — and fire at the current instant.
TEST(TimerWheel, ArmInThePastClampsToNowAndStillFires) {
  Simulator sim;
  TimerWheel wheel(sim);
  Timer t;
  SimTime fired_at = -1;
  t.bind(wheel, [&] { fired_at = sim.now(); });
  // Advance virtual time far enough that a past deadline lands in a
  // different wheel bucket (buckets are 2^17 ns wide; 3 ms back is ~22
  // buckets behind now).
  const SimTime now = milliseconds(50);
  sim.call_at(now, [&] { t.arm(now - milliseconds(3)); });
  sim.run();
  EXPECT_EQ(fired_at, now);     // fired at the clamped deadline...
  EXPECT_FALSE(t.armed());      // ...and the run drained; no stale timer
  EXPECT_EQ(t.deadline(), now); // deadline() reports the clamped value
}

TEST(TimerWheel, CallbackMayRearmItself) {
  Simulator sim;
  TimerWheel wheel(sim);
  Timer t;
  int fires = 0;
  t.bind(wheel, [&] {
    if (++fires < 5) t.arm_after(100);
  });
  t.arm(50);
  sim.run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(sim.now(), 50 + 4 * 100);
}

TEST(TimerWheel, CallbackMayCancelAPeerDueAtTheSameTime) {
  // Two timers due at the same instant; the first one's callback
  // cancels the second — the second must not fire (the fire pass honors
  // cancellation mid-batch).
  Simulator sim;
  TimerWheel wheel(sim);
  Timer first, second;
  int second_fires = 0;
  first.bind(wheel, [&] { second.cancel(); });
  second.bind(wheel, [&] { ++second_fires; });
  first.arm(500);
  second.arm(500);
  sim.run();
  EXPECT_EQ(second_fires, 0);
  EXPECT_FALSE(second.armed());
}

TEST(TimerWheel, DestroyArmedTimerUnlinksCleanly) {
  Simulator sim;
  TimerWheel wheel(sim);
  int fires = 0;
  {
    Timer t;
    t.bind(wheel, [&] { ++fires; });
    t.arm(1000);
    EXPECT_EQ(wheel.armed_count(), 1u);
  }  // destroyed while armed
  EXPECT_EQ(wheel.armed_count(), 0u);
  sim.run();  // the pending wake event must be a harmless no-op
  EXPECT_EQ(fires, 0);
}

TEST(TimerWheel, WheelOutlivedByNothingSurvivesQueuedWakes) {
  // Destroy the whole wheel (and its timers) with wake events still in
  // the simulator queue — the weak-handle wakes must no-op.
  Simulator sim;
  {
    TimerWheel wheel(sim);
    Timer t;
    t.bind(wheel, [] {});
    t.arm(777);
  }
  sim.run();
  SUCCEED();
}

TEST(TimerWheel, ManyTimersFireInDeadlineOrder) {
  Simulator sim;
  TimerWheel wheel(sim);
  constexpr int kN = 500;
  std::vector<Timer> timers(kN);
  std::vector<SimTime> fired;
  SplitMix64 rng(7);
  std::vector<SimTime> deadlines;
  for (int i = 0; i < kN; ++i) {
    // Spread across many wheel buckets and several wraps.
    const SimTime at = static_cast<SimTime>(rng.below(1ull << 26)) + 1;
    deadlines.push_back(at);
    timers[i].bind(wheel, [&fired, &sim] { fired.push_back(sim.now()); });
    timers[i].arm(at);
  }
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  std::sort(deadlines.begin(), deadlines.end());
  EXPECT_EQ(fired, deadlines);
}

}  // namespace
}  // namespace pp::sim
