// Golden-figure regression: freshly measured fig1-fig5 curves against
// the .dat files committed under data/golden/.
//
// The goldens pin the *behavior* of the whole stack — hardware models,
// TCP, the message-passing libraries and the event scheduler — at known
// good values. Any change that shifts a curve shows up here as a
// diverging data point, with the figure, curve and message size in the
// failure message. Intentional behavior changes regenerate the files:
//
//   PP_UPDATE_GOLDEN=1 ctest -L golden    # or run test_golden directly
//
// then commit the new data/golden/*.dat. The comparison tolerance is
// relative (kRelTol): the runs themselves are bit-deterministic, the
// slack only absorbs the %.6g formatting of the .dat files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/figures.h"
#include "mp/collectives.h"
#include "mp/fabric_lib.h"
#include "netpipe/report.h"
#include "sweep/sweep.h"

#ifndef PP_GOLDEN_DIR
#error "build must define PP_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace pp;

constexpr double kRelTol = 1e-4;

/// Golden runs use a reduced schedule so the whole label stays in
/// tier-1 time budgets; the options are part of the golden contract —
/// changing them requires regenerating the files.
netpipe::RunOptions golden_run_options() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 256 << 10;
  o.repeats = 1;
  o.warmup = 0;
  return o;
}

bool update_mode() {
  const char* v = std::getenv("PP_UPDATE_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

struct DatRow {
  std::uint64_t bytes = 0;
  double time_us = 0.0;
  double mbps = 0.0;
};

std::vector<DatRow> read_dat(const std::filesystem::path& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "missing golden file " << path
                        << " — run with PP_UPDATE_GOLDEN=1 to create it";
  std::vector<DatRow> rows;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    DatRow r;
    if (is >> r.bytes >> r.time_us >> r.mbps) rows.push_back(r);
  }
  return rows;
}

void expect_close(double golden, double fresh, const std::string& what) {
  const double denom = std::max(std::abs(golden), 1e-12);
  EXPECT_LE(std::abs(fresh - golden) / denom, kRelTol)
      << what << ": golden " << golden << " vs fresh " << fresh;
}

/// Runs one figure spec, then per curve either rewrites or diffs its
/// golden .dat.
void check_figure(const std::string& prefix, sweep::SweepSpec spec,
                  std::size_t curve_limit = 0) {
  const auto sr = sweep::run_sweep(spec);
  const auto curves = bench::curves_of(sr, curve_limit);
  const std::filesystem::path dir(PP_GOLDEN_DIR);

  if (update_mode()) {
    bench::write_figure_dats(dir.string(), prefix, curves);
    GTEST_SKIP() << "regenerated " << curves.size() << " golden curves in "
                 << dir;
  }

  for (const auto& c : curves) {
    const auto path = dir / (prefix + "_" + bench::label_slug(c.label) +
                             ".dat");
    SCOPED_TRACE(path.string());
    const auto golden = read_dat(path);
    if (golden.empty()) continue;  // read_dat already failed the test
    ASSERT_EQ(golden.size(), c.result.points.size())
        << "point count changed for " << c.label;
    for (std::size_t i = 0; i < golden.size(); ++i) {
      const auto& g = golden[i];
      const auto& p = c.result.points[i];
      ASSERT_EQ(g.bytes, p.bytes) << "schedule changed at row " << i;
      const std::string what = c.label + " @ " + std::to_string(g.bytes) +
                               " B";
      expect_close(g.time_us, sim::to_microseconds(p.elapsed),
                   what + " time_us");
      expect_close(g.mbps, p.mbps(), what + " mbps");
    }
  }
}

// ---------------------------------------------------------------------------
// Fabric scaling curves: collective latency vs node count
// ---------------------------------------------------------------------------

/// Median-of-3 latency (last rank out minus first rank in) of one
/// collective on an N-node fat-tree; the golden contract mirrors
/// bench/scaling's measurement.
sim::SimTime scaling_latency(
    int nodes, const std::function<sim::Task<void>(mp::RingComm)>& op) {
  constexpr int kIters = 3;
  mp::FabricWorldOptions opt;
  opt.shards = 1;
  opt.host = hw::presets::pentium4_pc();
  mp::FabricWorld world(nodes, opt);
  std::vector<sim::SimTime> first_in(kIters,
                                     std::numeric_limits<sim::SimTime>::max());
  std::vector<sim::SimTime> last_out(kIters, 0);
  for (int r = 0; r < nodes; ++r) {
    world.spawn(
        r,
        [](mp::FabricWorld& w, int rank,
           const std::function<sim::Task<void>(mp::RingComm)>& body,
           std::vector<sim::SimTime>& in,
           std::vector<sim::SimTime>& out) -> sim::Task<void> {
          sim::Simulator& sm = w.simulator(rank);
          const mp::RingComm comm = w.comm(rank);
          for (int i = 0; i < kIters; ++i) {
            const auto it = static_cast<std::size_t>(i);
            in[it] = std::min(in[it], sm.now());
            co_await body(comm);
            out[it] = std::max(out[it], sm.now());
          }
        }(world, r, op, first_in, last_out),
        "rank" + std::to_string(r));
  }
  world.run();
  std::vector<sim::SimTime> lat(kIters);
  for (int i = 0; i < kIters; ++i) lat[i] = last_out[i] - first_in[i];
  std::sort(lat.begin(), lat.end());
  return lat[kIters / 2];
}

/// One curve = one .dat; rows are "nodes time_us 0" (the throughput
/// column is meaningless for a latency curve and pinned at zero).
void check_scaling_curve(
    const std::string& name, const std::vector<int>& nodes,
    const std::function<sim::Task<void>(mp::RingComm)>& op) {
  const std::filesystem::path path =
      std::filesystem::path(PP_GOLDEN_DIR) / ("scaling_" + name + ".dat");
  std::vector<DatRow> fresh;
  for (int n : nodes) {
    fresh.push_back(DatRow{static_cast<std::uint64_t>(n),
                           sim::to_microseconds(scaling_latency(n, op)),
                           0.0});
  }

  if (update_mode()) {
    std::ofstream f(path);
    f << "# nodes time_us mbps — collective latency vs node count\n";
    for (const DatRow& r : fresh) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%llu %.6g %.6g\n",
                    static_cast<unsigned long long>(r.bytes), r.time_us,
                    r.mbps);
      f << buf;
    }
    GTEST_SKIP() << "regenerated " << path;
  }

  SCOPED_TRACE(path.string());
  const auto golden = read_dat(path);
  if (golden.empty()) return;  // read_dat already failed the test
  ASSERT_EQ(golden.size(), fresh.size()) << "node-count set changed";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(golden[i].bytes, fresh[i].bytes) << "node set changed";
    expect_close(golden[i].time_us, fresh[i].time_us,
                 name + " @ N=" + std::to_string(golden[i].bytes) +
                     " time_us");
  }
}

TEST(Golden, ScalingBarrier) {
  const std::vector<int> nodes = {8, 16, 64};
  check_scaling_curve("barrier_ring", nodes,
                      [](mp::RingComm c) { return mp::ring_barrier(c); });
  check_scaling_curve("barrier_dissemination", nodes, [](mp::RingComm c) {
    return mp::dissemination_barrier(c);
  });
}

TEST(Golden, ScalingAllreduce) {
  const std::vector<int> nodes = {8, 16, 64};
  constexpr std::uint64_t kBytes = 16 << 10;
  check_scaling_curve("allreduce_ring", nodes, [](mp::RingComm c) {
    return mp::ring_allreduce(c, kBytes);
  });
  check_scaling_curve("allreduce_doubling", nodes, [](mp::RingComm c) {
    return mp::doubling_allreduce(c, kBytes);
  });
}

TEST(Golden, Figure1) {
  check_figure("fig1", bench::fig1_spec(golden_run_options()));
}

TEST(Golden, Figure2) {
  check_figure("fig2", bench::fig2_spec(golden_run_options()));
}

TEST(Golden, Figure3) {
  check_figure("fig3", bench::fig3_spec(golden_run_options()));
}

TEST(Golden, Figure4) {
  check_figure("fig4", bench::fig4_spec(golden_run_options()),
               bench::fig4_figure_curves());
}

TEST(Golden, Figure5) {
  check_figure("fig5", bench::fig5_spec(golden_run_options()),
               bench::fig5_figure_curves());
}

}  // namespace
