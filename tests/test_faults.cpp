// Tests for the fault-injection subsystem (src/faults) and the recovery
// machinery it exercises: deterministic per-pipe fault streams, the
// null-plan bit-identity guarantee, TCP retransmission/backoff/checksum
// recovery under injected faults for every stream library, the GM and
// VIA delivery watchdogs, the rendezvous handshake watchdog, NIC and
// host injectors, crash/restart recovery with epoch fencing and TCP
// keepalive, pp.faultplan/1 serialization, the ddmin plan minimizer,
// and the sweep runner's degraded-job reporting.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "chaos/chaos.h"
#include "faults/config.h"
#include "faults/minimize.h"
#include "faults/plan.h"
#include "faults/plan_io.h"
#include "gmsim/gm.h"
#include "mp/daemon_relay.h"
#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/stream_lib.h"
#include "mp/tcgmsg.h"
#include "mp/testbed.h"
#include "netpipe/modules.h"
#include "netpipe/runner.h"
#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/pipe.h"
#include "simhw/presets.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"
#include "tcpsim/socket.h"
#include "viasim/via.h"

namespace pp {
namespace {

namespace presets = hw::presets;

// ---- Fixtures --------------------------------------------------------------

/// Two nodes, one duplex link, one connected TCP socket pair.
struct Pair {
  explicit Pair(const tcp::Sysctl& sysctl = tcp::Sysctl::tuned())
      : cluster(sim),
        a(cluster.add_node(presets::pentium4_pc())),
        b(cluster.add_node(presets::pentium4_pc())),
        link(cluster.connect(a, b, presets::netgear_ga620(),
                             presets::back_to_back())),
        stack_a(a, sysctl),
        stack_b(b, sysctl) {
    auto [sa, sb] = tcp::connect(stack_a, stack_b, link);
    sock_a = sa;
    sock_b = sb;
  }

  /// One-way transfer of `bytes` from a to b; returns the finish time.
  sim::SimTime transfer(std::uint64_t bytes) {
    sim::SimTime done = 0;
    sim.spawn(
        [](Pair& f, std::uint64_t n) -> sim::Task<void> {
          co_await f.sock_a.send(n, 42);
        }(*this, bytes),
        "sender");
    sim.spawn(
        [](Pair& f, std::uint64_t n, sim::SimTime& out) -> sim::Task<void> {
          co_await f.sock_b.recv_exact(n);
          out = f.sim.now();
        }(*this, bytes, done),
        "receiver");
    sim.run();
    return done;
  }

  sim::Simulator sim;
  hw::Cluster cluster;
  hw::Node& a;
  hw::Node& b;
  hw::Cluster::Duplex link;
  tcp::TcpStack stack_a;
  tcp::TcpStack stack_b;
  tcp::Socket sock_a;
  tcp::Socket sock_b;
};

struct GmBed {
  explicit GmBed(gm::GmConfig cfg = {})
      : cluster(sim),
        a(cluster.add_node(presets::pentium4_pc())),
        b(cluster.add_node(presets::pentium4_pc())),
        fabric(cluster, a, b, presets::myrinet_pci64a(),
               presets::back_to_back(), cfg) {}
  sim::Simulator sim;
  hw::Cluster cluster;
  hw::Node& a;
  hw::Node& b;
  gm::GmFabric fabric;
};

struct ViaBed {
  explicit ViaBed(via::ViaConfig cfg = {})
      : cluster(sim),
        a(cluster.add_node(presets::pentium4_pc())),
        b(cluster.add_node(presets::pentium4_pc())),
        fabric(cluster, a, b, presets::giganet_clan(), presets::switched(),
               cfg) {}
  sim::Simulator sim;
  hw::Cluster cluster;
  hw::Node& a;
  hw::Node& b;
  via::ViaFabric fabric;
};

sim::SimTime gm_pingpong(GmBed& bed, std::uint64_t bytes, int reps = 1) {
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](gm::GmPort& p, std::uint64_t n, int reps, sim::Simulator& s,
         sim::SimTime& out) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await p.send(n, 1);
          co_await p.recv(n, 1);
        }
        out = s.now();
      }(bed.fabric.port_a(), bytes, reps, bed.sim, done),
      "ping");
  bed.sim.spawn(
      [](gm::GmPort& p, std::uint64_t n, int reps) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await p.recv(n, 1);
          co_await p.send(n, 1);
        }
      }(bed.fabric.port_b(), bytes, reps),
      "pong");
  bed.sim.run();
  return done;
}

sim::SimTime via_pingpong(ViaBed& bed, std::uint64_t bytes, int reps = 1) {
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](via::ViEndpoint& p, std::uint64_t n, int reps, sim::Simulator& s,
         sim::SimTime& out) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await p.send(n, 1);
          co_await p.recv(n, 1);
        }
        out = s.now();
      }(bed.fabric.end_a(), bytes, reps, bed.sim, done),
      "ping");
  bed.sim.spawn(
      [](via::ViEndpoint& p, std::uint64_t n, int reps) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await p.recv(n, 1);
          co_await p.send(n, 1);
        }
      }(bed.fabric.end_b(), bytes, reps),
      "pong");
  bed.sim.run();
  return done;
}

/// Ping-pongs `bytes` `reps` times over a connected library pair and
/// returns the finish time (0 = the exchange never completed).
template <typename L>
sim::SimTime lib_pingpong(mp::PairBed& bed, L& a, L& b, std::uint64_t bytes,
                          int reps) {
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](L& l, std::uint64_t n, int reps, sim::Simulator& s,
         sim::SimTime& out) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await l.send(1, n, 1);
          co_await l.recv(1, n, 1);
        }
        out = s.now();
      }(a, bytes, reps, bed.sim, done),
      "ping");
  bed.sim.spawn(
      [](L& l, std::uint64_t n, int reps) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await l.recv(0, n, 1);
          co_await l.send(0, n, 1);
        }
      }(b, bytes, reps),
      "pong");
  bed.sim.run();
  return done;
}

faults::FaultPlan burst_loss_plan(double good_to_bad, std::uint64_t seed) {
  faults::LinkFaultConfig cfg;
  cfg.ge_good_to_bad = good_to_bad;  // bad state deaf, mean burst 4 frames
  faults::FaultPlan plan;
  plan.seed = seed;
  plan.add_link("", cfg);
  return plan;
}

// ---- Deterministic seeding (satellite: set_loss default-seed fix) ----------

TEST(FaultSeeding, PipesInOneClusterGetDistinctStreams) {
  Pair p;
  // The forward and reverse pipes of one link must never share a drop
  // sequence; their streams derive from the cluster seed and pipe name.
  EXPECT_NE(p.link.forward.fault_seed(), p.link.backward.fault_seed());
  // And the derivation is stable: a second identical cluster gets the
  // same per-pipe seeds.
  Pair q;
  EXPECT_EQ(p.link.forward.fault_seed(), q.link.forward.fault_seed());
  EXPECT_EQ(p.link.backward.fault_seed(), q.link.backward.fault_seed());
}

TEST(FaultSeeding, ClusterSeedSelectsADifferentStreamFamily) {
  sim::Simulator s1, s2;
  hw::Cluster c1(s1, /*seed=*/1), c2(s2, /*seed=*/2);
  auto& a1 = c1.add_node(presets::pentium4_pc());
  auto& b1 = c1.add_node(presets::pentium4_pc());
  auto& a2 = c2.add_node(presets::pentium4_pc());
  auto& b2 = c2.add_node(presets::pentium4_pc());
  auto l1 = c1.connect(a1, b1, presets::netgear_ga620(),
                       presets::back_to_back());
  auto l2 = c2.connect(a2, b2, presets::netgear_ga620(),
                       presets::back_to_back());
  EXPECT_NE(l1.forward.fault_seed(), l2.forward.fault_seed());
}

TEST(FaultSeeding, LossRunsReproduceExactly) {
  auto run = [] {
    Pair p;
    p.link.forward.set_loss(0.03);  // default seed: derived, not shared
    p.link.backward.set_loss(0.03);
    const sim::SimTime done = p.transfer(1 << 20);
    return std::tuple(done, p.link.forward.packets_dropped(),
                      p.link.backward.packets_dropped(),
                      p.sock_a.stats().retransmits);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<0>(first), 0u);
  EXPECT_GT(std::get<1>(first), 0u);  // data direction saw drops
}

// ---- Null-plan bit-identity (tentpole acceptance) --------------------------

TEST(FaultPlan, EmptyPlanLeavesRunsBitIdentical) {
  auto run = [](bool with_plan) {
    Pair p;
    if (with_plan) {
      faults::FaultPlan plan;
      // A rule whose config is all-default arms nothing either.
      plan.add_link("", faults::LinkFaultConfig{});
      plan.add_nic("", faults::NicFaultConfig{});
      plan.add_host(-1, faults::HostFaultConfig{});
      plan.add_crash(-1, faults::HostCrashConfig{});  // at=0: disarmed
      EXPECT_TRUE(plan.empty());
      faults::apply(plan, p.cluster);
    }
    const sim::SimTime done = p.transfer(512 << 10);
    return std::tuple(done, p.link.forward.packets_delivered(),
                      p.link.forward.packets_dropped(),
                      p.sock_a.stats().retransmits,
                      p.sock_b.stats().bytes_received);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultPlan, ArmedButNeverFiringFaultsAreBitIdentical) {
  // Satellite regression: arming an injector must not itself perturb the
  // run. Probabilities are armed (so the per-frame RNG draws all happen)
  // but astronomically unlikely to fire, and the rx ring is far larger
  // than any backlog the workload can build — the run must be
  // bit-identical to one with no plan at all. In particular the armed
  // ring-slots/irq-stall path must not advance the RxCoalescer regime or
  // shift interrupt times when nothing fires.
  auto run = [](bool with_plan) {
    Pair p;
    if (with_plan) {
      faults::LinkFaultConfig lf;
      lf.duplicate = 1e-12;
      faults::NicFaultConfig nf;
      nf.ring_slots = 1 << 20;
      nf.irq_stall = 1e-12;
      faults::FaultPlan plan;
      plan.seed = 71;
      plan.add_link("", lf);
      plan.add_nic("", nf);
      EXPECT_FALSE(plan.empty());
      faults::apply(plan, p.cluster);
    }
    const sim::SimTime done = p.transfer(512 << 10);
    return std::tuple(done, p.link.forward.packets_delivered(),
                      p.link.forward.packets_dropped(),
                      p.link.forward.packets_duplicated(),
                      p.link.forward.irq_stalls(),
                      p.link.forward.ring_overflow_drops(),
                      p.sock_a.stats().retransmits,
                      p.sock_b.stats().bytes_received);
  };
  const auto armed = run(true);
  EXPECT_EQ(run(false), armed);
  EXPECT_EQ(std::get<3>(armed), 0u);  // nothing actually fired
  EXPECT_EQ(std::get<4>(armed), 0u);
  EXPECT_EQ(std::get<5>(armed), 0u);
}

TEST(FaultPlan, SameSeedReproducesAcrossThreadCounts) {
  // The same plan + seed must give the same fault sequence regardless of
  // sweep parallelism: run three faulted NetPIPE jobs on 1 thread and on
  // 4 and compare results field by field.
  auto faulted_job = [](double loss, std::uint64_t seed) {
    return sweep::JobSpec{
        "loss", [loss, seed] {
          mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                          tcp::Sysctl::tuned());
          faults::apply(faults::uniform_loss_plan(loss, seed), bed.cluster);
          auto [sa, sb] = bed.socket_pair("faulted");
          netpipe::TcpTransport ta(sa), tb(sb);
          netpipe::RunOptions o;
          o.schedule.max_bytes = 16 << 10;
          o.repeats = 1;
          o.warmup = 0;
          return netpipe::run_netpipe(bed.sim, ta, tb, o);
        }};
  };
  sweep::SweepSpec spec;
  spec.name = "repro";
  spec.jobs = {faulted_job(0.01, 1), faulted_job(0.02, 2),
               faulted_job(0.05, 3)};
  sweep::SweepOptions serial, parallel;
  serial.threads = 1;
  parallel.threads = 4;
  const auto r1 = run_sweep(spec, serial);
  const auto r4 = run_sweep(spec, parallel);
  ASSERT_EQ(r1.jobs.size(), r4.jobs.size());
  std::uint64_t total_drops = 0;
  for (std::size_t i = 0; i < r1.jobs.size(); ++i) {
    EXPECT_EQ(r1.jobs[i].result.max_mbps, r4.jobs[i].result.max_mbps);
    EXPECT_EQ(r1.jobs[i].result.counters.wire_drops,
              r4.jobs[i].result.counters.wire_drops);
    EXPECT_EQ(r1.jobs[i].result.counters.retransmits,
              r4.jobs[i].result.counters.retransmits);
    total_drops += r1.jobs[i].result.counters.wire_drops;
  }
  EXPECT_GT(total_drops, 0u);  // the faults actually fired
}

// ---- TCP recovery under burst loss, every stream library (satellite) -------

/// Runs a 200 kB x 2 ping-pong under Gilbert-Elliott burst loss on both
/// link directions and checks the exchange completes through TCP's
/// retransmission machinery (go-back-N rewinds under delayed ACKs).
template <typename L>
void expect_lib_survives_bursts(mp::PairBed& bed, L& a, L& b,
                                std::uint64_t seed) {
  faults::apply(burst_loss_plan(0.01, seed), bed.cluster);
  const sim::SimTime done = lib_pingpong(bed, a, b, 200 << 10, 2);
  EXPECT_GT(done, 0u) << "exchange did not complete under burst loss";
  EXPECT_GT(bed.link.forward.packets_dropped() +
                bed.link.backward.packets_dropped(),
            0u);
  const auto ca = a.protocol_counters();
  const auto cb = b.protocol_counters();
  EXPECT_GT(ca.retransmits + cb.retransmits, 0u);
  EXPECT_GT(ca.wire_drops + cb.wire_drops, 0u);
}

TEST(TcpRecovery, MpichSurvivesBurstLoss) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto [a, b] = mp::Mpich::create_pair(bed);
  expect_lib_survives_bursts(bed, *a, *b, 21);
}

TEST(TcpRecovery, LamSurvivesBurstLoss) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  mp::LamOptions o;
  o.mode = mp::LamMode::kC2cO;
  auto [a, b] = mp::Lam::create_pair(bed, o);
  expect_lib_survives_bursts(bed, *a, *b, 22);
}

TEST(TcpRecovery, MpLiteSurvivesBurstLoss) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto [a, b] = mp::MpLite::create_pair(bed);
  expect_lib_survives_bursts(bed, *a, *b, 23);
}

TEST(TcpRecovery, PvmSurvivesBurstLoss) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  mp::PvmOptions o;
  o.route = mp::PvmRoute::kDirect;
  auto [a, b] = mp::Pvm::create_pair(bed, o);
  expect_lib_survives_bursts(bed, *a, *b, 24);
}

TEST(TcpRecovery, TcgmsgSurvivesBurstLoss) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto [a, b] = mp::Tcgmsg::create_pair(bed, {});
  expect_lib_survives_bursts(bed, *a, *b, 25);
}

TEST(TcpRecovery, RtoBackoffRecoversAcrossLinkFlaps) {
  Pair p;
  faults::LinkFaultConfig cfg;
  // Deaf 1 ms in every 7. The period must not divide the RTO values
  // (40..640 ms are all multiples of 5 ms): after an RTO collapses the
  // window to one segment, a period-locked flap would swallow every
  // single retransmission at the same phase, forever.
  cfg.flap_period = sim::milliseconds(7.0);
  cfg.flap_down = sim::milliseconds(1.0);
  faults::FaultPlan plan;
  plan.add_link("", cfg);
  faults::apply(plan, p.cluster);
  const sim::SimTime done = p.transfer(1 << 20);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(p.sock_b.stats().bytes_received, 1u << 20);
  // The opening flap window swallows whole flights: only the RTO (with
  // exponential backoff) can restart the transfer.
  EXPECT_GT(p.sock_a.stats().rto_timeouts, 0u);
  EXPECT_GT(p.link.forward.flap_drops() + p.link.backward.flap_drops(), 0u);
}

TEST(TcpRecovery, ChecksumDropsCorruptedSegmentsAndRecovers) {
  Pair p;
  faults::LinkFaultConfig cfg;
  cfg.corrupt = 0.02;
  faults::FaultPlan plan;
  plan.seed = 31;
  plan.add_link("", cfg);
  faults::apply(plan, p.cluster);
  const sim::SimTime done = p.transfer(1 << 20);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(p.sock_b.stats().bytes_received, 1u << 20);
  EXPECT_GT(p.link.forward.packets_corrupted(), 0u);
  EXPECT_GT(p.sock_b.stats().checksum_drops, 0u);
  EXPECT_GT(p.sock_a.stats().retransmits, 0u);
}

TEST(TcpRecovery, WireDropsCountBothDirections) {
  Pair p;
  p.link.backward.set_loss(0.05);  // only the ACK path is lossy
  p.transfer(1 << 20);
  // wire_drops() must see reverse-path loss too; tx_wire_drops() is the
  // per-socket outbound share (sock_a sends on the forward pipe only).
  EXPECT_GT(p.sock_a.wire_drops(), 0u);
  EXPECT_EQ(p.sock_a.tx_wire_drops(), 0u);
  EXPECT_EQ(p.sock_a.wire_drops(),
            p.sock_a.tx_wire_drops() + p.sock_b.tx_wire_drops());
}

// Regression for the batched-rx fault contract: the flap verdict is
// recorded when the frame exits the wire, NOT when its coalesced
// interrupt batch flushes. A frame accepted while the link was up must
// deliver even if a flap lands inside the coalescing window, and a
// frame that hit a down window stays dropped even when the flush
// happens after the link came back. Evaluating any fault state at
// flush time would retro-drop (or revive) across the window.
TEST(LinkFaults, FlapInsideCoalescingWindowCannotRetroDropOrRevive) {
  sim::Simulator sim;
  hw::Cluster cluster(sim, 5);
  auto& a = cluster.add_node(presets::pentium4_pc());
  auto& b = cluster.add_node(presets::pentium4_pc());
  hw::NicConfig nic = presets::netgear_ga620();
  // Stretch the coalescing window so the interrupt flush trails the
  // wire exit by ~5 ms — far across a flap edge.
  nic.sparse_irq_delay = sim::milliseconds(5.0);
  nic.busy_irq_delay = sim::milliseconds(5.0);
  auto link = cluster.connect(a, b, nic, presets::back_to_back());

  // Link deaf during [0, 1ms) of every 4 ms: down windows at [0, 1),
  // [4, 5), [8, 9) ms ...
  faults::LinkFaultConfig cfg;
  cfg.flap_period = sim::milliseconds(4.0);
  cfg.flap_down = sim::milliseconds(1.0);
  link.forward.set_link_faults(cfg, link.forward.fault_seed());

  auto inject_at = [&](sim::SimTime at) {
    sim.call_at(at, [&] {
      hw::Packet p;
      p.dma_bytes = 64;
      p.wire_bytes = 64;
      p.desc = sim.packet_arena().make_payload(64);
      link.forward.inject(std::move(p));
    });
  };
  // Exits the wire ~3.5 ms (link up); its flush lands ~8.5 ms — inside
  // the [8, 9) down window. Must deliver anyway.
  inject_at(sim::milliseconds(3.5));
  // Exits the wire ~12.2 ms — inside the [12, 13) down window; its
  // flush would land ~17.2 ms with the link back up. Must stay dropped.
  inject_at(sim::milliseconds(12.2));
  sim.run();

  EXPECT_EQ(link.forward.packets_delivered(), 1u);
  EXPECT_EQ(link.forward.flap_drops(), 1u);
  EXPECT_EQ(link.forward.packets_dropped(), 1u);
  EXPECT_EQ(link.forward.rx_backlog(), 0u);
}

// ---- OS-bypass fabric recovery ---------------------------------------------

TEST(GmRecovery, DeliveryWatchdogCompletesPingpongUnderLoss) {
  gm::GmConfig cfg;
  cfg.delivery_timeout = sim::microseconds(500.0);
  GmBed bed(cfg);
  faults::apply(faults::uniform_loss_plan(0.05, 41), bed.cluster);
  const sim::SimTime done = gm_pingpong(bed, 256 << 10, 3);
  EXPECT_GT(done, 0u) << "GM exchange wedged under loss";
  EXPECT_EQ(bed.fabric.port_a().messages_received(), 3u);
  EXPECT_EQ(bed.fabric.port_b().messages_received(), 3u);
  const auto& pa = bed.fabric.port_a();
  const auto& pb = bed.fabric.port_b();
  EXPECT_GT(pa.frags_lost() + pb.frags_lost(), 0u);
  EXPECT_GT(pa.delivery_failures() + pb.delivery_failures(), 0u);
}

TEST(GmRecovery, DuplicatesAreFilteredInHardware) {
  GmBed bed;  // no watchdog needed: duplicates only add frames
  faults::LinkFaultConfig cfg;
  cfg.duplicate = 0.05;
  faults::FaultPlan plan;
  plan.seed = 43;
  plan.add_link("", cfg);
  faults::apply(plan, bed.cluster);
  const sim::SimTime done = gm_pingpong(bed, 256 << 10, 3);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(bed.fabric.port_a().messages_received(), 3u);
  EXPECT_GT(bed.cluster.pipes()[0]->packets_duplicated() +
                bed.cluster.pipes()[1]->packets_duplicated(),
            0u);
}

TEST(ViaRecovery, RdmaHandshakeRecoversUnderLoss) {
  via::ViaConfig cfg;
  cfg.delivery_timeout = sim::microseconds(500.0);
  ViaBed bed(cfg);
  faults::apply(faults::uniform_loss_plan(0.05, 47), bed.cluster);
  // Well above rdma_threshold: every rep exercises the REQ/ACK handshake
  // and the RDMA payload path under loss.
  const sim::SimTime done = via_pingpong(bed, 256 << 10, 3);
  EXPECT_GT(done, 0u) << "VIA exchange wedged under loss";
  const auto& ea = bed.fabric.end_a();
  const auto& eb = bed.fabric.end_b();
  EXPECT_GT(ea.rdma_transfers() + eb.rdma_transfers(), 0u);
  EXPECT_GT(ea.frags_lost() + eb.frags_lost(), 0u);
  EXPECT_GT(ea.delivery_failures() + eb.delivery_failures(), 0u);
}

TEST(ViaRecovery, SmallMessagesRetryUnderLoss) {
  via::ViaConfig cfg;
  cfg.delivery_timeout = sim::microseconds(500.0);
  ViaBed bed(cfg);
  // 4 kB stays below rdma_threshold; enough reps that the loss stream
  // is certain to hit at least one in-flight fragment.
  faults::apply(faults::uniform_loss_plan(0.15, 53), bed.cluster);
  const sim::SimTime done = via_pingpong(bed, 4 << 10, 40);
  EXPECT_GT(done, 0u);
  EXPECT_GT(bed.fabric.end_a().frags_lost() + bed.fabric.end_b().frags_lost(),
            0u);
  EXPECT_GT(bed.fabric.end_a().delivery_failures() +
                bed.fabric.end_b().delivery_failures(),
            0u);
}

// ---- Rendezvous handshake watchdog -----------------------------------------

TEST(Rendezvous, WatchdogResendsRtsAndStillCompletes) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  mp::StreamConfig cfg;
  cfg.name = "rdv-test";
  cfg.eager_max = 1024;  // force rendezvous for the 64 kB payload
  // Far below the handshake RTT, so the watchdog fires spuriously: the
  // re-sent RTS must be deduplicated and the exchange must still finish
  // with the right byte counts (stall-then-recover, never deadlock).
  cfg.rendezvous_timeout = sim::microseconds(5.0);
  mp::StreamLibrary a(bed.sim, 0, bed.node_a, cfg);
  mp::StreamLibrary b(bed.sim, 1, bed.node_b, cfg);
  auto [sa, sb] = bed.socket_pair("rdv");
  mp::wire_pair(a, b, std::move(sa), std::move(sb));
  const sim::SimTime done = lib_pingpong(bed, a, b, 64 << 10, 2);
  EXPECT_GT(done, 0u) << "rendezvous deadlocked";
  EXPECT_GT(a.rendezvous_retries(), 0u);
  EXPECT_GT(a.rendezvous_count(), 0u);
  EXPECT_EQ(a.protocol_counters().rendezvous_retries,
            a.rendezvous_retries());
}

TEST(Rendezvous, NoTimeoutMeansNoRetries) {
  mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                  tcp::Sysctl::tuned());
  auto [a, b] = mp::Mpich::create_pair(bed);
  const sim::SimTime done = lib_pingpong(bed, *a, *b, 256 << 10, 2);
  EXPECT_GT(done, 0u);
  EXPECT_GT(a->rendezvous_count(), 0u);
  EXPECT_EQ(a->rendezvous_retries(), 0u);
}

// ---- NIC and host injectors ------------------------------------------------

TEST(NicFaults, RingOverflowAndIrqStallsRecoverThroughTcp) {
  Pair p;
  faults::NicFaultConfig nf;
  nf.ring_slots = 2;
  nf.irq_stall = 0.3;
  faults::FaultPlan plan;
  plan.seed = 61;
  plan.add_nic("", nf);
  faults::apply(plan, p.cluster);
  const sim::SimTime done = p.transfer(1 << 20);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(p.sock_b.stats().bytes_received, 1u << 20);
  EXPECT_GT(p.link.forward.irq_stalls(), 0u);
  // Stalled interrupts back the 2-slot ring up until frames overflow.
  EXPECT_GT(p.link.forward.ring_overflow_drops(), 0u);
  EXPECT_GT(p.sock_a.stats().retransmits, 0u);
}

TEST(HostFaults, PauseWindowsSlowTheRunDown) {
  const sim::SimTime clean = Pair().transfer(512 << 10);
  Pair p;
  faults::HostFaultConfig hf;
  hf.pause_period = sim::microseconds(200.0);
  hf.pause_duration = sim::microseconds(100.0);
  faults::FaultPlan plan;
  plan.add_host(-1, hf);
  faults::apply(plan, p.cluster);
  const sim::SimTime paused = p.transfer(512 << 10);
  EXPECT_GT(paused, clean);
  EXPECT_EQ(p.sock_b.stats().bytes_received, 512u << 10);
}

// ---- Crash/restart recovery (tentpole) -------------------------------------

TEST(CrashRecovery, TcpTransferSurvivesCrashRestartOfEitherEnd) {
  // 1 MB takes ~9 ms fault-free, so a crash at 1 ms lands mid-transfer.
  // Whichever end dies, the restarted node re-handshakes under the new
  // power epoch and the transfer must still complete end to end.
  for (const int victim : {0, 1}) {
    Pair p;
    faults::HostCrashConfig cc;
    cc.at = sim::milliseconds(1.0);
    cc.downtime = sim::milliseconds(2.0);
    faults::FaultPlan plan;
    plan.add_crash(victim, cc);
    faults::apply(plan, p.cluster);
    const sim::SimTime done = p.transfer(1 << 20);
    EXPECT_GT(done, cc.at + cc.downtime) << "victim node " << victim;
    EXPECT_EQ(p.cluster.node(static_cast<std::size_t>(victim)).crash_count(),
              1u);
    EXPECT_GE(p.sock_a.stats().reconnects + p.sock_b.stats().reconnects, 1u)
        << "victim node " << victim;
  }
}

TEST(CrashRecovery, CrashRestartRunsAreDeterministic) {
  auto run = [] {
    Pair p;
    faults::HostCrashConfig cc;
    cc.at = sim::milliseconds(1.0);
    cc.downtime = sim::milliseconds(2.0);
    faults::FaultPlan plan;
    plan.add_crash(1, cc);
    faults::apply(plan, p.cluster);
    const sim::SimTime done = p.transfer(1 << 20);
    return std::tuple(done, p.sock_a.stats().retransmits,
                      p.sock_a.stats().reconnects + p.sock_b.stats().reconnects,
                      p.link.forward.packets_dropped());
  };
  const auto first = run();
  EXPECT_EQ(first, run());
  EXPECT_GT(std::get<0>(first), 0u);
}

TEST(CrashRecovery, KeepaliveFailsTheSurvivorOfAPermanentCrash) {
  // The sender dies for good at 1 ms. The receiver ends up parked in
  // recv() with nothing in flight — no RTO will ever fire for it — so
  // only the keepalive probes can discover the peer is gone and turn a
  // would-be hang into a clean ConnectionFailed.
  tcp::Sysctl sysctl = tcp::Sysctl::tuned();
  sysctl.keepalive_interval = sim::milliseconds(5.0);
  Pair p(sysctl);
  faults::HostCrashConfig cc;
  cc.at = sim::milliseconds(1.0);
  cc.mode = faults::HostCrashConfig::Mode::kPermanent;
  faults::FaultPlan plan;
  plan.add_crash(0, cc);
  faults::apply(plan, p.cluster);
  EXPECT_THROW(p.transfer(1 << 20), tcp::ConnectionFailed);
  EXPECT_GT(p.sock_b.stats().keepalive_probes, 0u);
  EXPECT_TRUE(p.sock_b.failed());
}

// ---- Gilbert–Elliott statistics (satellite) --------------------------------

TEST(FaultStats, GilbertElliottMatchesSteadyStateTheory) {
  // 1e6 chain steps against the closed-form answers: steady-state loss
  // P(bad) = g2b / (g2b + b2g) for a deaf bad state, mean burst length
  // 1 / b2g frames (geometric sojourn).
  struct Rng {
    std::uint64_t s = 0x853c49e6748fea9bULL;
    double uniform() {
      s += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = s;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      return static_cast<double>(z >> 11) * 0x1.0p-53;
    }
  } rng;
  faults::LinkFaultConfig cfg;
  cfg.ge_good_to_bad = 0.01;  // defaults: b2g = 0.25, deaf bad state
  faults::GilbertElliott ge;
  const int kTrials = 1'000'000;
  std::int64_t losses = 0, bursts = 0;
  bool in_burst = false;
  for (int i = 0; i < kTrials; ++i) {
    const bool lost = ge.step(cfg, rng);
    losses += lost ? 1 : 0;
    if (lost && !in_burst) ++bursts;
    in_burst = lost;
  }
  const double expected = 0.01 / (0.01 + 0.25);
  EXPECT_NEAR(static_cast<double>(losses) / kTrials, expected,
              0.10 * expected);
  ASSERT_GT(bursts, 0);
  EXPECT_NEAR(static_cast<double>(losses) / static_cast<double>(bursts),
              1.0 / 0.25, 0.5);
}

// ---- Delivery watchdog resets per message (satellite regression) -----------

// Regression for the sticky-backoff bug: a message that needed watchdog
// retries must not bequeath its escalated timeout to the *next* message.
// Two beds run the same two-message schedule under the same link flap;
// in one the first message has to retry through a flap window (backing
// its timeout off), in the other it goes out on a quiet link. Message 2
// is sent at the identical instant in both, and the retry machinery is
// RNG-free, so if each message starts from the base timeout the second
// exchange finishes at the *exact same* simulated time in both beds.
sim::SimTime gm_second_exchange_done(sim::SimTime first_at) {
  gm::GmConfig cfg;
  cfg.delivery_timeout = sim::microseconds(500.0);
  GmBed bed(cfg);
  faults::LinkFaultConfig lf;
  lf.flap_period = sim::milliseconds(50.0);
  lf.flap_down = sim::milliseconds(2.0);  // deaf in [0, 2) and [50, 52) ms
  faults::FaultPlan plan;
  plan.add_link("", lf);
  faults::apply(plan, bed.cluster);
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](GmBed& b, sim::SimTime first_at, sim::SimTime& out)
          -> sim::Task<void> {
        gm::GmPort& p = b.fabric.port_a();
        co_await b.sim.delay_until(first_at);
        co_await p.send(4096, 1);
        co_await p.recv(4096, 1);
        co_await b.sim.delay_until(sim::milliseconds(50.0) +
                                   sim::microseconds(100.0));
        co_await p.send(4096, 2);
        co_await p.recv(4096, 2);
        out = b.sim.now();
      }(bed, first_at, done),
      "ping");
  bed.sim.spawn(
      [](GmBed& b) -> sim::Task<void> {
        gm::GmPort& p = b.fabric.port_b();
        co_await p.recv(4096, 1);
        co_await p.send(4096, 1);
        co_await p.recv(4096, 2);
        co_await p.send(4096, 2);
      }(bed),
      "pong");
  bed.sim.run();
  return done;
}

TEST(GmRecovery, DeliveryTimeoutResetsToBaseForEachNewMessage) {
  const sim::SimTime backed_off = gm_second_exchange_done(0);
  const sim::SimTime quiet = gm_second_exchange_done(sim::milliseconds(10.0));
  EXPECT_GT(backed_off, 0u);
  EXPECT_EQ(backed_off, quiet);
}

sim::SimTime via_second_exchange_done(sim::SimTime first_at) {
  via::ViaConfig cfg;
  cfg.delivery_timeout = sim::microseconds(500.0);
  ViaBed bed(cfg);
  faults::LinkFaultConfig lf;
  lf.flap_period = sim::milliseconds(50.0);
  lf.flap_down = sim::milliseconds(2.0);
  faults::FaultPlan plan;
  plan.add_link("", lf);
  faults::apply(plan, bed.cluster);
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](ViaBed& b, sim::SimTime first_at, sim::SimTime& out)
          -> sim::Task<void> {
        via::ViEndpoint& p = b.fabric.end_a();
        co_await b.sim.delay_until(first_at);
        co_await p.send(4096, 1);
        co_await p.recv(4096, 1);
        co_await b.sim.delay_until(sim::milliseconds(50.0) +
                                   sim::microseconds(100.0));
        co_await p.send(4096, 2);
        co_await p.recv(4096, 2);
        out = b.sim.now();
      }(bed, first_at, done),
      "ping");
  bed.sim.spawn(
      [](ViaBed& b) -> sim::Task<void> {
        via::ViEndpoint& p = b.fabric.end_b();
        co_await p.recv(4096, 1);
        co_await p.send(4096, 1);
        co_await p.recv(4096, 2);
        co_await p.send(4096, 2);
      }(bed),
      "pong");
  bed.sim.run();
  return done;
}

TEST(ViaRecovery, DeliveryTimeoutResetsToBaseForEachNewMessage) {
  const sim::SimTime backed_off = via_second_exchange_done(0);
  const sim::SimTime quiet = via_second_exchange_done(sim::milliseconds(10.0));
  EXPECT_GT(backed_off, 0u);
  EXPECT_EQ(backed_off, quiet);
}

// ---- pp.faultplan/1 serialization ------------------------------------------

TEST(PlanIo, RoundTripsEveryRuleKind) {
  faults::FaultPlan plan;
  plan.seed = 42;
  faults::LinkFaultConfig lf;
  lf.loss = 0.017;
  lf.ge_good_to_bad = 0.003;
  lf.ge_bad_to_good = 0.21;
  lf.reorder = 0.02;
  lf.reorder_delay = sim::microseconds(75.0);
  lf.duplicate = 0.01;
  lf.corrupt = 1.0 / 3.0;  // not exactly representable in short decimal
  lf.flap_period = sim::milliseconds(3.0);
  lf.flap_down = sim::microseconds(250.0);
  plan.add_link("myri", lf);
  faults::LinkFaultConfig sparse;
  sparse.loss = 0.05;
  plan.add_link("", sparse);
  faults::NicFaultConfig nf;
  nf.ring_slots = 16;
  nf.irq_stall = 0.05;
  plan.add_nic("eth", nf);
  faults::HostFaultConfig hf;
  hf.pause_period = sim::milliseconds(1.0);
  hf.pause_duration = sim::microseconds(100.0);
  plan.add_host(1, hf);
  faults::HostCrashConfig restart;
  restart.at = sim::microseconds(500.0);
  restart.downtime = sim::milliseconds(2.0);
  plan.add_crash(0, restart);
  faults::HostCrashConfig permanent;
  permanent.at = sim::milliseconds(1.0);
  permanent.mode = faults::HostCrashConfig::Mode::kPermanent;
  plan.add_crash(-1, permanent);

  const std::string text = faults::to_text(plan);
  const faults::FaultPlan parsed = faults::from_text(text);
  EXPECT_EQ(faults::to_text(parsed), text);  // fixed point after one trip
  EXPECT_EQ(parsed.seed, 42u);
  ASSERT_EQ(parsed.links.size(), 2u);
  EXPECT_EQ(parsed.links[0].pipe_match, "myri");
  EXPECT_EQ(parsed.links[0].cfg.corrupt, 1.0 / 3.0);  // bit-exact doubles
  EXPECT_EQ(parsed.links[0].cfg.reorder_delay, sim::microseconds(75.0));
  EXPECT_EQ(parsed.links[1].pipe_match, "");
  ASSERT_EQ(parsed.nics.size(), 1u);
  EXPECT_EQ(parsed.nics[0].cfg.ring_slots, 16u);
  ASSERT_EQ(parsed.hosts.size(), 1u);
  EXPECT_EQ(parsed.hosts[0].node, 1);
  ASSERT_EQ(parsed.crashes.size(), 2u);
  EXPECT_TRUE(parsed.crashes[0].cfg.restarts());
  EXPECT_EQ(parsed.crashes[1].node, -1);
  EXPECT_FALSE(parsed.crashes[1].cfg.restarts());
}

TEST(PlanIo, RejectsMalformedInput) {
  EXPECT_THROW(faults::from_text("frob *\n"), std::runtime_error);
  EXPECT_THROW(faults::from_text("link\n"), std::runtime_error);
  EXPECT_THROW(faults::from_text("link * loss=notanumber\n"),
               std::runtime_error);
  EXPECT_THROW(faults::from_text("crash 0 at=oops\n"), std::runtime_error);
  EXPECT_THROW(faults::from_text("seed\n"), std::runtime_error);
}

TEST(PlanIo, RandomChaosPlansRoundTripByTheThousand) {
  // pp.faultplan/1 is the interchange format between the chaos sweep,
  // the ddmin minimizer and netpipe_cli --fault-plan: every plan the
  // chaos generator can emit must survive format -> parse -> format
  // bit-exactly (serialized text is the canonical plan identity).
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    const faults::FaultPlan plan = chaos::random_plan(seed);
    const std::string text = faults::to_text(plan);
    faults::FaultPlan parsed;
    ASSERT_NO_THROW(parsed = faults::from_text(text)) << "seed " << seed
                                                      << "\n" << text;
    EXPECT_EQ(faults::to_text(parsed), text) << "seed " << seed;
    EXPECT_EQ(parsed.seed, plan.seed);
    EXPECT_EQ(parsed.links.size(), plan.links.size());
    EXPECT_EQ(parsed.nics.size(), plan.nics.size());
    EXPECT_EQ(parsed.hosts.size(), plan.hosts.size());
    EXPECT_EQ(parsed.crashes.size(), plan.crashes.size());
  }
}

// ---- Daemon-relay hop attribution ------------------------------------------

// A corrupted frame traversing a two-hop daemon-relay chain (A -> B -> C,
// store-and-forward at B) must be discarded by the checksumming receiver
// of the hop it was corrupted on — and the drop must be charged to that
// hop's socket, not smeared over the chain. The transfer still completes:
// TCP retransmits the corrupted segment on the faulted hop alone.
TEST(RelayFaults, CorruptedFrameIsDroppedAtTheRightHop) {
  sim::Simulator s;
  hw::Cluster cluster(s);
  hw::Node& a = cluster.add_node(presets::pentium4_pc());
  hw::Node& b = cluster.add_node(presets::pentium4_pc());
  hw::Node& c = cluster.add_node(presets::pentium4_pc());
  auto link_ab = cluster.connect(a, b, presets::netgear_ga620(),
                                 presets::back_to_back());
  auto link_bc = cluster.connect(b, c, presets::netgear_ga620(),
                                 presets::back_to_back());
  tcp::TcpStack stack_a(a, tcp::Sysctl::tuned());
  tcp::TcpStack stack_b(b, tcp::Sysctl::tuned());
  tcp::TcpStack stack_c(c, tcp::Sysctl::tuned());
  auto [s1a, s1b] = tcp::connect(stack_a, stack_b, link_ab, "hop1");
  auto [s2b, s2c] = tcp::connect(stack_b, stack_c, link_bc, "hop2");
  mp::RelayChannel hop1(a, b, std::move(s1a), std::move(s1b));
  mp::RelayChannel hop2(b, c, std::move(s2b), std::move(s2c));

  // Corrupt only the second hop's forward direction (pipe "ga620[1-2]>").
  faults::LinkFaultConfig corrupt;
  corrupt.corrupt = 0.05;
  faults::FaultPlan plan;
  plan.seed = 17;
  plan.add_link("[1-2]>", corrupt);
  faults::apply(plan, cluster);

  constexpr std::uint64_t kBytes = 512 << 10;
  bool done = false;
  s.spawn(
      [](mp::RelayChannel& r) -> sim::Task<void> {
        co_await r.send(kBytes);
      }(hop1),
      "src-app");
  s.spawn(
      [](mp::RelayChannel& in, mp::RelayChannel& out) -> sim::Task<void> {
        co_await in.recv(kBytes);
        co_await out.send(kBytes);
      }(hop1, hop2),
      "forwarder");
  s.spawn(
      [](mp::RelayChannel& r, bool& flag) -> sim::Task<void> {
        co_await r.recv(kBytes);
        flag = true;
      }(hop2, done),
      "dst-app");
  s.run();

  ASSERT_TRUE(done);  // the chain still delivers everything
  EXPECT_GT(link_bc.forward.packets_corrupted(), 0u);
  // The final checksumming receiver (hop2's destination socket on C)
  // discarded the damage ...
  EXPECT_GT(hop2.dst_socket().stats().checksum_drops, 0u);
  // ... and no other socket of the chain was charged for it.
  EXPECT_EQ(hop1.dst_socket().stats().checksum_drops, 0u);
  EXPECT_EQ(hop1.src_socket().stats().checksum_drops, 0u);
  EXPECT_EQ(hop2.src_socket().stats().checksum_drops, 0u);
  // Recovery stayed local too: only the faulted hop retransmitted.
  EXPECT_GT(hop2.src_socket().stats().retransmits, 0u);
  EXPECT_EQ(hop1.src_socket().stats().retransmits, 0u);
}

// ---- ddmin plan minimization -----------------------------------------------

TEST(Minimize, ShrinksToTheMinimalFailingCore) {
  faults::FaultPlan plan;
  plan.seed = 9;
  for (int i = 0; i < 5; ++i) {
    faults::LinkFaultConfig c;
    c.loss = 0.01 * (i + 1);
    plan.add_link("pipe" + std::to_string(i), c);
  }
  faults::NicFaultConfig nf;
  nf.ring_slots = 8;
  plan.add_nic("nic", nf);
  faults::HostCrashConfig cc;
  cc.at = sim::milliseconds(1.0);
  plan.add_crash(1, cc);

  // The "failure" needs exactly the pipe3 loss rule plus the crash.
  int probes = 0;
  const faults::Oracle oracle = [&probes](const faults::FaultPlan& c) {
    ++probes;
    bool has_pipe3 = false;
    for (const auto& l : c.links) has_pipe3 |= l.pipe_match == "pipe3";
    return has_pipe3 && !c.crashes.empty();
  };
  const faults::MinimizeResult r = faults::minimize(plan, oracle);
  EXPECT_EQ(r.initial_rules, 7u);
  EXPECT_EQ(r.final_rules, 2u);
  EXPECT_EQ(r.probes, probes);
  EXPECT_EQ(r.plan.seed, 9u);  // the seed rides along unchanged
  ASSERT_EQ(r.plan.links.size(), 1u);
  EXPECT_EQ(r.plan.links[0].pipe_match, "pipe3");
  EXPECT_TRUE(r.plan.nics.empty());
  ASSERT_EQ(r.plan.crashes.size(), 1u);
}

TEST(Minimize, RejectsAPlanThatDoesNotFail) {
  const faults::FaultPlan plan = faults::uniform_loss_plan(0.01);
  EXPECT_THROW(
      faults::minimize(plan,
                       [](const faults::FaultPlan&) { return false; }),
      std::invalid_argument);
}

// ---- Sweep watchdog: degrade, never abort ----------------------------------

TEST(SweepWatchdog, HungJobDegradesToAReportedRow) {
  sweep::SweepSpec spec;
  spec.name = "watchdog";
  spec.add("hung", [] {
    sim::Simulator s;  // adopts the sweep's ambient budgets
    s.spawn(
        [](sim::Simulator& s) -> sim::Task<void> {
          for (;;) co_await s.delay(sim::microseconds(1.0));
        }(s),
        "spin");
    s.run();  // never returns on its own; the event budget cuts it off
    return netpipe::RunResult{};
  });
  spec.add("fine", [] { return netpipe::RunResult{}; });

  sweep::SweepOptions opt;
  opt.keep_going = false;  // watchdog kills must not be rethrown even so
  opt.limits.event_budget = 50'000;
  opt.watchdog_retries = 1;
  sweep::SweepResult sr;
  ASSERT_NO_THROW(sr = run_sweep(spec, opt));

  ASSERT_EQ(sr.jobs.size(), 2u);
  EXPECT_FALSE(sr.jobs[0].ok);
  EXPECT_EQ(sr.jobs[0].status, sweep::JobStatus::kWatchdog);
  EXPECT_EQ(sr.jobs[0].retries, 1);  // one doubled-budget re-run
  EXPECT_FALSE(sr.jobs[0].error.empty());
  EXPECT_TRUE(sr.jobs[1].ok);
  EXPECT_EQ(sr.jobs[1].status, sweep::JobStatus::kOk);

  const std::string j = sweep::JsonReporter::to_json({sr});
  EXPECT_NE(j.find("pp.sweep/6"), std::string::npos);
  EXPECT_NE(j.find("\"status\":\"watchdog\""), std::string::npos);
  EXPECT_NE(j.find("\"retries\":1"), std::string::npos);
}

TEST(SweepWatchdog, SimDeadlineAlsoCutsJobsOff) {
  sweep::SweepSpec spec;
  spec.name = "deadline";
  spec.add("slow", [] {
    sim::Simulator s;
    s.spawn(
        [](sim::Simulator& s) -> sim::Task<void> {
          for (;;) co_await s.delay(sim::seconds(1.0));
        }(s),
        "spin");
    s.run();
    return netpipe::RunResult{};
  });
  sweep::SweepOptions opt;
  opt.keep_going = true;
  opt.limits.sim_deadline = sim::seconds(5.0);
  opt.watchdog_retries = 0;
  const auto sr = run_sweep(spec, opt);
  ASSERT_EQ(sr.jobs.size(), 1u);
  EXPECT_EQ(sr.jobs[0].status, sweep::JobStatus::kWatchdog);
  EXPECT_EQ(sr.jobs[0].retries, 0);
}

}  // namespace
}  // namespace pp
