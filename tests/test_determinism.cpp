// Property-based determinism suite.
//
// The repo's core reproducibility claim: a sweep is a pure function of
// its spec — same spec, same seeds, same results, bit for bit, no
// matter how many worker threads run it or how many times it is
// repeated. These tests generate randomized sweep specs from a seeded
// SplitMix64 stream (hardware mix, socket buffers, message schedules,
// fault plans) and assert that the canonical JSON report and every
// ProtocolCounters field survive re-runs and thread-count changes
// unchanged.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/common.h"
#include "faults/plan.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/testbed.h"
#include "netpipe/runner.h"
#include "simcore/shard.h"
#include "simcore/time.h"
#include "simhw/presets.h"
#include "simhw/relay_ring.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"
#include "tcpsim/socket.h"

namespace {

using namespace pp;

// SplitMix64: tiny, seedable, and good enough to scatter job parameters.
struct SplitMix64 {
  std::uint64_t state;
  explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform pick in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

netpipe::RunOptions small_run_options(SplitMix64& rng) {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 4096ull << rng.below(3);  // 4k / 8k / 16k
  o.repeats = 1;
  o.warmup = 0;
  return o;
}

/// One randomized, self-contained NetPIPE job. Every parameter the
/// closure needs is captured by value so the job can run on any thread.
sweep::JobSpec random_job(SplitMix64& rng, int index) {
  const bool use_ga620 = rng.below(2) == 0;
  const hw::NicConfig nic = use_ga620 ? hw::presets::netgear_ga620()
                                      : hw::presets::trendnet_teg_pcitx();
  const std::uint32_t buf = 32u << (10 + rng.below(3));  // 32k/64k/128k
  const bool use_mpich = rng.below(2) == 0;
  const bool faulted = rng.below(2) == 0;
  const double loss = faulted ? 0.005 * static_cast<double>(1 + rng.below(4))
                              : 0.0;
  const std::uint64_t fault_seed = rng.next();
  const netpipe::RunOptions opts = small_run_options(rng);

  const std::string label = "job" + std::to_string(index) +
                            (use_mpich ? "_mpich" : "_tcp") +
                            (faulted ? "_faulted" : "");
  auto run = [nic, buf, use_mpich, loss, fault_seed, opts] {
    mp::PairBed bed(hw::presets::pentium4_pc(), nic, tcp::Sysctl::tuned());
    if (loss > 0.0) {
      faults::apply(faults::uniform_loss_plan(loss, fault_seed),
                    bed.cluster);
    }
    if (use_mpich) {
      mp::MpichOptions mo;
      mo.p4_sockbufsize = buf;
      auto pair = bench::hold_pair(mp::Mpich::create_pair(bed, mo));
      return netpipe::run_netpipe(bed.sim, *pair.first, *pair.second, opts);
    }
    auto pair = bench::raw_tcp_pair(bed, buf);
    return netpipe::run_netpipe(bed.sim, *pair.first, *pair.second, opts);
  };
  return sweep::JobSpec{label, std::move(run)};
}

sweep::SweepSpec random_spec(std::uint64_t seed, int jobs) {
  SplitMix64 rng(seed);
  sweep::SweepSpec spec;
  spec.name = "determinism_seed" + std::to_string(seed);
  for (int i = 0; i < jobs; ++i) spec.jobs.push_back(random_job(rng, i));
  return spec;
}

/// The canonical (host-timing-free) report: a pure function of the
/// simulation, so equality here is bit-level reproducibility.
std::string canonical(const sweep::SweepResult& sr) {
  sweep::JsonReporter::Options o;
  o.include_timing = false;
  return sweep::JsonReporter::to_json({sr}, o);
}

void expect_counters_eq(const netpipe::ProtocolCounters& a,
                        const netpipe::ProtocolCounters& b,
                        const std::string& label) {
  EXPECT_EQ(a.data_segments, b.data_segments) << label;
  EXPECT_EQ(a.acks, b.acks) << label;
  EXPECT_EQ(a.retransmits, b.retransmits) << label;
  EXPECT_EQ(a.fast_retransmits, b.fast_retransmits) << label;
  EXPECT_EQ(a.checksum_drops, b.checksum_drops) << label;
  EXPECT_EQ(a.wire_drops, b.wire_drops) << label;
  EXPECT_EQ(a.rendezvous_handshakes, b.rendezvous_handshakes) << label;
  EXPECT_EQ(a.rendezvous_retries, b.rendezvous_retries) << label;
  EXPECT_EQ(a.delivery_failures, b.delivery_failures) << label;
  EXPECT_EQ(a.staged_bytes, b.staged_bytes) << label;
  EXPECT_EQ(a.relay_fragments, b.relay_fragments) << label;
  EXPECT_EQ(a.rdma_transfers, b.rdma_transfers) << label;
}

void expect_results_eq(const sweep::SweepResult& a,
                       const sweep::SweepResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& ja = a.jobs[i];
    const auto& jb = b.jobs[i];
    EXPECT_EQ(ja.label, jb.label);
    ASSERT_EQ(ja.ok, jb.ok) << ja.label;
    expect_counters_eq(ja.result.counters, jb.result.counters, ja.label);
    ASSERT_EQ(ja.result.points.size(), jb.result.points.size()) << ja.label;
    for (std::size_t p = 0; p < ja.result.points.size(); ++p) {
      EXPECT_EQ(ja.result.points[p].bytes, jb.result.points[p].bytes);
      EXPECT_EQ(ja.result.points[p].elapsed, jb.result.points[p].elapsed)
          << ja.label << " point " << p;
    }
  }
}

TEST(Determinism, RandomSpecsRepeatBitIdentically) {
  // Same randomized spec, run twice back to back: the canonical report
  // strings must match byte for byte.
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto spec = random_spec(seed, 6);
    const auto first = sweep::run_sweep(spec);
    const auto second = sweep::run_sweep(spec);
    EXPECT_EQ(canonical(first), canonical(second)) << "seed " << seed;
    expect_results_eq(first, second);
  }
}

TEST(Determinism, ThreadCountNeverChangesResults) {
  // 1, 2 and 8 workers must produce identical canonical reports: job
  // isolation plus spec-order aggregation hides completion order.
  const auto spec = random_spec(1234, 8);
  sweep::SweepOptions serial;
  serial.threads = 1;
  sweep::SweepOptions two;
  two.threads = 2;
  sweep::SweepOptions eight;
  eight.threads = 8;

  const auto r1 = sweep::run_sweep(spec, serial);
  const auto r2 = sweep::run_sweep(spec, two);
  const auto r8 = sweep::run_sweep(spec, eight);

  EXPECT_EQ(canonical(r1), canonical(r2));
  EXPECT_EQ(canonical(r1), canonical(r8));
  expect_results_eq(r1, r2);
  expect_results_eq(r1, r8);
}

TEST(Determinism, FaultPlansReplayUnderParallelism) {
  // Fault schedules are seeded per plan, not per thread: a heavily
  // faulted spec must still aggregate identically at any pool size.
  SplitMix64 rng(99);
  sweep::SweepSpec spec;
  spec.name = "faulted";
  for (int i = 0; i < 6; ++i) {
    SplitMix64 job_rng(rng.next());
    auto job = random_job(job_rng, i);
    spec.jobs.push_back(std::move(job));
  }
  sweep::SweepOptions serial;
  serial.threads = 1;
  sweep::SweepOptions wide;
  wide.threads = 8;
  const auto a = sweep::run_sweep(spec, serial);
  const auto b = sweep::run_sweep(spec, wide);
  EXPECT_EQ(canonical(a), canonical(b));
  expect_results_eq(a, b);
}

TEST(Determinism, CanonicalReportOmitsHostTiming) {
  // Guard the canonical form itself: no host-timing keys may leak into
  // the string the other tests compare.
  const auto spec = random_spec(5, 2);
  const auto sr = sweep::run_sweep(spec);
  const std::string c = canonical(sr);
  EXPECT_EQ(c.find("wall_ms"), std::string::npos);
  EXPECT_EQ(c.find("serial_ms"), std::string::npos);
  EXPECT_EQ(c.find("speedup_vs_serial"), std::string::npos);
  EXPECT_EQ(c.find("\"threads\""), std::string::npos);
  EXPECT_EQ(c.find("\"shards\""), std::string::npos);
  // While the full report still carries them.
  const std::string full = sweep::JsonReporter::to_json({sr});
  EXPECT_NE(full.find("wall_ms"), std::string::npos);
  EXPECT_NE(full.find("\"threads\""), std::string::npos);
  EXPECT_NE(full.find("\"shards\""), std::string::npos);
}

// ---- Sharded execution -----------------------------------------------------

/// A cluster-scale relay-ring job whose workload partitions itself over
/// the ambient shard count (SweepOptions::shards → ScopedShards). The
/// RelayRingResult is folded into the RunResult so the canonical JSON
/// captures every counter bit.
sweep::JobSpec relay_ring_job(int index, double loss, std::uint64_t seed) {
  const std::string label = "relay" + std::to_string(index) +
                            (loss > 0.0 ? "_faulted" : "");
  auto run = [loss, seed] {
    hw::RelayRingOptions opt;
    opt.nodes = 16;
    opt.shards = std::max(1, sim::ambient_shards());
    opt.tokens_per_node = 2;
    opt.hops = 4;
    opt.seed = seed;
    hw::RelayRing ring(opt);
    if (loss > 0.0) {
      for (hw::PacketPipe* p : ring.cluster().pipes()) p->set_loss(loss);
    }
    const hw::RelayRingResult r = ring.run();
    netpipe::RunResult out;
    out.transport = "relay_ring16";
    out.latency_us = sim::to_microseconds(r.completion_time);
    out.max_mbps = static_cast<double>(r.checksum % 1000003);
    out.half_performance_bytes = r.tokens_retired;
    out.saturation_bytes = r.hops_total;
    out.counters.data_segments = r.tokens_retired;
    out.counters.relay_fragments = r.hops_total;
    out.counters.staged_bytes = r.checksum;
    std::uint64_t drops = 0;
    for (std::uint64_t d : r.per_pipe_dropped) drops += d;
    out.counters.wire_drops = drops;
    out.points.push_back({r.tokens_retired, r.completion_time});
    return out;
  };
  return sweep::JobSpec{label, std::move(run)};
}

sweep::SweepSpec relay_ring_spec() {
  sweep::SweepSpec spec;
  spec.name = "shard_determinism";
  spec.jobs.push_back(relay_ring_job(0, 0.0, 11));
  spec.jobs.push_back(relay_ring_job(1, 0.0, 22));
  spec.jobs.push_back(relay_ring_job(2, 0.03, 33));
  spec.jobs.push_back(relay_ring_job(3, 0.03, 44));
  return spec;
}

TEST(Determinism, ShardCountNeverChangesResults) {
  // The tentpole claim: partitioning one big simulation across worker
  // threads is invisible — canonical JSON (counters, checksums and
  // completion times included) is byte-identical for shards 1, 2 and 8,
  // with fault plans armed, and matches the unsharded serial run.
  sweep::SweepOptions serial;
  serial.threads = 2;  // thread-pool parallelism on top, as in real use
  const auto baseline = sweep::run_sweep(relay_ring_spec(), serial);
  const std::string canon = canonical(baseline);
  EXPECT_GT(baseline.jobs[2].result.counters.wire_drops, 0u)
      << "faulted job injected nothing";

  for (int shards : {1, 2, 8}) {
    sweep::SweepOptions opt;
    opt.threads = 2;
    opt.shards = shards;
    const auto got = sweep::run_sweep(relay_ring_spec(), opt);
    EXPECT_EQ(canonical(got), canon) << "shards=" << shards;
    expect_results_eq(baseline, got);
  }
}

}  // namespace
