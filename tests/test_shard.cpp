// Conservative-sharding suite: bit-identity of sharded runs against the
// serial reference, shard-boundary edge cases (zero-latency links, timer
// wheels under different node placements, trace/counter merging), and
// the ShardGroup deadlock aggregation. Runs under both sanitizer labels:
// tsan exercises the window barrier and the cross-arena release path.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "faults/config.h"
#include "simcore/shard.h"
#include "simcore/simulator.h"
#include "simcore/sync.h"
#include "simcore/task.h"
#include "simcore/timer_wheel.h"
#include "simcore/tracing.h"
#include "simhw/cluster.h"
#include "simhw/relay_ring.h"

namespace pp::hw {
namespace {

using sim::microseconds;

RelayRingOptions small_ring(int shards) {
  RelayRingOptions opt;
  opt.nodes = 16;
  opt.shards = shards;
  opt.tokens_per_node = 3;
  opt.hops = 5;
  opt.payload_bytes = 2048;
  opt.seed = 42;
  return opt;
}

void expect_same_result(const RelayRingResult& a, const RelayRingResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.tokens_retired, b.tokens_retired) << what;
  EXPECT_EQ(a.hops_total, b.hops_total) << what;
  EXPECT_EQ(a.completion_time, b.completion_time) << what;
  EXPECT_EQ(a.per_node_retired, b.per_node_retired) << what;
  EXPECT_EQ(a.per_pipe_delivered, b.per_pipe_delivered) << what;
  EXPECT_EQ(a.per_pipe_dropped, b.per_pipe_dropped) << what;
  EXPECT_EQ(a.checksum, b.checksum) << what;
}

TEST(ShardGroup, AmbientShardsScopesNest) {
  EXPECT_EQ(sim::ambient_shards(), 0);
  {
    sim::ScopedShards outer(4);
    EXPECT_EQ(sim::ambient_shards(), 4);
    {
      sim::ScopedShards inner(2);
      EXPECT_EQ(sim::ambient_shards(), 2);
    }
    EXPECT_EQ(sim::ambient_shards(), 4);
  }
  EXPECT_EQ(sim::ambient_shards(), 0);
}

TEST(ShardGroup, RelayRingBitIdenticalAcrossShardCounts) {
  RelayRing serial(small_ring(1));
  const RelayRingResult reference = serial.run();
  EXPECT_EQ(reference.tokens_retired, 16u * 3u);
  EXPECT_EQ(reference.hops_total, reference.tokens_retired * 5u);
  EXPECT_GT(reference.completion_time, 0);

  for (int shards : {2, 8}) {
    RelayRing ring(small_ring(shards));
    const RelayRingResult got = ring.run();
    expect_same_result(reference, got,
                       "shards=" + std::to_string(shards));
    // The conservative loop actually windowed (lookahead is the 0.5us
    // link propagation, far below the run length).
    EXPECT_GT(ring.group().windows(), 1u) << shards;
  }
}

TEST(ShardGroup, RelayRingWithFaultPlanBitIdentical) {
  auto run_with_faults = [](int shards) {
    RelayRing ring(small_ring(shards));
    for (PacketPipe* p : ring.cluster().pipes()) {
      p->set_loss(0.05);
    }
    // One flapping link on top: drops are a pure function of wire-exit
    // time, so they must replay identically under any partitioning.
    PacketPipe* flappy = ring.cluster().pipes()[4];
    faults::LinkFaultConfig cfg;
    cfg.loss = 0.05;
    cfg.flap_period = microseconds(400);
    cfg.flap_down = microseconds(60);
    flappy->set_link_faults(cfg, flappy->fault_seed());
    return ring.run();
  };

  const RelayRingResult reference = run_with_faults(1);
  std::uint64_t dropped = 0;
  for (std::uint64_t d : reference.per_pipe_dropped) dropped += d;
  EXPECT_GT(dropped, 0u) << "fault plan injected nothing";

  for (int shards : {2, 8}) {
    expect_same_result(reference, run_with_faults(shards),
                       "faulted shards=" + std::to_string(shards));
  }
}

TEST(ShardGroup, ZeroLatencyLinkMustBeColocated) {
  sim::ShardGroup group(2);
  Cluster cluster(group.shard(0), 7);
  HostConfig host;
  Node& n0 = cluster.add_node(host, group.shard(0));
  Node& n1 = cluster.add_node(host, group.shard(1));
  Node& n2 = cluster.add_node(host, group.shard(1));

  NicConfig nic;
  LinkConfig same_host;
  same_host.propagation = 0;
  // Cross-shard with zero propagation: no lookahead to give, rejected.
  EXPECT_THROW(cluster.connect(n0, n1, nic, same_host),
               std::invalid_argument);
  // Same zero-latency link between co-located nodes is fine.
  EXPECT_NO_THROW(cluster.connect(n1, n2, nic, same_host));
  // And a positive-latency cross-shard link is fine and sets lookahead.
  LinkConfig wire;
  wire.propagation = microseconds(2);
  EXPECT_NO_THROW(cluster.connect(n0, n1, nic, wire));
  EXPECT_EQ(group.lookahead(), microseconds(2));
}

// A timer wheel rides its owner node's simulator. Re-partitioning the
// cluster moves the wheel to a different shard; its firing schedule —
// local events keyed (at, sched, kLocalEventTag, seq) — must not change.
TEST(ShardGroup, TimerWheelOwnerMigratesShardsUnchanged) {
  auto fire_times = [](int shards, int probe_node) {
    RelayRing ring(small_ring(shards));
    sim::Simulator& owner =
        ring.cluster().node(static_cast<std::size_t>(probe_node)).simulator();
    struct Probe {
      sim::TimerWheel wheel;
      sim::Timer timer;
      sim::Simulator& sim;
      std::vector<sim::SimTime> fires;
      int remaining;
      explicit Probe(sim::Simulator& s) : wheel(s), sim(s), remaining(40) {
        timer.bind(wheel, [this] {
          fires.push_back(sim.now());
          if (--remaining > 0) timer.arm(sim.now() + microseconds(37));
        });
        timer.arm(microseconds(37));
      }
    } probe(owner);
    ring.run();
    return probe.fires;
  };

  // Node 11 lives on shard 0 when shards=1, shard 1 when shards=2,
  // shard 5 when shards=8.
  const std::vector<sim::SimTime> reference = fire_times(1, 11);
  EXPECT_EQ(reference.size(), 40u);
  EXPECT_EQ(fire_times(2, 11), reference);
  EXPECT_EQ(fire_times(8, 11), reference);
}

// Each shard records its own trace; the merged view must carry exactly
// the serial run's events (same spans, instants and counter samples —
// merging is by timestamp with the shard index as tiebreak, and every
// track lives wholly on one shard, so per-name totals are invariant).
TEST(ShardGroup, CrossShardTraceAndCounterMergeMatchesSerial) {
  auto trace_counts = [](int shards) {
    RelayRing ring(small_ring(shards));
    std::vector<sim::TraceRecorder> recorders(
        static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      ring.group().shard(i).set_tracer(&recorders[static_cast<std::size_t>(i)]);
    }
    ring.run();
    std::size_t spans = 0;
    std::size_t instants = 0;
    std::size_t counters = 0;
    std::size_t drops = 0;
    for (const auto& r : recorders) {
      spans += r.span_count();
      instants += r.instant_count();
      counters += r.counter_count();
      drops += r.instants_named("drop");
    }
    return std::vector<std::size_t>{spans, instants, counters, drops};
  };

  const auto reference = trace_counts(1);
  EXPECT_GT(reference[0] + reference[1], 0u) << "tracing emitted nothing";
  EXPECT_EQ(trace_counts(2), reference);
  EXPECT_EQ(trace_counts(8), reference);
}

sim::Task<void> wait_forever(sim::Channel<int>& ch) {
  co_await ch.pop();
}

TEST(ShardGroup, DeadlockAggregatesEveryShard) {
  sim::ShardGroup group(2);
  sim::Channel<int> a(group.shard(0));
  sim::Channel<int> b(group.shard(1));
  group.shard(0).spawn(wait_forever(a), "stuck-a");
  group.shard(1).spawn(wait_forever(b), "stuck-b");
  try {
    group.run();
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("[shard 0]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[shard 1]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stuck-a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stuck-b"), std::string::npos) << msg;
  }
}

TEST(ShardGroup, RejectsBadConfigurations) {
  EXPECT_THROW(sim::ShardGroup(0), std::invalid_argument);
  RelayRingOptions opt = small_ring(2);
  opt.nodes = 1;
  EXPECT_THROW(RelayRing{opt}, std::invalid_argument);
  opt = small_ring(2);
  opt.shards = 32;  // more shards than the 16 nodes
  EXPECT_THROW(RelayRing{opt}, std::invalid_argument);
}

}  // namespace
}  // namespace pp::hw
