// Tests for the SMP SHMEM substrate.
#include <gtest/gtest.h>

#include "netpipe/runner.h"
#include "shmemsim/shmem.h"

namespace pp::shmem {
namespace {

TEST(Shmem, PutNotifyWaitRoundTrip) {
  sim::Simulator s;
  ShmemPair pair(s);
  sim::SimTime got = 0;
  s.spawn(
      [](ShmemPe& pe) -> sim::Task<void> {
        co_await pe.put(4096);
        co_await pe.notify();
      }(pair.pe0()),
      "pe0");
  s.spawn(
      [](ShmemPe& pe, sim::Simulator& s, sim::SimTime& t) -> sim::Task<void> {
        co_await pe.wait_notify();
        t = s.now();
      }(pair.pe1(), s, got),
      "pe1");
  s.run();
  EXPECT_GT(got, 0);
  EXPECT_LT(got, sim::microseconds(30));
  EXPECT_EQ(pair.pe0().puts(), 1u);
}

TEST(Shmem, LatencyIsSubTwoMicroseconds) {
  sim::Simulator s;
  ShmemPair pair(s);
  ShmemTransport ta(pair.pe0()), tb(pair.pe1());
  netpipe::RunOptions o;
  o.schedule.max_bytes = 1024;
  o.repeats = 3;
  const auto r = netpipe::run_netpipe(s, ta, tb, o);
  // The intra-node upper bound the paper's networks chase: ~1 us.
  EXPECT_LT(r.latency_us, 2.0);
  EXPECT_GT(r.latency_us, 0.2);
}

TEST(Shmem, BandwidthApproachesTheMemoryBus) {
  sim::Simulator s;
  SmpConfig cfg;
  cfg.copy_bandwidth = sim::Rate::megabytes(320);  // DS20-class memory
  ShmemPair pair(s, cfg);
  ShmemTransport ta(pair.pe0()), tb(pair.pe1());
  netpipe::RunOptions o;
  o.schedule.min_bytes = 64 << 10;
  o.schedule.max_bytes = 8 << 20;
  o.repeats = 2;
  const auto r = netpipe::run_netpipe(s, ta, tb, o);
  const double bus_mbps = cfg.copy_bandwidth.mbps();
  EXPECT_GT(r.max_mbps, 0.9 * bus_mbps);
  EXPECT_LE(r.max_mbps, 1.02 * bus_mbps);
}

TEST(Shmem, FarFasterThanAnyNetworkInThePaper) {
  sim::Simulator s;
  ShmemPair pair(s);
  ShmemTransport ta(pair.pe0()), tb(pair.pe1());
  netpipe::RunOptions o;
  o.schedule.max_bytes = 1 << 20;
  const auto r = netpipe::run_netpipe(s, ta, tb, o);
  EXPECT_GT(r.max_mbps, 1500.0);  // vs ~900 for the best network
  EXPECT_LT(r.latency_us, 10.0);  // vs ~10 us for Giganet VIA
}

TEST(Shmem, GetMovesBytesThroughTheBusToo) {
  sim::Simulator s;
  ShmemPair pair(s);
  sim::SimTime done = 0;
  s.spawn(
      [](ShmemPe& pe, sim::Simulator& s, sim::SimTime& t) -> sim::Task<void> {
        co_await pe.get(1 << 20);
        t = s.now();
      }(pair.pe0(), s, done),
      "pe0");
  s.run();
  // 1 MB at 320 MB/s is ~3.3 ms.
  EXPECT_NEAR(sim::to_seconds(done) * 1e3, 3.3, 0.5);
  EXPECT_EQ(pair.pe0().gets(), 1u);
}

TEST(Shmem, ContendingPesShareTheBus) {
  // Both PEs streaming puts simultaneously: each gets ~half the bus.
  auto one_way = [](bool both) {
    sim::Simulator s;
    ShmemPair pair(s);
    sim::SimTime done = 0;
    s.spawn(
        [](ShmemPe& pe, sim::Simulator& s, sim::SimTime& t) -> sim::Task<void> {
          for (int i = 0; i < 8; ++i) co_await pe.put(1 << 20);
          t = s.now();
        }(pair.pe0(), s, done),
        "pe0");
    if (both) {
      s.spawn(
          [](ShmemPe& pe) -> sim::Task<void> {
            for (int i = 0; i < 8; ++i) co_await pe.put(1 << 20);
          }(pair.pe1()),
          "pe1");
    }
    s.run();
    return done;
  };
  const sim::SimTime alone = one_way(false);
  const sim::SimTime contended = one_way(true);
  EXPECT_GT(contended, alone * 3 / 2);
}

}  // namespace
}  // namespace pp::shmem
