// End-to-end tests for protocol-level tracing: the counter-track and
// metadata JSON emission, the numeric cross-checks between trace instants
// and protocol statistics (TCP, GM, VIA, rendezvous, daemon relays), the
// bit-identity of untraced runs, and the counters carried by
// netpipe::RunResult / point marks on the "netpipe" track.
#include <gtest/gtest.h>

#include <string>

#include "gmsim/gm.h"
#include "mp/mpich.h"
#include "mp/pvm.h"
#include "mp/testbed.h"
#include "netpipe/modules.h"
#include "netpipe/runner.h"
#include "simcore/tracing.h"
#include "simhw/presets.h"
#include "viasim/via.h"

namespace pp {
namespace {

namespace presets = hw::presets;

mp::PairBed make_bed() {
  return mp::PairBed(presets::pentium4_pc(), presets::netgear_ga620(),
                     tcp::Sysctl::tuned());
}

/// Sends `bytes` from socket a to b and runs the simulation to
/// completion.
void transfer(mp::PairBed& bed, tcp::Socket& sa, tcp::Socket& sb,
              std::uint64_t bytes) {
  bed.sim.spawn(
      [](tcp::Socket& s, std::uint64_t n) -> sim::Task<void> {
        co_await s.send(n, 1);
      }(sa, bytes),
      "sender");
  bed.sim.spawn(
      [](tcp::Socket& s, std::uint64_t n) -> sim::Task<void> {
        co_await s.recv_exact(n);
      }(sb, bytes),
      "receiver");
  bed.sim.run();
}

TEST(Tracing, CounterEventsAndSortIndexSerialize) {
  sim::TraceRecorder t;
  t.record_instant("tcp#0.a", "seg", sim::microseconds(1));
  t.record_counter("tcp#0.a", "cwnd", sim::microseconds(1), 2920.0);
  t.record_counter("tcp#0.a", "rwnd", sim::microseconds(2), 65536.0);
  t.set_track_sort_index("tcp#0.a", 3);
  EXPECT_EQ(t.counter_count(), 2u);
  EXPECT_EQ(t.counter_samples("tcp#0.a", "cwnd"), 1u);
  EXPECT_EQ(t.counter_samples("tcp#0.a", "rwnd"), 1u);
  EXPECT_EQ(t.counter_samples("tcp#0.a", "nope"), 0u);
  const std::string json = t.to_chrome_json();
  // Counter samples are Chrome "C" events keyed by track name, one
  // series per args key.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"cwnd\":2920"), std::string::npos);
  EXPECT_NE(json.find("\"rwnd\":65536"), std::string::npos);
  // The sort index rides along as thread_sort_index metadata.
  EXPECT_NE(json.find("\"thread_sort_index\""), std::string::npos);
  EXPECT_NE(json.find("\"sort_index\":3"), std::string::npos);
}

TEST(Tracing, TcpInstantsEqualSocketStatsUnderLoss) {
  auto bed = make_bed();
  sim::TraceRecorder rec;
  bed.sim.set_tracer(&rec);
  bed.link.forward.set_loss(0.02, 7);
  auto [sa, sb] = bed.socket_pair("lossy");
  transfer(bed, sa, sb, 1 << 20);

  const tcp::SocketStats& a = sa.stats();
  const tcp::SocketStats& b = sb.stats();
  ASSERT_GT(a.retransmits, 0u);  // the loss rate actually bit

  // Every protocol statistic has a one-to-one trace-instant twin.
  EXPECT_EQ(rec.instants_named("seg"),
            a.data_segments_sent + b.data_segments_sent);
  EXPECT_EQ(rec.instants_named("ack"), a.acks_sent + b.acks_sent);
  EXPECT_EQ(rec.instants_named("retransmit"), a.retransmits + b.retransmits);
  EXPECT_EQ(rec.instants_named("fast-retransmit"),
            a.fast_retransmits + b.fast_retransmits);
  EXPECT_EQ(rec.instants_named("ooo-drop"),
            a.out_of_order_dropped + b.out_of_order_dropped);
  EXPECT_EQ(rec.instants_named("drop"),
            bed.link.forward.packets_dropped() +
                bed.link.backward.packets_dropped());

  // Per-endpoint attribution: the lossy direction's sender owns the
  // retransmit instants.
  EXPECT_EQ(rec.instants_named(sa.trace_track(), "retransmit"),
            a.retransmits);
  // Window counters sampled on the endpoint's own track.
  EXPECT_GT(rec.counter_samples(sa.trace_track(), "rwnd"), 0u);
  EXPECT_GT(rec.counter_samples(sa.trace_track(), "advertised"), 0u);
  // NIC interrupts fired (coalescer instants on the rx pipe tracks).
  EXPECT_GT(rec.instants_named("irq"), 0u);
}

TEST(Tracing, UntracedRunIsBitIdenticalToTracedRun) {
  auto run_once = [](bool traced) {
    auto bed = make_bed();
    sim::TraceRecorder rec;
    if (traced) bed.sim.set_tracer(&rec);
    bed.link.forward.set_loss(0.05, 99);
    auto [sa, sb] = bed.socket_pair("twin");
    transfer(bed, sa, sb, 512 << 10);
    return std::pair{bed.sim.now(), bed.sim.events_processed()};
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(Tracing, GmDoorbellsAndCompletionsAreCounted) {
  sim::Simulator sim;
  sim::TraceRecorder rec;
  sim.set_tracer(&rec);
  hw::Cluster cluster(sim);
  hw::Node& a = cluster.add_node(presets::pentium4_pc());
  hw::Node& b = cluster.add_node(presets::pentium4_pc());
  gm::GmFabric fabric(cluster, a, b, presets::myrinet_pci64a(),
                      presets::back_to_back(), {});
  constexpr int kReps = 3;
  sim.spawn(
      [](gm::GmPort& p) -> sim::Task<void> {
        for (int i = 0; i < kReps; ++i) {
          co_await p.send(100000, 1);
          co_await p.recv(100000, 1);
        }
      }(fabric.port_a()),
      "ping");
  sim.spawn(
      [](gm::GmPort& p) -> sim::Task<void> {
        for (int i = 0; i < kReps; ++i) {
          co_await p.recv(100000, 1);
          co_await p.send(100000, 1);
        }
      }(fabric.port_b()),
      "pong");
  sim.run();
  // One doorbell per gm_send; every message completes exactly once,
  // either against a posted receive or via the unexpected/staging path.
  EXPECT_EQ(rec.instants_named("doorbell"), 2u * kReps);
  EXPECT_EQ(rec.instants_named("complete") + rec.instants_named("unexpected"),
            2u * kReps);
}

TEST(Tracing, ViaRdmaInstantsMatchTransferCounts) {
  sim::Simulator sim;
  sim::TraceRecorder rec;
  sim.set_tracer(&rec);
  hw::Cluster cluster(sim);
  hw::Node& a = cluster.add_node(presets::pentium4_pc());
  hw::Node& b = cluster.add_node(presets::pentium4_pc());
  via::ViaFabric fabric(cluster, a, b, presets::giganet_clan(),
                        presets::switched(), {});
  // 64 kB is above the default 16 kB RDMA-write threshold.
  sim.spawn(
      [](via::ViEndpoint& p) -> sim::Task<void> {
        co_await p.send(64 << 10, 1);
        co_await p.recv(64 << 10, 1);
      }(fabric.end_a()),
      "ping");
  sim.spawn(
      [](via::ViEndpoint& p) -> sim::Task<void> {
        co_await p.recv(64 << 10, 1);
        co_await p.send(64 << 10, 1);
      }(fabric.end_b()),
      "pong");
  sim.run();
  const std::uint64_t rdma =
      fabric.end_a().rdma_transfers() + fabric.end_b().rdma_transfers();
  EXPECT_GT(rdma, 0u);
  EXPECT_EQ(rec.instants_named("rdma-req"), rdma);
  EXPECT_GT(rec.instants_named("doorbell"), 0u);
}

TEST(Tracing, RendezvousInstantsMatchHandshakeCounters) {
  auto bed = make_bed();
  sim::TraceRecorder rec;
  bed.sim.set_tracer(&rec);
  auto [a, b] = mp::Mpich::create_pair(bed, {});
  // 256 kB is above MPICH's 128 kB rendezvous cutoff.
  bed.sim.spawn(
      [](mp::Library& l) -> sim::Task<void> {
        co_await l.send(1, 256 << 10, 1);
      }(*a),
      "send");
  bed.sim.spawn(
      [](mp::Library& l) -> sim::Task<void> {
        co_await l.recv(0, 256 << 10, 1);
      }(*b),
      "recv");
  bed.sim.run();
  const std::uint64_t handshakes =
      a->protocol_counters().rendezvous_handshakes +
      b->protocol_counters().rendezvous_handshakes;
  ASSERT_GT(handshakes, 0u);
  // One RTS, one CTS and one payload phase per handshake.
  EXPECT_EQ(rec.instants_named("rts"), handshakes);
  EXPECT_EQ(rec.instants_named("cts"), handshakes);
  EXPECT_EQ(rec.instants_named("rendezvous-payload"), handshakes);
}

TEST(Tracing, DaemonRelayHopsMatchFragmentCounters) {
  auto bed = make_bed();
  sim::TraceRecorder rec;
  bed.sim.set_tracer(&rec);
  mp::PvmOptions opt;
  opt.route = mp::PvmRoute::kDaemon;
  auto [a, b] = mp::Pvm::create_pair(bed, opt);
  bed.sim.spawn(
      [](mp::Library& l) -> sim::Task<void> {
        co_await l.send(1, 100000, 1);
        co_await l.recv(1, 100000, 1);
      }(*a),
      "ping");
  bed.sim.spawn(
      [](mp::Library& l) -> sim::Task<void> {
        co_await l.recv(0, 100000, 1);
        co_await l.send(0, 100000, 1);
      }(*b),
      "pong");
  bed.sim.run();
  const std::uint64_t fragments = a->protocol_counters().relay_fragments +
                                  b->protocol_counters().relay_fragments;
  ASSERT_GT(fragments, 0u);
  EXPECT_EQ(rec.instants_named("relay-out"), fragments);
  EXPECT_GT(rec.instants_named("relay-in"), 0u);
}

TEST(Tracing, RunResultCarriesCountersAndPointMarks) {
  auto bed = make_bed();
  sim::TraceRecorder rec;
  bed.sim.set_tracer(&rec);
  auto [sa, sb] = bed.socket_pair("np");
  netpipe::TcpTransport ta(sa), tb(sb);
  netpipe::RunOptions opt;
  opt.schedule.max_bytes = 16 << 10;
  opt.repeats = 2;
  const netpipe::RunResult r = netpipe::run_netpipe(bed.sim, ta, tb, opt);

  // The result's counters are the sum of both socket ends' stats.
  EXPECT_EQ(r.counters.data_segments,
            sa.stats().data_segments_sent + sb.stats().data_segments_sent);
  EXPECT_EQ(r.counters.acks, sa.stats().acks_sent + sb.stats().acks_sent);
  EXPECT_GT(r.counters.data_segments, 0u);
  EXPECT_GT(r.counters.acks, 0u);
  EXPECT_EQ(r.counters.rendezvous_handshakes, 0u);  // raw TCP transport

  // One "size=N" mark per measured point on the "netpipe" track.
  ASSERT_FALSE(r.points.empty());
  for (const auto& p : r.points) {
    EXPECT_EQ(rec.instants_named("netpipe",
                                 "size=" + std::to_string(p.bytes)),
              1u);
  }
}

TEST(Tracing, PointMarksCanBeDisabled) {
  auto bed = make_bed();
  sim::TraceRecorder rec;
  bed.sim.set_tracer(&rec);
  auto [sa, sb] = bed.socket_pair("np");
  netpipe::TcpTransport ta(sa), tb(sb);
  netpipe::RunOptions opt;
  opt.schedule.max_bytes = 4 << 10;
  opt.mark_points = false;
  const netpipe::RunResult r = netpipe::run_netpipe(bed.sim, ta, tb, opt);
  ASSERT_FALSE(r.points.empty());
  for (const auto& p : r.points) {
    EXPECT_EQ(rec.instants_named("netpipe",
                                 "size=" + std::to_string(p.bytes)),
              0u);
  }
}

}  // namespace
}  // namespace pp
