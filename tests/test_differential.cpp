// Differential determinism harness: legacy implementations vs their
// optimized replacements.
//
// Two axes, same proof technique. The event-queue overhaul
// (simcore/event_queue.h) replaced the seed's std::priority_queue with a
// two-tier calendar queue and moved protocol timers onto an intrusive
// timer wheel; the packet-path overhaul (simcore/packet_arena.h)
// replaced per-message shared_ptr descriptors with arena slots. Both
// must preserve observable behaviour EXACTLY — the proof is running the
// paper's real workloads (figures 1-5, the MPICH mechanism ablation,
// resilience-style faulted runs) once per SchedulerKind /
// PacketPathKind and asserting bit-identical canonical reports,
// counters and traces. The legacy variants stay selectable forever
// (PP_LEGACY_QUEUE=1 / PP_LEGACY_PACKETS=1, or the SweepOptions knobs)
// precisely so these comparisons keep running.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/figures.h"
#include "faults/plan.h"
#include "mp/mpich.h"
#include "mp/testbed.h"
#include "netpipe/runner.h"
#include "simcore/event_queue.h"
#include "simcore/packet_arena.h"
#include "simcore/shard.h"
#include "simcore/time.h"
#include "simcore/tracing.h"
#include "simhw/presets.h"
#include "simhw/relay_ring.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"

namespace {

using namespace pp;

netpipe::RunOptions reduced_options() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 64 << 10;
  o.repeats = 1;
  o.warmup = 0;
  return o;
}

std::string canonical(const sweep::SweepResult& sr) {
  sweep::JsonReporter::Options o;
  o.include_timing = false;
  return sweep::JsonReporter::to_json({sr}, o);
}

/// Runs `spec` under both option sets and asserts identical results,
/// first as canonical JSON (cheap, catches everything the report
/// serializes) and then field by field on the raw results (catches
/// anything the report rounds).
void expect_runs_agree(const sweep::SweepSpec& spec,
                       const sweep::SweepOptions& legacy,
                       const sweep::SweepOptions& modern) {
  const auto lr = sweep::run_sweep(spec, legacy);
  const auto cr = sweep::run_sweep(spec, modern);

  EXPECT_EQ(canonical(lr), canonical(cr)) << spec.name;

  ASSERT_EQ(lr.jobs.size(), cr.jobs.size());
  for (std::size_t i = 0; i < lr.jobs.size(); ++i) {
    const auto& a = lr.jobs[i];
    const auto& b = cr.jobs[i];
    ASSERT_EQ(a.ok, b.ok) << spec.name << "/" << a.label;
    if (!a.ok) continue;
    ASSERT_EQ(a.result.points.size(), b.result.points.size()) << a.label;
    for (std::size_t p = 0; p < a.result.points.size(); ++p) {
      EXPECT_EQ(a.result.points[p].elapsed, b.result.points[p].elapsed)
          << spec.name << "/" << a.label << " point " << p;
    }
    EXPECT_EQ(a.result.counters.data_segments, b.result.counters.data_segments)
        << a.label;
    EXPECT_EQ(a.result.counters.acks, b.result.counters.acks) << a.label;
    EXPECT_EQ(a.result.counters.retransmits, b.result.counters.retransmits)
        << a.label;
    EXPECT_EQ(a.result.counters.wire_drops, b.result.counters.wire_drops)
        << a.label;
    EXPECT_EQ(a.result.counters.staged_bytes, b.result.counters.staged_bytes)
        << a.label;
  }
}

void expect_schedulers_agree(const sweep::SweepSpec& spec) {
  sweep::SweepOptions legacy;
  legacy.scheduler = sim::SchedulerKind::kLegacyHeap;
  sweep::SweepOptions calendar;
  calendar.scheduler = sim::SchedulerKind::kCalendar;
  expect_runs_agree(spec, legacy, calendar);
}

/// The packet-path axis: per-message heap descriptors vs arena slots.
/// Descriptor storage must be invisible to every simulated observable.
void expect_packet_paths_agree(const sweep::SweepSpec& spec) {
  sweep::SweepOptions legacy;
  legacy.packet_path = sim::PacketPathKind::kLegacyHeap;
  sweep::SweepOptions arena;
  arena.packet_path = sim::PacketPathKind::kArena;
  expect_runs_agree(spec, legacy, arena);
}

TEST(Differential, Figure1) {
  expect_schedulers_agree(bench::fig1_spec(reduced_options()));
}

TEST(Differential, Figure2) {
  expect_schedulers_agree(bench::fig2_spec(reduced_options()));
}

TEST(Differential, Figure3) {
  expect_schedulers_agree(bench::fig3_spec(reduced_options()));
}

TEST(Differential, Figure4) {
  expect_schedulers_agree(bench::fig4_spec(reduced_options()));
}

TEST(Differential, Figure5) {
  expect_schedulers_agree(bench::fig5_spec(reduced_options()));
}

TEST(Differential, MpichMechanismAblation) {
  // The ablation bench's MPICH variants: each stresses a different
  // protocol path (rendezvous off, small buffers, MP_Lite channel).
  const auto opts = reduced_options();
  const auto host = hw::presets::pentium4_pc();
  const auto nic = hw::presets::netgear_ga620();
  const auto sysctl = tcp::Sysctl::tuned();

  mp::MpichOptions stock;
  stock.p4_sockbufsize = 256 << 10;
  mp::MpichOptions no_rndv = stock;
  no_rndv.rendezvous_cutoff = UINT64_MAX;
  mp::MpichOptions small_buf = stock;
  small_buf.p4_sockbufsize = 32 << 10;
  mp::MpichOptions snw = small_buf;
  snw.p4_stop_and_wait = true;

  sweep::SweepSpec spec;
  spec.name = "ablation";
  auto add = [&](const std::string& label, mp::MpichOptions mo) {
    spec.jobs.push_back(bench::bed_job(
        label, host, nic, sysctl,
        [mo](mp::PairBed& bed) {
          return bench::hold_pair(mp::Mpich::create_pair(bed, mo));
        },
        opts));
  };
  add("stock", stock);
  add("no-rendezvous", no_rndv);
  add("32k-buffer", small_buf);
  add("stop-and-wait", snw);
  expect_schedulers_agree(spec);
}

/// Resilience-style rows: raw TCP and MPICH under uniform frame loss.
/// Faulted runs exercise the RTO/fast-retransmit paths where the timer
/// wheel actually fires (not just arms and cancels) and where dropped
/// frames run descriptor drop hooks.
sweep::SweepSpec resilience_spec(const netpipe::RunOptions& opts) {
  sweep::SweepSpec spec;
  spec.name = "resilience";
  std::uint64_t seed = 11;
  for (double loss : {0.002, 0.01, 0.03}) {
    for (bool mpich : {false, true}) {
      const std::string label = (mpich ? "MPICH@" : "TCP@") +
                                std::to_string(loss);
      const std::uint64_t job_seed = seed++;
      spec.jobs.push_back(sweep::JobSpec{
          label, [loss, mpich, job_seed, opts] {
            mp::PairBed bed(hw::presets::pentium4_pc(),
                            hw::presets::netgear_ga620(),
                            tcp::Sysctl::tuned());
            faults::apply(faults::uniform_loss_plan(loss, job_seed),
                          bed.cluster);
            if (mpich) {
              mp::MpichOptions mo;
              mo.p4_sockbufsize = 256 << 10;
              auto pair = bench::hold_pair(mp::Mpich::create_pair(bed, mo));
              return netpipe::run_netpipe(bed.sim, *pair.first, *pair.second,
                                          opts);
            }
            auto pair = bench::raw_tcp_pair(bed, 512 << 10);
            return netpipe::run_netpipe(bed.sim, *pair.first, *pair.second,
                                        opts);
          }});
    }
  }
  return spec;
}

TEST(Differential, FaultedResilienceRuns) {
  expect_schedulers_agree(resilience_spec(reduced_options()));
}

// ---- Packet-path axis: arena descriptors vs per-message heap ---------------

TEST(PacketPathDifferential, Figure1) {
  expect_packet_paths_agree(bench::fig1_spec(reduced_options()));
}

TEST(PacketPathDifferential, Figure2) {
  expect_packet_paths_agree(bench::fig2_spec(reduced_options()));
}

TEST(PacketPathDifferential, Figure3) {
  expect_packet_paths_agree(bench::fig3_spec(reduced_options()));
}

TEST(PacketPathDifferential, Figure4) {
  expect_packet_paths_agree(bench::fig4_spec(reduced_options()));
}

TEST(PacketPathDifferential, Figure5) {
  expect_packet_paths_agree(bench::fig5_spec(reduced_options()));
}

TEST(PacketPathDifferential, FaultedResilienceRuns) {
  // Loss, drop hooks and retransmission under both descriptor backends:
  // the strongest case for refcount-lifetime equivalence, since dropped
  // and re-sent frames are exactly where the arena shares slots the
  // legacy path used to clone.
  expect_packet_paths_agree(resilience_spec(reduced_options()));
}

TEST(PacketPathDifferential, TraceTimelinesMatchEventForEvent) {
  auto traced_run = [](sim::PacketPathKind kind) {
    sim::ScopedPacketPath guard(kind);
    mp::PairBed bed(hw::presets::pentium4_pc(),
                    hw::presets::trendnet_teg_pcitx(), tcp::Sysctl::tuned());
    faults::apply(faults::uniform_loss_plan(0.01, 3), bed.cluster);
    sim::TraceRecorder rec;
    bed.sim.set_tracer(&rec);
    mp::MpichOptions mo;
    mo.p4_sockbufsize = 32 << 10;
    mo.p4_stop_and_wait = true;
    auto pair = bench::hold_pair(mp::Mpich::create_pair(bed, mo));
    auto opts = reduced_options();
    opts.schedule.max_bytes = 32 << 10;
    netpipe::run_netpipe(bed.sim, *pair.first, *pair.second, opts);
    return rec.to_chrome_json();
  };
  const std::string legacy = traced_run(sim::PacketPathKind::kLegacyHeap);
  const std::string arena = traced_run(sim::PacketPathKind::kArena);
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(legacy, arena);
}

TEST(Differential, TraceTimelinesMatchEventForEvent) {
  // Stronger than counters: a full Chrome-JSON trace of a faulted MPICH
  // transfer records the timestamp of every segment, irq, ack and timer
  // fire. Both schedulers must produce the identical string.
  auto traced_run = [](sim::SchedulerKind kind) {
    sim::ScopedScheduler guard(kind);
    mp::PairBed bed(hw::presets::pentium4_pc(),
                    hw::presets::trendnet_teg_pcitx(), tcp::Sysctl::tuned());
    faults::apply(faults::uniform_loss_plan(0.01, 3), bed.cluster);
    sim::TraceRecorder rec;
    bed.sim.set_tracer(&rec);
    mp::MpichOptions mo;
    mo.p4_sockbufsize = 32 << 10;
    mo.p4_stop_and_wait = true;
    auto pair = bench::hold_pair(mp::Mpich::create_pair(bed, mo));
    auto opts = reduced_options();
    opts.schedule.max_bytes = 32 << 10;
    netpipe::run_netpipe(bed.sim, *pair.first, *pair.second, opts);
    return rec.to_chrome_json();
  };
  const std::string legacy = traced_run(sim::SchedulerKind::kLegacyHeap);
  const std::string calendar = traced_run(sim::SchedulerKind::kCalendar);
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(legacy, calendar);
}

// ---- Shard axis: conservative parallel execution vs serial -----------------

/// A relay-ring sweep whose jobs partition themselves over the ambient
/// shard count (installed by SweepOptions::shards).
sweep::SweepSpec sharded_relay_spec() {
  sweep::SweepSpec spec;
  spec.name = "sharded_relay";
  std::uint64_t seed = 7;
  for (double loss : {0.0, 0.02}) {
    const std::uint64_t job_seed = seed++;
    const std::string label =
        loss > 0.0 ? "ring16_faulted" : "ring16_clean";
    spec.jobs.push_back(sweep::JobSpec{label, [loss, job_seed] {
      hw::RelayRingOptions opt;
      opt.nodes = 16;
      opt.shards = std::max(1, sim::ambient_shards());
      opt.tokens_per_node = 2;
      opt.hops = 4;
      opt.seed = job_seed;
      hw::RelayRing ring(opt);
      if (loss > 0.0) {
        for (hw::PacketPipe* p : ring.cluster().pipes()) p->set_loss(loss);
      }
      const hw::RelayRingResult r = ring.run();
      netpipe::RunResult out;
      out.transport = "relay_ring16";
      out.latency_us = sim::to_microseconds(r.completion_time);
      out.max_mbps = static_cast<double>(r.checksum % 1000003);
      out.half_performance_bytes = r.tokens_retired;
      out.saturation_bytes = r.hops_total;
      out.counters.data_segments = r.tokens_retired;
      out.counters.relay_fragments = r.hops_total;
      out.counters.staged_bytes = r.checksum;
      for (std::uint64_t d : r.per_pipe_dropped)
        out.counters.wire_drops += d;
      out.points.push_back({r.tokens_retired, r.completion_time});
      return out;
    }});
  }
  return spec;
}

TEST(ShardDifferential, SchedulersAgreeAtEveryShardCount) {
  // Two independent axes crossed: the event-queue backend must not care
  // whether the ring runs serially or split across 2 or 8 shards, and
  // the sharding must not care which queue backend each shard runs.
  for (int shards : {1, 2, 8}) {
    sweep::SweepOptions legacy;
    legacy.scheduler = sim::SchedulerKind::kLegacyHeap;
    legacy.shards = shards;
    sweep::SweepOptions calendar;
    calendar.scheduler = sim::SchedulerKind::kCalendar;
    calendar.shards = shards;
    expect_runs_agree(sharded_relay_spec(), legacy, calendar);
  }
}

TEST(ShardDifferential, ShardedRunMatchesSerialUnderBothPacketPaths) {
  // The packet-path axis at shards=2: arena slots hop between per-shard
  // arenas on cross-shard links, the legacy path clones heap
  // descriptors — both must match their own serial run and each other.
  for (auto kind :
       {sim::PacketPathKind::kLegacyHeap, sim::PacketPathKind::kArena}) {
    sweep::SweepOptions serial;
    serial.packet_path = kind;
    serial.shards = 1;
    sweep::SweepOptions sharded;
    sharded.packet_path = kind;
    sharded.shards = 2;
    expect_runs_agree(sharded_relay_spec(), serial, sharded);
  }
}

TEST(Differential, EnvironmentVariableSelectsLegacy) {
  // PP_LEGACY_QUEUE=1 flips the ambient default; ScopedScheduler
  // overrides it per thread. Both knobs must resolve to real kinds.
  sim::ScopedScheduler legacy(sim::SchedulerKind::kLegacyHeap);
  {
    sim::Simulator s;
    EXPECT_EQ(s.scheduler(), sim::SchedulerKind::kLegacyHeap);
    sim::ScopedScheduler inner(sim::SchedulerKind::kCalendar);
    sim::Simulator s2;
    EXPECT_EQ(s2.scheduler(), sim::SchedulerKind::kCalendar);
  }
}

}  // namespace
