// Tests for the arena-backed packet path (simcore/packet_arena.h) and
// the zero-copy machinery layered on it: PacketArena/PacketRef refcount
// semantics, the legacy-heap parity backend, descriptor-leak checks
// after faulted runs and mid-flight teardowns, the rx-ring backlog
// accounting regression, TCP payload views, the stream library's
// zero-copy staging and the daemon relay's zero-copy route — plus the
// flagship claim: the steady-state per-frame path performs zero heap
// allocations. That last test works by replacing the global allocator
// with a counting one, so every allocation in this binary is counted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <utility>

#include "faults/config.h"
#include "faults/plan.h"
#include "gmsim/gm.h"
#include "mp/daemon_relay.h"
#include "mp/stream_lib.h"
#include "mp/testbed.h"
#include "simcore/event_queue.h"
#include "simcore/packet_arena.h"
#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/pipe.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"

// ---- Counting global allocator ---------------------------------------------
//
// Counts every operator-new entry in the process. The zero-alloc test
// warms a pipe workload up (growing slabs, rings and pools), snapshots
// the counter, and asserts the steady-state window allocates nothing.

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : 1) == 0) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pp {
namespace {

namespace presets = hw::presets;
using sim::microseconds;
using sim::milliseconds;

// ---- Fixtures --------------------------------------------------------------

/// Two nodes, one duplex link, one connected TCP socket pair.
struct Pair {
  explicit Pair(const tcp::Sysctl& sysctl = tcp::Sysctl::tuned())
      : cluster(sim),
        a(cluster.add_node(presets::pentium4_pc())),
        b(cluster.add_node(presets::pentium4_pc())),
        link(cluster.connect(a, b, presets::netgear_ga620(),
                             presets::back_to_back())),
        stack_a(a, sysctl),
        stack_b(b, sysctl) {
    auto [sa, sb] = tcp::connect(stack_a, stack_b, link);
    sock_a = sa;
    sock_b = sb;
  }

  /// One-way transfer of `bytes` from a to b; returns the finish time.
  sim::SimTime transfer(std::uint64_t bytes) {
    sim::SimTime done = 0;
    sim.spawn(
        [](Pair& f, std::uint64_t n) -> sim::Task<void> {
          co_await f.sock_a.send(n, 42);
        }(*this, bytes),
        "sender");
    sim.spawn(
        [](Pair& f, std::uint64_t n, sim::SimTime& out) -> sim::Task<void> {
          co_await f.sock_b.recv_exact(n);
          out = f.sim.now();
        }(*this, bytes, done),
        "receiver");
    sim.run();
    return done;
  }

  sim::Simulator sim;
  hw::Cluster cluster;
  hw::Node& a;
  hw::Node& b;
  hw::Cluster::Duplex link;
  tcp::TcpStack stack_a;
  tcp::TcpStack stack_b;
  tcp::Socket sock_a;
  tcp::Socket sock_b;
};

// ---- PacketArena unit tests ------------------------------------------------

TEST(PacketArena, RefcountSharingAndSlotReuse) {
  sim::Simulator s;
  sim::PacketArena& arena = s.packet_arena();
  EXPECT_EQ(arena.live(), 0u);

  sim::PacketRef r = arena.make<int>(7);
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(*r.get<int>(), 7);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(r.use_count(), 1u);

  sim::PacketRef shared = r;  // a view, not a clone
  EXPECT_EQ(r.use_count(), 2u);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(shared.get<int>(), r.get<int>());

  r.reset();
  EXPECT_EQ(shared.use_count(), 1u);
  EXPECT_EQ(arena.live(), 1u);
  shared.reset();
  EXPECT_EQ(arena.live(), 0u);

  // The freed slot is recycled: allocating again grows nothing.
  const std::size_t slabs = arena.slab_count();
  const std::uint64_t total = arena.total_allocated();
  sim::PacketRef again = arena.make<int>(9);
  EXPECT_EQ(arena.slab_count(), slabs);
  EXPECT_EQ(arena.total_allocated(), total + 1);
}

TEST(PacketArena, DropHookFiresPerFrameWithoutConsuming) {
  sim::Simulator s;
  int fired = 0;
  sim::PacketRef desc = s.packet_arena().make<int>(0);
  desc.set_drop([&fired] { ++fired; });
  // A descriptor shared by many fragments fires once per dropped frame.
  desc.fire_drop();
  desc.fire_drop();
  desc.fire_drop();
  EXPECT_EQ(fired, 3);
}

TEST(PacketArena, PayloadDestructorRunsOnLastRelease) {
  sim::Simulator s;
  struct Probe {
    int* flag;
    explicit Probe(int* f) : flag(f) {}
    ~Probe() { *flag += 1; }
  };
  int destroyed = 0;
  {
    sim::PacketRef r = s.packet_arena().make<Probe>(&destroyed);
    sim::PacketRef shared = r;
    r.reset();
    EXPECT_EQ(destroyed, 0);  // one reference still alive
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(PacketArena, LegacyHeapBackendIsApiIdentical) {
  sim::ScopedPacketPath scope(sim::PacketPathKind::kLegacyHeap);
  sim::Simulator s;
  EXPECT_EQ(s.packet_path(), sim::PacketPathKind::kLegacyHeap);
  sim::PacketArena& arena = s.packet_arena();
  sim::PacketRef r = arena.make<int>(3);
  sim::PacketRef shared = r;
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(r.use_count(), 2u);
  int fired = 0;
  r.set_drop([&fired] { ++fired; });
  shared.fire_drop();
  EXPECT_EQ(fired, 1);
  r.reset();
  shared.reset();
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.slab_count(), 0u);  // legacy never builds slabs
}

TEST(PacketArena, ScopedPacketPathNestsAndRestores) {
  const sim::PacketPathKind ambient = sim::ambient_packet_path();
  {
    sim::ScopedPacketPath outer(sim::PacketPathKind::kLegacyHeap);
    EXPECT_EQ(sim::ambient_packet_path(), sim::PacketPathKind::kLegacyHeap);
    {
      sim::ScopedPacketPath inner(sim::PacketPathKind::kArena);
      EXPECT_EQ(sim::ambient_packet_path(), sim::PacketPathKind::kArena);
    }
    EXPECT_EQ(sim::ambient_packet_path(), sim::PacketPathKind::kLegacyHeap);
  }
  EXPECT_EQ(sim::ambient_packet_path(), ambient);
}

TEST(PacketArena, AmbientPathSelectsTheSimulatorBackend) {
  // PP_LEGACY_PACKETS=1 flips the ambient default (resolved once per
  // process, so not togglable here); ScopedPacketPath overrides it per
  // thread. Both knobs must resolve to real kinds, and a Simulator
  // constructed under a scope must adopt it.
  EXPECT_EQ(sim::default_packet_path(), sim::PacketPathKind::kArena);
  sim::ScopedPacketPath legacy(sim::PacketPathKind::kLegacyHeap);
  {
    sim::Simulator s;
    EXPECT_EQ(s.packet_path(), sim::PacketPathKind::kLegacyHeap);
    sim::ScopedPacketPath inner(sim::PacketPathKind::kArena);
    sim::Simulator s2;
    EXPECT_EQ(s2.packet_path(), sim::PacketPathKind::kArena);
  }
}

TEST(PacketArena, MakePayloadIdsAreUniqueAndDeterministic) {
  sim::Simulator s;
  sim::PacketRef p1 = s.packet_arena().make_payload(4096);
  sim::PacketRef p2 = s.packet_arena().make_payload(8192);
  EXPECT_NE(p1.get<sim::PayloadBuffer>()->id, p2.get<sim::PayloadBuffer>()->id);
  EXPECT_EQ(p1.get<sim::PayloadBuffer>()->bytes, 4096u);
  EXPECT_EQ(p2.get<sim::PayloadBuffer>()->bytes, 8192u);

  sim::Simulator s2;  // a fresh run reproduces the same id sequence
  EXPECT_EQ(s2.packet_arena().make_payload(4096).get<sim::PayloadBuffer>()->id,
            p1.get<sim::PayloadBuffer>()->id);
}

// ---- Descriptor-leak checks (satellite: teardown drains) -------------------

TEST(PacketArena, FaultedGmRunLeavesNoLiveDescriptors) {
  gm::GmConfig cfg;
  cfg.delivery_timeout = microseconds(500.0);
  sim::Simulator s;
  hw::Cluster cluster(s);
  hw::Node& a = cluster.add_node(presets::pentium4_pc());
  hw::Node& b = cluster.add_node(presets::pentium4_pc());
  gm::GmFabric fabric(cluster, a, b, presets::myrinet_pci64a(),
                      presets::back_to_back(), cfg);
  faults::apply(faults::uniform_loss_plan(0.05, 41), cluster);
  s.spawn(
      [](gm::GmPort& p) -> sim::Task<void> {
        for (int i = 0; i < 3; ++i) {
          co_await p.send(64 << 10, 1);
          co_await p.recv(64 << 10, 1);
        }
      }(fabric.port_a()),
      "ping");
  s.spawn(
      [](gm::GmPort& p) -> sim::Task<void> {
        for (int i = 0; i < 3; ++i) {
          co_await p.recv(64 << 10, 1);
          co_await p.send(64 << 10, 1);
        }
      }(fabric.port_b()),
      "pong");
  s.run();
  EXPECT_GT(fabric.port_a().frags_lost() + fabric.port_b().frags_lost(), 0u);
  // Every descriptor — including those of dropped and duplicate frames —
  // must have come home once the run drains.
  EXPECT_EQ(s.packet_arena().live(), 0u);
  EXPECT_GT(s.packet_arena().total_allocated(), 0u);
}

TEST(PacketArena, FaultedTcpRunLeavesNoLiveDescriptors) {
  Pair p;
  p.link.forward.set_loss(0.02);
  p.link.backward.set_loss(0.02);
  p.transfer(1 << 20);
  EXPECT_GT(p.sock_a.stats().retransmits, 0u);
  EXPECT_EQ(p.sim.packet_arena().live(), 0u);
}

TEST(PacketArena, MidFlightTeardownReleasesEveryDescriptor) {
  // Cut a faulted transfer off with frames still queued in the pipe
  // stages, then tear everything down. ~PacketPipe drains its queues and
  // ~Simulator reaps parked coroutine frames before the arena dies; the
  // arena's own destructor asserts live() == 0, so a leak aborts here.
  for (int i = 0; i < 3; ++i) {
    Pair p;
    p.link.forward.set_loss(0.01);
    p.sim.spawn(
        [](Pair& f) -> sim::Task<void> {
          co_await f.sock_a.send(1 << 20, 42);
        }(p),
        "sender");
    p.sim.spawn(
        [](Pair& f) -> sim::Task<void> {
          co_await f.sock_b.recv_exact(1 << 20);
        }(p),
        "receiver");
    // Stop mid-transfer at staggered points to vary what is in flight.
    p.sim.run_until(milliseconds(0.5) * (i + 1));
    EXPECT_GT(p.sim.packet_arena().live(), 0u) << "nothing was in flight";
  }
  SUCCEED();
}

// ---- Rx-ring backlog accounting (satellite regression) ---------------------

TEST(RxBacklog, ReturnsToZeroAfterRingOverflowRun) {
  // The old code guarded the decrement with `if (rx_backlog_ > 0)`,
  // masking any pairing bug as a slow undercount that made the armed
  // ring look emptier than it was. The guard is gone; the counter must
  // pair exactly and land on zero once the run drains.
  Pair p;
  faults::NicFaultConfig nf;
  nf.ring_slots = 2;
  nf.irq_stall = 0.3;
  faults::FaultPlan plan;
  plan.seed = 61;
  plan.add_nic("", nf);
  faults::apply(plan, p.cluster);
  const sim::SimTime done = p.transfer(1 << 20);
  EXPECT_GT(done, 0u);
  EXPECT_GT(p.link.forward.ring_overflow_drops(), 0u);
  EXPECT_EQ(p.link.forward.rx_backlog(), 0u);
  EXPECT_EQ(p.link.backward.rx_backlog(), 0u);
}

TEST(RxBacklog, ReturnsToZeroAfterLossyDuplicatingRun) {
  Pair p;
  faults::LinkFaultConfig lf;
  lf.loss = 0.01;
  lf.duplicate = 0.02;
  lf.corrupt = 0.01;
  faults::FaultPlan plan;
  plan.seed = 67;
  plan.add_link("", lf);
  faults::apply(plan, p.cluster);
  const sim::SimTime done = p.transfer(1 << 20);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(p.link.forward.rx_backlog(), 0u);
  EXPECT_EQ(p.link.backward.rx_backlog(), 0u);
}

// ---- TCP zero-copy payload views -------------------------------------------

TEST(ZeroCopy, CapturedPayloadArrivesInSendOrder) {
  Pair p;
  p.sock_b.enable_payload_capture();
  p.sim.spawn(
      [](Pair& f) -> sim::Task<void> {
        co_await f.sock_a.send(32 << 10, f.sock_a.make_payload(32 << 10));
        co_await f.sock_a.send(8 << 10, f.sock_a.make_payload(8 << 10));
      }(p),
      "sender");
  std::uint64_t first_id = 0, second_id = 0;
  std::uint64_t first_bytes = 0, second_bytes = 0;
  p.sim.spawn(
      [](Pair& f, std::uint64_t& id1, std::uint64_t& b1, std::uint64_t& id2,
         std::uint64_t& b2) -> sim::Task<void> {
        co_await f.sock_b.recv_exact(40 << 10);
        sim::PacketRef v1 = f.sock_b.take_rx_payload();
        sim::PacketRef v2 = f.sock_b.take_rx_payload();
        if (v1) {
          id1 = v1.get<sim::PayloadBuffer>()->id;
          b1 = v1.get<sim::PayloadBuffer>()->bytes;
        }
        if (v2) {
          id2 = v2.get<sim::PayloadBuffer>()->id;
          b2 = v2.get<sim::PayloadBuffer>()->bytes;
        }
      }(p, first_id, first_bytes, second_id, second_bytes),
      "receiver");
  p.sim.run();
  EXPECT_EQ(first_bytes, 32u << 10);
  EXPECT_EQ(second_bytes, 8u << 10);
  EXPECT_NE(first_id, second_id);
  EXPECT_GT(p.sock_a.stats().payload_views, 0u);
  EXPECT_EQ(p.sim.packet_arena().live(), 0u);  // views released
}

TEST(ZeroCopy, RetransmitsShareTheBufferInsteadOfCloning) {
  auto run = [](double loss) {
    Pair p;
    p.sock_b.enable_payload_capture();
    if (loss > 0.0) p.link.forward.set_loss(loss);
    p.sim.spawn(
        [](Pair& f) -> sim::Task<void> {
          co_await f.sock_a.send(256 << 10, f.sock_a.make_payload(256 << 10));
        }(p),
        "sender");
    p.sim.spawn(
        [](Pair& f) -> sim::Task<void> {
          co_await f.sock_b.recv_exact(256 << 10);
          (void)f.sock_b.take_rx_payload();
        }(p),
        "receiver");
    p.sim.run();
    return std::tuple(p.sock_a.stats().payload_views,
                      p.sock_a.stats().retransmits,
                      p.sim.packet_arena().total_allocated());
  };
  const auto clean = run(0.0);
  const auto lossy = run(0.03);
  EXPECT_EQ(std::get<1>(clean), 0u);
  EXPECT_GT(std::get<1>(lossy), 0u);
  // Retransmitted segments re-attach views of the one payload buffer:
  // more views under loss, from the same single buffer allocation.
  EXPECT_GT(std::get<0>(lossy), std::get<0>(clean));
}

TEST(ZeroCopy, StreamLibraryStagedReceivesSkipTheCopy) {
  auto run = [](bool zero_copy) {
    mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                    tcp::Sysctl::tuned());
    mp::StreamConfig cfg;
    cfg.name = "zc-test";
    cfg.stage_all_receives = true;  // every payload goes through staging
    cfg.zero_copy_staging = zero_copy;
    mp::StreamLibrary a(bed.sim, 0, bed.node_a, cfg);
    mp::StreamLibrary b(bed.sim, 1, bed.node_b, cfg);
    auto [sa, sb] = bed.socket_pair("zc");
    mp::wire_pair(a, b, std::move(sa), std::move(sb));
    sim::SimTime done = 0;
    bed.sim.spawn(
        [](mp::StreamLibrary& l, sim::Simulator& s,
           sim::SimTime& out) -> sim::Task<void> {
          for (int i = 0; i < 4; ++i) {
            co_await l.send(1, 128 << 10, 1);
            co_await l.recv(1, 128 << 10, 1);
          }
          out = s.now();
        }(a, bed.sim, done),
        "ping");
    bed.sim.spawn(
        [](mp::StreamLibrary& l) -> sim::Task<void> {
          for (int i = 0; i < 4; ++i) {
            co_await l.recv(0, 128 << 10, 1);
            co_await l.send(0, 128 << 10, 1);
          }
        }(b),
        "pong");
    bed.sim.run();
    return std::tuple(done, a.staged_bytes(), a.zero_copy_receives(),
                      a.zero_copy_bytes());
  };
  const auto copied = run(false);
  const auto zero = run(true);
  ASSERT_GT(std::get<0>(copied), 0u);
  ASSERT_GT(std::get<0>(zero), 0u);
  // Both modes stage every receive; zero-copy satisfies them with views.
  EXPECT_GT(std::get<1>(zero), 0u);
  EXPECT_EQ(std::get<2>(copied), 0u);
  EXPECT_EQ(std::get<2>(zero), 4u);
  EXPECT_EQ(std::get<3>(zero), 4u * (128u << 10));
  // Skipping four 128 kB staging memcpys must make the exchange faster.
  EXPECT_LT(std::get<0>(zero), std::get<0>(copied));
}

TEST(ZeroCopy, DaemonRelaySkipsBothStagingHops) {
  auto run = [](bool zero_copy) {
    mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                    tcp::Sysctl::tuned());
    auto [sa, sb] = bed.socket_pair("relay");
    mp::RelayOptions opt;
    opt.window = 4;
    opt.zero_copy = zero_copy;
    mp::RelayChannel relay(bed.node_a, bed.node_b, std::move(sa),
                           std::move(sb), opt);
    sim::SimTime done = 0;
    bed.sim.spawn(
        [](mp::RelayChannel& r) -> sim::Task<void> {
          co_await r.send(256 << 10);
        }(relay),
        "sender");
    bed.sim.spawn(
        [](mp::RelayChannel& r, sim::Simulator& s,
           sim::SimTime& out) -> sim::Task<void> {
          co_await r.recv(256 << 10);
          out = s.now();
        }(relay, bed.sim, done),
        "receiver");
    bed.sim.run();
    return std::tuple(done, relay.fragments_relayed(),
                      relay.zero_copy_fragments());
  };
  const auto copied = run(false);
  const auto zero = run(true);
  ASSERT_GT(std::get<0>(copied), 0u);
  ASSERT_GT(std::get<0>(zero), 0u);
  EXPECT_EQ(std::get<2>(copied), 0u);
  // Every fragment of the zero-copy route is delivered by reference.
  EXPECT_EQ(std::get<2>(zero), std::get<1>(zero));
  EXPECT_GT(std::get<1>(zero), 0u);
  // Two skipped staging copies per fragment must show up in the time.
  EXPECT_LT(std::get<0>(zero), std::get<0>(copied));
}

// ---- Zero heap allocations per frame in steady state -----------------------

TEST(ZeroAlloc, SteadyStatePacketPathNeverTouchesTheHeap) {
  sim::ScopedScheduler sched(sim::SchedulerKind::kCalendar);
  sim::ScopedPacketPath packets(sim::PacketPathKind::kArena);
  sim::Simulator s;
  hw::Cluster c(s);
  hw::Node& a = c.add_node(presets::pentium4_pc());
  hw::Node& b = c.add_node(presets::pentium4_pc());
  auto link = c.connect(a, b, presets::netgear_ga620(),
                        presets::back_to_back());
  std::uint64_t delivered = 0;
  s.spawn_daemon(
      [](hw::PacketPipe& pipe, std::uint64_t& n) -> sim::Task<void> {
        for (;;) {
          (void)co_await pipe.delivered().pop();
          ++n;
        }
      }(link.forward, delivered),
      "sink");
  // Paced injection: the 50 us gap comfortably exceeds the ~13 us
  // service time of a 1538-byte frame on gigabit, so queue depths (and
  // with them ring, pool and slab sizes) stay at their warmed-up values.
  s.spawn_daemon(
      [](sim::Simulator& s, hw::PacketPipe& pipe) -> sim::Task<void> {
        for (std::uint64_t i = 0;; ++i) {
          hw::Packet p;
          p.dma_bytes = 1500;
          p.wire_bytes = 1538;
          p.desc = s.packet_arena().make<std::uint64_t>(i);
          p.fire_drop = false;
          pipe.inject(std::move(p));
          co_await s.delay(microseconds(50.0));
        }
      }(s, link.forward),
      "source");

  // Warmup: grow arena slabs, ring deques, event-node slabs, coroutine
  // frame pools and the batch vector pool to steady-state size.
  s.run_until(milliseconds(20.0));
  const std::uint64_t warmed = delivered;
  ASSERT_GT(warmed, 100u);

  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  s.run_until(milliseconds(100.0));
  const std::uint64_t allocs_after =
      g_heap_allocs.load(std::memory_order_relaxed);

  ASSERT_GT(delivered, warmed + 1000u);
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state frames hit the heap " << (allocs_after - allocs_before)
      << " times across " << (delivered - warmed) << " deliveries";
  EXPECT_EQ(s.packet_arena().slab_count(), 1u);  // bounded in-flight set
}

}  // namespace
}  // namespace pp
