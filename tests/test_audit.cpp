// Tests for the delivery-oracle and conservation-audit layer (src/audit):
// the ledger unit semantics (every violation kind, every run outcome),
// the audited chaos scenarios (null plans balance exactly, crash/restart
// recovery stays violation-free, permanent crashes close the ledger as
// failed-by-decision), the injected-bug acceptance pipeline (a GM bed
// with its epoch fence deliberately disabled must be caught by the
// oracle and ddmin-minimized to the crash rule), and the observe-only
// contract: audit-on runs are bit-identical to audit-off runs in
// canonical sweep JSON and full Chrome-JSON traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "chaos/chaos.h"
#include "faults/config.h"
#include "faults/minimize.h"
#include "faults/plan.h"
#include "faults/plan_io.h"
#include "gmsim/gm.h"
#include "mp/adapters.h"
#include "mp/gm_mpi.h"
#include "mp/mpich.h"
#include "mp/testbed.h"
#include "netpipe/runner.h"
#include "simcore/tracing.h"
#include "simhw/cluster.h"
#include "simhw/presets.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"
#include "tcpsim/tuning.h"

namespace pp {
namespace {

namespace presets = hw::presets;

// ---- Ledger unit semantics -------------------------------------------------

TEST(AuditLedger, CleanRoundTripBalancesExactly) {
  audit::Auditor aud(7);
  const std::uint32_t s = aud.register_stream("a->b");
  EXPECT_GE(s, 1u);
  std::vector<audit::MsgTag> tags;
  for (std::uint64_t bytes : {64u, 128u, 256u}) {
    tags.push_back(aud.on_inject(s, bytes));
  }
  EXPECT_EQ(tags[0].seq, 0u);
  EXPECT_EQ(tags[1].seq, 1u);
  EXPECT_EQ(tags[2].seq, 2u);
  aud.on_deliver(tags[0], 64);
  aud.on_deliver(tags[1], 128);
  aud.on_deliver(tags[2], 256);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  EXPECT_EQ(sum.streams, 1u);
  EXPECT_EQ(sum.injected, 3u);
  EXPECT_EQ(sum.injected_bytes, 64u + 128u + 256u);
  EXPECT_EQ(sum.delivered, 3u);
  EXPECT_EQ(sum.unaccounted, 0u);
  EXPECT_EQ(sum.violations, 0u);
  EXPECT_FALSE(sum.has_violations());
  EXPECT_TRUE(audit::report_text(sum).empty());
}

TEST(AuditLedger, ChecksumMismatchIsReported) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  audit::MsgTag tag = aud.on_inject(s, 100);
  tag.check ^= 1;  // a receiver consuming a different payload identity
  aud.on_deliver(tag, 100);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  ASSERT_EQ(sum.reports.size(), 1u);
  EXPECT_EQ(sum.reports[0].kind, audit::ViolationKind::kChecksumMismatch);
  EXPECT_EQ(sum.reports[0].actual, tag.check);
}

TEST(AuditLedger, SizeMismatchIsReported) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  const audit::MsgTag tag = aud.on_inject(s, 100);
  aud.on_deliver(tag, 90);  // short delivery
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  ASSERT_EQ(sum.reports.size(), 1u);
  EXPECT_EQ(sum.reports[0].kind, audit::ViolationKind::kSizeMismatch);
  EXPECT_EQ(sum.reports[0].expected, 100u);
  EXPECT_EQ(sum.reports[0].actual, 90u);
}

TEST(AuditLedger, DuplicateDeliveryIsReported) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  const audit::MsgTag tag = aud.on_inject(s, 100);
  aud.on_deliver(tag, 100);
  aud.on_deliver(tag, 100);  // consumed twice
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  ASSERT_EQ(sum.reports.size(), 1u);
  EXPECT_EQ(sum.reports[0].kind, audit::ViolationKind::kDuplicateDelivery);
  // The duplicate does not inflate the delivered count.
  EXPECT_EQ(sum.delivered, 1u);
}

TEST(AuditLedger, OutOfOrderConsumptionIsAFifoViolation) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  const audit::MsgTag t0 = aud.on_inject(s, 10);
  const audit::MsgTag t1 = aud.on_inject(s, 20);
  aud.on_deliver(t1, 20);  // advances the watermark past seq 0
  aud.on_deliver(t0, 10);  // behind the watermark: out of order
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  ASSERT_EQ(sum.reports.size(), 1u);
  EXPECT_EQ(sum.reports[0].kind, audit::ViolationKind::kFifoViolation);
  EXPECT_EQ(sum.reports[0].seq, 0u);
  // Both messages were still consumed exactly once.
  EXPECT_EQ(sum.delivered, 2u);
  EXPECT_EQ(sum.unaccounted, 0u);
}

TEST(AuditLedger, CompletionAfterTeardownIsReported) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  const audit::MsgTag tag = aud.on_inject(s, 100);
  aud.on_deliver(tag, 100, /*after_teardown=*/true);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  ASSERT_EQ(sum.reports.size(), 1u);
  EXPECT_EQ(sum.reports[0].kind,
            audit::ViolationKind::kCompletionAfterTeardown);
}

TEST(AuditLedger, OutstandingMessagesOfACompletedRunAreUnaccounted) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  const audit::MsgTag t0 = aud.on_inject(s, 10);
  (void)aud.on_inject(s, 999);  // never delivered
  aud.on_deliver(t0, 10);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  EXPECT_EQ(sum.unaccounted, 1u);
  ASSERT_EQ(sum.reports.size(), 1u);
  EXPECT_EQ(sum.reports[0].kind, audit::ViolationKind::kUnaccounted);
  EXPECT_EQ(sum.reports[0].expected, 999u);  // the lost byte count
}

TEST(AuditLedger, FailedRunClosesOutstandingAsFailedByDecision) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  const audit::MsgTag t0 = aud.on_inject(s, 10);
  (void)aud.on_inject(s, 20);  // in flight when the stack gave up
  aud.on_deliver(t0, 10);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kFailed);
  EXPECT_EQ(sum.outcome, audit::RunOutcome::kFailed);
  EXPECT_EQ(sum.failed_by_decision, 1u);
  EXPECT_EQ(sum.unaccounted, 0u);
  EXPECT_EQ(sum.violations, 0u);
  // The ledger identity: injected == delivered + failed_by_decision.
  EXPECT_EQ(sum.injected, sum.delivered + sum.failed_by_decision);
}

TEST(AuditLedger, AbortedRunLeavesConservationIndeterminate) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  (void)aud.on_inject(s, 10);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kAborted);
  EXPECT_EQ(sum.outcome, audit::RunOutcome::kAborted);
  EXPECT_EQ(sum.unaccounted, 0u);
  EXPECT_EQ(sum.failed_by_decision, 0u);
  EXPECT_EQ(sum.violations, 0u);
}

TEST(AuditLedger, StaleEpochAndCorruptFragmentsAreReported) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("gm.a");
  const audit::MsgTag tag = aud.on_inject(s, 100);
  // A fragment stamped with epoch 1 accepted by a receiver on epoch 2,
  // and corrupted to boot: two distinct invariant breaks.
  aud.on_accept_fragment(tag, /*frag_epoch=*/1, /*rx_epoch=*/2,
                         /*corrupted=*/true);
  aud.on_deliver(tag, 100);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  ASSERT_EQ(sum.reports.size(), 2u);
  EXPECT_EQ(sum.reports[0].kind, audit::ViolationKind::kCorruptAccepted);
  EXPECT_EQ(sum.reports[1].kind, audit::ViolationKind::kStaleEpochDelivery);
  EXPECT_EQ(sum.reports[1].expected, 2u);
  EXPECT_EQ(sum.reports[1].actual, 1u);
}

TEST(AuditLedger, TcpContiguityFlagsInEpochGapsOnly) {
  audit::Auditor aud;
  aud.on_tcp_accept("sock-b", /*epoch=*/1, /*seq=*/0, /*payload=*/100);
  aud.on_tcp_accept("sock-b", 1, 100, 50);  // contiguous
  aud.on_tcp_accept("sock-b", 1, 200, 10);  // gap: 150 expected
  // A new connection epoch legitimately resynchronizes the stream.
  aud.on_tcp_accept("sock-b", 2, 0, 10);
  aud.on_tcp_accept("sock-b", 2, 10, 10);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  ASSERT_EQ(sum.reports.size(), 1u);
  EXPECT_EQ(sum.reports[0].kind, audit::ViolationKind::kSequenceRegression);
  EXPECT_EQ(sum.reports[0].expected, 150u);
  EXPECT_EQ(sum.reports[0].actual, 200u);
  EXPECT_EQ(sum.reports[0].detail, "sock-b");
}

TEST(AuditLedger, TcpTokenRoundTripBalancesTheLedger) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("tcp a->b");
  const audit::MsgTag t0 = aud.on_inject(s, 4096);
  const audit::MsgTag t1 = aud.on_inject(s, 8192);
  aud.on_tcp_token(audit::Auditor::pack_token(t0));
  aud.on_tcp_token(audit::Auditor::pack_token(t1));
  // Replaying a token is a duplicate consumption like any other.
  aud.on_tcp_token(audit::Auditor::pack_token(t1));
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  EXPECT_EQ(sum.delivered, 2u);
  EXPECT_EQ(sum.unaccounted, 0u);
  ASSERT_EQ(sum.reports.size(), 1u);
  EXPECT_EQ(sum.reports[0].kind, audit::ViolationKind::kDuplicateDelivery);
}

TEST(AuditLedger, UntaggedMessagesAreInvisible) {
  audit::Auditor aud;
  // Control messages (RTS/CTS/acks) carry the default tag: stream 0.
  const audit::MsgTag none = aud.on_inject(0, 100);
  EXPECT_EQ(none.stream, 0u);
  aud.on_deliver(audit::MsgTag{}, 55);
  aud.on_accept_fragment(audit::MsgTag{}, 1, 2, true);
  aud.on_tcp_token(0);
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  EXPECT_EQ(sum.injected, 0u);
  EXPECT_EQ(sum.delivered, 0u);
  EXPECT_EQ(sum.violations, 0u);
}

TEST(AuditLedger, ReportsAreCappedSortedAndEchoThePlan) {
  audit::Auditor aud;
  aud.set_fault_plan("plan pp.faultplan/1\ncrash node=1 at=1000\n");
  const std::uint32_t s = aud.register_stream("a->b");
  std::vector<audit::MsgTag> tags;
  for (int i = 0; i < 100; ++i) tags.push_back(aud.on_inject(s, 10));
  for (const audit::MsgTag& t : tags) aud.on_deliver(t, 10);
  // 100 duplicates, delivered in reverse so the raw report order is
  // descending — finalize must sort them back by seq.
  for (auto it = tags.rbegin(); it != tags.rend(); ++it) {
    aud.on_deliver(*it, 10);
  }
  const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
  EXPECT_EQ(sum.violations, 100u);
  ASSERT_EQ(sum.reports.size(), audit::Auditor::kMaxReports);
  for (std::size_t i = 1; i < sum.reports.size(); ++i) {
    EXPECT_LT(sum.reports[i - 1].seq, sum.reports[i].seq);
  }
  const std::string text = audit::report_text(sum);
  EXPECT_NE(text.find("duplicate-delivery"), std::string::npos);
  EXPECT_NE(text.find("more violation(s)"), std::string::npos);
  EXPECT_NE(text.find("fault plan:"), std::string::npos);
  EXPECT_NE(text.find("crash node=1"), std::string::npos);
}

TEST(AuditLedger, FinalizeIsIdempotent) {
  audit::Auditor aud;
  const std::uint32_t s = aud.register_stream("a->b");
  (void)aud.on_inject(s, 10);
  const audit::Summary& first = aud.finalize(audit::RunOutcome::kFailed);
  EXPECT_EQ(first.outcome, audit::RunOutcome::kFailed);
  // A second finalize (even with a different outcome) is a no-op.
  const audit::Summary& second = aud.finalize(audit::RunOutcome::kCompleted);
  EXPECT_EQ(second.outcome, audit::RunOutcome::kFailed);
  EXPECT_EQ(second.failed_by_decision, 1u);
}

TEST(AuditLedger, ChecksumsAreSeeded) {
  audit::Auditor a(1), b(2);
  const std::uint32_t sa = a.register_stream("x");
  const std::uint32_t sb = b.register_stream("x");
  // Same stream, seq and size — different run seed, different identity.
  EXPECT_NE(a.on_inject(sa, 100).check, b.on_inject(sb, 100).check);
}

// ---- Audited chaos scenarios -----------------------------------------------

TEST(AuditChaos, NullPlansBalanceExactlyOnEveryScenario) {
  for (chaos::Scenario sc : chaos::kScenarios) {
    audit::Summary sum;
    const chaos::Verdict v =
        chaos::run_verdict_audited(sc, faults::FaultPlan{}, /*shards=*/1,
                                   &sum);
    EXPECT_EQ(v, chaos::Verdict::kClean) << chaos::to_string(sc);
    EXPECT_EQ(sum.outcome, audit::RunOutcome::kCompleted);
    EXPECT_GT(sum.streams, 0u) << chaos::to_string(sc);
    EXPECT_GT(sum.injected, 0u) << chaos::to_string(sc);
    EXPECT_GT(sum.injected_bytes, 0u);
    EXPECT_EQ(sum.delivered, sum.injected) << chaos::to_string(sc);
    EXPECT_EQ(sum.unaccounted, 0u);
    EXPECT_EQ(sum.violations, 0u) << chaos::to_string(sc) << "\n"
                                  << audit::report_text(sum);
  }
}

TEST(AuditChaos, CrashRestartRecoveryIsViolationFree) {
  faults::HostCrashConfig cc;
  cc.at = sim::milliseconds(1.0);
  cc.downtime = sim::milliseconds(2.0);
  faults::FaultPlan plan;
  plan.add_crash(1, cc);
  for (chaos::Scenario sc : chaos::kScenarios) {
    audit::Summary sum;
    const chaos::Verdict v =
        chaos::run_verdict_audited(sc, plan, /*shards=*/1, &sum);
    EXPECT_TRUE(chaos::acceptable(v))
        << chaos::to_string(sc) << " verdict=" << chaos::to_string(v);
    EXPECT_EQ(sum.violations, 0u) << chaos::to_string(sc) << "\n"
                                  << audit::report_text(sum);
    if (sum.outcome != audit::RunOutcome::kAborted) {
      EXPECT_EQ(sum.injected, sum.delivered + sum.failed_by_decision)
          << chaos::to_string(sc);
    }
  }
}

TEST(AuditChaos, PermanentCrashClosesTheLedgerAsFailedByDecision) {
  faults::HostCrashConfig cc;
  cc.at = sim::microseconds(500.0);
  cc.mode = faults::HostCrashConfig::Mode::kPermanent;
  faults::FaultPlan plan;
  plan.add_crash(1, cc);
  audit::Summary sum;
  const chaos::Verdict v = chaos::run_verdict_audited(
      chaos::Scenario::kGm, plan, /*shards=*/1, &sum);
  EXPECT_EQ(v, chaos::Verdict::kFailed);
  EXPECT_EQ(sum.outcome, audit::RunOutcome::kFailed);
  EXPECT_GT(sum.failed_by_decision, 0u);
  EXPECT_EQ(sum.violations, 0u) << audit::report_text(sum);
  EXPECT_EQ(sum.injected, sum.delivered + sum.failed_by_decision);
}

TEST(AuditChaos, AuditedVerdictsMatchUnauditedOnes) {
  // Observe-only at the verdict level: over a spread of random plans the
  // audited verdict equals the unaudited one (no violations to upgrade).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const faults::FaultPlan plan = chaos::random_plan(seed);
    for (chaos::Scenario sc : chaos::kScenarios) {
      audit::Summary sum;
      const chaos::Verdict plain = chaos::run_verdict(sc, plan);
      const chaos::Verdict audited =
          chaos::run_verdict_audited(sc, plan, /*shards=*/1, &sum);
      EXPECT_EQ(plain, audited)
          << chaos::to_string(sc) << " seed=" << seed;
      EXPECT_EQ(sum.violations, 0u)
          << chaos::to_string(sc) << " seed=" << seed << "\n"
          << audit::report_text(sum);
    }
  }
}

// ---- The injected bug: a disabled epoch fence ------------------------------

// A GM bed whose receive-side power-epoch fence is optionally disabled
// (GmConfig::unsafe_skip_epoch_fence — the deliberate protocol bug), on
// the crash timing where a watchdog-retry fragment train straddles the
// receiver's restart: the trailing fragments arrive stamped with the
// dead epoch. The intact fence rejects them (stale_epoch_drops); the
// broken bed accepts them, which only the oracle can see.
struct BuggyGmOutcome {
  audit::Summary summary;
  std::uint64_t stale_drops = 0;
  bool completed = false;
};

BuggyGmOutcome run_buggy_gm(const faults::FaultPlan& plan, bool skip_fence) {
  BuggyGmOutcome out;
  audit::Auditor aud(faults::derive_seed(plan.seed, "audit"));
  aud.set_fault_plan(faults::to_text(plan));
  sim::Simulator s;
  s.set_auditor(&aud);
  hw::Cluster c(s);
  auto& a = c.add_node(presets::pentium4_pc());
  auto& b = c.add_node(presets::pentium4_pc());
  gm::GmConfig gc;
  gc.delivery_timeout = sim::microseconds(500.0);
  gc.max_delivery_attempts = 10;
  gc.unsafe_skip_epoch_fence = skip_fence;
  gm::GmFabric fab(c, a, b, presets::myrinet_pci64a(), presets::switched(),
                   gc);
  faults::apply(plan, c);
  mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
  try {
    netpipe::RunResult r =
        netpipe::run_netpipe(s, ta, tb, chaos::chaos_run_options());
    if (r.audit) out.summary = *r.audit;
    out.completed = true;
  } catch (const sim::ProtocolFailure&) {
    out.summary = aud.finalize(audit::RunOutcome::kFailed);
  }
  out.stale_drops = fab.port_b().stale_epoch_drops();
  return out;
}

// Receiver crash at 500 us with a 510 us downtime: the sender's delivery
// watchdog (500 us) fires during the blackout and its retry is on the
// wire when the node comes back — the stale-fragment race the fence
// exists for.
faults::FaultPlan fence_race_plan() {
  faults::FaultPlan plan;
  plan.seed = 11;
  faults::HostCrashConfig cc;
  cc.at = sim::microseconds(500.0);
  cc.downtime = sim::microseconds(510.0);
  plan.add_crash(1, cc);
  return plan;
}

TEST(AuditOracle, IntactFenceDropsTheStaleFragmentCleanly) {
  const BuggyGmOutcome got = run_buggy_gm(fence_race_plan(), false);
  // Negative control: the race fires (the fence really had work to do)
  // and the oracle stays silent.
  EXPECT_TRUE(got.completed);
  EXPECT_GT(got.stale_drops, 0u);
  EXPECT_EQ(got.summary.violations, 0u) << audit::report_text(got.summary);
  EXPECT_EQ(got.summary.injected,
            got.summary.delivered + got.summary.failed_by_decision);
}

TEST(AuditOracle, SkippedFenceIsCaughtAsStaleEpochDelivery) {
  const BuggyGmOutcome got = run_buggy_gm(fence_race_plan(), true);
  // The counters look fine — the run even completes — but the oracle
  // sees the stale acceptance.
  ASSERT_TRUE(got.summary.has_violations());
  bool stale = false;
  for (const audit::Violation& v : got.summary.reports) {
    if (v.kind == audit::ViolationKind::kStaleEpochDelivery) stale = true;
  }
  EXPECT_TRUE(stale) << audit::report_text(got.summary);
  // The report is structured and echoes the fault plan for replay.
  const std::string text = audit::report_text(got.summary);
  EXPECT_NE(text.find("stale-epoch-delivery"), std::string::npos);
  EXPECT_NE(text.find("fault plan:"), std::string::npos);
  EXPECT_NE(text.find("crash"), std::string::npos);
}

TEST(AuditOracle, ViolatingPlanMinimizesToTheCrashRule) {
  // The fence-race crash buried in noise rules (they match no pipe of a
  // GM bed, or fire long after the run ends — inert by construction, the
  // shape ddmin exists to strip).
  faults::FaultPlan plan = fence_race_plan();
  faults::LinkFaultConfig loss;
  loss.loss = 0.02;
  plan.add_link("ga620", loss);  // ethernet pipes: absent from a GM bed
  faults::LinkFaultConfig dup;
  dup.duplicate = 0.05;
  plan.add_link("ga620", dup);
  faults::NicFaultConfig nf;
  nf.ring_slots = 8;
  plan.add_nic("ga620", nf);

  const auto violates = [](const faults::FaultPlan& candidate) {
    return run_buggy_gm(candidate, true).summary.has_violations();
  };
  ASSERT_TRUE(violates(plan));
  const faults::MinimizeResult r = faults::minimize(plan, violates);
  EXPECT_EQ(r.final_rules, 1u);
  ASSERT_EQ(r.plan.crashes.size(), 1u);
  // The 1-minimal reproducer round-trips through pp.faultplan/1, ready
  // for `minimize_plan --target-verdict error` / `netpipe_cli --audit`.
  const faults::FaultPlan reread = faults::from_text(faults::to_text(r.plan));
  EXPECT_EQ(faults::to_text(reread), faults::to_text(r.plan));
}

// ---- The observe-only contract ---------------------------------------------

// Canonical sweep JSON (timing omitted) of a few chaos plans across every
// scenario, with and without the oracle attached, across the shard x
// packet-path execution matrix: all eight reports must be byte-identical.
TEST(AuditDifferential, AuditedRunsAreBitIdenticalInCanonicalJson) {
  const auto canonical = [](bool audited, int shards,
                            sim::PacketPathKind path) {
    sweep::SweepSpec spec;
    spec.name = "audit-diff";
    std::vector<std::shared_ptr<audit::Summary>> sinks;
    for (std::uint64_t seed : {0ull, 2ull, 5ull}) {
      // Seed 0 is the null plan (no faults armed); the others are
      // ordinary random chaos plans.
      const faults::FaultPlan plan =
          seed == 0 ? faults::FaultPlan{} : chaos::random_plan(seed);
      for (chaos::Scenario sc : chaos::kScenarios) {
        auto sink =
            audited ? std::make_shared<audit::Summary>() : nullptr;
        spec.jobs.push_back(chaos::scenario_job(
            sc,
            std::string(chaos::to_string(sc)) + " seed=" +
                std::to_string(seed),
            plan, sink));
        sinks.push_back(std::move(sink));
      }
    }
    sweep::SweepOptions opt = chaos::chaos_sweep_options();
    opt.shards = shards;
    opt.packet_path = path;
    const sweep::SweepResult sr = run_sweep(spec, opt);
    for (const auto& sink : sinks) {
      if (sink) {
        EXPECT_EQ(sink->violations, 0u) << audit::report_text(*sink);
      }
    }
    // The audit block is deliberately NOT stamped into the jobs: the
    // comparison is about the measured simulation, which the oracle must
    // not have perturbed.
    sweep::JsonReporter::Options jo;
    jo.include_timing = false;
    return sweep::JsonReporter::to_json({sr}, jo);
  };

  std::string reference;
  for (int shards : {1, 2}) {
    for (sim::PacketPathKind path :
         {sim::PacketPathKind::kArena, sim::PacketPathKind::kLegacyHeap}) {
      for (bool audited : {false, true}) {
        const std::string j = canonical(audited, shards, path);
        ASSERT_FALSE(j.empty());
        if (reference.empty()) {
          reference = j;
        } else {
          EXPECT_EQ(j, reference)
              << "audited=" << audited << " shards=" << shards
              << " differs from the unaudited serial reference";
        }
      }
    }
  }
}

// Stronger than counters: the full Chrome-JSON trace of a faulted MPICH
// transfer (stream-library tagging path) must not move by a single event
// when the oracle is attached.
TEST(AuditDifferential, TraceTimelinesMatchEventForEvent) {
  const auto traced_run = [](bool audited) {
    audit::Auditor aud(3);
    mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                    tcp::Sysctl::tuned());
    if (audited) bed.sim.set_auditor(&aud);
    faults::LinkFaultConfig loss;
    loss.loss = 0.01;
    faults::FaultPlan plan;
    plan.seed = 3;
    plan.add_link("", loss);
    faults::apply(plan, bed.cluster);
    sim::TraceRecorder rec;
    bed.sim.set_tracer(&rec);
    mp::MpichOptions mo;
    mo.p4_sockbufsize = 32 << 10;
    auto pair = mp::Mpich::create_pair(bed, mo);
    auto shared = std::make_shared<decltype(pair)>(std::move(pair));
    mp::LibraryTransport ta(*shared->first, 1), tb(*shared->second, 0);
    netpipe::RunOptions opts = chaos::chaos_run_options();
    netpipe::run_netpipe(bed.sim, ta, tb, opts);
    if (audited) {
      const audit::Summary& sum = aud.finalize(audit::RunOutcome::kCompleted);
      EXPECT_GT(sum.injected, 0u);
      EXPECT_EQ(sum.violations, 0u) << audit::report_text(sum);
    }
    return rec.to_chrome_json();
  };
  const std::string off = traced_run(false);
  const std::string on = traced_run(true);
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, on);
}

// ---- pp.sweep/6 audit block ------------------------------------------------

TEST(AuditJson, PerJobAuditBlockLandsInSweepJson) {
  auto sink = std::make_shared<audit::Summary>();
  sweep::SweepSpec spec;
  spec.name = "audited";
  spec.jobs.push_back(chaos::scenario_job(chaos::Scenario::kTcp, "tcp null",
                                          faults::FaultPlan{}, sink));
  sweep::SweepResult sr = run_sweep(spec, chaos::chaos_sweep_options());
  ASSERT_EQ(sr.jobs.size(), 1u);
  ASSERT_TRUE(sr.jobs[0].ok) << sr.jobs[0].error;
  sr.jobs[0].audit = sink;
  const std::string j = sweep::JsonReporter::to_json({sr});
  EXPECT_NE(j.find("\"schema\":\"pp.sweep/6\""), std::string::npos);
  EXPECT_NE(j.find("\"audit\":{\"outcome\":\"completed\""),
            std::string::npos);
  EXPECT_NE(j.find("\"violations\":0"), std::string::npos);
  // Clean runs carry no violation_reports array.
  EXPECT_EQ(j.find("\"violation_reports\""), std::string::npos);
  // Unaudited jobs omit the block entirely.
  sr.jobs[0].audit = nullptr;
  const std::string plain = sweep::JsonReporter::to_json({sr});
  EXPECT_EQ(plain.find("\"audit\""), std::string::npos);
}

}  // namespace
}  // namespace pp
