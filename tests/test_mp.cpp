// Unit and behaviour tests for the message-passing library models.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mp/lam.h"
#include "mp/mpich.h"
#include "mp/mpipro.h"
#include "mp/mplite.h"
#include "mp/pvm.h"
#include "mp/tcgmsg.h"
#include "mp/testbed.h"
#include "simhw/presets.h"

namespace pp::mp {
namespace {

namespace presets = hw::presets;

PairBed make_bed() {
  return PairBed(presets::pentium4_pc(), presets::netgear_ga620(),
                 tcp::Sysctl::tuned());
}

/// Ping-pongs `bytes` once and returns the virtual time taken.
template <typename L>
sim::SimTime pingpong_once(PairBed& bed, L& a, L& b, std::uint64_t bytes,
                           int reps = 1) {
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](L& l, std::uint64_t n, int reps, sim::Simulator& s,
         sim::SimTime& out) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await l.send(1, n, 1);
          co_await l.recv(1, n, 1);
        }
        out = s.now();
      }(a, bytes, reps, bed.sim, done),
      "ping");
  bed.sim.spawn(
      [](L& l, std::uint64_t n, int reps) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await l.recv(0, n, 1);
          co_await l.send(0, n, 1);
        }
      }(b, bytes, reps),
      "pong");
  bed.sim.run();
  return done;
}

TEST(Matching, OutOfOrderTagsViaUnexpectedQueue) {
  auto bed = make_bed();
  auto [a, b] = MpLite::create_pair(bed);
  std::vector<int> order;
  bed.sim.spawn(
      [](Library& l) -> sim::Task<void> {
        co_await l.send(1, 1000, /*tag=*/2);
        co_await l.send(1, 500, /*tag=*/1);
      }(*a),
      "sender");
  bed.sim.spawn(
      [](Library& l, std::vector<int>& ord) -> sim::Task<void> {
        co_await l.recv(0, 500, /*tag=*/1);  // posted out of arrival order
        ord.push_back(1);
        co_await l.recv(0, 1000, /*tag=*/2);
        ord.push_back(2);
      }(*b, order),
      "receiver");
  bed.sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Matching, UnexpectedMessagesAreStaged) {
  auto bed = make_bed();
  auto [a, b] = MpLite::create_pair(bed);
  bed.sim.spawn(
      [](Library& l) -> sim::Task<void> { co_await l.send(1, 4096, 5); }(*a),
      "sender");
  bed.sim.spawn(
      [](PairBed& bed, Library& l) -> sim::Task<void> {
        // Let the message arrive before any receive is posted.
        co_await bed.sim.delay(sim::milliseconds(5));
        co_await l.recv(0, 4096, 5);
      }(bed, *b),
      "receiver");
  bed.sim.run();
  EXPECT_EQ(b->staged_bytes(), 4096u);
}

TEST(Matching, PrePostedReceivesAreZeroCopyForDirectLibraries) {
  auto bed = make_bed();
  auto [a, b] = MpLite::create_pair(bed);
  pingpong_once(bed, *a, *b, 100000);
  EXPECT_EQ(b->staged_bytes(), 0u);
}

TEST(Mpich, AlwaysStagesReceives) {
  auto bed = make_bed();
  auto [a, b] = Mpich::create_pair(bed, {});
  pingpong_once(bed, *a, *b, 100000);
  EXPECT_EQ(b->staged_bytes(), 100000u);
  EXPECT_EQ(a->staged_bytes(), 100000u);
}

TEST(Mpich, RendezvousOnlyAboveCutoff) {
  auto bed = make_bed();
  MpichOptions opt;
  opt.p4_sockbufsize = 256 << 10;
  auto [a, b] = Mpich::create_pair(bed, opt);
  pingpong_once(bed, *a, *b, 100 << 10);
  EXPECT_EQ(a->rendezvous_count(), 0u);
  auto bed2 = make_bed();
  auto [c, d] = Mpich::create_pair(bed2, opt);
  pingpong_once(bed2, *c, *d, 200 << 10);
  EXPECT_EQ(c->rendezvous_count(), 1u);
  EXPECT_EQ(d->rendezvous_count(), 1u);
}

TEST(Mpich, RendezvousHandshakeCostsTwoLatencies) {
  // Just below vs just above the cutoff: the step must be roughly two
  // one-way latencies beyond the extra byte cost.
  MpichOptions opt;
  opt.p4_sockbufsize = 256 << 10;
  auto bed1 = make_bed();
  auto [a, b] = Mpich::create_pair(bed1, opt);
  const sim::SimTime below = pingpong_once(bed1, *a, *b, (128 << 10) - 64);
  auto bed2 = make_bed();
  auto [c, d] = Mpich::create_pair(bed2, opt);
  const sim::SimTime above = pingpong_once(bed2, *c, *d, 128 << 10);
  EXPECT_GT(above - below, sim::microseconds(100));  // ~2 x 120 us each way
  EXPECT_LT(above - below, sim::microseconds(800));
}

TEST(Mpich, P4SockBufSizeIsAppliedClamped) {
  auto bed = make_bed();
  MpichOptions opt;
  opt.p4_sockbufsize = 64 << 20;  // beyond the sysctl cap
  auto [a, b] = Mpich::create_pair(bed, opt);
  (void)a;
  (void)b;  // construction must not trip the clamp assert
  pingpong_once(bed, *a, *b, 1000);
  SUCCEED();
}

TEST(Tcgmsg, SendBlocksUntilReceiveCompletes) {
  auto bed = make_bed();
  auto [a, b] = Tcgmsg::create_pair(bed, {});
  sim::SimTime send_done = 0;
  sim::SimTime recv_called = 0;
  bed.sim.spawn(
      [](Library& l, sim::Simulator& s, sim::SimTime& out) -> sim::Task<void> {
        co_await l.send(1, 1000, 1);
        out = s.now();
      }(*a, bed.sim, send_done),
      "snd");
  bed.sim.spawn(
      [](PairBed& bed, Library& l, sim::SimTime& called) -> sim::Task<void> {
        co_await bed.sim.delay(sim::milliseconds(10));
        called = bed.sim.now();
        co_await l.recv(0, 1000, 1);
      }(bed, *b, recv_called),
      "rcv");
  bed.sim.run();
  // SND cannot complete before RCV was even called.
  EXPECT_GT(send_done, recv_called);
}

TEST(Lam, ModeOrderingMatchesPaper) {
  auto throughput = [](LamMode mode) {
    PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                tcp::Sysctl::tuned());
    LamOptions o;
    o.mode = mode;
    auto [a, b] = Lam::create_pair(bed, o);
    const std::uint64_t n = 1 << 20;
    const sim::SimTime t = pingpong_once(bed, *a, *b, n);
    return static_cast<double>(2 * n) * 8.0 / sim::to_seconds(t) / 1e6;
  };
  const double lamd = throughput(LamMode::kLamd);
  const double c2c = throughput(LamMode::kC2c);
  const double c2co = throughput(LamMode::kC2cO);
  EXPECT_LT(lamd, c2c);
  EXPECT_LT(c2c, c2co);
}

TEST(Pvm, OptimizationLadderOrdering) {
  auto throughput = [](PvmRoute route, PvmEncoding enc) {
    PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                tcp::Sysctl::tuned());
    PvmOptions o;
    o.route = route;
    o.encoding = enc;
    auto [a, b] = Pvm::create_pair(bed, o);
    const std::uint64_t n = 1 << 20;
    const sim::SimTime t = pingpong_once(bed, *a, *b, n);
    return static_cast<double>(2 * n) * 8.0 / sim::to_seconds(t) / 1e6;
  };
  const double daemon = throughput(PvmRoute::kDaemon, PvmEncoding::kDefault);
  const double direct = throughput(PvmRoute::kDirect, PvmEncoding::kDefault);
  const double raw = throughput(PvmRoute::kDirect, PvmEncoding::kRaw);
  const double inplace =
      throughput(PvmRoute::kDirect, PvmEncoding::kInPlace);
  EXPECT_LT(daemon, direct);       // bypassing the daemons: ~4x in paper
  EXPECT_LE(direct, raw);          // XDR costs something
  EXPECT_LT(raw, inplace);         // skipping the pack copy helps
  EXPECT_GT(direct / daemon, 2.5); // "a 4-fold increase"
}

TEST(Pvm, DaemonRouteMuchSlowerThanDirect) {
  PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
              tcp::Sysctl::tuned());
  auto [a, b] = Pvm::create_pair(bed, {});
  const std::uint64_t n = 256 << 10;
  const sim::SimTime t = pingpong_once(bed, *a, *b, n);
  const double mbps = static_cast<double>(2 * n) * 8.0 /
                      sim::to_seconds(t) / 1e6;
  EXPECT_LT(mbps, 150.0);  // paper: ~90 Mbps
}

TEST(MpiPro, TcpLongMovesTheRendezvousThreshold) {
  auto rendezvous_at = [](std::uint64_t tcp_long, std::uint64_t bytes) {
    PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                tcp::Sysctl::tuned());
    MpiProOptions o;
    o.tcp_long = tcp_long;
    auto [a, b] = MpiPro::create_pair(bed, o);
    pingpong_once(bed, *a, *b, bytes);
    return a->rendezvous_count();
  };
  EXPECT_EQ(rendezvous_at(32 << 10, 48 << 10), 1u);
  EXPECT_EQ(rendezvous_at(128 << 10, 48 << 10), 0u);
}

TEST(Nonblocking, IsendIrecvCompleteAndOverlap) {
  auto bed = make_bed();
  auto [a, b] = MpLite::create_pair(bed);
  bool done_a = false, done_b = false;
  bed.sim.spawn(
      [](Library& l, bool& done) -> sim::Task<void> {
        Request s = l.isend(1, 50000, 3);
        Request r = l.irecv(1, 50000, 4);
        co_await s.wait();
        co_await r.wait();
        done = true;
      }(*a, done_a),
      "a");
  bed.sim.spawn(
      [](Library& l, bool& done) -> sim::Task<void> {
        Request s = l.isend(0, 50000, 4);
        Request r = l.irecv(0, 50000, 3);
        co_await s.wait();
        co_await r.wait();
        done = true;
      }(*b, done_b),
      "b");
  bed.sim.run();
  EXPECT_TRUE(done_a);
  EXPECT_TRUE(done_b);
}

TEST(Progress, IndependentEngineKeepsDataFlowingWhileReceiverComputes) {
  // The paper's §7: a progress engine "will keep data flowing more
  // readily". Send a large message to a rank that is busy computing: a
  // SIGIO/thread-driven receiver keeps draining the TCP buffers, so the
  // *sender* completes long before the receiver ever calls recv; an
  // on-call receiver leaves the stream wedged behind its socket buffer.
  auto send_done_time = [](bool independent) {
    PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                tcp::Sysctl::tuned());
    StreamConfig cfg;
    cfg.name = "probe";
    cfg.progress = independent ? ProgressMode::kIndependent
                               : ProgressMode::kOnCall;
    auto a = std::make_unique<StreamLibrary>(bed.sim, 0, bed.node_a, cfg);
    auto b = std::make_unique<StreamLibrary>(bed.sim, 1, bed.node_b, cfg);
    auto [sa, sb] = bed.socket_pair("probe");
    wire_pair(*a, *b, sa, sb);
    sim::SimTime send_done = 0;
    bed.sim.spawn(
        [](PairBed& bed, Library& l, sim::SimTime& out) -> sim::Task<void> {
          co_await l.send(1, 1 << 20, 1);
          out = bed.sim.now();
        }(bed, *a, send_done),
        "tx");
    bed.sim.spawn(
        [](PairBed& bed, Library& l) -> sim::Task<void> {
          // The receiving application is away from the library for 30 ms
          // (blocked on I/O, say), then finally posts its receive.
          co_await bed.sim.delay(sim::milliseconds(30));
          co_await l.recv(0, 1 << 20, 1);
        }(bed, *b),
        "rx");
    bed.sim.run();
    return send_done;
  };
  const sim::SimTime with_progress = send_done_time(true);
  const sim::SimTime on_call = send_done_time(false);
  // On-call: the sender is wedged until the receiver's compute ends
  // (~30 ms). Independent: it finishes within the raw transfer time.
  EXPECT_LT(with_progress, sim::milliseconds(25));
  EXPECT_GT(on_call, sim::milliseconds(30));
}

TEST(BufferPolicy, MpLiteRaisesBuffersToSysctlMax) {
  tcp::Sysctl small;
  small.rmem_max = 100 << 10;
  small.wmem_max = 100 << 10;
  PairBed bed(presets::pentium4_pc(), presets::trendnet_teg_pcitx(), small);
  auto [a, b] = MpLite::create_pair(bed);
  // Throughput should match raw TCP at 100 kB buffers; a separate bed
  // with a higher cap must run measurably faster on the buffer-starved
  // TrendNet card.
  const std::uint64_t n = 2 << 20;
  const sim::SimTime t_small = pingpong_once(bed, *a, *b, n);
  PairBed bed2(presets::pentium4_pc(), presets::trendnet_teg_pcitx(),
               tcp::Sysctl::tuned());
  auto [c, d] = MpLite::create_pair(bed2);
  const sim::SimTime t_big = pingpong_once(bed2, *c, *d, n);
  EXPECT_LT(t_big, t_small);
}

TEST(Determinism, FullLibraryStackReplays) {
  auto once = [] {
    auto bed = make_bed();
    auto [a, b] = Mpich::create_pair(bed, {});
    return pingpong_once(bed, *a, *b, 300000, 3);
  };
  EXPECT_EQ(once(), once());
}

// Property sweep: every library delivers exact byte counts across
// protocol boundaries (eager/rendezvous, fragment edges).
class LibraryConservation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LibraryConservation, AllLibrariesPingPongExactly) {
  const std::uint64_t n = GetParam();
  {
    auto bed = make_bed();
    auto [a, b] = Mpich::create_pair(bed, {});
    EXPECT_GT(pingpong_once(bed, *a, *b, n), 0);
  }
  {
    auto bed = make_bed();
    auto [a, b] = MpLite::create_pair(bed);
    EXPECT_GT(pingpong_once(bed, *a, *b, n), 0);
  }
  {
    auto bed = make_bed();
    auto [a, b] = Tcgmsg::create_pair(bed, {});
    EXPECT_GT(pingpong_once(bed, *a, *b, n), 0);
  }
  {
    auto bed = make_bed();
    LamOptions o;
    o.mode = LamMode::kLamd;
    auto [a, b] = Lam::create_pair(bed, o);
    EXPECT_GT(pingpong_once(bed, *a, *b, n), 0);
  }
  {
    auto bed = make_bed();
    PvmOptions o;
    auto [a, b] = Pvm::create_pair(bed, o);
    EXPECT_GT(pingpong_once(bed, *a, *b, n), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(ProtocolBoundaries, LibraryConservation,
                         ::testing::Values(1, 64, 4079, 4080, 4081, 8191,
                                           8192, 65535, 65536, 131071,
                                           131072, 131073, 1 << 20));


TEST(MpichChannels, MpLiteChannelPassesRawPerformanceThrough) {
  // Paper §4.4: MPICH on the MP_Lite channel device performs like
  // MP_Lite itself, i.e. without the p4 staging penalty.
  auto throughput = [](MpichChannel channel) {
    auto bed = make_bed();
    MpichOptions o;
    o.p4_sockbufsize = 256 << 10;
    o.channel = channel;
    auto [a, b] = Mpich::create_pair(bed, o);
    const std::uint64_t n = 2 << 20;
    const sim::SimTime t = pingpong_once(bed, *a, *b, n);
    return static_cast<double>(2 * n) * 8.0 / sim::to_seconds(t) / 1e6;
  };
  const double p4 = throughput(MpichChannel::kP4);
  const double lite = throughput(MpichChannel::kMpLiteChannel);
  EXPECT_GT(lite, 1.2 * p4);
}

TEST(TcgmsgOverMpi, AddsSynchronySemanticsWithoutBandwidthLoss) {
  // Paper §4.6: no performance lost vs MPICH alone for large transfers.
  auto throughput = [](bool wrap) {
    auto bed = make_bed();
    MpichOptions o;
    o.p4_sockbufsize = 256 << 10;
    auto [a, b] = Mpich::create_pair(bed, o);
    std::unique_ptr<TcgmsgOverMpi> wa, wb;
    Library *la = a.get(), *lb = b.get();
    if (wrap) {
      wa = std::make_unique<TcgmsgOverMpi>(*a);
      wb = std::make_unique<TcgmsgOverMpi>(*b);
      la = wa.get();
      lb = wb.get();
    }
    const std::uint64_t n = 2 << 20;
    const sim::SimTime t = pingpong_once(bed, *la, *lb, n);
    return static_cast<double>(2 * n) * 8.0 / sim::to_seconds(t) / 1e6;
  };
  const double plain = throughput(false);
  const double wrapped = throughput(true);
  EXPECT_NEAR(wrapped / plain, 1.0, 0.03);
}

TEST(TcgmsgOverMpi, SndStillBlocksUntilRcvCompletes) {
  auto bed = make_bed();
  MpichOptions o;
  o.p4_sockbufsize = 256 << 10;
  auto [a, b] = Mpich::create_pair(bed, o);
  TcgmsgOverMpi wa(*a), wb(*b);
  sim::SimTime send_done = 0, recv_called = 0;
  bed.sim.spawn(
      [](Library& l, sim::Simulator& s, sim::SimTime& out) -> sim::Task<void> {
        co_await l.send(1, 1000, 1);
        out = s.now();
      }(wa, bed.sim, send_done),
      "snd");
  bed.sim.spawn(
      [](PairBed& bed, Library& l, sim::SimTime& called) -> sim::Task<void> {
        co_await bed.sim.delay(sim::milliseconds(8));
        called = bed.sim.now();
        co_await l.recv(0, 1000, 1);
      }(bed, wb, recv_called),
      "rcv");
  bed.sim.run();
  EXPECT_GT(send_done, recv_called);
}


TEST(Heterogeneous, MixedHostPairWorksAndLandsBetweenHomogeneousRates) {
  auto mbps_for = [](const hw::HostConfig& a, const hw::HostConfig& b) {
    PairBed bed(a, b, presets::syskonnect_sk9843(9000),
                tcp::Sysctl::tuned());
    auto [la, lb] = MpLite::create_pair(bed);
    const std::uint64_t n = 2 << 20;
    const sim::SimTime t = pingpong_once(bed, *la, *lb, n);
    return static_cast<double>(2 * n) * 8.0 / sim::to_seconds(t) / 1e6;
  };
  const double p4 = mbps_for(presets::pentium4_pc(), presets::pentium4_pc());
  const double ds20 = mbps_for(presets::compaq_ds20(),
                               presets::compaq_ds20());
  const double mixed = mbps_for(presets::pentium4_pc(),
                                presets::compaq_ds20());
  EXPECT_GT(mixed, 0.8 * std::min(p4, ds20));
  EXPECT_LT(mixed, 1.05 * std::max(p4, ds20));
}

TEST(Heterogeneous, LamConversionModeIsTheSafeChoiceOnMixedHosts) {
  // On a mixed cluster LAM must run without -O (data conversion on);
  // the test documents the cost of that safety.
  auto mbps_for = [](LamMode mode) {
    PairBed bed(presets::pentium4_pc(), presets::compaq_ds20(),
                presets::netgear_ga620(), tcp::Sysctl::tuned());
    LamOptions o;
    o.mode = mode;
    auto [la, lb] = Lam::create_pair(bed, o);
    const std::uint64_t n = 1 << 20;
    const sim::SimTime t = pingpong_once(bed, *la, *lb, n);
    return static_cast<double>(2 * n) * 8.0 / sim::to_seconds(t) / 1e6;
  };
  EXPECT_LT(mbps_for(LamMode::kC2c), 0.85 * mbps_for(LamMode::kC2cO));
}


TEST(Mpich, StopAndWaitModeAmplifiesTheBufferSizePenalty) {
  // With the strict blocking-channel model, small P4_SOCKBUFSIZE costs a
  // round trip per bufferful — the paper's "5-fold" story.
  auto throughput = [](std::uint32_t buf, bool snw) {
    PairBed bed(presets::pentium4_pc(), presets::trendnet_teg_pcitx(),
                tcp::Sysctl::tuned());
    MpichOptions o;
    o.p4_sockbufsize = buf;
    o.p4_stop_and_wait = snw;
    auto [a, b] = Mpich::create_pair(bed, o);
    const std::uint64_t n = 2 << 20;
    const sim::SimTime t = pingpong_once(bed, *a, *b, n);
    return static_cast<double>(2 * n) * 8.0 / sim::to_seconds(t) / 1e6;
  };
  const double pipelined_ratio =
      throughput(256 << 10, false) / throughput(32 << 10, false);
  const double snw_ratio =
      throughput(256 << 10, true) / throughput(32 << 10, true);
  EXPECT_GT(snw_ratio, pipelined_ratio);
  EXPECT_GT(snw_ratio, 2.5);  // toward the paper's 5x
}

}  // namespace
}  // namespace pp::mp
