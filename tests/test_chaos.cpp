// Tests for the chaos harness (src/chaos): deterministic random plan
// generation, the smoke sweep acceptance gate (no run may ever hang or
// error — slow recovery must classify degraded/failed instead), the
// crash+restart recovered-verdict JSON contract, and the full
// catch-a-bug pipeline: a deliberately broken recovery configuration
// must be flagged unacceptable and auto-minimized to the one fault rule
// that kills it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "faults/minimize.h"
#include "faults/plan.h"
#include "faults/plan_io.h"
#include "mp/testbed.h"
#include "netpipe/modules.h"
#include "netpipe/runner.h"
#include "simhw/presets.h"
#include "sweep/json_report.h"
#include "sweep/sweep.h"
#include "tcpsim/tuning.h"

namespace pp {
namespace {

namespace presets = hw::presets;

std::size_t rule_count(const faults::FaultPlan& p) {
  return p.links.size() + p.nics.size() + p.hosts.size() + p.crashes.size();
}

TEST(ChaosPlans, RandomPlansAreDeterministicAndBounded) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const faults::FaultPlan plan = chaos::random_plan(seed);
    // Same seed, same plan — serialized text is the canonical identity.
    EXPECT_EQ(faults::to_text(plan), faults::to_text(chaos::random_plan(seed)));
    const std::size_t rules = rule_count(plan);
    EXPECT_GE(rules, 1u) << "seed " << seed;
    EXPECT_LE(rules, 3u) << "seed " << seed;
    // At most one permanent crash: two permanently dark nodes cannot
    // make progress by construction, which would be an unfair plan.
    int permanent = 0;
    for (const auto& c : plan.crashes) {
      if (c.cfg.any() && !c.cfg.restarts()) ++permanent;
    }
    EXPECT_LE(permanent, 1) << "seed " << seed;
  }
}

// The acceptance gate: hundreds of random plans across every scenario,
// both shard counts and both packet paths. Every run must complete or
// fail by decision — a hung or error verdict is a recovery bug. The
// verdicts must also be identical across the execution matrix (sharding
// and the packet-descriptor path are host-side concerns; simulated
// behaviour is bit-identical by contract).
TEST(ChaosSweep, SmokeSweepHasNoHungOrErrorRuns) {
  constexpr int kPlans = 200;
  for (chaos::Scenario sc : chaos::kScenarios) chaos::baseline_mbps(sc);

  const struct {
    int shards;
    sim::PacketPathKind path;
  } kMatrix[] = {
      {1, sim::PacketPathKind::kArena},
      {2, sim::PacketPathKind::kArena},
      {1, sim::PacketPathKind::kLegacyHeap},
      {2, sim::PacketPathKind::kLegacyHeap},
  };

  std::vector<std::string> first_verdicts;
  for (const auto& cell : kMatrix) {
    sweep::SweepSpec spec;
    spec.name = "chaos-smoke";
    for (int p = 0; p < kPlans; ++p) {
      const faults::FaultPlan plan =
          chaos::random_plan(static_cast<std::uint64_t>(p + 1));
      for (chaos::Scenario sc : chaos::kScenarios) {
        spec.jobs.push_back(chaos::scenario_job(
            sc, std::string(chaos::to_string(sc)) + " seed=" +
                    std::to_string(p + 1),
            plan));
      }
    }
    sweep::SweepOptions opt = chaos::chaos_sweep_options();
    opt.shards = cell.shards;
    opt.packet_path = cell.path;
    const sweep::SweepResult sr = run_sweep(spec, opt);

    ASSERT_EQ(sr.jobs.size(), static_cast<std::size_t>(kPlans) *
                                  std::size(chaos::kScenarios));
    std::vector<std::string> verdicts;
    verdicts.reserve(sr.jobs.size());
    for (std::size_t j = 0; j < sr.jobs.size(); ++j) {
      const auto sc = chaos::kScenarios[j % std::size(chaos::kScenarios)];
      const chaos::Verdict v =
          chaos::classify(sr.jobs[j], chaos::baseline_mbps(sc));
      EXPECT_TRUE(chaos::acceptable(v))
          << sr.jobs[j].label << " shards=" << cell.shards
          << " verdict=" << chaos::to_string(v)
          << " error=" << sr.jobs[j].error;
      verdicts.emplace_back(chaos::to_string(v));
    }
    if (first_verdicts.empty()) {
      first_verdicts = std::move(verdicts);
    } else {
      EXPECT_EQ(verdicts, first_verdicts)
          << "verdicts changed across the execution matrix";
    }
  }
}

// Tentpole acceptance: a crash+restart TCP run completes with verdict
// `recovered`, and the verdict lands in the pp.sweep/6 JSON.
TEST(ChaosSweep, CrashRestartTcpRunIsRecoveredInSweepJson) {
  faults::HostCrashConfig cc;
  cc.at = sim::milliseconds(1.0);
  cc.downtime = sim::milliseconds(2.0);
  faults::FaultPlan plan;
  plan.add_crash(1, cc);

  sweep::SweepSpec spec;
  spec.name = "crash-restart";
  spec.jobs.push_back(chaos::scenario_job(chaos::Scenario::kTcp,
                                          "tcp crash-restart", plan));
  sweep::SweepResult sr = run_sweep(spec, chaos::chaos_sweep_options());
  ASSERT_EQ(sr.jobs.size(), 1u);
  ASSERT_TRUE(sr.jobs[0].ok) << sr.jobs[0].error;
  EXPECT_GE(sr.jobs[0].result.counters.reconnects, 1u);

  const chaos::Verdict v = chaos::classify(
      sr.jobs[0], chaos::baseline_mbps(chaos::Scenario::kTcp));
  EXPECT_EQ(v, chaos::Verdict::kRecovered);
  sr.jobs[0].verdict = chaos::to_string(v);

  const std::string j = sweep::JsonReporter::to_json({sr});
  EXPECT_NE(j.find("pp.sweep/6"), std::string::npos);
  EXPECT_NE(j.find("\"verdict\":\"recovered\""), std::string::npos);
  EXPECT_NE(j.find("\"reconnects\":"), std::string::npos);
}

// The full catch-a-bug pipeline, on a real injected recovery bug: a TCP
// stack with its give-up caps disarmed (no rto_give_up, no keepalive —
// exactly the configuration chaos_sysctl exists to prevent) cannot
// detect a permanently dead peer. The harness must flag the run
// unacceptable, and ddmin must shrink the noisy 5-rule plan to just the
// crash rule that triggers the bug.
TEST(ChaosSweep, InjectedRecoveryBugIsCaughtAndMinimized) {
  const auto buggy_verdict = [](const faults::FaultPlan& plan) {
    sweep::SweepSpec spec;
    spec.name = "buggy-tcp";
    spec.jobs.push_back(sweep::JobSpec{"buggy", [plan] {
      // tuned() but NOT chaos_sysctl(armed): retries forever.
      mp::PairBed bed(presets::pentium4_pc(), presets::netgear_ga620(),
                      tcp::Sysctl::tuned());
      faults::apply(plan, bed.cluster);
      auto [sa, sb] = bed.socket_pair("buggy");
      netpipe::TcpTransport ta(sa), tb(sb);
      return netpipe::run_netpipe(bed.sim, ta, tb, chaos::chaos_run_options());
    }});
    const sweep::SweepResult sr = run_sweep(spec, chaos::chaos_sweep_options());
    return chaos::classify(sr.jobs[0], /*baseline=*/0.0);
  };

  // A permanent crash buried in harmless noise rules.
  faults::FaultPlan plan;
  plan.seed = 7;
  faults::LinkFaultConfig loss;
  loss.loss = 0.01;
  plan.add_link("", loss);
  faults::LinkFaultConfig dup;
  dup.duplicate = 0.02;
  plan.add_link("", dup);
  faults::NicFaultConfig nf;
  nf.ring_slots = 64;
  plan.add_nic("", nf);
  faults::HostFaultConfig hf;
  hf.pause_period = sim::milliseconds(1.0);
  hf.pause_duration = sim::microseconds(50.0);
  plan.add_host(-1, hf);
  faults::HostCrashConfig cc;
  cc.at = sim::microseconds(500.0);
  cc.mode = faults::HostCrashConfig::Mode::kPermanent;
  plan.add_crash(0, cc);

  const chaos::Verdict got = buggy_verdict(plan);
  EXPECT_FALSE(chaos::acceptable(got))
      << "the disarmed stack should hang on a permanent crash, got "
      << chaos::to_string(got);

  const faults::MinimizeResult r = faults::minimize(
      plan, [&](const faults::FaultPlan& candidate) {
        return !chaos::acceptable(buggy_verdict(candidate));
      });
  EXPECT_LE(r.final_rules, 3u);  // acceptance bound
  ASSERT_EQ(r.plan.crashes.size(), 1u);  // the reproducer pins the crash
  EXPECT_EQ(r.final_rules, 1u);          // and nothing else survives
  // The minimal reproducer round-trips through pp.faultplan/1, ready
  // for `netpipe_cli --fault-plan`.
  const faults::FaultPlan reread = faults::from_text(faults::to_text(r.plan));
  EXPECT_EQ(faults::to_text(reread), faults::to_text(r.plan));
}

// The sanity direction of the same pipeline: run_verdict must call an
// unfaulted scenario clean, making it a sound ddmin oracle.
TEST(ChaosSweep, NullPlanRunsClassifyClean) {
  for (chaos::Scenario sc : chaos::kScenarios) {
    EXPECT_EQ(chaos::run_verdict(sc, faults::FaultPlan{}),
              chaos::Verdict::kClean)
        << chaos::to_string(sc);
  }
}

}  // namespace
}  // namespace pp
