// Tests for the GM (Myrinet) and VIA substrates and their MPI wrappers.
#include <gtest/gtest.h>

#include "gmsim/gm.h"
#include "mp/gm_mpi.h"
#include "mp/via_mpi.h"
#include "simhw/presets.h"
#include "viasim/via.h"

namespace pp {
namespace {

namespace presets = hw::presets;

struct GmBed {
  explicit GmBed(gm::GmConfig cfg = {})
      : cluster(sim),
        a(cluster.add_node(presets::pentium4_pc())),
        b(cluster.add_node(presets::pentium4_pc())),
        fabric(cluster, a, b, presets::myrinet_pci64a(),
               presets::back_to_back(), cfg) {}
  sim::Simulator sim;
  hw::Cluster cluster;
  hw::Node& a;
  hw::Node& b;
  gm::GmFabric fabric;
};

struct ViaBed {
  explicit ViaBed(via::ViaConfig cfg = {}, bool giganet = true)
      : cluster(sim),
        a(cluster.add_node(presets::pentium4_pc())),
        b(cluster.add_node(presets::pentium4_pc())),
        fabric(cluster, a, b,
               giganet ? presets::giganet_clan() : presets::syskonnect_mvia(),
               giganet ? presets::switched() : presets::back_to_back(),
               cfg) {}
  sim::Simulator sim;
  hw::Cluster cluster;
  hw::Node& a;
  hw::Node& b;
  via::ViaFabric fabric;
};

sim::SimTime gm_pingpong(GmBed& bed, std::uint64_t bytes, int reps = 1) {
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](gm::GmPort& p, std::uint64_t n, int reps, sim::Simulator& s,
         sim::SimTime& out) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await p.send(n, 1);
          co_await p.recv(n, 1);
        }
        out = s.now();
      }(bed.fabric.port_a(), bytes, reps, bed.sim, done),
      "ping");
  bed.sim.spawn(
      [](gm::GmPort& p, std::uint64_t n, int reps) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await p.recv(n, 1);
          co_await p.send(n, 1);
        }
      }(bed.fabric.port_b(), bytes, reps),
      "pong");
  bed.sim.run();
  return done;
}

sim::SimTime via_pingpong(ViaBed& bed, std::uint64_t bytes, int reps = 1) {
  sim::SimTime done = 0;
  bed.sim.spawn(
      [](via::ViEndpoint& p, std::uint64_t n, int reps, sim::Simulator& s,
         sim::SimTime& out) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await p.send(n, 1);
          co_await p.recv(n, 1);
        }
        out = s.now();
      }(bed.fabric.end_a(), bytes, reps, bed.sim, done),
      "ping");
  bed.sim.spawn(
      [](via::ViEndpoint& p, std::uint64_t n, int reps) -> sim::Task<void> {
        for (int i = 0; i < reps; ++i) {
          co_await p.recv(n, 1);
          co_await p.send(n, 1);
        }
      }(bed.fabric.end_b(), bytes, reps),
      "pong");
  bed.sim.run();
  return done;
}

TEST(Gm, MessagesDeliveredAndCounted) {
  GmBed bed;
  gm_pingpong(bed, 100000, 3);
  EXPECT_EQ(bed.fabric.port_a().messages_received(), 3u);
  EXPECT_EQ(bed.fabric.port_b().messages_received(), 3u);
}

TEST(Gm, BlockingModeCostsMoreLatencyThanPolling) {
  gm::GmConfig polling;
  polling.recv_mode = gm::RecvMode::kPolling;
  gm::GmConfig blocking;
  blocking.recv_mode = gm::RecvMode::kBlocking;
  gm::GmConfig hybrid;
  hybrid.recv_mode = gm::RecvMode::kHybrid;
  GmBed bp(polling), bb(blocking), bh(hybrid);
  const sim::SimTime tp = gm_pingpong(bp, 64);
  const sim::SimTime tb = gm_pingpong(bb, 64);
  const sim::SimTime th = gm_pingpong(bh, 64);
  EXPECT_GT(tb, tp + sim::microseconds(30));  // ~2 x 20 us wakeups
  EXPECT_EQ(th, tp);                          // hybrid == polling
}

TEST(Gm, LargeMessagesFragmentAtTheFabricMtu) {
  GmBed bed;
  gm_pingpong(bed, 100000, 1);
  // 100000 bytes at 8 kB per fragment -> 13 fragments per direction.
  EXPECT_EQ(bed.fabric.port_a().messages_received(), 1u);
}

TEST(Gm, ZeroByteMessagesWork) {
  GmBed bed;
  EXPECT_GT(gm_pingpong(bed, 0), 0);
}

TEST(Gm, UnmatchedArrivalsAreStagedWithCopyCost) {
  GmBed bed;
  sim::SimTime with_stage = 0;
  bed.sim.spawn(
      [](gm::GmPort& p) -> sim::Task<void> {
        co_await p.send(32 << 10, 9);
      }(bed.fabric.port_a()),
      "tx");
  bed.sim.spawn(
      [](GmBed& bed, gm::GmPort& p, sim::SimTime& out) -> sim::Task<void> {
        co_await bed.sim.delay(sim::milliseconds(5));
        const sim::SimTime t0 = bed.sim.now();
        co_await p.recv(32 << 10, 9);
        out = bed.sim.now() - t0;
      }(bed, bed.fabric.port_b(), with_stage),
      "rx");
  bed.sim.run();
  // The data already arrived; recv pays (only) detection + copy, and the
  // copy of 32 kB is visible.
  EXPECT_GT(with_stage,
            bed.b.staging_copy_time(32 << 10) / 2);
}

TEST(GmMpi, EagerRendezvousSwitchesAtThreshold) {
  GmBed bed;
  mp::GmMpi la(bed.fabric.port_a(), 0), lb(bed.fabric.port_b(), 1);
  bed.sim.spawn(
      [](mp::GmMpi& l) -> sim::Task<void> {
        co_await l.send(1, 16 << 10, 1);  // eager (at the threshold)
        co_await l.send(1, 32 << 10, 2);  // rendezvous
      }(la),
      "tx");
  bed.sim.spawn(
      [](mp::GmMpi& l) -> sim::Task<void> {
        co_await l.recv(0, 16 << 10, 1);
        co_await l.recv(0, 32 << 10, 2);
      }(lb),
      "rx");
  bed.sim.run();
  // Rendezvous adds two control messages each way: 1 data + 1 RTS at b,
  // 1 CTS at a... count messages: port_b saw eager data, RTS->no, b saw:
  // eager(1) + rts(1) + rndv data(1) = 3; port_a saw cts(1).
  EXPECT_EQ(bed.fabric.port_b().messages_received(), 3u);
  EXPECT_EQ(bed.fabric.port_a().messages_received(), 1u);
}

TEST(Via, RdmaOnlyAboveThreshold) {
  ViaBed bed;
  via_pingpong(bed, 16 << 10);  // at threshold: send/recv path
  EXPECT_EQ(bed.fabric.end_a().rdma_transfers(), 0u);
  ViaBed bed2;
  via_pingpong(bed2, 32 << 10);
  EXPECT_EQ(bed2.fabric.end_a().rdma_transfers(), 1u);
  EXPECT_EQ(bed2.fabric.end_b().rdma_transfers(), 1u);
}

TEST(Via, RdmaHandshakeCausesThresholdDip) {
  ViaBed just_below;
  const std::uint64_t below_bytes = 16 << 10;
  const sim::SimTime t_below = via_pingpong(just_below, below_bytes);
  ViaBed just_above;
  const std::uint64_t above_bytes = (16 << 10) + 64;
  const sim::SimTime t_above = via_pingpong(just_above, above_bytes);
  // Crossing the threshold costs a handshake round trip.
  EXPECT_GT(t_above, t_below + sim::microseconds(5));
}

TEST(Via, MviaSlowerAndHigherLatencyThanGiganet) {
  via::ViaConfig hw_cfg;
  hw_cfg.personality = via::ViaPersonality::giganet();
  via::ViaConfig sw_cfg;
  sw_cfg.personality = via::ViaPersonality::mvia_sk98lin();
  ViaBed giganet(hw_cfg, true);
  ViaBed mvia(sw_cfg, false);
  const sim::SimTime t_hw_small = via_pingpong(giganet, 64);
  const sim::SimTime t_sw_small = via_pingpong(mvia, 64);
  EXPECT_LT(t_hw_small, t_sw_small);
  ViaBed giganet2(hw_cfg, true);
  ViaBed mvia2(sw_cfg, false);
  const sim::SimTime t_hw_big = via_pingpong(giganet2, 1 << 20);
  const sim::SimTime t_sw_big = via_pingpong(mvia2, 1 << 20);
  EXPECT_LT(t_hw_big, t_sw_big);
}

TEST(ViaMpi, NoRputCostsBounceCopies) {
  auto run = [](bool rput) {
    via::ViaConfig cfg;
    ViaBed bed(cfg, true);
    const auto opt = mp::ViaMpi::mvich(rput);
    mp::ViaMpi la(bed.fabric.end_a(), 0, opt);
    mp::ViaMpi lb(bed.fabric.end_b(), 1, opt);
    sim::SimTime done = 0;
    bed.sim.spawn(
        [](mp::ViaMpi& l, sim::Simulator& s,
           sim::SimTime& out) -> sim::Task<void> {
          co_await l.send(1, 1 << 20, 1);
          co_await l.recv(1, 1 << 20, 1);
          out = s.now();
        }(la, bed.sim, done),
        "a");
    bed.sim.spawn(
        [](mp::ViaMpi& l) -> sim::Task<void> {
          co_await l.recv(0, 1 << 20, 1);
          co_await l.send(0, 1 << 20, 1);
        }(lb),
        "b");
    bed.sim.run();
    return done;
  };
  EXPECT_GT(run(false), run(true) + sim::milliseconds(1));
}

TEST(FabricDeterminism, GmAndViaReplay) {
  auto gm_once = [] {
    GmBed bed;
    return gm_pingpong(bed, 500000, 2);
  };
  auto via_once = [] {
    ViaBed bed;
    return via_pingpong(bed, 500000, 2);
  };
  EXPECT_EQ(gm_once(), gm_once());
  EXPECT_EQ(via_once(), via_once());
}

// Property: both fabrics move any size exactly once per ping-pong,
// including fragment-boundary sizes.
class FabricSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricSizes, GmPingPongCompletes) {
  GmBed bed;
  EXPECT_GT(gm_pingpong(bed, GetParam()), 0);
  EXPECT_EQ(bed.fabric.port_a().messages_received(), 1u);
}

TEST_P(FabricSizes, ViaPingPongCompletes) {
  ViaBed bed;
  EXPECT_GT(via_pingpong(bed, GetParam()), 0);
}

INSTANTIATE_TEST_SUITE_P(FragmentBoundaries, FabricSizes,
                         ::testing::Values(1, 4095, 4096, 4097, 8191, 8192,
                                           8193, 16384, 16385, 65536,
                                           1 << 20));


TEST(Via, RaisingTheRdmaThresholdMovesTheDip) {
  // Paper §6.1: "setting via_long to 64 kB gets rid of a dip" at 16 kB.
  auto step_cost = [](std::uint64_t threshold) {
    via::ViaConfig cfg;
    cfg.rdma_threshold = threshold;
    ViaBed below_bed(cfg);
    const sim::SimTime below = via_pingpong(below_bed, 16 << 10);
    ViaBed above_bed(cfg);
    const sim::SimTime above = via_pingpong(above_bed, (16 << 10) + 256);
    return above - below;
  };
  // With the default threshold, crossing 16 kB costs a handshake; with
  // via_long at 64 kB it is a plain eager step.
  EXPECT_GT(step_cost(16 << 10), step_cost(64 << 10) +
                                     sim::microseconds(4));
}

}  // namespace
}  // namespace pp
