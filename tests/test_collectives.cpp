// Tests for multi-node ring worlds and collective operations.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mp/collectives.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/world.h"
#include "simhw/presets.h"

namespace pp::mp {
namespace {

namespace presets = hw::presets;

RingWorld make_ring(int n) {
  return RingWorld(n, presets::pentium4_pc(), presets::netgear_ga620(),
                   tcp::Sysctl::tuned());
}

template <typename L>
RingComm comm_for(std::vector<std::unique_ptr<L>>& libs, int rank) {
  return RingComm{libs[static_cast<std::size_t>(rank)].get(), rank,
                  static_cast<int>(libs.size())};
}

TEST(RingWorld, BuildsConnectedNeighbours) {
  RingWorld world = make_ring(4);
  auto libs = world.template build<MpLite>();
  ASSERT_EQ(libs.size(), 4u);
  // Each rank can exchange with both neighbours.
  for (int i = 0; i < 4; ++i) {
    world.sim.spawn(
        [](Library& l, int right, int left) -> sim::Task<void> {
          co_await l.send(right, 100, 1);
          co_await l.recv(left, 100, 1);
          co_await l.send(left, 100, 2);
          co_await l.recv(right, 100, 2);
        }(*libs[static_cast<std::size_t>(i)], (i + 1) % 4, (i + 3) % 4),
        "rank" + std::to_string(i));
  }
  world.sim.run();
}

TEST(Barrier, NoRankLeavesBeforeTheLastArrives) {
  RingWorld world = make_ring(4);
  auto libs = world.build<MpLite>();
  std::vector<sim::SimTime> entered(4), left(4);
  for (int i = 0; i < 4; ++i) {
    world.sim.spawn(
        [](RingWorld& w, RingComm comm, sim::SimTime& in,
           sim::SimTime& out) -> sim::Task<void> {
          // Stagger arrivals: rank i shows up at i * 2 ms.
          co_await w.sim.delay(sim::milliseconds(2.0 * comm.rank));
          in = w.sim.now();
          co_await ring_barrier(comm);
          out = w.sim.now();
        }(world, comm_for(libs, i), entered[static_cast<std::size_t>(i)],
          left[static_cast<std::size_t>(i)]),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  const sim::SimTime last_entry =
      *std::max_element(entered.begin(), entered.end());
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(left[static_cast<std::size_t>(i)], last_entry) << "rank " << i;
  }
}

TEST(Broadcast, DeliversFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    RingWorld world = make_ring(3);
    auto libs = world.build<MpLite>();
    int completed = 0;
    for (int i = 0; i < 3; ++i) {
      world.sim.spawn(
          [](RingComm comm, int root, int& done) -> sim::Task<void> {
            co_await ring_broadcast(comm, root, 300000);
            ++done;
          }(comm_for(libs, i), root, completed),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    EXPECT_EQ(completed, 3) << "root " << root;
  }
}

TEST(Broadcast, PipeliningKeepsLargeBroadcastsNearPointToPoint) {
  // A pipelined 4-rank ring broadcast of 1 MB should take well under
  // 3 x the point-to-point time for 1 MB (naive store-and-forward
  // would be ~3x).
  auto p2p_time = [] {
    RingWorld world = make_ring(2);
    auto libs = world.build<MpLite>();
    world.sim.spawn(
        [](Library& l) -> sim::Task<void> { co_await l.send(1, 1 << 20, 1); }(
            *libs[0]),
        "tx");
    world.sim.spawn(
        [](Library& l) -> sim::Task<void> { co_await l.recv(0, 1 << 20, 1); }(
            *libs[1]),
        "rx");
    world.sim.run();
    return world.sim.now();
  }();
  auto bcast_time = [] {
    RingWorld world = make_ring(4);
    auto libs = world.build<MpLite>();
    for (int i = 0; i < 4; ++i) {
      world.sim.spawn(
          [](RingComm comm) -> sim::Task<void> {
            co_await ring_broadcast(comm, 0, 1 << 20);
          }(comm_for(libs, i)),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    return world.sim.now();
  }();
  EXPECT_LT(bcast_time, 2 * p2p_time);
}

TEST(Allreduce, CompletesOnAllRanksForVariousSizes) {
  for (std::uint64_t bytes : {1024ull, 100000ull, 1ull << 20}) {
    RingWorld world = make_ring(4);
    auto libs = world.build<MpLite>();
    int completed = 0;
    for (int i = 0; i < 4; ++i) {
      world.sim.spawn(
          [](RingComm comm, std::uint64_t n, int& done) -> sim::Task<void> {
            co_await ring_allreduce(comm, n);
            ++done;
          }(comm_for(libs, i), bytes, completed),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    EXPECT_EQ(completed, 4) << bytes << " bytes";
  }
}

TEST(Allreduce, BandwidthOptimalNotLinearInRanks) {
  auto time_for = [](int n) {
    RingWorld world = make_ring(n);
    auto libs = world.build<MpLite>();
    for (int i = 0; i < n; ++i) {
      world.sim.spawn(
          [](RingComm comm) -> sim::Task<void> {
            co_await ring_allreduce(comm, 2 << 20);
          }(comm_for(libs, i)),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    return world.sim.now();
  };
  // Ring allreduce moves 2(N-1)/N of the data per rank: going from 2 to
  // 6 ranks costs ~1.7x, nowhere near 3x.
  EXPECT_LT(time_for(6), 2.2 * time_for(2));
}

TEST(Allgather, CompletesAndScalesWithBlockCount) {
  RingWorld world = make_ring(4);
  auto libs = world.build<MpLite>();
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    world.sim.spawn(
        [](RingComm comm, int& done) -> sim::Task<void> {
          co_await ring_allgather(comm, 64 << 10);
          ++done;
        }(comm_for(libs, i), completed),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  EXPECT_EQ(completed, 4);
}

TEST(Collectives, WorkOverMpichToo) {
  RingWorld world = make_ring(3);
  MpichOptions opt;
  opt.p4_sockbufsize = 256 << 10;
  auto libs = world.build<Mpich>(opt);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    world.sim.spawn(
        [](RingComm comm, int& done) -> sim::Task<void> {
          co_await ring_barrier(comm);
          co_await ring_broadcast(comm, 0, 500000);
          co_await ring_allreduce(comm, 200000);
          ++done;
        }(comm_for(libs, i), completed),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  EXPECT_EQ(completed, 3);
}

// Property: collectives complete for any ring size.
class RingSizes : public ::testing::TestWithParam<int> {};

TEST_P(RingSizes, BarrierAndAllreduceComplete) {
  const int n = GetParam();
  RingWorld world = make_ring(n);
  auto libs = world.build<MpLite>();
  int completed = 0;
  for (int i = 0; i < n; ++i) {
    world.sim.spawn(
        [](RingComm comm, int& done) -> sim::Task<void> {
          co_await ring_barrier(comm);
          co_await ring_allreduce(comm, 123457);
          co_await ring_barrier(comm);
          ++done;
        }(comm_for(libs, i), completed),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  EXPECT_EQ(completed, n);
}

INSTANTIATE_TEST_SUITE_P(Rings, RingSizes, ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace pp::mp
