// Tests for multi-node ring worlds and collective operations: the ring
// algorithms over RingWorld, eager communicator validation, and the
// tree/dissemination algorithms over the switch fabric with
// audit-ledger oracles (exactly-once, conserved) matching their ring
// counterparts.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

#include "audit/audit.h"
#include "mp/collectives.h"
#include "mp/fabric_lib.h"
#include "mp/mpich.h"
#include "mp/mplite.h"
#include "mp/world.h"
#include "simhw/presets.h"

namespace pp::mp {
namespace {

namespace presets = hw::presets;

RingWorld make_ring(int n) {
  return RingWorld(n, presets::pentium4_pc(), presets::netgear_ga620(),
                   tcp::Sysctl::tuned());
}

template <typename L>
RingComm comm_for(std::vector<std::unique_ptr<L>>& libs, int rank) {
  return RingComm{libs[static_cast<std::size_t>(rank)].get(), rank,
                  static_cast<int>(libs.size())};
}

TEST(RingWorld, BuildsConnectedNeighbours) {
  RingWorld world = make_ring(4);
  auto libs = world.template build<MpLite>();
  ASSERT_EQ(libs.size(), 4u);
  // Each rank can exchange with both neighbours.
  for (int i = 0; i < 4; ++i) {
    world.sim.spawn(
        [](Library& l, int right, int left) -> sim::Task<void> {
          co_await l.send(right, 100, 1);
          co_await l.recv(left, 100, 1);
          co_await l.send(left, 100, 2);
          co_await l.recv(right, 100, 2);
        }(*libs[static_cast<std::size_t>(i)], (i + 1) % 4, (i + 3) % 4),
        "rank" + std::to_string(i));
  }
  world.sim.run();
}

TEST(Barrier, NoRankLeavesBeforeTheLastArrives) {
  RingWorld world = make_ring(4);
  auto libs = world.build<MpLite>();
  std::vector<sim::SimTime> entered(4), left(4);
  for (int i = 0; i < 4; ++i) {
    world.sim.spawn(
        [](RingWorld& w, RingComm comm, sim::SimTime& in,
           sim::SimTime& out) -> sim::Task<void> {
          // Stagger arrivals: rank i shows up at i * 2 ms.
          co_await w.sim.delay(sim::milliseconds(2.0 * comm.rank));
          in = w.sim.now();
          co_await ring_barrier(comm);
          out = w.sim.now();
        }(world, comm_for(libs, i), entered[static_cast<std::size_t>(i)],
          left[static_cast<std::size_t>(i)]),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  const sim::SimTime last_entry =
      *std::max_element(entered.begin(), entered.end());
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(left[static_cast<std::size_t>(i)], last_entry) << "rank " << i;
  }
}

TEST(Broadcast, DeliversFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    RingWorld world = make_ring(3);
    auto libs = world.build<MpLite>();
    int completed = 0;
    for (int i = 0; i < 3; ++i) {
      world.sim.spawn(
          [](RingComm comm, int root, int& done) -> sim::Task<void> {
            co_await ring_broadcast(comm, root, 300000);
            ++done;
          }(comm_for(libs, i), root, completed),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    EXPECT_EQ(completed, 3) << "root " << root;
  }
}

TEST(Broadcast, PipeliningKeepsLargeBroadcastsNearPointToPoint) {
  // A pipelined 4-rank ring broadcast of 1 MB should take well under
  // 3 x the point-to-point time for 1 MB (naive store-and-forward
  // would be ~3x).
  auto p2p_time = [] {
    RingWorld world = make_ring(2);
    auto libs = world.build<MpLite>();
    world.sim.spawn(
        [](Library& l) -> sim::Task<void> { co_await l.send(1, 1 << 20, 1); }(
            *libs[0]),
        "tx");
    world.sim.spawn(
        [](Library& l) -> sim::Task<void> { co_await l.recv(0, 1 << 20, 1); }(
            *libs[1]),
        "rx");
    world.sim.run();
    return world.sim.now();
  }();
  auto bcast_time = [] {
    RingWorld world = make_ring(4);
    auto libs = world.build<MpLite>();
    for (int i = 0; i < 4; ++i) {
      world.sim.spawn(
          [](RingComm comm) -> sim::Task<void> {
            co_await ring_broadcast(comm, 0, 1 << 20);
          }(comm_for(libs, i)),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    return world.sim.now();
  }();
  EXPECT_LT(bcast_time, 2 * p2p_time);
}

TEST(Allreduce, CompletesOnAllRanksForVariousSizes) {
  for (std::uint64_t bytes : {1024ull, 100000ull, 1ull << 20}) {
    RingWorld world = make_ring(4);
    auto libs = world.build<MpLite>();
    int completed = 0;
    for (int i = 0; i < 4; ++i) {
      world.sim.spawn(
          [](RingComm comm, std::uint64_t n, int& done) -> sim::Task<void> {
            co_await ring_allreduce(comm, n);
            ++done;
          }(comm_for(libs, i), bytes, completed),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    EXPECT_EQ(completed, 4) << bytes << " bytes";
  }
}

TEST(Allreduce, BandwidthOptimalNotLinearInRanks) {
  auto time_for = [](int n) {
    RingWorld world = make_ring(n);
    auto libs = world.build<MpLite>();
    for (int i = 0; i < n; ++i) {
      world.sim.spawn(
          [](RingComm comm) -> sim::Task<void> {
            co_await ring_allreduce(comm, 2 << 20);
          }(comm_for(libs, i)),
          "rank" + std::to_string(i));
    }
    world.sim.run();
    return world.sim.now();
  };
  // Ring allreduce moves 2(N-1)/N of the data per rank: going from 2 to
  // 6 ranks costs ~1.7x, nowhere near 3x.
  EXPECT_LT(time_for(6), 2.2 * time_for(2));
}

TEST(Allgather, CompletesAndScalesWithBlockCount) {
  RingWorld world = make_ring(4);
  auto libs = world.build<MpLite>();
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    world.sim.spawn(
        [](RingComm comm, int& done) -> sim::Task<void> {
          co_await ring_allgather(comm, 64 << 10);
          ++done;
        }(comm_for(libs, i), completed),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  EXPECT_EQ(completed, 4);
}

TEST(Collectives, WorkOverMpichToo) {
  RingWorld world = make_ring(3);
  MpichOptions opt;
  opt.p4_sockbufsize = 256 << 10;
  auto libs = world.build<Mpich>(opt);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    world.sim.spawn(
        [](RingComm comm, int& done) -> sim::Task<void> {
          co_await ring_barrier(comm);
          co_await ring_broadcast(comm, 0, 500000);
          co_await ring_allreduce(comm, 200000);
          ++done;
        }(comm_for(libs, i), completed),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  EXPECT_EQ(completed, 3);
}

// Property: collectives complete for any ring size.
class RingSizes : public ::testing::TestWithParam<int> {};

TEST_P(RingSizes, BarrierAndAllreduceComplete) {
  const int n = GetParam();
  RingWorld world = make_ring(n);
  auto libs = world.build<MpLite>();
  int completed = 0;
  for (int i = 0; i < n; ++i) {
    world.sim.spawn(
        [](RingComm comm, int& done) -> sim::Task<void> {
          co_await ring_barrier(comm);
          co_await ring_allreduce(comm, 123457);
          co_await ring_barrier(comm);
          ++done;
        }(comm_for(libs, i), completed),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  EXPECT_EQ(completed, n);
}

INSTANTIATE_TEST_SUITE_P(Rings, RingSizes, ::testing::Values(2, 3, 4, 5, 8));

// ---------------------------------------------------------------------------
// Eager communicator validation (error paths)
// ---------------------------------------------------------------------------

TEST(Validation, NullLibraryThrowsAtTheCallSite) {
  const RingComm bad{nullptr, 0, 4};
  EXPECT_THROW(ring_barrier(bad), std::invalid_argument);
  EXPECT_THROW(ring_broadcast(bad, 0, 100), std::invalid_argument);
  EXPECT_THROW(ring_allreduce(bad, 100), std::invalid_argument);
  EXPECT_THROW(ring_allgather(bad, 100), std::invalid_argument);
  EXPECT_THROW(tree_broadcast(bad, 0, 100), std::invalid_argument);
  EXPECT_THROW(dissemination_barrier(bad), std::invalid_argument);
  EXPECT_THROW(dissemination_allgather(bad, 100), std::invalid_argument);
  EXPECT_THROW(doubling_allreduce(bad, 100), std::invalid_argument);
}

TEST(Validation, BadSizeAndRankThrow) {
  RingWorld world = make_ring(2);
  auto libs = world.build<MpLite>();
  Library* lib = libs[0].get();
  EXPECT_THROW(ring_barrier(RingComm{lib, 0, 0}), std::invalid_argument);
  EXPECT_THROW(ring_barrier(RingComm{lib, 0, -3}), std::invalid_argument);
  EXPECT_THROW(ring_barrier(RingComm{lib, 2, 2}), std::invalid_argument);
  EXPECT_THROW(ring_barrier(RingComm{lib, -1, 2}), std::invalid_argument);
  EXPECT_THROW(doubling_allreduce(RingComm{lib, 5, 2}, 64),
               std::invalid_argument);
  // Roots are validated too.
  EXPECT_THROW(ring_broadcast(RingComm{lib, 0, 2}, 2, 100),
               std::invalid_argument);
  EXPECT_THROW(tree_broadcast(RingComm{lib, 0, 2}, -1, 100),
               std::invalid_argument);
  // The throw is eager — no coroutine ran, so the world is untouched
  // and a valid collective still works afterwards.
  int completed = 0;
  for (int i = 0; i < 2; ++i) {
    world.sim.spawn(
        [](RingComm comm, int& done) -> sim::Task<void> {
          co_await ring_barrier(comm);
          ++done;
        }(comm_for(libs, i), completed),
        "rank" + std::to_string(i));
  }
  world.sim.run();
  EXPECT_EQ(completed, 2);
}

// ---------------------------------------------------------------------------
// Cross-algorithm audit-ledger oracles over the switch fabric
// ---------------------------------------------------------------------------

struct LedgerRun {
  audit::Summary summary;
  sim::SimTime elapsed = 0;
  int completed = 0;
};

/// Runs `per_rank` on every rank of an N-node fabric under a delivery
/// auditor and closes the ledger as a completed run.
LedgerRun audited_fabric_run(
    int ranks, const std::function<sim::Task<void>(RingComm)>& per_rank) {
  audit::Auditor aud;
  FabricWorldOptions opt;
  opt.shards = 1;
  opt.host = hw::presets::pentium4_pc();
  opt.auditor = &aud;
  FabricWorld world(ranks, opt);
  LedgerRun out;
  for (int r = 0; r < ranks; ++r) {
    world.spawn(r,
                [](const std::function<sim::Task<void>(RingComm)>& body,
                   RingComm comm, int& done) -> sim::Task<void> {
                  co_await body(comm);
                  ++done;
                }(per_rank, world.comm(r), out.completed),
                "rank" + std::to_string(r));
  }
  world.run();
  out.elapsed = world.simulator(0).now();
  out.summary = aud.finalize(audit::RunOutcome::kCompleted);
  return out;
}

void expect_clean_ledger(const LedgerRun& run, int ranks,
                         const char* what) {
  EXPECT_EQ(run.completed, ranks) << what;
  EXPECT_EQ(run.summary.violations, 0u) << what;
  EXPECT_EQ(run.summary.unaccounted, 0u) << what;
  EXPECT_EQ(run.summary.delivered, run.summary.injected) << what;
  EXPECT_GT(run.summary.injected, 0u) << what;
}

class FabricCollectives : public ::testing::TestWithParam<int> {};

TEST_P(FabricCollectives, TreeBroadcastLedgerMatchesRing) {
  const int n = GetParam();
  const std::uint64_t bytes = 32 << 10;
  const LedgerRun ring = audited_fabric_run(n, [&](RingComm c) {
    return ring_broadcast(c, 1 % n, bytes);
  });
  const LedgerRun tree = audited_fabric_run(n, [&](RingComm c) {
    return tree_broadcast(c, 1 % n, bytes);
  });
  expect_clean_ledger(ring, n, "ring_broadcast");
  expect_clean_ledger(tree, n, "tree_broadcast");
  // Both algorithms move the identical payload total: N-1 full copies.
  EXPECT_EQ(tree.summary.injected_bytes, ring.summary.injected_bytes);
  EXPECT_EQ(ring.summary.injected_bytes,
            static_cast<std::uint64_t>(n - 1) * bytes);
}

TEST_P(FabricCollectives, DisseminationBarrierLedgerMatchesRing) {
  const int n = GetParam();
  const LedgerRun ring =
      audited_fabric_run(n, [](RingComm c) { return ring_barrier(c); });
  const LedgerRun diss = audited_fabric_run(
      n, [](RingComm c) { return dissemination_barrier(c); });
  expect_clean_ledger(ring, n, "ring_barrier");
  expect_clean_ledger(diss, n, "dissemination_barrier");
  // O(log N) rounds beat the O(N) token ring once the ring is long.
  if (n >= 64) {
    EXPECT_LT(diss.elapsed, ring.elapsed);
  }
}

TEST_P(FabricCollectives, DisseminationAllgatherLedgerMatchesRing) {
  const int n = GetParam();
  const std::uint64_t block = 2048;
  const LedgerRun ring = audited_fabric_run(
      n, [&](RingComm c) { return ring_allgather(c, block); });
  const LedgerRun diss = audited_fabric_run(
      n, [&](RingComm c) { return dissemination_allgather(c, block); });
  expect_clean_ledger(ring, n, "ring_allgather");
  expect_clean_ledger(diss, n, "dissemination_allgather");
  // Same total payload either way: every rank ends with N-1 new blocks.
  EXPECT_EQ(diss.summary.injected_bytes, ring.summary.injected_bytes);
}

TEST_P(FabricCollectives, DoublingAllreduceLedgerIsCleanLikeRing) {
  const int n = GetParam();
  const std::uint64_t bytes = 8 << 10;
  const LedgerRun ring = audited_fabric_run(
      n, [&](RingComm c) { return ring_allreduce(c, bytes); });
  const LedgerRun dbl = audited_fabric_run(
      n, [&](RingComm c) { return doubling_allreduce(c, bytes); });
  expect_clean_ledger(ring, n, "ring_allreduce");
  expect_clean_ledger(dbl, n, "doubling_allreduce");
}

INSTANTIATE_TEST_SUITE_P(Ns, FabricCollectives, ::testing::Values(4, 8, 64));

// Odd sizes exercise the recursive-doubling fold/unfold preamble.
TEST(FabricCollectives, DoublingAllreduceHandlesNonPowerOfTwo) {
  for (int n : {3, 5, 6, 7}) {
    const LedgerRun run = audited_fabric_run(
        n, [](RingComm c) { return doubling_allreduce(c, 4096); });
    expect_clean_ledger(run, n, "doubling_allreduce non-pow2");
  }
}

// ---------------------------------------------------------------------------
// Fault-plan leg: lossy fabric completes or fails by decision
// ---------------------------------------------------------------------------

TEST(FabricCollectives, LossyFabricCompletesOrFailsByDecisionNeverHangs) {
  int failures = 0;
  int completions = 0;
  for (double loss : {0.0, 0.02, 0.3}) {
    audit::Auditor aud;
    FabricWorldOptions opt;
    opt.shards = 1;
    opt.host = hw::presets::pentium4_pc();
    opt.auditor = &aud;
    opt.lib.delivery_timeout = sim::milliseconds(2);
    FabricWorld world(8, opt);
    if (loss > 0) world.fabric().set_loss(loss);
    for (int r = 0; r < 8; ++r) {
      world.spawn(r,
                  [](RingComm comm) -> sim::Task<void> {
                    co_await doubling_allreduce(comm, 16 << 10);
                    co_await dissemination_barrier(comm);
                  }(world.comm(r)),
                  "rank" + std::to_string(r));
    }
    audit::RunOutcome outcome = audit::RunOutcome::kCompleted;
    try {
      world.run();
      ++completions;
    } catch (const sim::ProtocolFailure&) {
      // The receive watchdog decided: a clean failure, not a hang.
      ++failures;
      outcome = audit::RunOutcome::kFailed;
    }
    // Any other exception type (DeadlockError, budget) fails the test.
    const audit::Summary& s = aud.finalize(outcome);
    EXPECT_EQ(s.violations, 0u) << "loss " << loss;
    EXPECT_EQ(s.injected, s.delivered + s.failed_by_decision)
        << "loss " << loss;
  }
  EXPECT_GE(completions, 1);  // the lossless leg always completes
  EXPECT_GE(failures, 1);     // 30% loss cannot sneak through
}

}  // namespace
}  // namespace pp::mp
