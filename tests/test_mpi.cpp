// Tests for the MPI-1-flavoured facade (communicators, collectives).
#include <gtest/gtest.h>

#include <vector>

#include "mp/mplite.h"
#include "mp/world.h"
#include "mpi/mpi.h"
#include "simhw/presets.h"

namespace pp::mpi {
namespace {

namespace presets = hw::presets;

struct MpiBed {
  explicit MpiBed(int n)
      : world(n, presets::pentium4_pc(), presets::netgear_ga620(),
              tcp::Sysctl::tuned()),
        libs(world.build<mp::MpLite>()) {
    std::vector<mp::Library*> members;
    for (auto& l : libs) members.push_back(l.get());
    comms = Comm::world(members);
  }

  /// Spawns `body(comm)` on every rank and runs the simulation.
  template <typename Body>
  void run_all(Body body) {
    for (auto& c : comms) {
      world.sim.spawn(body(c), "rank" + std::to_string(c.rank()));
    }
    world.sim.run();
  }

  mp::MeshWorld world;
  std::vector<std::unique_ptr<mp::MpLite>> libs;
  std::vector<Comm> comms;
};

TEST(MpiFacade, WorldHasExpectedShape) {
  MpiBed bed(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bed.comms[static_cast<std::size_t>(i)].rank(), i);
    EXPECT_EQ(bed.comms[static_cast<std::size_t>(i)].size(), 4);
    EXPECT_TRUE(bed.comms[static_cast<std::size_t>(i)].valid());
  }
}

TEST(MpiFacade, SendRecvWithDatatypes) {
  MpiBed bed(2);
  bed.run_all([](Comm& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1000, Datatype::kDouble, 1, 5);
      co_await c.recv(1000, Datatype::kDouble, 1, 6);
    } else {
      co_await c.recv(1000, Datatype::kDouble, 0, 5);
      co_await c.send(1000, Datatype::kDouble, 0, 6);
    }
  });
  SUCCEED();
}

TEST(MpiFacade, SendrecvIsDeadlockFreeWhenEveryoneExchanges) {
  MpiBed bed(4);
  bed.run_all([](Comm& c) -> sim::Task<void> {
    // Everyone exchanges large (rendezvous-sized for most libraries)
    // messages with the next rank simultaneously.
    const int to = (c.rank() + 1) % c.size();
    const int from = (c.rank() - 1 + c.size()) % c.size();
    co_await c.sendrecv(200000, Datatype::kByte, to, 200000, from, 3);
  });
  SUCCEED();
}

class MpiCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MpiCollectives, AllCollectivesCompleteOnEveryRank) {
  MpiBed bed(GetParam());
  std::vector<int> done;
  bed.run_all([&done](Comm& c) -> sim::Task<void> {
    co_await c.barrier();
    co_await c.bcast(10000, Datatype::kByte, 0);
    co_await c.bcast(10000, Datatype::kByte, c.size() - 1);
    co_await c.reduce(5000, Datatype::kDouble, 0);
    co_await c.allreduce(5000, Datatype::kDouble);
    co_await c.gather(2000, Datatype::kInt, 0);
    co_await c.scatter(2000, Datatype::kInt, 0);
    co_await c.allgather(2000, Datatype::kByte);
    co_await c.alltoall(1000, Datatype::kByte);
    co_await c.barrier();
    done.push_back(c.rank());
  });
  EXPECT_EQ(static_cast<int>(done.size()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpiCollectives,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST(MpiFacade, BarrierSynchronizes) {
  MpiBed bed(5);
  std::vector<sim::SimTime> entered(5), left(5);
  bed.run_all([&](Comm& c) -> sim::Task<void> {
    co_await c.node().simulator().delay(
        sim::milliseconds(1.0 * (c.rank() + 1)));
    entered[static_cast<std::size_t>(c.rank())] = c.node().simulator().now();
    co_await c.barrier();
    left[static_cast<std::size_t>(c.rank())] = c.node().simulator().now();
  });
  const sim::SimTime last = *std::max_element(entered.begin(), entered.end());
  for (auto t : left) EXPECT_GE(t, last);
}

TEST(MpiFacade, BinomialBcastBeatsLinearFanoutForLargeMessages) {
  // For large messages the root's outbound bandwidth dominates: a linear
  // fan-out pushes (size-1) copies through one host, a binomial tree
  // only log2(size). (For tiny eager messages linear fan-out actually
  // wins — sends are buffered — which is why real MPIs switch
  // algorithms by size.)
  const std::uint64_t kBytes = 1 << 20;
  MpiBed linear(8);
  std::vector<sim::SimTime> finish(8, 0);
  linear.run_all([&](Comm& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      for (int r = 1; r < c.size(); ++r) {
        co_await c.send(kBytes, Datatype::kByte, r, 9);
      }
    } else {
      co_await c.recv(kBytes, Datatype::kByte, 0, 9);
    }
    finish[static_cast<std::size_t>(c.rank())] =
        c.node().simulator().now();
  });
  const sim::SimTime t_linear =
      *std::max_element(finish.begin(), finish.end());

  MpiBed binomial(8);
  std::vector<sim::SimTime> finish2(8, 0);
  binomial.run_all([&](Comm& c) -> sim::Task<void> {
    co_await c.bcast(kBytes, Datatype::kByte, 0);
    finish2[static_cast<std::size_t>(c.rank())] =
        c.node().simulator().now();
  });
  const sim::SimTime t_bin =
      *std::max_element(finish2.begin(), finish2.end());
  EXPECT_LT(t_bin, t_linear);
}

TEST(MpiFacade, AllgatherMovesTheRightTotalVolume) {
  // Recursive-doubling allgather on 4 ranks: each rank sends
  // count * (size-1) bytes in total. Check via library byte counters is
  // impractical here; instead verify timing scales with count.
  auto time_for = [](std::uint64_t count) {
    MpiBed bed(4);
    bed.run_all([count](Comm& c) -> sim::Task<void> {
      co_await c.allgather(count, Datatype::kByte);
    });
    return bed.world.sim.now();
  };
  const sim::SimTime small = time_for(10000);
  const sim::SimTime big = time_for(1000000);
  EXPECT_GT(big, 2 * small / 2);
  EXPECT_GT(big, small);
}

TEST(MpiFacade, SplitCreatesIsolatedSubcommunicators) {
  MpiBed bed(4);
  // Even ranks -> color 0, odd ranks -> color 1; reverse key order in
  // color 1 to exercise the key sort.
  const std::vector<int> colors = {0, 1, 0, 1};
  const std::vector<int> keys = {0, 5, 1, 2};
  auto subs = Comm::split(bed.comms, colors, keys);
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0].size(), 2);
  EXPECT_EQ(subs[0].rank(), 0);
  EXPECT_EQ(subs[2].rank(), 1);
  // key order: rank 3 (key 2) before rank 1 (key 5) in color 1.
  EXPECT_EQ(subs[3].rank(), 0);
  EXPECT_EQ(subs[1].rank(), 1);

  // Concurrent collectives on the parent and both children, same user
  // tags, must not cross-match (context isolation).
  for (int i = 0; i < 4; ++i) {
    bed.world.sim.spawn(
        [](Comm& world, Comm& sub) -> sim::Task<void> {
          co_await sub.allreduce(5000, Datatype::kDouble);
          co_await world.barrier();
          co_await sub.bcast(3000, Datatype::kByte, 0);
          co_await world.allreduce(1000, Datatype::kInt);
        }(bed.comms[static_cast<std::size_t>(i)],
          subs[static_cast<std::size_t>(i)]),
        "rank" + std::to_string(i));
  }
  bed.world.sim.run();
  SUCCEED();
}

TEST(MpiFacade, DeterministicCollectives) {
  auto once = [] {
    MpiBed bed(4);
    bed.run_all([](Comm& c) -> sim::Task<void> {
      co_await c.allreduce(100000, Datatype::kDouble);
      co_await c.alltoall(20000, Datatype::kByte);
    });
    return std::pair{bed.world.sim.now(),
                     bed.world.sim.events_processed()};
  };
  EXPECT_EQ(once(), once());
}


class MpiCollectiveSizes
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpiCollectiveSizes, AllreduceAndBcastAtBoundarySizes) {
  MpiBed bed(4);
  const std::uint64_t count = GetParam();
  int done = 0;
  bed.run_all([&done, count](Comm& c) -> sim::Task<void> {
    co_await c.allreduce(count, Datatype::kByte);
    co_await c.bcast(count, Datatype::kByte, 1);
    co_await c.alltoall(count / 4 + 1, Datatype::kByte);
    ++done;
  });
  EXPECT_EQ(done, 4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpiCollectiveSizes,
                         ::testing::Values(1, 3, 1460, 65535, 65537,
                                           262144, 1 << 20));

}  // namespace
}  // namespace pp::mpi
