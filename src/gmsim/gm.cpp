#include "gmsim/gm.h"

#include <algorithm>
#include <cassert>

#include "simcore/tracing.h"

namespace pp::gm {

GmPort::GmPort(sim::Simulator& sim, hw::Node& node, hw::PacketPipe& out,
               hw::PacketPipe& in, GmConfig config, std::string name)
    : sim_(sim),
      node_(node),
      out_(out),
      in_(in),
      config_(config),
      name_(std::move(name)),
      tokens_(sim, static_cast<std::uint64_t>(config.send_tokens)),
      arrivals_(sim) {
  sim_.spawn_daemon(rx_daemon(), name_ + ".rx");
}

void GmPort::trace_instant(const char* what) {
  if (sim::TraceRecorder* t = sim_.tracer()) {
    t->record_instant(name_, what, sim_.now());
  }
}

sim::Task<void> GmPort::send(std::uint64_t bytes, std::uint32_t tag) {
  co_await node_.cpu_cost(config_.api_send_cost);
  trace_instant("doorbell");
  const std::uint32_t mtu = out_.nic().mtu;
  std::uint64_t left = bytes;
  bool first = true;
  while (first || left > 0) {
    first = false;
    const std::uint64_t frag = std::min<std::uint64_t>(left, mtu);
    left -= frag;
    co_await tokens_.acquire(1);
    auto ctx = std::make_shared<Frag>();
    ctx->dst = peer_;
    ctx->tag = tag;
    ctx->msg_bytes = bytes;
    ctx->frag_bytes = frag;
    ctx->last = (left == 0);
    hw::Packet p;
    p.dma_bytes = frag + config_.frag_header;
    p.wire_bytes = frag + config_.frag_header + out_.nic().frame_overhead;
    p.ctx = std::move(ctx);
    out_.inject(std::move(p));
  }
}

void GmPort::complete_message(std::uint32_t tag, std::uint64_t bytes) {
  (void)bytes;
  ++messages_received_;
  auto it = std::find_if(posted_.begin(), posted_.end(), [&](PostedRecv* p) {
    return !p->completed && p->tag == tag;
  });
  if (it != posted_.end()) {
    PostedRecv* pr = *it;
    posted_.erase(it);
    pr->completed = true;
    pr->staged = false;  // landed in the pre-posted buffer: zero-copy
    trace_instant("complete");
    pr->done->set();
  } else {
    trace_instant("unexpected");
    unexpected_.push_back(tag);
    arrivals_.notify_all();
  }
}

sim::Task<void> GmPort::rx_daemon() {
  for (;;) {
    hw::Packet p = co_await in_.delivered().pop();
    auto frag = std::static_pointer_cast<Frag>(p.ctx);
    assert(frag && frag->dst == this && "foreign packet on GM pipe");
    // The fragment has been deposited; return the sender's token.
    peer_->tokens_.release(1);
    std::uint64_t& sofar = partial_[frag->tag];
    sofar += frag->frag_bytes;
    if (frag->last) {
      assert(sofar == frag->msg_bytes && "fragment accounting broke");
      partial_.erase(frag->tag);
      complete_message(frag->tag, frag->msg_bytes);
    }
  }
}

sim::Task<void> GmPort::recv(std::uint64_t bytes, std::uint32_t tag) {
  co_await node_.cpu_cost(config_.api_recv_cost);
  bool staged = false;
  auto uit = std::find(unexpected_.begin(), unexpected_.end(), tag);
  if (uit != unexpected_.end()) {
    unexpected_.erase(uit);
    staged = true;  // had to be parked in a GM bounce buffer
  } else {
    trace_instant("post-recv");
    PostedRecv pr;
    pr.tag = tag;
    pr.done = std::make_unique<sim::Trigger>(sim_);
    posted_.push_back(&pr);
    co_await pr.done->wait();
    staged = pr.staged;
  }
  switch (config_.recv_mode) {
    case RecvMode::kPolling:
    case RecvMode::kHybrid:
      // Hybrid delivers polling-grade latency without pinning the CPU
      // ("provides the same results as the Polling mode but should not
      // burden the CPU as much").
      co_await node_.cpu_cost(config_.polling_detect);
      break;
    case RecvMode::kBlocking:
      co_await sim_.delay(config_.blocking_wakeup);
      co_await node_.cpu_cost(node_.config().wakeup_cost);
      break;
  }
  if (staged) {
    staged_bytes_ += bytes;
    trace_instant("staging-copy");
    co_await node_.staging_copy(bytes);
  }
}

GmFabric::GmFabric(hw::Cluster& cluster, hw::Node& a, hw::Node& b,
                   const hw::NicConfig& nic, const hw::LinkConfig& link,
                   GmConfig config)
    : duplex_(cluster.connect(a, b, nic, link)) {
  port_a_ = std::make_unique<GmPort>(cluster.simulator(), a, duplex_.forward,
                                     duplex_.backward, config, "gm.a");
  port_b_ = std::make_unique<GmPort>(cluster.simulator(), b,
                                     duplex_.backward, duplex_.forward,
                                     config, "gm.b");
  port_a_->peer_ = port_b_.get();
  port_b_->peer_ = port_a_.get();
}

}  // namespace pp::gm
