#include "gmsim/gm.h"

#include <algorithm>
#include <cassert>

#include "simcore/tracing.h"

namespace pp::gm {

GmPort::GmPort(sim::Simulator& sim, hw::Node& node, hw::PacketPipe& out,
               hw::PacketPipe& in, GmConfig config, std::string name)
    : sim_(sim),
      node_(node),
      out_(out),
      in_(in),
      config_(config),
      name_(std::move(name)),
      tokens_(sim, static_cast<std::uint64_t>(config.send_tokens)),
      arrivals_(sim),
      epoch_(node.power_epoch()) {
  // Delivery-oracle stream: one directed channel per sending port. The
  // auditor must be attached before the fabric is built (see
  // Simulator::set_auditor); untagged messages stay stream 0.
  if (audit::Auditor* aud = sim_.auditor()) {
    audit_stream_ = aud->register_stream(name_);
  }
  sim_.spawn_daemon(rx_daemon(), name_ + ".rx");
  // Crash/restart hooks; a run that never crashes only pays the push.
  node_.add_power_listener([this](hw::PowerEvent e) {
    if (e == hw::PowerEvent::kCrash) {
      on_node_crash();
    } else {
      on_node_restart();
    }
  });
}

void GmPort::on_node_crash() {
  // The LANai's SRAM state dies with the host: partially-assembled
  // messages and staged-but-unconsumed arrivals are gone. Senders whose
  // messages were parked here must resume replaying them.
  trace_instant("port-crash");
  for (const UnexpectedMsg& u : unexpected_) {
    if (peer_) peer_->on_unstaged(u.msg_seq);
  }
  unexpected_.clear();
  partial_.clear();
  // posted_ survives: the library re-registers its pre-posted receive
  // buffers at restart (counted below). Send tokens survive too — every
  // in-flight fragment returns its token through the pipe drop hooks.
}

void GmPort::on_node_restart() {
  // Re-register the port under the node's new power epoch: fragments
  // stamped with the old epoch are rejected on arrival from now on.
  epoch_ = node_.power_epoch();
  reposts_ += posted_.size();
  trace_instant("port-restart");
}

void GmPort::on_staged(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it != pending_.end()) it->second.staged = true;
}

void GmPort::on_unstaged(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it == pending_.end() || !it->second.staged) return;
  it->second.staged = false;
  it->second.timeout = config_.delivery_timeout;  // fresh situation
  arm_delivery_watchdog(msg_seq);
}

void GmPort::fail_pair(const char* reason) {
  GmPort* const ports[2] = {this, peer_};
  for (GmPort* p : ports) {
    if (p == nullptr || p->failed_) continue;
    p->failed_ = true;
    p->fail_reason_ = p->name_ + ": " + reason;
    p->trace_instant("port-failed");
    // Wake everything parked on this port: senders blocked on tokens get
    // a poisoned grant, posted receives fire their triggers; both re-check
    // failed_ and raise DeliveryFailed.
    p->tokens_.release(1ull << 32);
    for (PostedRecv* pr : p->posted_) pr->done->set();
    p->posted_.clear();
    p->arrivals_.notify_all();
  }
}

void GmPort::trace_instant(const char* what) {
  if (sim::TraceRecorder* t = sim_.tracer()) {
    t->record_instant(name_, what, sim_.now());
  }
}

sim::Task<void> GmPort::send(std::uint64_t bytes, std::uint32_t tag) {
  if (failed_) throw DeliveryFailed(fail_reason_);
  co_await node_.cpu_cost(config_.api_send_cost);
  trace_instant("doorbell");
  const std::uint64_t seq = next_msg_seq_++;
  audit::MsgTag atag;
  if (audit::Auditor* aud = sim_.auditor()) {
    atag = aud->on_inject(audit_stream_, bytes);
  }
  if (config_.delivery_timeout > 0) {
    // Each new message starts from the BASE timeout: watchdog backoff is
    // per-message state, never inherited from an earlier message's bad
    // luck.
    pending_[seq] =
        PendingDelivery{bytes, tag, 0, config_.delivery_timeout, false, atag};
  }
  co_await inject_fragments(seq, tag, bytes, 0, atag);
  if (failed_) throw DeliveryFailed(fail_reason_);
  arm_delivery_watchdog(seq);
}

sim::Task<void> GmPort::inject_fragments(std::uint64_t msg_seq,
                                         std::uint32_t tag,
                                         std::uint64_t bytes,
                                         std::uint32_t attempt,
                                         const audit::MsgTag& atag) {
  const std::uint32_t mtu = out_.nic().mtu;
  // One arena descriptor per message attempt, shared by every fragment
  // (a refcounted view, not a clone): the per-fragment byte count is
  // recomputed on the receive side from the frame's own dma_bytes.
  sim::PacketRef desc = sim_.packet_arena().make<Frag>();
  Frag* f = desc.get<Frag>();
  f->dst = peer_;
  f->tag = tag;
  f->msg_seq = msg_seq;
  f->msg_bytes = bytes;
  f->attempt = attempt;
  f->dst_epoch = peer_ != nullptr ? peer_->epoch_ : 0;
  f->audit = atag;
  // If fault injection discards a fragment anywhere in the pipe, the
  // send token it holds must come home or the port slowly strangles
  // itself (and, with every token lost, deadlocks). The hook lives once
  // in the shared descriptor and fires once per dropped fragment.
  std::weak_ptr<char> guard = alive_;
  desc.set_drop([this, guard] {
    if (guard.expired()) return;
    tokens_.release(1);
    ++frags_lost_;
    trace_instant("frag-drop");
  });
  std::uint64_t left = bytes;
  bool first = true;
  while (first || left > 0) {
    first = false;
    const std::uint64_t frag = std::min<std::uint64_t>(left, mtu);
    left -= frag;
    co_await tokens_.acquire(1);
    if (failed_) co_return;  // poisoned grant from fail_pair()
    hw::Packet p;
    p.dma_bytes = frag + config_.frag_header;
    p.wire_bytes = frag + config_.frag_header + out_.nic().frame_overhead;
    p.desc = desc;
    p.fire_drop = true;  // every fragment holds one send token
    out_.inject(std::move(p));
  }
}

sim::Task<void> GmPort::retry_message(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it == pending_.end()) co_return;  // delivered while we were queued
  const PendingDelivery p = it->second;
  co_await inject_fragments(msg_seq, p.tag, p.bytes, p.attempt, p.audit);
  arm_delivery_watchdog(msg_seq);
}

void GmPort::arm_delivery_watchdog(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it == pending_.end()) return;  // delivered (or watchdog disabled)
  const std::uint32_t attempt = it->second.attempt;
  std::weak_ptr<char> guard = alive_;
  sim_.call_after(it->second.timeout, [this, guard, msg_seq, attempt] {
    if (guard.expired() || failed_) return;
    auto pit = pending_.find(msg_seq);
    if (pit == pending_.end() || pit->second.attempt != attempt) return;
    // Parked in the peer's unexpected queue: a slow consumer is not a
    // delivery failure. Stand down; a receiver crash re-arms us.
    if (pit->second.staged) return;
    if (config_.max_delivery_attempts > 0 &&
        pit->second.attempt + 1 >= config_.max_delivery_attempts) {
      fail_pair("delivery-attempts-exhausted");
      return;
    }
    // No completion within the timeout: the whole message goes again as
    // a new attempt, with the interval backed off up to the cap.
    ++delivery_failures_;
    trace_instant("delivery-retry");
    pit->second.attempt += 1;
    pit->second.timeout =
        std::min(pit->second.timeout * 2, config_.delivery_timeout_max);
    sim_.spawn(retry_message(msg_seq), name_ + ".retry");
  });
}

void GmPort::prune_partials() {
  // Completed markers are kept so late duplicate fragments of a delivered
  // message cannot re-complete it; bound their number so long streaming
  // runs do not accumulate one entry per message forever.
  if (partial_.size() <= 4096) return;
  for (auto it = partial_.begin();
       it != partial_.end() && partial_.size() > 2048;) {
    if (it->second.done) {
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

void GmPort::complete_message(std::uint32_t tag, std::uint64_t bytes,
                              std::uint64_t msg_seq,
                              const audit::MsgTag& atag) {
  ++messages_received_;
  auto it = std::find_if(posted_.begin(), posted_.end(), [&](PostedRecv* p) {
    return !p->completed && p->tag == tag;
  });
  if (it != posted_.end()) {
    PostedRecv* pr = *it;
    posted_.erase(it);
    pr->completed = true;
    pr->staged = false;  // landed in the pre-posted buffer: zero-copy
    trace_instant("complete");
    // Consumption point (pre-posted buffer): the oracle verifies
    // intact/exactly-once/FIFO here. A completion into a posted buffer
    // on an already-failed pair is a teardown violation.
    if (audit::Auditor* aud = sim_.auditor()) {
      aud->on_deliver(atag, bytes, /*after_teardown=*/failed_);
    }
    if (peer_) peer_->on_delivered(msg_seq);
    pr->done->set();
  } else {
    trace_instant("unexpected");
    unexpected_.push_back(UnexpectedMsg{tag, msg_seq, bytes, atag});
    // Staged, not consumed: the sender's watchdog stands down but keeps
    // the message replayable should this node crash before recv(). The
    // oracle deliberately does NOT count staging as delivery — a crash
    // may wipe this queue and the replay is correct, not a duplicate.
    if (peer_) peer_->on_staged(msg_seq);
    arrivals_.notify_all();
  }
}

sim::Task<void> GmPort::rx_daemon() {
  for (;;) {
    hw::Packet p = co_await in_.delivered().pop();
    assert(p.desc && "foreign packet on GM pipe");
    const Frag* frag = p.desc.get<Frag>();
    assert(frag->dst == this && "foreign packet on GM pipe");
    if (p.injected_dup) {
      // NIC-level dedup: an injected duplicate never held a send token
      // and must not touch protocol state.
      trace_instant("dup-filtered");
      continue;
    }
    // The fragment has been deposited; return the sender's token.
    peer_->tokens_.release(1);
    if (frag->dst_epoch != epoch_ && !config_.unsafe_skip_epoch_fence) {
      // Addressed to a previous power epoch of this port: the state it
      // belonged to died with the node. The token already went home; the
      // sender's watchdog replays the message under the current epoch.
      ++stale_epoch_drops_;
      trace_instant("stale-epoch");
      continue;
    }
    if (p.corrupted) {
      // CRC failure after the DMA: the fragment is discarded; the message
      // completes via the sender's delivery watchdog.
      trace_instant("crc-drop");
      continue;
    }
    PartialMsg& pm = partial_[frag->msg_seq];
    if (pm.done || frag->attempt < pm.attempt) continue;  // stale duplicate
    if (frag->attempt > pm.attempt) {
      // A retry superseded a partially-arrived attempt; start over.
      pm.attempt = frag->attempt;
      pm.sofar = 0;
    }
    // Fencing/CRC oracle: this fragment is being ACCEPTED into a partial
    // message. With the rejection ladder intact neither condition can
    // hold; an epoch-fence or checksum bug upstream trips it.
    if (audit::Auditor* aud = sim_.auditor()) {
      aud->on_accept_fragment(frag->audit, frag->dst_epoch, epoch_,
                              p.corrupted);
    }
    pm.sofar += p.dma_bytes - config_.frag_header;
    if (pm.sofar == frag->msg_bytes) {
      if (config_.delivery_timeout > 0) {
        pm.done = true;
        prune_partials();
      } else {
        partial_.erase(frag->msg_seq);
      }
      complete_message(frag->tag, frag->msg_bytes, frag->msg_seq,
                       frag->audit);
    }
  }
}

sim::Task<void> GmPort::recv(std::uint64_t bytes, std::uint32_t tag) {
  if (failed_) throw DeliveryFailed(fail_reason_);
  co_await node_.cpu_cost(config_.api_recv_cost);
  bool staged = false;
  auto uit =
      std::find_if(unexpected_.begin(), unexpected_.end(),
                   [&](const UnexpectedMsg& u) { return u.tag == tag; });
  if (uit != unexpected_.end()) {
    // Now the message is truly consumed: the sender may forget it.
    if (audit::Auditor* aud = sim_.auditor()) {
      aud->on_deliver(uit->audit, uit->bytes, /*after_teardown=*/failed_);
    }
    if (peer_) peer_->on_delivered(uit->msg_seq);
    unexpected_.erase(uit);
    staged = true;  // had to be parked in a GM bounce buffer
  } else {
    trace_instant("post-recv");
    PostedRecv pr;
    pr.tag = tag;
    pr.done = std::make_unique<sim::Trigger>(sim_);
    posted_.push_back(&pr);
    co_await pr.done->wait();
    if (failed_) throw DeliveryFailed(fail_reason_);
    staged = pr.staged;
  }
  switch (config_.recv_mode) {
    case RecvMode::kPolling:
    case RecvMode::kHybrid:
      // Hybrid delivers polling-grade latency without pinning the CPU
      // ("provides the same results as the Polling mode but should not
      // burden the CPU as much").
      co_await node_.cpu_cost(config_.polling_detect);
      break;
    case RecvMode::kBlocking:
      co_await sim_.delay(config_.blocking_wakeup);
      co_await node_.cpu_cost(node_.config().wakeup_cost);
      break;
  }
  if (staged) {
    staged_bytes_ += bytes;
    trace_instant("staging-copy");
    co_await node_.staging_copy(bytes);
  }
}

GmFabric::GmFabric(hw::Cluster& cluster, hw::Node& a, hw::Node& b,
                   const hw::NicConfig& nic, const hw::LinkConfig& link,
                   GmConfig config)
    : duplex_(cluster.connect(a, b, nic, link)) {
  port_a_ = std::make_unique<GmPort>(cluster.simulator(), a, duplex_.forward,
                                     duplex_.backward, config, "gm.a");
  port_b_ = std::make_unique<GmPort>(cluster.simulator(), b,
                                     duplex_.backward, duplex_.forward,
                                     config, "gm.b");
  port_a_->peer_ = port_b_.get();
  port_b_->peer_ = port_a_.get();
}

}  // namespace pp::gm
