#include "gmsim/gm.h"

#include <algorithm>
#include <cassert>

#include "simcore/tracing.h"

namespace pp::gm {

GmPort::GmPort(sim::Simulator& sim, hw::Node& node, hw::PacketPipe& out,
               hw::PacketPipe& in, GmConfig config, std::string name)
    : sim_(sim),
      node_(node),
      out_(out),
      in_(in),
      config_(config),
      name_(std::move(name)),
      tokens_(sim, static_cast<std::uint64_t>(config.send_tokens)),
      arrivals_(sim) {
  sim_.spawn_daemon(rx_daemon(), name_ + ".rx");
}

void GmPort::trace_instant(const char* what) {
  if (sim::TraceRecorder* t = sim_.tracer()) {
    t->record_instant(name_, what, sim_.now());
  }
}

sim::Task<void> GmPort::send(std::uint64_t bytes, std::uint32_t tag) {
  co_await node_.cpu_cost(config_.api_send_cost);
  trace_instant("doorbell");
  const std::uint64_t seq = next_msg_seq_++;
  if (config_.delivery_timeout > 0) {
    pending_[seq] =
        PendingDelivery{bytes, tag, 0, config_.delivery_timeout};
  }
  co_await inject_fragments(seq, tag, bytes, 0);
  arm_delivery_watchdog(seq);
}

sim::Task<void> GmPort::inject_fragments(std::uint64_t msg_seq,
                                         std::uint32_t tag,
                                         std::uint64_t bytes,
                                         std::uint32_t attempt) {
  const std::uint32_t mtu = out_.nic().mtu;
  // One arena descriptor per message attempt, shared by every fragment
  // (a refcounted view, not a clone): the per-fragment byte count is
  // recomputed on the receive side from the frame's own dma_bytes.
  sim::PacketRef desc = sim_.packet_arena().make<Frag>();
  Frag* f = desc.get<Frag>();
  f->dst = peer_;
  f->tag = tag;
  f->msg_seq = msg_seq;
  f->msg_bytes = bytes;
  f->attempt = attempt;
  // If fault injection discards a fragment anywhere in the pipe, the
  // send token it holds must come home or the port slowly strangles
  // itself (and, with every token lost, deadlocks). The hook lives once
  // in the shared descriptor and fires once per dropped fragment.
  std::weak_ptr<char> guard = alive_;
  desc.set_drop([this, guard] {
    if (guard.expired()) return;
    tokens_.release(1);
    ++frags_lost_;
    trace_instant("frag-drop");
  });
  std::uint64_t left = bytes;
  bool first = true;
  while (first || left > 0) {
    first = false;
    const std::uint64_t frag = std::min<std::uint64_t>(left, mtu);
    left -= frag;
    co_await tokens_.acquire(1);
    hw::Packet p;
    p.dma_bytes = frag + config_.frag_header;
    p.wire_bytes = frag + config_.frag_header + out_.nic().frame_overhead;
    p.desc = desc;
    p.fire_drop = true;  // every fragment holds one send token
    out_.inject(std::move(p));
  }
}

sim::Task<void> GmPort::retry_message(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it == pending_.end()) co_return;  // delivered while we were queued
  const PendingDelivery p = it->second;
  co_await inject_fragments(msg_seq, p.tag, p.bytes, p.attempt);
  arm_delivery_watchdog(msg_seq);
}

void GmPort::arm_delivery_watchdog(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it == pending_.end()) return;  // delivered (or watchdog disabled)
  const std::uint32_t attempt = it->second.attempt;
  std::weak_ptr<char> guard = alive_;
  sim_.call_after(it->second.timeout, [this, guard, msg_seq, attempt] {
    if (guard.expired()) return;
    auto pit = pending_.find(msg_seq);
    if (pit == pending_.end() || pit->second.attempt != attempt) return;
    // No completion within the timeout: the whole message goes again as
    // a new attempt, with the interval backed off up to the cap.
    ++delivery_failures_;
    trace_instant("delivery-retry");
    pit->second.attempt += 1;
    pit->second.timeout =
        std::min(pit->second.timeout * 2, config_.delivery_timeout_max);
    sim_.spawn(retry_message(msg_seq), name_ + ".retry");
  });
}

void GmPort::prune_partials() {
  // Completed markers are kept so late duplicate fragments of a delivered
  // message cannot re-complete it; bound their number so long streaming
  // runs do not accumulate one entry per message forever.
  if (partial_.size() <= 4096) return;
  for (auto it = partial_.begin();
       it != partial_.end() && partial_.size() > 2048;) {
    if (it->second.done) {
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

void GmPort::complete_message(std::uint32_t tag, std::uint64_t bytes) {
  (void)bytes;
  ++messages_received_;
  auto it = std::find_if(posted_.begin(), posted_.end(), [&](PostedRecv* p) {
    return !p->completed && p->tag == tag;
  });
  if (it != posted_.end()) {
    PostedRecv* pr = *it;
    posted_.erase(it);
    pr->completed = true;
    pr->staged = false;  // landed in the pre-posted buffer: zero-copy
    trace_instant("complete");
    pr->done->set();
  } else {
    trace_instant("unexpected");
    unexpected_.push_back(tag);
    arrivals_.notify_all();
  }
}

sim::Task<void> GmPort::rx_daemon() {
  for (;;) {
    hw::Packet p = co_await in_.delivered().pop();
    assert(p.desc && "foreign packet on GM pipe");
    const Frag* frag = p.desc.get<Frag>();
    assert(frag->dst == this && "foreign packet on GM pipe");
    if (p.injected_dup) {
      // NIC-level dedup: an injected duplicate never held a send token
      // and must not touch protocol state.
      trace_instant("dup-filtered");
      continue;
    }
    // The fragment has been deposited; return the sender's token.
    peer_->tokens_.release(1);
    if (p.corrupted) {
      // CRC failure after the DMA: the fragment is discarded; the message
      // completes via the sender's delivery watchdog.
      trace_instant("crc-drop");
      continue;
    }
    PartialMsg& pm = partial_[frag->msg_seq];
    if (pm.done || frag->attempt < pm.attempt) continue;  // stale duplicate
    if (frag->attempt > pm.attempt) {
      // A retry superseded a partially-arrived attempt; start over.
      pm.attempt = frag->attempt;
      pm.sofar = 0;
    }
    pm.sofar += p.dma_bytes - config_.frag_header;
    if (pm.sofar == frag->msg_bytes) {
      if (config_.delivery_timeout > 0) {
        pm.done = true;
        prune_partials();
      } else {
        partial_.erase(frag->msg_seq);
      }
      if (peer_) peer_->on_delivered(frag->msg_seq);
      complete_message(frag->tag, frag->msg_bytes);
    }
  }
}

sim::Task<void> GmPort::recv(std::uint64_t bytes, std::uint32_t tag) {
  co_await node_.cpu_cost(config_.api_recv_cost);
  bool staged = false;
  auto uit = std::find(unexpected_.begin(), unexpected_.end(), tag);
  if (uit != unexpected_.end()) {
    unexpected_.erase(uit);
    staged = true;  // had to be parked in a GM bounce buffer
  } else {
    trace_instant("post-recv");
    PostedRecv pr;
    pr.tag = tag;
    pr.done = std::make_unique<sim::Trigger>(sim_);
    posted_.push_back(&pr);
    co_await pr.done->wait();
    staged = pr.staged;
  }
  switch (config_.recv_mode) {
    case RecvMode::kPolling:
    case RecvMode::kHybrid:
      // Hybrid delivers polling-grade latency without pinning the CPU
      // ("provides the same results as the Polling mode but should not
      // burden the CPU as much").
      co_await node_.cpu_cost(config_.polling_detect);
      break;
    case RecvMode::kBlocking:
      co_await sim_.delay(config_.blocking_wakeup);
      co_await node_.cpu_cost(node_.config().wakeup_cost);
      break;
  }
  if (staged) {
    staged_bytes_ += bytes;
    trace_instant("staging-copy");
    co_await node_.staging_copy(bytes);
  }
}

GmFabric::GmFabric(hw::Cluster& cluster, hw::Node& a, hw::Node& b,
                   const hw::NicConfig& nic, const hw::LinkConfig& link,
                   GmConfig config)
    : duplex_(cluster.connect(a, b, nic, link)) {
  port_a_ = std::make_unique<GmPort>(cluster.simulator(), a, duplex_.forward,
                                     duplex_.backward, config, "gm.a");
  port_b_ = std::make_unique<GmPort>(cluster.simulator(), b,
                                     duplex_.backward, duplex_.forward,
                                     config, "gm.b");
  port_a_->peer_ = port_b_.get();
  port_b_->peer_ = port_a_.get();
}

}  // namespace pp::gm
