// GM: Myricom's OS-bypass message layer for Myrinet (paper §5).
//
// Modelled mechanisms:
//  - user-level send/receive: no kernel protocol cost, no syscalls; the
//    LANai NIC processor does the per-packet work;
//  - message fragmentation into large fabric packets with link-level
//    backpressure (send tokens);
//  - receive modes: Polling (16 us latency in the paper), Blocking
//    (36 us: sleep + interrupt + wakeup), Hybrid (polling results at
//    polling cost without burning the CPU — "should be used in general");
//  - messages land in pre-posted receive buffers; unmatched arrivals are
//    staged and cost a copy when finally matched.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "audit/audit.h"
#include "simcore/simulator.h"
#include "simcore/sync.h"
#include "simcore/task.h"
#include "simhw/cluster.h"
#include "simhw/node.h"
#include "simhw/pipe.h"

namespace pp::gm {

enum class RecvMode { kPolling, kBlocking, kHybrid };

struct GmConfig {
  RecvMode recv_mode = RecvMode::kPolling;
  /// Send tokens: fragments allowed in flight before backpressure.
  int send_tokens = 16;
  /// gm_send()/gm_provide_receive_buffer() + completion-queue handling.
  sim::SimTime api_send_cost = sim::microseconds(6.5);
  sim::SimTime api_recv_cost = sim::microseconds(6.5);
  /// Extra completion-detection time per message by receive mode.
  sim::SimTime polling_detect = sim::microseconds(2.0);
  sim::SimTime blocking_wakeup = sim::microseconds(20.0);
  /// GM packet header bytes per fragment on the wire.
  std::uint32_t frag_header = 8;
  /// Delivery watchdog: when nonzero, a sender retransmits a message
  /// whose remote delivery has not completed within this timeout
  /// (doubling per retry up to delivery_timeout_max). 0 disables — the
  /// right setting for the paper's lossless fabrics; enable it whenever a
  /// FaultPlan can drop fragments, or a lost fragment deadlocks the port.
  sim::SimTime delivery_timeout = 0;
  sim::SimTime delivery_timeout_max = sim::milliseconds(10.0);
  /// Delivery attempts (original send + watchdog retries) per message
  /// before the port pair is declared failed and blocked send()/recv()
  /// calls raise DeliveryFailed. 0 = retry forever — the right setting
  /// when the peer is guaranteed to come back; chaos/resilience runs set
  /// a cap so a permanently dead peer yields a clean `failed` verdict.
  std::uint32_t max_delivery_attempts = 0;
  /// TEST ONLY: disables the receive-side power-epoch fence so fragments
  /// from a dead epoch are accepted — the deliberate protocol bug the
  /// audit oracle (audit/audit.h) must catch. Never set outside tests.
  bool unsafe_skip_epoch_fence = false;
};

/// Raised by send()/recv() once a port pair exhausted
/// `GmConfig::max_delivery_attempts` (e.g. the peer crashed permanently).
/// Derives from sim::ProtocolFailure so sweep executors classify the run
/// `failed` rather than errored or hung.
class DeliveryFailed : public sim::ProtocolFailure {
 public:
  explicit DeliveryFailed(const std::string& what)
      : sim::ProtocolFailure(what) {}
};

/// One GM port (endpoint). Create a connected pair with GmFabric.
class GmPort {
 public:
  GmPort(sim::Simulator& sim, hw::Node& node, hw::PacketPipe& out,
         hw::PacketPipe& in, GmConfig config, std::string name);

  /// gm_send of one tagged message; returns when the NIC has accepted
  /// all fragments (local completion).
  sim::Task<void> send(std::uint64_t bytes, std::uint32_t tag);

  /// Completes when a message with `tag` has fully arrived. If it was
  /// already waiting unmatched, a staging copy is charged.
  sim::Task<void> recv(std::uint64_t bytes, std::uint32_t tag);

  hw::Node& node() { return node_; }
  const GmConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  std::uint64_t messages_received() const { return messages_received_; }

  /// Bytes that landed unmatched and had to go through a GM bounce
  /// buffer (each costs a staging copy on this node).
  std::uint64_t staged_bytes() const { return staged_bytes_; }

  /// Delivery-watchdog retransmissions this port performed (lost
  /// doorbells/completions recovered by timeout).
  std::uint64_t delivery_failures() const { return delivery_failures_; }

  /// Fragments of ours that fault injection discarded (tokens reclaimed).
  std::uint64_t frags_lost() const { return frags_lost_; }

  /// Frames dropped on this port's outbound pipe (all injection causes).
  std::uint64_t wire_drops() const { return out_.packets_dropped(); }

  /// Power epoch this port is registered under (tracks the node's; every
  /// fragment is stamped with the destination's epoch and stale-epoch
  /// arrivals are rejected after their token is returned).
  std::uint32_t epoch() const { return epoch_; }

  /// Pre-posted receive buffers re-registered across restarts.
  std::uint64_t reposts() const { return reposts_; }

  /// Fragments rejected because they were addressed to a previous power
  /// epoch of this port.
  std::uint64_t stale_epoch_drops() const { return stale_epoch_drops_; }

  /// True once the pair exhausted max_delivery_attempts.
  bool failed() const { return failed_; }

 private:
  friend class GmFabric;

  /// Per-message descriptor, one arena slot shared by every fragment of
  /// the attempt (the fragment's own byte count is derived from the
  /// frame's dma_bytes on receive).
  struct Frag {
    GmPort* dst = nullptr;
    std::uint32_t tag = 0;
    std::uint32_t attempt = 0;  ///< 0 = original send, else retry number
    std::uint64_t msg_seq = 0;  ///< per-sender unique message number
    std::uint64_t msg_bytes = 0;
    /// Destination port's power epoch at injection time; the receiver
    /// rejects fragments stamped with a dead epoch (its pre-crash state
    /// is gone, the sender's watchdog replays under the new epoch).
    std::uint32_t dst_epoch = 0;
    /// Delivery-oracle identity (audit/audit.h); stream 0 when no
    /// auditor is attached. Same across every attempt of the message.
    audit::MsgTag audit;
  };

  struct PartialMsg {
    std::uint32_t attempt = 0;
    std::uint64_t sofar = 0;
    bool done = false;  ///< completed; late duplicates must be ignored
  };

  struct PendingDelivery {
    std::uint64_t bytes = 0;
    std::uint32_t tag = 0;
    std::uint32_t attempt = 0;
    sim::SimTime timeout = 0;  ///< next watchdog interval (backed off)
    /// The message reached the peer's unexpected queue but has not been
    /// consumed by recv() yet: the watchdog stands down (a slow consumer
    /// is not a delivery failure), but the entry stays so a receiver
    /// crash can un-stage it and resume replaying.
    bool staged = false;
    audit::MsgTag audit;  ///< replayed verbatim by watchdog retries
  };

  struct PostedRecv {
    std::uint32_t tag = 0;
    bool completed = false;
    bool staged = false;
    std::unique_ptr<sim::Trigger> done;
  };

  /// An arrival staged in the unexpected queue (completed, unmatched).
  struct UnexpectedMsg {
    std::uint32_t tag = 0;
    std::uint64_t msg_seq = 0;
    std::uint64_t bytes = 0;
    audit::MsgTag audit;
  };

  sim::Task<void> rx_daemon();
  void complete_message(std::uint32_t tag, std::uint64_t bytes,
                        std::uint64_t msg_seq, const audit::MsgTag& atag);
  void trace_instant(const char* what);

  /// The token-paced fragment injection loop shared by send() and the
  /// watchdog's retransmissions.
  sim::Task<void> inject_fragments(std::uint64_t msg_seq, std::uint32_t tag,
                                   std::uint64_t bytes, std::uint32_t attempt,
                                   const audit::MsgTag& atag);
  sim::Task<void> retry_message(std::uint64_t msg_seq);
  void arm_delivery_watchdog(std::uint64_t msg_seq);
  /// Peer-side notification that message `msg_seq` was consumed (matched
  /// a posted receive, or recv() drained it from the unexpected queue).
  void on_delivered(std::uint64_t msg_seq) { pending_.erase(msg_seq); }
  /// Peer-side notification that `msg_seq` is parked in the peer's
  /// unexpected queue: stop retrying, but keep the entry replayable.
  void on_staged(std::uint64_t msg_seq);
  /// The peer crashed with `msg_seq` still staged: resume the watchdog.
  void on_unstaged(std::uint64_t msg_seq);
  void fail_pair(const char* reason);
  void on_node_crash();
  void on_node_restart();
  void prune_partials();

  sim::Simulator& sim_;
  hw::Node& node_;
  hw::PacketPipe& out_;
  hw::PacketPipe& in_;
  GmConfig config_;
  std::string name_;

  sim::ByteSemaphore tokens_;
  GmPort* peer_ = nullptr;

  // Send side.
  std::uint32_t audit_stream_ = 0;  ///< delivery-oracle stream (0 = off)
  std::uint64_t next_msg_seq_ = 0;
  std::map<std::uint64_t, PendingDelivery> pending_;  // msg_seq -> watchdog
  std::uint64_t delivery_failures_ = 0;
  std::uint64_t frags_lost_ = 0;

  // Receive side.
  std::map<std::uint64_t, PartialMsg> partial_;  // msg_seq -> progress
  std::deque<PostedRecv*> posted_;
  std::deque<UnexpectedMsg> unexpected_;  // completed, unmatched
  sim::Signal arrivals_;
  std::uint64_t messages_received_ = 0;
  std::uint64_t staged_bytes_ = 0;

  // Crash/restart state.
  std::uint32_t epoch_ = 1;  ///< synced to the node's power epoch
  std::uint64_t reposts_ = 0;
  std::uint64_t stale_epoch_drops_ = 0;
  bool failed_ = false;
  std::string fail_reason_;

  /// Liveness token: watchdog timers and drop callbacks outlive torn-down
  /// ports (sweep jobs destroy fabrics with timers queued), so they hold
  /// only a weak handle and become no-ops once the port is gone.
  std::shared_ptr<char> alive_ = std::make_shared<char>(1);
};

/// Builds a Myrinet link between two nodes and a connected GM port pair.
class GmFabric {
 public:
  GmFabric(hw::Cluster& cluster, hw::Node& a, hw::Node& b,
           const hw::NicConfig& nic, const hw::LinkConfig& link,
           GmConfig config = {});

  GmPort& port_a() { return *port_a_; }
  GmPort& port_b() { return *port_b_; }

 private:
  hw::Cluster::Duplex duplex_;
  std::unique_ptr<GmPort> port_a_;
  std::unique_ptr<GmPort> port_b_;
};

}  // namespace pp::gm
