// Multi-node worlds: rings of N nodes with a library endpoint per rank.
//
// Each neighbouring pair gets its own duplex link (back-to-back cabling,
// as a 2002 budget cluster ring would be wired); every node has one TCP
// stack. Libraries are wired pairwise exactly like the two-node testbed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mp/stream_lib.h"
#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"

namespace pp::mp {

/// N nodes in a ring; rank i talks to (i±1) mod N.
class RingWorld {
 public:
  RingWorld(int nranks, const hw::HostConfig& host,
            const hw::NicConfig& nic, const tcp::Sysctl& sysctl,
            const hw::LinkConfig& link_cfg = hw::presets::back_to_back())
      : cluster(sim) {
    for (int i = 0; i < nranks; ++i) {
      nodes.push_back(&cluster.add_node(host));
      stacks.push_back(std::make_unique<tcp::TcpStack>(*nodes.back(),
                                                       sysctl));
    }
    for (int i = 0; i < nranks; ++i) {
      const int j = (i + 1) % nranks;
      if (nranks == 2 && i == 1) break;  // one link suffices for a pair
      links.push_back(std::make_unique<hw::Cluster::Duplex>(
          cluster.connect(*nodes[i], *nodes[j], nic, link_cfg)));
    }
  }

  int size() const { return static_cast<int>(nodes.size()); }

  /// Builds one StreamLibrary-family endpoint per rank and wires each
  /// neighbouring pair over its ring link.
  template <typename L, typename... Args>
  std::vector<std::unique_ptr<L>> build(Args&&... args) {
    std::vector<std::unique_ptr<L>> libs;
    libs.reserve(nodes.size());
    for (int i = 0; i < size(); ++i) {
      libs.push_back(std::make_unique<L>(sim, i, *nodes[i], args...));
    }
    for (std::size_t l = 0; l < links.size(); ++l) {
      const int i = static_cast<int>(l);
      const int j = (i + 1) % size();
      auto [si, sj] = tcp::connect(*stacks[i], *stacks[j], *links[l],
                                   "ring" + std::to_string(i));
      wire_pair(*libs[i], *libs[j], si, sj);
    }
    return libs;
  }

  sim::Simulator sim;
  hw::Cluster cluster;
  std::vector<hw::Node*> nodes;
  std::vector<std::unique_ptr<tcp::TcpStack>> stacks;
  std::vector<std::unique_ptr<hw::Cluster::Duplex>> links;
};

/// N nodes with a channel between every pair (a switched cluster; each
/// pair gets its own pipes — see DESIGN.md for the approximation). This
/// is what the tree/butterfly collective algorithms need.
class MeshWorld {
 public:
  MeshWorld(int nranks, const hw::HostConfig& host,
            const hw::NicConfig& nic, const tcp::Sysctl& sysctl,
            const hw::LinkConfig& link_cfg = hw::presets::switched())
      : cluster(sim) {
    for (int i = 0; i < nranks; ++i) {
      nodes.push_back(&cluster.add_node(host));
      stacks.push_back(std::make_unique<tcp::TcpStack>(*nodes.back(),
                                                       sysctl));
    }
    for (int i = 0; i < nranks; ++i) {
      for (int j = i + 1; j < nranks; ++j) {
        pair_links.emplace_back(
            i, j,
            std::make_unique<hw::Cluster::Duplex>(
                cluster.connect(*nodes[i], *nodes[j], nic, link_cfg)));
      }
    }
  }

  int size() const { return static_cast<int>(nodes.size()); }

  template <typename L, typename... Args>
  std::vector<std::unique_ptr<L>> build(Args&&... args) {
    std::vector<std::unique_ptr<L>> libs;
    libs.reserve(nodes.size());
    for (int i = 0; i < size(); ++i) {
      libs.push_back(std::make_unique<L>(sim, i, *nodes[i], args...));
    }
    for (auto& [i, j, link] : pair_links) {
      auto [si, sj] = tcp::connect(*stacks[static_cast<std::size_t>(i)],
                                   *stacks[static_cast<std::size_t>(j)],
                                   *link,
                                   "mesh" + std::to_string(i) + "-" +
                                       std::to_string(j));
      wire_pair(*libs[static_cast<std::size_t>(i)],
                *libs[static_cast<std::size_t>(j)], si, sj);
    }
    return libs;
  }

  sim::Simulator sim;
  hw::Cluster cluster;
  std::vector<hw::Node*> nodes;
  std::vector<std::unique_ptr<tcp::TcpStack>> stacks;
  std::vector<std::tuple<int, int, std::unique_ptr<hw::Cluster::Duplex>>>
      pair_links;
};

}  // namespace pp::mp
