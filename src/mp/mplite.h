// MP_Lite 2.3, the authors' lightweight library (paper §3.4, §4.4).
//
// Modelled mechanisms:
//  - SIGIO interrupt-driven progress: data keeps flowing through the TCP
//    buffers at all times (independent progress engine);
//  - socket buffers raised to the system maximum automatically — "the
//    only tuning needed was to increase the maximum socket buffer sizes
//    on the system" (sysctl);
//  - no staging copies, no rendezvous: the curve lies on raw TCP.
#pragma once

#include <memory>
#include <utility>

#include "mp/stream_lib.h"
#include "mp/testbed.h"

namespace pp::mp {

class MpLite final : public StreamLibrary {
 public:
  MpLite(sim::Simulator& sim, int rank, hw::Node& node)
      : StreamLibrary(sim, rank, node, make_config()) {}

  static StreamConfig make_config() {
    StreamConfig c;
    c.name = "MP_Lite";
    c.header_bytes = 24;
    c.eager_max = UINT64_MAX;
    c.buffer_policy = BufferPolicy::kSysctlMax;
    c.progress = ProgressMode::kIndependent;  // the SIGIO handler
    c.per_call_cost = sim::microseconds(0.3);
    return c;
  }

  static std::pair<std::unique_ptr<MpLite>, std::unique_ptr<MpLite>>
  create_pair(PairBed& bed) {
    auto a = std::make_unique<MpLite>(bed.sim, 0, bed.node_a);
    auto b = std::make_unique<MpLite>(bed.sim, 1, bed.node_b);
    auto [sa, sb] = bed.socket_pair("mplite");
    wire_pair(*a, *b, std::move(sa), std::move(sb));
    return {std::move(a), std::move(b)};
  }
};

}  // namespace pp::mp
