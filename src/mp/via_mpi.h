// MPI implementations over VIA: MVICH, MP_Lite/VIA and MPI/Pro/VIA
// (paper §6.1-6.2).
//
// The VIA layer itself provides the RDMA threshold (the 16 kB dip in
// Figure 5); the libraries differ in:
//  - MVICH: needs VIADEV_RPUT_SUPPORT for direct RDMA puts — without it
//    every transfer is staged through bounce buffers on both ends
//    ("it is vital to configure MVICH using DVIADEV_RPUT_SUPPORT");
//    via_long and VIADEV_SPIN_COUNT are exposed as options;
//  - MP_Lite/VIA: thin, nothing extra;
//  - MPI/Pro/VIA: the progress thread costs a handoff per message end —
//    the paper's 42 us latency vs MVICH's and MP_Lite's 10 us.
#pragma once

#include <cassert>
#include <memory>
#include <string>

#include "mp/api.h"
#include "netpipe/transport.h"
#include "viasim/via.h"

namespace pp::mp {

struct ViaMpiOptions {
  std::string name = "MVICH";
  /// MVICH: direct RDMA puts enabled (VIADEV_RPUT_SUPPORT). Without it,
  /// data is staged through bounce buffers: one extra copy on each end.
  bool rput_support = true;
  sim::SimTime thread_handoff = 0;
  sim::SimTime per_call_cost = sim::microseconds(0.5);
};

class ViaMpi final : public Library {
 public:
  ViaMpi(via::ViEndpoint& end, int rank, ViaMpiOptions opt = {})
      : end_(end), rank_(rank), opt_(opt) {}

  sim::Task<void> send(int dst, std::uint64_t bytes,
                       std::uint32_t tag) override {
    (void)dst;
    co_await end_.node().cpu_cost(opt_.per_call_cost);
    if (opt_.thread_handoff > 0) {
      co_await end_.node().simulator().delay(opt_.thread_handoff);
    }
    if (!opt_.rput_support) {
      staged_bytes_ += bytes;
      co_await end_.node().staging_copy(bytes);  // into the bounce buffer
    }
    co_await end_.send(bytes, tag);
  }

  sim::Task<void> recv(int src, std::uint64_t bytes,
                       std::uint32_t tag) override {
    (void)src;
    co_await end_.node().cpu_cost(opt_.per_call_cost);
    if (opt_.thread_handoff > 0) {
      co_await end_.node().simulator().delay(opt_.thread_handoff);
    }
    co_await end_.recv(bytes, tag);
    if (!opt_.rput_support) {
      staged_bytes_ += bytes;
      co_await end_.node().staging_copy(bytes);  // out of the bounce buffer
    }
  }

  hw::Node& node() { return end_.node(); }
  int rank() const override { return rank_; }
  std::string name() const override { return opt_.name; }

  netpipe::ProtocolCounters protocol_counters() const override {
    netpipe::ProtocolCounters c;
    c.rdma_transfers = end_.rdma_transfers();
    // Library bounce-buffer copies plus VIA-level unexpected staging.
    c.staged_bytes = staged_bytes_ + end_.staged_bytes();
    c.delivery_failures = end_.delivery_failures();
    c.wire_drops = end_.wire_drops();
    return c;
  }

  static ViaMpiOptions mvich(bool rput = true) {
    ViaMpiOptions o;
    o.name = rput ? "MVICH" : "MVICH (no RPUT)";
    o.rput_support = rput;
    return o;
  }
  static ViaMpiOptions mplite_via() {
    ViaMpiOptions o;
    o.name = "MP_Lite/VIA";
    o.per_call_cost = sim::microseconds(0.4);
    return o;
  }
  static ViaMpiOptions mpipro_via() {
    ViaMpiOptions o;
    o.name = "MPI/Pro/VIA";
    o.thread_handoff = sim::microseconds(30.0);
    return o;
  }

 private:
  via::ViEndpoint& end_;
  int rank_;
  ViaMpiOptions opt_;
  std::uint64_t staged_bytes_ = 0;
};

/// NetPIPE module for the raw VIA verbs.
class ViaTransport final : public netpipe::Transport {
 public:
  explicit ViaTransport(via::ViEndpoint& end, std::string name = "raw VIA")
      : end_(end), name_(std::move(name)) {}

  sim::Task<void> send(std::uint64_t bytes) override {
    return end_.send(bytes, 1);
  }
  sim::Task<void> recv(std::uint64_t bytes) override {
    return end_.recv(bytes, 1);
  }
  hw::Node& node() { return end_.node(); }
  std::string name() const override { return name_; }
  netpipe::ProtocolCounters counters() const override {
    netpipe::ProtocolCounters c;
    c.rdma_transfers = end_.rdma_transfers();
    c.staged_bytes = end_.staged_bytes();
    c.delivery_failures = end_.delivery_failures();
    c.wire_drops = end_.wire_drops();
    return c;
  }

 private:
  via::ViEndpoint& end_;
  std::string name_;
};

}  // namespace pp::mp
