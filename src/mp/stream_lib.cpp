#include "mp/stream_lib.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "netpipe/modules.h"
#include "simcore/tracing.h"

namespace pp::mp {

// ---------------------------------------------------------------------------
// Library defaults (nonblocking ops as concurrent simulated tasks)
// ---------------------------------------------------------------------------

Request Library::isend(int dst, std::uint64_t bytes, std::uint32_t tag) {
  return Request(
      node().simulator().spawn(send(dst, bytes, tag), name() + ".isend"));
}

Request Library::irecv(int src, std::uint64_t bytes, std::uint32_t tag) {
  return Request(
      node().simulator().spawn(recv(src, bytes, tag), name() + ".irecv"));
}

// ---------------------------------------------------------------------------
// Channel plumbing
// ---------------------------------------------------------------------------

void StreamLibrary::bind_peer(int peer_rank, tcp::Socket socket) {
  PeerChannel& ch = peers_[peer_rank];
  ch.peer_rank = peer_rank;
  ch.sock = std::move(socket);
  ch.reader_changed = std::make_unique<sim::Signal>(sim_);
  ch.tx_lock = std::make_unique<sim::ByteSemaphore>(sim_, 1);
  ch.last_epoch = ch.sock.connection_epoch();

  switch (config_.buffer_policy) {
    case BufferPolicy::kOsDefault:
      break;
    case BufferPolicy::kFixed:
      ch.sock.set_send_buffer(config_.fixed_buffer_bytes);
      ch.sock.set_recv_buffer(config_.fixed_buffer_bytes);
      break;
    case BufferPolicy::kSysctlMax:
      // setsockopt clamps to the sysctl caps, so asking for "everything"
      // is exactly MP_Lite's behaviour.
      ch.sock.set_send_buffer(UINT32_MAX);
      ch.sock.set_recv_buffer(UINT32_MAX);
      break;
  }

  if (config_.zero_copy_staging) ch.sock.enable_payload_capture();

  if (audit::Auditor* aud = sim_.auditor()) {
    ch.audit_out = aud->register_stream(config_.name + "@" +
                                        std::to_string(rank_) + "->" +
                                        std::to_string(peer_rank));
  }

  if (config_.progress == ProgressMode::kIndependent) {
    ch.reader_active = true;  // the progress engine owns the stream
    sim_.spawn_daemon(progress_daemon(ch),
                      config_.name + ".progress@" + std::to_string(rank_));
  }
}

StreamLibrary::PeerChannel& StreamLibrary::channel(int peer) {
  auto it = peers_.find(peer);
  assert(it != peers_.end() && "no channel bound to that rank");
  return it->second;
}

netpipe::ProtocolCounters StreamLibrary::protocol_counters() const {
  netpipe::ProtocolCounters c;
  c.rendezvous_handshakes = rendezvous_count_;
  c.rendezvous_retries = rendezvous_retries_;
  c.staged_bytes = staged_bytes_;
  for (const auto& [rank, ch] : peers_) {
    if (ch.sock) c += netpipe::tcp_socket_counters(ch.sock);
  }
  return c;
}

void StreamLibrary::trace_instant(const char* what) {
  if (sim::TraceRecorder* t = sim_.tracer()) {
    t->record_instant(config_.name + "@" + std::to_string(rank_), what,
                      sim_.now());
  }
}

std::uint64_t StreamLibrary::payload_with_fragment_overhead(
    std::uint64_t bytes) const {
  if (config_.fragment_payload == 0 || bytes == 0) return bytes;
  const std::uint64_t frags =
      (bytes + config_.fragment_payload - 1) / config_.fragment_payload;
  return bytes + frags * config_.fragment_header;
}

sim::Task<void> StreamLibrary::send_wire(PeerChannel& ch, WireMeta meta,
                                         std::uint64_t payload_bytes) {
  ch.meta_out->push_back(meta);
  if (config_.zero_copy_staging && meta.kind == Kind::kData &&
      payload_bytes > 0) {
    // Attach an arena payload buffer covering this data message; the
    // peer's socket captures a refcounted view of it, letting the
    // receive side skip the staging memcpy.
    co_await ch.sock.send(config_.header_bytes + payload_bytes,
                          ch.sock.make_payload(payload_bytes));
  } else {
    co_await ch.sock.send(config_.header_bytes + payload_bytes);
  }
}

sim::Task<void> StreamLibrary::send_locked(PeerChannel& ch, WireMeta meta,
                                           std::uint64_t payload_bytes) {
  co_await ch.tx_lock->acquire(1);
  try {
    co_await send_wire(ch, meta, payload_bytes);
  } catch (const sim::ProtocolFailure&) {
    ch.tx_lock->release(1);
    fail_channel(ch);
    throw;
  }
  ch.tx_lock->release(1);
}

// ---------------------------------------------------------------------------
// Crash fencing
// ---------------------------------------------------------------------------

void StreamLibrary::refence_channel(PeerChannel& ch) {
  const std::uint32_t ep = ch.sock.connection_epoch();
  if (ep == ch.last_epoch) return;
  ch.last_epoch = ep;
  ++sessions_refenced_;
  trace_instant("session-refence");
  // Replay the rendezvous handshake of every parked sender: the RTS (or
  // its CTS answer) may have evaporated with the crashed endpoint's
  // state, and the duplicate-RTS / stale-CTS guards make replays safe.
  for (CtsWait& w : ch.cts_waiters) {
    w.attempt += 1;
    w.timeout = config_.rendezvous_timeout;
    sim_.spawn(resend_rts(ch, w.tag, w.bytes, w.attempt),
               config_.name + ".rts-refence");
  }
}

void StreamLibrary::fail_channel(PeerChannel& ch) {
  if (ch.conn_failed) return;
  ch.conn_failed = true;
  trace_instant("channel-failed");
  ch.reader_changed->notify_all();
}

// ---------------------------------------------------------------------------
// The inbound dispatcher
// ---------------------------------------------------------------------------

sim::Task<void> StreamLibrary::read_one(PeerChannel& ch) {
  refence_channel(ch);
  co_await ch.sock.recv_exact(config_.header_bytes);
  refence_channel(ch);  // a crash may have struck while we were parked
  assert(!ch.meta_in->empty() && "header bytes arrived without metadata");
  const WireMeta m = ch.meta_in->front();
  ch.meta_in->pop_front();

  switch (m.kind) {
    case Kind::kData: {
      auto it = std::find_if(ch.posted.begin(), ch.posted.end(),
                             [&](PostedRecv* p) {
                               return !p->matched && p->tag == m.tag;
                             });
      PostedRecv* pr = it != ch.posted.end() ? *it : nullptr;
      const std::uint64_t wire_payload =
          payload_with_fragment_overhead(m.bytes);
      if (pr != nullptr && !config_.stage_all_receives) {
        // Payload lands directly in the posted user buffer.
        pr->matched = true;
        co_await ch.sock.recv_exact(wire_payload);
        // Consume the captured view (if any) to keep the per-message
        // payload queue aligned; the direct path never copied anyway.
        // Zero-byte messages carry no payload buffer, so nothing to take.
        if (config_.zero_copy_staging && wire_payload > 0) {
          (void)ch.sock.take_rx_payload();
        }
        ch.posted.erase(std::find(ch.posted.begin(), ch.posted.end(), pr));
        pr->was_staged = false;
        pr->completed = true;
        // Delivery oracle: completion into the posted user buffer is the
        // moment of consumption.
        if (audit::Auditor* aud = sim_.auditor()) {
          aud->on_deliver(m.audit, m.bytes,
                          /*after_teardown=*/ch.conn_failed);
        }
        pr->done->set();
      } else {
        // Payload goes to the library's staging buffer first.
        co_await ch.sock.recv_exact(wire_payload);
        staged_bytes_ += m.bytes;
        sim::PacketRef view;
        if (config_.zero_copy_staging && wire_payload > 0) {
          view = ch.sock.take_rx_payload();
        }
        if (pr == nullptr) {
          // A matching receive may have been posted while the payload was
          // in flight; match it now rather than parking the message.
          auto again = std::find_if(ch.posted.begin(), ch.posted.end(),
                                    [&](PostedRecv* p) {
                                      return !p->matched && p->tag == m.tag;
                                    });
          if (again != ch.posted.end()) pr = *again;
        }
        if (pr != nullptr) {
          pr->matched = true;
          ch.posted.erase(std::find(ch.posted.begin(), ch.posted.end(), pr));
          pr->was_staged = true;
          pr->completed = true;
          pr->view = std::move(view);
          if (audit::Auditor* aud = sim_.auditor()) {
            aud->on_deliver(m.audit, m.bytes,
                            /*after_teardown=*/ch.conn_failed);
          }
          pr->done->set();
        } else {
          // Parked in the unexpected queue: staging is *not* delivery —
          // the tag rides along and is consumed when recv() drains it.
          ch.unexpected.push_back(
              UnexpectedMsg{m.tag, m.bytes, std::move(view), m.audit});
          ch.reader_changed->notify_all();
        }
      }
      break;
    }
    case Kind::kRts: {
      auto it = std::find_if(ch.posted.begin(), ch.posted.end(),
                             [&](PostedRecv* p) {
                               return !p->matched && p->tag == m.tag;
                             });
      if (it != ch.posted.end()) {
        // A receive is already posted: clear the sender to transmit. A
        // re-sent RTS whose first CTS was merely slow lands here too; the
        // duplicate CTS is ignored by the sender's tag match.
        trace_instant("cts");
        co_await send_locked(ch, WireMeta{Kind::kCts, m.tag, m.bytes, false, {}},
                             0);
      } else {
        auto dup = std::find_if(ch.rts_pending.begin(), ch.rts_pending.end(),
                                [&](const UnexpectedMsg& u) {
                                  return u.tag == m.tag;
                                });
        if (dup != ch.rts_pending.end()) {
          // Watchdog re-send of a request we already queued.
          trace_instant("dup-rts");
          break;
        }
        ch.rts_pending.push_back(UnexpectedMsg{m.tag, m.bytes, {}, {}});
        ch.reader_changed->notify_all();
      }
      break;
    }
    case Kind::kCts: {
      auto wit = std::find_if(ch.cts_waiters.begin(), ch.cts_waiters.end(),
                              [&](const CtsWait& w) {
                                return w.tag == m.tag;
                              });
      if (wit == ch.cts_waiters.end()) {
        // Duplicate grant from a re-sent RTS: the handshake already won.
        trace_instant("stale-cts");
        break;
      }
      sim::Trigger* t = wit->trigger;
      ch.cts_waiters.erase(wit);
      t->set();
      break;
    }
    case Kind::kSyncAck: {
      if (ch.sync_waiters.empty()) {
        trace_instant("stale-sync-ack");
        break;
      }
      sim::Trigger* t = ch.sync_waiters.front();
      ch.sync_waiters.pop_front();
      t->set();
      break;
    }
  }
}

sim::Task<void> StreamLibrary::drive_until(PeerChannel& ch,
                                           std::function<bool()> done) {
  while (!done()) {
    if (ch.conn_failed) {
      throw tcp::ConnectionFailed(config_.name + "@" +
                                  std::to_string(rank_) +
                                  ": channel failed");
    }
    if (!ch.reader_active) {
      ch.reader_active = true;
      if (done()) {  // re-check: a previous reader may have finished us
        ch.reader_active = false;
        ch.reader_changed->notify_all();
        break;
      }
      try {
        co_await read_one(ch);
      } catch (const sim::ProtocolFailure&) {
        // The transport died for good: release the reader role and wake
        // every parked waiter so they raise instead of waiting forever.
        ch.reader_active = false;
        fail_channel(ch);
        throw;
      }
      ch.reader_active = false;
      ch.reader_changed->notify_all();
    } else {
      co_await ch.reader_changed->wait();
    }
  }
}

sim::Task<void> StreamLibrary::progress_daemon(PeerChannel& ch) {
  for (;;) {
    try {
      co_await read_one(ch);
    } catch (const sim::ProtocolFailure&) {
      // Exit the daemon; waiters wake via fail_channel and raise from
      // their own drive_until passes.
      fail_channel(ch);
      co_return;
    }
    ch.reader_changed->notify_all();
  }
}

// ---------------------------------------------------------------------------
// Blocking send / recv
// ---------------------------------------------------------------------------

sim::Task<void> StreamLibrary::send(int dst, std::uint64_t bytes,
                                    std::uint32_t tag) {
  PeerChannel& ch = channel(dst);
  co_await node_.cpu_cost(config_.per_call_cost);
  if (config_.thread_handoff > 0) {
    // Hand the message descriptor to the progress thread.
    co_await node_.cpu_cost(node_.config().wakeup_cost);
    co_await sim_.delay(config_.thread_handoff);
  }
  if (config_.tx_conversion > 0.0) {
    co_await node_.cpu().occupy(static_cast<sim::SimTime>(
        static_cast<double>(node_.staging_copy_time(bytes)) *
        config_.tx_conversion));
  }

  // p4 blocking channel device: long messages march through the staging
  // buffer one chunk at a time, stop-and-wait.
  if (config_.stop_and_wait_chunk > 0 &&
      bytes > config_.stop_and_wait_chunk) {
    std::uint64_t left = bytes;
    while (left > 0) {
      const std::uint64_t chunk =
          std::min(left, config_.stop_and_wait_chunk);
      left -= chunk;
      co_await send_message(ch, chunk, tag, /*sync=*/true);
    }
    if (config_.synchronous_send) {
      sim::Trigger ack(sim_);
      ch.sync_waiters.push_back(&ack);
      try {
        co_await drive_until(ch, [&] { return ack.is_set(); });
      } catch (...) {
        std::erase(ch.sync_waiters, &ack);
        throw;
      }
    }
    co_return;
  }
  co_await send_message(ch, bytes, tag, config_.synchronous_send);
}

sim::Task<void> StreamLibrary::send_message(PeerChannel& ch,
                                            std::uint64_t bytes,
                                            std::uint32_t tag, bool sync) {
  if (bytes <= config_.eager_max) {
    WireMeta m{Kind::kData, tag, bytes, false, {}};
    if (audit::Auditor* aud = sim_.auditor()) {
      m.audit = aud->on_inject(ch.audit_out, bytes);
    }
    co_await send_locked(ch, m, payload_with_fragment_overhead(bytes));
  } else {
    // Rendezvous: request-to-send, wait for clear-to-send, then the data.
    rendezvous_count_ += 1;
    trace_instant("rts");
    co_await send_locked(ch, WireMeta{Kind::kRts, tag, bytes, false, {}}, 0);
    sim::Trigger cts(sim_);
    ch.cts_waiters.push_back(
        CtsWait{&cts, tag, bytes, 0, config_.rendezvous_timeout});
    if (config_.rendezvous_timeout > 0) arm_rts_watchdog(ch, tag, 0);
    try {
      co_await drive_until(ch, [&] { return cts.is_set(); });
    } catch (...) {
      // Scrub the stack-allocated trigger from the waiter queue.
      auto wit = std::find_if(ch.cts_waiters.begin(), ch.cts_waiters.end(),
                              [&](const CtsWait& w) {
                                return w.trigger == &cts;
                              });
      if (wit != ch.cts_waiters.end()) ch.cts_waiters.erase(wit);
      throw;
    }
    trace_instant("rendezvous-payload");
    WireMeta m{Kind::kData, tag, bytes, true, {}};
    if (audit::Auditor* aud = sim_.auditor()) {
      m.audit = aud->on_inject(ch.audit_out, bytes);
    }
    co_await send_locked(ch, m, payload_with_fragment_overhead(bytes));
  }

  if (sync) {
    sim::Trigger ack(sim_);
    ch.sync_waiters.push_back(&ack);
    try {
      co_await drive_until(ch, [&] { return ack.is_set(); });
    } catch (...) {
      std::erase(ch.sync_waiters, &ack);
      throw;
    }
  }
}

sim::Task<void> StreamLibrary::resend_rts(PeerChannel& ch, std::uint32_t tag,
                                          std::uint64_t bytes,
                                          std::uint32_t attempt) {
  try {
    co_await send_locked(ch, WireMeta{Kind::kRts, tag, bytes, false, {}}, 0);
  } catch (const sim::ProtocolFailure&) {
    co_return;  // the parked sender raises from its own drive_until
  }
  if (config_.rendezvous_timeout > 0) arm_rts_watchdog(ch, tag, attempt);
}

void StreamLibrary::arm_rts_watchdog(PeerChannel& ch, std::uint32_t tag,
                                     std::uint32_t attempt) {
  auto wit = std::find_if(ch.cts_waiters.begin(), ch.cts_waiters.end(),
                          [&](const CtsWait& w) {
                            return w.tag == tag && w.attempt == attempt;
                          });
  if (wit == ch.cts_waiters.end()) return;  // CTS already arrived
  const int peer = ch.peer_rank;
  std::weak_ptr<char> guard = alive_;
  sim_.call_after(wit->timeout, [this, guard, peer, tag, attempt] {
    if (guard.expired()) return;
    auto pit = peers_.find(peer);
    if (pit == peers_.end()) return;
    PeerChannel& c = pit->second;
    auto w = std::find_if(c.cts_waiters.begin(), c.cts_waiters.end(),
                          [&](const CtsWait& cw) {
                            return cw.tag == tag && cw.attempt == attempt;
                          });
    if (w == c.cts_waiters.end()) return;  // CTS arrived in the meantime
    ++rendezvous_retries_;
    trace_instant("rts-retry");
    w->attempt += 1;
    w->timeout = std::min(w->timeout * 2, config_.rendezvous_timeout_max);
    sim_.spawn(resend_rts(c, tag, w->bytes, w->attempt),
               config_.name + ".rts-retry");
  });
}

sim::Task<void> StreamLibrary::recv(int src, std::uint64_t bytes,
                                    std::uint32_t tag) {
  PeerChannel& ch = channel(src);
  co_await node_.cpu_cost(config_.per_call_cost);
  if (config_.thread_handoff > 0) {
    co_await node_.cpu_cost(node_.config().wakeup_cost);
    co_await sim_.delay(config_.thread_handoff);
  }
  if (config_.stop_and_wait_chunk > 0 &&
      bytes > config_.stop_and_wait_chunk) {
    std::uint64_t left = bytes;
    while (left > 0) {
      const std::uint64_t chunk =
          std::min(left, config_.stop_and_wait_chunk);
      left -= chunk;
      co_await recv_message(ch, chunk, tag, /*sync=*/true);
    }
    if (config_.synchronous_send) {
      co_await send_locked(ch, WireMeta{Kind::kSyncAck, tag, 0, false, {}}, 0);
    }
    co_return;
  }
  co_await recv_message(ch, bytes, tag, config_.synchronous_send);
}

sim::Task<void> StreamLibrary::recv_message(PeerChannel& ch,
                                            std::uint64_t bytes,
                                            std::uint32_t tag, bool sync) {
  bool staged = false;
  sim::PacketRef view;
  // 1) Already in the unexpected queue?
  auto uit = std::find_if(ch.unexpected.begin(), ch.unexpected.end(),
                          [&](const UnexpectedMsg& u) { return u.tag == tag; });
  if (uit != ch.unexpected.end()) {
    assert(uit->bytes == bytes && "matched message has a different size");
    view = std::move(uit->view);
    // Delivery oracle: draining the unexpected queue hands the message to
    // the application — this is its consumption point.
    if (audit::Auditor* aud = sim_.auditor()) {
      aud->on_deliver(uit->audit, uit->bytes,
                      /*after_teardown=*/ch.conn_failed);
    }
    ch.unexpected.erase(uit);
    staged = true;
  } else {
    // 2) A rendezvous sender may already be asking.
    auto rit = std::find_if(ch.rts_pending.begin(), ch.rts_pending.end(),
                            [&](const UnexpectedMsg& u) {
                              return u.tag == tag;
                            });
    PostedRecv pr;
    pr.tag = tag;
    pr.bytes = bytes;
    pr.done = std::make_unique<sim::Trigger>(sim_);
    ch.posted.push_back(&pr);
    if (rit != ch.rts_pending.end()) {
      ch.rts_pending.erase(rit);
      trace_instant("cts");
      try {
        co_await send_locked(ch, WireMeta{Kind::kCts, tag, bytes, false, {}},
                             0);
      } catch (...) {
        std::erase(ch.posted, &pr);
        throw;
      }
    }
    try {
      co_await drive_until(ch, [&] { return pr.completed; });
    } catch (...) {
      // Scrub the stack-allocated descriptor from the posted queue.
      std::erase(ch.posted, &pr);
      throw;
    }
    staged = pr.was_staged;
    view = std::move(pr.view);
  }

  if (staged) {
    if (view) {
      // A refcounted view of the sender's payload buffer covers this
      // message: hand the reference over instead of draining the staging
      // buffer through memcpy.
      ++zero_copy_receives_;
      zero_copy_bytes_ += bytes;
      trace_instant("zero-copy-recv");
    } else {
      // Library buffer -> user buffer copy (the p4 penalty, and the cost
      // of unexpected arrivals for every library).
      trace_instant("staging-copy");
      co_await node_.staging_copy(bytes);
    }
  }
  if (config_.rx_conversion > 0.0) {
    co_await node_.cpu().occupy(static_cast<sim::SimTime>(
        static_cast<double>(node_.staging_copy_time(bytes)) *
        config_.rx_conversion));
  }
  if (sync) {
    co_await send_locked(ch, WireMeta{Kind::kSyncAck, tag, 0, false, {}}, 0);
  }
}

Request StreamLibrary::isend(int dst, std::uint64_t bytes,
                             std::uint32_t tag) {
  return Request(sim_.spawn(send(dst, bytes, tag), config_.name + ".isend"));
}

Request StreamLibrary::irecv(int src, std::uint64_t bytes,
                             std::uint32_t tag) {
  return Request(sim_.spawn(recv(src, bytes, tag), config_.name + ".irecv"));
}

// ---------------------------------------------------------------------------
// Pair wiring helper
// ---------------------------------------------------------------------------

void wire_pair(StreamLibrary& a, StreamLibrary& b, tcp::Socket sa,
               tcp::Socket sb) {
  auto ab = std::make_shared<std::deque<StreamLibrary::WireMeta>>();
  auto ba = std::make_shared<std::deque<StreamLibrary::WireMeta>>();
  a.bind_peer(b.rank(), std::move(sa));
  b.bind_peer(a.rank(), std::move(sb));
  a.channel(b.rank()).meta_out = ab;
  a.channel(b.rank()).meta_in = ba;
  b.channel(a.rank()).meta_out = ba;
  b.channel(a.rank()).meta_in = ab;
}

}  // namespace pp::mp
