// NetPIPE transport adapter for any message-passing library: this is the
// "NetPIPE MPI/PVM/TCGMSG module" of the paper.
#pragma once

#include <string>

#include "mp/api.h"
#include "netpipe/transport.h"

namespace pp::mp {

class LibraryTransport final : public netpipe::Transport {
 public:
  LibraryTransport(Library& lib, int peer, std::uint32_t tag = 1)
      : lib_(lib), peer_(peer), tag_(tag) {}

  sim::Task<void> send(std::uint64_t bytes) override {
    return lib_.send(peer_, bytes, tag_);
  }
  sim::Task<void> recv(std::uint64_t bytes) override {
    return lib_.recv(peer_, bytes, tag_);
  }
  hw::Node& node() { return lib_.node(); }
  std::string name() const override { return lib_.name(); }
  netpipe::ProtocolCounters counters() const override {
    return lib_.protocol_counters();
  }

 private:
  Library& lib_;
  int peer_;
  std::uint32_t tag_;
};

}  // namespace pp::mp
