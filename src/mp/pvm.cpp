#include "mp/pvm.h"

#include "netpipe/modules.h"

namespace pp::mp {

Pvm::Pvm(sim::Simulator& sim, int rank, hw::Node& node, PvmOptions opt)
    : sim_(sim), rank_(rank), node_(node), opt_(opt) {
  if (opt_.route == PvmRoute::kDirect) {
    stream_ = std::make_unique<StreamLibrary>(sim, rank, node,
                                              make_stream_config(opt_));
  }
}

std::string Pvm::name() const {
  std::string n = opt_.route == PvmRoute::kDaemon ? "PVM (pvmd route)"
                                                  : "PVM (direct)";
  switch (opt_.encoding) {
    case PvmEncoding::kDefault:
      break;
    case PvmEncoding::kRaw:
      n += " raw";
      break;
    case PvmEncoding::kInPlace:
      n += " in-place";
      break;
  }
  return n;
}

netpipe::ProtocolCounters Pvm::protocol_counters() const {
  if (opt_.route == PvmRoute::kDirect) return stream_->protocol_counters();
  // Daemon route: this rank's outbound hop plus its inbound delivery end;
  // the peer reports the opposite two socket ends.
  netpipe::ProtocolCounters c;
  c.relay_fragments = relay_out_->fragments_relayed();
  c += netpipe::tcp_socket_counters(relay_out_->src_socket());
  c += netpipe::tcp_socket_counters(relay_in_->dst_socket());
  return c;
}

double Pvm::pack_factor() const {
  switch (opt_.encoding) {
    case PvmEncoding::kDefault:
      return 2.0;  // XDR: convert + copy
    case PvmEncoding::kRaw:
      return 1.0;  // plain copy into the pack buffer
    case PvmEncoding::kInPlace:
      return 0.0;  // data sent straight from user memory
  }
  return 0.0;
}

StreamConfig Pvm::make_stream_config(const PvmOptions& opt) {
  StreamConfig c;
  c.name = "PVM";
  c.header_bytes = 32;
  c.eager_max = UINT64_MAX;  // PVM streams; no rendezvous protocol
  c.buffer_policy = BufferPolicy::kOsDefault;
  c.fragment_payload = 4080;  // pvmd fragment size
  c.fragment_header = 16;
  switch (opt.encoding) {
    case PvmEncoding::kDefault:
      c.tx_conversion = 1.2;
      break;
    case PvmEncoding::kRaw:
      c.tx_conversion = 1.0;
      break;
    case PvmEncoding::kInPlace:
      c.tx_conversion = 0.0;
      break;
  }
  c.rx_conversion = 1.0;  // pvm_upk* always copies out
  c.per_call_cost = sim::microseconds(0.8);
  return c;
}

sim::Task<void> Pvm::send(int dst, std::uint64_t bytes, std::uint32_t tag) {
  if (opt_.route == PvmRoute::kDirect) {
    co_await stream_->send(dst, bytes, tag);
    co_return;
  }
  (void)dst;
  (void)tag;  // the pvmd route preserves pairwise order
  // pvm_initsend packing happens before the daemon sees anything.
  if (pack_factor() > 0.0) {
    co_await node_.cpu().transfer(static_cast<std::uint64_t>(
        static_cast<double>(bytes) * pack_factor()));
  }
  co_await relay_out_->send(bytes);
}

sim::Task<void> Pvm::recv(int src, std::uint64_t bytes, std::uint32_t tag) {
  if (opt_.route == PvmRoute::kDirect) {
    co_await stream_->recv(src, bytes, tag);
    co_return;
  }
  (void)src;
  (void)tag;
  co_await relay_in_->recv(bytes);
  // pvm_upk* copy out of the receive buffer.
  co_await node_.copy(bytes);
}

std::pair<std::unique_ptr<Pvm>, std::unique_ptr<Pvm>> Pvm::create_pair(
    PairBed& bed, PvmOptions opt) {
  auto a = std::make_unique<Pvm>(bed.sim, 0, bed.node_a, opt);
  auto b = std::make_unique<Pvm>(bed.sim, 1, bed.node_b, opt);
  if (opt.route == PvmRoute::kDirect) {
    auto [sa, sb] = bed.socket_pair("pvm");
    wire_pair(*a->stream_, *b->stream_, std::move(sa), std::move(sb));
    return {std::move(a), std::move(b)};
  }
  RelayOptions ropt;  // pvmd defaults: 4 kB fragments, stop-and-wait
  ropt.daemon_service = sim::microseconds(12.0);
  auto [da, db] = bed.socket_pair("pvmd.fwd");
  auto [ea, eb] = bed.socket_pair("pvmd.rev");
  auto fwd = std::make_shared<RelayChannel>(bed.node_a, bed.node_b,
                                            std::move(da), std::move(db),
                                            ropt);
  auto rev = std::make_shared<RelayChannel>(bed.node_b, bed.node_a,
                                            std::move(eb), std::move(ea),
                                            ropt);
  a->relay_out_ = fwd;
  a->relay_in_ = rev;
  b->relay_out_ = rev;
  b->relay_in_ = fwd;
  return {std::move(a), std::move(b)};
}

}  // namespace pp::mp
