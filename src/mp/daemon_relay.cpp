#include "mp/daemon_relay.h"

#include <algorithm>

#include "simcore/tracing.h"

namespace pp::mp {

void RelayChannel::trace_instant(hw::Node& at, const char* what) {
  if (sim::TraceRecorder* t = at.simulator().tracer()) {
    t->record_instant(track_, what, at.simulator().now());
  }
}

sim::Task<void> RelayChannel::send(std::uint64_t bytes) {
  const std::uint64_t frags = fragments_for(bytes);
  std::uint64_t left = bytes;
  int outstanding = 0;
  for (std::uint64_t i = 0; i < frags; ++i) {
    if (outstanding == opt_.window) {
      co_await src_sock_.recv_exact(opt_.ack_bytes);
      --outstanding;
    }
    const std::uint64_t frag =
        std::min<std::uint64_t>(left, opt_.fragment_payload);
    left -= frag;
    // Application -> local daemon IPC: syscall + copy + daemon wakeup.
    // On the zero-copy route the daemon is handed a refcounted payload
    // buffer instead of a copy into daemon memory.
    fragments_relayed_ += 1;
    trace_instant(src_, "relay-out");
    co_await src_.cpu_cost(src_.config().syscall_cost);
    if (!opt_.zero_copy) co_await src_.staging_copy(frag);
    co_await src_.cpu_cost(opt_.daemon_service);
    if (opt_.zero_copy) {
      co_await src_sock_.send(frag + opt_.fragment_header,
                              src_sock_.make_payload(frag));
    } else {
      co_await src_sock_.send(frag + opt_.fragment_header);
    }
    ++outstanding;
  }
  while (outstanding > 0) {
    co_await src_sock_.recv_exact(opt_.ack_bytes);
    --outstanding;
  }
}

sim::Task<void> RelayChannel::recv(std::uint64_t bytes) {
  const std::uint64_t frags = fragments_for(bytes);
  std::uint64_t left = bytes;
  for (std::uint64_t i = 0; i < frags; ++i) {
    const std::uint64_t frag =
        std::min<std::uint64_t>(left, opt_.fragment_payload);
    left -= frag;
    co_await dst_sock_.recv_exact(frag + opt_.fragment_header);
    // Remote daemon -> application IPC. A captured payload view stands in
    // for the final copy; anything not covered by a view is copied.
    trace_instant(dst_, "relay-in");
    co_await dst_.cpu_cost(opt_.daemon_service);
    sim::PacketRef view;
    if (opt_.zero_copy) view = dst_sock_.take_rx_payload();
    if (view) {
      ++zero_copy_fragments_;
    } else {
      co_await dst_.staging_copy(frag);
    }
    co_await dst_.cpu_cost(dst_.config().wakeup_cost);
    co_await dst_sock_.send(opt_.ack_bytes);
  }
}

}  // namespace pp::mp
