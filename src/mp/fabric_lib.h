// Message-passing endpoint over the switch fabric, plus the world
// builder that wires N ranks through a fat-tree or Clos.
//
// FabricLib implements the common Library interface on top of
// hw::fabric::HostPort: sends fragment messages into MTU-sized frames
// (one arena descriptor per fragment, so frames crossing shard
// boundaries never share refcounted state), receives reassemble by
// (src, msg_seq) and match posted receives by (src, tag) with an
// unexpected queue, exactly like the two-node libraries. A configurable
// delivery watchdog turns a receive starved by lossy links into
// sim::ProtocolFailure — collectives over a faulty fabric complete or
// fail by decision, never hang.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "mp/api.h"
#include "mp/collectives.h"
#include "simcore/shard.h"
#include "simcore/sync.h"
#include "simhw/cluster.h"
#include "simhw/fabric/fabric.h"

namespace pp::mp {

struct FabricLibConfig {
  std::string name = "fabric";
  /// A posted receive still unmatched after this much simulated time
  /// throws sim::ProtocolFailure (fail-by-decision on lossy fabrics).
  /// 0 disables the watchdog.
  sim::SimTime delivery_timeout = 0;
  /// false: one ECMP flow per (src,dst) pair — fragments stay FIFO on a
  /// single path. true: each message hashes to its own flow (spreads
  /// load; reassembly still counts fragments).
  bool flow_per_message = false;
};

class FabricLib : public Library {
 public:
  FabricLib(hw::fabric::Fabric& fab, int rank, FabricLibConfig cfg = {});
  ~FabricLib() override;

  sim::Task<void> send(int dst, std::uint64_t bytes,
                       std::uint32_t tag) override;
  sim::Task<void> recv(int src, std::uint64_t bytes,
                       std::uint32_t tag) override;

  hw::Node& node() override { return port_.node(); }
  int rank() const override { return rank_; }
  std::string name() const override { return cfg_.name; }
  netpipe::ProtocolCounters protocol_counters() const override;

 private:
  /// Arena payload of every fabric fragment.
  struct FragDesc {
    std::uint32_t msg_seq = 0;
    std::uint32_t frag_count = 0;
    std::uint32_t frag_idx = 0;
    std::uint32_t tag = 0;
    std::uint64_t msg_bytes = 0;
    audit::MsgTag audit;
  };
  static_assert(sizeof(FragDesc) <= sim::PacketArena::kPayloadBytes);

  using Key = std::pair<int, std::uint32_t>;  // (peer rank, tag)

  struct ArrivedMsg {
    std::uint64_t bytes = 0;
    audit::MsgTag audit;
  };

  struct PostedRecv {
    std::uint64_t id = 0;
    sim::Trigger done;
    bool failed = false;
    ArrivedMsg msg;
    explicit PostedRecv(sim::Simulator& s) : done(s) {}
  };

  struct Partial {
    std::uint32_t got = 0;
    std::uint32_t want = 0;
    std::uint32_t tag = 0;
    std::uint64_t bytes = 0;
    audit::MsgTag audit;
  };

  sim::Task<void> rx_pump();
  void complete_msg(int src, std::uint32_t tag, ArrivedMsg m);
  void arm_watchdog(std::uint64_t recv_id);

  hw::fabric::Fabric& fab_;
  hw::fabric::HostPort& port_;
  sim::Simulator& sim_;
  int rank_;
  FabricLibConfig cfg_;

  std::map<Key, std::deque<ArrivedMsg>> unexpected_;
  std::map<Key, std::deque<PostedRecv*>> posted_;
  std::map<Key, Partial> partials_;  // keyed by (src, msg_seq)
  std::map<std::uint64_t, Key> watched_;  // recv id -> posted key
  std::vector<std::uint32_t> next_msg_seq_;  // per destination rank
  std::vector<std::uint32_t> audit_out_;     // stream handle per dst; 0=off
  std::uint64_t next_recv_id_ = 1;

  std::uint64_t msgs_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t frags_sent_ = 0;
  std::uint64_t frags_received_ = 0;
  std::uint64_t watchdog_failures_ = 0;
};

/// N ranks on one fabric: shard group, cluster (nodes block-partitioned
/// across shards), the switch topology, and one FabricLib per rank.
struct FabricWorldOptions {
  int shards = 0;  ///< 0 = ambient (PP_SHARDS / ScopedShards), min 1
  hw::HostConfig host;
  hw::fabric::FabricConfig fabric;
  FabricLibConfig lib;
  /// Fat-tree radix; 0 picks the smallest even radix that fits.
  int radix = 0;
  /// Build a two-level leaf-spine Clos instead of the fat-tree.
  bool clos = false;
  /// Delivery oracle installed on every shard before the libraries are
  /// built, so their per-peer streams register at construction.
  audit::Auditor* auditor = nullptr;
};

class FabricWorld {
 public:
  explicit FabricWorld(int ranks, FabricWorldOptions opt = {});
  ~FabricWorld();

  int size() const { return static_cast<int>(libs_.size()); }
  sim::ShardGroup& group() { return *group_; }
  hw::Cluster& cluster() { return *cluster_; }
  hw::fabric::Fabric& fabric() { return *fabric_; }
  FabricLib& lib(int rank) { return *libs_.at(static_cast<std::size_t>(rank)); }
  sim::Simulator& simulator(int rank) {
    return lib(rank).node().simulator();
  }
  RingComm comm(int rank) {
    return RingComm{&lib(rank), rank, size()};
  }

  /// Spawns a rank's task on that rank's own shard.
  void spawn(int rank, sim::Task<void> task, std::string name) {
    simulator(rank).spawn(std::move(task), std::move(name));
  }

  /// Runs every shard to completion (serial when shards == 1).
  void run() { group_->run(); }

 private:
  std::unique_ptr<sim::ShardGroup> group_;
  std::unique_ptr<hw::Cluster> cluster_;
  std::unique_ptr<hw::fabric::Fabric> fabric_;
  std::vector<std::unique_ptr<FabricLib>> libs_;
};

}  // namespace pp::mp
