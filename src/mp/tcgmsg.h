// TCGMSG 4.04 (paper §3.6, §4.6).
//
// Modelled mechanisms:
//  - a very thin layer over TCP: small header, no staging, no rendezvous
//    ("it passes on nearly all the performance that TCP offers");
//  - SND blocks until the matching RCV has completed (synchronous
//    completion ACK);
//  - socket buffers hard-wired to SR_SOCK_BUF_SIZE = 32 kB in sndrcvP.h —
//    changing it means recompiling, which we model as a constructor
//    option (the paper's §7 recompile experiment).
#pragma once

#include <memory>
#include <utility>

#include "mp/stream_lib.h"
#include "mp/testbed.h"

namespace pp::mp {

struct TcgmsgOptions {
  /// SR_SOCK_BUF_SIZE in sndrcvP.h; 32 kB unless you recompile.
  std::uint32_t sr_sock_buf_size = 32 * 1024;
};

class Tcgmsg final : public StreamLibrary {
 public:
  Tcgmsg(sim::Simulator& sim, int rank, hw::Node& node,
         TcgmsgOptions opt = {})
      : StreamLibrary(sim, rank, node, make_config(opt)) {}

  static StreamConfig make_config(const TcgmsgOptions& opt) {
    StreamConfig c;
    c.name = "TCGMSG";
    c.header_bytes = 16;
    c.eager_max = UINT64_MAX;  // always streams; no rendezvous dip
    c.synchronous_send = true;
    c.buffer_policy = BufferPolicy::kFixed;
    c.fixed_buffer_bytes = opt.sr_sock_buf_size;
    c.per_call_cost = sim::microseconds(0.3);
    return c;
  }

  static std::pair<std::unique_ptr<Tcgmsg>, std::unique_ptr<Tcgmsg>>
  create_pair(PairBed& bed, TcgmsgOptions opt = {}) {
    auto a = std::make_unique<Tcgmsg>(bed.sim, 0, bed.node_a, opt);
    auto b = std::make_unique<Tcgmsg>(bed.sim, 1, bed.node_b, opt);
    auto [sa, sb] = bed.socket_pair("tcgmsg");
    wire_pair(*a, *b, std::move(sa), std::move(sb));
    return {std::move(a), std::move(b)};
  }
};

/// TCGMSG stacked on an MPI library instead of raw TCP (paper §4.6:
/// "NetPIPE measurements showed that there is no performance lost by
/// running TCGMSG-MPICH compared to MPICH alone, though the fact that a
/// TCGMSG SND blocks until the matching RCV is completed may affect real
/// applications more"). The wrapper adds only TCGMSG's thin call
/// overhead and its synchronous-completion handshake, carried as small
/// MPI messages.
class TcgmsgOverMpi final : public Library {
 public:
  TcgmsgOverMpi(Library& inner, sim::SimTime per_call =
                                    sim::microseconds(0.3))
      : inner_(inner), per_call_(per_call) {}

  sim::Task<void> send(int dst, std::uint64_t bytes,
                       std::uint32_t tag) override {
    co_await node().cpu_cost(per_call_);
    co_await inner_.send(dst, bytes, tag);
    // SND blocks until the matching RCV has completed.
    co_await inner_.recv(dst, 4, kAckTagBase + tag);
  }

  sim::Task<void> recv(int src, std::uint64_t bytes,
                       std::uint32_t tag) override {
    co_await node().cpu_cost(per_call_);
    co_await inner_.recv(src, bytes, tag);
    co_await inner_.send(src, 4, kAckTagBase + tag);
  }

  hw::Node& node() override { return inner_.node(); }
  int rank() const override { return inner_.rank(); }
  std::string name() const override {
    return "TCGMSG-" + inner_.name();
  }

 private:
  static constexpr std::uint32_t kAckTagBase = 0x20000000;
  Library& inner_;
  sim::SimTime per_call_;
};

}  // namespace pp::mp
