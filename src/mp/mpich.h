// MPICH 1.2.x over its p4 channel device (paper §3.1, §4.1).
//
// Modelled mechanisms:
//  - P4_SOCKBUFSIZE sets both socket buffers (default 32 kB — "increasing
//    it to 256 kB is vital").
//  - All receives land in the p4 staging buffer and are memcpy'd to the
//    user, costing MPICH the paper's 25-30 % for large messages (§7).
//  - Messages of 128 kB and above switch to a rendezvous handshake (the
//    sharp dip in Figure 1); the cutoff is only changeable by editing
//    mpid/ch2 source, which we model as a constructor option.
//  - Progress only inside MPI calls (p4 is a blocking channel device).
#pragma once

#include <memory>
#include <utility>

#include "mp/stream_lib.h"
#include "mp/testbed.h"

namespace pp::mp {

/// Which channel device MPICH runs on. kP4 is the stock Unix device; the
/// paper's §4.4 reports "preliminary results on an MPICH-MP_Lite
/// implementation at the channel interface layer show that this
/// performance can be passed along to the full MPI implementation of
/// MPICH" — kMpLiteChannel models that build: SIGIO progress, auto-max
/// socket buffers, no receive staging.
enum class MpichChannel { kP4, kMpLiteChannel };

struct MpichOptions {
  /// P4_SOCKBUFSIZE environment variable (p4 channel only).
  std::uint32_t p4_sockbufsize = 32 * 1024;
  /// The 128 kB rendezvous cutoff in mpid/ch2/chinit.c ("not designed to
  /// be user tunable, but can always be modified in the source code").
  std::uint64_t rendezvous_cutoff = 128 * 1024;
  MpichChannel channel = MpichChannel::kP4;
  /// Model p4 as a strict blocking channel device: long transfers move
  /// one P4_SOCKBUFSIZE staging bufferful at a time, stop-and-wait.
  /// This is the hypothesized source of the paper's "5-fold" tuning
  /// ratio (EXPERIMENTS.md footnote 2); off by default because the
  /// real p4 pipelines at least partially.
  bool p4_stop_and_wait = false;
};

class Mpich final : public StreamLibrary {
 public:
  Mpich(sim::Simulator& sim, int rank, hw::Node& node, MpichOptions opt = {})
      : StreamLibrary(sim, rank, node, make_config(opt)) {}

  static StreamConfig make_config(const MpichOptions& opt) {
    StreamConfig c;
    c.header_bytes = 40;
    c.eager_max = opt.rendezvous_cutoff - 1;
    c.per_call_cost = sim::microseconds(0.8);
    if (opt.channel == MpichChannel::kP4) {
      c.name = "MPICH";
      c.stage_all_receives = true;  // p4 receives to a buffer, then memcpy
      c.buffer_policy = BufferPolicy::kFixed;
      c.fixed_buffer_bytes = opt.p4_sockbufsize;
      if (opt.p4_stop_and_wait) {
        c.stop_and_wait_chunk = opt.p4_sockbufsize;
      }
    } else {
      // The MP_Lite channel device: the underlying layer's behaviour
      // shows through to full MPICH.
      c.name = "MPICH-MP_Lite";
      c.stage_all_receives = false;
      c.buffer_policy = BufferPolicy::kSysctlMax;
      c.progress = ProgressMode::kIndependent;
    }
    return c;
  }

  static std::pair<std::unique_ptr<Mpich>, std::unique_ptr<Mpich>>
  create_pair(PairBed& bed, MpichOptions opt = {}) {
    auto a = std::make_unique<Mpich>(bed.sim, 0, bed.node_a, opt);
    auto b = std::make_unique<Mpich>(bed.sim, 1, bed.node_b, opt);
    auto [sa, sb] = bed.socket_pair("mpich");
    wire_pair(*a, *b, std::move(sa), std::move(sb));
    return {std::move(a), std::move(b)};
  }
};

}  // namespace pp::mp
