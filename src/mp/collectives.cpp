#include "mp/collectives.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pp::mp {

namespace {

/// Pipeline chunk for the broadcast (large enough to amortize latency,
/// small enough to overlap the ring hops).
constexpr std::uint64_t kBcastChunk = 64 << 10;

void validate_root(const RingComm& comm, int root) {
  if (root < 0 || root >= comm.size) {
    throw std::invalid_argument("collective root " + std::to_string(root) +
                                " outside [0, " + std::to_string(comm.size) +
                                ")");
  }
}

// The public entry points validate eagerly and then delegate to these
// coroutine bodies: a coroutine's statements only run at first resume,
// which would turn a bad communicator into a deferred surprise instead
// of an immediate throw at the call site.

sim::Task<void> ring_broadcast_impl(RingComm comm, int root,
                                    std::uint64_t bytes, std::uint32_t tag) {
  if (comm.size <= 1 || bytes == 0) co_return;
  const int dist = (comm.rank - root + comm.size) % comm.size;
  std::uint64_t left_bytes = bytes;
  std::uint32_t chunk_idx = 0;
  while (left_bytes > 0) {
    const std::uint64_t chunk = std::min(left_bytes, kBcastChunk);
    left_bytes -= chunk;
    const std::uint32_t t = tag + chunk_idx++;
    if (dist == 0) {
      co_await comm.lib->send(comm.right(), chunk, t);
    } else {
      co_await comm.lib->recv(comm.left(), chunk, t);
      if (dist != comm.size - 1) {
        co_await comm.lib->send(comm.right(), chunk, t);
      }
    }
  }
}

sim::Task<void> ring_allreduce_impl(RingComm comm, std::uint64_t bytes,
                                    std::uint32_t tag) {
  if (comm.size <= 1 || bytes == 0) co_return;
  const std::uint64_t chunk = (bytes + comm.size - 1) / comm.size;
  // Phase 1: reduce-scatter — N-1 steps, each rank combines one chunk.
  for (int step = 0; step < comm.size - 1; ++step) {
    const std::uint32_t t = tag + static_cast<std::uint32_t>(step);
    Request s = comm.lib->isend(comm.right(), chunk, t);
    co_await comm.lib->recv(comm.left(), chunk, t);
    // Local reduction over the received chunk (one arithmetic pass).
    co_await comm.lib->node().staging_copy(chunk);
    co_await s.wait();
  }
  // Phase 2: allgather the reduced chunks.
  for (int step = 0; step < comm.size - 1; ++step) {
    const std::uint32_t t = tag + 0x100 + static_cast<std::uint32_t>(step);
    Request s = comm.lib->isend(comm.right(), chunk, t);
    co_await comm.lib->recv(comm.left(), chunk, t);
    co_await s.wait();
  }
}

sim::Task<void> ring_allgather_impl(RingComm comm, std::uint64_t block_bytes,
                                    std::uint32_t tag) {
  if (comm.size <= 1 || block_bytes == 0) co_return;
  for (int step = 0; step < comm.size - 1; ++step) {
    const std::uint32_t t = tag + static_cast<std::uint32_t>(step);
    Request s = comm.lib->isend(comm.right(), block_bytes, t);
    co_await comm.lib->recv(comm.left(), block_bytes, t);
    co_await s.wait();
  }
}

sim::Task<void> ring_barrier_impl(RingComm comm, std::uint32_t tag) {
  if (comm.size <= 1) co_return;
  for (int round = 0; round < 2; ++round) {
    const std::uint32_t t = tag + static_cast<std::uint32_t>(round);
    if (comm.rank == 0) {
      co_await comm.lib->send(comm.right(), 1, t);
      co_await comm.lib->recv(comm.left(), 1, t);
    } else {
      co_await comm.lib->recv(comm.left(), 1, t);
      co_await comm.lib->send(comm.right(), 1, t);
    }
  }
}

sim::Task<void> tree_broadcast_impl(RingComm comm, int root,
                                    std::uint64_t bytes, std::uint32_t tag) {
  if (comm.size <= 1 || bytes == 0) co_return;
  // Rotate so the root is virtual rank 0; the set bit structure of the
  // virtual rank gives each rank its parent and children.
  const int vrank = (comm.rank - root + comm.size) % comm.size;
  int mask = 1;
  while (mask < comm.size) {
    if ((vrank & mask) != 0) {
      const int vsrc = vrank ^ mask;
      co_await comm.lib->recv((vsrc + root) % comm.size, bytes, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    const int vdst = vrank | mask;
    if (vdst != vrank && vdst < comm.size) {
      co_await comm.lib->send((vdst + root) % comm.size, bytes, tag);
    }
    mask >>= 1;
  }
}

sim::Task<void> dissemination_barrier_impl(RingComm comm, std::uint32_t tag) {
  if (comm.size <= 1) co_return;
  std::uint32_t round = 0;
  for (int d = 1; d < comm.size; d <<= 1, ++round) {
    const std::uint32_t t = tag + round;
    const int to = (comm.rank + d) % comm.size;
    const int from = (comm.rank - d + comm.size) % comm.size;
    Request s = comm.lib->isend(to, 1, t);
    co_await comm.lib->recv(from, 1, t);
    co_await s.wait();
  }
}

sim::Task<void> dissemination_allgather_impl(RingComm comm,
                                             std::uint64_t block_bytes,
                                             std::uint32_t tag) {
  if (comm.size <= 1 || block_bytes == 0) co_return;
  // Bruck: after round k a rank holds 2^k consecutive blocks; it sends
  // them "down" the ring and receives the next batch from "up", so the
  // exchanged size doubles until the tail round.
  std::uint32_t round = 0;
  for (int d = 1; d < comm.size; d <<= 1, ++round) {
    const std::uint32_t t = tag + round;
    const int to = (comm.rank - d + comm.size) % comm.size;
    const int from = (comm.rank + d) % comm.size;
    const std::uint64_t batch =
        static_cast<std::uint64_t>(std::min(d, comm.size - d)) * block_bytes;
    Request s = comm.lib->isend(to, batch, t);
    co_await comm.lib->recv(from, batch, t);
    co_await s.wait();
  }
}

sim::Task<void> doubling_allreduce_impl(RingComm comm, std::uint64_t bytes,
                                        std::uint32_t tag) {
  if (comm.size <= 1 || bytes == 0) co_return;
  int pof2 = 1;
  while (pof2 * 2 <= comm.size) pof2 *= 2;
  const int rem = comm.size - pof2;
  // Fold phase: the first 2*rem ranks pair up so a power-of-two set
  // remains (MPICH's recursive-doubling preamble).
  int vrank;
  if (comm.rank < 2 * rem) {
    if (comm.rank % 2 == 0) {
      co_await comm.lib->send(comm.rank + 1, bytes, tag);
      vrank = -1;
    } else {
      co_await comm.lib->recv(comm.rank - 1, bytes, tag);
      co_await comm.lib->node().staging_copy(bytes);
      vrank = comm.rank / 2;
    }
  } else {
    vrank = comm.rank - rem;
  }
  if (vrank != -1) {
    std::uint32_t round = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      const int vdst = vrank ^ mask;
      const int dst = vdst < rem ? vdst * 2 + 1 : vdst + rem;
      const std::uint32_t t = tag + 1 + round;
      Request s = comm.lib->isend(dst, bytes, t);
      co_await comm.lib->recv(dst, bytes, t);
      co_await comm.lib->node().staging_copy(bytes);
      co_await s.wait();
    }
  }
  // Unfold: the folded-out even ranks get the result from their pair.
  if (comm.rank < 2 * rem) {
    const std::uint32_t t = tag + 0x80;
    if (comm.rank % 2 == 0) {
      co_await comm.lib->recv(comm.rank + 1, bytes, t);
    } else {
      co_await comm.lib->send(comm.rank - 1, bytes, t);
    }
  }
}

}  // namespace

void validate(const RingComm& comm) {
  if (comm.lib == nullptr) {
    throw std::invalid_argument("RingComm: null library endpoint");
  }
  if (comm.size <= 0) {
    throw std::invalid_argument("RingComm: size " +
                                std::to_string(comm.size) + " <= 0");
  }
  if (comm.rank < 0 || comm.rank >= comm.size) {
    throw std::invalid_argument("RingComm: rank " +
                                std::to_string(comm.rank) +
                                " outside [0, " + std::to_string(comm.size) +
                                ")");
  }
}

sim::Task<void> ring_broadcast(RingComm comm, int root, std::uint64_t bytes,
                               std::uint32_t tag) {
  validate(comm);
  validate_root(comm, root);
  return ring_broadcast_impl(comm, root, bytes, tag);
}

sim::Task<void> ring_allreduce(RingComm comm, std::uint64_t bytes,
                               std::uint32_t tag) {
  validate(comm);
  return ring_allreduce_impl(comm, bytes, tag);
}

sim::Task<void> ring_allgather(RingComm comm, std::uint64_t block_bytes,
                               std::uint32_t tag) {
  validate(comm);
  return ring_allgather_impl(comm, block_bytes, tag);
}

sim::Task<void> ring_barrier(RingComm comm, std::uint32_t tag) {
  validate(comm);
  return ring_barrier_impl(comm, tag);
}

sim::Task<void> tree_broadcast(RingComm comm, int root, std::uint64_t bytes,
                               std::uint32_t tag) {
  validate(comm);
  validate_root(comm, root);
  return tree_broadcast_impl(comm, root, bytes, tag);
}

sim::Task<void> dissemination_barrier(RingComm comm, std::uint32_t tag) {
  validate(comm);
  return dissemination_barrier_impl(comm, tag);
}

sim::Task<void> dissemination_allgather(RingComm comm,
                                        std::uint64_t block_bytes,
                                        std::uint32_t tag) {
  validate(comm);
  return dissemination_allgather_impl(comm, block_bytes, tag);
}

sim::Task<void> doubling_allreduce(RingComm comm, std::uint64_t bytes,
                                   std::uint32_t tag) {
  validate(comm);
  return doubling_allreduce_impl(comm, bytes, tag);
}

}  // namespace pp::mp
