#include "mp/collectives.h"

#include <algorithm>

namespace pp::mp {

namespace {

/// Pipeline chunk for the broadcast (large enough to amortize latency,
/// small enough to overlap the ring hops).
constexpr std::uint64_t kBcastChunk = 64 << 10;

}  // namespace

sim::Task<void> ring_broadcast(RingComm comm, int root, std::uint64_t bytes,
                               std::uint32_t tag) {
  if (comm.size <= 1 || bytes == 0) co_return;
  const int dist = (comm.rank - root + comm.size) % comm.size;
  std::uint64_t left_bytes = bytes;
  std::uint32_t chunk_idx = 0;
  while (left_bytes > 0) {
    const std::uint64_t chunk = std::min(left_bytes, kBcastChunk);
    left_bytes -= chunk;
    const std::uint32_t t = tag + chunk_idx++;
    if (dist == 0) {
      co_await comm.lib->send(comm.right(), chunk, t);
    } else {
      co_await comm.lib->recv(comm.left(), chunk, t);
      if (dist != comm.size - 1) {
        co_await comm.lib->send(comm.right(), chunk, t);
      }
    }
  }
}

sim::Task<void> ring_allreduce(RingComm comm, std::uint64_t bytes,
                               std::uint32_t tag) {
  if (comm.size <= 1 || bytes == 0) co_return;
  const std::uint64_t chunk = (bytes + comm.size - 1) / comm.size;
  // Phase 1: reduce-scatter — N-1 steps, each rank combines one chunk.
  for (int step = 0; step < comm.size - 1; ++step) {
    const std::uint32_t t = tag + static_cast<std::uint32_t>(step);
    Request s = comm.lib->isend(comm.right(), chunk, t);
    co_await comm.lib->recv(comm.left(), chunk, t);
    // Local reduction over the received chunk (one arithmetic pass).
    co_await comm.lib->node().staging_copy(chunk);
    co_await s.wait();
  }
  // Phase 2: allgather the reduced chunks.
  for (int step = 0; step < comm.size - 1; ++step) {
    const std::uint32_t t =
        tag + 0x100 + static_cast<std::uint32_t>(step);
    Request s = comm.lib->isend(comm.right(), chunk, t);
    co_await comm.lib->recv(comm.left(), chunk, t);
    co_await s.wait();
  }
}

sim::Task<void> ring_allgather(RingComm comm, std::uint64_t block_bytes,
                               std::uint32_t tag) {
  if (comm.size <= 1 || block_bytes == 0) co_return;
  for (int step = 0; step < comm.size - 1; ++step) {
    const std::uint32_t t = tag + static_cast<std::uint32_t>(step);
    Request s = comm.lib->isend(comm.right(), block_bytes, t);
    co_await comm.lib->recv(comm.left(), block_bytes, t);
    co_await s.wait();
  }
}

sim::Task<void> ring_barrier(RingComm comm, std::uint32_t tag) {
  if (comm.size <= 1) co_return;
  for (int round = 0; round < 2; ++round) {
    const std::uint32_t t = tag + static_cast<std::uint32_t>(round);
    if (comm.rank == 0) {
      co_await comm.lib->send(comm.right(), 1, t);
      co_await comm.lib->recv(comm.left(), 1, t);
    } else {
      co_await comm.lib->recv(comm.left(), 1, t);
      co_await comm.lib->send(comm.right(), 1, t);
    }
  }
}

}  // namespace pp::mp
