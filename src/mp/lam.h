// LAM/MPI 6.5 (paper §3.2, §4.2).
//
// Modelled mechanisms, one per run mode:
//  - kLamd ("mpirun -lamd"): every message is relayed through the lamd
//    daemons — convenient monitoring, but the paper measures ~260 Mbps
//    and a doubled (245 us) latency;
//  - kC2c (client-to-client, no -O): direct sockets, but data conversion
//    for heterogeneity costs an extra per-byte pass on both ends ("tops
//    out at 350 Mbps when no optimizations are used");
//  - kC2cO (-O, homogeneous): conversion skipped — "brings the
//    performance nearly to raw TCP levels".
// The rendezvous threshold (64 kB) is fixed: the slight dip in Figure 1
// "is apparently not user-tunable". Socket buffers stay at OS defaults.
#pragma once

#include <memory>
#include <utility>

#include "mp/daemon_relay.h"
#include "mp/stream_lib.h"
#include "mp/testbed.h"

namespace pp::mp {

enum class LamMode { kLamd, kC2c, kC2cO };

struct LamOptions {
  LamMode mode = LamMode::kC2cO;
};

class Lam final : public Library {
 public:
  Lam(sim::Simulator& sim, int rank, hw::Node& node, LamOptions opt);

  sim::Task<void> send(int dst, std::uint64_t bytes,
                       std::uint32_t tag) override;
  sim::Task<void> recv(int src, std::uint64_t bytes,
                       std::uint32_t tag) override;

  hw::Node& node() override { return node_; }
  int rank() const override { return rank_; }
  std::string name() const override;
  netpipe::ProtocolCounters protocol_counters() const override;

  StreamLibrary* stream() { return stream_.get(); }

  static std::pair<std::unique_ptr<Lam>, std::unique_ptr<Lam>> create_pair(
      PairBed& bed, LamOptions opt = {});

 private:
  static StreamConfig make_stream_config(const LamOptions& opt);

  sim::Simulator& sim_;
  int rank_;
  hw::Node& node_;
  LamOptions opt_;
  std::unique_ptr<StreamLibrary> stream_;      // c2c modes
  std::shared_ptr<RelayChannel> relay_out_;    // lamd mode
  std::shared_ptr<RelayChannel> relay_in_;
};

}  // namespace pp::mp
