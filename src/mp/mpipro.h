// MPI/Pro (MPI Software Technology's commercial MPI; paper §3.3, §4.3).
//
// Modelled mechanisms:
//  - a separate thread actively manages message progress (independent
//    progress engine) at the price of a handoff latency per message —
//    visible in the paper as MPI/Pro's 42 us VIA latency vs MVICH's 10;
//  - the tcp_long rendezvous threshold (default 32 kB) is run-time
//    tunable: raising it to 128 kB "removes much of a dip";
//  - internal socket buffers are fixed and *not* user tunable, which is
//    why MPI/Pro collapses to ~250 Mbps on the TrendNet cards (§4.3, §7).
#pragma once

#include <memory>
#include <utility>

#include "mp/stream_lib.h"
#include "mp/testbed.h"

namespace pp::mp {

struct MpiProOptions {
  /// tcp_long run-time parameter (rendezvous threshold).
  std::uint64_t tcp_long = 32 * 1024;
};

class MpiPro final : public StreamLibrary {
 public:
  MpiPro(sim::Simulator& sim, int rank, hw::Node& node,
         MpiProOptions opt = {})
      : StreamLibrary(sim, rank, node, make_config(opt)) {}

  static StreamConfig make_config(const MpiProOptions& opt) {
    StreamConfig c;
    c.name = "MPI/Pro";
    c.header_bytes = 32;
    c.eager_max = opt.tcp_long - 1;
    c.buffer_policy = BufferPolicy::kFixed;
    c.fixed_buffer_bytes = 64 * 1024;  // internal, not user tunable
    c.progress = ProgressMode::kIndependent;  // the progress thread
    c.thread_handoff = sim::microseconds(6.0);
    c.per_call_cost = sim::microseconds(0.6);
    return c;
  }

  static std::pair<std::unique_ptr<MpiPro>, std::unique_ptr<MpiPro>>
  create_pair(PairBed& bed, MpiProOptions opt = {}) {
    auto a = std::make_unique<MpiPro>(bed.sim, 0, bed.node_a, opt);
    auto b = std::make_unique<MpiPro>(bed.sim, 1, bed.node_b, opt);
    auto [sa, sb] = bed.socket_pair("mpipro");
    wire_pair(*a, *b, std::move(sa), std::move(sb));
    return {std::move(a), std::move(b)};
  }
};

}  // namespace pp::mp
