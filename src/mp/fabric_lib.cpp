#include "mp/fabric_lib.h"

#include <algorithm>
#include <stdexcept>

namespace pp::mp {

// ------------------------------------------------------------ FabricLib

FabricLib::FabricLib(hw::fabric::Fabric& fab, int rank, FabricLibConfig cfg)
    : fab_(fab),
      port_(fab.port(rank)),
      sim_(port_.node().simulator()),
      rank_(rank),
      cfg_(std::move(cfg)),
      next_msg_seq_(static_cast<std::size_t>(fab.hosts()), 0),
      audit_out_(static_cast<std::size_t>(fab.hosts()), 0) {
  if (audit::Auditor* aud = sim_.auditor()) {
    for (int d = 0; d < fab_.hosts(); ++d) {
      if (d == rank_) continue;
      audit_out_[static_cast<std::size_t>(d)] =
          aud->register_stream(cfg_.name + "#" + std::to_string(rank_) + ">" +
                               std::to_string(d));
    }
  }
  sim_.spawn_daemon(rx_pump(),
                    cfg_.name + "#" + std::to_string(rank_) + ".rx");
}

FabricLib::~FabricLib() = default;

sim::Task<void> FabricLib::send(int dst, std::uint64_t bytes,
                                std::uint32_t tag) {
  if (dst < 0 || dst >= fab_.hosts() || dst == rank_) {
    throw std::invalid_argument("FabricLib::send: bad destination rank");
  }
  audit::MsgTag atag;
  if (audit::Auditor* aud = sim_.auditor()) {
    atag = aud->on_inject(audit_out_[static_cast<std::size_t>(dst)], bytes);
  }
  const std::uint32_t mtu = fab_.config().mtu;
  const std::uint32_t seq = next_msg_seq_[static_cast<std::size_t>(dst)]++;
  const std::uint64_t frags =
      bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;
  const std::uint16_t flow =
      cfg_.flow_per_message ? static_cast<std::uint16_t>(seq + 1) : 0;
  ++msgs_sent_;
  bytes_sent_ += bytes;
  // All fragments are handed to the NIC at once; the access link's
  // output port serializes them, and the local send completes when the
  // last fragment's tail is on the wire (like a blocking send draining
  // a kernel buffer at wire rate). Fragments dropped at the uplink are
  // simply lost — the receiver's watchdog decides the failure.
  sim::SimTime last = sim_.now();
  std::uint64_t left = bytes;
  for (std::uint64_t i = 0; i < frags; ++i) {
    const std::uint64_t chunk = std::min<std::uint64_t>(left, mtu);
    left -= chunk;
    hw::Packet p;
    p.wire_bytes = chunk;
    p.dma_bytes = chunk;
    p.desc = sim_.packet_arena().make<FragDesc>(
        FragDesc{seq, static_cast<std::uint32_t>(frags),
                 static_cast<std::uint32_t>(i), tag, bytes, atag});
    ++frags_sent_;
    const sim::SimTime dep = port_.inject(dst, std::move(p), flow);
    if (dep > last) last = dep;
  }
  co_await sim_.delay_until(last);
}

sim::Task<void> FabricLib::recv(int src, std::uint64_t bytes,
                                std::uint32_t tag) {
  if (src < 0 || src >= fab_.hosts() || src == rank_) {
    throw std::invalid_argument("FabricLib::recv: bad source rank");
  }
  (void)bytes;  // matching is by (src, tag); sizes travel with the frames
  const Key k{src, tag};
  ArrivedMsg m;
  auto it = unexpected_.find(k);
  if (it != unexpected_.end() && !it->second.empty()) {
    m = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) unexpected_.erase(it);
  } else {
    PostedRecv pr(sim_);
    pr.id = next_recv_id_++;
    posted_[k].push_back(&pr);
    if (cfg_.delivery_timeout > 0) {
      watched_[pr.id] = k;
      arm_watchdog(pr.id);
    }
    co_await pr.done.wait();
    if (pr.failed) {
      throw sim::ProtocolFailure(
          cfg_.name + "#" + std::to_string(rank_) + ": recv from rank " +
          std::to_string(src) + " tag " + std::to_string(tag) +
          " starved past the delivery timeout");
    }
    m = pr.msg;
  }
  if (audit::Auditor* aud = sim_.auditor();
      aud != nullptr && m.audit.stream != 0) {
    aud->on_deliver(m.audit, m.bytes);
  }
}

sim::Task<void> FabricLib::rx_pump() {
  for (;;) {
    hw::fabric::FabricFrame f = co_await port_.delivered().pop();
    ++frags_received_;
    const FragDesc d = *f.pkt.desc.get<FragDesc>();
    // The descriptor lives in the *sender's* arena; release it before
    // any suspension (the arena hands remote frees to the owner).
    f.pkt.desc.reset();
    const sim::SimTime rx_cost = fab_.config().host_rx_cost;
    if (rx_cost > 0) co_await port_.node().cpu_cost(rx_cost);
    const Key pk{static_cast<int>(f.src), d.msg_seq};
    Partial& p = partials_[pk];
    if (p.got == 0) {
      p.want = d.frag_count;
      p.tag = d.tag;
      p.bytes = d.msg_bytes;
      p.audit = d.audit;
    }
    ++p.got;
    if (p.got >= p.want) {
      ArrivedMsg m{p.bytes, p.audit};
      const std::uint32_t tag = p.tag;
      partials_.erase(pk);
      complete_msg(static_cast<int>(f.src), tag, m);
    }
  }
}

void FabricLib::complete_msg(int src, std::uint32_t tag, ArrivedMsg m) {
  const Key k{src, tag};
  auto it = posted_.find(k);
  if (it != posted_.end() && !it->second.empty()) {
    PostedRecv* pr = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) posted_.erase(it);
    watched_.erase(pr->id);
    pr->msg = m;
    pr->done.set();
    return;
  }
  unexpected_[k].push_back(m);
}

void FabricLib::arm_watchdog(std::uint64_t recv_id) {
  sim_.call_after(cfg_.delivery_timeout, [this, recv_id] {
    auto w = watched_.find(recv_id);
    if (w == watched_.end()) return;  // matched in time
    const Key k = w->second;
    watched_.erase(w);
    auto it = posted_.find(k);
    if (it == posted_.end()) return;
    auto& queue = it->second;
    for (auto i = queue.begin(); i != queue.end(); ++i) {
      if ((*i)->id != recv_id) continue;
      PostedRecv* pr = *i;
      queue.erase(i);
      if (queue.empty()) posted_.erase(it);
      ++watchdog_failures_;
      pr->failed = true;
      pr->done.set();
      return;
    }
  });
}

netpipe::ProtocolCounters FabricLib::protocol_counters() const {
  netpipe::ProtocolCounters c;
  c.data_segments = frags_sent_;
  c.staged_bytes = bytes_sent_;
  c.relay_fragments = frags_received_;
  c.delivery_failures = watchdog_failures_;
  return c;
}

// ---------------------------------------------------------- FabricWorld

FabricWorld::FabricWorld(int ranks, FabricWorldOptions opt) {
  if (ranks < 2) {
    throw std::invalid_argument("FabricWorld: need at least 2 ranks");
  }
  int shards = opt.shards > 0 ? opt.shards : sim::ambient_shards();
  if (shards < 1) shards = 1;
  if (shards > ranks) shards = ranks;
  group_ = std::make_unique<sim::ShardGroup>(shards);
  if (opt.auditor != nullptr) {
    for (int s = 0; s < shards; ++s) {
      group_->shard(s).set_auditor(opt.auditor);
    }
  }
  cluster_ =
      std::make_unique<hw::Cluster>(group_->shard(0), opt.fabric.seed);
  // Contiguous block partition, same as RelayRing: rank r lives on
  // shard r*shards/ranks.
  for (int r = 0; r < ranks; ++r) {
    const int shard = static_cast<int>(
        static_cast<std::int64_t>(r) * shards / ranks);
    cluster_->add_node(opt.host, group_->shard(shard));
  }
  if (opt.clos) {
    fabric_ = std::make_unique<hw::fabric::Fabric>(
        *cluster_, opt.fabric, hw::fabric::ClosShape::fit(ranks));
  } else {
    const hw::fabric::FatTreeShape shape =
        opt.radix > 0 ? hw::fabric::FatTreeShape{opt.radix}
                      : hw::fabric::FatTreeShape::fit(ranks);
    fabric_ = std::make_unique<hw::fabric::Fabric>(*cluster_, opt.fabric,
                                                   shape);
  }
  libs_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    libs_.push_back(std::make_unique<FabricLib>(*fabric_, r, opt.lib));
  }
}

FabricWorld::~FabricWorld() = default;

}  // namespace pp::mp
