// Two-node experiment bed: the standard fixture every test, bench and
// example builds on. It owns the simulator, the cluster (two hosts, one
// NIC model, one duplex link) and the per-node TCP stacks, and can mint
// any number of connections over the shared link — just like running
// several sockets over one pair of NICs.
#pragma once

#include <string>
#include <utility>

#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/presets.h"
#include "tcpsim/socket.h"

namespace pp::mp {

class PairBed {
 public:
  PairBed(const hw::HostConfig& host, const hw::NicConfig& nic,
          const tcp::Sysctl& sysctl = {},
          const hw::LinkConfig& link_cfg = hw::presets::back_to_back())
      : PairBed(host, host, nic, sysctl, link_cfg) {}

  /// Heterogeneous pair (e.g. a P4 talking to a DS20) — the environment
  /// LAM's lamd mode and data conversion exist for.
  PairBed(const hw::HostConfig& host_a, const hw::HostConfig& host_b,
          const hw::NicConfig& nic, const tcp::Sysctl& sysctl = {},
          const hw::LinkConfig& link_cfg = hw::presets::back_to_back())
      : cluster(sim),
        node_a(cluster.add_node(host_a)),
        node_b(cluster.add_node(host_b)),
        link(cluster.connect(node_a, node_b, nic, link_cfg)),
        stack_a(node_a, sysctl),
        stack_b(node_b, sysctl) {}

  /// A new connection over the shared link; first socket lives on node A.
  std::pair<tcp::Socket, tcp::Socket> socket_pair(
      const std::string& name = "conn") {
    return tcp::connect(stack_a, stack_b, link,
                        name + "#" + std::to_string(next_conn_++));
  }

  sim::Simulator sim;
  hw::Cluster cluster;
  hw::Node& node_a;
  hw::Node& node_b;
  hw::Cluster::Duplex link;
  tcp::TcpStack stack_a;
  tcp::TcpStack stack_b;

 private:
  int next_conn_ = 0;
};

}  // namespace pp::mp
