// Common message-passing interface implemented by every library model
// (MPICH, LAM/MPI, MPI/Pro, MP_Lite, PVM, TCGMSG, and the GM/VIA
// variants).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "netpipe/counters.h"
#include "simcore/simulator.h"
#include "simcore/task.h"
#include "simhw/node.h"

namespace pp::mp {

/// Handle for a nonblocking operation.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<sim::Completion> c) : c_(std::move(c)) {}

  bool done() const { return !c_ || c_->done(); }

  sim::Task<void> wait() {
    if (c_) co_await c_->wait();
  }

 private:
  std::shared_ptr<sim::Completion> c_;
};

/// One rank's handle into a message-passing library instance.
class Library {
 public:
  virtual ~Library() = default;

  /// Blocking tagged send of `bytes` to rank `dst`.
  virtual sim::Task<void> send(int dst, std::uint64_t bytes,
                               std::uint32_t tag) = 0;

  /// Blocking tagged receive of exactly `bytes` from rank `src`. Matching
  /// is by (src, tag) with an unexpected-message queue, like MPI.
  virtual sim::Task<void> recv(int src, std::uint64_t bytes,
                               std::uint32_t tag) = 0;

  /// Nonblocking variants: the operation runs as a concurrent simulated
  /// task. Libraries without an independent progress engine still only
  /// move data when some call is blocked in the library (see DESIGN.md).
  virtual Request isend(int dst, std::uint64_t bytes, std::uint32_t tag);
  virtual Request irecv(int src, std::uint64_t bytes, std::uint32_t tag);

  virtual hw::Node& node() = 0;
  virtual int rank() const = 0;
  virtual std::string name() const = 0;

  /// Protocol-event totals seen from this rank's side (TCP segments on
  /// its sockets, its rendezvous handshakes, staging copies, relay
  /// fragments it pushed). Summing both ranks of a pair covers every
  /// socket end exactly once.
  virtual netpipe::ProtocolCounters protocol_counters() const { return {}; }
};

}  // namespace pp::mp
