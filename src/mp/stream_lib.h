// StreamLibrary: the protocol engine shared by every TCP-based
// message-passing library model.
//
// It implements, over a byte-stream socket per peer:
//  - tagged messages with an unexpected-message queue (MPI-style matching)
//  - an eager protocol (header + payload) below the rendezvous threshold
//  - a rendezvous protocol (RTS -> CTS -> payload) above it — the
//    handshake costs two extra one-way latencies, producing the
//    throughput dip at the threshold the paper shows for MPICH and LAM
//  - optional receive staging: payload always lands in a library buffer
//    and is memcpy'd to the user (MPICH/p4's behaviour — the source of
//    its 25-30 % large-message loss)
//  - optional per-byte data conversion (LAM without -O, PVM's XDR)
//  - optional synchronous-send completion ACKs (TCGMSG's SND semantics)
//  - a choice of progress engine: on-call (progress only inside library
//    calls) or an independent reader (MPI/Pro's progress thread,
//    MP_Lite's SIGIO handler)
//  - crash fencing: every dispatcher pass compares the socket's
//    connection epoch against the channel's last-seen value; a bump means
//    the transport crashed and reconnected underneath us, so in-flight
//    rendezvous handshakes are replayed (RTS re-sent for every parked
//    CTS waiter). A permanently failed socket raises
//    tcp::ConnectionFailed out of every blocked call instead of
//    deadlocking the single-reader discipline.
//
// Each concrete library is a thin configuration of this engine plus, for
// PVM and LAM's lamd mode, the DaemonRelay path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "mp/api.h"
#include "simcore/packet_arena.h"
#include "simcore/sync.h"
#include "tcpsim/socket.h"

namespace pp::mp {

/// How a library sizes its sockets' buffers (the paper's central tunable).
enum class BufferPolicy {
  kOsDefault,   ///< whatever the kernel gives (LAM, PVM)
  kFixed,       ///< a library-chosen constant (MPICH's P4_SOCKBUFSIZE,
                ///< TCGMSG's SR_SOCK_BUF_SIZE, MPI/Pro's internal size)
  kSysctlMax,   ///< raise to the system maximum (MP_Lite)
};

/// When the library moves data relative to application calls.
enum class ProgressMode {
  kOnCall,      ///< data moves only while a rank is inside the library
  kIndependent, ///< a progress engine drains the wire at all times
                ///< (MPI/Pro's thread, MP_Lite's SIGIO handler)
};

struct StreamConfig {
  std::string name = "stream-mp";
  std::uint32_t header_bytes = 32;
  /// Largest eager payload; larger messages use rendezvous. ~0 disables
  /// rendezvous entirely (MP_Lite).
  std::uint64_t eager_max = UINT64_MAX;
  /// Always stage received payloads in a library buffer and memcpy to the
  /// user (p4). When false, payloads matching a posted receive land
  /// directly in user memory.
  bool stage_all_receives = false;
  /// Extra per-byte CPU cost on both ends, as a multiple of the host's
  /// copy cost (1.0 = one extra memcpy-equivalent). Models XDR / LAM's
  /// heterogeneous conversion.
  double tx_conversion = 0.0;
  double rx_conversion = 0.0;
  /// TCGMSG: SND blocks until the matching RCV has completed.
  bool synchronous_send = false;
  /// p4 blocking-channel-device mode: long messages move through the
  /// staging buffer one bufferful at a time, each chunk acknowledged
  /// before the next is sent (the stop-and-wait behaviour that made
  /// P4_SOCKBUFSIZE so punishing when small). 0 disables.
  std::uint64_t stop_and_wait_chunk = 0;
  /// Fixed library bookkeeping per send/recv call.
  sim::SimTime per_call_cost = sim::microseconds(0.4);
  /// Extra latency handed to a separate progress thread per message end
  /// (MPI/Pro).
  sim::SimTime thread_handoff = 0;

  BufferPolicy buffer_policy = BufferPolicy::kOsDefault;
  std::uint32_t fixed_buffer_bytes = 0;

  ProgressMode progress = ProgressMode::kOnCall;

  /// If nonzero, payload is carried in fragments with this many bytes of
  /// extra header each (PVM's ~4 kB fragments).
  std::uint32_t fragment_payload = 0;
  std::uint32_t fragment_header = 0;

  /// Rendezvous watchdog: when nonzero, a sender whose RTS has drawn no
  /// CTS within this interval re-sends it (doubling per retry up to
  /// rendezvous_timeout_max). A lost handshake then stalls and recovers
  /// instead of deadlocking both ranks. 0 disables (the clean default —
  /// TCP below already repairs byte loss).
  sim::SimTime rendezvous_timeout = 0;
  sim::SimTime rendezvous_timeout_max = sim::milliseconds(10.0);

  /// Zero-copy receive staging: each outbound data message carries an
  /// arena-backed payload buffer, and the receiver takes a refcounted
  /// view of it instead of paying the staging memcpy when the message
  /// lands unexpected (or under stage_all_receives). Models page-flip /
  /// shared-buffer delivery; off by default — every library the paper
  /// measures really copies.
  bool zero_copy_staging = false;
};

class StreamLibrary : public Library {
 public:
  StreamLibrary(sim::Simulator& sim, int rank, hw::Node& node,
                StreamConfig config)
      : sim_(sim), rank_(rank), node_(node), config_(std::move(config)) {}

  /// Wires a socket to a peer rank, applying the library's buffer policy.
  /// Use wire_pair() to connect two libraries, which also links their
  /// wire-metadata queues.
  void bind_peer(int peer_rank, tcp::Socket socket);

  sim::Task<void> send(int dst, std::uint64_t bytes,
                       std::uint32_t tag) override;
  sim::Task<void> recv(int src, std::uint64_t bytes,
                       std::uint32_t tag) override;
  Request isend(int dst, std::uint64_t bytes, std::uint32_t tag) override;
  Request irecv(int src, std::uint64_t bytes, std::uint32_t tag) override;

  hw::Node& node() override { return node_; }
  int rank() const override { return rank_; }
  std::string name() const override { return config_.name; }

  const StreamConfig& config() const { return config_; }

  /// Count of rendezvous handshakes performed (for tests).
  std::uint64_t rendezvous_count() const { return rendezvous_count_; }
  /// RTS re-sends performed by the rendezvous watchdog (for tests).
  std::uint64_t rendezvous_retries() const { return rendezvous_retries_; }
  /// Bytes that went through the library staging buffer (for tests).
  std::uint64_t staged_bytes() const { return staged_bytes_; }
  /// Staged receives satisfied by a zero-copy payload view instead of a
  /// memcpy (only nonzero with zero_copy_staging).
  std::uint64_t zero_copy_receives() const { return zero_copy_receives_; }
  std::uint64_t zero_copy_bytes() const { return zero_copy_bytes_; }
  /// Connection-epoch bumps observed (transport crash/reconnect cycles
  /// the library re-fenced by replaying its rendezvous handshakes).
  std::uint64_t sessions_refenced() const { return sessions_refenced_; }

  netpipe::ProtocolCounters protocol_counters() const override;

 protected:
  enum class Kind : std::uint8_t { kData, kRts, kCts, kSyncAck };

  /// Metadata describing the next wire message; travels logically with
  /// the header bytes (the two endpoints share address space).
  struct WireMeta {
    Kind kind = Kind::kData;
    std::uint32_t tag = 0;
    std::uint64_t bytes = 0;
    bool rendezvous_payload = false;
    /// Delivery-oracle identity (audit/audit.h); stream 0 when no auditor
    /// is attached. Control metas (kRts/kCts/kSyncAck) stay untagged.
    audit::MsgTag audit;
  };

  struct PostedRecv {
    std::uint32_t tag = 0;
    std::uint64_t bytes = 0;
    bool matched = false;
    bool completed = false;
    bool was_staged = false;
    std::unique_ptr<sim::Trigger> done;
    /// Zero-copy view of the staged payload, when capture produced one.
    sim::PacketRef view;
  };

  struct UnexpectedMsg {
    std::uint32_t tag = 0;
    std::uint64_t bytes = 0;
    sim::PacketRef view;
    audit::MsgTag audit;  ///< consumed when recv() drains the message
  };

  /// A rendezvous sender parked on its CTS; tag-matched so re-sent
  /// handshakes cannot pair a CTS with the wrong waiter.
  struct CtsWait {
    sim::Trigger* trigger = nullptr;
    std::uint32_t tag = 0;
    std::uint64_t bytes = 0;
    std::uint32_t attempt = 0;
    sim::SimTime timeout = 0;  ///< next watchdog interval (backed off)
  };

  struct PeerChannel {
    int peer_rank = -1;
    tcp::Socket sock;
    // Outbound metadata mirror: the peer pops these as it reads headers.
    std::shared_ptr<std::deque<WireMeta>> meta_out;
    std::shared_ptr<std::deque<WireMeta>> meta_in;

    // Receive-side dispatcher state.
    bool reader_active = false;
    std::unique_ptr<sim::Signal> reader_changed;
    std::deque<PostedRecv*> posted;
    std::deque<UnexpectedMsg> unexpected;
    // Rendezvous requests that arrived before their receive was posted.
    std::deque<UnexpectedMsg> rts_pending;
    // Rendezvous: senders waiting for CTS, tag-matched per peer.
    std::deque<CtsWait> cts_waiters;
    // Synchronous sends waiting for the receiver's completion ACK.
    std::deque<sim::Trigger*> sync_waiters;
    // Serializes whole messages on the outbound stream.
    std::unique_ptr<sim::ByteSemaphore> tx_lock;

    /// Socket connection epoch as of the last dispatcher pass; a bump
    /// means the transport reconnected and rendezvous sessions replay.
    std::uint32_t last_epoch = 0;
    /// The socket failed permanently (SYN retries / RTO give-up): every
    /// blocked call on this channel raises instead of waiting forever.
    bool conn_failed = false;
    /// Delivery-oracle stream for outbound data messages (0 = no auditor).
    std::uint32_t audit_out = 0;
  };

  PeerChannel& channel(int peer);
  /// Instant event on this rank's library track (no-op untraced).
  void trace_instant(const char* what);
  sim::Task<void> read_one(PeerChannel& ch);
  /// Participates in (or waits on) the inbound dispatcher until `done()`
  /// holds: the single-reader discipline every socket-based MPI uses.
  sim::Task<void> drive_until(PeerChannel& ch, std::function<bool()> done);
  sim::Task<void> progress_daemon(PeerChannel& ch);
  sim::Task<void> send_wire(PeerChannel& ch, WireMeta meta,
                            std::uint64_t payload_bytes);
  /// send_wire under the channel's tx lock, releasing it even when the
  /// socket raises ConnectionFailed mid-message.
  sim::Task<void> send_locked(PeerChannel& ch, WireMeta meta,
                              std::uint64_t payload_bytes);
  /// Adopts a bumped connection epoch: replays the RTS of every parked
  /// CTS waiter so rendezvous handshakes survive a crash/reconnect.
  void refence_channel(PeerChannel& ch);
  /// Marks the channel failed and wakes every parked waiter.
  void fail_channel(PeerChannel& ch);
  sim::Task<void> send_message(PeerChannel& ch, std::uint64_t bytes,
                               std::uint32_t tag, bool sync);
  sim::Task<void> recv_message(PeerChannel& ch, std::uint64_t bytes,
                               std::uint32_t tag, bool sync);

  sim::Task<void> resend_rts(PeerChannel& ch, std::uint32_t tag,
                             std::uint64_t bytes, std::uint32_t attempt);
  void arm_rts_watchdog(PeerChannel& ch, std::uint32_t tag,
                        std::uint32_t attempt);

  std::uint64_t payload_with_fragment_overhead(std::uint64_t bytes) const;

  sim::Simulator& sim_;
  int rank_;
  hw::Node& node_;
  StreamConfig config_;
  std::map<int, PeerChannel> peers_;
  std::uint64_t rendezvous_count_ = 0;
  std::uint64_t rendezvous_retries_ = 0;
  std::uint64_t staged_bytes_ = 0;
  std::uint64_t zero_copy_receives_ = 0;
  std::uint64_t zero_copy_bytes_ = 0;
  std::uint64_t sessions_refenced_ = 0;

  /// Liveness token for watchdog timers outliving a torn-down library.
  std::shared_ptr<char> alive_ = std::make_shared<char>(1);

  friend void wire_pair(StreamLibrary& a, StreamLibrary& b, tcp::Socket sa,
                        tcp::Socket sb);
};

/// Connects two library endpoints over an established socket pair (sa on
/// a's node, sb on b's node) and links their wire-metadata queues.
void wire_pair(StreamLibrary& a, StreamLibrary& b, tcp::Socket sa,
               tcp::Socket sb);

}  // namespace pp::mp
