// Daemon relay path: models routing messages through per-node daemons
// (PVM's pvmd default route, LAM/MPI's lamd mode).
//
// Each message is fragmented; every fragment crosses two local IPC hops
// (application <-> daemon, costing a syscall, a copy and a daemon service
// wakeup on the node's CPU) and the network between the daemons, with a
// per-fragment credit handshake (the daemons' conservative flow control).
// This is what limits PVM's default route to ~90 Mbps and lamd to ~260
// Mbps in the paper while direct routes reach 330-550 Mbps.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/simulator.h"
#include "simcore/task.h"
#include "simhw/node.h"
#include "tcpsim/socket.h"

namespace pp::mp {

struct RelayOptions {
  std::uint32_t fragment_payload = 4080;  ///< pvmd's classic fragment size
  std::uint32_t fragment_header = 16;
  /// Fragments allowed in flight before waiting for a credit.
  int window = 1;
  /// Daemon wakeup + dispatch cost per fragment per hop.
  sim::SimTime daemon_service = sim::microseconds(20.0);
  std::uint32_t ack_bytes = 8;
  /// Zero-copy daemon route: the application hands the daemon a
  /// refcounted arena payload buffer per fragment instead of copying
  /// into daemon memory, and the far daemon delivers a view of the same
  /// buffer (both IPC staging copies skipped; syscall/service costs
  /// remain). Off by default — pvmd and lamd really copy.
  bool zero_copy = false;
};

/// One direction of a relayed channel (data flows src-app -> src-daemon ->
/// dst-daemon -> dst-app; credits return on the same daemon socket).
/// Instantiate two (with the socket pair of a dedicated daemon connection)
/// for a full-duplex relay.
class RelayChannel {
 public:
  RelayChannel(hw::Node& src, hw::Node& dst, tcp::Socket src_sock,
               tcp::Socket dst_sock, RelayOptions opt = {})
      : src_(src),
        dst_(dst),
        src_sock_(std::move(src_sock)),
        dst_sock_(std::move(dst_sock)),
        opt_(opt),
        track_("relay@" + std::to_string(src.id()) + "->" +
               std::to_string(dst.id())) {
    if (opt_.zero_copy) dst_sock_.enable_payload_capture();
  }

  /// Sends `bytes` from the source application through the daemons.
  /// Returns when the source daemon has received credit for everything.
  sim::Task<void> send(std::uint64_t bytes);

  /// Receives `bytes` at the destination application.
  sim::Task<void> recv(std::uint64_t bytes);

  const RelayOptions& options() const { return opt_; }

  /// Fragments pushed into the daemon route by send() (each is one
  /// app->daemon->daemon->app traversal).
  std::uint64_t fragments_relayed() const { return fragments_relayed_; }

  /// Fragments delivered at the destination via a zero-copy payload view
  /// (only nonzero with RelayOptions::zero_copy).
  std::uint64_t zero_copy_fragments() const { return zero_copy_fragments_; }

  /// The daemon-connection socket ends, for per-side counter assembly: a
  /// library reporting its relay_out's src plus its relay_in's dst covers
  /// each of the four socket ends of a relayed pair exactly once.
  const tcp::Socket& src_socket() const { return src_sock_; }
  const tcp::Socket& dst_socket() const { return dst_sock_; }

 private:
  void trace_instant(hw::Node& at, const char* what);

  std::uint64_t fragments_for(std::uint64_t bytes) const {
    if (bytes == 0) return 1;
    return (bytes + opt_.fragment_payload - 1) / opt_.fragment_payload;
  }

  hw::Node& src_;
  hw::Node& dst_;
  tcp::Socket src_sock_;
  tcp::Socket dst_sock_;
  RelayOptions opt_;
  std::string track_;
  std::uint64_t fragments_relayed_ = 0;
  std::uint64_t zero_copy_fragments_ = 0;
};

}  // namespace pp::mp
