// PVM 3.4 (paper §3.5, §4.5).
//
// Modelled mechanisms:
//  - the default route sends everything through the pvmd daemons (~90
//    Mbps in the paper); pvm_setopt(PvmRoute, PvmRouteDirect) gives a
//    4-fold improvement;
//  - pvm_initsend encoding: PvmDataDefault packs with XDR conversion,
//    PvmDataRaw packs with a plain copy, PvmDataInPlace skips the send
//    copy entirely (330 -> 415 Mbps in the paper); the receive side
//    always unpacks through a copy, which keeps PVM 25-30 % below TCP;
//  - data moves in pvmd-style ~4 kB fragments with per-fragment headers.
#pragma once

#include <memory>
#include <utility>

#include "mp/daemon_relay.h"
#include "mp/stream_lib.h"
#include "mp/testbed.h"

namespace pp::mp {

enum class PvmRoute { kDaemon, kDirect };
enum class PvmEncoding { kDefault, kRaw, kInPlace };

struct PvmOptions {
  PvmRoute route = PvmRoute::kDaemon;        // PVM's default!
  PvmEncoding encoding = PvmEncoding::kDefault;
};

class Pvm final : public Library {
 public:
  Pvm(sim::Simulator& sim, int rank, hw::Node& node, PvmOptions opt);

  sim::Task<void> send(int dst, std::uint64_t bytes,
                       std::uint32_t tag) override;
  sim::Task<void> recv(int src, std::uint64_t bytes,
                       std::uint32_t tag) override;

  hw::Node& node() override { return node_; }
  int rank() const override { return rank_; }
  std::string name() const override;
  netpipe::ProtocolCounters protocol_counters() const override;

  static std::pair<std::unique_ptr<Pvm>, std::unique_ptr<Pvm>> create_pair(
      PairBed& bed, PvmOptions opt = {});

 private:
  static StreamConfig make_stream_config(const PvmOptions& opt);
  /// Extra per-byte CPU passes for pvm_pk* under this encoding.
  double pack_factor() const;

  sim::Simulator& sim_;
  int rank_;
  hw::Node& node_;
  PvmOptions opt_;
  std::unique_ptr<StreamLibrary> stream_;    // direct route
  std::shared_ptr<RelayChannel> relay_out_;  // daemon route
  std::shared_ptr<RelayChannel> relay_in_;
};

}  // namespace pp::mp
