// MPI implementations over GM: MPICH-GM and MPI/Pro-GM (paper §5).
//
// Both keep GM's eager/rendezvous threshold at its optimal 16 kB default.
// Eager messages land in the library's GM buffer pool and are copied to
// the user buffer; rendezvous messages are placed directly ("MPICH-GM and
// MPI/Pro-GM results are nearly identical, losing only a few percent off
// the raw GM performance in the intermediate range").
#pragma once

#include <cassert>
#include <memory>
#include <string>

#include "gmsim/gm.h"
#include "mp/api.h"
#include "netpipe/transport.h"

namespace pp::mp {

struct GmMpiOptions {
  std::string name = "MPICH-GM";
  /// The Eager/Rendezvous threshold ("the default of 16 kB is already
  /// optimal").
  std::uint64_t eager_max = 16 * 1024;
  /// MPI/Pro's progress-thread handoff (0 for MPICH-GM).
  sim::SimTime thread_handoff = 0;
  sim::SimTime per_call_cost = sim::microseconds(0.5);
};

class GmMpi final : public Library {
 public:
  GmMpi(gm::GmPort& port, int rank, GmMpiOptions opt = {})
      : port_(port), rank_(rank), opt_(opt) {}

  sim::Task<void> send(int dst, std::uint64_t bytes,
                       std::uint32_t tag) override {
    (void)dst;
    assert(tag < kCtlBase && "user tags must stay below the control range");
    co_await port_.node().cpu_cost(opt_.per_call_cost);
    if (opt_.thread_handoff > 0) {
      co_await port_.node().simulator().delay(opt_.thread_handoff);
    }
    if (bytes <= opt_.eager_max) {
      co_await port_.send(bytes, tag);
    } else {
      rendezvous_count_ += 1;
      co_await port_.send(64, kCtlBase + tag);        // RTS
      co_await port_.recv(64, kCtlBase * 2 + tag);    // CTS
      co_await port_.send(bytes, tag);                // direct placement
    }
  }

  sim::Task<void> recv(int src, std::uint64_t bytes,
                       std::uint32_t tag) override {
    (void)src;
    co_await port_.node().cpu_cost(opt_.per_call_cost);
    if (opt_.thread_handoff > 0) {
      co_await port_.node().simulator().delay(opt_.thread_handoff);
    }
    if (bytes <= opt_.eager_max) {
      co_await port_.recv(bytes, tag);
      // Eager data sits in the GM buffer pool; copy out to the user.
      staged_bytes_ += bytes;
      co_await port_.node().staging_copy(bytes);
    } else {
      co_await port_.recv(64, kCtlBase + tag);        // RTS
      co_await port_.send(64, kCtlBase * 2 + tag);    // CTS
      co_await port_.recv(bytes, tag);
    }
  }

  hw::Node& node() { return port_.node(); }
  int rank() const override { return rank_; }
  std::string name() const override { return opt_.name; }

  netpipe::ProtocolCounters protocol_counters() const override {
    netpipe::ProtocolCounters c;
    c.rendezvous_handshakes = rendezvous_count_;
    // Library eager copies plus GM-level unexpected-arrival staging.
    c.staged_bytes = staged_bytes_ + port_.staged_bytes();
    c.delivery_failures = port_.delivery_failures();
    c.wire_drops = port_.wire_drops();
    return c;
  }

  static GmMpiOptions mpich_gm() { return GmMpiOptions{}; }
  static GmMpiOptions mpipro_gm() {
    GmMpiOptions o;
    o.name = "MPI/Pro-GM";
    o.thread_handoff = sim::microseconds(3.0);
    return o;
  }

 private:
  static constexpr std::uint32_t kCtlBase = 0x40000000;

  gm::GmPort& port_;
  int rank_;
  GmMpiOptions opt_;
  std::uint64_t rendezvous_count_ = 0;
  std::uint64_t staged_bytes_ = 0;
};

/// NetPIPE module for raw GM.
class GmTransport final : public netpipe::Transport {
 public:
  explicit GmTransport(gm::GmPort& port, std::string name = "raw GM")
      : port_(port), name_(std::move(name)) {}

  sim::Task<void> send(std::uint64_t bytes) override {
    return port_.send(bytes, 1);
  }
  sim::Task<void> recv(std::uint64_t bytes) override {
    return port_.recv(bytes, 1);
  }
  hw::Node& node() { return port_.node(); }
  std::string name() const override { return name_; }
  netpipe::ProtocolCounters counters() const override {
    netpipe::ProtocolCounters c;
    c.staged_bytes = port_.staged_bytes();
    c.delivery_failures = port_.delivery_failures();
    c.wire_drops = port_.wire_drops();
    return c;
  }

 private:
  gm::GmPort& port_;
  std::string name_;
};

}  // namespace pp::mp
