#include "mp/lam.h"

#include <cassert>

#include "netpipe/modules.h"

namespace pp::mp {

Lam::Lam(sim::Simulator& sim, int rank, hw::Node& node, LamOptions opt)
    : sim_(sim), rank_(rank), node_(node), opt_(opt) {
  if (opt_.mode != LamMode::kLamd) {
    stream_ = std::make_unique<StreamLibrary>(sim, rank, node,
                                              make_stream_config(opt_));
  }
}

std::string Lam::name() const {
  switch (opt_.mode) {
    case LamMode::kLamd:
      return "LAM/MPI (lamd)";
    case LamMode::kC2c:
      return "LAM/MPI (c2c)";
    case LamMode::kC2cO:
      return "LAM/MPI -O";
  }
  return "LAM/MPI";
}

netpipe::ProtocolCounters Lam::protocol_counters() const {
  if (opt_.mode != LamMode::kLamd) return stream_->protocol_counters();
  netpipe::ProtocolCounters c;
  c.relay_fragments = relay_out_->fragments_relayed();
  c += netpipe::tcp_socket_counters(relay_out_->src_socket());
  c += netpipe::tcp_socket_counters(relay_in_->dst_socket());
  return c;
}

StreamConfig Lam::make_stream_config(const LamOptions& opt) {
  StreamConfig c;
  c.name = opt.mode == LamMode::kC2cO ? "LAM/MPI -O" : "LAM/MPI (c2c)";
  c.header_bytes = 24;
  c.eager_max = 64 * 1024 - 1;  // fixed; the non-tunable Figure-1 dip
  // LAM sizes its c2c socket buffers itself; they are not a user tunable,
  // which is what costs it ~25 % in the paper's fast DS20 environment.
  c.buffer_policy = BufferPolicy::kFixed;
  c.fixed_buffer_bytes = 44 * 1024;
  if (opt.mode == LamMode::kC2c) {
    // Heterogeneous data conversion on both ends.
    c.tx_conversion = 0.9;
    c.rx_conversion = 0.9;
  }
  c.per_call_cost = sim::microseconds(0.6);
  return c;
}

sim::Task<void> Lam::send(int dst, std::uint64_t bytes, std::uint32_t tag) {
  if (opt_.mode != LamMode::kLamd) {
    co_await stream_->send(dst, bytes, tag);
    co_return;
  }
  (void)dst;
  (void)tag;  // lamd relays preserve pairwise order; tags ride along
  co_await relay_out_->send(bytes);
}

sim::Task<void> Lam::recv(int src, std::uint64_t bytes, std::uint32_t tag) {
  if (opt_.mode != LamMode::kLamd) {
    co_await stream_->recv(src, bytes, tag);
    co_return;
  }
  (void)src;
  (void)tag;
  co_await relay_in_->recv(bytes);
}

std::pair<std::unique_ptr<Lam>, std::unique_ptr<Lam>> Lam::create_pair(
    PairBed& bed, LamOptions opt) {
  auto a = std::make_unique<Lam>(bed.sim, 0, bed.node_a, opt);
  auto b = std::make_unique<Lam>(bed.sim, 1, bed.node_b, opt);
  if (opt.mode != LamMode::kLamd) {
    auto [sa, sb] = bed.socket_pair("lam");
    wire_pair(*a->stream_, *b->stream_, std::move(sa), std::move(sb));
    return {std::move(a), std::move(b)};
  }
  // lamd: one dedicated daemon connection per direction.
  RelayOptions ropt;
  ropt.fragment_payload = 8192;
  ropt.fragment_header = 24;
  ropt.window = 2;  // lamd keeps a couple of packets in flight
  ropt.daemon_service = sim::microseconds(40.0);
  auto [da, db] = bed.socket_pair("lamd.fwd");
  auto [ea, eb] = bed.socket_pair("lamd.rev");
  auto fwd = std::make_shared<RelayChannel>(bed.node_a, bed.node_b,
                                            std::move(da), std::move(db),
                                            ropt);
  auto rev = std::make_shared<RelayChannel>(bed.node_b, bed.node_a,
                                            std::move(eb), std::move(ea),
                                            ropt);
  a->relay_out_ = fwd;
  a->relay_in_ = rev;
  b->relay_out_ = rev;
  b->relay_in_ = fwd;
  return {std::move(a), std::move(b)};
}

}  // namespace pp::mp
