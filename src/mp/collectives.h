// Collective operations over any Library endpoint: the "many common
// global operations" MP_Lite supports (paper §3.4), built portably on
// point-to-point calls like TCGMSG's and PVM's collectives were.
//
// Two algorithm families are selectable side by side:
//  - ring forms (the classic MP_Lite formulations): pipelined
//    broadcast, reduce-scatter+allgather allreduce (bandwidth-optimal),
//    N-1 step allgather, and a token barrier — O(N) latency steps;
//  - tree/dissemination forms (what scalable switch clusters use):
//    binomial-tree broadcast, dissemination barrier and Bruck-style
//    dissemination allgather, and recursive-doubling allreduce — all
//    O(log N) latency steps.
// Reduction arithmetic is charged on the CPU as one pass over the bytes.
//
// Every collective validates its communicator eagerly: a null library,
// size <= 0, or a rank/root outside [0, size) throws
// std::invalid_argument *before* any coroutine is created, so misuse
// fails at the call site rather than hanging a ring.
#pragma once

#include <cstdint>

#include "mp/api.h"
#include "simcore/task.h"

namespace pp::mp {

/// A rank's view of the communicator (the name predates the
/// tree/dissemination algorithms; it is just rank + size + endpoint).
struct RingComm {
  Library* lib = nullptr;
  int rank = 0;
  int size = 0;

  int left() const { return (rank + size - 1) % size; }
  int right() const { return (rank + 1) % size; }
};

/// Throws std::invalid_argument unless comm.lib != null, comm.size >= 1
/// and 0 <= comm.rank < comm.size. Called by every collective.
void validate(const RingComm& comm);

/// Pipelined ring broadcast of `bytes` from `root`.
sim::Task<void> ring_broadcast(RingComm comm, int root, std::uint64_t bytes,
                               std::uint32_t tag = 0x1000);

/// Bandwidth-optimal ring allreduce of a `bytes`-sized vector.
sim::Task<void> ring_allreduce(RingComm comm, std::uint64_t bytes,
                               std::uint32_t tag = 0x2000);

/// Ring allgather: every rank contributes `block_bytes` and ends with
/// size * block_bytes.
sim::Task<void> ring_allgather(RingComm comm, std::uint64_t block_bytes,
                               std::uint32_t tag = 0x3000);

/// Ring barrier: a token travels the ring twice.
sim::Task<void> ring_barrier(RingComm comm, std::uint32_t tag = 0x4000);

/// Binomial-tree broadcast of `bytes` from `root`: ceil(log2 N) rounds,
/// each informed rank forwarding to one new rank per round.
sim::Task<void> tree_broadcast(RingComm comm, int root, std::uint64_t bytes,
                               std::uint32_t tag = 0x5000);

/// Dissemination barrier: ceil(log2 N) rounds, rank r signalling
/// r + 2^k and waiting on r - 2^k each round.
sim::Task<void> dissemination_barrier(RingComm comm,
                                      std::uint32_t tag = 0x6000);

/// Bruck-style dissemination allgather: ceil(log2 N) rounds of
/// doubling block exchanges; every rank ends with size * block_bytes.
sim::Task<void> dissemination_allgather(RingComm comm,
                                        std::uint64_t block_bytes,
                                        std::uint32_t tag = 0x7000);

/// Recursive-doubling allreduce of a `bytes`-sized vector: log2 N
/// full-vector exchanges (latency-optimal for short vectors), with the
/// standard fold to the nearest power of two for non-power-of-2 sizes.
sim::Task<void> doubling_allreduce(RingComm comm, std::uint64_t bytes,
                                   std::uint32_t tag = 0x8000);

}  // namespace pp::mp
