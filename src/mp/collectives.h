// Ring-based collective operations over any Library endpoint: the
// "many common global operations" MP_Lite supports (paper §3.4), built
// portably on point-to-point calls like TCGMSG's and PVM's collectives
// were.
//
// Algorithms are the classic ring formulations:
//  - broadcast: pipeline around the ring from the root;
//  - allreduce: reduce-scatter then allgather, each N-1 ring steps on
//    size/N chunks (bandwidth-optimal);
//  - allgather: N-1 ring steps of the per-rank block;
//  - barrier: a zero-byte token twice around the ring.
// Reduction arithmetic is charged on the CPU as one pass over the bytes.
#pragma once

#include <cstdint>

#include "mp/api.h"
#include "simcore/task.h"

namespace pp::mp {

/// A rank's view of the ring.
struct RingComm {
  Library* lib = nullptr;
  int rank = 0;
  int size = 0;

  int left() const { return (rank + size - 1) % size; }
  int right() const { return (rank + 1) % size; }
};

/// Pipelined ring broadcast of `bytes` from `root`.
sim::Task<void> ring_broadcast(RingComm comm, int root, std::uint64_t bytes,
                               std::uint32_t tag = 0x1000);

/// Bandwidth-optimal ring allreduce of a `bytes`-sized vector.
sim::Task<void> ring_allreduce(RingComm comm, std::uint64_t bytes,
                               std::uint32_t tag = 0x2000);

/// Ring allgather: every rank contributes `block_bytes` and ends with
/// size * block_bytes.
sim::Task<void> ring_allgather(RingComm comm, std::uint64_t block_bytes,
                               std::uint32_t tag = 0x3000);

/// Ring barrier: a token travels the ring twice.
sim::Task<void> ring_barrier(RingComm comm, std::uint32_t tag = 0x4000);

}  // namespace pp::mp
