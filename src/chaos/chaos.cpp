#include "chaos/chaos.h"

#include <array>
#include <memory>
#include <mutex>
#include <utility>

#include "faults/config.h"
#include "faults/plan_io.h"
#include "gmsim/gm.h"
#include "mp/adapters.h"
#include "mp/gm_mpi.h"
#include "mp/mpich.h"
#include "mp/testbed.h"
#include "mp/via_mpi.h"
#include "netpipe/modules.h"
#include "simhw/presets.h"
#include "viasim/via.h"

namespace pp::chaos {

namespace {

/// SplitMix64 stream for plan generation. Not shared with any injector:
/// the plan's rules derive their own streams from the plan seed at
/// apply() time, so generating a plan never perturbs its execution.
struct SplitMix64 {
  std::uint64_t x;

  std::uint64_t next() {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  double in(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  std::uint64_t range(std::uint64_t n) { return next() % n; }
};

/// Keeps a library pair alive for the duration of a measurement while
/// exposing one endpoint as a NetPIPE transport (the bench harness has
/// its own copy; this one keeps src/ free of bench includes).
class HeldLib final : public netpipe::Transport {
 public:
  HeldLib(std::shared_ptr<void> keep, mp::Library& lib, int peer)
      : keep_(std::move(keep)), t_(lib, peer) {}

  sim::Task<void> send(std::uint64_t b) override { return t_.send(b); }
  sim::Task<void> recv(std::uint64_t b) override { return t_.recv(b); }
  std::string name() const override { return t_.name(); }
  netpipe::ProtocolCounters counters() const override {
    return t_.counters();
  }

 private:
  std::shared_ptr<void> keep_;
  mp::LibraryTransport t_;
};

netpipe::RunResult run_tcp(const faults::FaultPlan& plan,
                           const netpipe::RunOptions& opts,
                           audit::Auditor* aud) {
  mp::PairBed bed(hw::presets::pentium4_pc(), hw::presets::netgear_ga620(),
                  chaos_sysctl(!plan.empty()));
  if (aud) bed.sim.set_auditor(aud);
  faults::apply(plan, bed.cluster);
  auto [sa, sb] = bed.socket_pair("chaos");
  for (tcp::Socket* s : {&sa, &sb}) {
    s->set_send_buffer(256 << 10);
    s->set_recv_buffer(256 << 10);
  }
  netpipe::TcpTransport ta(sa, "tcp"), tb(sb, "tcp");
  return netpipe::run_netpipe(bed.sim, ta, tb, opts);
}

netpipe::RunResult run_mpich(const faults::FaultPlan& plan,
                             const netpipe::RunOptions& opts,
                             audit::Auditor* aud) {
  mp::PairBed bed(hw::presets::pentium4_pc(), hw::presets::netgear_ga620(),
                  chaos_sysctl(!plan.empty()));
  if (aud) bed.sim.set_auditor(aud);
  faults::apply(plan, bed.cluster);
  mp::MpichOptions o;
  o.p4_sockbufsize = 256 << 10;
  auto pair = mp::Mpich::create_pair(bed, o);
  auto shared = std::make_shared<decltype(pair)>(std::move(pair));
  HeldLib ta(shared, *shared->first, 1), tb(shared, *shared->second, 0);
  return netpipe::run_netpipe(bed.sim, ta, tb, opts);
}

netpipe::RunResult run_gm(const faults::FaultPlan& plan,
                          const netpipe::RunOptions& opts,
                          audit::Auditor* aud) {
  sim::Simulator s;
  if (aud) s.set_auditor(aud);
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  gm::GmConfig gc;
  if (!plan.empty()) {
    gc.delivery_timeout = sim::microseconds(500.0);
    gc.max_delivery_attempts = 10;
  }
  gm::GmFabric fab(c, a, b, hw::presets::myrinet_pci64a(),
                   hw::presets::back_to_back(), gc);
  faults::apply(plan, c);
  mp::GmTransport ta(fab.port_a()), tb(fab.port_b());
  return netpipe::run_netpipe(s, ta, tb, opts);
}

netpipe::RunResult run_via(const faults::FaultPlan& plan,
                           const netpipe::RunOptions& opts,
                           audit::Auditor* aud) {
  sim::Simulator s;
  if (aud) s.set_auditor(aud);
  hw::Cluster c(s);
  auto& a = c.add_node(hw::presets::pentium4_pc());
  auto& b = c.add_node(hw::presets::pentium4_pc());
  via::ViaConfig vc;
  if (!plan.empty()) {
    vc.delivery_timeout = sim::microseconds(500.0);
    vc.max_delivery_attempts = 10;
  }
  via::ViaFabric fab(c, a, b, hw::presets::giganet_clan(),
                     hw::presets::switched(), vc);
  faults::apply(plan, c);
  mp::ViaTransport ta(fab.end_a()), tb(fab.end_b());
  return netpipe::run_netpipe(s, ta, tb, opts);
}

}  // namespace

const char* to_string(Scenario s) {
  switch (s) {
    case Scenario::kTcp: return "tcp";
    case Scenario::kMpich: return "mpich";
    case Scenario::kGm: return "gm";
    case Scenario::kVia: return "via";
  }
  return "unknown";
}

bool scenario_from_string(const std::string& name, Scenario& out) {
  for (Scenario s : kScenarios) {
    if (name == to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kClean: return "clean";
    case Verdict::kRecovered: return "recovered";
    case Verdict::kDegraded: return "degraded";
    case Verdict::kFailed: return "failed";
    case Verdict::kHung: return "hung";
    case Verdict::kError: return "error";
  }
  return "unknown";
}

netpipe::RunOptions chaos_run_options() {
  netpipe::RunOptions o;
  o.schedule.max_bytes = 16 << 10;
  o.repeats = 1;
  o.warmup = 0;
  return o;
}

sweep::SweepOptions chaos_sweep_options() {
  sweep::SweepOptions o;
  o.keep_going = true;
  // Generous on purpose: a worst-case flap+corruption plan pays one RTO
  // (up to 640 ms backed off) per flap-window drop, which legitimately
  // stretches a ping-pong schedule to tens of simulated seconds. Slow
  // progress must classify degraded, not hung; a genuine livelock still
  // hits this deadline within milliseconds of host time (timer-loop
  // events are cheap), and a runaway event storm hits the event budget.
  o.limits.sim_deadline = sim::seconds(120.0);
  o.limits.event_budget = 200'000'000ull;
  // A budget blowout IS the hung verdict; retrying with doubled budgets
  // would only delay (or mask) it. Every recovery path is bounded well
  // under these limits, so there are no legitimate slow convergers.
  o.watchdog_retries = 0;
  return o;
}

tcp::Sysctl chaos_sysctl(bool armed) {
  tcp::Sysctl s = tcp::Sysctl::tuned();
  if (armed) {
    // rto_give_up: ~1.9 s of barren exponential backoff before giving
    // up — far beyond any restart downtime chaos generates (<= 10 ms),
    // so only a permanently dark peer trips it. The keepalive covers
    // the complementary hole: a receiver parked with nothing in flight.
    s.rto_give_up = 6;
    s.keepalive_interval = sim::milliseconds(5.0);
    s.keepalive_probes = 5;
  }
  return s;
}

faults::FaultPlan random_plan(std::uint64_t seed) {
  SplitMix64 rng{faults::derive_seed(seed, "chaos-plan")};
  faults::FaultPlan plan;
  plan.seed = seed;
  const int nrules = 1 + static_cast<int>(rng.range(3));
  bool have_permanent = false;
  for (int i = 0; i < nrules; ++i) {
    switch (rng.range(6)) {
      case 0:
      case 1: {  // crash/restart — the tentpole fault, drawn twice as often
        faults::HostCrashConfig c;
        c.at = static_cast<sim::SimTime>(rng.in(100e3, 2e6));  // 0.1–2 ms
        c.downtime =
            static_cast<sim::SimTime>(rng.in(200e3, 10e6));  // 0.2–10 ms
        if (!have_permanent && rng.uniform() < 0.25) {
          // At most one permanent crash: with both nodes dark nothing
          // can make progress or fail, by construction.
          c.mode = faults::HostCrashConfig::Mode::kPermanent;
          have_permanent = true;
        }
        plan.add_crash(static_cast<int>(rng.range(2)), c);
        break;
      }
      case 2: {  // frame loss: Bernoulli or Gilbert–Elliott bursts
        faults::LinkFaultConfig c;
        if (rng.uniform() < 0.5) {
          c.loss = rng.in(0.001, 0.05);
        } else {
          c.ge_good_to_bad = rng.in(1e-4, 5e-3);
          c.ge_bad_to_good = rng.in(0.05, 0.5);
        }
        plan.add_link("", c);
        break;
      }
      case 3: {  // timed link flap
        faults::LinkFaultConfig c;
        c.flap_period = static_cast<sim::SimTime>(rng.in(1e6, 5e6));
        c.flap_down = static_cast<sim::SimTime>(
            static_cast<double>(c.flap_period) * rng.in(0.1, 0.3));
        plan.add_link("", c);
        break;
      }
      case 4: {  // NIC trouble: tiny rx ring or stalled interrupts
        faults::NicFaultConfig c;
        if (rng.uniform() < 0.5) {
          constexpr std::size_t kRings[] = {8, 16, 32};
          c.ring_slots = kRings[rng.range(3)];
        } else {
          c.irq_stall = rng.in(0.005, 0.05);
          c.irq_stall_time = static_cast<sim::SimTime>(rng.in(100e3, 500e3));
        }
        plan.add_nic("", c);
        break;
      }
      default: {  // corruption / reorder / duplication grab-bag
        faults::LinkFaultConfig c;
        const double which = rng.uniform();
        if (which < 0.34) {
          c.corrupt = rng.in(0.001, 0.02);
        } else if (which < 0.67) {
          c.reorder = rng.in(0.01, 0.1);
        } else {
          c.duplicate = rng.in(0.01, 0.1);
        }
        plan.add_link("", c);
        break;
      }
    }
  }
  return plan;
}

namespace {

netpipe::RunResult run_scenario(Scenario sc, const faults::FaultPlan& plan,
                                const netpipe::RunOptions& opts,
                                audit::Auditor* aud) {
  switch (sc) {
    case Scenario::kTcp: return run_tcp(plan, opts, aud);
    case Scenario::kMpich: return run_mpich(plan, opts, aud);
    case Scenario::kGm: return run_gm(plan, opts, aud);
    case Scenario::kVia: return run_via(plan, opts, aud);
  }
  return run_tcp(plan, opts, aud);  // unreachable
}

}  // namespace

sweep::JobSpec scenario_job(Scenario sc, std::string label,
                            faults::FaultPlan plan,
                            std::shared_ptr<audit::Summary> audit_sink) {
  const netpipe::RunOptions opts = chaos_run_options();
  auto run = [sc, plan = std::move(plan), opts,
              sink = std::move(audit_sink)] {
    if (!sink) return run_scenario(sc, plan, opts, nullptr);
    // One oracle per run, seeded from the plan so repeated runs of the
    // same plan produce identical ledgers. The ledger is closed on every
    // exit path: the sweep executor swallows/records the exceptions, so
    // this wrapper is the last code guaranteed to see them.
    auto aud =
        std::make_unique<audit::Auditor>(faults::derive_seed(plan.seed,
                                                             "audit"));
    aud->set_fault_plan(faults::to_text(plan));
    try {
      netpipe::RunResult r = run_scenario(sc, plan, opts, aud.get());
      // run_netpipe already finalized kCompleted and stamped r.audit.
      if (r.audit) *sink = *r.audit;
      return r;
    } catch (const sim::ProtocolFailure&) {
      *sink = aud->finalize(audit::RunOutcome::kFailed);
      throw;
    } catch (...) {
      // Watchdog kill (budget/deadline) or a genuine error: the run was
      // cut mid-flight, conservation is indeterminate.
      *sink = aud->finalize(audit::RunOutcome::kAborted);
      throw;
    }
  };
  return sweep::JobSpec{std::move(label), std::move(run)};
}

double baseline_mbps(Scenario sc) {
  // One fault-free run per scenario, cached: the simulator is
  // deterministic, so a single measurement is exact and thread-safe to
  // share (call_once guards the sweep's worker threads).
  static std::array<double, 4> cache{};
  static std::array<std::once_flag, 4> flags;
  const auto i = static_cast<std::size_t>(sc);
  std::call_once(flags[i], [&] {
    const sweep::JobSpec job = scenario_job(sc, "baseline", {});
    cache[i] = job.run().max_mbps;
  });
  return cache[i];
}

Verdict classify(const sweep::JobResult& jr, double baseline,
                 const audit::Summary* audit) {
  // Oracle violations trump everything: the counters can look like a
  // textbook recovery while the stack quietly corrupted or lost a
  // message. That is a bug — the verdict the chaos tier asserts against.
  if (audit != nullptr && audit->has_violations()) return Verdict::kError;
  if (!jr.ok) {
    switch (jr.status) {
      case sweep::JobStatus::kFailed: return Verdict::kFailed;
      case sweep::JobStatus::kWatchdog: return Verdict::kHung;
      default: return Verdict::kError;
    }
  }
  if (baseline > 0.0 && jr.result.max_mbps < 0.5 * baseline) {
    return Verdict::kDegraded;
  }
  const netpipe::ProtocolCounters& c = jr.result.counters;
  const bool touched = c.retransmits > 0 || c.fast_retransmits > 0 ||
                       c.reconnects > 0 || c.wire_drops > 0 ||
                       c.checksum_drops > 0 || c.rendezvous_retries > 0 ||
                       c.delivery_failures > 0;
  return touched ? Verdict::kRecovered : Verdict::kClean;
}

Verdict run_verdict(Scenario sc, const faults::FaultPlan& plan, int shards) {
  sweep::SweepSpec spec;
  spec.name = "chaos-oracle";
  spec.jobs.push_back(scenario_job(sc, to_string(sc), plan));
  sweep::SweepOptions opt = chaos_sweep_options();
  opt.threads = 1;
  opt.shards = shards;
  const sweep::SweepResult sr = run_sweep(spec, opt);
  return classify(sr.jobs[0], baseline_mbps(sc));
}

Verdict run_verdict_audited(Scenario sc, const faults::FaultPlan& plan,
                            int shards, audit::Summary* out) {
  auto sink = std::make_shared<audit::Summary>();
  sweep::SweepSpec spec;
  spec.name = "chaos-oracle";
  spec.jobs.push_back(scenario_job(sc, to_string(sc), plan, sink));
  sweep::SweepOptions opt = chaos_sweep_options();
  opt.threads = 1;
  opt.shards = shards;
  const sweep::SweepResult sr = run_sweep(spec, opt);
  if (out != nullptr) *out = *sink;
  return classify(sr.jobs[0], baseline_mbps(sc), sink.get());
}

}  // namespace pp::chaos
