// Chaos harness: randomized fault plans, protocol scenarios and verdict
// classification.
//
// The recovery machinery (TCP epoch re-handshakes, GM/VIA port
// re-registration, stream-library session fencing) is only trustworthy
// if it survives faults it was not hand-tuned for. This library generates
// seeded random fault plans — crashes, loss, burst loss, flaps, NIC
// trouble — runs them against each protocol stack and classifies every
// run:
//
//   clean      completed, no recovery machinery engaged
//   recovered  completed after engaging recovery (retransmits,
//              reconnects, delivery retries, rendezvous replays)
//   degraded   completed but below half the fault-free throughput
//   failed     the stack *decided* it cannot complete (give-up caps
//              exhausted — the correct outcome for a permanent crash)
//   hung       watchdog kill: the stack neither completed nor failed.
//              Always a bug; the chaos tier asserts zero of these.
//   error      unexpected exception (deadlock, assertion) — also a bug
//
// bench/chaos sweeps hundreds of plans; tools/minimize_plan shrinks a
// failing one to a 1-minimal reproducer via faults::minimize. The same
// scenario runners back both, so a verdict reproduces outside the sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "audit/audit.h"
#include "faults/plan.h"
#include "netpipe/runner.h"
#include "sweep/sweep.h"
#include "tcpsim/tuning.h"

namespace pp::chaos {

/// Protocol stack under test. kTcp is a raw tuned socket pair; kMpich
/// adds the stream library's rendezvous protocol on top of TCP; kGm and
/// kVia are the OS-bypass fabrics with their delivery watchdogs.
enum class Scenario { kTcp, kMpich, kGm, kVia };

inline constexpr Scenario kScenarios[] = {Scenario::kTcp, Scenario::kMpich,
                                          Scenario::kGm, Scenario::kVia};

const char* to_string(Scenario s);

/// Parses a scenario name ("tcp", "mpich", "gm", "via") for CLI use.
bool scenario_from_string(const std::string& name, Scenario& out);

enum class Verdict { kClean, kRecovered, kDegraded, kFailed, kHung, kError };

const char* to_string(Verdict v);

/// A verdict the chaos tier tolerates: every run must either complete or
/// fail by decision. Hung/error runs are bugs by definition.
inline bool acceptable(Verdict v) {
  return v != Verdict::kHung && v != Verdict::kError;
}

/// Chaos measurements are small (64 kB ping-pong, one repeat): the point
/// is surviving faults, not measuring bandwidth precisely.
netpipe::RunOptions chaos_run_options();

/// Sweep options for chaos fan-out: keep_going with watchdog budgets so
/// a wedged plan degrades to a `hung` verdict instead of blocking.
sweep::SweepOptions chaos_sweep_options();

/// The sysctl chaos TCP scenarios run under. Armed runs (non-empty plan)
/// cap recovery so a permanently dead peer yields `failed`, never a
/// hang: rto_give_up plus a keepalive for survivors with nothing in
/// flight. Unarmed runs keep the defaults (retry forever) so the null
/// plan stays bit-identical to a faultless run.
tcp::Sysctl chaos_sysctl(bool armed);

/// Deterministic random plan for `seed`: 1–3 rules drawn from crashes
/// (weighted highest — they are the tentpole fault), Bernoulli and
/// Gilbert–Elliott loss, link flaps, NIC ring-overflow/IRQ-stall and
/// corrupt/reorder/duplicate rules. At most one *permanent* crash per
/// plan (both nodes permanently dark cannot make progress by
/// construction). Same seed, same plan, on every platform.
faults::FaultPlan random_plan(std::uint64_t seed);

/// A self-contained sweep job running `plan` against scenario `sc` on a
/// fresh simulator. Non-empty plans arm the scenario's give-up caps
/// (chaos_sysctl, GM/VIA delivery watchdog + attempt cap).
///
/// When `audit_sink` is non-null the job attaches a delivery-oracle
/// Auditor (audit/audit.h, seeded from the plan) to its simulator and
/// writes the finalized accounting into the sink on every exit path: a
/// normal return finalizes kCompleted, a ProtocolFailure kFailed, and a
/// watchdog kill (budget/deadline/deadlock) kAborted. The oracle is
/// observe-only, so the measured run is bit-identical either way.
sweep::JobSpec scenario_job(Scenario sc, std::string label,
                            faults::FaultPlan plan,
                            std::shared_ptr<audit::Summary> audit_sink =
                                nullptr);

/// Fault-free throughput of `sc` under chaos_run_options (cached after
/// the first call; the simulator is deterministic, so one run is exact).
double baseline_mbps(Scenario sc);

/// Classifies a finished job against the scenario's fault-free
/// throughput (pass 0 to skip the degraded check). When `audit` is
/// given, any oracle violation upgrades the verdict to kError regardless
/// of counters — a run that "completed" while corrupting, duplicating or
/// losing messages unaccounted is a bug, not a recovery.
Verdict classify(const sweep::JobResult& jr, double baseline,
                 const audit::Summary* audit = nullptr);

/// Runs one scenario+plan synchronously under the chaos watchdog and
/// classifies the outcome. `shards` >= 2 exercises the sharded event
/// loop (bit-identical, but a different host-side execution). This is
/// the oracle building block for tools/minimize_plan.
Verdict run_verdict(Scenario sc, const faults::FaultPlan& plan,
                    int shards = 1);

/// run_verdict with the delivery oracle attached: audit violations
/// upgrade the verdict to kError, so `faults::minimize` can ddmin a
/// violating plan exactly as it shrinks a hang. `out` (optional)
/// receives the finalized accounting summary.
Verdict run_verdict_audited(Scenario sc, const faults::FaultPlan& plan,
                            int shards = 1, audit::Summary* out = nullptr);

}  // namespace pp::chaos
