// Simulated TCP: stacks, connections and the blocking socket API the
// message-passing libraries are built on.
//
// Fidelity notes (what is and is not modelled):
//  - Real sliding-window flow control: the sender is limited by the
//    receiver-advertised window and by its own send buffer; ACKs (one per
//    two segments, plus delayed-ACK flushes and window updates) carry the
//    advertisement back through the same NIC path as data, so ACK delay
//    from interrupt mitigation inflates the effective RTT exactly as on
//    real hardware. This is the mechanism behind the paper's central
//    finding that socket buffer sizes dominate GigE performance.
//  - Every user<->kernel crossing costs a syscall and a memcpy charged on
//    the node's CPU resource.
//  - Loss recovery is go-back-N: an out-of-order arrival is discarded
//    with a duplicate ACK; `Sysctl::dupack_threshold` duplicates trigger
//    one fast retransmit per window (NewReno-style recovery point), and
//    an RTO with no ACK progress rewinds to the last acked byte with true
//    exponential backoff (doubled per barren interval, capped at
//    `Sysctl::retransmit_timeout_max`, reset by ACK progress). Segments
//    that arrive bit-corrupted (fault injection, `faults::FaultPlan`)
//    fail the checksum and are dropped before protocol processing, so
//    corruption recovers through the same retransmission machinery as
//    loss. Frames are only actually lost/corrupted when fault injection
//    is enabled; the paper's back-to-back fabrics are configured
//    lossless, so these paths stay cold there and throughput is governed
//    purely by flow control and per-packet costs.
//  - Reno-style congestion control (slow start, congestion avoidance,
//    multiplicative decrease — the 2.4 kernel's behaviour) is on by
//    default and can be disabled per stack to study pure flow control
//    (`Sysctl::congestion_control`).
//  - Crash/restart recovery (fault injection, `faults::HostCrashConfig`):
//    every segment is stamped with a connection *epoch*. A host crash
//    tears the endpoint down; on restart it bumps the epoch and
//    re-handshakes (SYN -> SYNACK with exponential backoff), both sides
//    resynchronize their streams from the peer's cumulative ACK, and
//    traffic from a dead epoch is answered with an RST that tells the
//    stale sender to reconnect. `Sysctl::syn_retries` and
//    `Sysctl::rto_give_up` bound recovery: exceeding either marks the
//    connection failed and blocked send()/recv() calls raise
//    ConnectionFailed (a sim::ProtocolFailure) instead of hanging.
//    `Sysctl::keepalive_interval` adds idle-connection probing so a
//    survivor with nothing in flight still detects a permanently dead
//    peer (off by default; chaos runs arm it).
//  - With a TraceRecorder attached to the Simulator, every segment send,
//    pure ACK, retransmission and RTO/delayed-ACK timer fire is recorded
//    as an instant event and the cwnd / peer-window / advertised-window
//    values as counter tracks, one track per endpoint.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simcore/packet_arena.h"
#include "simcore/simulator.h"
#include "simcore/task.h"
#include "simcore/timer_wheel.h"
#include "simhw/cluster.h"
#include "simhw/node.h"
#include "simhw/pipe.h"
#include "tcpsim/tuning.h"

namespace pp::tcp {

class Connection;
struct Endpoint;

/// Raised by send()/recv() once a connection has exhausted its recovery
/// budget (`Sysctl::syn_retries` / `Sysctl::rto_give_up`) — e.g. the peer
/// crashed permanently. Derives from sim::ProtocolFailure so sweep
/// executors classify the run `failed` rather than errored or hung.
class ConnectionFailed : public sim::ProtocolFailure {
 public:
  explicit ConnectionFailed(const std::string& what)
      : sim::ProtocolFailure(what) {}
};

/// Per-node TCP stack: owns the sysctl settings and demultiplexes frames
/// arriving on the node's NICs to connection endpoints.
class TcpStack {
 public:
  TcpStack(hw::Node& node, Sysctl sysctl = {})
      : node_(node), sysctl_(sysctl), timers_(node.simulator()) {}

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  hw::Node& node() noexcept { return node_; }
  Sysctl& sysctl() noexcept { return sysctl_; }
  const Sysctl& sysctl() const noexcept { return sysctl_; }

  /// Shared wheel for this stack's protocol timers (delayed-ACK flush,
  /// RTO watchdog). Cancel/restart are O(1) list splices here instead of
  /// dead events accumulating in the Simulator's global queue.
  sim::TimerWheel& timers() noexcept { return timers_; }

  /// Starts demultiplexing an inbound pipe (idempotent per pipe). The pipe
  /// must terminate at this stack's node. Multiple connections share one
  /// pipe, as multiple sockets share one NIC.
  void attach_rx_pipe(hw::PacketPipe& pipe);

  /// Keeps connection state alive for the stack's lifetime (timer
  /// callbacks may outlive the application's Socket handles).
  void retain(std::shared_ptr<void> obj) {
    retained_.push_back(std::move(obj));
  }

 private:
  sim::Task<void> demux(hw::PacketPipe& pipe);

  hw::Node& node_;
  Sysctl sysctl_;
  sim::TimerWheel timers_;
  std::vector<const hw::PacketPipe*> attached_;
  std::vector<std::shared_ptr<void>> retained_;
};

/// Per-direction traffic counters (for tests and reports).
struct SocketStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t data_segments_sent = 0;
  std::uint64_t acks_sent = 0;  ///< pure ACKs (no piggybacked data)
  std::uint64_t retransmits = 0;       ///< go-back-N rewinds
  std::uint64_t fast_retransmits = 0;  ///< triggered by duplicate ACKs
  std::uint64_t rto_timeouts = 0;      ///< no-progress RTO fires
  std::uint64_t out_of_order_dropped = 0;
  std::uint64_t checksum_drops = 0;  ///< corrupted segments discarded on rx
  std::uint64_t syn_sent = 0;   ///< SYNs sent while re-establishing
  std::uint64_t rsts_sent = 0;  ///< RSTs answering dead-epoch traffic
  std::uint64_t reconnects = 0; ///< successful post-crash re-establishments
  std::uint64_t keepalive_probes = 0;  ///< idle-connection probes sent
  /// Segments that carried a zero-copy payload view. Retransmits re-attach
  /// the same buffer, so this exceeding the buffer count is the sharing
  /// (not cloning) of one arena slot across wire copies.
  std::uint64_t payload_views = 0;
};

/// One side of an established connection. Cheap to copy (shared state).
class Socket {
 public:
  Socket() = default;

  /// setsockopt(SO_SNDBUF/SO_RCVBUF): clamped to the node's sysctl caps.
  /// Must be called before any traffic flows on this socket.
  void set_send_buffer(std::uint32_t bytes);
  void set_recv_buffer(std::uint32_t bytes);
  std::uint32_t send_buffer() const;
  std::uint32_t recv_buffer() const;

  /// Blocking send of `bytes`; returns when everything has been copied
  /// into the send buffer (standard blocking-socket semantics). `token`
  /// marks the end of this write in the byte stream for integrity tests.
  sim::Task<void> send(std::uint64_t bytes, std::uint64_t token = 0);

  /// Zero-copy variant: `payload` (from make_payload) identifies the
  /// message's buffer. Segments covering these stream bytes carry a
  /// refcounted view of the buffer (retransmits and injected duplicates
  /// share it rather than cloning), and a capture-enabled receiver is
  /// handed the same reference once the bytes arrive in order.
  sim::Task<void> send(std::uint64_t bytes, sim::PacketRef payload,
                       std::uint64_t token = 0);

  /// Allocates a zero-copy payload-buffer descriptor (sim::PayloadBuffer)
  /// in the simulator's packet arena.
  sim::PacketRef make_payload(std::uint64_t bytes);

  /// Makes this (receiving) end collect payload-buffer references as
  /// their stream bytes complete in order; drain with take_rx_payload().
  /// Purely an accounting channel — enabling it never changes timing.
  void enable_payload_capture();

  /// Oldest fully-arrived captured payload buffer, or a null ref. Buffers
  /// complete in stream order, i.e. in the order the peer sent them.
  sim::PacketRef take_rx_payload();

  /// Blocking receive: waits for at least one byte, consumes up to `max`.
  sim::Task<std::uint64_t> recv(std::uint64_t max);

  /// Loops recv() until exactly `bytes` have been consumed.
  sim::Task<void> recv_exact(std::uint64_t bytes);

  /// Tokens whose stream position has been fully consumed by recv().
  std::vector<std::uint64_t> take_tokens();

  /// Bytes available to recv() right now.
  std::uint64_t available() const;

  const SocketStats& stats() const;
  hw::Node& node();
  std::uint32_t mss() const;

  /// Frames fault-injection dropped on the connection's pipes in *both*
  /// directions — outbound data and the returning ACK path (the pipes are
  /// shared by every connection riding the same NIC). Both ends of a
  /// connection report the same connection-wide total, so do NOT sum the
  /// two ends; use tx_wire_drops() for exactly-once per-end accounting.
  std::uint64_t wire_drops() const;

  /// Drops on this end's outbound pipe only. Summing tx_wire_drops() over
  /// both ends covers each direction exactly once (this is what
  /// netpipe::tcp_socket_counters does).
  std::uint64_t tx_wire_drops() const;

  /// Current connection epoch (0 until a crash forces a re-handshake;
  /// each re-establishment adopts a strictly larger epoch).
  std::uint32_t connection_epoch() const;

  /// True once the connection exhausted its recovery budget; further
  /// send()/recv() calls raise ConnectionFailed immediately.
  bool failed() const;

  /// Trace-event track name of this socket's endpoint (e.g. "tcp#0.a").
  const std::string& trace_track() const;

  explicit operator bool() const noexcept { return ep_ != nullptr; }

 private:
  friend std::pair<Socket, Socket> connect(TcpStack&, TcpStack&,
                                           hw::Cluster::Duplex&,
                                           std::string);
  explicit Socket(std::shared_ptr<Endpoint> ep) : ep_(std::move(ep)) {}
  std::shared_ptr<Endpoint> ep_;
};

/// Establishes a connection between two stacks across a duplex link whose
/// forward pipe runs from a's node to b's node. Returns the two socket
/// ends (first belongs to `a`).
std::pair<Socket, Socket> connect(TcpStack& a, TcpStack& b,
                                  hw::Cluster::Duplex& link,
                                  std::string name = "tcp");

}  // namespace pp::tcp
