// OS-level TCP tuning parameters (the /etc/sysctl.conf knobs the paper
// tells MP_Lite users to raise).
#pragma once

#include <cstdint>

#include "simcore/time.h"

namespace pp::tcp {

struct Sysctl {
  /// net.core.rmem_max / wmem_max: hard caps on setsockopt() buffer sizes.
  std::uint32_t rmem_max = 65536;
  std::uint32_t wmem_max = 65536;
  /// Buffer sizes a socket gets when the application sets nothing.
  std::uint32_t rmem_default = 65536;
  std::uint32_t wmem_default = 65536;
  /// Delayed-ACK flush timeout for odd trailing segments.
  sim::SimTime delayed_ack_timeout = sim::microseconds(300.0);
  /// Retransmission timeout (only matters on lossy links; the paper's
  /// back-to-back fabrics never drop).
  sim::SimTime retransmit_timeout = sim::milliseconds(40.0);
  /// Exponential RTO backoff cap: each no-progress timeout doubles the
  /// RTO up to this ceiling; ACK progress resets it to retransmit_timeout
  /// (the kernel's bounded backoff, without which a flapped link turns
  /// into a retransmit storm).
  sim::SimTime retransmit_timeout_max = sim::milliseconds(640.0);
  /// Duplicate ACKs that trigger a fast retransmit.
  int dupack_threshold = 3;
  /// Reno-style congestion control (slow start, congestion avoidance,
  /// multiplicative decrease). The 2.4 kernel's behaviour; disable to
  /// study pure flow control.
  bool congestion_control = true;
  /// Initial congestion window, in segments (Linux 2.4: 2).
  int initial_cwnd_segments = 2;
  /// Crash recovery: a reconnecting endpoint retransmits its SYN with
  /// exponential backoff starting from this interval (doubled per
  /// unanswered attempt, capped at retransmit_timeout_max).
  sim::SimTime syn_retry_interval = sim::milliseconds(1.0);
  /// SYN attempts before the connection is declared failed (the peer is
  /// presumed permanently dead). 0 = retry forever.
  int syn_retries = 6;
  /// Consecutive no-progress RTOs before the connection is declared
  /// failed. 0 = retry forever — the default keeps pre-crash behaviour,
  /// where a lossy-but-alive link never gives up; chaos/resilience runs
  /// set a cap so a permanently dark peer yields a clean `failed`
  /// verdict instead of an endless retransmit loop.
  int rto_give_up = 0;
  /// Keepalive probing for *idle* established connections: every interval
  /// with no traffic the endpoint sends a probe the peer must answer.
  /// `keepalive_probes` consecutive unanswered probes declare the
  /// connection failed. 0 disables (the default — the paper's benchmarks
  /// never idle). Without it a survivor parked in recv() with nothing in
  /// flight has no armed timer and a permanently dead peer deadlocks the
  /// simulation instead of failing the run; chaos scenarios arm it.
  sim::SimTime keepalive_interval = 0;
  int keepalive_probes = 5;

  /// The paper's recommended tuning: raise the caps so applications (or
  /// libraries like MP_Lite) can ask for gigabit-sized buffers.
  static Sysctl tuned(std::uint32_t max_bytes = 4 * 1024 * 1024) {
    Sysctl s;
    s.rmem_max = max_bytes;
    s.wmem_max = max_bytes;
    return s;
  }
};

}  // namespace pp::tcp
