#include "tcpsim/socket.h"

#include <algorithm>
#include <cassert>

#include "audit/audit.h"
#include "simcore/sync.h"
#include "simcore/tracing.h"

namespace pp::tcp {

namespace {

/// On-the-wire protocol bytes per segment (IP + TCP headers).
constexpr std::uint32_t kHeaderBytes = 40;

}  // namespace

/// Segment kinds. Control segments (everything but kData) drive the
/// post-crash re-handshake; a run without crashes only ever sends kData.
enum class SegKind : std::uint8_t {
  kData = 0,  ///< data or pure ACK (the entire pre-crash protocol)
  kSyn,       ///< reconnect request, ack = sender's rcv_next resync point
  kSynAck,    ///< reconnect accept, same resync payload as kSyn
  kRst,       ///< "your epoch is dead" — answer to stale traffic
  kProbe,     ///< keepalive probe for an idle connection
  kProbeAck,  ///< keepalive answer ("still here")
};

/// Descriptor travelling as a pipe packet's `desc` (one arena slot per
/// segment).
struct SegmentCtx {
  Endpoint* dst = nullptr;    ///< receiving endpoint
  std::uint64_t seq = 0;      ///< first payload byte's stream offset
  std::uint32_t payload = 0;  ///< 0 for a pure ACK
  std::uint64_t ack = 0;      ///< cumulative ACK (bytes received in order)
  std::uint64_t wnd_edge = 0; ///< absolute highest stream offset permitted
  std::uint32_t epoch = 0;    ///< sender's connection epoch
  SegKind kind = SegKind::kData;
  /// Zero-copy view of the application payload buffer covering `seq`
  /// (null for pure ACKs and plain sends). Retransmitted segments attach
  /// the same reference — the buffer is shared, never cloned.
  sim::PacketRef view;
};

/// Stream-offset range [begin, end) backed by one payload buffer.
struct PayloadSpan {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  sim::PacketRef buf;
};

/// One directed half of a connection plus the receive state for the
/// opposite direction. Two of these form a Connection.
struct Endpoint {
  Endpoint(TcpStack& stack_in, hw::PacketPipe& out_pipe, std::string nm)
      : stack(&stack_in),
        out(&out_pipe),
        name(std::move(nm)),
        snd_space(stack_in.node().simulator(), 0),
        tx_signal(stack_in.node().simulator()),
        rx_signal(stack_in.node().simulator()) {
    // `this` is stable: Endpoints live as Connection members behind a
    // shared_ptr and never move. The Timer destructor unlinks from the
    // wheel, so a torn-down connection can never see a timer fire — the
    // weak-handle dance the old per-timer call_after() needed is gone.
    rto_timer.bind(stack->timers(), [this] { on_rto(); });
    delack_timer.bind(stack->timers(), [this] { on_delack(); });
    syn_timer.bind(stack->timers(), [this] { on_syn_timer(); });
    ka_timer.bind(stack->timers(), [this] { on_keepalive(); });
  }

  hw::Node& node() { return stack->node(); }
  sim::Simulator& simulator() { return stack->node().simulator(); }

  std::uint32_t mss() const { return out->nic().mtu - kHeaderBytes; }

  /// Instrumentation: one instant event on this endpoint's track. A
  /// single pointer test when no recorder is attached.
  void trace_instant(const char* what) {
    if (sim::TraceRecorder* t = simulator().tracer()) {
      t->record_instant(name, what, simulator().now());
    }
  }

  /// Counter samples for the three windows that govern the sender: the
  /// congestion window, the peer-granted send window and the window we
  /// advertise to the peer.
  void trace_windows() {
    sim::TraceRecorder* t = simulator().tracer();
    if (t == nullptr) return;
    const sim::SimTime at = simulator().now();
    if (stack->sysctl().congestion_control && cwnd > 0) {
      t->record_counter(name, "cwnd", at, static_cast<double>(cwnd));
    }
    t->record_counter(name, "rwnd", at,
                      static_cast<double>(rwnd_edge - snd_una));
    t->record_counter(name, "advertised", at,
                      static_cast<double>(advert_edge() - rcv_next));
  }

  /// Highest stream offset the peer may send (our buffer's absolute edge).
  std::uint64_t advert_edge() const { return consumed + rcv_buf; }
  std::uint64_t avail() const { return rcv_next - consumed; }

  void start_traffic() { traffic_started = true; }

  void inject_segment(std::uint32_t payload, std::uint64_t seq,
                      SegKind kind = SegKind::kData);
  void send_pure_ack();
  void on_segment(const SegmentCtx& s);
  void maybe_window_update(std::uint64_t pre_recv_usable);
  /// Go-back-N: requeue everything after the last cumulative ACK.
  void rewind_to_una();
  /// Arms the retransmission timer if it is not already running.
  void arm_rto();
  void on_rto();
  void on_delack();
  void on_keepalive();

  // --- crash/restart recovery ----------------------------------------------
  void on_control(const SegmentCtx& s);
  /// Adopts the control segment's epoch, resynchronizes the tx stream to
  /// the peer's cumulative ACK and (re-)establishes the connection.
  void establish(const SegmentCtx& s);
  /// Rewinds/advances the tx stream to absolute offset `pos` (the peer's
  /// authoritative rcv_next) and resets loss-recovery/congestion state.
  void resync_tx(std::uint64_t pos, std::uint64_t wnd);
  /// High-water send-buffer release: frees bytes only when snd_una first
  /// exceeds the released watermark, so a post-crash rewind below an
  /// already-released offset cannot double-release buffer space.
  void sync_space_to_una();
  void begin_reconnect();
  void send_syn();
  void on_syn_timer();
  void send_synack();
  void send_rst();
  /// Marks BOTH endpoints failed and wakes every parked coroutine; they
  /// observe conn_failed and raise ConnectionFailed.
  void fail_connection(const char* reason);
  void on_node_crash();
  void on_node_restart();

  sim::Task<void> tx_pump();
  sim::Task<void> send(std::uint64_t bytes, std::uint64_t token,
                       sim::PacketRef payload);
  sim::Task<std::uint64_t> recv(std::uint64_t max);

  TcpStack* stack;
  hw::PacketPipe* out;
  Endpoint* peer = nullptr;
  std::string name;

  std::uint32_t snd_buf = 0;
  std::uint32_t rcv_buf = 0;
  bool traffic_started = false;

  // --- connection/session state (crash recovery) ---------------------------
  /// Session epoch stamped into every segment. Both ends start at 0 and a
  /// run without crashes never leaves it; each re-establishment adopts a
  /// strictly larger value, so stale in-flight traffic is identifiable.
  std::uint32_t epoch = 0;
  bool established = true;
  bool conn_failed = false;
  std::string fail_reason;
  int syn_attempts = 0;
  /// Current (backed-off) SYN retry interval; 0 = use the sysctl base.
  sim::SimTime cur_syn_interval = 0;
  sim::Timer syn_timer;
  /// High-water mark of send-buffer bytes released back to the app (equals
  /// snd_una except transiently after a post-crash rewind).
  std::uint64_t space_released = 0;
  int consecutive_rtos = 0;
  /// Keepalive (Sysctl::keepalive_interval): probes the peer while a
  /// receiver is parked with nothing available — the one state that can
  /// wait forever on a dead peer without any other timer running (a
  /// blocked sender always has data in flight, which the RTO watchdog
  /// covers). `ka_misses` counts interval fires since the last evidence
  /// the peer is alive. Scoping the timer to blocked receivers (instead
  /// of running it for the connection's lifetime) lets a finished run
  /// drain its event queue instead of probing forever — Simulator::run()
  /// returns when the queue empties. Disabled by default; chaos runs arm
  /// it so a permanently dead peer fails an idle survivor instead of
  /// deadlocking the simulation.
  sim::Timer ka_timer;
  int ka_misses = 0;
  int ka_waiters = 0;

  void ka_block_enter() {
    const sim::SimTime iv = stack->sysctl().keepalive_interval;
    if (iv <= 0) return;
    ka_waiters += 1;
    if (!ka_timer.armed()) {
      ka_misses = 0;
      ka_timer.arm_after(iv);
    }
  }

  void ka_block_exit() {
    if (stack->sysctl().keepalive_interval <= 0) return;
    if (--ka_waiters == 0) {
      ka_timer.cancel();
      ka_misses = 0;
    }
  }

  // --- transmit state -----------------------------------------------------
  sim::ByteSemaphore snd_space;  ///< free bytes in the send buffer
  std::uint64_t unsent = 0;      ///< buffered bytes not yet segmented
  std::uint64_t submitted = 0;   ///< total bytes accepted from the app
  std::uint64_t snd_next = 0;
  std::uint64_t snd_una = 0;
  std::uint64_t rwnd_edge = 0;   ///< absolute send limit from peer's window
  int dupack_count = 0;
  std::uint64_t recover_until = 0;
  /// Classic restart-on-progress RTO watchdog on the stack's timer
  /// wheel: restarted by every ACK that advances snd_una, cancelled when
  /// the window drains, so a fire always means a barren interval.
  sim::Timer rto_timer;
  /// Flush timer for an odd trailing segment's delayed ACK. The deadline
  /// belongs to the FIRST deferred ack: later arrivals do not push it
  /// back, and a segment sent meanwhile (which carries the cumulative
  /// ACK) does not cancel it — the fire just finds nothing pending and
  /// stands down, exactly like the 2.4 kernel's delack timer. Keeping
  /// this flush on its original schedule matters: the stray pure ACK it
  /// emits mid-exchange is what holds a loaded NIC's interrupt
  /// mitigation in the slow regime (see hw::InterruptCoalescer), the
  /// mechanism behind the paper's stop-and-wait small-buffer penalty.
  sim::Timer delack_timer;
  /// Current (possibly backed-off) RTO; 0 = use the sysctl base value.
  sim::SimTime cur_rto = 0;

  sim::SimTime rto_interval() const {
    return cur_rto > 0 ? cur_rto : stack->sysctl().retransmit_timeout;
  }
  // Reno congestion state (bytes). cwnd is initialized on first use so
  // the MSS (which depends on the bound pipe) is known.
  std::uint64_t cwnd = 0;
  std::uint64_t ssthresh = UINT64_MAX;
  sim::Signal tx_signal;

  /// Absolute limit from both flow control and congestion control.
  std::uint64_t send_edge() {
    if (!stack->sysctl().congestion_control) return rwnd_edge;
    if (cwnd == 0) {
      cwnd = static_cast<std::uint64_t>(
                 stack->sysctl().initial_cwnd_segments) *
             mss();
    }
    return std::min(rwnd_edge, snd_una + cwnd);
  }

  void on_ack_progress(std::uint64_t acked) {
    if (!stack->sysctl().congestion_control || cwnd == 0) return;
    if (cwnd < ssthresh) {
      cwnd += std::min<std::uint64_t>(acked, mss());  // slow start
    } else {
      cwnd += std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(mss()) * mss() / cwnd);
    }
  }

  void on_congestion(bool timeout) {
    if (!stack->sysctl().congestion_control || cwnd == 0) return;
    const std::uint64_t flight = snd_next - snd_una;
    ssthresh = std::max<std::uint64_t>(flight / 2, 2ull * mss());
    cwnd = timeout ? mss() : ssthresh;
  }

  // --- receive state -------------------------------------------------------
  std::uint64_t rcv_next = 0;   ///< in-order bytes arrived
  std::uint64_t consumed = 0;   ///< bytes taken by the application
  std::uint64_t last_advertised_edge = 0;
  int pending_acks = 0;
  sim::Signal rx_signal;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> send_marks;
  std::vector<std::uint64_t> tokens_ready;

  // --- zero-copy payload views ---------------------------------------------
  /// Sender: buffers backing in-flight stream ranges, front-sorted by
  /// offset; segments covering a span attach its buffer, and spans are
  /// retired by cumulative-ACK progress (a retransmit therefore re-attaches
  /// the *same* buffer).
  std::deque<PayloadSpan> payload_spans;
  /// Receiver (only populated when the peer sends payloads and capture is
  /// enabled here): spans awaiting in-order completion, then the completed
  /// buffers in stream order.
  bool capture_rx_payloads = false;
  std::deque<PayloadSpan> rx_payload_pending;
  std::deque<sim::PacketRef> rx_payloads;

  SocketStats stats;
};

/// A full-duplex connection: two endpoints referencing each other.
class Connection {
 public:
  Connection(TcpStack& a, TcpStack& b, hw::Cluster::Duplex& link,
             const std::string& name)
      : a_(a, link.forward, name + ".a"), b_(b, link.backward, name + ".b") {
    a_.peer = &b_;
    b_.peer = &a_;
    init_endpoint(a_, a);
    init_endpoint(b_, b);
    a_.rwnd_edge = b_.rcv_buf;
    b_.rwnd_edge = a_.rcv_buf;
    a_.simulator().spawn_daemon(a_.tx_pump(), name + ".a.tx");
    b_.simulator().spawn_daemon(b_.tx_pump(), name + ".b.tx");
    // Crash/restart recovery hooks. Registration is a vector push — a run
    // that never crashes pays nothing. Pipes registered their listeners at
    // cluster construction, so on a crash the NIC rings drain before the
    // endpoint reacts.
    register_power(a_);
    register_power(b_);
  }

  Endpoint& a() { return a_; }
  Endpoint& b() { return b_; }

 private:
  static void register_power(Endpoint& e) {
    e.node().add_power_listener([ep = &e](hw::PowerEvent ev) {
      if (ev == hw::PowerEvent::kCrash) {
        ep->on_node_crash();
      } else {
        ep->on_node_restart();
      }
    });
  }

  static void init_endpoint(Endpoint& e, TcpStack& stack) {
    const Sysctl& s = stack.sysctl();
    e.snd_buf = std::min(s.wmem_default, s.wmem_max);
    e.rcv_buf = std::min(s.rmem_default, s.rmem_max);
    e.snd_space.reset(e.snd_buf);
    e.last_advertised_edge = e.rcv_buf;
  }

  Endpoint a_;
  Endpoint b_;
};

// --------------------------------------------------------------------------
// Endpoint implementation
// --------------------------------------------------------------------------

void Endpoint::inject_segment(std::uint32_t payload, std::uint64_t seq,
                              SegKind kind) {
  sim::PacketRef desc = simulator().packet_arena().make<SegmentCtx>();
  SegmentCtx* ctx = desc.get<SegmentCtx>();
  ctx->dst = peer;
  ctx->seq = seq;
  ctx->payload = payload;
  ctx->ack = rcv_next;
  ctx->wnd_edge = advert_edge();
  ctx->epoch = epoch;
  ctx->kind = kind;
  if (payload > 0) {
    // Attach the view of the buffer backing this segment's first byte.
    // Spans are offset-sorted and retired by ACK progress, so the scan
    // only walks the in-flight window's few spans.
    for (const PayloadSpan& sp : payload_spans) {
      if (seq < sp.begin) break;
      if (seq < sp.end) {
        ctx->view = sp.buf;
        stats.payload_views += 1;
        break;
      }
    }
  }
  last_advertised_edge = ctx->wnd_edge;
  pending_acks = 0;  // any segment carries the latest cumulative ACK
  // Deliberately NOT cancelling delack_timer: it no-ops when nothing is
  // pending, and an odd segment arriving before its original deadline
  // still gets flushed on the first deferred ack's schedule (see the
  // member comment).
  hw::Packet p;
  p.dma_bytes = payload + kHeaderBytes;
  p.wire_bytes = payload + kHeaderBytes + out->nic().frame_overhead;
  p.desc = std::move(desc);
  out->inject(std::move(p));
}

void Endpoint::send_pure_ack() {
  stats.acks_sent += 1;
  trace_instant("ack");
  inject_segment(/*payload=*/0, /*seq=*/snd_next);
}

void Endpoint::maybe_window_update(std::uint64_t pre_recv_usable) {
  // Receiver-side silly-window-syndrome avoidance: the regular data ACKs
  // already carry a fresh advertisement, so an explicit window-update ACK
  // is only worth its cost when (a) the sender was (nearly) stalled on a
  // closed window and consuming just reopened a useful amount, or (b) the
  // last advertisement has gone badly stale (guards against a stalled
  // sender that we will never ACK again because no data is arriving).
  const std::uint64_t gain = advert_edge() - last_advertised_edge;
  const std::uint64_t threshold = std::max<std::uint64_t>(
      std::min<std::uint64_t>(2ull * mss(), rcv_buf / 2), 1);
  const bool sender_starved = pre_recv_usable < mss() && gain >= threshold;
  const bool advert_stale = gain >= std::max<std::uint64_t>(rcv_buf / 2, 1);
  if (sender_starved || advert_stale) send_pure_ack();
}

void Endpoint::on_segment(const SegmentCtx& s) {
  traffic_started = true;
  if (s.kind != SegKind::kData) {
    on_control(s);
    return;
  }
  if (s.epoch != epoch || !established) {
    // Data from a dead epoch: tell the sender its session is gone so it
    // reconnects instead of retransmitting forever. Same-epoch data
    // racing ahead of our handshake is silently dropped — the resync
    // replays it.
    if (s.epoch < epoch) send_rst();
    return;
  }
  ka_misses = 0;  // any live-epoch arrival proves the peer is up
  if (s.payload > 0) {
    if (s.seq != rcv_next) {
      // A gap: an earlier segment was lost. Go-back-N receiver: discard
      // and tell the sender where the stream stands (a duplicate ACK).
      stats.out_of_order_dropped += 1;
      trace_instant("ooo-drop");
      send_pure_ack();
    } else {
      assert(rcv_next + s.payload <= advert_edge() &&
             "peer violated the advertised window");
      // Delivery-oracle hook (observe-only): an independent check that
      // accepted bytes stay contiguous within this connection epoch.
      if (audit::Auditor* aud = simulator().auditor()) {
        aud->on_tcp_accept(name, epoch, s.seq, s.payload);
      }
      rcv_next += s.payload;
      stats.bytes_received += s.payload;
      // Promote payload buffers whose stream range just completed; they
      // become available to take_rx_payload() in sender order.
      while (!rx_payload_pending.empty() &&
             rx_payload_pending.front().end <= rcv_next) {
        rx_payloads.push_back(std::move(rx_payload_pending.front().buf));
        rx_payload_pending.pop_front();
      }
      rx_signal.notify_all();
      pending_acks += 1;
      if (pending_acks >= 2) {
        send_pure_ack();
      } else {
        // Delayed-ACK flush for an odd trailing segment. Arm-if-idle:
        // the deadline runs from the first deferred ack and is not
        // reset by subsequent arrivals.
        if (!delack_timer.armed()) {
          delack_timer.arm_after(stack->sysctl().delayed_ack_timeout);
        }
      }
    }
  }
  if (s.ack > snd_una) {
    const std::uint64_t acked = s.ack - snd_una;
    snd_una = s.ack;
    sync_space_to_una();
    // Fully-acked payload spans can no longer be retransmitted; release
    // our reference (the buffer itself lives on in any receiver view).
    while (!payload_spans.empty() && payload_spans.front().end <= snd_una) {
      payload_spans.pop_front();
    }
    dupack_count = 0;
    cur_rto = 0;  // ACK progress collapses any RTO backoff
    consecutive_rtos = 0;
    // Restart the watchdog for the remaining flight (or stand down when
    // everything is acked) — both O(1) splices on the timer wheel.
    if (snd_next == snd_una) {
      rto_timer.cancel();
    } else {
      rto_timer.arm_after(rto_interval());
    }
    on_ack_progress(acked);
  } else if (s.ack == snd_una && s.payload == 0 && snd_next > snd_una) {
    // A pure duplicate ACK while data is outstanding. Only one fast
    // retransmit per window of data (NewReno-style recovery point):
    // duplicates caused by the flight we already rewound must not
    // trigger another rewind, or recovery livelocks.
    if (++dupack_count >= stack->sysctl().dupack_threshold &&
        snd_una >= recover_until) {
      dupack_count = 0;
      stats.fast_retransmits += 1;
      trace_instant("fast-retransmit");
      on_congestion(/*timeout=*/false);
      rewind_to_una();
    }
  }
  if (s.wnd_edge > rwnd_edge) rwnd_edge = s.wnd_edge;
  trace_windows();
  tx_signal.notify_all();
}

void Endpoint::rewind_to_una() {
  if (snd_next == snd_una) return;
  stats.retransmits += 1;
  trace_instant("retransmit");
  recover_until = snd_next;      // recovery completes when this is acked
  unsent += snd_next - snd_una;  // those bytes go back to the tx queue
  snd_next = snd_una;
  tx_signal.notify_all();
}

void Endpoint::arm_rto() {
  if (!rto_timer.armed()) rto_timer.arm_after(rto_interval());
}

void Endpoint::on_rto() {
  if (!established || conn_failed) return;  // reconnect machinery owns us
  if (snd_next == snd_una) return;  // everything acked; stay idle
  // The timer is restarted on every ACK that advances snd_una, so firing
  // means a whole RTO passed with zero progress: resend from the last
  // acked byte and double the timer (capped) — each barren interval
  // backs off further until an ACK finally moves snd_una and resets it.
  stats.rto_timeouts += 1;
  trace_instant("rto");
  const int give_up = stack->sysctl().rto_give_up;
  if (give_up > 0 && ++consecutive_rtos >= give_up) {
    fail_connection("rto-give-up");
    return;
  }
  cur_rto = std::min(rto_interval() * 2, stack->sysctl().retransmit_timeout_max);
  on_congestion(/*timeout=*/true);
  rewind_to_una();
  rto_timer.arm_after(rto_interval());  // keep watching the rewound flight
}

void Endpoint::on_delack() {
  if (conn_failed) return;
  if (pending_acks > 0) {
    trace_instant("delayed-ack");
    send_pure_ack();
  }
}

void Endpoint::on_keepalive() {
  const sim::SimTime iv = stack->sysctl().keepalive_interval;
  if (conn_failed || iv <= 0 || ka_waiters == 0) return;
  if (established) {
    // One miss per barren interval; arrivals reset the count, so hitting
    // the cap means keepalive_probes consecutive probes went unanswered.
    if (++ka_misses > stack->sysctl().keepalive_probes) {
      fail_connection("keepalive-timeout");
      return;
    }
    stats.keepalive_probes += 1;
    trace_instant("keepalive");
    inject_segment(/*payload=*/0, /*seq=*/snd_una, SegKind::kProbe);
  }
  // Keep ticking through a re-handshake too (the SYN machinery owns
  // give-up while !established; probing resumes once re-established).
  ka_timer.arm_after(iv);
}

// --------------------------------------------------------------------------
// Crash/restart recovery
// --------------------------------------------------------------------------

void Endpoint::on_control(const SegmentCtx& s) {
  if (conn_failed) return;
  switch (s.kind) {
    case SegKind::kSyn:
      if (s.epoch > epoch || (s.epoch == epoch && !established)) {
        // A (re)connect for a newer session, or the handshake we were
        // waiting for: adopt it and answer.
        establish(s);
        send_synack();
      } else if (s.epoch == epoch && established) {
        // Duplicate SYN — our SYNACK was lost. Answer again, but do not
        // resync (we may have made progress since establishing).
        send_synack();
      } else {
        send_rst();  // SYN from a dead epoch
      }
      return;
    case SegKind::kSynAck:
      if (!established && s.epoch >= epoch) establish(s);
      return;
    case SegKind::kRst:
      // Only a strictly newer epoch tears us down: an equal-epoch RST
      // predates our own adoption of that epoch and is stale.
      if (s.epoch > epoch) {
        epoch = s.epoch;
        trace_instant("rst-reconnect");
        begin_reconnect();
      }
      return;
    case SegKind::kProbe:
      if (s.epoch == epoch && established) {
        ka_misses = 0;
        inject_segment(/*payload=*/0, /*seq=*/snd_una, SegKind::kProbeAck);
      } else if (s.epoch < epoch) {
        // A probe from a session the prober does not know is dead —
        // e.g. we restarted while the peer sat idle. Kick off its
        // reconnect just like stale data would.
        send_rst();
      }
      return;
    case SegKind::kProbeAck:
      if (s.epoch == epoch) ka_misses = 0;
      return;
    case SegKind::kData:
      break;  // unreachable: on_segment dispatched here for controls only
  }
}

void Endpoint::establish(const SegmentCtx& s) {
  epoch = s.epoch;
  resync_tx(s.ack, s.wnd_edge);
  if (!established) {
    established = true;
    stats.reconnects += 1;
    trace_instant("reconnected");
  }
  syn_timer.cancel();
  syn_attempts = 0;
  cur_syn_interval = 0;
  ka_misses = 0;
  // A receiver that was parked through our crash/reconnect window needs
  // its dead-peer watchdog back (on_node_crash cancelled it).
  const sim::SimTime ka = stack->sysctl().keepalive_interval;
  if (ka > 0 && ka_waiters > 0 && !ka_timer.armed()) ka_timer.arm_after(ka);
  trace_windows();
  tx_signal.notify_all();
}

void Endpoint::resync_tx(std::uint64_t pos, std::uint64_t wnd) {
  // `pos` is the peer's rcv_next: everything below it arrived, everything
  // from it on must be (re)sent. It can sit below snd_una (the peer
  // crashed and lost receive state back to its consumed mark) or above
  // snd_next (we crashed and lost track of delivered-but-unacked bytes).
  const std::uint64_t copied = snd_next + unsent;
  assert(pos <= copied && "peer claims bytes beyond what was ever buffered");
  snd_una = pos;
  snd_next = pos;
  unsent = copied - pos;
  sync_space_to_una();
  while (!payload_spans.empty() && payload_spans.front().end <= snd_una) {
    payload_spans.pop_front();
  }
  rwnd_edge = wnd;
  dupack_count = 0;
  recover_until = 0;
  cur_rto = 0;
  consecutive_rtos = 0;
  cwnd = 0;  // re-enters slow start lazily, like a fresh connection
  ssthresh = UINT64_MAX;
  rto_timer.cancel();
}

void Endpoint::sync_space_to_una() {
  if (snd_una > space_released) {
    snd_space.release(snd_una - space_released);
    space_released = snd_una;
  }
}

void Endpoint::begin_reconnect() {
  established = false;
  rto_timer.cancel();
  delack_timer.cancel();
  dupack_count = 0;
  pending_acks = 0;
  syn_attempts = 0;
  cur_syn_interval = 0;
  send_syn();
}

void Endpoint::send_syn() {
  if (conn_failed) return;
  syn_attempts += 1;
  stats.syn_sent += 1;
  trace_instant("syn");
  inject_segment(/*payload=*/0, /*seq=*/snd_una, SegKind::kSyn);
  const sim::SimTime iv = cur_syn_interval > 0
                              ? cur_syn_interval
                              : stack->sysctl().syn_retry_interval;
  cur_syn_interval =
      std::min(iv * 2, stack->sysctl().retransmit_timeout_max);
  syn_timer.arm_after(iv);
}

void Endpoint::on_syn_timer() {
  if (established || conn_failed) return;
  const int cap = stack->sysctl().syn_retries;
  if (cap > 0 && syn_attempts >= cap) {
    fail_connection("syn-retries-exhausted");
    return;
  }
  send_syn();
}

void Endpoint::send_synack() {
  trace_instant("synack");
  inject_segment(/*payload=*/0, /*seq=*/snd_una, SegKind::kSynAck);
}

void Endpoint::send_rst() {
  stats.rsts_sent += 1;
  trace_instant("rst");
  inject_segment(/*payload=*/0, /*seq=*/snd_una, SegKind::kRst);
}

void Endpoint::fail_connection(const char* reason) {
  if (conn_failed) return;
  trace_instant("conn-failed");
  Endpoint* const eps[2] = {this, peer};
  for (Endpoint* e : eps) {
    e->conn_failed = true;
    e->fail_reason = e->name + ": " + reason;
    e->established = false;
    e->rto_timer.cancel();
    e->delack_timer.cancel();
    e->syn_timer.cancel();
    e->ka_timer.cancel();
    // Wake every parked coroutine: senders blocked on buffer space get a
    // poisoned grant, receivers and the tx pump re-check and observe
    // conn_failed.
    e->snd_space.release(1ull << 62);
    e->tx_signal.notify_all();
    e->rx_signal.notify_all();
  }
}

void Endpoint::on_node_crash() {
  // The kernel socket dies with the node. Stop every timer and all
  // transmission; state is reconciled at restart (nothing reads it while
  // the node is down — the pipes drop everything addressed to it).
  established = false;
  rto_timer.cancel();
  delack_timer.cancel();
  syn_timer.cancel();
  ka_timer.cancel();
  ka_misses = 0;
  dupack_count = 0;
  pending_acks = 0;
  trace_instant("ep-crash");
}

void Endpoint::on_node_restart() {
  if (conn_failed) return;
  // Unconsumed receive data and in-flight transmit state died with the
  // node; the stream itself survives in the peer's state and our send
  // buffer. Adopt a fresh epoch and re-handshake — the SYN carries our
  // rewound rcv_next so the peer replays what we lost.
  epoch = std::max(epoch, peer->epoch) + 1;
  rcv_next = consumed;
  rx_payload_pending.clear();
  unsent += snd_next - snd_una;
  snd_next = snd_una;
  recover_until = 0;
  cwnd = 0;
  ssthresh = UINT64_MAX;
  cur_rto = 0;
  consecutive_rtos = 0;
  trace_instant("ep-restart");
  begin_reconnect();
}

sim::Task<void> Endpoint::tx_pump() {
  for (;;) {
    // Sender-side SWS avoidance: send a full MSS or the final tail of the
    // buffered data, never a runt forced by a fragmented window.
    const auto sendable = [this]() -> std::uint64_t {
      if (!established || conn_failed) return 0;  // gated until re-handshake
      const std::uint64_t edge = send_edge();
      if (unsent == 0 || snd_next >= edge) return 0;
      const std::uint64_t want = std::min<std::uint64_t>(unsent, mss());
      return (edge - snd_next >= want) ? want : 0;
    };
    while (sendable() == 0) {
      co_await tx_signal.wait();
    }
    const std::uint32_t seg = static_cast<std::uint32_t>(sendable());
    unsent -= seg;
    stats.data_segments_sent += 1;
    stats.bytes_sent += seg;
    trace_instant("seg");
    const std::uint64_t seq = snd_next;
    snd_next += seg;
    inject_segment(seg, seq);
    arm_rto();
    // Yield so same-time arrivals (ACKs) interleave deterministically.
    co_await simulator().delay(0);
  }
}

sim::Task<void> Endpoint::send(std::uint64_t bytes, std::uint64_t token,
                               sim::PacketRef payload) {
  start_traffic();
  if (conn_failed) throw ConnectionFailed(fail_reason);
  if (payload && bytes > 0) {
    // Record the span before the first suspension so the tx pump finds
    // it for every segment of this write. Sends on one socket are
    // sequential (the send_marks bookkeeping already relies on that), so
    // `submitted` is this write's first stream offset.
    if (peer->capture_rx_payloads) {
      peer->rx_payload_pending.push_back(
          PayloadSpan{submitted, submitted + bytes, payload});
    }
    payload_spans.push_back(
        PayloadSpan{submitted, submitted + bytes, std::move(payload)});
  }
  co_await node().cpu_cost(node().config().syscall_cost);
  std::uint64_t left = bytes;
  while (left > 0) {
    // The kernel copies user data into the send buffer as space frees,
    // one MSS-sized chunk at a time.
    const std::uint64_t chunk = std::min<std::uint64_t>(left, mss());
    co_await snd_space.acquire(chunk);
    if (conn_failed) throw ConnectionFailed(fail_reason);
    co_await node().copy(chunk);
    unsent += chunk;
    left -= chunk;
    tx_signal.notify_all();
  }
  submitted += bytes;
  if (token != 0) send_marks.emplace_back(submitted, token);
}

sim::Task<std::uint64_t> Endpoint::recv(std::uint64_t max) {
  start_traffic();
  co_await node().cpu_cost(node().config().syscall_cost);
  if (avail() == 0) {
    if (conn_failed) throw ConnectionFailed(fail_reason);
    ka_block_enter();
    do {
      co_await rx_signal.wait();
    } while (avail() == 0 && !conn_failed);
    ka_block_exit();
    if (conn_failed && avail() == 0) throw ConnectionFailed(fail_reason);
    co_await node().cpu_cost(node().config().wakeup_cost);
  }
  // What the sender could still send before this recv() freed space.
  const std::uint64_t pre_recv_usable = advert_edge() - rcv_next;
  const std::uint64_t n = std::min(max, avail());
  co_await node().copy(n);
  consumed += n;
  auto& marks = peer->send_marks;
  while (!marks.empty() && marks.front().first <= consumed) {
    tokens_ready.push_back(marks.front().second);
    marks.pop_front();
  }
  maybe_window_update(pre_recv_usable);
  co_return n;
}

// --------------------------------------------------------------------------
// TcpStack
// --------------------------------------------------------------------------

void TcpStack::attach_rx_pipe(hw::PacketPipe& pipe) {
  assert(&pipe.dst() == &node_ && "pipe does not terminate at this node");
  for (const auto* p : attached_) {
    if (p == &pipe) return;
  }
  attached_.push_back(&pipe);
  node_.simulator().spawn_daemon(demux(pipe),
                                 "tcp.demux@" + std::to_string(node_.id()));
}

sim::Task<void> TcpStack::demux(hw::PacketPipe& pipe) {
  for (;;) {
    hw::Packet p = co_await pipe.delivered().pop();
    assert(p.desc && "non-TCP packet on a TCP-attached pipe");
    SegmentCtx* seg = p.desc.get<SegmentCtx>();
    assert(seg->dst != nullptr);
    if (p.corrupted) {
      // The TCP checksum catches injected bit corruption: the segment is
      // discarded before any protocol processing, and the sender's
      // RTO/fast-retransmit machinery recovers as for a wire drop.
      seg->dst->stats.checksum_drops += 1;
      seg->dst->trace_instant("csum-drop");
      continue;
    }
    seg->dst->on_segment(*seg);
  }
}

// --------------------------------------------------------------------------
// Socket facade
// --------------------------------------------------------------------------

void Socket::set_send_buffer(std::uint32_t bytes) {
  assert(ep_ && !ep_->traffic_started &&
         "socket buffers must be set before traffic starts");
  ep_->snd_buf = std::min(bytes, ep_->stack->sysctl().wmem_max);
  ep_->snd_space.reset(ep_->snd_buf);
}

void Socket::set_recv_buffer(std::uint32_t bytes) {
  assert(ep_ && !ep_->traffic_started &&
         "socket buffers must be set before traffic starts");
  ep_->rcv_buf = std::min(bytes, ep_->stack->sysctl().rmem_max);
  ep_->last_advertised_edge = ep_->advert_edge();
  ep_->peer->rwnd_edge = ep_->advert_edge();
}

std::uint32_t Socket::send_buffer() const { return ep_->snd_buf; }
std::uint32_t Socket::recv_buffer() const { return ep_->rcv_buf; }

sim::Task<void> Socket::send(std::uint64_t bytes, std::uint64_t token) {
  return ep_->send(bytes, token, sim::PacketRef{});
}

sim::Task<void> Socket::send(std::uint64_t bytes, sim::PacketRef payload,
                             std::uint64_t token) {
  return ep_->send(bytes, token, std::move(payload));
}

sim::PacketRef Socket::make_payload(std::uint64_t bytes) {
  return ep_->simulator().packet_arena().make_payload(bytes);
}

void Socket::enable_payload_capture() {
  ep_->capture_rx_payloads = true;
}

sim::PacketRef Socket::take_rx_payload() {
  if (ep_->rx_payloads.empty()) return {};
  sim::PacketRef r = std::move(ep_->rx_payloads.front());
  ep_->rx_payloads.pop_front();
  return r;
}

sim::Task<std::uint64_t> Socket::recv(std::uint64_t max) {
  return ep_->recv(max);
}

sim::Task<void> Socket::recv_exact(std::uint64_t bytes) {
  std::uint64_t left = bytes;
  while (left > 0) left -= co_await ep_->recv(left);
}

std::vector<std::uint64_t> Socket::take_tokens() {
  return std::exchange(ep_->tokens_ready, {});
}

std::uint64_t Socket::available() const { return ep_->avail(); }
const SocketStats& Socket::stats() const { return ep_->stats; }
hw::Node& Socket::node() { return ep_->node(); }
std::uint32_t Socket::mss() const { return ep_->mss(); }
std::uint64_t Socket::wire_drops() const {
  return ep_->out->packets_dropped() + ep_->peer->out->packets_dropped();
}
std::uint64_t Socket::tx_wire_drops() const {
  return ep_->out->packets_dropped();
}
std::uint32_t Socket::connection_epoch() const { return ep_->epoch; }
bool Socket::failed() const { return ep_->conn_failed; }
const std::string& Socket::trace_track() const { return ep_->name; }

std::pair<Socket, Socket> connect(TcpStack& a, TcpStack& b,
                                  hw::Cluster::Duplex& link,
                                  std::string name) {
  assert(&link.forward.src() == &a.node() &&
         &link.forward.dst() == &b.node() &&
         "duplex link does not join these stacks' nodes");
  auto conn = std::make_shared<Connection>(a, b, link, name);
  a.retain(conn);
  b.retain(conn);
  a.attach_rx_pipe(link.backward);
  b.attach_rx_pipe(link.forward);
  Socket sa{std::shared_ptr<Endpoint>(conn, &conn->a())};
  Socket sb{std::shared_ptr<Endpoint>(conn, &conn->b())};
  return {sa, sb};
}

}  // namespace pp::tcp
