// Simulated-time types and helpers.
//
// The whole simulation runs on a single virtual clock measured in integer
// nanoseconds. Integer time keeps the event queue total-ordered and the
// simulation bit-for-bit deterministic across runs and platforms.
#pragma once

#include <cstdint>
#include <string>

namespace pp::sim {

/// A point in (or duration of) simulated time, in nanoseconds.
using SimTime = std::int64_t;

/// The largest representable time; the Simulator's default time limit.
inline constexpr SimTime kSimTimeMax = INT64_MAX;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr SimTime nanoseconds(double n) { return static_cast<SimTime>(n); }
constexpr SimTime microseconds(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}
constexpr SimTime milliseconds(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
constexpr SimTime seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Renders a time as a compact human-readable string ("12.5us", "3.2ms").
std::string format_time(SimTime t);

}  // namespace pp::sim
