#include "simcore/packet_arena.h"

#include <cstdlib>
#include <optional>

namespace pp::sim {

namespace {

thread_local std::optional<PacketPathKind> g_ambient_packet_path;

constexpr std::size_t kSlabSlots = 64;

}  // namespace

PacketPathKind default_packet_path() {
  static const PacketPathKind kind = [] {
    const char* v = std::getenv("PP_LEGACY_PACKETS");
    const bool legacy = v != nullptr && v[0] != '\0' &&
                        !(v[0] == '0' && v[1] == '\0');
    return legacy ? PacketPathKind::kLegacyHeap : PacketPathKind::kArena;
  }();
  return kind;
}

ScopedPacketPath::ScopedPacketPath(PacketPathKind kind)
    : prev_(PacketPathKind::kArena),
      had_prev_(g_ambient_packet_path.has_value()) {
  if (had_prev_) prev_ = *g_ambient_packet_path;
  g_ambient_packet_path = kind;
}

ScopedPacketPath::~ScopedPacketPath() {
  if (had_prev_) {
    g_ambient_packet_path = prev_;
  } else {
    g_ambient_packet_path.reset();
  }
}

PacketPathKind ambient_packet_path() {
  return g_ambient_packet_path.value_or(default_packet_path());
}

PacketArena::~PacketArena() {
  // Slots released from the far side of a shard boundary may still sit
  // on the remote list; fold them back before the slabs go so the leak
  // check below sees the true count.
  drain_remote_free_list();
  // Every layer that creates descriptors is destroyed before the arena
  // (the Simulator reaps coroutine frames and the event queue destroys
  // pending callbacks first), so a nonzero count here is a genuine leak.
  assert(live() == 0 && "packet descriptors leaked past arena teardown");
}

void PacketArena::release_remote(detail::PacketSlot* slot) noexcept {
  // Cross-shard release: the payload and drop hook are already
  // destroyed (release() runs them on the releasing thread); only the
  // raw slot travels back to the owner. Rare enough — one per
  // descriptor that crossed a shard boundary — that a mutex is fine.
  std::lock_guard<std::mutex> lock(remote_mu_);
  *reinterpret_cast<detail::PacketSlot**>(slot->payload) = remote_free_;
  remote_free_ = slot;
}

void PacketArena::drain_remote_free_list() {
  detail::PacketSlot* head = nullptr;
  {
    std::lock_guard<std::mutex> lock(remote_mu_);
    head = remote_free_;
    remote_free_ = nullptr;
  }
  while (head != nullptr) {
    detail::PacketSlot* next =
        *reinterpret_cast<detail::PacketSlot**>(head->payload);
    *reinterpret_cast<detail::PacketSlot**>(head->payload) = free_;
    free_ = head;
    head = next;
  }
}

detail::PacketSlot* PacketArena::allocate_legacy() {
  // One heap allocation per descriptor: the seed's per-message
  // make_shared pattern, kept selectable for the differential harness
  // and the before/after benchmark legs.
  auto* slot = new detail::PacketSlot();
  slot->from_heap = true;
  slot->arena = this;
  slot->refs = 1;
  return slot;
}

void PacketArena::refill_free_list() {
  // Recycle shard-crossed slots before paying for fresh storage.
  drain_remote_free_list();
  if (free_ != nullptr) return;
  auto slab = std::make_unique<detail::PacketSlot[]>(kSlabSlots);
  for (std::size_t i = 0; i < kSlabSlots; ++i) {
    detail::PacketSlot* s = &slab[i];
    s->arena = this;
    *reinterpret_cast<detail::PacketSlot**>(s->payload) = free_;
    free_ = s;
  }
  slabs_.push_back(std::move(slab));
}

}  // namespace pp::sim
