// Conservative parallel discrete-event sharding (Chandy–Misra style,
// barrier-window synchronization).
//
// A ShardGroup owns N Simulators, one per shard, each pinned to its own
// worker thread for the duration of run(). The workload partitions its
// hw::Nodes across the shards (Cluster::add_node with an explicit
// simulator); a PacketPipe whose endpoints live on different shards
// turns its wire exit into a timestamped message posted to the group,
// injected into the destination shard at the next window barrier.
//
// Synchronization is the textbook conservative scheme with the minimum
// cross-shard link propagation delay as lookahead L:
//
//   T       = min over shards of next_event_time()
//   horizon = T + L
//   every shard runs its events with timestamp < horizon in parallel;
//   an event executing at time t >= T can only produce a cross-shard
//   arrival at t + prop >= T + L, i.e. at or past the horizon — so no
//   shard can receive a message for a window it already executed.
//
// Bit-identity with the serial run is NOT a property of the barrier —
// it falls out of the event key. Every arrival is pushed with the
// (at, sched, tag, seq) key computed on the *sending* side (see
// EventQueue), and the pipe uses the same tagged push whether its
// endpoints share a simulator or not, so the merged event order at
// every node is the same in every shard configuration, including
// shards=1 and the plain unsharded serial run. DESIGN.md section 10.
//
// Constraints enforced here and in simhw:
//  - a cross-shard pipe must have propagation delay > 0 (zero-latency
//    links defeat lookahead; co-locate those endpoints on one shard);
//  - TCP endpoints mutate peer state directly and must be co-located
//    (raw PacketPipe traffic is the only thing that may cross shards);
//  - rx-side drop hooks that reach back into tx-side state fire on the
//    receiving shard's thread and are unsupported across a boundary.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "simcore/simulator.h"
#include "simcore/small_fn.h"
#include "simcore/time.h"

namespace pp::sim {

/// RAII scope setting the ambient shard count workload factories read
/// (SweepOptions::shards installs this around job factories, exactly
/// like ScopedScheduler). 0 means "unsharded serial". Scopes nest.
class ScopedShards {
 public:
  explicit ScopedShards(int shards);
  ~ScopedShards();
  ScopedShards(const ScopedShards&) = delete;
  ScopedShards& operator=(const ScopedShards&) = delete;

 private:
  int prev_;
  bool had_prev_;
};

/// The shard count a workload constructed right now should use: the
/// innermost ScopedShards, else PP_SHARDS from the environment, else 0
/// (serial).
int ambient_shards();

class ShardGroup {
 public:
  /// Constructs `shards` simulators (>= 1), each adopting the ambient
  /// scheduler/packet-path/limits of the constructing thread.
  explicit ShardGroup(int shards);

  /// Tears the shards down in a safe order: every shard's suspended
  /// frames and pending events are destroyed before any shard's packet
  /// arena (frames may hold descriptors that live in a sibling's arena).
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int shards() const noexcept { return static_cast<int>(sims_.size()); }
  Simulator& shard(int i) { return *sims_[static_cast<std::size_t>(i)]; }

  /// Registers a cross-shard link's propagation delay; the group's
  /// lookahead is the minimum over all registered links. PacketPipe
  /// calls this when its endpoints land on different shards. Throws
  /// std::invalid_argument for propagation <= 0 — a zero-latency link
  /// has no lookahead to give and must be co-located instead.
  void register_link(SimTime propagation);

  /// The current lookahead (kSimTimeMax when no cross-shard link is
  /// registered — shards then run to completion in one window).
  SimTime lookahead() const noexcept { return lookahead_; }

  /// Posts a cross-shard arrival: `fn` will run on shard `dst_shard` at
  /// time `at` under the shard-stable (at, sched, tag, seq) key the
  /// sender computed. Called by the posting shard's own worker during a
  /// window (each shard writes only its own mailbox — no locking);
  /// injection happens at the next barrier.
  void post(int src_shard, int dst_shard, SimTime at, SimTime sched,
            std::uint64_t tag, std::uint64_t seq, SmallFn fn);

  /// Runs all shards to completion under the conservative window loop.
  /// Throws the first (lowest shard index) exception a shard's event
  /// loop produced, or a DeadlockError aggregating every shard's
  /// suspended processes when all queues drain with work outstanding.
  /// With shards == 1 this is exactly Simulator::run().
  void run();

  /// Windows executed by the last run() (diagnostics / tests).
  std::uint64_t windows() const noexcept { return windows_; }

 private:
  struct CrossMsg {
    int dst;
    SimTime at;
    SimTime sched;
    std::uint64_t tag;
    std::uint64_t seq;
    SmallFn fn;
  };

  void run_parallel();
  void worker_loop(int index);
  void drain_mailboxes(SimTime horizon);

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::vector<CrossMsg>> mailbox_;  // indexed by source shard
  SimTime lookahead_ = kSimTimeMax;
  std::uint64_t windows_ = 0;

  // Window barrier. The coordinator publishes a target and bumps the
  // epoch; workers run their shard to the target and decrement
  // remaining_. All cross-thread visibility (queue state, mailboxes)
  // rides on this mutex.
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
  int remaining_ = 0;
  SimTime target_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace pp::sim
