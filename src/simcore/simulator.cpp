#include "simcore/simulator.h"

#include <cstdio>
#include <utility>

namespace pp::sim {

namespace {
// Ambient budgets installed by ScopedSimLimits: the values a Simulator
// constructed on this thread adopts. 0 = "unlimited" in both slots.
struct AmbientLimits {
  SimTime time_limit = 0;
  std::uint64_t event_limit = 0;
};
thread_local AmbientLimits g_ambient_limits;
}  // namespace

ScopedSimLimits::ScopedSimLimits(SimTime time_limit, std::uint64_t event_limit)
    : prev_time_(g_ambient_limits.time_limit),
      prev_events_(g_ambient_limits.event_limit) {
  g_ambient_limits.time_limit = time_limit;
  g_ambient_limits.event_limit = event_limit;
}

ScopedSimLimits::~ScopedSimLimits() {
  g_ambient_limits.time_limit = prev_time_;
  g_ambient_limits.event_limit = prev_events_;
}

Simulator::Simulator() {
  if (g_ambient_limits.time_limit > 0) time_limit_ = g_ambient_limits.time_limit;
  if (g_ambient_limits.event_limit > 0) {
    event_limit_ = g_ambient_limits.event_limit;
  }
}

std::string format_time(SimTime t) {
  char buf[64];
  const double abs_t = static_cast<double>(t < 0 ? -t : t);
  if (abs_t < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(t));
  } else if (abs_t < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(t) / 1e3);
  } else if (abs_t < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(t) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6fs", static_cast<double>(t) / 1e9);
  }
  return buf;
}

// Detached root coroutine wrapper around a spawned Task. It starts
// suspended (spawn() queues its first resumption), runs the task to
// completion, performs process bookkeeping, and destroys its own frame at
// final suspension.
struct Simulator::RootTask {
  struct promise_type {
    RootTask get_return_object() {
      return RootTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        h.destroy();
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      // run_root catches everything; an exception here means the wrapper
      // itself is broken.
      std::terminate();
    }
  };
  std::coroutine_handle<> handle;
};

Simulator::RootTask Simulator::run_root(Task<void> task, std::size_t slot) {
  std::exception_ptr error;
  try {
    co_await std::move(task);
  } catch (...) {
    error = std::current_exception();
  }
  LiveProcess& proc = processes_[slot];
  Completion& c = *proc.completion;
  c.done_ = true;
  c.error_ = error;
  for (auto waiter : c.waiters_) schedule_now(waiter);
  c.waiters_.clear();
  if (!proc.daemon) --live_;
  if (error && !pending_error_) pending_error_ = error;
}

void Simulator::check_thread() {
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  if (owner_.compare_exchange_strong(expected, self,
                                     std::memory_order_relaxed)) {
    // First use (or first after detach_thread()): this thread now owns
    // the instance, and with it the arena's local free list.
    packet_arena_.set_owner(self);
    return;
  }
  if (expected != self) {
    throw std::logic_error(
        "Simulator used from two threads; each sweep/measurement job must "
        "construct and run its own Simulator on one thread");
  }
}

void Simulator::detach_thread() {
  if (running_) {
    throw std::logic_error(
        "Simulator::detach_thread() called from inside the event loop");
  }
  owner_.store(std::thread::id{}, std::memory_order_relaxed);
}

std::shared_ptr<Completion> Simulator::spawn_impl(Task<void> task,
                                                  std::string name,
                                                  bool daemon) {
  check_thread();
  auto completion = std::make_shared<Completion>();
  const std::size_t slot = processes_.size();
  processes_.push_back(LiveProcess{std::move(name), completion, daemon, {}});
  if (!daemon) ++live_;
  RootTask root = run_root(std::move(task), slot);
  processes_[slot].root = root.handle;
  schedule_now(root.handle);
  return completion;
}

Simulator::~Simulator() {
  // A finished root frame destroys itself at final suspension; whatever
  // is still suspended (daemon pumps blocked on a channel, processes
  // stranded by an exception) is reaped here. Destroying the root frame
  // destroys its locals — including the awaited Task chain — so each
  // process's whole coroutine tree is released. Reverse order so later
  // processes never outlive state owned by earlier ones.
  for (auto it = processes_.rbegin(); it != processes_.rend(); ++it) {
    if (it->root && !it->completion->done()) it->root.destroy();
  }
}

void Simulator::abort_pending() {
  if (running_) {
    throw std::logic_error(
        "Simulator::abort_pending() called from inside the event loop");
  }
  for (auto it = processes_.rbegin(); it != processes_.rend(); ++it) {
    if (it->root && !it->completion->done()) {
      it->root.destroy();
      it->root = {};  // keep ~Simulator from destroying it twice
    }
  }
  queue_.clear();
}

std::shared_ptr<Completion> Simulator::spawn(Task<void> task,
                                             std::string name) {
  return spawn_impl(std::move(task), std::move(name), /*daemon=*/false);
}

std::shared_ptr<Completion> Simulator::spawn_daemon(Task<void> task,
                                                    std::string name) {
  return spawn_impl(std::move(task), std::move(name), /*daemon=*/true);
}

void Simulator::step(EventQueue::Fired&& ev) {
  now_ = ev.at;
  ++events_;
  if (ev.handle) {
    ev.handle.resume();
  } else {
    queue_.run_cb(ev);
  }
}

namespace {
// Flags re-entrant run()/run_until() calls (e.g. from a call_at callback)
// and restores the flag on both normal exit and exception propagation.
struct RunningGuard {
  explicit RunningGuard(bool& flag) : flag_(flag) {
    if (flag_) {
      throw std::logic_error(
          "Simulator::run() re-entered from inside the event loop");
    }
    flag_ = true;
  }
  ~RunningGuard() { flag_ = false; }
  bool& flag_;
};
}  // namespace

void Simulator::throw_budget_exceeded(SimTime next_at) const {
  if (events_ >= event_limit_) {
    throw BudgetExceededError(
        BudgetExceededError::Kind::kEvents,
        "simulator event limit exceeded (runaway protocol loop?)");
  }
  throw BudgetExceededError(
      BudgetExceededError::Kind::kSimTime,
      "simulated-time limit exceeded at " + format_time(next_at) +
          " (limit " + format_time(time_limit_) + ")");
}

void Simulator::run() {
  check_thread();
  RunningGuard guard(running_);
  while (!queue_.empty()) {
    check_budgets(queue_.front_time());
    step(queue_.pop());
    if (pending_error_) {
      auto err = std::exchange(pending_error_, nullptr);
      std::rethrow_exception(err);
    }
  }
  if (live_ > 0) throw_deadlock();
}

bool Simulator::run_until(SimTime t) {
  check_thread();
  RunningGuard guard(running_);
  while (!queue_.empty() && queue_.front_time() <= t) {
    check_budgets(queue_.front_time());
    step(queue_.pop());
    if (pending_error_) {
      auto err = std::exchange(pending_error_, nullptr);
      std::rethrow_exception(err);
    }
  }
  if (now_ < t) now_ = t;
  return !queue_.empty();
}

std::string Simulator::deadlock_message() const {
  std::string msg = "simulation deadlock: ";
  msg += std::to_string(live_);
  msg += " process(es) still suspended with an empty event queue;";
  msg += " waiting:";
  int listed = 0;
  for (const auto& p : processes_) {
    if (!p.daemon && !p.completion->done()) {
      msg += ' ';
      msg += p.name.empty() ? "<unnamed>" : p.name;
      if (++listed == 8) {
        msg += " ...";
        break;
      }
    }
  }
  return msg;
}

void Simulator::throw_deadlock() const { throw DeadlockError(deadlock_message()); }

}  // namespace pp::sim
