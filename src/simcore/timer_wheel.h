// An intrusive timer wheel for protocol timers that are armed, restarted
// and cancelled far more often than they fire (TCP retransmission and
// delayed-ACK timers are the canonical case).
//
// Scheduling a Simulator::call_after() per arm leaves a dead event in
// the global queue for every cancel/restart, plus a liveness-guard
// allocation so the orphaned callback can detect its owner died. A
// Timer instead links itself into a bucket of its wheel: arm, restart
// and cancel are O(1) pointer splices that never touch the global event
// queue, and the Timer's destructor unlinks it, so a timer can never
// fire after its owner is gone — no guard object needed.
//
// The wheel keeps exactly one pending wake-up event in the Simulator,
// always at the *exact* earliest deadline (deadlines are not quantized
// to the bucket width, so firing times are identical to what per-timer
// call_after events would produce). Re-arming to an earlier deadline
// supersedes the pending wake-up via a generation counter; the stale
// event no-ops when it pops.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "simcore/small_fn.h"
#include "simcore/time.h"

namespace pp::sim {

class Simulator;
class Timer;

class TimerWheel {
 public:
  /// `tick_shift` sets the bucket width (2^tick_shift ns); it only
  /// affects how many timers share a bucket scan, never firing times.
  /// The default (~131 us) puts TCP delayed-ACK and RTO deadlines a few
  /// buckets apart.
  explicit TimerWheel(Simulator& sim, int tick_shift = 17);
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  Simulator& simulator() noexcept;

  /// Timers currently armed (tests / diagnostics).
  std::size_t armed_count() const noexcept;

 private:
  friend class Timer;
  struct State;
  std::shared_ptr<State> state_;
};

/// One intrusive timer. Bind it to a wheel and a callback once, then
/// arm/cancel freely; destroying an armed Timer cancels it. A Timer
/// shares ownership of its wheel's bucket state, so it may safely
/// outlive the TimerWheel facade (cancel/destruction stays valid), but
/// arming requires the wheel's Simulator to still be alive.
class Timer {
 public:
  Timer() = default;
  ~Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Binds to `wheel` with the callback invoked on expiry. The callback
  /// may re-arm the timer. Must be called before arm(); rebinding while
  /// armed cancels first.
  void bind(TimerWheel& wheel, SmallFn on_fire);

  /// Schedules (or reschedules) expiry at absolute simulated time `at`
  /// (clamped to now: a past deadline fires at the current instant).
  void arm(SimTime at);
  /// Schedules expiry `d` nanoseconds from now.
  void arm_after(SimTime d);

  /// Unlinks without firing; no-op when idle.
  void cancel();

  bool armed() const noexcept { return armed_; }
  SimTime deadline() const noexcept { return deadline_; }

 private:
  friend class TimerWheel;
  std::shared_ptr<TimerWheel::State> state_;
  SmallFn on_fire_;
  Timer* prev_ = nullptr;
  Timer* next_ = nullptr;
  SimTime deadline_ = 0;
  std::uint64_t seq_ = 0;  ///< arm order; breaks same-deadline ties
  bool armed_ = false;
  bool pending_fire_ = false;  ///< collected into an in-progress fire pass
};

}  // namespace pp::sim
