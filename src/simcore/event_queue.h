// The simulator's pending-event set.
//
// Two interchangeable schedulers live behind one facade, both popping in
// strict (time, insertion-seq) order so a run is bit-for-bit identical
// under either:
//
//  - kCalendar (the default): a two-tier calendar/ladder queue. Tier one
//    is a 1024-slot wheel of power-of-two-width buckets covering the
//    near future; tier two is an unsorted overflow list for events past
//    the wheel horizon, re-bucketed (with the bucket width re-fitted to
//    the pending span) whenever the wheel drains. The slot under the
//    cursor is sorted on open, and the batch of events sharing the next
//    timestamp moves to a plain FIFO — the overwhelmingly common
//    schedule-at-now path (zero delays, signal wakeups, same-tick
//    protocol cascades) is an append and a pop, no comparisons, no
//    rebalancing. Event nodes come from a slab free-list and carry the
//    small-buffer callback slot (small_fn.h), so steady-state scheduling
//    allocates nothing.
//
//  - kLegacyHeap: the seed implementation — std::priority_queue over
//    by-value events with a std::function callback — kept as the
//    baseline for bench/queue_stress's before/after numbers and for the
//    differential determinism harness (tests/test_differential.cpp),
//    which replays whole workloads under both schedulers and asserts
//    identical results. Select it per scope with ScopedScheduler or
//    process-wide with PP_LEGACY_QUEUE=1 in the environment.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "simcore/small_fn.h"
#include "simcore/time.h"

namespace pp::sim {

enum class SchedulerKind { kCalendar, kLegacyHeap };

/// Process-wide default: kLegacyHeap when PP_LEGACY_QUEUE is set to a
/// non-empty, non-"0" value in the environment, else kCalendar.
SchedulerKind default_scheduler();

/// RAII scope overriding the scheduler every Simulator constructed on
/// this thread adopts (the differential harness and the sweep runner
/// install this around job factories). Scopes nest.
class ScopedScheduler {
 public:
  explicit ScopedScheduler(SchedulerKind kind);
  ~ScopedScheduler();
  ScopedScheduler(const ScopedScheduler&) = delete;
  ScopedScheduler& operator=(const ScopedScheduler&) = delete;

 private:
  SchedulerKind prev_;
  bool had_prev_;
};

/// The scheduler a Simulator constructed right now would adopt.
SchedulerKind ambient_scheduler();

class EventQueue {
 public:
  explicit EventQueue(SchedulerKind kind);
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SchedulerKind kind() const noexcept { return kind_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Exactly one of `h` / `cb` must be set. `seq` must be strictly
  /// increasing across pushes (the Simulator's schedule counter) — it is
  /// the insertion-order half of the (at, seq) total order.
  void push(SimTime at, std::uint64_t seq, std::coroutine_handle<> h,
            SmallFn cb);

  /// Timestamp of the next event to pop. Requires !empty(). May
  /// reorganize internal tiers but never changes the pop order.
  SimTime front_time();

  /// What pop() hands the event loop; the node is already recycled.
  struct Fired {
    SimTime at = 0;
    std::coroutine_handle<> handle;
    SmallFn cb;
  };

  /// Removes and returns the minimum-(at, seq) event. Requires !empty().
  Fired pop();

 private:
  struct EventNode {
    SimTime at;
    std::uint64_t seq;
    EventNode* next;  ///< slab free-list / bucket / far-tier link
    std::coroutine_handle<> handle;
    SmallFn cb;
  };

  // ---- calendar tier geometry ---------------------------------------
  static constexpr int kBucketBits = 10;
  static constexpr int kNumBuckets = 1 << kBucketBits;
  static constexpr int kMaxShift = 44;  ///< keeps span arithmetic safe

  EventNode* alloc_node(SimTime at, std::uint64_t seq,
                        std::coroutine_handle<> h, SmallFn cb);
  void release_node(EventNode* n);

  void calendar_push(EventNode* n);
  EventNode* calendar_front();  ///< min node, left in place
  EventNode* calendar_take_front();

  void bucket_insert(EventNode* n);
  /// Makes open_ hold the next pending events (advancing the cursor and
  /// re-bucketing the far tier as needed). Requires calendar size > 0.
  void ensure_open();
  /// Re-anchors the wheel around the current pending set (all tiers).
  /// Triggered by a push behind the cursor — only possible through
  /// external scheduling after run_until() advanced virtual time past
  /// the cursor window — and by wheel drain.
  void rebuild(EventNode* extra);
  void collect_all(std::vector<EventNode*>& out);

  SimTime slot_lo(std::int64_t abs_slot) const {
    return static_cast<SimTime>(abs_slot) << shift_;
  }

  SchedulerKind kind_;
  std::size_t size_ = 0;

  // ---- slab pool -----------------------------------------------------
  static constexpr std::size_t kSlabNodes = 256;
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  EventNode* free_ = nullptr;

  // ---- calendar state ------------------------------------------------
  /// Singleton fast path: a push into an empty queue stashes the event
  /// inline here — no node allocation, no tier bookkeeping. A queue
  /// ping-ponging between empty and one pending event (a lone coroutine
  /// awaiting delays — the NetPIPE inner loop's shape) never touches
  /// the tiers. A second push demotes the stash into them. Invariant:
  /// solo_active_ implies size_ == 1.
  bool solo_active_ = false;
  SimTime solo_at_ = 0;
  std::uint64_t solo_seq_ = 0;
  std::coroutine_handle<> solo_h_;
  SmallFn solo_cb_;
  int shift_ = 12;           ///< bucket width = 2^shift_ ns (~4 us)
  SimTime wheel_end_ = 0;    ///< exclusive horizon of the wheel window
  std::int64_t cursor_ = 0;  ///< absolute slot index under consumption
  bool open_active_ = false;
  SimTime open_lo_ = 0, open_hi_ = 0;  ///< window of the open slot
  std::vector<EventNode*> open_;       ///< sorted ascending (at, seq)
  std::size_t open_pos_ = 0;
  std::vector<EventNode*> fifo_;  ///< batch sharing fifo_time_, seq order
  std::size_t fifo_pos_ = 0;
  SimTime fifo_time_ = -1;
  std::array<EventNode*, kNumBuckets> bucket_{};
  std::array<std::uint64_t, kNumBuckets / 64> bitmap_{};
  EventNode* far_ = nullptr;
  std::size_t far_count_ = 0;

  // ---- legacy tier ---------------------------------------------------
  struct LegacyEvent {
    SimTime at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;  // exactly one of handle/callback set
    std::function<void()> callback;
  };
  struct LegacyLater {
    bool operator()(const LegacyEvent& a, const LegacyEvent& b) const
        noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, LegacyLater>
      legacy_;
};

}  // namespace pp::sim
