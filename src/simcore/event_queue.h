// The simulator's pending-event set.
//
// Two interchangeable schedulers live behind one facade, both popping in
// strict (time, insertion-seq) order so a run is bit-for-bit identical
// under either:
//
//  - kCalendar (the default): a two-tier calendar/ladder queue. Tier one
//    is a 1024-slot wheel of power-of-two-width buckets covering the
//    near future; tier two is an unsorted overflow list for events past
//    the wheel horizon, re-bucketed (with the bucket width re-fitted to
//    the pending span) whenever the wheel drains. The slot under the
//    cursor is sorted on open, and the batch of events sharing the next
//    timestamp moves to a plain FIFO — the overwhelmingly common
//    schedule-at-now path (zero delays, signal wakeups, same-tick
//    protocol cascades) is an append and a pop, no comparisons, no
//    rebalancing. Event nodes come from a slab free-list and carry the
//    small-buffer callback slot (small_fn.h), so steady-state scheduling
//    allocates nothing.
//
//  - kLegacyHeap: the seed implementation — std::priority_queue over
//    by-value events with a std::function callback — kept as the
//    baseline for bench/queue_stress's before/after numbers and for the
//    differential determinism harness (tests/test_differential.cpp),
//    which replays whole workloads under both schedulers and asserts
//    identical results. Select it per scope with ScopedScheduler or
//    process-wide with PP_LEGACY_QUEUE=1 in the environment.
//
// The push/pop/front_time fast paths are defined inline below the class:
// the event loop crosses them once per event, and without LTO an
// out-of-line call per hop costs more than the work the fast paths do.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <vector>

#include "simcore/small_fn.h"
#include "simcore/time.h"

namespace pp::sim {

enum class SchedulerKind { kCalendar, kLegacyHeap };

/// Ordering tag of plain (non-arrival) events. Events pop in strict
/// (at, sched, tag, seq) order:
///
///   at    - the event's firing time;
///   sched - virtual time at which the event was scheduled. For local
///           pushes this never changes the order (seq already respects
///           it); it exists so a cross-shard arrival can be merged at
///           the exact position its send time dictates;
///   tag   - kLocalEventTag for ordinary events; pipe arrivals carry a
///           pipe-stable tag (see simhw::PacketPipe) so simultaneous
///           arrivals from different links merge in a shard-independent
///           order;
///   seq   - the Simulator's push counter for local events, the pipe's
///           per-link arrival counter for tagged ones.
///
/// The rule is what makes conservative sharding bit-identical to the
/// single-threaded scheduler: every component of an arrival's key is
/// computed on the *sending* side, so the merged order cannot depend on
/// which shard ran first (DESIGN.md section 10).
inline constexpr std::uint64_t kLocalEventTag = ~std::uint64_t{0};

/// Process-wide default: kLegacyHeap when PP_LEGACY_QUEUE is set to a
/// non-empty, non-"0" value in the environment, else kCalendar.
SchedulerKind default_scheduler();

/// RAII scope overriding the scheduler every Simulator constructed on
/// this thread adopts (the differential harness and the sweep runner
/// install this around job factories). Scopes nest.
class ScopedScheduler {
 public:
  explicit ScopedScheduler(SchedulerKind kind);
  ~ScopedScheduler();
  ScopedScheduler(const ScopedScheduler&) = delete;
  ScopedScheduler& operator=(const ScopedScheduler&) = delete;

 private:
  SchedulerKind prev_;
  bool had_prev_;
};

/// The scheduler a Simulator constructed right now would adopt.
SchedulerKind ambient_scheduler();

class EventQueue {
 private:
  struct EventNode;  // defined below; Fired holds a pointer to one

 public:
  explicit EventQueue(SchedulerKind kind);
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SchedulerKind kind() const noexcept { return kind_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Exactly one of `h` / `cb` must be set. `seq` must be strictly
  /// increasing across pushes (the Simulator's schedule counter) and
  /// `sched` non-decreasing (the Simulator's clock at push time); they
  /// form the local half of the (at, sched, tag, seq) total order (tag
  /// is kLocalEventTag here).
  void push(SimTime at, SimTime sched, std::uint64_t seq,
            std::coroutine_handle<> h, SmallFn cb);

  /// Callback push constructing the callable directly in the event node
  /// (no SmallFn relocate of the capture — often a whole hw::Packet —
  /// between the call site and the node). Same key semantics as push().
  template <typename F>
  void push_cb(SimTime at, SimTime sched, std::uint64_t seq, F&& fn);

  /// Arrival push carrying an explicit shard-stable (sched, tag, seq)
  /// key computed on the sending side. Unlike push()/push_cb(), the key
  /// may sort *below* already-pending events at the same timestamp (a
  /// zero-latency link's arrival, a cross-shard merge); the queue
  /// inserts it at the position the key dictates.
  template <typename F>
  void push_cb_tagged(SimTime at, SimTime sched, std::uint64_t tag,
                      std::uint64_t seq, F&& fn);

  /// Timestamp of the next event to pop. Requires !empty(). May
  /// reorganize internal tiers but never changes the pop order.
  SimTime front_time();

  /// What pop() hands the event loop. Calendar-popped callbacks stay in
  /// their node (`node` set, invoke via run_cb()) so the capture state —
  /// often a whole hw::Packet — is not relocated on every pop; legacy
  /// and solo-stash pops carry the callable in `cb`.
  struct Fired {
    SimTime at = 0;
    std::coroutine_handle<> handle;
    SmallFn cb;
    EventNode* node = nullptr;
  };

  /// Removes and returns the minimum-(at, sched, tag, seq) event.
  /// Requires !empty(). A callback-carrying Fired must be passed to
  /// run_cb() (exactly once) to fire and recycle it.
  Fired pop();

  /// Invokes the fired event's callback and recycles its node.
  void run_cb(Fired& f);

  /// Discards every pending event without firing it: callbacks (and
  /// their captures — packets, refs) are destroyed, coroutine handles
  /// are dropped (their frames belong to the Simulator's process
  /// bookkeeping). Used by Simulator::abort_pending() so a shard group
  /// can tear down cross-referencing simulators in a safe order.
  void clear();

 private:
  struct EventNode {
    SimTime at;
    SimTime sched;      ///< virtual time the push happened (send time)
    std::uint64_t tag;  ///< kLocalEventTag, or a pipe's arrival tag
    std::uint64_t seq;
    EventNode* next;  ///< slab free-list / bucket / far-tier link
    std::coroutine_handle<> handle;
    SmallFn cb;
  };

  static bool key_less(SimTime at_a, SimTime sched_a, std::uint64_t tag_a,
                       std::uint64_t seq_a, SimTime at_b, SimTime sched_b,
                       std::uint64_t tag_b, std::uint64_t seq_b) {
    if (at_a != at_b) return at_a < at_b;
    if (sched_a != sched_b) return sched_a < sched_b;
    if (tag_a != tag_b) return tag_a < tag_b;
    return seq_a < seq_b;
  }
  static bool node_less(const EventNode* a, const EventNode* b) {
    return key_less(a->at, a->sched, a->tag, a->seq, b->at, b->sched, b->tag,
                    b->seq);
  }

  // ---- calendar tier geometry ---------------------------------------
  static constexpr int kBucketBits = 10;
  static constexpr int kNumBuckets = 1 << kBucketBits;
  static constexpr int kMaxShift = 44;  ///< keeps span arithmetic safe

  EventNode* alloc_node(SimTime at, SimTime sched, std::uint64_t tag,
                        std::uint64_t seq, std::coroutine_handle<> h,
                        SmallFn cb);
  template <typename F>
  EventNode* alloc_node_cb(SimTime at, SimTime sched, std::uint64_t tag,
                           std::uint64_t seq, F&& fn);
  void refill_free_list();  ///< slow path: carve a fresh slab
  void release_node(EventNode* n);

  void calendar_push(EventNode* n);
  EventNode* calendar_front();  ///< min node, left in place
  EventNode* calendar_take_front();

  void bucket_insert(EventNode* n);
  /// Makes open_ hold the next pending events. Inline early return: on
  /// the steady state the open slot already has events, and front_time()
  /// and pop() both land here once per non-FIFO event. Requires calendar
  /// size > 0.
  void ensure_open() {
    if (open_pos_ >= open_.size()) open_next_slot();
  }
  /// Slow path: advances the cursor to the next non-empty bucket (and
  /// re-buckets the far tier as needed).
  void open_next_slot();
  /// Re-anchors the wheel around the current pending set (all tiers).
  /// Triggered by a push behind the cursor — only possible through
  /// external scheduling after run_until() advanced virtual time past
  /// the cursor window — and by wheel drain.
  void rebuild(EventNode* extra);
  void collect_all(std::vector<EventNode*>& out);

  SimTime slot_lo(std::int64_t abs_slot) const {
    return static_cast<SimTime>(abs_slot) << shift_;
  }

  SchedulerKind kind_;
  std::size_t size_ = 0;

  // ---- slab pool -----------------------------------------------------
  static constexpr std::size_t kSlabNodes = 256;
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  EventNode* free_ = nullptr;

  // ---- calendar state ------------------------------------------------
  /// Singleton fast path: a push into an empty queue stashes the event
  /// inline here — no node allocation, no tier bookkeeping. A queue
  /// ping-ponging between empty and one pending event (a lone coroutine
  /// awaiting delays — the NetPIPE inner loop's shape) never touches
  /// the tiers. A second push demotes the stash into them. Invariant:
  /// solo_active_ implies size_ == 1.
  bool solo_active_ = false;
  SimTime solo_at_ = 0;
  SimTime solo_sched_ = 0;
  std::uint64_t solo_tag_ = kLocalEventTag;
  std::uint64_t solo_seq_ = 0;
  std::coroutine_handle<> solo_h_;
  SmallFn solo_cb_;
  int shift_ = 12;           ///< bucket width = 2^shift_ ns (~4 us)
  SimTime wheel_end_ = 0;    ///< exclusive horizon of the wheel window
  std::int64_t cursor_ = 0;  ///< absolute slot index under consumption
  bool open_active_ = false;
  SimTime open_lo_ = 0, open_hi_ = 0;  ///< window of the open slot
  std::vector<EventNode*> open_;       ///< sorted ascending by key
  std::size_t open_pos_ = 0;
  std::vector<EventNode*> fifo_;  ///< batch sharing fifo_time_, key order
  std::size_t fifo_pos_ = 0;
  SimTime fifo_time_ = -1;
  std::array<EventNode*, kNumBuckets> bucket_{};
  std::array<std::uint64_t, kNumBuckets / 64> bitmap_{};
  EventNode* far_ = nullptr;
  std::size_t far_count_ = 0;
  /// Scratch for rebuild(): retains its capacity so the re-anchoring a
  /// sparse steady state performs per wheel lap never allocates.
  std::vector<EventNode*> rebuild_scratch_;

  // ---- legacy tier ---------------------------------------------------
  struct LegacyEvent {
    SimTime at;
    SimTime sched;
    std::uint64_t tag;
    std::uint64_t seq;
    std::coroutine_handle<> handle;  // exactly one of handle/callback set
    std::function<void()> callback;
  };
  struct LegacyLater {
    bool operator()(const LegacyEvent& a, const LegacyEvent& b) const
        noexcept {
      return key_less(b.at, b.sched, b.tag, b.seq, a.at, a.sched, a.tag,
                      a.seq);
    }
  };
  std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, LegacyLater>
      legacy_;
};

// ---------------------------------------------------------------------
// Hot-path inline definitions
// ---------------------------------------------------------------------

inline EventQueue::EventNode* EventQueue::alloc_node(
    SimTime at, SimTime sched, std::uint64_t tag, std::uint64_t seq,
    std::coroutine_handle<> h, SmallFn cb) {
  if (free_ == nullptr) refill_free_list();
  EventNode* mem = free_;
  free_ = free_->next;
  return ::new (static_cast<void*>(mem))
      EventNode{at, sched, tag, seq, nullptr, h, std::move(cb)};
}

template <typename F>
EventQueue::EventNode* EventQueue::alloc_node_cb(SimTime at, SimTime sched,
                                                 std::uint64_t tag,
                                                 std::uint64_t seq, F&& fn) {
  if (free_ == nullptr) refill_free_list();
  EventNode* mem = free_;
  free_ = free_->next;
  // The SmallFn member is copy-initialized from a prvalue, so the
  // capture is constructed straight into the node (guaranteed elision).
  return ::new (static_cast<void*>(mem))
      EventNode{at, sched, tag, seq, nullptr, {}, SmallFn(std::forward<F>(fn))};
}

inline void EventQueue::release_node(EventNode* n) {
  n->~EventNode();
  n->next = free_;
  free_ = n;
}

inline void EventQueue::bucket_insert(EventNode* n) {
  const std::size_t slot =
      static_cast<std::size_t>(n->at >> shift_) & (kNumBuckets - 1);
  n->next = bucket_[slot];
  bucket_[slot] = n;
  bitmap_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

inline void EventQueue::calendar_push(EventNode* n) {
  const SimTime at = n->at;
  if (fifo_pos_ < fifo_.size() && at == fifo_time_) {
    // Same-timestamp push. Local pushes always key above the batch tail
    // (their sched is the current instant and their tag the local
    // maximum), so the hot path — zero delays, signal wakeups, same-tick
    // protocol cascades — is one compare and an append. Only a tagged
    // arrival from a zero-latency pipe can key below pending entries; it
    // inserts into the still-unconsumed tail at the position its
    // send-side key dictates.
    if (!node_less(n, fifo_.back())) {
      fifo_.push_back(n);
    } else {
      auto it = std::upper_bound(
          fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_pos_), fifo_.end(),
          n, node_less);
      fifo_.insert(it, n);
    }
    return;
  }
  if (open_active_ && at >= open_lo_ && at < open_hi_) {
    // Lands in the slot under the cursor: ordered insert into the
    // still-unconsumed tail.
    auto it = std::upper_bound(
        open_.begin() + static_cast<std::ptrdiff_t>(open_pos_), open_.end(),
        n, node_less);
    open_.insert(it, n);
    return;
  }
  const SimTime floor = open_active_ ? open_hi_ : slot_lo(cursor_);
  if (at >= floor && at < wheel_end_) {
    bucket_insert(n);
    return;
  }
  if (at >= wheel_end_) {
    n->next = far_;
    far_ = n;
    ++far_count_;
    return;
  }
  // Behind the cursor: only reachable by scheduling from outside the
  // event loop after run_until() advanced past the cursor window.
  rebuild(n);
}

inline void EventQueue::push(SimTime at, SimTime sched, std::uint64_t seq,
                             std::coroutine_handle<> h, SmallFn cb) {
  ++size_;
  if (kind_ == SchedulerKind::kLegacyHeap) {
    std::function<void()> fn;
    if (cb) {
      // std::function requires a copyable target; the move-only SmallFn
      // rides behind a shared_ptr, mirroring the allocation the legacy
      // implementation paid for every capturing callback.
      fn = [sp = std::make_shared<SmallFn>(std::move(cb))] { (*sp)(); };
    }
    legacy_.push(LegacyEvent{at, sched, kLocalEventTag, seq, h, std::move(fn)});
    return;
  }
  if (size_ == 1) {  // size_ already counts this event: queue was empty
    solo_active_ = true;
    solo_at_ = at;
    solo_sched_ = sched;
    solo_tag_ = kLocalEventTag;
    solo_seq_ = seq;
    solo_h_ = h;
    solo_cb_ = std::move(cb);
    return;
  }
  if (solo_active_) {
    // Second pending event: demote the stash into the tiers first (they
    // re-sort on open, so demotion order is irrelevant).
    solo_active_ = false;
    calendar_push(alloc_node(solo_at_, solo_sched_, solo_tag_, solo_seq_,
                             solo_h_, std::move(solo_cb_)));
  }
  calendar_push(alloc_node(at, sched, kLocalEventTag, seq, h, std::move(cb)));
}

template <typename F>
void EventQueue::push_cb(SimTime at, SimTime sched, std::uint64_t seq,
                         F&& fn) {
  push_cb_tagged(at, sched, kLocalEventTag, seq, std::forward<F>(fn));
}

template <typename F>
void EventQueue::push_cb_tagged(SimTime at, SimTime sched, std::uint64_t tag,
                                std::uint64_t seq, F&& fn) {
  ++size_;
  if (kind_ == SchedulerKind::kLegacyHeap) {
    // Same shared_ptr wrap as push(): one heap allocation per capturing
    // callback, mirroring the seed's std::function storage.
    legacy_.push(LegacyEvent{
        at, sched, tag, seq, {},
        [sp = std::make_shared<SmallFn>(std::forward<F>(fn))] { (*sp)(); }});
    return;
  }
  if (size_ == 1) {  // size_ already counts this event: queue was empty
    solo_active_ = true;
    solo_at_ = at;
    solo_sched_ = sched;
    solo_tag_ = tag;
    solo_seq_ = seq;
    solo_h_ = {};
    solo_cb_ = SmallFn(std::forward<F>(fn));
    return;
  }
  if (solo_active_) {
    solo_active_ = false;
    calendar_push(alloc_node(solo_at_, solo_sched_, solo_tag_, solo_seq_,
                             solo_h_, std::move(solo_cb_)));
  }
  calendar_push(alloc_node_cb(at, sched, tag, seq, std::forward<F>(fn)));
}

inline EventQueue::EventNode* EventQueue::calendar_front() {
  if (fifo_pos_ < fifo_.size()) return fifo_[fifo_pos_];
  ensure_open();
  return open_[open_pos_];
}

inline SimTime EventQueue::front_time() {
  assert(size_ > 0 && "front_time() on an empty queue");
  if (kind_ == SchedulerKind::kLegacyHeap) return legacy_.top().at;
  if (solo_active_) return solo_at_;
  return calendar_front()->at;
}

inline EventQueue::EventNode* EventQueue::calendar_take_front() {
  if (fifo_pos_ < fifo_.size()) {
    EventNode* n = fifo_[fifo_pos_++];
    if (fifo_pos_ == fifo_.size()) {
      fifo_.clear();
      fifo_pos_ = 0;
    } else if (fifo_pos_ > 1024 && fifo_pos_ * 2 > fifo_.size()) {
      // A same-timestamp cascade that keeps appending while consuming
      // (zero-delay protocol loops) would otherwise grow the batch
      // vector without bound; drop the consumed prefix occasionally.
      fifo_.erase(fifo_.begin(),
                  fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_pos_));
      fifo_pos_ = 0;
    }
    return n;
  }
  ensure_open();
  // Move the whole batch sharing the next timestamp into the FIFO, so
  // its siblings (and any events scheduled *at* that timestamp while it
  // is being processed) pop with no further comparisons.
  const SimTime t = open_[open_pos_]->at;
  fifo_time_ = t;
  while (open_pos_ < open_.size() && open_[open_pos_]->at == t) {
    fifo_.push_back(open_[open_pos_++]);
  }
  if (open_pos_ == open_.size()) {
    open_.clear();
    open_pos_ = 0;
  }
  return fifo_[fifo_pos_++];
}

inline EventQueue::Fired EventQueue::pop() {
  assert(size_ > 0 && "pop() on an empty queue");
  --size_;
  if (kind_ == SchedulerKind::kLegacyHeap) {
    // By-value copy then pop, exactly as the seed implementation did.
    LegacyEvent ev = legacy_.top();
    legacy_.pop();
    Fired f;
    f.at = ev.at;
    f.handle = ev.handle;
    if (ev.callback) f.cb = std::move(ev.callback);
    return f;
  }
  if (solo_active_) {
    solo_active_ = false;
    Fired f;
    f.at = solo_at_;
    f.handle = solo_h_;
    f.cb = std::move(solo_cb_);
    return f;
  }
  EventNode* n = calendar_take_front();
  Fired f;
  f.at = n->at;
  f.handle = n->handle;
  if (f.handle) {
    release_node(n);
  } else {
    f.node = n;  // callback fires in place via run_cb()
  }
  return f;
}

inline void EventQueue::run_cb(Fired& f) {
  if (f.node != nullptr) {
    EventNode* n = f.node;
    f.node = nullptr;
    // Recycle the node even if the callback throws: release_node runs
    // ~EventNode, destroying the captures mid-unwind exactly as the
    // moved-out path would have.
    struct Recycle {
      EventQueue& q;
      EventNode* n;
      ~Recycle() { q.release_node(n); }
    } recycle{*this, n};
    n->cb();
    return;
  }
  f.cb();
}

}  // namespace pp::sim
