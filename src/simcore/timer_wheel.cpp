#include "simcore/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <vector>

#include "simcore/simulator.h"

namespace pp::sim {

// Shared between the TimerWheel facade, every Timer bound to it, and the
// pending wake-up event (which holds only a weak_ptr, so a wake that
// outlives all of them no-ops instead of touching freed buckets).
struct TimerWheel::State {
  static constexpr int kBuckets = 64;

  Simulator* sim = nullptr;
  int shift = 17;
  std::array<Timer*, kBuckets> bucket{};
  std::uint64_t bitmap = 0;  ///< bit b set <=> bucket[b] non-empty
  std::size_t armed = 0;
  std::uint64_t arm_seq = 0;  ///< stamps Timer::seq_ on every link

  /// Deadline of the wake-up event currently pending in the Simulator
  /// (kSimTimeMax when none). Invariant outside a fire pass: wake_at <=
  /// every armed deadline, so a wake always pops exactly when the
  /// earliest timer is due.
  SimTime wake_at = kSimTimeMax;
  std::uint64_t wake_gen = 0;  ///< superseded wakes no-op on mismatch

  /// Due list of an in-progress fire pass; cancel() of a not-yet-fired
  /// due timer nulls its slot here instead of leaving a dangling entry.
  std::vector<Timer*>* firing = nullptr;
  std::size_t firing_pos = 0;

  static int bucket_of(SimTime at, int shift) {
    return static_cast<int>((static_cast<std::uint64_t>(at) >> shift) &
                            (kBuckets - 1));
  }

  void link(Timer* t) {
    const int b = bucket_of(t->deadline_, shift);
    t->seq_ = ++arm_seq;
    t->prev_ = nullptr;
    t->next_ = bucket[b];
    if (t->next_ != nullptr) t->next_->prev_ = t;
    bucket[b] = t;
    bitmap |= std::uint64_t{1} << b;
    ++armed;
  }

  void unlink(Timer* t) {
    const int b = bucket_of(t->deadline_, shift);
    if (t->prev_ != nullptr) {
      t->prev_->next_ = t->next_;
    } else {
      bucket[b] = t->next_;
      if (bucket[b] == nullptr) bitmap &= ~(std::uint64_t{1} << b);
    }
    if (t->next_ != nullptr) t->next_->prev_ = t->prev_;
    t->prev_ = t->next_ = nullptr;
    --armed;
  }

  SimTime min_deadline() const {
    SimTime best = kSimTimeMax;
    std::uint64_t bits = bitmap;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      for (const Timer* t = bucket[b]; t != nullptr; t = t->next_) {
        if (t->deadline_ < best) best = t->deadline_;
      }
    }
    return best;
  }

  void schedule_wake(const std::shared_ptr<State>& self, SimTime at);
  void fire(const std::shared_ptr<State>& self);
};

void TimerWheel::State::schedule_wake(const std::shared_ptr<State>& self,
                                      SimTime at) {
  wake_at = at;
  const std::uint64_t gen = ++wake_gen;
  sim->call_at(at, [w = std::weak_ptr<State>(self), gen] {
    auto s = w.lock();
    if (s && s->wake_gen == gen) s->fire(s);
  });
}

void TimerWheel::State::fire(const std::shared_ptr<State>& self) {
  wake_at = kSimTimeMax;  // this wake is consumed
  const SimTime now = sim->now();

  // Every armed deadline is >= now (the wake invariant), and all those
  // == now share one bucket; later-lap residents of the same bucket are
  // skipped by the deadline test.
  std::vector<Timer*> due;
  const int b = bucket_of(now, shift);
  for (Timer* t = bucket[b]; t != nullptr;) {
    Timer* next = t->next_;
    if (t->deadline_ <= now) {
      unlink(t);
      t->armed_ = false;
      t->pending_fire_ = true;
      due.push_back(t);
    }
    t = next;
  }

  // Buckets are LIFO lists, so the scan yields reverse arm order; sort
  // back to arm order so same-deadline timers fire exactly as the
  // equivalent call_at events would ((time, insertion-order) semantics).
  std::sort(due.begin(), due.end(), [](const Timer* a, const Timer* b) {
    return a->seq_ < b->seq_;
  });

  // Fire with the due list published so a callback cancelling (or
  // destroying) a sibling timer voids its pending slot. A callback may
  // cancel or re-arm any timer, including its own; it must not destroy
  // its own Timer object.
  firing = &due;
  for (firing_pos = 0; firing_pos < due.size(); ++firing_pos) {
    Timer* t = due[firing_pos];
    if (t == nullptr) continue;
    t->pending_fire_ = false;
    t->on_fire_();
  }
  firing = nullptr;

  // Timers armed before this pass (deadlines past now) lost their wake
  // when we consumed it; re-establish the invariant. Arms made by the
  // callbacks above already scheduled their own wakes and lowered
  // wake_at accordingly.
  const SimTime next = min_deadline();
  if (next < wake_at) schedule_wake(self, next);
}

TimerWheel::TimerWheel(Simulator& sim, int tick_shift)
    : state_(std::make_shared<State>()) {
  state_->sim = &sim;
  state_->shift = tick_shift;
}

TimerWheel::~TimerWheel() = default;

Simulator& TimerWheel::simulator() noexcept { return *state_->sim; }

std::size_t TimerWheel::armed_count() const noexcept { return state_->armed; }

Timer::~Timer() { cancel(); }

void Timer::bind(TimerWheel& wheel, SmallFn on_fire) {
  cancel();
  state_ = wheel.state_;
  on_fire_ = std::move(on_fire);
}

void Timer::arm(SimTime at) {
  assert(state_ && "Timer::arm before bind");
  cancel();
  // Clamp a past deadline to now (matching arm_after's negative-delay
  // clamp). Without this the timer links into bucket_of(at) while the
  // wake invariant ("every armed deadline >= now") says the fire pass
  // only ever scans bucket_of(now): a stale-bucket timer is skipped,
  // and the end-of-pass rescue keeps rescheduling a wake at the past
  // deadline forever.
  const SimTime now = state_->sim->now();
  if (at < now) at = now;
  deadline_ = at;
  armed_ = true;
  state_->link(this);
  if (at < state_->wake_at) state_->schedule_wake(state_, at);
}

void Timer::arm_after(SimTime d) {
  assert(state_ && "Timer::arm_after before bind");
  arm(state_->sim->now() + (d > 0 ? d : 0));
}

void Timer::cancel() {
  if (armed_) {
    state_->unlink(this);
    armed_ = false;
    return;
  }
  if (pending_fire_) {
    // Mid-fire-pass: void the due-list slot instead of firing later.
    auto& due = *state_->firing;
    for (std::size_t i = state_->firing_pos; i < due.size(); ++i) {
      if (due[i] == this) {
        due[i] = nullptr;
        break;
      }
    }
    pending_fire_ = false;
  }
  // A cancelled min-deadline timer leaves its wake pending; the wake
  // fires, finds nothing due, and reschedules from the surviving set.
}

}  // namespace pp::sim
