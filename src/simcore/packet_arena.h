// Slab/arena-backed packet descriptors with intrusive refcounts.
//
// Every frame a protocol puts on a PacketPipe used to carry a
// std::shared_ptr<void> descriptor plus a std::function drop hook — two
// heap allocations and an atomic control block per message on the
// steady-state path. PacketArena replaces both: descriptors live in
// fixed-size slots handed out from slab storage, PacketRef is a
// non-atomic intrusive refcount (the simulator is single-threaded by
// contract), and the drop hook is a strictly-inline small-buffer
// callable stored in the slot header. Refcount sharing is what makes
// zero-copy views possible: a TCP retransmit, a fault-injected
// duplicate and a receive-side staging view all point at the same slot
// instead of cloning it.
//
// Two interchangeable backends live behind the same API, mirroring the
// event queue's scheduler split:
//
//  - kArena (the default): slab slots on an intrusive free list; the
//    steady state allocates nothing.
//  - kLegacyHeap: one operator-new allocation per descriptor,
//    reproducing the seed's per-message shared_ptr allocation pattern.
//    Select it per scope with ScopedPacketPath or process-wide with
//    PP_LEGACY_PACKETS=1; the differential harness replays whole
//    workloads under both backends and asserts bit-identical results.
//
// Refcount rules (the contract every layer relies on):
//  - make<T>() returns a PacketRef owning one reference.
//  - Copying a PacketRef increments, destruction decrements; at zero the
//    payload is destroyed, the drop hook is discarded and the slot goes
//    back on the free list.
//  - fire_drop() runs the hook without consuming it: a descriptor shared
//    by many frames (GM/VIA fragments of one message) fires once per
//    dropped frame.
//  - Descriptors must not outlive the arena; the Simulator owns its
//    arena and destroys it after the event queue and all coroutine
//    frames, which is what makes that safe in practice.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace pp::sim {

enum class PacketPathKind { kArena, kLegacyHeap };

/// Process-wide default: kLegacyHeap when PP_LEGACY_PACKETS is set to a
/// non-empty, non-"0" value in the environment, else kArena.
PacketPathKind default_packet_path();

/// RAII scope overriding the packet path every Simulator constructed on
/// this thread adopts (the differential harness installs this around
/// job factories, exactly like ScopedScheduler). Scopes nest.
class ScopedPacketPath {
 public:
  explicit ScopedPacketPath(PacketPathKind kind);
  ~ScopedPacketPath();
  ScopedPacketPath(const ScopedPacketPath&) = delete;
  ScopedPacketPath& operator=(const ScopedPacketPath&) = delete;

 private:
  PacketPathKind prev_;
  bool had_prev_;
};

/// The packet path a Simulator constructed right now would adopt.
PacketPathKind ambient_packet_path();

/// Move-only callable for the descriptor drop hook. Unlike SmallFn it is
/// strictly inline: a capture that does not fit kInlineBytes is a
/// compile error, never a hidden heap allocation — the whole point of
/// the slot header is that steady-state frames do not allocate.
class DropFn {
 public:
  static constexpr std::size_t kInlineBytes = 24;

  DropFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, DropFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  DropFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors SmallFn
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "drop-hook capture exceeds the inline slot; shrink the "
                  "capture (e.g. a raw pointer + weak liveness guard)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    vt_ = &vtable<Fn>;
  }

  DropFn(DropFn&& other) noexcept { move_from(other); }
  DropFn& operator=(DropFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  DropFn(const DropFn&) = delete;
  DropFn& operator=(const DropFn&) = delete;

  ~DropFn() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Runs the hook; the hook stays armed (shared descriptors fire once
  /// per dropped frame).
  void operator()() { vt_->invoke(buf_); }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable vtable = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  void move_from(DropFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

class PacketArena;
class PacketRef;

namespace detail {

/// One descriptor slot: intrusive refcount + drop hook + payload bytes.
/// Free slots thread the free list through their payload storage.
struct PacketSlot {
  static constexpr std::size_t kPayloadBytes = 64;

  /// Atomic because a descriptor that crossed a shard boundary is
  /// released on the receiving shard's thread while the owning shard
  /// keeps allocating. Uncontended fetch_add/fetch_sub on a line only
  /// this descriptor touches — the serial fast path stays allocation-
  /// and fence-free.
  std::atomic<std::uint32_t> refs{0};
  bool from_heap = false;
  void (*destroy_payload)(void*) = nullptr;
  PacketArena* arena = nullptr;
  DropFn drop;
  alignas(std::max_align_t) unsigned char payload[kPayloadBytes];
};

}  // namespace detail

/// Refcounted handle to an arena descriptor. Copy = one more reference;
/// the payload dies (and the slot is recycled) when the last reference
/// drops. get<T>() is unchecked — the caller knows the protocol that
/// built the frame, exactly as with the shared_ptr<void> it replaces.
class PacketRef {
 public:
  PacketRef() = default;
  PacketRef(const PacketRef& other) noexcept : slot_(other.slot_) {
    if (slot_ != nullptr) {
      slot_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PacketRef(PacketRef&& other) noexcept : slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  PacketRef& operator=(const PacketRef& other) noexcept {
    PacketRef tmp(other);
    std::swap(slot_, tmp.slot_);
    return *this;
  }
  PacketRef& operator=(PacketRef&& other) noexcept {
    if (this != &other) {
      reset();
      slot_ = other.slot_;
      other.slot_ = nullptr;
    }
    return *this;
  }
  ~PacketRef() { reset(); }

  explicit operator bool() const noexcept { return slot_ != nullptr; }

  template <typename T>
  T* get() const noexcept {
    assert(slot_ != nullptr);
    return std::launder(reinterpret_cast<T*>(slot_->payload));
  }

  std::uint32_t use_count() const noexcept {
    return slot_ == nullptr ? 0
                            : slot_->refs.load(std::memory_order_relaxed);
  }

  /// Installs the drop hook (replacing any previous one).
  void set_drop(DropFn fn) {
    assert(slot_ != nullptr);
    slot_->drop = std::move(fn);
  }

  /// Runs the drop hook if one is armed; see DropFn::operator().
  void fire_drop() const {
    if (slot_ != nullptr && slot_->drop) slot_->drop();
  }

  void reset() noexcept;

 private:
  friend class PacketArena;
  explicit PacketRef(detail::PacketSlot* slot) noexcept : slot_(slot) {}

  detail::PacketSlot* slot_ = nullptr;
};

/// Identity of one zero-copy payload buffer. Senders allocate one per
/// message (Socket::make_payload); segment views, retransmits and
/// receive-side staging all share the slot, so `id` is what receivers
/// use to recognize "I have seen this buffer already".
struct PayloadBuffer {
  std::uint64_t id = 0;
  std::uint64_t bytes = 0;
};

/// The allocator. One per Simulator; strictly single-threaded.
class PacketArena {
 public:
  static constexpr std::size_t kPayloadBytes = detail::PacketSlot::kPayloadBytes;

  explicit PacketArena(PacketPathKind kind = ambient_packet_path())
      : kind_(kind) {}
  ~PacketArena();
  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  PacketPathKind kind() const noexcept { return kind_; }

  /// Allocates a descriptor slot and constructs a T in it. T must fit
  /// kPayloadBytes; keep descriptors lean (pointers + scalars + at most
  /// a PacketRef view or two).
  template <typename T, typename... Args>
  PacketRef make(Args&&... args) {
    static_assert(sizeof(T) <= kPayloadBytes,
                  "packet descriptor exceeds the arena slot");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    detail::PacketSlot* slot = allocate();
    ::new (static_cast<void*>(slot->payload)) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      slot->destroy_payload = [](void* p) {
        std::launder(reinterpret_cast<T*>(p))->~T();
      };
    }
    return PacketRef(slot);
  }

  /// Allocates a PayloadBuffer descriptor with a deterministic id (the
  /// arena's allocation counter, unique within a run).
  PacketRef make_payload(std::uint64_t bytes) {
    return make<PayloadBuffer>(PayloadBuffer{total_allocated_ + 1, bytes});
  }

  /// Descriptors currently alive. Returns to zero after every clean
  /// simulation teardown; the leak tests assert exactly that.
  std::uint64_t live() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_allocated() const noexcept { return total_allocated_; }
  std::size_t slab_count() const noexcept { return slabs_.size(); }

  /// The thread whose releases recycle straight onto the local free
  /// list. Set by Simulator::check_thread() whenever the instance is
  /// (re)pinned; releases from any other thread — the other side of a
  /// shard boundary — park the slot on the mutex-guarded remote list,
  /// which the owner drains before carving a fresh slab.
  void set_owner(std::thread::id tid) noexcept {
    owner_.store(tid, std::memory_order_relaxed);
  }

 private:
  friend class PacketRef;

  /// Fast path inline: one descriptor per frame/segment makes this a
  /// per-packet cost; the slab refill and the legacy-heap leg stay out
  /// of line. Owner thread only (allocation is a Simulator-pinned
  /// operation; only releases cross threads).
  detail::PacketSlot* allocate() {
    live_.fetch_add(1, std::memory_order_relaxed);
    ++total_allocated_;
    if (kind_ == PacketPathKind::kLegacyHeap) return allocate_legacy();
    if (free_ == nullptr) refill_free_list();
    detail::PacketSlot* slot = free_;
    free_ = *reinterpret_cast<detail::PacketSlot**>(slot->payload);
    slot->refs.store(1, std::memory_order_relaxed);
    return slot;
  }
  detail::PacketSlot* allocate_legacy();
  void refill_free_list();
  void drain_remote_free_list();

  void release(detail::PacketSlot* slot) noexcept {
    if (slot->destroy_payload != nullptr) {
      slot->destroy_payload(slot->payload);
      slot->destroy_payload = nullptr;
    }
    slot->drop.reset();
    live_.fetch_sub(1, std::memory_order_relaxed);
    if (slot->from_heap) {
      delete slot;  // operator delete is thread-safe; no list involved
      return;
    }
    if (owner_.load(std::memory_order_relaxed) == std::this_thread::get_id()) {
      *reinterpret_cast<detail::PacketSlot**>(slot->payload) = free_;
      free_ = slot;
      return;
    }
    release_remote(slot);
  }
  void release_remote(detail::PacketSlot* slot) noexcept;

  PacketPathKind kind_;
  detail::PacketSlot* free_ = nullptr;
  std::vector<std::unique_ptr<detail::PacketSlot[]>> slabs_;
  std::atomic<std::uint64_t> live_{0};
  std::uint64_t total_allocated_ = 0;
  std::atomic<std::thread::id> owner_{std::this_thread::get_id()};
  std::mutex remote_mu_;
  detail::PacketSlot* remote_free_ = nullptr;  // guarded by remote_mu_
};

inline void PacketRef::reset() noexcept {
  if (slot_ == nullptr) return;
  detail::PacketSlot* s = slot_;
  slot_ = nullptr;
  // acq_rel: the thread that takes the count to zero must observe every
  // other thread's writes to the payload before destroying it.
  if (s->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    s->arena->release(s);
  }
}

}  // namespace pp::sim
