// Small deterministic RNG (splitmix64) for workload perturbations.
//
// The standard <random> engines are avoided for cross-platform,
// cross-version reproducibility of the experiment scripts.
#pragma once

#include <cstdint>

namespace pp::sim {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace pp::sim
