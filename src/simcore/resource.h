// Rate-limited FIFO resources: the building block for buses, wires and
// copy engines.
//
// A RateResource is a single server that serializes transfers in arrival
// order. Each transfer occupies the server for (per_op + bytes/rate) of
// virtual time. Utilization statistics are kept so experiments can report
// *where* time was spent (the paper's "identify where the inefficiencies
// lie").
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "simcore/simulator.h"
#include "simcore/task.h"
#include "simcore/time.h"
#include "simcore/tracing.h"

namespace pp::sim {

/// Bytes-per-second rate with convenience constructors from networking
/// units (Mbps etc.).
struct Rate {
  double bytes_per_second = 0.0;

  static constexpr Rate bytes_per_sec(double bps) { return Rate{bps}; }
  static constexpr Rate megabits(double mbps) { return Rate{mbps * 1e6 / 8.0}; }
  static constexpr Rate gigabits(double gbps) { return Rate{gbps * 1e9 / 8.0}; }
  static constexpr Rate megabytes(double mBps) { return Rate{mBps * 1e6}; }

  constexpr double mbps() const { return bytes_per_second * 8.0 / 1e6; }

  /// Time to move `bytes` at this rate (no overheads).
  SimTime time_for(std::uint64_t bytes) const {
    return static_cast<SimTime>(
        std::llround(static_cast<double>(bytes) * 1e9 / bytes_per_second));
  }
};

/// Cumulative usage statistics for a resource.
struct ResourceStats {
  std::uint64_t operations = 0;
  std::uint64_t bytes = 0;
  SimTime busy = 0;     ///< total service time
  SimTime waited = 0;   ///< total queueing delay experienced by users
};

class RateResource {
 public:
  /// @param per_op fixed service overhead charged to every transfer
  RateResource(Simulator& sim, std::string name, Rate rate,
               SimTime per_op = 0)
      : sim_(sim), name_(std::move(name)), rate_(rate), per_op_(per_op) {}

  const std::string& name() const noexcept { return name_; }
  Rate rate() const noexcept { return rate_; }
  void set_rate(Rate r) noexcept { rate_ = r; }
  void set_per_op(SimTime t) noexcept { per_op_ = t; }
  const ResourceStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Time this transfer would occupy the server, excluding queueing.
  SimTime service_time(std::uint64_t bytes) const {
    return per_op_ + rate_.time_for(bytes);
  }

  /// transfer() with an additional caller-specific fixed overhead (e.g. a
  /// NIC processor's per-packet cost on the shared I/O path).
  ///
  /// The reservation (queue position, stats, trace span) is taken at the
  /// call, and the returned value is the Simulator's plain delay awaiter
  /// for the completion time — not a coroutine. These run once per
  /// segment/frame on the hot path, and a full coroutine frame per call
  /// just to sleep until `done` is measurable; co_await the result at
  /// the call site, as every user does.
  auto transfer_with_overhead(std::uint64_t bytes, SimTime extra) {
    const SimTime arrival = sim_.now();
    const SimTime start = arrival > next_free_ ? arrival : next_free_;
    const SimTime done =
        start + service_time(bytes) + (extra > 0 ? extra : 0);
    next_free_ = done;
    stats_.operations += 1;
    stats_.bytes += bytes;
    stats_.busy += done - start;
    stats_.waited += start - arrival;
    if (TraceRecorder* t = sim_.tracer()) {
      t->record_span(name_, "xfer " + std::to_string(bytes) + "B", start,
                     done - start);
    }
    return sim_.delay_until(done);
  }

  /// Occupies the server for `bytes` and completes when the transfer has
  /// fully passed through. FIFO with respect to other transfer() calls.
  auto transfer(std::uint64_t bytes) {
    return transfer_with_overhead(bytes, 0);
  }

  /// Occupies the server for a fixed duration (e.g. per-packet protocol
  /// processing on a CPU). FIFO with transfer() calls; same
  /// reserve-then-await shape as transfer().
  auto occupy(SimTime duration) {
    const SimTime arrival = sim_.now();
    const SimTime start = arrival > next_free_ ? arrival : next_free_;
    const SimTime done = start + (duration > 0 ? duration : 0);
    next_free_ = done;
    stats_.operations += 1;
    stats_.busy += done - start;
    stats_.waited += start - arrival;
    if (TraceRecorder* t = sim_.tracer()) {
      t->record_span(name_, "work", start, done - start);
    }
    return sim_.delay_until(done);
  }

  /// Fraction of [0, now] the server spent busy.
  double utilization() const {
    const SimTime t = sim_.now();
    return t > 0 ? static_cast<double>(stats_.busy) / static_cast<double>(t)
                 : 0.0;
  }

 private:
  Simulator& sim_;
  std::string name_;
  Rate rate_;
  SimTime per_op_;
  SimTime next_free_ = 0;
  ResourceStats stats_;
};

}  // namespace pp::sim
