#include "simcore/shard.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace pp::sim {

namespace {

thread_local std::optional<int> g_ambient_shards;

int default_shards() {
  static const int n = [] {
    const char* v = std::getenv("PP_SHARDS");
    if (v == nullptr || v[0] == '\0') return 0;
    const long parsed = std::strtol(v, nullptr, 10);
    return parsed > 0 ? static_cast<int>(parsed) : 0;
  }();
  return n;
}

}  // namespace

ScopedShards::ScopedShards(int shards)
    : prev_(0), had_prev_(g_ambient_shards.has_value()) {
  if (had_prev_) prev_ = *g_ambient_shards;
  g_ambient_shards = shards;
}

ScopedShards::~ScopedShards() {
  if (had_prev_) {
    g_ambient_shards = prev_;
  } else {
    g_ambient_shards.reset();
  }
}

int ambient_shards() { return g_ambient_shards.value_or(default_shards()); }

ShardGroup::ShardGroup(int shards) {
  if (shards < 1) {
    throw std::invalid_argument("ShardGroup requires at least one shard");
  }
  sims_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
    sims_.back()->set_shard(this, i);
  }
  mailbox_.resize(static_cast<std::size_t>(shards));
  errors_.resize(static_cast<std::size_t>(shards));
}

ShardGroup::~ShardGroup() {
  // Undelivered cross-shard callbacks hold packets; drop them first,
  // then neutralize every shard before any one is destroyed — a frame
  // on shard A may hold a descriptor living in shard B's arena, and an
  // arena asserts it has no live descriptors when it dies.
  for (auto& box : mailbox_) box.clear();
  for (auto& sim : sims_) sim->abort_pending();
}

void ShardGroup::register_link(SimTime propagation) {
  if (propagation <= 0) {
    throw std::invalid_argument(
        "cross-shard pipe with zero propagation delay: a same-host/shmem "
        "link has no lookahead to give the conservative window; assign "
        "both endpoints to the same shard");
  }
  lookahead_ = std::min(lookahead_, propagation);
}

void ShardGroup::post(int src_shard, int dst_shard, SimTime at, SimTime sched,
                      std::uint64_t tag, std::uint64_t seq, SmallFn fn) {
  assert(src_shard >= 0 && src_shard < shards());
  assert(dst_shard >= 0 && dst_shard < shards());
  mailbox_[static_cast<std::size_t>(src_shard)].push_back(
      CrossMsg{dst_shard, at, sched, tag, seq, std::move(fn)});
}

void ShardGroup::drain_mailboxes(SimTime horizon) {
  // Injection order across mailboxes is irrelevant: the queue orders by
  // the (at, sched, tag, seq) key, and keys are unique (tag is per-pipe,
  // seq a per-pipe counter). Source-index order keeps it deterministic
  // anyway.
  for (auto& box : mailbox_) {
    for (CrossMsg& m : box) {
      // The conservative guarantee: nothing posted during a window may
      // land inside it.
      assert(m.at >= horizon && "cross-shard arrival inside its own window");
      (void)horizon;
      sims_[static_cast<std::size_t>(m.dst)]->call_at_tagged(
          m.at, m.sched, m.tag, m.seq, std::move(m.fn));
    }
    box.clear();
  }
}

void ShardGroup::worker_loop(int index) {
  Simulator& sim = *sims_[static_cast<std::size_t>(index)];
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return epoch_ != seen || stop_; });
    if (stop_) return;
    seen = epoch_;
    const SimTime target = target_;
    lk.unlock();
    try {
      sim.run_until(target);
    } catch (...) {
      errors_[static_cast<std::size_t>(index)] = std::current_exception();
    }
    lk.lock();
    if (--remaining_ == 0) cv_.notify_all();
  }
}

void ShardGroup::run() {
  windows_ = 0;
  if (shards() == 1) {
    sims_[0]->run();
    return;
  }
  run_parallel();
}

void ShardGroup::run_parallel() {
  // Hand each shard to its worker: the sims were built (and their node
  // processes spawned) on this thread; the first run_until() in a
  // worker re-pins them.
  for (auto& sim : sims_) sim->detach_thread();
  std::fill(errors_.begin(), errors_.end(), nullptr);
  stop_ = false;
  epoch_ = 0;

  std::vector<std::thread> workers;
  workers.reserve(sims_.size());
  for (int i = 0; i < shards(); ++i) {
    workers.emplace_back([this, i] { worker_loop(i); });
  }

  std::exception_ptr first_error;
  for (;;) {
    // Workers are parked (epoch unchanged), so reading the queues and
    // mailboxes from here is ordered by the barrier mutex.
    SimTime t_min = kSimTimeMax;
    for (auto& sim : sims_) t_min = std::min(t_min, sim->next_event_time());
    if (t_min == kSimTimeMax) break;

    const SimTime horizon =
        lookahead_ > kSimTimeMax - t_min ? kSimTimeMax : t_min + lookahead_;
    const SimTime target = horizon == kSimTimeMax ? kSimTimeMax : horizon - 1;
    ++windows_;
    {
      std::unique_lock<std::mutex> lk(mu_);
      target_ = target;
      remaining_ = shards();
      ++epoch_;
      cv_.notify_all();
      cv_.wait(lk, [&] { return remaining_ == 0; });
    }
    for (auto& err : errors_) {
      if (err) {
        first_error = err;
        break;
      }
    }
    if (first_error) break;
    drain_mailboxes(horizon);
  }

  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  for (auto& w : workers) w.join();
  // Hand the shards back to the controlling thread (post-run queries,
  // another run(), destruction of workload state that spawns cleanup).
  for (auto& sim : sims_) sim->detach_thread();

  if (first_error) std::rethrow_exception(first_error);

  int live = 0;
  for (auto& sim : sims_) live += sim->live_processes();
  if (live > 0) {
    std::string msg = "sharded ";
    msg += std::to_string(live);
    msg += "-process deadlock across ";
    msg += std::to_string(shards());
    msg += " shard(s):";
    for (int i = 0; i < shards(); ++i) {
      if (sims_[static_cast<std::size_t>(i)]->live_processes() == 0) continue;
      msg += " [shard ";
      msg += std::to_string(i);
      msg += "] ";
      msg += sims_[static_cast<std::size_t>(i)]->deadlock_message();
    }
    throw DeadlockError(msg);
  }
}

}  // namespace pp::sim
