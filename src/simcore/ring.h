// Grow-only power-of-two ring buffer with deque ends.
//
// std::deque is the natural container for the sync primitives' FIFO
// queues, but libstdc++'s implementation allocates and frees a map
// chunk roughly every 16 elements — which means a steady-state packet
// flow through a Channel churns the heap even though the queue depth
// never grows. RingDeque keeps one contiguous power-of-two buffer that
// only ever grows: once a workload's peak depth has been seen, pushes
// and pops allocate nothing. Element order and the push/pop API mirror
// the std::deque subset the primitives use, so swapping it in is
// behavior-neutral.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

namespace pp::sim {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;
  RingDeque(RingDeque&& other) noexcept
      : buf_(other.buf_), cap_(other.cap_), head_(other.head_),
        size_(other.size_) {
    other.buf_ = nullptr;
    other.cap_ = 0;
    other.head_ = 0;
    other.size_ = 0;
  }
  RingDeque& operator=(RingDeque&& other) noexcept {
    if (this != &other) {
      destroy();
      buf_ = other.buf_;
      cap_ = other.cap_;
      head_ = other.head_;
      size_ = other.size_;
      other.buf_ = nullptr;
      other.cap_ = 0;
      other.head_ = 0;
      other.size_ = 0;
    }
    return *this;
  }
  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;

  ~RingDeque() { destroy(); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  T& front() noexcept {
    assert(size_ > 0);
    return *slot(0);
  }
  const T& front() const noexcept {
    assert(size_ > 0);
    return *slot(0);
  }
  T& back() noexcept {
    assert(size_ > 0);
    return *slot(size_ - 1);
  }
  const T& back() const noexcept {
    assert(size_ > 0);
    return *slot(size_ - 1);
  }

  void push_back(T value) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(raw(size_))) T(std::move(value));
    ++size_;
  }

  void pop_front() noexcept {
    assert(size_ > 0);
    slot(0)->~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  void clear() noexcept {
    while (size_ > 0) pop_front();
  }

 private:
  T* slot(std::size_t i) const noexcept {
    return std::launder(reinterpret_cast<T*>(raw(i)));
  }
  void* raw(std::size_t i) const noexcept {
    return buf_ + ((head_ + i) & (cap_ - 1)) * sizeof(T);
  }

  void grow() {
    const std::size_t next = cap_ == 0 ? 8 : cap_ * 2;
    auto* nb = static_cast<unsigned char*>(
        ::operator new(next * sizeof(T), std::align_val_t(alignof(T))));
    for (std::size_t i = 0; i < size_; ++i) {
      T* s = slot(i);
      ::new (static_cast<void*>(nb + i * sizeof(T))) T(std::move(*s));
      s->~T();
    }
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t(alignof(T)));
    }
    buf_ = nb;
    cap_ = next;
    head_ = 0;
  }

  void destroy() noexcept {
    clear();
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t(alignof(T)));
      buf_ = nullptr;
      cap_ = 0;
    }
  }

  unsigned char* buf_ = nullptr;
  std::size_t cap_ = 0;   // always a power of two (or zero)
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pp::sim
