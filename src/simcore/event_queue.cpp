#include "simcore/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <optional>

namespace pp::sim {

namespace {

thread_local std::optional<SchedulerKind> g_ambient_scheduler;

bool key_less(SimTime at_a, std::uint64_t seq_a, SimTime at_b,
              std::uint64_t seq_b) {
  return at_a != at_b ? at_a < at_b : seq_a < seq_b;
}

}  // namespace

SchedulerKind default_scheduler() {
  static const SchedulerKind kind = [] {
    const char* v = std::getenv("PP_LEGACY_QUEUE");
    const bool legacy = v != nullptr && v[0] != '\0' &&
                        !(v[0] == '0' && v[1] == '\0');
    return legacy ? SchedulerKind::kLegacyHeap : SchedulerKind::kCalendar;
  }();
  return kind;
}

ScopedScheduler::ScopedScheduler(SchedulerKind kind)
    : prev_(SchedulerKind::kCalendar),
      had_prev_(g_ambient_scheduler.has_value()) {
  if (had_prev_) prev_ = *g_ambient_scheduler;
  g_ambient_scheduler = kind;
}

ScopedScheduler::~ScopedScheduler() {
  if (had_prev_) {
    g_ambient_scheduler = prev_;
  } else {
    g_ambient_scheduler.reset();
  }
}

SchedulerKind ambient_scheduler() {
  return g_ambient_scheduler.value_or(default_scheduler());
}

// ---------------------------------------------------------------------
// Slab pool
// ---------------------------------------------------------------------

EventQueue::EventQueue(SchedulerKind kind) : kind_(kind) {
  wheel_end_ = slot_lo(cursor_ + kNumBuckets);
}

EventQueue::~EventQueue() {
  // Pending nodes still hold live callbacks (captured shared_ptrs,
  // moved packets); destroy them before the slabs go. Coroutine handles
  // are NOT destroyed here — suspended frames belong to the Simulator's
  // process bookkeeping, which reaps them.
  if (kind_ == SchedulerKind::kCalendar) {
    solo_active_ = false;  // the stashed SmallFn is a member; it
                           // destroys itself with the queue
    std::vector<EventNode*> all;
    collect_all(all);
    for (EventNode* n : all) n->~EventNode();
  }
  // Free-listed nodes were destroyed on release; the legacy tier's
  // std::priority_queue destroys its own by-value events.
}

EventQueue::EventNode* EventQueue::alloc_node(SimTime at, std::uint64_t seq,
                                              std::coroutine_handle<> h,
                                              SmallFn cb) {
  void* mem;
  if (free_ != nullptr) {
    mem = free_;
    free_ = free_->next;
  } else {
    auto slab = std::make_unique<unsigned char[]>(sizeof(EventNode) *
                                                  kSlabNodes);
    unsigned char* base = slab.get();
    slabs_.push_back(std::move(slab));
    // Thread all but the first fresh node onto the free list. Fresh
    // nodes are "raw storage" on the list: only their `next` slot is
    // meaningful, exactly like released nodes after ~EventNode().
    for (std::size_t i = 1; i < kSlabNodes; ++i) {
      auto* raw = reinterpret_cast<EventNode*>(base + i * sizeof(EventNode));
      raw->next = free_;
      free_ = raw;
    }
    mem = base;
  }
  return ::new (mem) EventNode{at, seq, nullptr, h, std::move(cb)};
}

void EventQueue::release_node(EventNode* n) {
  n->~EventNode();
  n->next = free_;
  free_ = n;
}

// ---------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------

void EventQueue::push(SimTime at, std::uint64_t seq,
                      std::coroutine_handle<> h, SmallFn cb) {
  ++size_;
  if (kind_ == SchedulerKind::kLegacyHeap) {
    std::function<void()> fn;
    if (cb) {
      // std::function requires a copyable target; the move-only SmallFn
      // rides behind a shared_ptr, mirroring the allocation the legacy
      // implementation paid for every capturing callback.
      fn = [sp = std::make_shared<SmallFn>(std::move(cb))] { (*sp)(); };
    }
    legacy_.push(LegacyEvent{at, seq, h, std::move(fn)});
    return;
  }
  if (size_ == 1) {  // size_ already counts this event: queue was empty
    solo_active_ = true;
    solo_at_ = at;
    solo_seq_ = seq;
    solo_h_ = h;
    solo_cb_ = std::move(cb);
    return;
  }
  if (solo_active_) {
    // Second pending event: demote the stash into the tiers first (they
    // re-sort on open, so demotion order is irrelevant).
    solo_active_ = false;
    calendar_push(
        alloc_node(solo_at_, solo_seq_, solo_h_, std::move(solo_cb_)));
  }
  calendar_push(alloc_node(at, seq, h, std::move(cb)));
}

SimTime EventQueue::front_time() {
  assert(size_ > 0 && "front_time() on an empty queue");
  if (kind_ == SchedulerKind::kLegacyHeap) return legacy_.top().at;
  if (solo_active_) return solo_at_;
  return calendar_front()->at;
}

EventQueue::Fired EventQueue::pop() {
  assert(size_ > 0 && "pop() on an empty queue");
  --size_;
  if (kind_ == SchedulerKind::kLegacyHeap) {
    // By-value copy then pop, exactly as the seed implementation did.
    LegacyEvent ev = legacy_.top();
    legacy_.pop();
    Fired f;
    f.at = ev.at;
    f.handle = ev.handle;
    if (ev.callback) f.cb = std::move(ev.callback);
    return f;
  }
  if (solo_active_) {
    solo_active_ = false;
    Fired f;
    f.at = solo_at_;
    f.handle = solo_h_;
    f.cb = std::move(solo_cb_);
    return f;
  }
  EventNode* n = calendar_take_front();
  Fired f;
  f.at = n->at;
  f.handle = n->handle;
  f.cb = std::move(n->cb);
  release_node(n);
  return f;
}

// ---------------------------------------------------------------------
// Calendar tier
// ---------------------------------------------------------------------

void EventQueue::calendar_push(EventNode* n) {
  const SimTime at = n->at;
  if (fifo_pos_ < fifo_.size() && at == fifo_time_) {
    // Same-timestamp append: seq is strictly increasing, so the FIFO
    // stays ordered with no comparison at all. This is the hot path —
    // zero delays, signal wakeups, same-tick protocol cascades.
    fifo_.push_back(n);
    return;
  }
  if (open_active_ && at >= open_lo_ && at < open_hi_) {
    // Lands in the slot under the cursor: ordered insert into the
    // still-unconsumed tail.
    auto it = std::upper_bound(
        open_.begin() + static_cast<std::ptrdiff_t>(open_pos_), open_.end(),
        n, [](const EventNode* a, const EventNode* b) {
          return key_less(a->at, a->seq, b->at, b->seq);
        });
    open_.insert(it, n);
    return;
  }
  const SimTime floor = open_active_ ? open_hi_ : slot_lo(cursor_);
  if (at >= floor && at < wheel_end_) {
    bucket_insert(n);
    return;
  }
  if (at >= wheel_end_) {
    n->next = far_;
    far_ = n;
    ++far_count_;
    return;
  }
  // Behind the cursor: only reachable by scheduling from outside the
  // event loop after run_until() advanced past the cursor window.
  rebuild(n);
}

void EventQueue::bucket_insert(EventNode* n) {
  const std::size_t slot =
      static_cast<std::size_t>(n->at >> shift_) & (kNumBuckets - 1);
  n->next = bucket_[slot];
  bucket_[slot] = n;
  bitmap_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

EventQueue::EventNode* EventQueue::calendar_front() {
  if (fifo_pos_ < fifo_.size()) return fifo_[fifo_pos_];
  ensure_open();
  return open_[open_pos_];
}

EventQueue::EventNode* EventQueue::calendar_take_front() {
  if (fifo_pos_ < fifo_.size()) {
    EventNode* n = fifo_[fifo_pos_++];
    if (fifo_pos_ == fifo_.size()) {
      fifo_.clear();
      fifo_pos_ = 0;
    } else if (fifo_pos_ > 1024 && fifo_pos_ * 2 > fifo_.size()) {
      // A same-timestamp cascade that keeps appending while consuming
      // (zero-delay protocol loops) would otherwise grow the batch
      // vector without bound; drop the consumed prefix occasionally.
      fifo_.erase(fifo_.begin(),
                  fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_pos_));
      fifo_pos_ = 0;
    }
    return n;
  }
  ensure_open();
  // Move the whole batch sharing the next timestamp into the FIFO, so
  // its siblings (and any events scheduled *at* that timestamp while it
  // is being processed) pop with no further comparisons.
  const SimTime t = open_[open_pos_]->at;
  fifo_time_ = t;
  while (open_pos_ < open_.size() && open_[open_pos_]->at == t) {
    fifo_.push_back(open_[open_pos_++]);
  }
  if (open_pos_ == open_.size()) {
    open_.clear();
    open_pos_ = 0;
  }
  return fifo_[fifo_pos_++];
}

void EventQueue::ensure_open() {
  if (open_pos_ < open_.size()) return;
  for (;;) {
    // Scan the wheel window from the slot after the cursor (or the
    // cursor itself if nothing was opened yet) for a non-empty bucket.
    std::int64_t abs = open_active_ ? cursor_ + 1 : cursor_;
    const std::int64_t end_abs = (wheel_end_ - 1) >> shift_;
    while (abs <= end_abs) {
      const std::size_t slot =
          static_cast<std::size_t>(abs) & (kNumBuckets - 1);
      const std::size_t word = slot >> 6;
      // Mask off bits below this slot within its word, then scan by
      // whole words. Positions wrap modulo the wheel, but the window is
      // injective, so a set bit identifies one absolute slot.
      std::uint64_t bits = bitmap_[word] >> (slot & 63);
      if (bits != 0) {
        abs += std::countr_zero(bits);
        break;
      }
      abs += 64 - static_cast<std::int64_t>(slot & 63);
    }
    if (abs <= end_abs) {
      const std::size_t slot =
          static_cast<std::size_t>(abs) & (kNumBuckets - 1);
      cursor_ = abs;
      open_active_ = true;
      open_lo_ = slot_lo(abs);
      open_hi_ = slot_lo(abs + 1);
      for (EventNode* n = bucket_[slot]; n != nullptr;) {
        EventNode* next = n->next;
        open_.push_back(n);
        n = next;
      }
      bucket_[slot] = nullptr;
      bitmap_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      std::sort(open_.begin(), open_.end(),
                [](const EventNode* a, const EventNode* b) {
                  return key_less(a->at, a->seq, b->at, b->seq);
                });
      if (!open_.empty()) return;
      // A bucket can only be empty here if the bitmap lied; keep the
      // invariant tight.
      assert(false && "bitmap marked an empty bucket");
      open_active_ = false;
      continue;
    }
    // Wheel drained: everything pending sits in the far tier. Re-anchor
    // the wheel around it (re-fitting the bucket width to the span).
    assert(far_count_ > 0 && "ensure_open() with no pending events");
    rebuild(nullptr);
  }
}

void EventQueue::collect_all(std::vector<EventNode*>& out) {
  // The solo stash never reaches here: a push demotes it before any
  // tier insert, and rebuild/teardown only see tier-resident nodes (the
  // stashed SmallFn is a member, destroyed with the queue).
  assert(!solo_active_);
  out.reserve(out.size() + size_);
  for (std::size_t i = fifo_pos_; i < fifo_.size(); ++i) {
    out.push_back(fifo_[i]);
  }
  fifo_.clear();
  fifo_pos_ = 0;
  for (std::size_t i = open_pos_; i < open_.size(); ++i) {
    out.push_back(open_[i]);
  }
  open_.clear();
  open_pos_ = 0;
  for (auto& head : bucket_) {
    for (EventNode* n = head; n != nullptr;) {
      EventNode* next = n->next;
      out.push_back(n);
      n = next;
    }
    head = nullptr;
  }
  bitmap_.fill(0);
  for (EventNode* n = far_; n != nullptr;) {
    EventNode* next = n->next;
    out.push_back(n);
    n = next;
  }
  far_ = nullptr;
  far_count_ = 0;
}

void EventQueue::rebuild(EventNode* extra) {
  std::vector<EventNode*> all;
  collect_all(all);
  if (extra != nullptr) all.push_back(extra);
  assert(!all.empty());

  SimTime lo = all[0]->at, hi = all[0]->at;
  for (const EventNode* n : all) {
    lo = std::min(lo, n->at);
    hi = std::max(hi, n->at);
  }
  // Fit the bucket width so the pending span maps across the wheel: one
  // wheel lap should cover it, keeping both the far tier and the
  // per-bucket sort small.
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo);
  int shift = 0;
  if (span >= kNumBuckets) {
    shift = std::bit_width(span >> kBucketBits);
  }
  shift_ = std::min(shift, kMaxShift);
  cursor_ = lo >> shift_;
  wheel_end_ = slot_lo(cursor_ + kNumBuckets);
  open_active_ = false;

  for (EventNode* n : all) {
    if (n->at < wheel_end_) {
      bucket_insert(n);
    } else {
      n->next = far_;
      far_ = n;
      ++far_count_;
    }
  }
}

}  // namespace pp::sim
