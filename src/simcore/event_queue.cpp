// Slow paths of the calendar queue: slab refill, opening a wheel slot,
// and re-anchoring the wheel. The per-event fast paths (push/pop/
// front_time) are inline in event_queue.h.
#include "simcore/event_queue.h"

#include <bit>
#include <cstdlib>
#include <optional>

namespace pp::sim {

namespace {

thread_local std::optional<SchedulerKind> g_ambient_scheduler;

}  // namespace

SchedulerKind default_scheduler() {
  static const SchedulerKind kind = [] {
    const char* v = std::getenv("PP_LEGACY_QUEUE");
    const bool legacy = v != nullptr && v[0] != '\0' &&
                        !(v[0] == '0' && v[1] == '\0');
    return legacy ? SchedulerKind::kLegacyHeap : SchedulerKind::kCalendar;
  }();
  return kind;
}

ScopedScheduler::ScopedScheduler(SchedulerKind kind)
    : prev_(SchedulerKind::kCalendar),
      had_prev_(g_ambient_scheduler.has_value()) {
  if (had_prev_) prev_ = *g_ambient_scheduler;
  g_ambient_scheduler = kind;
}

ScopedScheduler::~ScopedScheduler() {
  if (had_prev_) {
    g_ambient_scheduler = prev_;
  } else {
    g_ambient_scheduler.reset();
  }
}

SchedulerKind ambient_scheduler() {
  return g_ambient_scheduler.value_or(default_scheduler());
}

// ---------------------------------------------------------------------
// Slab pool
// ---------------------------------------------------------------------

EventQueue::EventQueue(SchedulerKind kind) : kind_(kind) {
  wheel_end_ = slot_lo(cursor_ + kNumBuckets);
}

EventQueue::~EventQueue() {
  // Pending nodes still hold live callbacks (captured shared_ptrs,
  // moved packets); destroy them before the slabs go. Coroutine handles
  // are NOT destroyed here — suspended frames belong to the Simulator's
  // process bookkeeping, which reaps them.
  if (kind_ == SchedulerKind::kCalendar) {
    solo_active_ = false;  // the stashed SmallFn is a member; it
                           // destroys itself with the queue
    std::vector<EventNode*> all;
    collect_all(all);
    for (EventNode* n : all) n->~EventNode();
  }
  // Free-listed nodes were destroyed on release; the legacy tier's
  // std::priority_queue destroys its own by-value events.
}

void EventQueue::clear() {
  if (kind_ == SchedulerKind::kLegacyHeap) {
    legacy_ = {};
    size_ = 0;
    return;
  }
  if (solo_active_) {
    solo_active_ = false;
    solo_h_ = {};
    solo_cb_ = SmallFn{};
  }
  std::vector<EventNode*> all;
  collect_all(all);
  for (EventNode* n : all) release_node(n);
  // Leave the wheel geometry conservative: the next push either lands
  // ahead of the stale cursor (bucket/far insert) or behind it, which
  // triggers a rebuild — both correct.
  open_active_ = false;
  fifo_time_ = -1;
  size_ = 0;
}

void EventQueue::refill_free_list() {
  auto slab = std::make_unique<unsigned char[]>(sizeof(EventNode) *
                                                kSlabNodes);
  unsigned char* base = slab.get();
  slabs_.push_back(std::move(slab));
  // Thread the fresh nodes onto the free list. Fresh nodes are "raw
  // storage" on the list: only their `next` slot is meaningful, exactly
  // like released nodes after ~EventNode().
  for (std::size_t i = 0; i < kSlabNodes; ++i) {
    auto* raw = reinterpret_cast<EventNode*>(base + i * sizeof(EventNode));
    raw->next = free_;
    free_ = raw;
  }
}

// ---------------------------------------------------------------------
// Calendar tier
// ---------------------------------------------------------------------

void EventQueue::open_next_slot() {
  for (;;) {
    // Scan the wheel window from the slot after the cursor (or the
    // cursor itself if nothing was opened yet) for a non-empty bucket.
    std::int64_t abs = open_active_ ? cursor_ + 1 : cursor_;
    const std::int64_t end_abs = (wheel_end_ - 1) >> shift_;
    while (abs <= end_abs) {
      const std::size_t slot =
          static_cast<std::size_t>(abs) & (kNumBuckets - 1);
      const std::size_t word = slot >> 6;
      // Mask off bits below this slot within its word, then scan by
      // whole words. Positions wrap modulo the wheel, but the window is
      // injective, so a set bit identifies one absolute slot.
      std::uint64_t bits = bitmap_[word] >> (slot & 63);
      if (bits != 0) {
        abs += std::countr_zero(bits);
        break;
      }
      abs += 64 - static_cast<std::int64_t>(slot & 63);
    }
    if (abs <= end_abs) {
      const std::size_t slot =
          static_cast<std::size_t>(abs) & (kNumBuckets - 1);
      cursor_ = abs;
      open_active_ = true;
      open_lo_ = slot_lo(abs);
      open_hi_ = slot_lo(abs + 1);
      for (EventNode* n = bucket_[slot]; n != nullptr;) {
        EventNode* next = n->next;
        open_.push_back(n);
        n = next;
      }
      bucket_[slot] = nullptr;
      bitmap_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      std::sort(open_.begin(), open_.end(), node_less);
      if (!open_.empty()) return;
      // A bucket can only be empty here if the bitmap lied; keep the
      // invariant tight.
      assert(false && "bitmap marked an empty bucket");
      open_active_ = false;
      continue;
    }
    // Wheel drained: everything pending sits in the far tier. Re-anchor
    // the wheel around it (re-fitting the bucket width to the span).
    assert(far_count_ > 0 && "ensure_open() with no pending events");
    rebuild(nullptr);
  }
}

void EventQueue::collect_all(std::vector<EventNode*>& out) {
  // The solo stash never reaches here: a push demotes it before any
  // tier insert, and rebuild/teardown only see tier-resident nodes (the
  // stashed SmallFn is a member, destroyed with the queue).
  assert(!solo_active_);
  out.reserve(out.size() + size_);
  for (std::size_t i = fifo_pos_; i < fifo_.size(); ++i) {
    out.push_back(fifo_[i]);
  }
  fifo_.clear();
  fifo_pos_ = 0;
  for (std::size_t i = open_pos_; i < open_.size(); ++i) {
    out.push_back(open_[i]);
  }
  open_.clear();
  open_pos_ = 0;
  // Walk only the bitmap-marked slots: a sparse steady state re-anchors
  // the wheel often, and scanning all kNumBuckets heads each time would
  // dominate the rebuild.
  for (std::size_t w = 0; w < bitmap_.size(); ++w) {
    std::uint64_t bits = bitmap_[w];
    bitmap_[w] = 0;
    while (bits != 0) {
      const std::size_t slot = w * 64 +
                               static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      for (EventNode* n = bucket_[slot]; n != nullptr;) {
        EventNode* next = n->next;
        out.push_back(n);
        n = next;
      }
      bucket_[slot] = nullptr;
    }
  }
  for (EventNode* n = far_; n != nullptr;) {
    EventNode* next = n->next;
    out.push_back(n);
    n = next;
  }
  far_ = nullptr;
  far_count_ = 0;
}

void EventQueue::rebuild(EventNode* extra) {
  std::vector<EventNode*>& all = rebuild_scratch_;
  all.clear();
  collect_all(all);
  if (extra != nullptr) all.push_back(extra);
  assert(!all.empty());

  SimTime lo = all[0]->at, hi = all[0]->at;
  for (const EventNode* n : all) {
    lo = std::min(lo, n->at);
    hi = std::max(hi, n->at);
  }
  // Fit the bucket width to roughly one event per bucket (floored at a
  // 64-way split of the span). A dense population maps its whole span
  // across one wheel lap, as before; a sparse one gets buckets much
  // wider than its span/kNumBuckets, stretching the horizon so events
  // that arrive as simulated time advances keep landing in-wheel instead
  // of forcing a re-anchor every few pops. The divisor floor bounds the
  // open-slot window (pushes into it are ordered vector inserts).
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo);
  const std::uint64_t divisor = std::min<std::uint64_t>(
      kNumBuckets, std::max<std::uint64_t>(64, all.size()));
  int shift = 0;
  if (span >= divisor) {
    shift = std::bit_width(span / divisor);
  }
  shift_ = std::min(shift, kMaxShift);
  cursor_ = lo >> shift_;
  wheel_end_ = slot_lo(cursor_ + kNumBuckets);
  open_active_ = false;

  for (EventNode* n : all) {
    if (n->at < wheel_end_) {
      bucket_insert(n);
    } else {
      n->next = far_;
      far_ = n;
      ++far_count_;
    }
  }
}

}  // namespace pp::sim
