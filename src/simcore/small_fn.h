// Small-buffer-optimized move-only callable, the event loop's callback
// slot.
//
// Simulator::call_at() used to store a std::function<void()> per event;
// every real capture set in the codebase (liveness guard + this + a
// couple of scalars, or a moved hw::Packet) exceeds std::function's
// ~16-byte inline buffer, so the hot path paid one heap allocation per
// fire-and-forget event. SmallFn inlines captures up to 48 bytes inside
// the event node and, being move-only, also accepts move-only captures
// (a moved Packet, a unique_ptr) that std::function rejects — which is
// why several layers used to wrap payloads in shared_ptr just to make
// the lambda copyable.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pp::sim {

class SmallFn {
 public:
  /// Captures at or below this size (and max_align_t alignment) are
  /// stored inline in the event node; larger ones fall back to the heap.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // the std::function parameters it replaces
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = &heap_vtable<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  /// Destroys the stored callable (and its captures), leaving empty.
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable = {
      [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* p) { delete *reinterpret_cast<Fn**>(p); },
  };

  void move_from(SmallFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace pp::sim
