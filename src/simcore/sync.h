// Coroutine synchronization primitives for simulated processes.
//
// All primitives are single-threaded (the simulator is sequential); they
// exist to express *simulated* concurrency: waiters are parked and resumed
// through the simulator's event queue so wakeup order stays deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "simcore/ring.h"
#include "simcore/simulator.h"

namespace pp::sim {

/// One-shot latch. wait() completes immediately once set() has been called;
/// set() releases all current waiters. Reusable via reset().
class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(sim) {}

  bool is_set() const noexcept { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_.schedule_now(h);
    waiters_.clear();
  }

  void reset() noexcept { set_ = false; }

  auto wait() {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        t.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Condition-variable-like signal: wait() parks until the *next* notify.
/// Callers re-check their predicate in a loop, exactly like std::condition
/// _variable usage.
class Signal {
 public:
  explicit Signal(Simulator& sim) : sim_(sim) {}

  void notify_all() {
    while (!waiters_.empty()) {
      sim_.schedule_now(waiters_.front());
      waiters_.pop_front();
    }
  }

  void notify_one() {
    if (waiters_.empty()) return;
    sim_.schedule_now(waiters_.front());
    waiters_.pop_front();
  }

  std::size_t waiting() const noexcept { return waiters_.size(); }

  auto wait() {
    struct Awaiter {
      Signal& s;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  RingDeque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO waiters and *bulk* acquire, used to model
/// byte-counted buffers (e.g. a TCP socket send buffer): acquire(n) parks
/// until n units are free, and waiters are served strictly in order so a
/// large request is not starved by later small ones.
class ByteSemaphore {
 public:
  ByteSemaphore(Simulator& sim, std::uint64_t initial)
      : sim_(sim), available_(initial) {}

  std::uint64_t available() const noexcept { return available_; }

  /// Immediately adds n units and wakes any waiters that now fit (in FIFO
  /// order, stopping at the first that still does not fit).
  void release(std::uint64_t n) {
    available_ += n;
    grant();
  }

  /// Takes n units without blocking; caller must ensure they are available.
  void take(std::uint64_t n) {
    available_ -= n;
  }

  /// Re-initializes the available count. Only valid while nothing waits
  /// (e.g. resizing a socket buffer before traffic starts).
  void reset(std::uint64_t n) {
    assert(waiters_.empty() && "cannot reset a semaphore with waiters");
    available_ = n;
  }

  bool try_acquire(std::uint64_t n) noexcept {
    if (waiters_.empty() && available_ >= n) {
      available_ -= n;
      return true;
    }
    return false;
  }

  /// Awaitable bulk acquire. FIFO: an acquire parked behind earlier waiters
  /// stays behind them even if its own amount would fit.
  auto acquire(std::uint64_t n) { return Acquire{*this, n}; }

  /// The acquire() awaiter, public so Channel can embed it in its own
  /// flat pop()/push() awaiters.
  struct Acquire {
    ByteSemaphore& s;
    std::uint64_t n;
    bool suspended = false;
    bool await_ready() const noexcept {
      return s.waiters_.empty() && s.available_ >= n;
    }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      s.waiters_.push_back(Waiter{n, h});
    }
    void await_resume() noexcept {
      // On the ready path the units are deducted here; on the wakeup path
      // grant() already deducted them before scheduling us.
      if (!suspended) s.available_ -= n;
    }
  };

 private:
  struct Waiter {
    std::uint64_t amount;
    std::coroutine_handle<> handle;
  };

  void grant() {
    while (!waiters_.empty() && available_ >= waiters_.front().amount) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      available_ -= w.amount;
      sim_.schedule_now(w.handle);
    }
  }

  Simulator& sim_;
  std::uint64_t available_;
  RingDeque<Waiter> waiters_;
};

/// FIFO message queue between simulated processes. Unbounded by default;
/// a bound turns push() into a blocking (awaitable) operation.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim, std::size_t bound = 0)
      : sim_(sim), bound_(bound), space_(sim, bound == 0 ? UINT64_MAX : bound),
        items_(sim, 0) {}

  std::size_t size() const noexcept { return queue_.size(); }
  bool empty() const noexcept { return queue_.empty(); }

  /// Non-blocking push; only valid for unbounded channels or when not full.
  void push_now(T value) {
    queue_.push_back(std::move(value));
    items_.release(1);
  }

  /// Awaitable push. Flat awaiters, not coroutines: channels sit on the
  /// per-frame hot path (five pipe hops per packet), and a coroutine
  /// frame per hop just to park on a semaphore is measurable. The parked
  /// handle is the caller's own, so the wakeup event sequence is
  /// identical to what a forwarding coroutine would produce.
  auto push(T value) {
    struct Awaiter {
      Channel& c;
      ByteSemaphore::Acquire inner;
      T value;
      bool await_ready() const noexcept {
        return c.bound_ == 0 || inner.await_ready();
      }
      void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
      void await_resume() {
        if (c.bound_ != 0) inner.await_resume();
        c.push_now(std::move(value));
      }
    };
    return Awaiter{*this, space_.acquire(1), std::move(value)};
  }

  /// Awaitable pop; see push() for why this is a flat awaiter.
  auto pop() {
    struct Awaiter {
      Channel& c;
      ByteSemaphore::Acquire inner;
      bool await_ready() const noexcept { return inner.await_ready(); }
      void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
      T await_resume() {
        inner.await_resume();
        T value = std::move(c.queue_.front());
        c.queue_.pop_front();
        if (c.bound_ != 0) c.space_.release(1);
        return value;
      }
    };
    return Awaiter{*this, items_.acquire(1)};
  }

  std::optional<T> try_pop() {
    if (queue_.empty() || !items_.try_acquire(1)) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    if (bound_ != 0) space_.release(1);
    return value;
  }

 private:
  Simulator& sim_;
  std::size_t bound_;
  ByteSemaphore space_;
  ByteSemaphore items_;
  RingDeque<T> queue_;
};

}  // namespace pp::sim
