// Lazy coroutine task type used for all simulated processes.
//
// A Task<T> does not start running until it is awaited (or spawned onto the
// Simulator). When the coroutine finishes, control transfers symmetrically
// back to the awaiting coroutine, so arbitrarily deep call chains run
// without growing the native stack.
//
// Coroutine frames come from a thread-local size-bucketed free list
// (FramePool below): the steady-state packet path creates and destroys
// the same few coroutine shapes (RateResource::transfer/occupy, protocol
// helpers) once or more per frame, and recycling their frames is what
// keeps that path free of heap allocations.
#pragma once

#include <array>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>
#include <variant>

namespace pp::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

/// Thread-local frame recycler. Sizes are rounded up to 64-byte buckets;
/// frames up to 4 KiB are pooled (every Task coroutine in the codebase
/// fits comfortably), larger ones fall through to the global heap. Freed
/// frames stay cached for the thread's lifetime — bounded by the peak
/// number of simultaneously live coroutines — and are returned to the
/// heap when the thread exits.
class FramePool {
 public:
  static void* alloc(std::size_t n) {
    const std::size_t b = bucket(n);
    if (b >= kBuckets) return ::operator new(n);
    void*& head = lists().heads[b];
    if (head != nullptr) {
      void* p = head;
      head = *static_cast<void**>(p);
      return p;
    }
    return ::operator new(b * kGranularity);
  }

  static void free(void* p, std::size_t n) noexcept {
    const std::size_t b = bucket(n);
    if (b >= kBuckets) {
      ::operator delete(p);
      return;
    }
    void*& head = lists().heads[b];
    *static_cast<void**>(p) = head;
    head = p;
  }

 private:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kBuckets = 64;  ///< pools sizes < 4 KiB

  static std::size_t bucket(std::size_t n) noexcept {
    return (n + kGranularity - 1) / kGranularity;
  }

  struct Lists {
    std::array<void*, kBuckets> heads{};
    ~Lists() {
      for (void* h : heads) {
        while (h != nullptr) {
          void* next = *static_cast<void**>(h);
          ::operator delete(h);
          h = next;
        }
      }
    }
  };

  static Lists& lists() noexcept {
    thread_local Lists l;
    return l;
  }
};

struct PromiseBase {
  static void* operator new(std::size_t n) { return FramePool::alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::free(p, n);
  }

  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::variant<std::monostate, T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.template emplace<T>(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
        return std::move(std::get<T>(p.value));
      }
    };
    return Awaiter{handle_};
  }

  /// Releases ownership of the coroutine handle (used by the Simulator when
  /// spawning a task as a detached root process).
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace pp::sim
