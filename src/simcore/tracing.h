// Timeline tracing: records resource occupancy spans and instant events
// and writes them in the Chrome trace-event JSON format (load in
// chrome://tracing or Perfetto). The visual counterpart of the paper's
// "identify where the inefficiencies lie".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/time.h"

namespace pp::sim {

class TraceRecorder {
 public:
  /// A busy interval on a named track (one track per resource).
  void record_span(std::string_view track, std::string_view name,
                   SimTime start, SimTime duration) {
    spans_.push_back(Span{std::string(track), std::string(name), start,
                          duration});
  }

  /// A point event (message sent, interrupt fired, ...).
  void record_instant(std::string_view track, std::string_view name,
                      SimTime at) {
    instants_.push_back(Instant{std::string(track), std::string(name), at});
  }

  std::size_t span_count() const { return spans_.size(); }
  std::size_t instant_count() const { return instants_.size(); }

  /// Serializes to Chrome trace-event JSON.
  std::string to_chrome_json() const;

  /// Writes the JSON to a file.
  void write_chrome_json(const std::string& path) const;

 private:
  struct Span {
    std::string track;
    std::string name;
    SimTime start;
    SimTime duration;
  };
  struct Instant {
    std::string track;
    std::string name;
    SimTime at;
  };

  std::vector<Span> spans_;
  std::vector<Instant> instants_;
};

}  // namespace pp::sim
