// Timeline tracing: records resource occupancy spans, instant events and
// counter samples and writes them in the Chrome trace-event JSON format
// (load in chrome://tracing or Perfetto). The visual counterpart of the
// paper's "identify where the inefficiencies lie".
//
// Attach a recorder with Simulator::set_tracer() before running; every
// layer above the raw resources (TCP segments and windows, NIC interrupt
// coalescing and drops, GM/VIA doorbells and completions, library
// rendezvous handshakes and daemon-relay hops) emits events only while a
// recorder is attached — with none attached the instrumentation is a
// single pointer test and runs are bit-identical to untraced ones.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/time.h"

namespace pp::sim {

class TraceRecorder {
 public:
  /// A busy interval on a named track (one track per resource).
  void record_span(std::string_view track, std::string_view name,
                   SimTime start, SimTime duration) {
    spans_.push_back(Span{std::string(track), std::string(name), start,
                          duration});
  }

  /// A point event (message sent, interrupt fired, ...).
  void record_instant(std::string_view track, std::string_view name,
                      SimTime at) {
    instants_.push_back(Instant{std::string(track), std::string(name), at});
  }

  /// A counter sample: the value of `series` on counter track `track` at
  /// time `at` (Chrome "C" events). Series sharing a track render as one
  /// stacked chart — e.g. cwnd/rwnd/advertised per TCP endpoint.
  void record_counter(std::string_view track, std::string_view series,
                      SimTime at, double value) {
    counters_.push_back(
        Counter{std::string(track), std::string(series), at, value});
  }

  /// Per-track metadata: viewers order tracks by this index instead of
  /// first-appearance order (thread_sort_index metadata events).
  void set_track_sort_index(std::string_view track, int index) {
    sort_index_[std::string(track)] = index;
  }

  std::size_t span_count() const { return spans_.size(); }
  std::size_t instant_count() const { return instants_.size(); }
  std::size_t counter_count() const { return counters_.size(); }

  /// Number of instants on `track` named exactly `name` — the numeric
  /// cross-check against protocol statistics (a run's retransmit
  /// instants must equal its SocketStats::retransmits, etc.).
  std::size_t instants_named(std::string_view track,
                             std::string_view name) const {
    std::size_t n = 0;
    for (const auto& i : instants_) {
      if (i.track == track && i.name == name) ++n;
    }
    return n;
  }

  /// Total instants named `name` across all tracks.
  std::size_t instants_named(std::string_view name) const {
    std::size_t n = 0;
    for (const auto& i : instants_) {
      if (i.name == name) ++n;
    }
    return n;
  }

  /// Counter samples recorded for (track, series).
  std::size_t counter_samples(std::string_view track,
                              std::string_view series) const {
    std::size_t n = 0;
    for (const auto& c : counters_) {
      if (c.track == track && c.series == series) ++n;
    }
    return n;
  }

  /// Serializes to Chrome trace-event JSON.
  std::string to_chrome_json() const;

  /// Writes the JSON to a file.
  void write_chrome_json(const std::string& path) const;

 private:
  struct Span {
    std::string track;
    std::string name;
    SimTime start;
    SimTime duration;
  };
  struct Instant {
    std::string track;
    std::string name;
    SimTime at;
  };
  struct Counter {
    std::string track;
    std::string series;
    SimTime at;
    double value;
  };

  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<Counter> counters_;
  std::map<std::string, int> sort_index_;
};

}  // namespace pp::sim
