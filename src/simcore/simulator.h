// The deterministic discrete-event simulator that drives every model.
//
// Simulated processes are C++20 coroutines (Task<void>) spawned onto the
// Simulator. They suspend on awaitables (delays, synchronization
// primitives, resources) and are resumed by the event loop in strict
// (time, insertion-order) order, which makes every run bit-for-bit
// reproducible.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "simcore/event_queue.h"
#include "simcore/packet_arena.h"
#include "simcore/small_fn.h"
#include "simcore/task.h"
#include "simcore/time.h"

namespace pp::audit {
class Auditor;
}  // namespace pp::audit

namespace pp::sim {

class Simulator;
class TraceRecorder;
class ShardGroup;

/// Thrown by Simulator::run() when the event queue drains while spawned
/// processes are still suspended (a classic distributed-protocol deadlock).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by Simulator::run()/run_until() when a configured safety budget
/// is exhausted: either the event-count limit (runaway protocol loop) or
/// the simulated-time deadline (a run that made progress but never
/// converged — e.g. a retry storm under heavy fault injection). The sweep
/// runner catches this type specifically to degrade gracefully instead of
/// aborting the whole sweep.
class BudgetExceededError : public std::runtime_error {
 public:
  enum class Kind { kEvents, kSimTime };
  BudgetExceededError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Thrown by protocol stacks (TCP reconnect, GM/VIA delivery sessions)
/// when recovery machinery gives up for good: retry caps exhausted, the
/// peer permanently dead. Distinct from BudgetExceededError — the run did
/// not wedge, a protocol *decided* it cannot complete. The sweep runner
/// maps it to JobStatus::kFailed ("failed" in pp.sweep reports) so a
/// chaos run distinguishes a clean give-up from a hang.
class ProtocolFailure : public std::runtime_error {
 public:
  explicit ProtocolFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// RAII scope installing *ambient* budgets: any Simulator constructed on
/// this thread while the scope is active starts with these limits (0 means
/// "leave unlimited"). This is how the sweep runner imposes a per-job
/// watchdog — jobs construct their own Simulator deep inside a factory
/// closure the runner cannot reach, so the limits travel thread-locally.
/// Scopes nest; the previous ambient values are restored on destruction.
class ScopedSimLimits {
 public:
  ScopedSimLimits(SimTime time_limit, std::uint64_t event_limit);
  ~ScopedSimLimits();
  ScopedSimLimits(const ScopedSimLimits&) = delete;
  ScopedSimLimits& operator=(const ScopedSimLimits&) = delete;

 private:
  SimTime prev_time_;
  std::uint64_t prev_events_;
};

/// Completion handle returned by Simulator::spawn(). Other coroutines may
/// co_await wait() to join the spawned process.
class Completion {
 public:
  bool done() const noexcept { return done_; }
  bool failed() const noexcept { return static_cast<bool>(error_); }

  /// Awaitable that resumes once the spawned process has finished. If the
  /// process ended with an exception, the exception is rethrown here (in
  /// addition to failing the whole run).
  auto wait() {
    struct Awaiter {
      Completion& c;
      bool await_ready() const noexcept { return c.done_; }
      void await_suspend(std::coroutine_handle<> h) {
        c.waiters_.push_back(h);
      }
      void await_resume() const {
        if (c.error_) std::rethrow_exception(c.error_);
      }
    };
    return Awaiter{*this};
  }

 private:
  friend class Simulator;
  bool done_ = false;
  std::exception_ptr error_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Threading contract (audited for the parallel sweep executor in
/// src/sweep): a Simulator and everything attached to it — tasks, sync
/// primitives, resources, hardware models — is strictly single-threaded.
/// Nothing in simcore uses global mutable state, so any number of
/// *distinct* Simulator instances may run concurrently on different
/// threads; that is exactly how sweep jobs parallelize. One instance,
/// however, must stay confined to one thread: the first thread that
/// spawns or runs pins the instance, and any use from another thread (or
/// a nested run() from inside a callback) throws instead of corrupting
/// the event queue.
class Simulator {
 public:
  /// Adopts any ambient ScopedSimLimits active on the constructing thread
  /// (the sweep runner's per-job watchdog) and the ambient SchedulerKind
  /// (ScopedScheduler / PP_LEGACY_QUEUE); otherwise starts unlimited on
  /// the calendar queue.
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Destroys the frames of processes still suspended (daemon pumps
  /// parked on a channel, tasks stranded by an aborted run) so their
  /// coroutine trees do not leak.
  ~Simulator();

  /// Current virtual time.
  SimTime now() const noexcept { return now_; }

  /// Awaitable: suspend the calling coroutine for `d` nanoseconds. A zero
  /// delay still yields, letting other ready events run first.
  auto delay(SimTime d) { return DelayAwaiter{*this, now_ + (d > 0 ? d : 0)}; }

  /// Awaitable: suspend until absolute virtual time `t` (or immediately
  /// reschedule if `t` is in the past).
  auto delay_until(SimTime t) { return DelayAwaiter{*this, t}; }

  /// Starts `task` as a detached root process. The returned Completion can
  /// be awaited by other coroutines; the Simulator keeps it alive.
  std::shared_ptr<Completion> spawn(Task<void> task, std::string name = {});

  /// Starts an infrastructure pump that is expected to wait forever (e.g. a
  /// NIC receive loop). Daemons do not keep run() alive and are not counted
  /// as deadlocked when the event queue drains.
  std::shared_ptr<Completion> spawn_daemon(Task<void> task,
                                           std::string name = {});

  /// Runs until the event queue is empty. Throws the first exception that
  /// escaped a spawned process, or DeadlockError if processes remain
  /// suspended with nothing left to run.
  void run();

  /// Runs all events with timestamp <= t. Returns true if events remain.
  bool run_until(SimTime t);

  /// Low-level: schedule `h` to resume at absolute time `at` (clamped to
  /// now()). Used by the synchronization primitives and resources.
  /// Inline (as is call_at): these cross from every awaiter into the
  /// queue once per event, and the fast path is a handful of stores.
  void schedule(SimTime at, std::coroutine_handle<> h) {
    queue_.push(clamp_at(at), now_, seq_++, h, {});
  }
  void schedule_now(std::coroutine_handle<> h) { schedule(now_, h); }

  /// Runs `fn` at absolute time `at` without the overhead of spawning a
  /// process. Used for fire-and-forget actions such as wire propagation.
  /// The callable may be move-only; captures up to SmallFn::kInlineBytes
  /// live inside the event node (no allocation). Templated so the
  /// capture is constructed directly in the node instead of relocating
  /// through a SmallFn parameter — wire propagation captures a whole
  /// hw::Packet per frame.
  template <typename F>
  void call_at(SimTime at, F&& fn) {
    queue_.push_cb(clamp_at(at), now_, seq_++, std::forward<F>(fn));
  }
  template <typename F>
  void call_after(SimTime d, F&& fn) {
    call_at(now_ + (d > 0 ? d : 0), std::forward<F>(fn));
  }

  /// Arrival push carrying an explicit shard-stable (sched, tag, seq)
  /// key computed by the *sender* (a PacketPipe's wire exit). This is
  /// what makes sharded runs bit-identical to serial ones: the pipe uses
  /// this same entry point in both configurations, so the merged event
  /// order never depends on which shard ran first. See
  /// EventQueue::push_cb_tagged and DESIGN.md section 10.
  template <typename F>
  void call_at_tagged(SimTime at, SimTime sched, std::uint64_t tag,
                      std::uint64_t seq, F&& fn) {
    queue_.push_cb_tagged(clamp_at(at), sched, tag, seq, std::forward<F>(fn));
  }

  /// Timestamp of the next pending event, or kSimTimeMax when the queue
  /// is empty. The shard coordinator polls this across shards to pick
  /// the conservative window floor.
  SimTime next_event_time() {
    return queue_.empty() ? kSimTimeMax : queue_.front_time();
  }

  std::uint64_t events_processed() const noexcept { return events_; }
  int live_processes() const noexcept { return live_; }

  /// Human-readable description of the processes still suspended (the
  /// body of the DeadlockError run() would throw). The shard coordinator
  /// aggregates these across shards into one message.
  std::string deadlock_message() const;

  /// Destroys the frames of still-suspended processes and discards every
  /// pending event, exactly as ~Simulator would, leaving the instance
  /// alive but inert. ShardGroup calls this on every shard before any
  /// Simulator is destroyed: after an aborted sharded run one shard's
  /// frames or pending events may hold packet descriptors whose slots
  /// live in *another* shard's arena, so all holders must die before
  /// any arena does.
  void abort_pending();

  /// Releases the thread pin so the *next* thread that spawns or runs
  /// becomes the owner. Only legal between runs (never from inside the
  /// event loop); the ShardGroup uses it to hand a shard's simulator —
  /// built and populated on the controlling thread — to its worker, and
  /// back again after the parallel run.
  void detach_thread();

  /// Conservative-sharding membership, set by ShardGroup::attach. Null
  /// group means "not sharded" (the common serial case). PacketPipe
  /// consults this at wire exit to route cross-simulator arrivals
  /// through the group's merge mailbox.
  void set_shard(ShardGroup* group, int index) noexcept {
    shard_group_ = group;
    shard_index_ = index;
  }
  ShardGroup* shard_group() const noexcept { return shard_group_; }
  int shard_index() const noexcept { return shard_index_; }

  /// Which pending-event scheduler this instance runs on (fixed at
  /// construction from the ambient ScopedScheduler / PP_LEGACY_QUEUE).
  SchedulerKind scheduler() const noexcept { return queue_.kind(); }

  /// The packet-descriptor allocator every pipe and protocol on this
  /// simulator draws from (fixed at construction from the ambient
  /// ScopedPacketPath / PP_LEGACY_PACKETS).
  PacketArena& packet_arena() noexcept { return packet_arena_; }
  PacketPathKind packet_path() const noexcept { return packet_arena_.kind(); }

  /// Safety valve against runaway protocol loops: run() throws
  /// BudgetExceededError once this many events have been processed.
  void set_event_limit(std::uint64_t limit) noexcept { event_limit_ = limit; }

  /// Simulated-time deadline: run()/run_until() throw BudgetExceededError
  /// before executing any event scheduled past `t`. Unlike run_until(t)
  /// (which stops cleanly), crossing the deadline is an error — it marks a
  /// run that should have converged long ago.
  void set_time_limit(SimTime t) noexcept { time_limit_ = t; }

  /// Optional structured trace recorder: resources record their busy
  /// spans when attached (see simcore/tracing.h).
  void set_tracer(TraceRecorder* t) noexcept { tracer_ = t; }
  TraceRecorder* tracer() const noexcept { return tracer_; }

  /// Optional delivery/conservation oracle (see audit/audit.h). Like the
  /// tracer, a plain observer pointer: protocol layers gate every audit
  /// hook on one test here, so unaudited runs pay nothing and audited
  /// runs stay bit-identical (pure observation). Attach *before*
  /// constructing protocol objects — libraries register their message
  /// streams in their constructors.
  void set_auditor(audit::Auditor* a) noexcept { auditor_ = a; }
  audit::Auditor* auditor() const noexcept { return auditor_; }

  /// Optional trace sink; when set, components may log timestamped lines.
  void set_trace_sink(std::function<void(SimTime, std::string_view)> sink) {
    trace_sink_ = std::move(sink);
  }
  bool tracing() const noexcept { return static_cast<bool>(trace_sink_); }
  void trace(std::string_view msg) {
    if (trace_sink_) trace_sink_(now_, msg);
  }

 private:
  struct DelayAwaiter {
    Simulator& sim;
    SimTime at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { sim.schedule(at, h); }
    void await_resume() const noexcept {}
  };

  struct LiveProcess {
    std::string name;
    std::shared_ptr<Completion> completion;
    bool daemon = false;
    std::coroutine_handle<> root;  // frame to reap if never finished
  };

  // Root coroutine wrapper for spawned tasks; bookkeeping lives in
  // simulator.cpp.
  struct RootTask;
  RootTask run_root(Task<void> task, std::size_t slot);
  std::shared_ptr<Completion> spawn_impl(Task<void> task, std::string name,
                                         bool daemon);

  void step(EventQueue::Fired&& ev);
  [[noreturn]] void throw_deadlock() const;

  // Pins the instance to the first thread that spawns or runs; throws
  // std::logic_error on use from any other thread.
  void check_thread();

  /// Inline compare pair on the per-event loop path; the throw itself is
  /// out of line.
  void check_budgets(SimTime next_at) const {
    if (events_ >= event_limit_ || next_at > time_limit_) {
      throw_budget_exceeded(next_at);
    }
  }
  [[noreturn]] void throw_budget_exceeded(SimTime next_at) const;

  /// Events cannot land in the past (before now_) nor so far out that
  /// span arithmetic in the calendar tiers could overflow.
  static constexpr SimTime kMaxSchedulable = kSimTimeMax / 2;
  SimTime clamp_at(SimTime at) const {
    if (at < now_) return now_;
    if (at > kMaxSchedulable) return kMaxSchedulable;
    return at;
  }

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t event_limit_ = UINT64_MAX;
  SimTime time_limit_ = kSimTimeMax;
  int live_ = 0;
  // Declared before queue_: pending events may hold packet descriptors,
  // so the arena must be destroyed after the event queue (and after the
  // coroutine frames ~Simulator reaps in its body).
  PacketArena packet_arena_;
  EventQueue queue_{ambient_scheduler()};
  std::vector<LiveProcess> processes_;  // slot -> process bookkeeping
  std::exception_ptr pending_error_;
  std::atomic<std::thread::id> owner_{};  // pinned on first spawn/run
  bool running_ = false;                  // guards nested run()/run_until()
  ShardGroup* shard_group_ = nullptr;
  int shard_index_ = 0;
  TraceRecorder* tracer_ = nullptr;
  audit::Auditor* auditor_ = nullptr;
  std::function<void(SimTime, std::string_view)> trace_sink_;
};

}  // namespace pp::sim
