#include "simcore/tracing.h"

#include <fstream>
#include <map>
#include <sstream>

namespace pp::sim {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  // Assign a stable tid per track name, in first-appearance order.
  std::map<std::string, int> tids;
  auto tid_of = [&tids](const std::string& track) {
    auto [it, inserted] = tids.emplace(track, static_cast<int>(tids.size()));
    (void)inserted;
    return it->second;
  };

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  char buf[160];
  for (const auto& s : spans_) {
    std::string name;
    append_escaped(name, s.name);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"name\":\"",
                  tid_of(s.track), to_microseconds(s.start),
                  to_microseconds(s.duration));
    emit(std::string(buf) + name + "\"}");
  }
  for (const auto& i : instants_) {
    std::string name;
    append_escaped(name, i.name);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,"
                  "\"s\":\"t\",\"name\":\"",
                  tid_of(i.track), to_microseconds(i.at));
    emit(std::string(buf) + name + "\"}");
  }
  // Counter tracks: events sharing a track name merge into one chart,
  // one series per args key.
  for (const auto& c : counters_) {
    std::string track, series;
    append_escaped(track, c.track);
    append_escaped(series, c.series);
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"C\",\"pid\":0,\"ts\":%.3f,",
                  to_microseconds(c.at));
    char val[48];
    std::snprintf(val, sizeof(val), "%.6g", c.value);
    emit(std::string(buf) + "\"name\":\"" + track + "\",\"args\":{\"" +
         series + "\":" + val + "}}");
  }
  // Thread-name metadata so the tracks are labelled, plus the optional
  // per-track sort order.
  for (const auto& [track, tid] : tids) {
    std::string name;
    append_escaped(name, track);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                  tid);
    emit(std::string(buf) + name + "\"}}");
    auto sit = sort_index_.find(track);
    if (sit != sort_index_.end()) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                    "\"name\":\"thread_sort_index\","
                    "\"args\":{\"sort_index\":%d}}",
                    tid, sit->second);
      emit(buf);
    }
  }
  out += "\n]}\n";
  return out;
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  f << to_chrome_json();
}

}  // namespace pp::sim
