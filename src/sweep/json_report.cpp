#include "sweep/json_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pp::sweep {

namespace {

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Finite numbers as shortest-ish decimal; NaN/inf as null (JSON has no
/// non-finite numbers — this is the "absent measurement" encoding).
std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_counters(std::ostringstream& os,
                     const netpipe::ProtocolCounters& c) {
  os << "\"counters\":{"
     << "\"data_segments\":" << c.data_segments
     << ",\"acks\":" << c.acks
     << ",\"retransmits\":" << c.retransmits
     << ",\"fast_retransmits\":" << c.fast_retransmits
     << ",\"checksum_drops\":" << c.checksum_drops
     << ",\"reconnects\":" << c.reconnects
     << ",\"wire_drops\":" << c.wire_drops
     << ",\"rendezvous_handshakes\":" << c.rendezvous_handshakes
     << ",\"rendezvous_retries\":" << c.rendezvous_retries
     << ",\"delivery_failures\":" << c.delivery_failures
     << ",\"staged_bytes\":" << c.staged_bytes
     << ",\"relay_fragments\":" << c.relay_fragments
     << ",\"rdma_transfers\":" << c.rdma_transfers << "}";
}

void append_audit(std::ostringstream& os, const audit::Summary& a) {
  os << "\"audit\":{"
     << "\"outcome\":\"" << audit::to_string(a.outcome) << "\""
     << ",\"streams\":" << a.streams
     << ",\"injected\":" << a.injected
     << ",\"injected_bytes\":" << a.injected_bytes
     << ",\"delivered\":" << a.delivered
     << ",\"failed_by_decision\":" << a.failed_by_decision
     << ",\"unaccounted\":" << a.unaccounted
     << ",\"violations\":" << a.violations;
  if (!a.reports.empty()) {
    os << ",\"violation_reports\":[";
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << escaped(audit::to_string(a.reports[i])) << "\"";
    }
    os << "]";
  }
  os << "}";
}

void append_job(std::ostringstream& os, const JobResult& j,
                bool include_timing) {
  os << "{\"label\":\"" << escaped(j.label) << "\",\"ok\":"
     << (j.ok ? "true" : "false")
     << ",\"status\":\"" << to_string(j.status) << "\""
     << ",\"retries\":" << j.retries;
  if (!j.verdict.empty()) {
    os << ",\"verdict\":\"" << escaped(j.verdict) << "\"";
  }
  if (j.audit) {
    os << ",";
    append_audit(os, *j.audit);
  }
  if (include_timing) os << ",\"wall_ms\":" << number(j.wall_ms);
  if (!j.ok) {
    // Degraded run: no measurement, but the counters object stays (all
    // zeros — the RunResult was never produced) so consumers can treat
    // every job uniformly.
    os << ",\"error\":\"" << escaped(j.error) << "\",";
    append_counters(os, netpipe::ProtocolCounters{});
    os << "}";
    return;
  }
  const netpipe::RunResult& r = j.result;
  os << ",\"transport\":\"" << escaped(r.transport) << "\""
     << ",\"points\":" << r.points.size()
     << ",\"latency_us\":" << number(r.latency_us)
     << ",\"max_mbps\":" << number(r.max_mbps)
     << ",\"n_half_bytes\":" << r.half_performance_bytes
     << ",\"saturation_bytes\":" << r.saturation_bytes << ",";
  append_counters(os, r.counters);
  os << "}";
}

}  // namespace

std::string JsonReporter::to_json(const std::vector<SweepResult>& sweeps,
                                  const Options& options) {
  std::ostringstream os;
  os << "{\"schema\":\"pp.sweep/6\"";
  os << ",\"sweeps\":[";
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    const SweepResult& sw = sweeps[s];
    if (s > 0) os << ",";
    os << "{\"name\":\"" << escaped(sw.name) << "\"";
    if (options.include_timing) {
      os << ",\"shards\":" << sw.shards
         << ",\"threads\":" << sw.threads
         << ",\"wall_ms\":" << number(sw.wall_ms)
         << ",\"serial_ms\":" << number(sw.serial_ms)
         << ",\"speedup_vs_serial\":" << number(sw.speedup());
    }
    os << ",\"jobs\":[";
    for (std::size_t i = 0; i < sw.jobs.size(); ++i) {
      if (i > 0) os << ",";
      append_job(os, sw.jobs[i], options.include_timing);
    }
    os << "]}";
  }
  os << "]}\n";
  return os.str();
}

void JsonReporter::write(const std::string& path,
                         const std::vector<SweepResult>& sweeps,
                         const Options& options) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("JsonReporter: cannot open " + path);
  f << to_json(sweeps, options);
  if (!f) throw std::runtime_error("JsonReporter: write failed for " + path);
}

}  // namespace pp::sweep
