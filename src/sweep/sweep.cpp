#include "sweep/sweep.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>
#include <utility>

#include "simcore/shard.h"
#include "simcore/simulator.h"
#include "sweep/thread_pool.h"

namespace pp::sweep {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  const auto d = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

const netpipe::RunResult& SweepResult::at(const std::string& label) const {
  for (const auto& j : jobs) {
    if (j.label != label) continue;
    if (!j.ok) {
      throw std::runtime_error("sweep '" + name + "' job '" + label +
                               "' failed: " + j.error);
    }
    return j.result;
  }
  throw std::out_of_range("sweep '" + name + "' has no job labelled '" +
                          label + "'");
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opt) {
  SweepResult out;
  out.name = spec.name;
  out.jobs.resize(spec.jobs.size());

  const unsigned threads = opt.threads > 0
                               ? static_cast<unsigned>(opt.threads)
                               : ThreadPool::default_threads();
  out.threads = static_cast<int>(threads);
  out.shards = opt.shards;

  // Each worker writes only its own slot; the exception slots are
  // likewise per-job, so the only cross-thread coordination lives inside
  // the pool.
  std::vector<std::exception_ptr> errors(spec.jobs.size());
  const auto sweep_start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
      pool.submit([&spec, &out, &errors, &opt, i] {
        JobResult& jr = out.jobs[i];
        jr.label = spec.jobs[i].label;
        const auto start = std::chrono::steady_clock::now();
        const JobLimits& lim = opt.limits;
        const int attempts =
            lim.enabled() ? 1 + std::max(0, opt.watchdog_retries) : 1;
        // Job factories construct their Simulators deep inside closures;
        // the scheduler choice travels thread-locally like the budgets.
        std::optional<sim::ScopedScheduler> sched_guard;
        if (opt.scheduler) sched_guard.emplace(*opt.scheduler);
        std::optional<sim::ScopedPacketPath> packets_guard;
        if (opt.packet_path) packets_guard.emplace(*opt.packet_path);
        std::optional<sim::ScopedShards> shards_guard;
        if (opt.shards > 0) shards_guard.emplace(opt.shards);
        // Never invoke the spec's own closure: std::function's const
        // operator() still reaches `mutable` captured state (consumed
        // RNG engines, partially-applied fault plans), so a watchdog
        // retry through the same object would resume from whatever the
        // aborted attempt left behind. Each attempt gets a fresh copy of
        // this pristine closure — per-run state is re-derived from the
        // original spec and a retried job is bit-identical to a clean
        // first run at the doubled budget.
        const std::function<netpipe::RunResult()> pristine = spec.jobs[i].run;
        for (int attempt = 0; attempt < attempts; ++attempt) {
          try {
            // Budgets double per retry: a fault schedule may legitimately
            // need longer to converge than the first guess allowed.
            std::optional<sim::ScopedSimLimits> guard;
            if (lim.enabled()) {
              const auto scale = static_cast<std::uint64_t>(1) << attempt;
              guard.emplace(lim.sim_deadline > 0
                                ? lim.sim_deadline *
                                      static_cast<sim::SimTime>(scale)
                                : 0,
                            lim.event_budget * scale);
            }
            std::function<netpipe::RunResult()> fresh = pristine;
            jr.result = fresh();
            jr.ok = true;
            jr.status = JobStatus::kOk;
            jr.error.clear();  // drop the kept watchdog message on a retry
            break;
          } catch (const sim::BudgetExceededError& e) {
            // Watchdog kill: degrade, never abort the sweep. Retry with
            // doubled budgets while attempts remain.
            jr.status = JobStatus::kWatchdog;
            jr.error = e.what();
            if (attempt + 1 < attempts) {
              jr.retries += 1;
              continue;
            }
            break;
          } catch (const sim::ProtocolFailure& e) {
            // The protocol stack gave up deliberately (retry caps
            // exhausted under fault injection). Expected under chaos:
            // report, don't retry, never rethrow.
            jr.status = JobStatus::kFailed;
            jr.error = e.what();
            break;
          } catch (const std::exception& e) {
            errors[i] = std::current_exception();
            jr.status = JobStatus::kError;
            jr.error = e.what();
            break;
          } catch (...) {
            errors[i] = std::current_exception();
            jr.status = JobStatus::kError;
            jr.error = "unknown exception";
            break;
          }
        }
        jr.wall_ms = ms_since(start);
      });
    }
    pool.wait_idle();
  }
  out.wall_ms = ms_since(sweep_start);
  for (const auto& j : out.jobs) out.serial_ms += j.wall_ms;

  if (!opt.keep_going) {
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);  // first failure in spec order
    }
  }
  return out;
}

}  // namespace pp::sweep
