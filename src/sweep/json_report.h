// Machine-readable sweep reports (the BENCH_sweep.json trajectory).
//
// Schema (version pp.sweep/6):
//   {
//     "schema": "pp.sweep/6",
//     "sweeps": [
//       { "name": ..., "shards": N, "threads": N,
//         "wall_ms": ..., "serial_ms": ..., "speedup_vs_serial": ...,
//         "jobs": [
//           { "label": ..., "ok": true|false,
//             "status": "ok"|"error"|"watchdog"|"failed",
//             "retries": N,            // watchdog-triggered re-runs
//             "verdict": ...,          // only when a harness stamped one
//             "audit": {               // only when the oracle was attached
//               "outcome": "completed"|"failed"|"aborted",
//               "streams": N, "injected": N, "injected_bytes": N,
//               "delivered": N, "failed_by_decision": N,
//               "unaccounted": N, "violations": N,
//               "violation_reports": [ ... ] },  // only when nonzero
//             "wall_ms": ...,
//             "error": ...,            // only when !ok
//             // measurement fields, only when ok:
//             "transport": ..., "points": <count>,
//             "latency_us": <number or null>,   // null: not measured
//             "max_mbps": ..., "n_half_bytes": ...,
//             "saturation_bytes": ...,
//             // always present (zeros for failed jobs):
//             "counters": { "data_segments": ..., "acks": ...,
//               "retransmits": ..., "fast_retransmits": ...,
//               "checksum_drops": ..., "reconnects": ...,
//               "wire_drops": ...,
//               "rendezvous_handshakes": ..., "rendezvous_retries": ...,
//               "delivery_failures": ..., "staged_bytes": ...,
//               "relay_fragments": ..., "rdma_transfers": ... } }
//         ] }
//     ]
//   }
//
// With Options::include_timing = false, the host-timing fields
// ("threads", "wall_ms", "serial_ms", "speedup_vs_serial", per-job
// "wall_ms") are omitted entirely — the canonical form the determinism
// tests compare byte-for-byte. Consumers must treat them as optional.
//
// pp.sweep/6 adds the optional per-job "audit" block: the delivery
// oracle's conservation ledger (audit/audit.h) stamped by audit-enabled
// harnesses (bench/chaos --audit). Like "verdict" it is a pure function
// of the simulation — the oracle is observe-only — so it belongs to the
// canonical form.
// pp.sweep/5 adds the "failed" job status (the run's protocol stack
// raised sim::ProtocolFailure — a deliberate give-up under fault
// injection, distinct from an error or a watchdog hang) and the optional
// per-job "verdict" string chaos harnesses stamp after classifying each
// run (clean | recovered | degraded | failed | hung). "verdict" is part
// of the canonical form: it is a function of the simulation, not of how
// the sweep was executed. pp.sweep/5 also adds "counters.reconnects"
// (TCP sessions re-established after a crash/restart).
// pp.sweep/4 added the per-sweep "shards" field (the ambient shard count
// SweepOptions::shards installed around the jobs; 0 = jobs ran with the
// ambient default). Like "threads" it describes how the sweep was
// executed, not what it measured — sharded runs are bit-identical to
// serial ones — so it lives with the host-timing fields and is omitted
// from the canonical form, which therefore stays byte-identical across
// shard counts (the shard-determinism suite asserts exactly that).
// pp.sweep/3 added per-job degraded-run reporting ("status", "retries")
// and the fault/recovery counters (checksum_drops, rendezvous_retries,
// delivery_failures); "counters" is now emitted for failed jobs too so a
// watchdog-killed run still shows how far its recovery machinery got.
// pp.sweep/2 dropped pp.sweep/1's top-level "threads" (it was copied
// from the first sweep only, misreporting mixed-thread-count reports;
// the per-sweep "threads" is authoritative) and added per-job protocol
// counters.
#pragma once

#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace pp::sweep {

class JsonReporter {
 public:
  struct Options {
    /// When false, every execution-dependent field — per-sweep
    /// "shards", "threads", "wall_ms", "serial_ms", "speedup_vs_serial"
    /// and per-job "wall_ms" — is omitted. What remains is a pure function
    /// of the simulation, so two runs of the same deterministic spec
    /// produce byte-identical strings regardless of thread count or
    /// host load. The determinism and differential test suites compare
    /// reports in this form.
    bool include_timing = true;
  };

  /// Serializes the sweeps to the pp.sweep/6 schema.
  static std::string to_json(const std::vector<SweepResult>& sweeps,
                             const Options& options);
  static std::string to_json(const std::vector<SweepResult>& sweeps) {
    return to_json(sweeps, Options{});
  }

  /// Writes to_json() to `path` (throws std::runtime_error on I/O error).
  static void write(const std::string& path,
                    const std::vector<SweepResult>& sweeps,
                    const Options& options);
  static void write(const std::string& path,
                    const std::vector<SweepResult>& sweeps) {
    write(path, sweeps, Options{});
  }
};

}  // namespace pp::sweep
