// Machine-readable sweep reports (the BENCH_sweep.json trajectory).
//
// Schema (version pp.sweep/2):
//   {
//     "schema": "pp.sweep/2",
//     "sweeps": [
//       { "name": ..., "threads": N,
//         "wall_ms": ..., "serial_ms": ..., "speedup_vs_serial": ...,
//         "jobs": [
//           { "label": ..., "ok": true, "wall_ms": ...,
//             "transport": ..., "points": <count>,
//             "latency_us": <number or null>,   // null: not measured
//             "max_mbps": ..., "n_half_bytes": ...,
//             "saturation_bytes": ...,
//             "counters": { "data_segments": ..., "acks": ...,
//               "retransmits": ..., "fast_retransmits": ...,
//               "wire_drops": ..., "rendezvous_handshakes": ...,
//               "staged_bytes": ..., "relay_fragments": ...,
//               "rdma_transfers": ... } }
//           | { "label": ..., "ok": false, "wall_ms": ..., "error": ... }
//         ] }
//     ]
//   }
//
// pp.sweep/2 drops pp.sweep/1's top-level "threads" (it was copied from
// the first sweep only, misreporting mixed-thread-count reports; the
// per-sweep "threads" is authoritative) and adds per-job protocol
// counters.
#pragma once

#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace pp::sweep {

class JsonReporter {
 public:
  /// Serializes the sweeps to the pp.sweep/2 schema.
  static std::string to_json(const std::vector<SweepResult>& sweeps);

  /// Writes to_json() to `path` (throws std::runtime_error on I/O error).
  static void write(const std::string& path,
                    const std::vector<SweepResult>& sweeps);
};

}  // namespace pp::sweep
