// Machine-readable sweep reports (the BENCH_sweep.json trajectory).
//
// Schema (version pp.sweep/1):
//   {
//     "schema": "pp.sweep/1",
//     "threads": <pool size of the first sweep>,
//     "sweeps": [
//       { "name": ..., "threads": N,
//         "wall_ms": ..., "serial_ms": ..., "speedup_vs_serial": ...,
//         "jobs": [
//           { "label": ..., "ok": true, "wall_ms": ...,
//             "transport": ..., "points": <count>,
//             "latency_us": <number or null>,   // null: not measured
//             "max_mbps": ..., "n_half_bytes": ...,
//             "saturation_bytes": ... }
//           | { "label": ..., "ok": false, "wall_ms": ..., "error": ... }
//         ] }
//     ]
//   }
#pragma once

#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace pp::sweep {

class JsonReporter {
 public:
  /// Serializes the sweeps to the pp.sweep/1 schema.
  static std::string to_json(const std::vector<SweepResult>& sweeps);

  /// Writes to_json() to `path` (throws std::runtime_error on I/O error).
  static void write(const std::string& path,
                    const std::vector<SweepResult>& sweeps);
};

}  // namespace pp::sweep
