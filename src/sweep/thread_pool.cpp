#include "sweep/thread_pool.h"

#include <algorithm>
#include <utility>

namespace pp::sweep {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(threads, 1u);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

unsigned ThreadPool::default_threads() {
  return std::max(std::thread::hardware_concurrency(), 1u);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A throwing task must not take the worker (std::terminate) or
    // strand in_flight_ (wait_idle would hang): capture the first error
    // and always decrement.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace pp::sweep
