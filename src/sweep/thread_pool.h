// A minimal fixed-size thread pool for the experiment-sweep executor.
//
// Workers drain a FIFO task queue; wait_idle() blocks the submitting
// thread until every task submitted so far has *finished* (not merely
// been dequeued). The pool is intentionally tiny: sweep jobs are coarse
// (whole NetPIPE measurements, hundreds of milliseconds each), so a
// mutex-guarded deque is nowhere near the bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pp::sweep {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `task` for execution on some worker. Tasks must not throw:
  /// wrap user work and capture errors on the caller's side (run_sweep
  /// stores them per job).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void wait_idle();

  /// Default worker count: the hardware concurrency, at least 1.
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "there is work (or stop)"
  std::condition_variable idle_cv_;  // wait_idle: "everything finished"
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pp::sweep
