// A minimal fixed-size thread pool for the experiment-sweep executor.
//
// Workers drain a FIFO task queue; wait_idle() blocks the submitting
// thread until every task submitted so far has *finished* (not merely
// been dequeued). The pool is intentionally tiny: sweep jobs are coarse
// (whole NetPIPE measurements, hundreds of milliseconds each), so a
// mutex-guarded deque is nowhere near the bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pp::sweep {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `task` for execution on some worker. A task that throws
  /// does not kill the worker or strand the in-flight count: the first
  /// escaped exception is captured and rethrown from wait_idle().
  /// (run_sweep still wraps user jobs and records errors per job; this
  /// guard is the backstop for bugs in the wrapper itself.)
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running, then
  /// rethrows the first exception that escaped a task (if any).
  void wait_idle();

  /// Default worker count: the hardware concurrency, at least 1.
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "there is work (or stop)"
  std::condition_variable idle_cv_;  // wait_idle: "everything finished"
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  /// First exception that escaped a task; rethrown by wait_idle(). An
  /// error never retrieved is dropped at destruction (destructors must
  /// not throw).
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pp::sweep
