// The parallel experiment-sweep executor.
//
// The paper's results are sweeps: the same NetPIPE measurement repeated
// across libraries, NICs and tunables. Every job in a SweepSpec is an
// independent, fully-isolated simulation — its factory constructs its own
// sim::Simulator, cluster and transports, runs the measurement, and
// returns the RunResult. run_sweep() fans the jobs out over a thread
// pool and aggregates the results *in spec order*, regardless of
// completion order, so a parallel sweep is bit-identical to a serial one
// (the simulator itself is deterministic; see the threading contract in
// simcore/simulator.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netpipe/runner.h"
#include "simcore/event_queue.h"
#include "simcore/packet_arena.h"
#include "simcore/time.h"

namespace pp::sweep {

/// One independent measurement. `run` must be self-contained: it builds
/// everything it needs (simulator, cluster, transports) and must not
/// touch shared mutable state — it will be called from a worker thread.
struct JobSpec {
  std::string label;
  std::function<netpipe::RunResult()> run;
};

/// A named, ordered collection of jobs (one figure, one tuning table
/// section, one advisor sweep, ...).
struct SweepSpec {
  std::string name;
  std::vector<JobSpec> jobs;

  void add(std::string label, std::function<netpipe::RunResult()> run) {
    jobs.push_back(JobSpec{std::move(label), std::move(run)});
  }
};

/// How one job ended. kWatchdog means every attempt (the original plus
/// the bounded retries) blew its event or simulated-time budget; such
/// jobs degrade to a reported failure and never abort the sweep.
/// kFailed means the job raised sim::ProtocolFailure — its protocol
/// stack *decided* it cannot complete (retry caps exhausted, the peer
/// permanently dead). Like watchdog kills, protocol failures are an
/// expected outcome under fault injection: they are reported, never
/// retried, and never rethrown regardless of keep_going.
enum class JobStatus { kOk, kError, kWatchdog, kFailed };

inline const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kError: return "error";
    case JobStatus::kWatchdog: return "watchdog";
    case JobStatus::kFailed: return "failed";
  }
  return "unknown";
}

struct JobResult {
  std::string label;
  netpipe::RunResult result;  ///< valid only when ok
  double wall_ms = 0.0;       ///< host wall-clock spent in the job
  bool ok = false;
  JobStatus status = JobStatus::kError;
  int retries = 0;    ///< watchdog-triggered re-runs performed
  std::string error;  ///< what() of the escaped exception when !ok
  /// Optional run classification stamped by chaos-style harnesses after
  /// the sweep (recovered | degraded | failed | hung | clean); emitted
  /// in pp.sweep/6 reports when non-empty.
  std::string verdict;
  /// Delivery-oracle accounting, stamped by audit-enabled harnesses
  /// after the sweep (bench/chaos --audit). For jobs that completed it
  /// aliases RunResult::audit; for failed/aborted jobs it carries the
  /// ledger the job wrapper finalized on the exception path. Emitted as
  /// the per-job "audit" block in pp.sweep/6 reports when set.
  std::shared_ptr<const audit::Summary> audit;
};

struct SweepResult {
  std::string name;
  std::vector<JobResult> jobs;  ///< always in SweepSpec order
  int threads = 0;              ///< pool size used
  int shards = 0;               ///< SweepOptions::shards the jobs saw
  double wall_ms = 0.0;         ///< whole-sweep wall clock
  double serial_ms = 0.0;       ///< sum of per-job wall clocks

  /// Wall-clock speedup versus running the same jobs back to back.
  double speedup() const {
    return wall_ms > 0.0 ? serial_ms / wall_ms : 0.0;
  }

  /// The successful result for `label`; throws std::out_of_range when no
  /// such job exists and std::runtime_error (with the job's error) when
  /// the job failed — a misconfigured sweep fails loudly, never as a
  /// silent row of zeros.
  const netpipe::RunResult& at(const std::string& label) const;
};

/// Per-job runaway protection. Both budgets are adopted by every
/// sim::Simulator a job's factory constructs (via ScopedSimLimits), so a
/// wedged protocol — a retry loop that never converges, a deadlocked
/// handshake — is cut off instead of hanging the sweep.
struct JobLimits {
  sim::SimTime sim_deadline = 0;   ///< simulated-time ceiling; 0 = none
  std::uint64_t event_budget = 0;  ///< event-count ceiling; 0 = none
  bool enabled() const { return sim_deadline > 0 || event_budget > 0; }
};

struct SweepOptions {
  /// Worker threads; 0 means ThreadPool::default_threads().
  int threads = 0;
  /// When false (the default) the first failing job's exception is
  /// rethrown — in spec order, deterministically — after all jobs have
  /// finished. When true, failures are only recorded in JobResult.
  /// Watchdog (budget) kills are NEVER rethrown either way: they degrade
  /// to a reported JobResult so one wedged job cannot abort a sweep.
  bool keep_going = false;
  /// Watchdog budgets applied to every job; disabled by default.
  JobLimits limits;
  /// Extra attempts for a watchdog-killed job, each with doubled budgets
  /// (some fault schedules legitimately need longer to converge).
  int watchdog_retries = 2;
  /// Event scheduler every Simulator the jobs construct adopts (installed
  /// thread-locally around each job, like `limits`). Unset: the ambient
  /// default. The differential determinism harness runs the same spec
  /// once per SchedulerKind and asserts identical results.
  std::optional<sim::SchedulerKind> scheduler;
  /// Packet-descriptor backend every Simulator the jobs construct adopts
  /// (installed thread-locally around each job, like `scheduler`). Unset:
  /// the ambient default. The differential harness runs the same spec
  /// once per PacketPathKind and asserts identical results.
  std::optional<sim::PacketPathKind> packet_path;
  /// Ambient shard count (sim::ScopedShards) installed around each job,
  /// for factories that build shard-aware workloads via ambient_shards().
  /// 0 (the default) leaves the ambient value untouched. Sharded runs
  /// are bit-identical to serial ones, so this only changes how a job
  /// spends host cores, never what it measures.
  int shards = 0;
};

/// Runs every job of `spec` on a thread pool and returns the results in
/// spec order.
SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opt = {});

}  // namespace pp::sweep
