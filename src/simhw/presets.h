// Calibrated presets for every host and NIC the paper tests.
//
// Host presets are anchored to the paper's raw-TCP measurements (DESIGN.md
// §7); NIC presets encode each card's personality: DMA-engine quality,
// driver per-packet costs, and — crucially for the paper's socket-buffer
// story — interrupt-mitigation behaviour.
#pragma once

#include <cstdint>

#include "simhw/config.h"

namespace pp::hw::presets {

// ----- hosts -------------------------------------------------------------

/// 1.8 GHz Pentium 4, 768 MB PC133, 32-bit 33 MHz PCI (the paper's ~$1500
/// commodity cluster node).
HostConfig pentium4_pc();

/// Compaq DS20, 500 MHz Alpha EV6, 64-bit 33 MHz PCI.
HostConfig compaq_ds20();

// ----- NICs --------------------------------------------------------------

/// Netgear GA620 fiber GigE (AceNIC driver): mature but with the poor
/// 2.4-kernel latency the paper reports (~120 us).
NicConfig netgear_ga620();

/// TrendNet TEG-PCITX copper GigE (ns83820 driver): the $55 new wave —
/// needs enormous socket buffers because of its receive-path stalls.
NicConfig trendnet_teg_pcitx();

/// Netgear GA622 copper GigE: electrically a 64-bit TrendNet with an
/// equally immature driver.
NicConfig netgear_ga622();

/// SysKonnect SK-9843 (sk98lin): low latency, jumbo-frame capable.
/// @param mtu 1500 or up to 9000 (jumbo frames).
NicConfig syskonnect_sk9843(std::uint32_t mtu = 1500);

/// Myrinet PCI64A-2 with the 66 MHz LANai (GM fabric, OS bypass).
NicConfig myrinet_pci64a();

/// Giganet cLAN (hardware VIA, OS bypass).
NicConfig giganet_clan();

/// The Myrinet card driven as an IP interface (IP-over-GM): the kernel
/// stack is back in the path, so latency and efficiency regress to
/// GigE-TCP levels (paper §5).
NicConfig myrinet_ip_over_gm();

/// The SysKonnect card under M-VIA instead of the kernel TCP stack: the
/// VIA software layer replaces the TCP/IP protocol costs (charged by the
/// viasim personality), but the interrupt behaviour is the card's own.
NicConfig syskonnect_mvia();

/// Plain Fast Ethernet, for the "established technology" contrast the
/// paper draws in §4.
NicConfig fast_ethernet();

// ----- links -------------------------------------------------------------

/// Crossover cable, no switch (how the paper ran everything but Giganet).
LinkConfig back_to_back();

/// Through one switch (the Giganet CL5000 setup).
LinkConfig switched();

}  // namespace pp::hw::presets
