// A one-directional packet path between two nodes.
//
// The path is a pipeline of independently-pumped stages so that, exactly
// like real hardware, the wire can serialize frame i+1 while the receiver
// is still DMA-ing frame i and the destination CPU is still processing
// frame i-1:
//
//   inject -> [tx cpu] -> [tx DMA/PCI] -> [wire] -> propagation
//          -> [rx DMA/PCI] -> interrupt coalescing -> [rx cpu] -> delivered
//
// CPU stages are charged on the node's single CPU resource, so protocol
// work, driver work and user copies all contend — the paper's observation
// that the message-passing layer and the OS fight over the same memory/CPU
// path falls out of this sharing.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faults/config.h"
#include "simcore/packet_arena.h"
#include "simcore/random.h"
#include "simcore/resource.h"
#include "simcore/ring.h"
#include "simcore/simulator.h"
#include "simcore/sync.h"
#include "simcore/task.h"
#include "simhw/coalescer.h"
#include "simhw/config.h"
#include "simhw/node.h"

namespace pp::hw {

/// One frame in flight. The pipe itself only reads the byte counts and
/// the fault flags; `desc` is the protocol descriptor (TCP segment
/// context, GM/VIA fragment header, ...) handed out by the simulator's
/// PacketArena (sim::PacketRef, an intrusive refcount — copying the
/// Packet shares the descriptor instead of cloning it). The struct is
/// 32 bytes by design: a propagation event's [this, frame] capture fits
/// SmallFn's inline buffer, so a steady-state frame crosses the whole
/// pipe without a single heap allocation.
struct Packet {
  std::uint64_t dma_bytes = 0;   ///< bytes crossing the PCI bus
  std::uint64_t wire_bytes = 0;  ///< bytes serialized on the wire

  /// Protocol descriptor (arena slot). Read it back on the receive side
  /// with desc.get<T>() for the T the injecting protocol constructed.
  /// Retransmits, injected duplicates and zero-copy views all share the
  /// slot; the descriptor dies with its last reference.
  sim::PacketRef desc;

  /// Bit corruption was injected on the wire: the frame still arrives,
  /// but a checksumming receiver must discard it.
  bool corrupted = false;

  /// This frame is an injected duplicate of another; OS-bypass receivers
  /// filter these in "hardware" without touching protocol state.
  bool injected_dup = false;

  /// Drop-hook contract: when a fault injector discards this frame
  /// anywhere in the pipe, the pipe calls desc.fire_drop() iff this flag
  /// is set, letting credit/token-based senders reclaim flow-control
  /// units that would otherwise leak. The hook lives in the descriptor
  /// (one per message); the flag says which frames own a reclaim unit.
  /// Injected duplicates share `desc` but carry fire_drop == false (the
  /// original owns the reclaim); GM/VIA fragments of one message share
  /// one descriptor and all carry fire_drop == true, so the hook fires
  /// once per dropped fragment.
  bool fire_drop = false;
};

static_assert(sizeof(Packet) <= 32, "Packet must stay within SmallFn's "
              "inline budget for [this, frame] event captures");

/// The pipe is *two-sided*: the transmit stages (tx cpu, tx DMA, wire
/// serialization, fault injection) run on the source node's simulator,
/// the receive stages (rx DMA, interrupt coalescing, rx cpu, delivery)
/// on the destination node's. In the common serial case both nodes
/// share one simulator and nothing changes; when a ShardGroup workload
/// places the endpoints on different shards, the wire exit becomes a
/// timestamped cross-shard message carrying the shard-stable
/// (at, sched, tag, seq) arrival key (see DESIGN.md section 10). A
/// cross-shard pipe must have propagation > 0 (its delay is the
/// conservative lookahead) and must not use rx-side drop hooks that
/// reach back into tx-side state.
class PacketPipe {
 public:
  /// `sim` must be the source node's simulator (it drives the transmit
  /// stages); the destination side runs on dst.simulator(). Throws
  /// std::invalid_argument if the endpoints sit on different shards and
  /// the link has zero propagation delay.
  PacketPipe(sim::Simulator& sim, Node& src, Node& dst, NicConfig nic,
             LinkConfig link, std::string name);

  PacketPipe(const PacketPipe&) = delete;
  PacketPipe& operator=(const PacketPipe&) = delete;

  /// Drains every stage queue so frames still in flight release their
  /// arena descriptors at teardown instead of leaking live slots.
  ~PacketPipe();

  /// Hands a packet to the transmit path. Never blocks; upper layers pace
  /// themselves (TCP by its window, GM/VIA by their credits).
  void inject(Packet p) { tx_cpu_q_.push_now(std::move(p)); }

  /// Frames that have fully arrived (after the receive interrupt and the
  /// destination's per-packet processing).
  sim::Channel<Packet>& delivered() noexcept { return delivered_; }

  const NicConfig& nic() const noexcept { return nic_; }
  const std::string& name() const noexcept { return name_; }
  Node& src() noexcept { return src_; }
  Node& dst() noexcept { return dst_; }
  sim::RateResource& wire() noexcept { return wire_; }
  std::uint64_t packets_delivered() const noexcept { return n_delivered_; }

  /// Frames discarded by fault injection, all causes combined (random
  /// loss, burst loss, link flaps, NIC ring overflow). Stored per side
  /// (tx-stage drops and rx-stage drops are counted by different shards
  /// when the pipe crosses a boundary); read only after the run.
  std::uint64_t packets_dropped() const noexcept {
    return n_tx_dropped_ + n_rx_dropped_;
  }
  std::uint64_t packets_corrupted() const noexcept { return n_corrupted_; }
  std::uint64_t packets_duplicated() const noexcept { return n_duplicated_; }
  std::uint64_t packets_reordered() const noexcept { return n_reordered_; }
  std::uint64_t flap_drops() const noexcept { return n_flap_drops_; }
  std::uint64_t ring_overflow_drops() const noexcept { return n_ring_drops_; }
  std::uint64_t irq_stalls() const noexcept { return n_irq_stalls_; }

  /// Frames discarded because an endpoint host was powered off: the
  /// crash-instant drains of the staged queues and rx ring, plus frames
  /// that reached a stage boundary while the host was down. Each fires
  /// the descriptor's drop hook (fire_drop permitting) so token/credit
  /// senders reclaim their units — crashing must never leak flow control.
  std::uint64_t crash_drops() const noexcept { return n_crash_drops_; }

  /// Frames admitted to the rx ring and not yet taken by the host CPU.
  /// Admission increments, host-side take decrements; the pairing is
  /// exact (ring-overflow drops are refused *before* the increment), so
  /// this returns to zero whenever the pipe goes quiet.
  std::uint64_t rx_backlog() const noexcept { return rx_backlog_; }

  /// Arms the link fault injector (loss, burst loss, reorder, duplicate,
  /// corrupt, flap — see faults::LinkFaultConfig). `seed` initializes the
  /// injector's private RNG stream; use faults::derive_seed so no two
  /// pipes share a stream. Normally called via faults::apply().
  void set_link_faults(const faults::LinkFaultConfig& cfg, std::uint64_t seed);

  /// Arms the NIC receive-side injector (ring-overflow drops, interrupt
  /// stalls). Same seeding contract as set_link_faults().
  void set_nic_faults(const faults::NicFaultConfig& cfg, std::uint64_t seed);

  /// Base seed for this pipe's legacy set_loss() streams. Cluster::connect
  /// derives it from the cluster run seed and the pipe name; standalone
  /// pipes get a name-derived default from the constructor.
  void set_fault_seed(std::uint64_t seed) noexcept { fault_seed_ = seed; }
  std::uint64_t fault_seed() const noexcept { return fault_seed_; }

  /// Legacy shim: Bernoulli loss with probability `p`. With `seed == 0`
  /// (the default) the RNG stream derives from this pipe's fault seed, so
  /// two pipes in one run never share a drop sequence; a nonzero `seed`
  /// selects a distinct reproducible stream *per pipe* (it is mixed with
  /// the pipe's own seed, not used raw).
  void set_loss(double p, std::uint64_t seed = 0) {
    faults::LinkFaultConfig cfg;
    cfg.loss = p;
    set_link_faults(
        cfg, seed == 0 ? fault_seed_
                       : fault_seed_ ^ (seed * 0x9e3779b97f4a7c15ULL));
  }

  /// Host-side per-packet CPU charge on each side (useful to reason about
  /// saturation in reports and tests).
  sim::SimTime tx_cpu_cost() const;
  sim::SimTime rx_cpu_cost() const;

 private:
  struct LinkFaults {
    faults::LinkFaultConfig cfg;
    sim::SplitMix64 rng{1};
    faults::GilbertElliott ge;  ///< burst-loss chain state
  };
  struct NicFaults {
    faults::NicFaultConfig cfg;
    sim::SplitMix64 rng{1};
  };

  /// Frames matured by one coalesced interrupt, delivered to the host in
  /// a single rx_cpu_pump wakeup.
  using FrameBatch = std::vector<Packet>;
  struct RxBatch {
    sim::SimTime at = 0;
    FrameBatch frames;
  };

  sim::Task<void> tx_cpu_pump();
  sim::Task<void> tx_dma_pump();
  sim::Task<void> wire_pump();
  sim::Task<void> rx_dma_pump();
  sim::Task<void> rx_cpu_pump();

  /// Discards a frame: counters, trace instant, drop-hook notification.
  /// `rx_side` selects the counter slot and the simulator whose clock /
  /// tracer the event belongs to.
  void drop_frame(Packet& p, const char* cause, bool rx_side);

  /// Hands a wire-exited frame to the receive side `delay` ns from now,
  /// under the shard-stable arrival key (send time, this pipe's order
  /// tag, the per-pipe arrival counter). Same-simulator pipes push the
  /// tagged event directly; cross-shard pipes post it to the group for
  /// injection at the window barrier. Using one entry point for both is
  /// what makes every shard layout pop events in the same order.
  void schedule_arrival(sim::SimTime delay, Packet p);

  /// Arrival at the receive NIC (post-propagation): rx-ring admission.
  void deliver_to_rx(Packet p);

  /// Crash teardown, run as Node power listeners (registered in the
  /// constructor). The source-side drain discards everything queued in
  /// the transmit stages; the destination-side drain empties the rx DMA
  /// queue, the parked interrupt batches (their RxBatch entries stay so
  /// already-scheduled flush events still pair up — they flush empty)
  /// and the delivered queue, with the rx-ring backlog decremented per
  /// admitted frame. Each runs on its own side's simulator thread.
  void drain_tx_on_crash();
  void drain_rx_on_crash();

  /// Appends a DMA-complete frame to the interrupt batch maturing at
  /// `irq_at` (opening a new batch — and scheduling its flush — when the
  /// interrupt time advances).
  void enqueue_rx_frame(sim::SimTime irq_at, Packet p);
  void flush_rx_batch();

  /// PCI bytes inflated by the card's DMA efficiency and bus-width match,
  /// so the shared PCI resource sees the card's *effective* occupancy.
  std::uint64_t pci_effective_bytes(const Node& host,
                                    std::uint64_t bytes) const;

  sim::Simulator& src_sim_;  ///< drives the transmit stages
  sim::Simulator& dst_sim_;  ///< drives the receive stages
  Node& src_;
  Node& dst_;
  NicConfig nic_;
  LinkConfig link_;
  std::string name_;
  bool cross_shard_ = false;
  /// Shard-stable ordering tag for arrivals (derived from the pipe name,
  /// never kLocalEventTag); see EventQueue's key documentation.
  std::uint64_t order_tag_ = 0;
  std::uint64_t arrival_seq_ = 0;  ///< per-pipe arrival counter (tx side)

  sim::RateResource wire_;
  RxCoalescer coalescer_;

  sim::Channel<Packet> tx_cpu_q_;
  sim::Channel<Packet> tx_dma_q_;
  sim::Channel<Packet> wire_q_;
  sim::Channel<Packet> rx_dma_q_;
  sim::Channel<FrameBatch> rx_cpu_q_;
  sim::Channel<Packet> delivered_;

  /// Interrupt batches awaiting their flush event, in strictly
  /// increasing `at` order (the coalescer's FIFO clamp guarantees
  /// non-decreasing interrupt times; equal times merge into one batch).
  sim::RingDeque<RxBatch> rx_pending_;
  /// Recycled batch vectors so steady-state delivery allocates nothing.
  std::vector<FrameBatch> batch_pool_;

  std::uint64_t n_delivered_ = 0;
  std::uint64_t n_tx_dropped_ = 0;  ///< wire-stage drops (source shard)
  std::uint64_t n_rx_dropped_ = 0;  ///< ring-stage drops (destination shard)
  std::uint64_t n_corrupted_ = 0;
  std::uint64_t n_duplicated_ = 0;
  std::uint64_t n_reordered_ = 0;
  std::uint64_t n_flap_drops_ = 0;
  std::uint64_t n_ring_drops_ = 0;
  std::uint64_t n_irq_stalls_ = 0;
  std::uint64_t n_crash_drops_ = 0;
  std::uint64_t rx_backlog_ = 0;  ///< frames in the rx ring awaiting the host
  std::uint64_t fault_seed_ = 1;
  std::unique_ptr<LinkFaults> link_faults_;
  std::unique_ptr<NicFaults> nic_faults_;
};

}  // namespace pp::hw
