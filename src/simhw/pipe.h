// A one-directional packet path between two nodes.
//
// The path is a pipeline of independently-pumped stages so that, exactly
// like real hardware, the wire can serialize frame i+1 while the receiver
// is still DMA-ing frame i and the destination CPU is still processing
// frame i-1:
//
//   inject -> [tx cpu] -> [tx DMA/PCI] -> [wire] -> propagation
//          -> [rx DMA/PCI] -> interrupt coalescing -> [rx cpu] -> delivered
//
// CPU stages are charged on the node's single CPU resource, so protocol
// work, driver work and user copies all contend — the paper's observation
// that the message-passing layer and the OS fight over the same memory/CPU
// path falls out of this sharing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "simcore/random.h"
#include "simcore/resource.h"
#include "simcore/simulator.h"
#include "simcore/sync.h"
#include "simcore/task.h"
#include "simhw/coalescer.h"
#include "simhw/config.h"
#include "simhw/node.h"

namespace pp::hw {

/// One frame in flight. The pipe only looks at the byte counts; `ctx`
/// carries the protocol descriptor (TCP segment, GM message, ...).
struct Packet {
  std::uint64_t dma_bytes = 0;   ///< bytes crossing the PCI bus
  std::uint64_t wire_bytes = 0;  ///< bytes serialized on the wire
  std::shared_ptr<void> ctx;
};

class PacketPipe {
 public:
  PacketPipe(sim::Simulator& sim, Node& src, Node& dst, NicConfig nic,
             LinkConfig link, std::string name);

  PacketPipe(const PacketPipe&) = delete;
  PacketPipe& operator=(const PacketPipe&) = delete;

  /// Hands a packet to the transmit path. Never blocks; upper layers pace
  /// themselves (TCP by its window, GM/VIA by their credits).
  void inject(Packet p) { tx_cpu_q_.push_now(std::move(p)); }

  /// Frames that have fully arrived (after the receive interrupt and the
  /// destination's per-packet processing).
  sim::Channel<Packet>& delivered() noexcept { return delivered_; }

  const NicConfig& nic() const noexcept { return nic_; }
  Node& src() noexcept { return src_; }
  Node& dst() noexcept { return dst_; }
  sim::RateResource& wire() noexcept { return wire_; }
  std::uint64_t packets_delivered() const noexcept { return n_delivered_; }
  std::uint64_t packets_dropped() const noexcept { return n_dropped_; }

  /// Fault injection: drop each frame with probability `p` (deterministic
  /// given the seed). The paper's fabrics are lossless back-to-back
  /// links; this exists to exercise the TCP retransmission machinery and
  /// degraded-cable scenarios.
  void set_loss(double p, std::uint64_t seed = 1) {
    loss_probability_ = p;
    loss_rng_ = sim::SplitMix64(seed);
  }

  /// Host-side per-packet CPU charge on each side (useful to reason about
  /// saturation in reports and tests).
  sim::SimTime tx_cpu_cost() const;
  sim::SimTime rx_cpu_cost() const;

 private:
  sim::Task<void> tx_cpu_pump();
  sim::Task<void> tx_dma_pump();
  sim::Task<void> wire_pump();
  sim::Task<void> rx_dma_pump();
  sim::Task<void> rx_cpu_pump();

  /// PCI bytes inflated by the card's DMA efficiency and bus-width match,
  /// so the shared PCI resource sees the card's *effective* occupancy.
  std::uint64_t pci_effective_bytes(const Node& host,
                                    std::uint64_t bytes) const;

  sim::Simulator& sim_;
  Node& src_;
  Node& dst_;
  NicConfig nic_;
  LinkConfig link_;
  std::string name_;

  sim::RateResource wire_;
  RxCoalescer coalescer_;

  sim::Channel<Packet> tx_cpu_q_;
  sim::Channel<Packet> tx_dma_q_;
  sim::Channel<Packet> wire_q_;
  sim::Channel<Packet> rx_dma_q_;
  sim::Channel<Packet> rx_cpu_q_;
  sim::Channel<Packet> delivered_;

  std::uint64_t n_delivered_ = 0;
  std::uint64_t n_dropped_ = 0;
  double loss_probability_ = 0.0;
  sim::SplitMix64 loss_rng_{1};
};

}  // namespace pp::hw
