// A cluster node: one CPU resource (which serializes protocol work and
// memory copies — the "memory bus saturation" the paper describes shows up
// as contention here) and one PCI bus resource shared by all NICs in the
// node.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simcore/resource.h"
#include "simcore/simulator.h"
#include "simcore/task.h"
#include "simcore/tracing.h"
#include "simhw/config.h"

namespace pp::hw {

/// Power-state transition delivered to Node power listeners.
enum class PowerEvent {
  kCrash,    ///< the node lost power: all in-flight state is gone
  kRestart,  ///< the node rebooted under a new power epoch
};

class Node {
 public:
  Node(sim::Simulator& sim, int id, HostConfig config)
      : sim_(sim),
        id_(id),
        config_(std::move(config)),
        cpu_(sim, config_.name + "#" + std::to_string(id) + ".cpu",
             config_.copy_bandwidth),
        pci_(sim, config_.name + "#" + std::to_string(id) + ".pci",
             config_.pci_raw, config_.pci_dma_setup) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const noexcept { return id_; }
  const HostConfig& config() const noexcept { return config_; }
  sim::Simulator& simulator() noexcept { return sim_; }

  sim::RateResource& cpu() noexcept { return cpu_; }
  sim::RateResource& pci() noexcept { return pci_; }

  /// A memory-to-memory copy of `bytes` performed by this node's CPU
  /// (user<->kernel crossing copies, library staging copies, ...).
  /// Reserves the CPU immediately and returns the completion awaiter
  /// (see RateResource::transfer) — co_await it at the call site.
  auto copy(std::uint64_t bytes) { return cpu_.transfer(bytes); }

  /// Fixed CPU work (syscall entry, per-packet protocol processing, ...).
  auto cpu_cost(sim::SimTime t) { return cpu_.occupy(t); }

  /// Time one staging-copy pass over `bytes` takes: small buffers are
  /// cache-resident, large ones stream from cold memory.
  sim::SimTime staging_copy_time(std::uint64_t bytes) const {
    const Rate rate = bytes <= config_.cached_copy_limit
                          ? config_.cached_copy_bandwidth
                          : config_.copy_bandwidth;
    return rate.time_for(bytes);
  }

  /// A library staging copy (unexpected-queue drain, eager-buffer copy,
  /// pack/unpack pass). Uses the size-dependent rate above.
  auto staging_copy(std::uint64_t bytes) {
    return cpu_.occupy(staging_copy_time(bytes));
  }

  // --- Power state (crash/restart fault class) -----------------------------
  //
  // A node is born up in power epoch 1. crash() powers it off: listeners
  // (NIC pipes, protocol endpoints pinned to this host) tear down their
  // in-flight state with crash verdicts. restart() powers it back on
  // under the next epoch; listeners re-register their sessions. Both are
  // idempotent, and a run that never crashes pays nothing — registration
  // only appends to a vector, no events, no RNG.

  bool is_up() const noexcept { return up_; }
  std::uint32_t power_epoch() const noexcept { return power_epoch_; }
  std::uint64_t crash_count() const noexcept { return crash_count_; }

  using PowerListener = std::function<void(PowerEvent)>;

  /// Registers `fn` to run on every crash/restart of this node, in
  /// registration order (hardware registers before protocols, so pipes
  /// drain their rings before endpoints inspect them). Listeners must
  /// outlive the node's last power event — in practice, the run.
  void add_power_listener(PowerListener fn) {
    power_listeners_.push_back(std::move(fn));
  }

  /// Powers the node off, dropping all in-flight state via listeners.
  void crash() {
    if (!up_) return;
    up_ = false;
    ++crash_count_;
    if (sim::TraceRecorder* t = sim_.tracer()) {
      t->record_instant(cpu_.name(), "crash", sim_.now());
    }
    for (auto& fn : power_listeners_) fn(PowerEvent::kCrash);
  }

  /// Powers the node back on under the next power epoch.
  void restart() {
    if (up_) return;
    up_ = true;
    ++power_epoch_;
    if (sim::TraceRecorder* t = sim_.tracer()) {
      t->record_instant(cpu_.name(), "restart", sim_.now());
    }
    for (auto& fn : power_listeners_) fn(PowerEvent::kRestart);
  }

 private:
  sim::Simulator& sim_;
  int id_;
  HostConfig config_;
  sim::RateResource cpu_;
  sim::RateResource pci_;
  bool up_ = true;
  std::uint32_t power_epoch_ = 1;
  std::uint64_t crash_count_ = 0;
  std::vector<PowerListener> power_listeners_;
};

}  // namespace pp::hw
