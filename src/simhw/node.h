// A cluster node: one CPU resource (which serializes protocol work and
// memory copies — the "memory bus saturation" the paper describes shows up
// as contention here) and one PCI bus resource shared by all NICs in the
// node.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "simcore/resource.h"
#include "simcore/simulator.h"
#include "simcore/task.h"
#include "simhw/config.h"

namespace pp::hw {

class Node {
 public:
  Node(sim::Simulator& sim, int id, HostConfig config)
      : sim_(sim),
        id_(id),
        config_(std::move(config)),
        cpu_(sim, config_.name + "#" + std::to_string(id) + ".cpu",
             config_.copy_bandwidth),
        pci_(sim, config_.name + "#" + std::to_string(id) + ".pci",
             config_.pci_raw, config_.pci_dma_setup) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const noexcept { return id_; }
  const HostConfig& config() const noexcept { return config_; }
  sim::Simulator& simulator() noexcept { return sim_; }

  sim::RateResource& cpu() noexcept { return cpu_; }
  sim::RateResource& pci() noexcept { return pci_; }

  /// A memory-to-memory copy of `bytes` performed by this node's CPU
  /// (user<->kernel crossing copies, library staging copies, ...).
  /// Reserves the CPU immediately and returns the completion awaiter
  /// (see RateResource::transfer) — co_await it at the call site.
  auto copy(std::uint64_t bytes) { return cpu_.transfer(bytes); }

  /// Fixed CPU work (syscall entry, per-packet protocol processing, ...).
  auto cpu_cost(sim::SimTime t) { return cpu_.occupy(t); }

  /// Time one staging-copy pass over `bytes` takes: small buffers are
  /// cache-resident, large ones stream from cold memory.
  sim::SimTime staging_copy_time(std::uint64_t bytes) const {
    const Rate rate = bytes <= config_.cached_copy_limit
                          ? config_.cached_copy_bandwidth
                          : config_.copy_bandwidth;
    return rate.time_for(bytes);
  }

  /// A library staging copy (unexpected-queue drain, eager-buffer copy,
  /// pack/unpack pass). Uses the size-dependent rate above.
  auto staging_copy(std::uint64_t bytes) {
    return cpu_.occupy(staging_copy_time(bytes));
  }

 private:
  sim::Simulator& sim_;
  int id_;
  HostConfig config_;
  sim::RateResource cpu_;
  sim::RateResource pci_;
};

}  // namespace pp::hw
