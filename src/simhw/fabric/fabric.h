// Switch fabric: fat-tree / Clos interconnects for 64-1024 node clusters.
//
// Where PacketPipe models the paper's direct two-node wire, the fabric
// wires every hw::Node through a tree of Switch elements. The model is
// deliberately event-driven rather than coroutine-per-frame: a frame's
// forwarding decision is pure busy-until arithmetic on the output port
// (plus optional crossbar), computed in the arrival event, and the next
// hop is scheduled with the same shard-stable (at, sched, tag, seq)
// merge keys PacketPipe uses — so fabric runs are bit-identical across
// shard counts, schedulers and packet paths.
//
// Forwarding modes (per switch):
//   store-and-forward  start = max(tail_in + latency, port_free)
//                      depart = start + serialization
//   cut-through        start = max(head_in + latency, port_free)
//                      depart = max(start + serialization, tail_in + latency)
// with port_free advancing to `depart` either way. Cut-through lets the
// head of a frame leave while its tail is still arriving, saving one
// serialization delay per switch hop on an idle path; under load both
// modes degrade to the same queueing behaviour (the invariant
// cut-through <= store-and-forward is property-tested).
//
// Each output port owns a drop-tail queue of pending departures: the
// backlog at time t is the number of frames whose departure is still in
// the future. A finite queue_frames cap turns overflow into counted
// drops; either way frames are conserved per link
// (frames_in == delivered + dropped), which the incast tests audit.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "simcore/random.h"
#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/fabric/topology.h"
#include "simhw/pipe.h"

namespace pp::hw::fabric {

enum class ForwardingMode : std::uint8_t {
  kStoreAndForward,
  kCutThrough,
};

struct SwitchConfig {
  sim::Rate port_rate = sim::Rate::gigabits(1.0);
  /// Fixed per-hop pipeline latency (lookup + arbitration).
  sim::SimTime port_latency = sim::microseconds(0.5);
  ForwardingMode mode = ForwardingMode::kCutThrough;
  /// Aggregate crossbar bandwidth as a multiple of port_rate; every
  /// frame crossing the switch serializes through this shared resource.
  /// 0 models an ideal non-blocking crossbar.
  double crossbar_speedup = 0.0;
  /// Output-queue capacity in frames; 0 = unbounded (lossless).
  std::uint32_t queue_frames = 0;
};

struct FabricConfig {
  std::string name = "fab";
  SwitchConfig sw;
  sim::Rate host_rate = sim::Rate::gigabits(1.0);
  sim::SimTime host_propagation = sim::microseconds(0.5);
  sim::SimTime trunk_propagation = sim::microseconds(0.5);
  /// Per-frame framing overhead added to wire_bytes for serialization.
  std::uint32_t frame_overhead = 38;
  /// Payload bytes per frame; libraries fragment messages at this size.
  std::uint32_t mtu = 4096;
  /// Host-side NIC costs charged by HostPort / the libraries.
  sim::SimTime host_tx_cost = sim::microseconds(0.5);
  sim::SimTime host_rx_cost = sim::microseconds(1.0);
  std::uint64_t seed = 1;
};

/// k-ary three-level fat-tree: k pods of k/2 edge + k/2 aggregation
/// switches, (k/2)^2 cores, up to k^3/4 hosts. radix must be even.
struct FatTreeShape {
  int radix = 4;
  /// Smallest even radix whose fat-tree holds `hosts` hosts.
  static FatTreeShape fit(int hosts);
};

/// Two-level leaf-spine Clos: every leaf connects every spine.
struct ClosShape {
  int leaves = 4;
  int spines = 2;
  int hosts_per_leaf = 4;
  /// A roughly square leaf-spine shape covering `hosts` hosts.
  static ClosShape fit(int hosts);
};

/// One frame traversing the fabric. Owns an arena descriptor through
/// pkt.desc; sized so [Link* + FabricFrame] stays inside
/// SmallFn::kInlineBytes (no allocation per hop).
struct FabricFrame {
  Packet pkt;
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  std::uint16_t hops = 0;
  std::uint16_t flow = 0;
};
static_assert(sizeof(FabricFrame) <= 40, "FabricFrame must stay SmallFn-inline");

class Fabric;
class Link;

/// Whatever sits at the head of a directed link (a Switch or HostPort).
class Sink {
 public:
  virtual ~Sink() = default;
  /// Runs on the head vertex's simulator at the frame's tail-arrival
  /// time. `in` is the link the frame arrived on.
  virtual void on_frame(const Link& in, FabricFrame f) = 0;
};

/// A directed wire with one output port at its tail: busy-until
/// transmit arithmetic, drop-tail backlog accounting, optional
/// Bernoulli loss, and shard-stable arrival scheduling.
class Link {
 public:
  Link(Fabric& fab, std::int32_t index, std::string name,
       sim::Simulator& src_sim, sim::Simulator& dst_sim, Sink& dst,
       sim::Rate rate, sim::SimTime propagation, std::uint32_t overhead,
       std::uint32_t queue_frames);

  /// Enqueues a frame on this output port. `head_ready` / `tail_ready`
  /// are the times the frame's head / tail become available at the port
  /// (as computed by the forwarding mode); both must be >= now. Returns
  /// the departure (tail-on-wire) time, or -1 if the frame was dropped
  /// (loss or queue overflow). Must run on src_sim's thread.
  sim::SimTime transmit(FabricFrame f, sim::SimTime head_ready,
                        sim::SimTime tail_ready);

  sim::SimTime ser_time(const FabricFrame& f) const {
    return rate_.time_for(f.pkt.wire_bytes + overhead_);
  }

  void set_loss(double probability, std::uint64_t seed);

  const std::string& name() const noexcept { return name_; }
  std::int32_t index() const noexcept { return index_; }
  sim::Rate rate() const noexcept { return rate_; }
  sim::SimTime propagation() const noexcept { return propagation_; }

  std::uint64_t frames_in() const noexcept { return n_in_; }
  std::uint64_t frames_delivered() const noexcept { return n_delivered_; }
  std::uint64_t frames_dropped() const noexcept {
    return n_loss_drops_ + n_queue_drops_;
  }
  std::uint64_t loss_drops() const noexcept { return n_loss_drops_; }
  std::uint64_t queue_drops() const noexcept { return n_queue_drops_; }
  std::uint64_t bytes_in() const noexcept { return bytes_in_; }
  /// Deepest instantaneous output-queue backlog seen (frames waiting or
  /// in serialization at one instant).
  std::size_t peak_backlog() const noexcept { return peak_backlog_; }
  /// Frames whose departure is still after `t`.
  std::size_t backlog_at(sim::SimTime t) const;

 private:
  void deliver(FabricFrame f);

  Fabric& fab_;
  std::int32_t index_;
  std::string name_;
  sim::Simulator& src_sim_;
  sim::Simulator& dst_sim_;
  Sink& dst_;
  sim::Rate rate_;
  sim::SimTime propagation_;
  std::uint32_t overhead_;
  std::uint32_t queue_cap_;
  bool cross_shard_ = false;
  std::uint64_t order_tag_ = 0;
  std::uint64_t arrival_seq_ = 0;
  sim::SimTime port_free_ = 0;
  std::deque<sim::SimTime> departures_;  // pending departure tails
  double loss_p_ = 0.0;
  sim::SplitMix64 loss_rng_{0};
  // tx-side counters (src_sim's thread) ...
  std::uint64_t n_in_ = 0;
  std::uint64_t n_loss_drops_ = 0;
  std::uint64_t n_queue_drops_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::size_t peak_backlog_ = 0;
  // ... and the one rx-side counter (dst_sim's thread).
  std::uint64_t n_delivered_ = 0;
};

/// A crossbar switch: routes each arriving frame via the topology's
/// ECMP tables and hands it to the chosen output Link.
class Switch : public Sink {
 public:
  Switch(Fabric& fab, VertexId vertex, sim::Simulator& sim, SwitchConfig cfg);

  void on_frame(const Link& in, FabricFrame f) override;

  VertexId vertex() const noexcept { return vertex_; }
  sim::Simulator& simulator() noexcept { return sim_; }
  std::uint64_t frames_switched() const noexcept { return n_switched_; }
  std::uint64_t frames_misrouted() const noexcept { return n_misrouted_; }

 private:
  Fabric& fab_;
  VertexId vertex_;
  sim::Simulator& sim_;
  SwitchConfig cfg_;
  sim::Rate xbar_rate_{0.0};
  sim::SimTime xbar_free_ = 0;
  std::uint64_t n_switched_ = 0;
  std::uint64_t n_misrouted_ = 0;
};

/// A host's attachment point: injects frames up the access link and
/// queues delivered frames for the host's rx consumer.
class HostPort : public Sink {
 public:
  HostPort(Fabric& fab, Node& node, int host);
  ~HostPort();

  /// Injects one frame toward host `dst` from the host's simulator
  /// thread. Returns the access-link departure time, or -1 if dropped.
  sim::SimTime inject(int dst, Packet p, std::uint16_t flow = 0);

  /// Delivered frames, in fabric arrival order.
  sim::Channel<FabricFrame>& delivered() noexcept { return rx_; }

  Node& node() noexcept { return node_; }
  int host() const noexcept { return host_; }
  std::uint64_t frames_injected() const noexcept { return n_injected_; }
  std::uint64_t frames_delivered() const noexcept { return n_delivered_; }

  void on_frame(const Link& in, FabricFrame f) override;

 private:
  friend class Fabric;
  Fabric& fab_;
  Node& node_;
  int host_;
  Link* up_ = nullptr;  // wired by Fabric after link construction
  sim::Channel<FabricFrame> rx_;
  std::uint64_t n_injected_ = 0;
  std::uint64_t n_delivered_ = 0;
};

/// The fabric itself: topology + switches + links over a Cluster's
/// nodes. Construction wires host i to the cluster's node i; the
/// cluster decides shard placement of nodes, and the fabric co-locates
/// each switch with a deterministic nearby host so placement never
/// affects event order (all hop scheduling is key-tagged).
class Fabric {
 public:
  Fabric(Cluster& cluster, FabricConfig cfg, const FatTreeShape& shape);
  Fabric(Cluster& cluster, FabricConfig cfg, const ClosShape& shape);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const FabricConfig& config() const noexcept { return cfg_; }
  const Topology& topology() const noexcept { return topo_; }
  int hosts() const noexcept { return topo_.hosts(); }
  HostPort& port(int host) { return *ports_.at(static_cast<std::size_t>(host)); }
  std::size_t switch_count() const noexcept { return switches_.size(); }
  Switch& switch_at(std::size_t i) { return *switches_.at(i); }
  std::size_t link_count() const noexcept { return links_.size(); }
  Link& link(std::int32_t i) {
    return *links_.at(static_cast<std::size_t>(i));
  }
  const Link& link(std::int32_t i) const {
    return *links_.at(static_cast<std::size_t>(i));
  }

  /// Arms Bernoulli loss on every link (per-link streams derived from
  /// the config seed and the link name).
  void set_loss(double probability);

  struct Totals {
    std::uint64_t injected = 0;   ///< frames entering at host ports
    std::uint64_t delivered = 0;  ///< frames handed to host rx queues
    std::uint64_t switched = 0;   ///< switch forwarding decisions
    std::uint64_t dropped = 0;    ///< loss + queue-overflow drops
  };
  Totals totals() const;

  /// Conservation audit: per link, frames_in == delivered + dropped and
  /// nothing still in flight at `end`; per fabric, host injections minus
  /// drops equal host deliveries. Returns a description of the first
  /// violations, or an empty string when fully conserved.
  std::string conservation_violations(sim::SimTime end) const;

 private:
  void build(Cluster& cluster);
  sim::Simulator& sim_of(VertexId v, Cluster& cluster);

  FabricConfig cfg_;
  Topology topo_;
  std::vector<sim::Simulator*> switch_sims_;  // by switch ordinal
  std::vector<std::unique_ptr<HostPort>> ports_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace pp::hw::fabric
