#include "simhw/fabric/fabric.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "faults/config.h"
#include "simcore/shard.h"
#include "simcore/tracing.h"

namespace pp::hw::fabric {

FatTreeShape FatTreeShape::fit(int hosts) {
  if (hosts < 1) throw std::invalid_argument("FatTreeShape::fit: hosts < 1");
  for (int k = 2;; k += 2) {
    if (k * k * k / 4 >= hosts) return FatTreeShape{k};
  }
}

ClosShape ClosShape::fit(int hosts) {
  if (hosts < 1) throw std::invalid_argument("ClosShape::fit: hosts < 1");
  int per_leaf = 1;
  while (per_leaf * per_leaf < hosts) ++per_leaf;
  const int leaves = (hosts + per_leaf - 1) / per_leaf;
  const int spines = std::max(2, (leaves + 1) / 2);
  return ClosShape{leaves, spines, per_leaf};
}

// ---------------------------------------------------------------- Link

Link::Link(Fabric& fab, std::int32_t index, std::string name,
           sim::Simulator& src_sim, sim::Simulator& dst_sim, Sink& dst,
           sim::Rate rate, sim::SimTime propagation, std::uint32_t overhead,
           std::uint32_t queue_frames)
    : fab_(fab),
      index_(index),
      name_(std::move(name)),
      src_sim_(src_sim),
      dst_sim_(dst_sim),
      dst_(dst),
      rate_(rate),
      propagation_(propagation),
      overhead_(overhead),
      queue_cap_(queue_frames) {
  cross_shard_ = &src_sim_ != &dst_sim_;
  // Same contract as PacketPipe: the merge tag depends on the link name
  // only, so every shard layout (and the serial run) orders arrivals
  // identically. Reserve the local-push sentinel.
  order_tag_ =
      faults::derive_seed(0x6661627269636c6bULL /* "fabriclk" */, name_);
  if (order_tag_ == sim::kLocalEventTag) --order_tag_;
  if (cross_shard_) {
    sim::ShardGroup* group = src_sim_.shard_group();
    if (group == nullptr || group != dst_sim_.shard_group()) {
      throw std::logic_error(
          "fabric link '" + name_ +
          "' spans two simulators that are not shards of one ShardGroup");
    }
    group->register_link(propagation_);
  }
}

void Link::set_loss(double probability, std::uint64_t seed) {
  loss_p_ = probability;
  loss_rng_ = sim::SplitMix64(seed);
}

std::size_t Link::backlog_at(sim::SimTime t) const {
  std::size_t n = 0;
  for (sim::SimTime dep : departures_) {
    if (dep > t) ++n;
  }
  return n;
}

sim::SimTime Link::transmit(FabricFrame f, sim::SimTime head_ready,
                            sim::SimTime tail_ready) {
  const sim::SimTime now = src_sim_.now();
  if (tail_ready < now) tail_ready = now;
  if (loss_p_ > 0.0 && loss_rng_.uniform() < loss_p_) {
    ++n_loss_drops_;
    if (sim::TraceRecorder* t = src_sim_.tracer()) {
      t->record_instant(name_, "fabric.loss", now);
    }
    if (f.pkt.fire_drop) f.pkt.desc.fire_drop();
    return -1;
  }
  // Prune departures that are already on the wire; what remains is the
  // output queue's instantaneous backlog.
  while (!departures_.empty() && departures_.front() <= now) {
    departures_.pop_front();
  }
  if (queue_cap_ != 0 && departures_.size() >= queue_cap_) {
    ++n_queue_drops_;
    if (sim::TraceRecorder* t = src_sim_.tracer()) {
      t->record_instant(name_, "fabric.taildrop", now);
    }
    if (f.pkt.fire_drop) f.pkt.desc.fire_drop();
    return -1;
  }
  const sim::SimTime ser = ser_time(f);
  // head_ready may precede now in cut-through mode: the head entered
  // the port while the tail was still arriving.
  const sim::SimTime start = std::max(head_ready, port_free_);
  const sim::SimTime dep = std::max(start + ser, tail_ready);
  port_free_ = dep;
  departures_.push_back(dep);
  peak_backlog_ = std::max(peak_backlog_, departures_.size());
  ++n_in_;
  bytes_in_ += f.pkt.wire_bytes;
  ++f.hops;
  const sim::SimTime at = dep + propagation_;
  const std::uint64_t seq = arrival_seq_++;
  if (!cross_shard_) {
    dst_sim_.call_at_tagged(at, now, order_tag_, seq,
                            [this, frame = std::move(f)]() mutable {
                              deliver(std::move(frame));
                            });
  } else {
    src_sim_.shard_group()->post(
        src_sim_.shard_index(), dst_sim_.shard_index(), at, now, order_tag_,
        seq, sim::SmallFn([this, frame = std::move(f)]() mutable {
          deliver(std::move(frame));
        }));
  }
  return dep;
}

void Link::deliver(FabricFrame f) {
  ++n_delivered_;
  dst_.on_frame(*this, std::move(f));
}

// -------------------------------------------------------------- Switch

Switch::Switch(Fabric& fab, VertexId vertex, sim::Simulator& sim,
               SwitchConfig cfg)
    : fab_(fab), vertex_(vertex), sim_(sim), cfg_(cfg) {
  if (cfg_.crossbar_speedup > 0.0) {
    xbar_rate_ =
        sim::Rate{cfg_.port_rate.bytes_per_second * cfg_.crossbar_speedup};
  }
}

void Switch::on_frame(const Link& in, FabricFrame f) {
  const sim::SimTime now = sim_.now();
  const Topology& topo = fab_.topology();
  if (f.dst >= topo.hosts() ||
      topo.distance(vertex_, f.dst) == Topology::kUnreachable) {
    ++n_misrouted_;
    if (sim::TraceRecorder* t = sim_.tracer()) {
      t->record_instant(topo.vertex_name(vertex_), "fabric.noroute", now);
    }
    if (f.pkt.fire_drop) f.pkt.desc.fire_drop();
    return;
  }
  ++n_switched_;
  const EdgeRef e = topo.pick(vertex_, f.src, f.dst, f.flow);
  Link& out = fab_.link(e.link);
  // now is the tail-arrival instant; the head arrived one input
  // serialization earlier.
  sim::SimTime head_ready = cfg_.port_latency +
                            (cfg_.mode == ForwardingMode::kCutThrough
                                 ? now - in.ser_time(f)
                                 : now);
  sim::SimTime tail_ready = now + cfg_.port_latency;
  if (xbar_rate_.bytes_per_second > 0.0) {
    // The shared crossbar serializes every traversal: the frame's head
    // emerges once its transfer completes.
    const sim::SimTime start = std::max(head_ready, xbar_free_);
    xbar_free_ = start + xbar_rate_.time_for(f.pkt.wire_bytes);
    head_ready = xbar_free_;
    tail_ready = std::max(tail_ready, head_ready);
  }
  out.transmit(std::move(f), head_ready, tail_ready);
}

// ------------------------------------------------------------ HostPort

HostPort::HostPort(Fabric& fab, Node& node, int host)
    : fab_(fab), node_(node), host_(host), rx_(node.simulator()) {}

HostPort::~HostPort() {
  // Undelivered frames hold arena descriptors; drop them while every
  // shard's arena is still alive (Fabric is destroyed before the
  // cluster / shard group that own the arenas).
  while (rx_.try_pop()) {}
}

sim::SimTime HostPort::inject(int dst, Packet p, std::uint16_t flow) {
  if (dst < 0 || dst >= fab_.hosts() || dst == host_) {
    throw std::invalid_argument("HostPort::inject: bad destination");
  }
  FabricFrame f;
  f.pkt = std::move(p);
  f.src = static_cast<std::uint16_t>(host_);
  f.dst = static_cast<std::uint16_t>(dst);
  f.flow = flow;
  ++n_injected_;
  const sim::SimTime ready =
      node_.simulator().now() + fab_.config().host_tx_cost;
  return up_->transmit(std::move(f), ready, ready);
}

void HostPort::on_frame(const Link& in, FabricFrame f) {
  (void)in;
  ++n_delivered_;
  rx_.push_now(std::move(f));
}

// -------------------------------------------------------------- Fabric

Fabric::Fabric(Cluster& cluster, FabricConfig cfg, const FatTreeShape& shape)
    : cfg_(std::move(cfg)), topo_(static_cast<int>(cluster.node_count())) {
  const int k = shape.radix;
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat-tree radix must be even and >= 2");
  }
  const int half = k / 2;
  const int hosts = topo_.hosts();
  if (hosts > k * k * k / 4) {
    throw std::invalid_argument("fat-tree radix too small for host count");
  }
  // Vertices: per pod k/2 edge then k/2 aggregation switches, then the
  // (k/2)^2 cores. Hosts attach to edge switches in blocks of k/2.
  std::vector<VertexId> edge(static_cast<std::size_t>(k) * half);
  std::vector<VertexId> agg(static_cast<std::size_t>(k) * half);
  std::vector<VertexId> core(static_cast<std::size_t>(half) * half);
  switch_sims_.reserve(edge.size() + agg.size() + core.size());
  auto place = [&](int host) -> sim::Simulator* {
    return &cluster.node(static_cast<std::size_t>(host < hosts ? host : 0))
                .simulator();
  };
  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < half; ++e) {
      edge[static_cast<std::size_t>(p * half + e)] = topo_.add_switch();
      // Co-locate each edge switch with its first attached host.
      switch_sims_.push_back(place((p * half + e) * half));
    }
    for (int a = 0; a < half; ++a) {
      agg[static_cast<std::size_t>(p * half + a)] = topo_.add_switch();
      switch_sims_.push_back(place(p * half * half));
    }
  }
  for (int c = 0; c < half * half; ++c) {
    core[static_cast<std::size_t>(c)] = topo_.add_switch();
    switch_sims_.push_back(place(c % hosts));
  }
  for (int h = 0; h < hosts; ++h) {
    topo_.connect(h, edge[static_cast<std::size_t>(h / half)]);
  }
  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        topo_.connect(edge[static_cast<std::size_t>(p * half + e)],
                      agg[static_cast<std::size_t>(p * half + a)]);
      }
    }
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        topo_.connect(agg[static_cast<std::size_t>(p * half + a)],
                      core[static_cast<std::size_t>(a * half + c)]);
      }
    }
  }
  build(cluster);
}

Fabric::Fabric(Cluster& cluster, FabricConfig cfg, const ClosShape& shape)
    : cfg_(std::move(cfg)), topo_(static_cast<int>(cluster.node_count())) {
  const int hosts = topo_.hosts();
  if (shape.leaves < 1 || shape.spines < 1 || shape.hosts_per_leaf < 1) {
    throw std::invalid_argument("Clos shape parameters must be positive");
  }
  if (hosts > shape.leaves * shape.hosts_per_leaf) {
    throw std::invalid_argument("Clos shape too small for host count");
  }
  std::vector<VertexId> leaf(static_cast<std::size_t>(shape.leaves));
  std::vector<VertexId> spine(static_cast<std::size_t>(shape.spines));
  for (int l = 0; l < shape.leaves; ++l) {
    leaf[static_cast<std::size_t>(l)] = topo_.add_switch();
    const int first = l * shape.hosts_per_leaf;
    switch_sims_.push_back(
        &cluster.node(static_cast<std::size_t>(first < hosts ? first : 0))
             .simulator());
  }
  for (int s = 0; s < shape.spines; ++s) {
    spine[static_cast<std::size_t>(s)] = topo_.add_switch();
    switch_sims_.push_back(
        &cluster.node(static_cast<std::size_t>(s % hosts)).simulator());
  }
  for (int h = 0; h < hosts; ++h) {
    topo_.connect(h, leaf[static_cast<std::size_t>(h / shape.hosts_per_leaf)]);
  }
  for (int l = 0; l < shape.leaves; ++l) {
    for (int s = 0; s < shape.spines; ++s) {
      topo_.connect(leaf[static_cast<std::size_t>(l)],
                    spine[static_cast<std::size_t>(s)]);
    }
  }
  build(cluster);
}

Fabric::~Fabric() = default;

sim::Simulator& Fabric::sim_of(VertexId v, Cluster& cluster) {
  if (topo_.is_host(v)) {
    return cluster.node(static_cast<std::size_t>(v)).simulator();
  }
  return *switch_sims_[static_cast<std::size_t>(v - topo_.hosts())];
}

void Fabric::build(Cluster& cluster) {
  topo_.build_routes();
  const int hosts = topo_.hosts();
  ports_.reserve(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    ports_.push_back(
        std::make_unique<HostPort>(*this, cluster.node(static_cast<std::size_t>(h)), h));
  }
  const int n_switches = topo_.vertices() - hosts;
  switches_.reserve(static_cast<std::size_t>(n_switches));
  for (int s = 0; s < n_switches; ++s) {
    switches_.push_back(std::make_unique<Switch>(
        *this, hosts + s, *switch_sims_[static_cast<std::size_t>(s)], cfg_.sw));
  }
  links_.reserve(static_cast<std::size_t>(topo_.links()));
  for (std::int32_t l = 0; l < topo_.links(); ++l) {
    const auto [u, v] = topo_.link_ends(l);
    const bool access = topo_.is_host(u) || topo_.is_host(v);
    Sink& dst = topo_.is_host(v)
                    ? static_cast<Sink&>(*ports_[static_cast<std::size_t>(v)])
                    : *switches_[static_cast<std::size_t>(v - hosts)];
    // The output queue belongs to the element at the link's tail: host
    // NIC rings are unbounded here, switch ports honour queue_frames.
    const std::uint32_t cap = topo_.is_host(u) ? 0 : cfg_.sw.queue_frames;
    links_.push_back(std::make_unique<Link>(
        *this, l,
        cfg_.name + ".l" + std::to_string(l) + "[" + topo_.vertex_name(u) +
            ">" + topo_.vertex_name(v) + "]",
        sim_of(u, cluster), sim_of(v, cluster), dst,
        access ? cfg_.host_rate : cfg_.sw.port_rate,
        access ? cfg_.host_propagation : cfg_.trunk_propagation,
        cfg_.frame_overhead, cap));
  }
  for (int h = 0; h < hosts; ++h) {
    const auto& out = topo_.out(h);
    if (out.size() != 1) {
      throw std::logic_error("fabric host must have exactly one access link");
    }
    ports_[static_cast<std::size_t>(h)]->up_ =
        links_[static_cast<std::size_t>(out[0].link)].get();
  }
}

void Fabric::set_loss(double probability) {
  for (auto& l : links_) {
    l->set_loss(probability, faults::derive_seed(cfg_.seed, l->name()));
  }
}

Fabric::Totals Fabric::totals() const {
  Totals t;
  for (const auto& p : ports_) {
    t.injected += p->frames_injected();
    t.delivered += p->frames_delivered();
  }
  for (const auto& s : switches_) {
    t.switched += s->frames_switched();
    t.dropped += s->frames_misrouted();
  }
  for (const auto& l : links_) t.dropped += l->frames_dropped();
  return t;
}

std::string Fabric::conservation_violations(sim::SimTime end) const {
  std::string out;
  auto note = [&](const std::string& s) {
    if (out.size() < 2000) out += s + "\n";
  };
  for (const auto& l : links_) {
    // Drops are counted before admission, so every admitted frame must
    // eventually deliver; after a completed run the event queues are
    // empty, so any gap is a real leak.
    if (l->frames_in() != l->frames_delivered()) {
      note("link " + l->name() + ": in=" + std::to_string(l->frames_in()) +
           " delivered=" + std::to_string(l->frames_delivered()));
    }
    if (l->backlog_at(end) != 0) {
      note("link " + l->name() + ": backlog " +
           std::to_string(l->backlog_at(end)) + " at end of run");
    }
  }
  const Totals t = totals();
  if (t.injected != t.delivered + t.dropped) {
    note("fabric: injected=" + std::to_string(t.injected) +
         " != delivered=" + std::to_string(t.delivered) + " + dropped=" +
         std::to_string(t.dropped));
  }
  return out;
}

}  // namespace pp::hw::fabric
